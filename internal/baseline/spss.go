package baseline

import (
	"fmt"

	"deco/internal/dag"
	"deco/internal/ensemble"
	"deco/internal/estimate"
	"deco/internal/opt"
)

// SPSSPlanner builds the per-workflow plan of the SPSS algorithm (Static
// Provisioning Static Scheduling, Malawski et al.): the task typing comes
// from the deterministic deadline-assignment heuristic (Autoscaling family),
// the deadline check is deterministic on mean durations, and provisioning
// consolidates tasks onto hourly-billed VMs — but, unlike Deco, the typing
// is fixed before provisioning, so SPSS cannot trade types against packing
// the way Deco's transformation search does (§6.3.2 measures SPSS costing
// ~1.4x Deco per workflow).
func SPSSPlanner(tblOf func(w *dag.Workflow) (*estimate.Table, error), prices []float64) ensemble.Planner {
	return func(w *dag.Workflow, deadlineSec, percentile float64) (*ensemble.PlannedWorkflow, error) {
		tbl, err := tblOf(w)
		if err != nil {
			return nil, err
		}
		config, err := Autoscaling(w, tbl, prices, deadlineSec)
		if err != nil {
			return nil, err
		}
		// Deterministic deadline check on mean durations.
		cfg := make(map[string]int, w.Len())
		for i, t := range w.Tasks {
			cfg[t.ID] = config[i]
		}
		means, err := tbl.MeanDurations(cfg)
		if err != nil {
			return nil, err
		}
		ms, _, err := w.Makespan(means)
		if err != nil {
			return nil, err
		}
		cost, err := opt.PackedMeanCost(w, config, tbl, prices, "us-east-1")
		if err != nil {
			return nil, err
		}
		return &ensemble.PlannedWorkflow{
			Config:   config,
			Cost:     cost,
			Feasible: ms <= deadlineSec,
		}, nil
	}
}

// SPSSAdmit runs SPSS's offline admission: walk workflows in priority order
// (highest first) and admit each whose plan fits the remaining budget.
// Returns the admission state in the ensemble.Space encoding.
func SPSSAdmit(sp *ensemble.Space) (opt.State, error) {
	n := len(sp.E.Workflows)
	state := make(opt.State, n)
	// Order indices by priority (0 = highest first).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if sp.E.Workflows[order[j]].Priority < sp.E.Workflows[order[i]].Priority {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	remaining := sp.Budget
	for _, i := range order {
		p := sp.Plans[i]
		if p == nil {
			continue
		}
		if p.Cost <= remaining {
			state[i] = 1
			remaining -= p.Cost
		}
	}
	if remaining < 0 {
		return nil, fmt.Errorf("baseline: SPSS overspent (bug)")
	}
	return state, nil
}
