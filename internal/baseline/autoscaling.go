// Package baseline implements the state-of-the-art comparison algorithms of
// §6.1: Autoscaling (Mao & Humphrey, SC'11) for the workflow scheduling
// problem and SPSS (Malawski et al., SC'12) for workflow ensembles. Both are
// deterministic heuristics over mean task execution times — they have no
// notion of probabilistic constraints, which is exactly the gap Deco's
// evaluation exploits.
package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"deco/internal/dag"
	"deco/internal/dist"
	"deco/internal/estimate"
	"deco/internal/opt"
)

// Autoscaling reproduces the scheduling heuristic of Mao & Humphrey: it
// assigns each task a deadline share (deadline assignment proportional to
// the task's work along its path) and picks, per task, the cheapest instance
// type whose mean execution time fits the share. The deadline is interpreted
// deterministically on mean times, per the original algorithm.
//
// It returns the per-task type configuration in opt.State form.
func Autoscaling(w *dag.Workflow, tbl *estimate.Table, prices []float64, deadlineSec float64) (opt.State, error) {
	if deadlineSec <= 0 {
		return nil, fmt.Errorf("baseline: deadline must be positive, got %v", deadlineSec)
	}
	if len(prices) != len(tbl.Types) {
		return nil, fmt.Errorf("baseline: %d prices for %d types", len(prices), len(tbl.Types))
	}
	order, err := w.TopoOrder()
	if err != nil {
		return nil, err
	}
	k := len(tbl.Types)
	index := make(map[string]int, w.Len())
	for i, t := range w.Tasks {
		index[t.ID] = i
	}

	// Reference durations: mean time on the most cost-efficient type per
	// task (the type minimizing mean time × unit price), the "most
	// cost-efficient machine" notion of the original paper.
	ref := make(map[string]float64, w.Len())
	for _, t := range w.Tasks {
		bestCost := math.Inf(1)
		bestDur := 0.0
		for j := 0; j < k; j++ {
			td, err := tbl.Dist(t.ID, j)
			if err != nil {
				return nil, err
			}
			c := td.Mean() * prices[j]
			if c < bestCost {
				bestCost = c
				bestDur = td.Mean()
			}
		}
		ref[t.ID] = bestDur
	}

	// Deadline assignment: scale the reference schedule so the reference
	// makespan maps onto the deadline; each task's share is its scaled
	// window.
	refMakespan, refFinish, err := w.Makespan(ref)
	if err != nil {
		return nil, err
	}
	if refMakespan <= 0 {
		refMakespan = 1
	}
	scale := deadlineSec / refMakespan

	config := make(opt.State, w.Len())
	for _, id := range order {
		// The task must finish by its scaled reference finish time; its
		// start is bounded by its parents' assigned finishes.
		share := ref[id] * scale
		chosen := -1
		for j := 0; j < k; j++ { // types ordered cheapest first in the catalog
			td, err := tbl.Dist(id, j)
			if err != nil {
				return nil, err
			}
			if td.Mean() <= share {
				chosen = j
				break
			}
		}
		if chosen < 0 {
			chosen = k - 1 // no type fits: use the fastest
		}
		config[index[id]] = chosen
	}
	_ = refFinish
	return config, nil
}

// AutoscalingProbabilistic adapts the deterministic Autoscaling heuristic to
// a probabilistic deadline requirement the way the paper's comparison does
// (§6.1: "if user requires 90% of probabilistic deadline, the deadline
// setting for Autoscaling is the 90-th percentile of workflow execution time
// distribution"): the heuristic is re-run with a deflated deadline until the
// p-th percentile of its plan's makespan distribution (estimated by
// Monte-Carlo over the calibrated histograms) fits the user deadline.
func AutoscalingProbabilistic(w *dag.Workflow, tbl *estimate.Table, prices []float64,
	deadlineSec, percentile float64, iters int, rng *rand.Rand) (opt.State, error) {
	if percentile <= 0 {
		return Autoscaling(w, tbl, prices, deadlineSec)
	}
	if iters < 1 {
		iters = 100
	}
	target := deadlineSec
	var config opt.State
	for attempt := 0; attempt < 6; attempt++ {
		var err error
		config, err = Autoscaling(w, tbl, prices, target)
		if err != nil {
			return nil, err
		}
		q, err := makespanPercentile(w, tbl, config, percentile, iters, rng)
		if err != nil {
			return nil, err
		}
		if q <= deadlineSec {
			return config, nil
		}
		// Deflate proportionally to the overshoot.
		target *= deadlineSec / q
	}
	return config, nil
}

// makespanPercentile estimates the p-th percentile of a configuration's
// makespan distribution by sampling.
func makespanPercentile(w *dag.Workflow, tbl *estimate.Table, config opt.State, p float64, iters int, rng *rand.Rand) (float64, error) {
	order, err := w.TopoOrder()
	if err != nil {
		return 0, err
	}
	index := make(map[string]int, w.Len())
	for i, t := range w.Tasks {
		index[t.ID] = i
	}
	samples := make([]float64, iters)
	finish := make(map[string]float64, len(order))
	for it := 0; it < iters; it++ {
		ms := 0.0
		for _, id := range order {
			start := 0.0
			for _, par := range w.Parents(id) {
				if finish[par] > start {
					start = finish[par]
				}
			}
			td, err := tbl.Dist(id, config[index[id]])
			if err != nil {
				return 0, err
			}
			end := start + td.Sample(rng)
			finish[id] = end
			if end > ms {
				ms = end
			}
		}
		samples[it] = ms
	}
	sort.Float64s(samples)
	return dist.QuantileOf(samples, p), nil
}

// AutoscalingCost returns the Eq. 1 mean cost of an Autoscaling
// configuration, for direct comparison with Deco's objective.
func AutoscalingCost(tbl *estimate.Table, w *dag.Workflow, config opt.State, prices []float64) (float64, error) {
	if len(config) != w.Len() {
		return 0, fmt.Errorf("baseline: config length %d, want %d", len(config), w.Len())
	}
	total := 0.0
	for i, t := range w.Tasks {
		td, err := tbl.Dist(t.ID, config[i])
		if err != nil {
			return 0, err
		}
		total += td.Mean() / 3600 * prices[config[i]]
	}
	return total, nil
}
