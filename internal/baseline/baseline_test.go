package baseline

import (
	"math/rand"
	"testing"

	"deco/internal/cloud"
	"deco/internal/dag"
	"deco/internal/ensemble"
	"deco/internal/estimate"
	"deco/internal/opt"
	"deco/internal/wfgen"
)

func env(t *testing.T) (*cloud.Catalog, *estimate.Estimator, []float64) {
	t.Helper()
	cat := cloud.DefaultCatalog()
	md, err := cloud.MetadataFromTruth(cat, 15, 4000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	est := estimate.New(cat, md)
	us, _ := cat.Region(cloud.USEast)
	prices := make([]float64, len(cat.Types))
	for j, it := range cat.Types {
		prices[j] = us.PricePerHour[it.Name]
	}
	return cat, est, prices
}

func TestAutoscalingMeetsLooseDeadline(t *testing.T) {
	_, est, prices := env(t)
	w, err := wfgen.Montage(1, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := est.BuildTable(w)
	if err != nil {
		t.Fatal(err)
	}
	// Loose deadline: mean makespan all-small × 2.
	cfgSmall := map[string]int{}
	for _, task := range w.Tasks {
		cfgSmall[task.ID] = 0
	}
	means, _ := tbl.MeanDurations(cfgSmall)
	msSmall, _, _ := w.Makespan(means)

	config, err := Autoscaling(w, tbl, prices, msSmall*2)
	if err != nil {
		t.Fatal(err)
	}
	if len(config) != w.Len() {
		t.Fatalf("config length %d", len(config))
	}
	// Resulting mean makespan must fit the deadline.
	cfg := map[string]int{}
	for i, task := range w.Tasks {
		cfg[task.ID] = config[i]
	}
	means, _ = tbl.MeanDurations(cfg)
	ms, _, _ := w.Makespan(means)
	if ms > msSmall*2 {
		t.Errorf("autoscaling makespan %v exceeds deadline %v", ms, msSmall*2)
	}
}

func TestAutoscalingTightDeadlinePromotes(t *testing.T) {
	_, est, prices := env(t)
	w, err := wfgen.Pipeline(5, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := est.BuildTable(w)
	if err != nil {
		t.Fatal(err)
	}
	cfgSmall := map[string]int{}
	for _, task := range w.Tasks {
		cfgSmall[task.ID] = 0
	}
	means, _ := tbl.MeanDurations(cfgSmall)
	msSmall, _, _ := w.Makespan(means)

	loose, err := Autoscaling(w, tbl, prices, msSmall*3)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Autoscaling(w, tbl, prices, msSmall/3)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(c []int) int {
		s := 0
		for _, v := range c {
			s += v
		}
		return s
	}
	if sum(tight) <= sum(loose) {
		t.Errorf("tight deadline config %v should promote beyond loose %v", tight, loose)
	}
}

func TestAutoscalingValidation(t *testing.T) {
	_, est, prices := env(t)
	w, _ := wfgen.Pipeline(3, rand.New(rand.NewSource(4)))
	tbl, _ := est.BuildTable(w)
	if _, err := Autoscaling(w, tbl, prices, 0); err == nil {
		t.Error("zero deadline accepted")
	}
	if _, err := Autoscaling(w, tbl, prices[:1], 100); err == nil {
		t.Error("price mismatch accepted")
	}
}

func TestAutoscalingCost(t *testing.T) {
	_, est, prices := env(t)
	w := dag.New("one")
	_ = w.AddTask(&dag.Task{ID: "t", Executable: "x", CPUSeconds: 3600})
	tbl, _ := est.BuildTable(w)
	c, err := AutoscalingCost(tbl, w, []int{0}, prices)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0.044 { // one mean hour on m1.small
		t.Errorf("cost %v", c)
	}
	if _, err := AutoscalingCost(tbl, w, []int{0, 0}, prices); err == nil {
		t.Error("bad config accepted")
	}
}

func spssSpace(t *testing.T, budget float64) *ensemble.Space {
	t.Helper()
	_, est, prices := env(t)
	rng := rand.New(rand.NewSource(5))
	e, err := ensemble.Generate(ensemble.UniformUnsorted, wfgen.AppLigo, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	tblOf := func(w *dag.Workflow) (*estimate.Table, error) { return est.BuildTable(w) }
	if err := ensemble.DefaultDeadlines(e, tblOf, 2.0, 0.96); err != nil {
		t.Fatal(err)
	}
	sp, err := ensemble.NewSpace(e, budget, SPSSPlanner(tblOf, prices))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestSPSSAdmitRespectsBudget(t *testing.T) {
	sp := spssSpace(t, 5.0)
	state, err := SPSSAdmit(sp)
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.TotalCost(state); got > 5.0 {
		t.Errorf("SPSS overspent: %v > 5.0", got)
	}
	ev, err := sp.Evaluate(state, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible {
		t.Error("SPSS admission infeasible")
	}
}

func TestSPSSAdmitPrefersHighPriority(t *testing.T) {
	sp := spssSpace(t, 0)
	// Find the cheapest plan cost and set the budget to exactly the cost of
	// the highest-priority plannable workflow: SPSS must admit it and only
	// it if nothing cheaper precedes it in priority order.
	var hi int = -1
	for i, p := range sp.Plans {
		if p == nil {
			continue
		}
		if hi < 0 || sp.E.Workflows[i].Priority < sp.E.Workflows[hi].Priority {
			hi = i
		}
	}
	if hi < 0 {
		t.Skip("no plannable workflows in fixture")
	}
	sp.Budget = sp.Plans[hi].Cost
	state, err := SPSSAdmit(sp)
	if err != nil {
		t.Fatal(err)
	}
	if state[hi] != 1 {
		t.Errorf("highest-priority workflow not admitted: %v", state)
	}
}

func TestSPSSAdmitZeroBudget(t *testing.T) {
	sp := spssSpace(t, 0)
	state, err := SPSSAdmit(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i, bit := range state {
		if bit == 1 && sp.Plans[i].Cost > 0 {
			t.Errorf("admitted with zero budget: %v", state)
		}
	}
}

func TestSPSSWholeHourCostExceedsFractional(t *testing.T) {
	_, est, prices := env(t)
	w, _ := wfgen.Pipeline(4, rand.New(rand.NewSource(7)))
	tblOf := func(w *dag.Workflow) (*estimate.Table, error) { return est.BuildTable(w) }
	tbl, _ := tblOf(w)
	planner := SPSSPlanner(tblOf, prices)
	p, err := planner(w, 1e9, 0.96)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible {
		t.Fatal("huge deadline infeasible?")
	}
	frac, err := AutoscalingCost(tbl, w, p.Config, prices)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost <= frac {
		t.Errorf("SPSS whole-hour cost %v should exceed fractional %v", p.Cost, frac)
	}
}

func TestAutoscalingProbabilisticDeflates(t *testing.T) {
	_, est, prices := env(t)
	w, err := wfgen.Montage(1, rand.New(rand.NewSource(20)))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := est.BuildTable(w)
	if err != nil {
		t.Fatal(err)
	}
	// Deadline near the all-medium mean makespan: the deterministic
	// heuristic hits it on the mean but misses the 99th percentile; the
	// probabilistic variant must deflate until the percentile fits.
	cfgMed := map[string]int{}
	for _, task := range w.Tasks {
		cfgMed[task.ID] = 1
	}
	means, _ := tbl.MeanDurations(cfgMed)
	ms, _, _ := w.Makespan(means)
	deadline := ms * 1.02

	rng := rand.New(rand.NewSource(21))
	det, err := Autoscaling(w, tbl, prices, deadline)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := AutoscalingProbabilistic(w, tbl, prices, deadline, 0.99, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The probabilistic plan's 99th percentile fits the deadline.
	q, err := makespanPercentile(w, tbl, prob, 0.99, 500, rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatal(err)
	}
	// Allow slight sampling slack beyond the deadline.
	if q > deadline*1.05 {
		t.Errorf("probabilistic plan's p99 %v exceeds deadline %v", q, deadline)
	}
	// The probabilistic variant promotes at least as much as the
	// deterministic one.
	sum := func(c opt.State) int {
		s := 0
		for _, v := range c {
			s += v
		}
		return s
	}
	if sum(prob) < sum(det) {
		t.Errorf("probabilistic config %d demoted below deterministic %d", sum(prob), sum(det))
	}
	// Percentile <= 0 falls back to the deterministic algorithm.
	fb, err := AutoscalingProbabilistic(w, tbl, prices, deadline, 0, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sum(fb) != sum(det) {
		t.Errorf("fallback differs from deterministic: %d vs %d", sum(fb), sum(det))
	}
}

func TestMakespanPercentileMonotone(t *testing.T) {
	_, est, _ := env(t)
	w, _ := wfgen.Pipeline(4, rand.New(rand.NewSource(23)))
	tbl, _ := est.BuildTable(w)
	cfg := make(opt.State, w.Len())
	rng := rand.New(rand.NewSource(24))
	q50, err := makespanPercentile(w, tbl, cfg, 0.5, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	q95, err := makespanPercentile(w, tbl, cfg, 0.95, 400, rand.New(rand.NewSource(24)))
	if err != nil {
		t.Fatal(err)
	}
	if q95 < q50 {
		t.Errorf("p95 %v below p50 %v", q95, q50)
	}
	if q50 <= 0 {
		t.Error("non-positive percentile")
	}
}
