package wfgen

import (
	"math/rand"
	"testing"

	"deco/internal/dag"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestMontageStructure(t *testing.T) {
	w, err := Montage(1, rng(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// All nine Montage executables present.
	execs := map[string]int{}
	for _, task := range w.Tasks {
		execs[task.Executable]++
	}
	for _, e := range []string{"mProjectPP", "mDiffFit", "mConcatFit", "mBgModel",
		"mBackground", "mImgtbl", "mAdd", "mShrink", "mJPEG"} {
		if execs[e] == 0 {
			t.Errorf("missing executable %s", e)
		}
	}
	// One projection and one background per image.
	if execs["mProjectPP"] != execs["mBackground"] {
		t.Errorf("proj=%d bg=%d should match", execs["mProjectPP"], execs["mBackground"])
	}
	// Diffs outnumber projections (overlapping pairs).
	if execs["mDiffFit"] < execs["mProjectPP"]-1 {
		t.Errorf("too few diffs: %d", execs["mDiffFit"])
	}
	// Single final jpeg leaf.
	leaves := w.Leaves()
	if len(leaves) != 1 || leaves[0] != "jpeg" {
		t.Errorf("leaves %v", leaves)
	}
}

func TestMontageScalesWithDegree(t *testing.T) {
	w1, _ := Montage(1, rng(1))
	w4, _ := Montage(4, rng(1))
	w8, _ := Montage(8, rng(1))
	if !(w1.Len() < w4.Len() && w4.Len() < w8.Len()) {
		t.Errorf("sizes not increasing: %d %d %d", w1.Len(), w4.Len(), w8.Len())
	}
	if w1.Len() < 20 {
		t.Errorf("Montage-1 too small: %d", w1.Len())
	}
	if _, err := Montage(0, rng(1)); err == nil {
		t.Error("degree 0 accepted")
	}
}

func TestMontageDeterministicGivenSeed(t *testing.T) {
	a, _ := Montage(2, rng(99))
	b, _ := Montage(2, rng(99))
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic size")
	}
	for _, ta := range a.Tasks {
		tb := b.Task(ta.ID)
		if tb == nil || tb.CPUSeconds != ta.CPUSeconds {
			t.Fatalf("task %s differs between same-seed runs", ta.ID)
		}
	}
}

func TestLigoStructure(t *testing.T) {
	w, err := Ligo(3, rng(2))
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3*22 {
		t.Errorf("ligo size %d, want 66", w.Len())
	}
	// Each block: thinca1 has 5 inspiral parents, feeds 5 trigbanks.
	if got := len(w.Parents("b00_thinca1")); got != 5 {
		t.Errorf("thinca1 parents %d", got)
	}
	if got := len(w.Children("b00_thinca1")); got != 5 {
		t.Errorf("thinca1 children %d", got)
	}
	if _, err := Ligo(0, rng(1)); err == nil {
		t.Error("0 blocks accepted")
	}
}

func TestEpigenomicsStructure(t *testing.T) {
	w, err := Epigenomics(2, 4, rng(3))
	if err != nil {
		t.Fatal(err)
	}
	// lanes*(4*chunks+2)+3 = 2*(16+2)+3 = 39.
	if w.Len() != 39 {
		t.Errorf("epigenomics size %d, want 39", w.Len())
	}
	if leaves := w.Leaves(); len(leaves) != 1 || leaves[0] != "pileup" {
		t.Errorf("leaves %v", leaves)
	}
	// Chains inside a lane: filter -> sol -> bfq -> map.
	if ps := w.Parents("l00_c00_map"); len(ps) != 1 || ps[0] != "l00_c00_bfq" {
		t.Errorf("map parents %v", ps)
	}
	if _, err := Epigenomics(0, 1, rng(1)); err == nil {
		t.Error("0 lanes accepted")
	}
}

func TestCyberShakeStructure(t *testing.T) {
	w, err := CyberShake(2, 3, rng(4))
	if err != nil {
		t.Fatal(err)
	}
	// variations*(1+2*perVar)+2 = 2*7+2 = 16.
	if w.Len() != 16 {
		t.Errorf("cybershake size %d, want 16", w.Len())
	}
	if _, err := CyberShake(0, 1, rng(1)); err == nil {
		t.Error("0 variations accepted")
	}
}

func TestPipelineStructure(t *testing.T) {
	w, err := Pipeline(5, rng(5))
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 5 {
		t.Fatalf("pipeline size %d", w.Len())
	}
	// Strictly linear: single root, single leaf, everyone else 1-in 1-out.
	if len(w.Roots()) != 1 || len(w.Leaves()) != 1 {
		t.Error("pipeline not linear")
	}
	ms, _, err := w.Makespan(map[string]float64{"ID01": 1, "ID02": 1, "ID03": 1, "ID04": 1, "ID05": 1})
	if err != nil {
		t.Fatal(err)
	}
	if ms != 5 {
		t.Errorf("pipeline makespan %v, want 5 (sequential)", ms)
	}
	if _, err := Pipeline(0, rng(1)); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestBagStructure(t *testing.T) {
	w, err := Bag(8, 600, rng(5))
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 8 {
		t.Fatalf("bag size %d", w.Len())
	}
	// Fully independent: every task is both a root and a leaf.
	if len(w.Roots()) != 8 || len(w.Leaves()) != 8 {
		t.Errorf("bag has %d roots, %d leaves, want 8 each", len(w.Roots()), len(w.Leaves()))
	}
	for _, task := range w.Tasks {
		if task.CPUSeconds < 600*0.8 || task.CPUSeconds > 600*1.2 {
			t.Errorf("%s: CPU seconds %v outside the ±20%% jitter band", task.ID, task.CPUSeconds)
		}
	}
	if _, err := Bag(0, 600, rng(1)); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Bag(3, 0, rng(1)); err == nil {
		t.Error("zero task size accepted")
	}
}

func TestBySizeApproximatesTargets(t *testing.T) {
	for _, app := range []App{AppMontage, AppLigo, AppEpigenomics, AppCyberShake, AppPipeline} {
		for _, n := range []int{20, 100, 1000} {
			w, err := BySize(app, n, rng(6))
			if err != nil {
				t.Fatalf("%s/%d: %v", app, n, err)
			}
			if err := w.Validate(); err != nil {
				t.Fatalf("%s/%d: %v", app, n, err)
			}
			// Within a factor of 3 of the requested size (structure is quantized).
			if w.Len() < n/3 || w.Len() > n*3 {
				t.Errorf("%s size %d for target %d out of range", app, w.Len(), n)
			}
		}
	}
	if _, err := BySize("nosuch", 10, rng(1)); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := BySize(AppMontage, 0, rng(1)); err == nil {
		t.Error("size 0 accepted")
	}
}

// All generators must produce validated DAGs with positive CPU seconds and
// non-negative file sizes.
func TestGeneratorInvariants(t *testing.T) {
	gens := map[string]func() (*dag.Workflow, error){
		"montage":     func() (*dag.Workflow, error) { return Montage(3, rng(7)) },
		"ligo":        func() (*dag.Workflow, error) { return Ligo(4, rng(7)) },
		"epigenomics": func() (*dag.Workflow, error) { return Epigenomics(3, 5, rng(7)) },
		"cybershake":  func() (*dag.Workflow, error) { return CyberShake(3, 4, rng(7)) },
		"pipeline":    func() (*dag.Workflow, error) { return Pipeline(10, rng(7)) },
		"bag":         func() (*dag.Workflow, error) { return Bag(8, 300, rng(7)) },
		"funnel":      func() (*dag.Workflow, error) { return Funnel(6, 4000, 10, rng(7)) },
	}
	for name, gen := range gens {
		w, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, task := range w.Tasks {
			if task.CPUSeconds <= 0 {
				t.Errorf("%s/%s: non-positive CPU seconds", name, task.ID)
			}
			for _, f := range append(task.Inputs, task.Outputs...) {
				if f.SizeMB < 0 {
					t.Errorf("%s/%s: negative file size %v", name, task.ID, f.SizeMB)
				}
				if f.Name == "" {
					t.Errorf("%s/%s: unnamed file", name, task.ID)
				}
			}
		}
	}
}
