// Package wfgen generates synthetic scientific workflows with the structures
// and profiles of the applications the paper evaluates: Montage (astronomy
// mosaics), Ligo/Inspiral (gravitational-wave analysis), and Epigenomics
// (genome sequencing), plus CyberShake and a simple Pipeline. Structure and
// task profiles follow the published workflow characterisation the paper
// cites (Juve et al., "Characterizing and Profiling Scientific Workflows"),
// which is also the basis of the Pegasus workflow generator the authors use
// for the non-public applications.
//
// All generators are deterministic given the caller's *rand.Rand.
package wfgen

import (
	"fmt"
	"math/rand"

	"deco/internal/dag"
)

// jitter returns base scaled by a uniform factor in [1-f, 1+f].
func jitter(rng *rand.Rand, base, f float64) float64 {
	return base * (1 - f + 2*f*rng.Float64())
}

// Montage builds a Montage mosaic workflow for a square sky survey of the
// given degree (the paper's Montage-1, Montage-4 and Montage-8 are degrees 1,
// 4 and 8). The number of input images grows with the surveyed area; the
// structure is:
//
//	mProjectPP (per image) → mDiffFit (per overlapping pair) → mConcatFit →
//	mBgModel → mBackground (per image) → mImgtbl → mAdd → mShrink → mJPEG
func Montage(degree int, rng *rand.Rand) (*dag.Workflow, error) {
	if degree < 1 {
		return nil, fmt.Errorf("wfgen: montage degree must be >= 1, got %d", degree)
	}
	nImages := 2*degree*degree + 6
	w := dag.New(fmt.Sprintf("Montage-%d", degree))
	imgMB := 600.0 // one reprojected survey tile with auxiliary data: Montage is I/O-intensive (§1: "Montage and Ligo on hundreds of GB")

	// mProjectPP: reproject each input image.
	proj := make([]string, nImages)
	for i := 0; i < nImages; i++ {
		id := fmt.Sprintf("proj%04d", i)
		proj[i] = id
		if err := w.AddTask(&dag.Task{
			ID: id, Executable: "mProjectPP",
			CPUSeconds: jitter(rng, 90, 0.3),
			Inputs:     []dag.File{{Name: fmt.Sprintf("img%04d.fits", i), SizeMB: imgMB}},
			Outputs:    []dag.File{{Name: fmt.Sprintf("p%04d.fits", i), SizeMB: imgMB * 1.1}},
		}); err != nil {
			return nil, err
		}
	}
	// mDiffFit: one per overlapping pair; images overlap their neighbours.
	var diffs []string
	for i := 0; i < nImages-1; i++ {
		// Neighbour overlaps: (i, i+1) always, (i, i+2) half of the time, so
		// the diff count is ~1.5x the projection count as in real mosaics.
		pairs := [][2]int{{i, i + 1}}
		if i+2 < nImages && i%2 == 0 {
			pairs = append(pairs, [2]int{i, i + 2})
		}
		for _, pr := range pairs {
			id := fmt.Sprintf("diff%04d_%04d", pr[0], pr[1])
			diffs = append(diffs, id)
			if err := w.AddTask(&dag.Task{
				ID: id, Executable: "mDiffFit",
				CPUSeconds: jitter(rng, 45, 0.3),
				Inputs: []dag.File{
					{Name: fmt.Sprintf("p%04d.fits", pr[0]), SizeMB: imgMB * 1.1},
					{Name: fmt.Sprintf("p%04d.fits", pr[1]), SizeMB: imgMB * 1.1},
				},
				Outputs: []dag.File{{Name: id + ".fit", SizeMB: 0.01}},
			}); err != nil {
				return nil, err
			}
			if err := w.AddEdge(proj[pr[0]], id); err != nil {
				return nil, err
			}
			if err := w.AddEdge(proj[pr[1]], id); err != nil {
				return nil, err
			}
		}
	}
	// mConcatFit: merge all plane-fit parameters.
	concatIn := make([]dag.File, len(diffs))
	for i, d := range diffs {
		concatIn[i] = dag.File{Name: d + ".fit", SizeMB: 0.01}
	}
	if err := w.AddTask(&dag.Task{
		ID: "concatfit", Executable: "mConcatFit",
		CPUSeconds: jitter(rng, 150, 0.2),
		Inputs:     concatIn,
		Outputs:    []dag.File{{Name: "fits.tbl", SizeMB: 0.1}},
	}); err != nil {
		return nil, err
	}
	for _, d := range diffs {
		if err := w.AddEdge(d, "concatfit"); err != nil {
			return nil, err
		}
	}
	// mBgModel: global background model.
	if err := w.AddTask(&dag.Task{
		ID: "bgmodel", Executable: "mBgModel",
		CPUSeconds: jitter(rng, 300, 0.2),
		Inputs:     []dag.File{{Name: "fits.tbl", SizeMB: 0.1}},
		Outputs:    []dag.File{{Name: "corrections.tbl", SizeMB: 0.1}},
	}); err != nil {
		return nil, err
	}
	if err := w.AddEdge("concatfit", "bgmodel"); err != nil {
		return nil, err
	}
	// mBackground: apply correction to each projected image.
	bg := make([]string, nImages)
	for i := 0; i < nImages; i++ {
		id := fmt.Sprintf("bg%04d", i)
		bg[i] = id
		if err := w.AddTask(&dag.Task{
			ID: id, Executable: "mBackground",
			CPUSeconds: jitter(rng, 60, 0.3),
			Inputs: []dag.File{
				{Name: fmt.Sprintf("p%04d.fits", i), SizeMB: imgMB * 1.1},
				{Name: "corrections.tbl", SizeMB: 0.1},
			},
			Outputs: []dag.File{{Name: fmt.Sprintf("c%04d.fits", i), SizeMB: imgMB * 1.1}},
		}); err != nil {
			return nil, err
		}
		if err := w.AddEdge(proj[i], id); err != nil {
			return nil, err
		}
		if err := w.AddEdge("bgmodel", id); err != nil {
			return nil, err
		}
	}
	// mImgtbl → mAdd → mShrink → mJPEG tail.
	addIn := make([]dag.File, nImages)
	for i := 0; i < nImages; i++ {
		addIn[i] = dag.File{Name: fmt.Sprintf("c%04d.fits", i), SizeMB: imgMB * 1.1}
	}
	mosaicMB := float64(nImages) * imgMB
	tail := []*dag.Task{
		{ID: "imgtbl", Executable: "mImgtbl", CPUSeconds: jitter(rng, 75, 0.2),
			Inputs:  addIn,
			Outputs: []dag.File{{Name: "images.tbl", SizeMB: 0.1}}},
		{ID: "add", Executable: "mAdd", CPUSeconds: jitter(rng, 450+25*float64(nImages), 0.2),
			Inputs:  append(append([]dag.File{}, addIn...), dag.File{Name: "images.tbl", SizeMB: 0.1}),
			Outputs: []dag.File{{Name: "mosaic.fits", SizeMB: mosaicMB}}},
		{ID: "shrink", Executable: "mShrink", CPUSeconds: jitter(rng, 225, 0.2),
			Inputs:  []dag.File{{Name: "mosaic.fits", SizeMB: mosaicMB}},
			Outputs: []dag.File{{Name: "shrunken.fits", SizeMB: mosaicMB / 16}}},
		{ID: "jpeg", Executable: "mJPEG", CPUSeconds: jitter(rng, 110, 0.2),
			Inputs:  []dag.File{{Name: "shrunken.fits", SizeMB: mosaicMB / 16}},
			Outputs: []dag.File{{Name: "mosaic.jpg", SizeMB: mosaicMB / 64}}},
	}
	for _, t := range tail {
		if err := w.AddTask(t); err != nil {
			return nil, err
		}
	}
	for _, b := range bg {
		if err := w.AddEdge(b, "imgtbl"); err != nil {
			return nil, err
		}
		if err := w.AddEdge(b, "add"); err != nil {
			return nil, err
		}
	}
	for _, e := range [][2]string{{"imgtbl", "add"}, {"add", "shrink"}, {"shrink", "jpeg"}} {
		if err := w.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return w, w.Validate()
}

// Ligo builds a LIGO Inspiral gravitational-wave analysis workflow with the
// given number of analysis blocks. Each block is
//
//	TmpltBank* → Inspiral* → Thinca → TrigBank* → Inspiral2* → Thinca2
//
// with fan-in at the Thinca (coincidence) stages.
func Ligo(blocks int, rng *rand.Rand) (*dag.Workflow, error) {
	if blocks < 1 {
		return nil, fmt.Errorf("wfgen: ligo blocks must be >= 1, got %d", blocks)
	}
	w := dag.New(fmt.Sprintf("Ligo-%d", blocks))
	const perBlock = 5 // parallel channels per block
	for b := 0; b < blocks; b++ {
		thinca1 := fmt.Sprintf("b%02d_thinca1", b)
		thinca2 := fmt.Sprintf("b%02d_thinca2", b)
		var t1In, t2In []dag.File
		for c := 0; c < perBlock; c++ {
			tb := fmt.Sprintf("b%02d_tmplt%02d", b, c)
			in1 := fmt.Sprintf("b%02d_insp%02d", b, c)
			trb := fmt.Sprintf("b%02d_trig%02d", b, c)
			in2 := fmt.Sprintf("b%02d_insp2_%02d", b, c)
			chanMB := jitter(rng, 220, 0.2) // raw channel data
			tasks := []*dag.Task{
				{ID: tb, Executable: "TmpltBank", CPUSeconds: jitter(rng, 180, 0.3),
					Inputs:  []dag.File{{Name: tb + ".gwf", SizeMB: chanMB}},
					Outputs: []dag.File{{Name: tb + ".xml", SizeMB: 1}}},
				{ID: in1, Executable: "Inspiral", CPUSeconds: jitter(rng, 460, 0.3),
					Inputs: []dag.File{{Name: tb + ".xml", SizeMB: 1},
						{Name: tb + ".gwf", SizeMB: chanMB}},
					Outputs: []dag.File{{Name: in1 + ".xml", SizeMB: 2}}},
				{ID: trb, Executable: "TrigBank", CPUSeconds: jitter(rng, 30, 0.3),
					Inputs:  []dag.File{{Name: thinca1 + ".xml", SizeMB: 2}},
					Outputs: []dag.File{{Name: trb + ".xml", SizeMB: 1}}},
				{ID: in2, Executable: "Inspiral", CPUSeconds: jitter(rng, 440, 0.3),
					Inputs: []dag.File{{Name: trb + ".xml", SizeMB: 1},
						{Name: tb + ".gwf", SizeMB: chanMB}},
					Outputs: []dag.File{{Name: in2 + ".xml", SizeMB: 2}}},
			}
			for _, t := range tasks {
				if err := w.AddTask(t); err != nil {
					return nil, err
				}
			}
			t1In = append(t1In, dag.File{Name: in1 + ".xml", SizeMB: 2})
			t2In = append(t2In, dag.File{Name: in2 + ".xml", SizeMB: 2})
			for _, e := range [][2]string{{tb, in1}, {in1, thinca1}, {trb, in2}, {in2, thinca2}} {
				_ = e // edges added after thincas exist
			}
		}
		if err := w.AddTask(&dag.Task{ID: thinca1, Executable: "Thinca",
			CPUSeconds: jitter(rng, 10, 0.2), Inputs: t1In,
			Outputs: []dag.File{{Name: thinca1 + ".xml", SizeMB: 2}}}); err != nil {
			return nil, err
		}
		if err := w.AddTask(&dag.Task{ID: thinca2, Executable: "Thinca",
			CPUSeconds: jitter(rng, 10, 0.2), Inputs: t2In,
			Outputs: []dag.File{{Name: thinca2 + ".xml", SizeMB: 2}}}); err != nil {
			return nil, err
		}
		for c := 0; c < perBlock; c++ {
			tb := fmt.Sprintf("b%02d_tmplt%02d", b, c)
			in1 := fmt.Sprintf("b%02d_insp%02d", b, c)
			trb := fmt.Sprintf("b%02d_trig%02d", b, c)
			in2 := fmt.Sprintf("b%02d_insp2_%02d", b, c)
			for _, e := range [][2]string{
				{tb, in1}, {in1, thinca1}, {thinca1, trb}, {trb, in2}, {in2, thinca2},
			} {
				if err := w.AddEdge(e[0], e[1]); err != nil {
					return nil, err
				}
			}
		}
	}
	return w, w.Validate()
}

// Epigenomics builds an Epigenomics DNA-methylation workflow with the given
// number of parallel lanes and chunks per lane:
//
//	fastqSplit (per lane) → [filterContams → sol2sanger → fastq2bfq → map]
//	(per chunk) → mapMerge (per lane) → mapMergeGlobal → maqIndex → pileup
func Epigenomics(lanes, chunks int, rng *rand.Rand) (*dag.Workflow, error) {
	if lanes < 1 || chunks < 1 {
		return nil, fmt.Errorf("wfgen: epigenomics needs lanes,chunks >= 1, got %d,%d", lanes, chunks)
	}
	w := dag.New(fmt.Sprintf("Epigenomics-%dx%d", lanes, chunks))
	laneMB := 2200.0 // dozens of GB overall input, split across lanes
	var laneMerges []string
	for l := 0; l < lanes; l++ {
		split := fmt.Sprintf("l%02d_split", l)
		merge := fmt.Sprintf("l%02d_merge", l)
		laneMerges = append(laneMerges, merge)
		splitOuts := make([]dag.File, chunks)
		mergeIns := make([]dag.File, chunks)
		for c := 0; c < chunks; c++ {
			splitOuts[c] = dag.File{Name: fmt.Sprintf("l%02d_c%02d.fastq", l, c), SizeMB: laneMB / float64(chunks)}
			mergeIns[c] = dag.File{Name: fmt.Sprintf("l%02d_c%02d.map", l, c), SizeMB: laneMB / float64(chunks) / 4}
		}
		if err := w.AddTask(&dag.Task{ID: split, Executable: "fastqSplit",
			CPUSeconds: jitter(rng, 35, 0.2),
			Inputs:     []dag.File{{Name: fmt.Sprintf("lane%02d.fastq", l), SizeMB: laneMB}},
			Outputs:    splitOuts}); err != nil {
			return nil, err
		}
		for c := 0; c < chunks; c++ {
			chunkMB := laneMB / float64(chunks)
			prefix := fmt.Sprintf("l%02d_c%02d", l, c)
			chain := []*dag.Task{
				{ID: prefix + "_filter", Executable: "filterContams", CPUSeconds: jitter(rng, 20, 0.3),
					Inputs:  []dag.File{{Name: prefix + ".fastq", SizeMB: chunkMB}},
					Outputs: []dag.File{{Name: prefix + ".filtered", SizeMB: chunkMB * 0.9}}},
				{ID: prefix + "_sol", Executable: "sol2sanger", CPUSeconds: jitter(rng, 120, 0.3),
					Inputs:  []dag.File{{Name: prefix + ".filtered", SizeMB: chunkMB * 0.9}},
					Outputs: []dag.File{{Name: prefix + ".sanger", SizeMB: chunkMB * 0.9}}},
				{ID: prefix + "_bfq", Executable: "fastq2bfq", CPUSeconds: jitter(rng, 90, 0.3),
					Inputs:  []dag.File{{Name: prefix + ".sanger", SizeMB: chunkMB * 0.9}},
					Outputs: []dag.File{{Name: prefix + ".bfq", SizeMB: chunkMB * 0.4}}},
				{ID: prefix + "_map", Executable: "map", CPUSeconds: jitter(rng, 210, 0.3),
					Inputs:  []dag.File{{Name: prefix + ".bfq", SizeMB: chunkMB * 0.4}},
					Outputs: []dag.File{{Name: prefix + ".map", SizeMB: chunkMB / 4}}},
			}
			prev := split
			for _, t := range chain {
				if err := w.AddTask(t); err != nil {
					return nil, err
				}
				if err := w.AddEdge(prev, t.ID); err != nil {
					return nil, err
				}
				prev = t.ID
			}
		}
		if err := w.AddTask(&dag.Task{ID: merge, Executable: "mapMerge",
			CPUSeconds: jitter(rng, 45, 0.2), Inputs: mergeIns,
			Outputs: []dag.File{{Name: merge + ".map", SizeMB: laneMB / 4}}}); err != nil {
			return nil, err
		}
		for c := 0; c < chunks; c++ {
			if err := w.AddEdge(fmt.Sprintf("l%02d_c%02d_map", l, c), merge); err != nil {
				return nil, err
			}
		}
	}
	globalIns := make([]dag.File, lanes)
	for l, m := range laneMerges {
		globalIns[l] = dag.File{Name: m + ".map", SizeMB: laneMB / 4}
	}
	tail := []*dag.Task{
		{ID: "gmerge", Executable: "mapMerge", CPUSeconds: jitter(rng, 80, 0.2),
			Inputs:  globalIns,
			Outputs: []dag.File{{Name: "all.map", SizeMB: laneMB * float64(lanes) / 4}}},
		{ID: "maqindex", Executable: "maqIndex", CPUSeconds: jitter(rng, 140, 0.2),
			Inputs:  []dag.File{{Name: "all.map", SizeMB: laneMB * float64(lanes) / 4}},
			Outputs: []dag.File{{Name: "all.index", SizeMB: 100}}},
		{ID: "pileup", Executable: "pileup", CPUSeconds: jitter(rng, 160, 0.2),
			Inputs:  []dag.File{{Name: "all.index", SizeMB: 100}},
			Outputs: []dag.File{{Name: "methylation.txt", SizeMB: 50}}},
	}
	for _, t := range tail {
		if err := w.AddTask(t); err != nil {
			return nil, err
		}
	}
	for _, m := range laneMerges {
		if err := w.AddEdge(m, "gmerge"); err != nil {
			return nil, err
		}
	}
	if err := w.AddEdge("gmerge", "maqindex"); err != nil {
		return nil, err
	}
	if err := w.AddEdge("maqindex", "pileup"); err != nil {
		return nil, err
	}
	return w, w.Validate()
}

// CyberShake builds a CyberShake seismic-hazard workflow with the given
// number of SGT variations and synthesis tasks per variation.
func CyberShake(variations, perVar int, rng *rand.Rand) (*dag.Workflow, error) {
	if variations < 1 || perVar < 1 {
		return nil, fmt.Errorf("wfgen: cybershake needs variations,perVar >= 1")
	}
	w := dag.New(fmt.Sprintf("CyberShake-%dx%d", variations, perVar))
	zipSeisIn := []dag.File{}
	zipPSAIn := []dag.File{}
	for v := 0; v < variations; v++ {
		ex := fmt.Sprintf("v%02d_extract", v)
		sgtMB := jitter(rng, 150, 0.2)
		if err := w.AddTask(&dag.Task{ID: ex, Executable: "ExtractSGT",
			CPUSeconds: jitter(rng, 110, 0.3),
			Inputs:     []dag.File{{Name: fmt.Sprintf("sgt%02d", v), SizeMB: sgtMB * 4}},
			Outputs:    []dag.File{{Name: ex + ".sgt", SizeMB: sgtMB}}}); err != nil {
			return nil, err
		}
		for s := 0; s < perVar; s++ {
			syn := fmt.Sprintf("v%02d_synth%03d", v, s)
			pk := fmt.Sprintf("v%02d_peak%03d", v, s)
			if err := w.AddTask(&dag.Task{ID: syn, Executable: "SeismogramSynthesis",
				CPUSeconds: jitter(rng, 50, 0.3),
				Inputs:     []dag.File{{Name: ex + ".sgt", SizeMB: sgtMB}},
				Outputs:    []dag.File{{Name: syn + ".seis", SizeMB: 0.2}}}); err != nil {
				return nil, err
			}
			if err := w.AddTask(&dag.Task{ID: pk, Executable: "PeakValCalc",
				CPUSeconds: jitter(rng, 2, 0.3),
				Inputs:     []dag.File{{Name: syn + ".seis", SizeMB: 0.2}},
				Outputs:    []dag.File{{Name: pk + ".bsa", SizeMB: 0.05}}}); err != nil {
				return nil, err
			}
			if err := w.AddEdge(ex, syn); err != nil {
				return nil, err
			}
			if err := w.AddEdge(syn, pk); err != nil {
				return nil, err
			}
			zipSeisIn = append(zipSeisIn, dag.File{Name: syn + ".seis", SizeMB: 0.2})
			zipPSAIn = append(zipPSAIn, dag.File{Name: pk + ".bsa", SizeMB: 0.05})
		}
	}
	if err := w.AddTask(&dag.Task{ID: "zipseis", Executable: "ZipSeis",
		CPUSeconds: jitter(rng, 30, 0.2), Inputs: zipSeisIn,
		Outputs: []dag.File{{Name: "seis.zip", SizeMB: float64(len(zipSeisIn)) * 0.1}}}); err != nil {
		return nil, err
	}
	if err := w.AddTask(&dag.Task{ID: "zippsa", Executable: "ZipPSA",
		CPUSeconds: jitter(rng, 20, 0.2), Inputs: zipPSAIn,
		Outputs: []dag.File{{Name: "psa.zip", SizeMB: float64(len(zipPSAIn)) * 0.02}}}); err != nil {
		return nil, err
	}
	for v := 0; v < variations; v++ {
		for s := 0; s < perVar; s++ {
			if err := w.AddEdge(fmt.Sprintf("v%02d_synth%03d", v, s), "zipseis"); err != nil {
				return nil, err
			}
			if err := w.AddEdge(fmt.Sprintf("v%02d_peak%03d", v, s), "zippsa"); err != nil {
				return nil, err
			}
		}
	}
	return w, w.Validate()
}

// Pipeline builds a linear chain of n tasks, the workflow shape of the DAX
// example in Figure 4.
func Pipeline(n int, rng *rand.Rand) (*dag.Workflow, error) {
	if n < 1 {
		return nil, fmt.Errorf("wfgen: pipeline needs n >= 1, got %d", n)
	}
	w := dag.New(fmt.Sprintf("Pipeline-%d", n))
	prev := ""
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ID%02d", i+1)
		t := &dag.Task{ID: id, Executable: fmt.Sprintf("process%d", i+1),
			CPUSeconds: jitter(rng, 60, 0.4)}
		if i > 0 {
			t.Inputs = []dag.File{{Name: fmt.Sprintf("f.b%d", i), SizeMB: 20}}
		} else {
			t.Inputs = []dag.File{{Name: "f.a", SizeMB: 20}}
		}
		t.Outputs = []dag.File{{Name: fmt.Sprintf("f.b%d", i+1), SizeMB: 20}}
		if err := w.AddTask(t); err != nil {
			return nil, err
		}
		if prev != "" {
			if err := w.AddEdge(prev, id); err != nil {
				return nil, err
			}
		}
		prev = id
	}
	return w, w.Validate()
}

// App identifies a workflow application type.
type App string

// The application types used in the paper's evaluation.
const (
	AppMontage     App = "montage"
	AppLigo        App = "ligo"
	AppEpigenomics App = "epigenomics"
	AppCyberShake  App = "cybershake"
	AppPipeline    App = "pipeline"
)

// BySize generates a workflow of the given application type with
// approximately n tasks, as the paper's ensemble experiments require
// ("3 different workflow sizes from 20, 100 to 1000 tasks").
func BySize(app App, n int, rng *rand.Rand) (*dag.Workflow, error) {
	if n < 1 {
		return nil, fmt.Errorf("wfgen: size must be >= 1, got %d", n)
	}
	switch app {
	case AppMontage:
		// Task count ≈ 4.5*images + 6; images = 2d^2+6.
		d := 1
		for 4*(2*d*d+6)+6 < n {
			d++
		}
		return Montage(d, rng)
	case AppLigo:
		// 22 tasks per block.
		b := (n + 21) / 22
		if b < 1 {
			b = 1
		}
		return Ligo(b, rng)
	case AppEpigenomics:
		// lanes*(4*chunks+2)+3 tasks.
		lanes := 2
		chunks := (n/lanes - 2) / 4
		if chunks < 1 {
			chunks = 1
		}
		return Epigenomics(lanes, chunks, rng)
	case AppCyberShake:
		// variations*(1+2*perVar)+2 tasks.
		variations := 4
		perVar := (n/variations - 1) / 2
		if perVar < 1 {
			perVar = 1
		}
		return CyberShake(variations, perVar, rng)
	case AppPipeline:
		return Pipeline(n, rng)
	default:
		return nil, fmt.Errorf("wfgen: unknown application %q", app)
	}
}

// Bag builds a bag-of-tasks: n independent CPU-bound tasks of roughly
// cpuSeconds each (±20% jitter), with token I/O. No task depends on any
// other, so no two tasks can share an instance's partial hour — the
// embarrassingly-parallel shape that dominates spot-market workloads, where
// every instance is independently exposed to revocation and a reclaimed
// task can restart anywhere without stalling siblings.
func Bag(n int, cpuSeconds float64, rng *rand.Rand) (*dag.Workflow, error) {
	if n < 1 {
		return nil, fmt.Errorf("wfgen: bag needs n >= 1, got %d", n)
	}
	if cpuSeconds <= 0 {
		return nil, fmt.Errorf("wfgen: bag needs positive task size, got %v", cpuSeconds)
	}
	w := dag.New(fmt.Sprintf("Bag-%d", n))
	for i := 0; i < n; i++ {
		t := &dag.Task{ID: fmt.Sprintf("job%03d", i), Executable: "job",
			CPUSeconds: jitter(rng, cpuSeconds, 0.2),
			Inputs:     []dag.File{{Name: fmt.Sprintf("in%03d", i), SizeMB: 5}},
			Outputs:    []dag.File{{Name: fmt.Sprintf("out%03d", i), SizeMB: 5}}}
		if err := w.AddTask(t); err != nil {
			return nil, err
		}
	}
	return w, w.Validate()
}

// Funnel builds an ingest-then-reduce pipeline: stage 0 reads a large raw
// dataset (rawMB), later stages chain small intermediates (interMB). The
// shape makes multi-cloud migration decisions genuinely dynamic (§3.3):
// moving the raw input across regions never pays, but once the ingest task
// has consumed it the live data shrinks by orders of magnitude and
// migrating to a cheaper region becomes profitable — a moment only runtime
// re-optimization catches.
func Funnel(n int, rawMB, interMB float64, rng *rand.Rand) (*dag.Workflow, error) {
	if n < 2 {
		return nil, fmt.Errorf("wfgen: funnel needs at least 2 stages, got %d", n)
	}
	if rawMB <= 0 || interMB <= 0 {
		return nil, fmt.Errorf("wfgen: funnel needs positive data sizes")
	}
	w := dag.New(fmt.Sprintf("Funnel-%d", n))
	prev := ""
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%03d", i)
		t := &dag.Task{ID: id, Executable: fmt.Sprintf("stage%d", i),
			CPUSeconds: jitter(rng, 60, 0.2)}
		if i == 0 {
			t.Inputs = []dag.File{{Name: "raw", SizeMB: rawMB}}
		} else {
			t.Inputs = []dag.File{{Name: fmt.Sprintf("d%03d", i-1), SizeMB: interMB}}
		}
		t.Outputs = []dag.File{{Name: fmt.Sprintf("d%03d", i), SizeMB: interMB}}
		if err := w.AddTask(t); err != nil {
			return nil, err
		}
		if prev != "" {
			if err := w.AddEdge(prev, id); err != nil {
				return nil, err
			}
		}
		prev = id
	}
	return w, w.Validate()
}
