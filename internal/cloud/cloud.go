// Package cloud models the IaaS offerings Deco optimizes over: instance
// types with prices and capabilities, regions with distinct pricing (the
// paper's US East and Asia Pacific/Singapore regions), and the performance
// metadata store holding calibrated I/O and network distributions as
// histograms (§4.2, "import(cloud)").
package cloud

import (
	"fmt"
	"math/rand"
	"strings"

	"deco/internal/dist"
)

// InstanceType describes one VM offering. ECU is the CPU capability factor
// relative to the 1-ECU reference machine used for task profiling; the paper
// treats CPU performance as stable, so it is a constant, while I/O and
// network performance are probabilistic.
type InstanceType struct {
	Name  string
	ECU   float64
	MemGB float64
}

// Region is a cloud data center with its own instance pricing and
// networking price to other regions.
type Region struct {
	Name string
	// PricePerHour maps instance type name to its hourly price in USD.
	PricePerHour map[string]float64
	// NetPricePerGB maps destination region name to the USD price of
	// transferring one GB out of this region to it.
	NetPricePerGB map[string]float64
	// Spot maps instance type name to that type's preemptible market in this
	// region. Types without an entry have no spot offering here.
	Spot map[string]SpotMarket
}

// SpotMarket describes the preemptible offering of one instance type in one
// region: a stationary clearing-price process plus a Poisson revocation
// hazard. On-demand pricing is the degenerate market — zero price variance,
// zero hazard — and lives in Region.PricePerHour, not here.
type SpotMarket struct {
	// PricePerHourMean is the mean hourly clearing price in USD.
	PricePerHourMean float64
	// PriceSigma is the relative standard deviation of the clearing price:
	// a draw is PricePerHourMean·(1+PriceSigma·z) with z standard normal,
	// floored at SpotPriceFloorFrac of the mean.
	PriceSigma float64
	// RevocationsPerHour is the Poisson revocation hazard λ: the time until
	// a freshly acquired instance is reclaimed is Exponential(λ) hours.
	RevocationsPerHour float64
}

// SpotPriceFloorFrac floors sampled spot prices at this fraction of the
// market mean, so a deep-left-tail normal draw can never price an instance
// at zero or below.
const SpotPriceFloorFrac = 0.1

// spotSuffix marks the virtual type name of a spot offering. The expanded
// estimation tables append one "<base>:spot" column per spot market after
// the on-demand columns; the suffix keeps the two namespaces disjoint
// because ':' can never appear in a catalog type name.
const spotSuffix = ":spot"

// SpotName returns the virtual type name of base's spot offering.
func SpotName(base string) string { return base + spotSuffix }

// IsSpotName reports whether name refers to a spot offering.
func IsSpotName(name string) bool { return strings.HasSuffix(name, spotSuffix) }

// BaseType strips the spot suffix, returning the underlying catalog type
// name; on-demand names pass through unchanged.
func BaseType(name string) string { return strings.TrimSuffix(name, spotSuffix) }

// PerfModel holds the ground-truth performance distributions of the cloud —
// what the simulator draws from, and what calibration tries to recover.
// Units: SeqIO in MB/s, RandIO in IOPS (512-byte reads), Net in MB/s.
type PerfModel struct {
	SeqIO  map[string]dist.Dist
	RandIO map[string]dist.Dist
	Net    map[string]dist.Dist
	// CrossRegionNet is the bandwidth between any two regions in MB/s.
	CrossRegionNet dist.Dist
}

// Catalog is a complete description of the cloud(s) available to Deco.
type Catalog struct {
	Types   []InstanceType
	Regions []Region
	Perf    PerfModel
}

// TypeNames returns the instance type names in catalog order.
func (c *Catalog) TypeNames() []string {
	names := make([]string, len(c.Types))
	for i, t := range c.Types {
		names[i] = t.Name
	}
	return names
}

// Type returns the instance type with the given name, or an error.
func (c *Catalog) Type(name string) (InstanceType, error) {
	for _, t := range c.Types {
		if t.Name == name {
			return t, nil
		}
	}
	return InstanceType{}, fmt.Errorf("cloud: unknown instance type %q", name)
}

// TypeIndex returns the catalog index of the named type, or -1.
func (c *Catalog) TypeIndex(name string) int {
	for i, t := range c.Types {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// Region returns the region with the given name, or an error.
func (c *Catalog) Region(name string) (Region, error) {
	for _, r := range c.Regions {
		if r.Name == name {
			return r, nil
		}
	}
	return Region{}, fmt.Errorf("cloud: unknown region %q", name)
}

// Price returns the hourly price of the named type in the named region.
func (c *Catalog) Price(region, typ string) (float64, error) {
	r, err := c.Region(region)
	if err != nil {
		return 0, err
	}
	p, ok := r.PricePerHour[typ]
	if !ok {
		return 0, fmt.Errorf("cloud: type %q not offered in region %q", typ, region)
	}
	return p, nil
}

// Spot returns the spot market of the named type in the named region, or an
// error when the region is unknown or the type has no spot offering there.
func (c *Catalog) Spot(region, typ string) (SpotMarket, error) {
	r, err := c.Region(region)
	if err != nil {
		return SpotMarket{}, err
	}
	m, ok := r.Spot[BaseType(typ)]
	if !ok {
		return SpotMarket{}, fmt.Errorf("cloud: type %q has no spot market in region %q", BaseType(typ), region)
	}
	return m, nil
}

// Validate checks that every region prices every type and all performance
// distributions exist.
func (c *Catalog) Validate() error {
	if len(c.Types) == 0 {
		return fmt.Errorf("cloud: catalog has no instance types")
	}
	if len(c.Regions) == 0 {
		return fmt.Errorf("cloud: catalog has no regions")
	}
	regions := make(map[string]bool, len(c.Regions))
	for _, r := range c.Regions {
		regions[r.Name] = true
	}
	for _, r := range c.Regions {
		for _, t := range c.Types {
			if _, ok := r.PricePerHour[t.Name]; !ok {
				return fmt.Errorf("cloud: region %s missing price for %s", r.Name, t.Name)
			}
		}
		// A typoed destination used to silently price cross-region transfers
		// as free (map miss = zero); reject it at load time instead.
		for dst := range r.NetPricePerGB {
			if !regions[dst] {
				return fmt.Errorf("cloud: region %s prices network to unknown region %q", r.Name, dst)
			}
		}
		for typ, m := range r.Spot {
			if IsSpotName(typ) {
				return fmt.Errorf("cloud: region %s spot market keyed by virtual name %q; use the base type", r.Name, typ)
			}
			if c.TypeIndex(typ) < 0 {
				return fmt.Errorf("cloud: region %s has a spot market for unknown type %q", r.Name, typ)
			}
			if m.PricePerHourMean <= 0 {
				return fmt.Errorf("cloud: region %s spot market %s has non-positive mean price %v", r.Name, typ, m.PricePerHourMean)
			}
			if m.PriceSigma < 0 {
				return fmt.Errorf("cloud: region %s spot market %s has negative price sigma %v", r.Name, typ, m.PriceSigma)
			}
			if m.RevocationsPerHour < 0 {
				return fmt.Errorf("cloud: region %s spot market %s has negative revocation hazard %v", r.Name, typ, m.RevocationsPerHour)
			}
		}
	}
	for _, t := range c.Types {
		if c.Perf.SeqIO[t.Name] == nil || c.Perf.RandIO[t.Name] == nil || c.Perf.Net[t.Name] == nil {
			return fmt.Errorf("cloud: missing performance model for %s", t.Name)
		}
	}
	if c.Perf.CrossRegionNet == nil {
		return fmt.Errorf("cloud: missing cross-region network model")
	}
	return nil
}

// USEast and APSoutheast are the two regions the follow-the-cost use case
// migrates between (§3.3: "prices of instances in the Singapore region are
// higher than those of the same type in the US East region").
const (
	USEast      = "us-east-1"
	APSoutheast = "ap-southeast-1"
)

// DefaultCatalog returns the EC2-like catalog the paper evaluates on: the
// four m1 instance types, the US East and Singapore regions (Singapore ~33%
// more expensive), and the ground-truth performance distributions of
// Table 2 (sequential I/O Gamma, random I/O Normal) plus network Normals
// whose relative variance shrinks with instance size (Figures 6-7).
func DefaultCatalog() *Catalog {
	usPrices := map[string]float64{
		"m1.small":  0.044,
		"m1.medium": 0.087,
		"m1.large":  0.175,
		"m1.xlarge": 0.350,
	}
	sgPrices := map[string]float64{}
	for k, v := range usPrices {
		sgPrices[k] = v * 1.33 // the 33% price difference cited in §6.1
	}
	cat := &Catalog{
		Types: []InstanceType{
			{Name: "m1.small", ECU: 1, MemGB: 1.7},
			{Name: "m1.medium", ECU: 2, MemGB: 3.75},
			{Name: "m1.large", ECU: 4, MemGB: 7.5},
			{Name: "m1.xlarge", ECU: 8, MemGB: 15},
		},
		Regions: []Region{
			{
				Name:          USEast,
				PricePerHour:  usPrices,
				NetPricePerGB: map[string]float64{APSoutheast: 0.09},
				Spot:          spotMarkets(usPrices, 0.30, 0.25, 0.6),
			},
			{
				Name:          APSoutheast,
				PricePerHour:  sgPrices,
				NetPricePerGB: map[string]float64{USEast: 0.12},
				// The smaller Singapore market clears closer to on-demand and
				// reclaims capacity more often.
				Spot: spotMarkets(sgPrices, 0.38, 0.30, 0.9),
			},
		},
		Perf: PerfModel{
			// Table 2 ground truth (sequential I/O in MB/s, random I/O IOPS).
			SeqIO: map[string]dist.Dist{
				"m1.small":  dist.NewGamma(129.3, 0.79),
				"m1.medium": dist.NewGamma(127.1, 0.80),
				"m1.large":  dist.NewGamma(376.6, 0.28),
				"m1.xlarge": dist.NewGamma(408.1, 0.26),
			},
			RandIO: map[string]dist.Dist{
				"m1.small":  dist.NewNormal(150.3, 50.0),
				"m1.medium": dist.NewNormal(128.9, 8.4),
				"m1.large":  dist.NewNormal(172.9, 34.8),
				"m1.xlarge": dist.NewNormal(1034.0, 146.4),
			},
			// Network bandwidth per endpoint type, MB/s. Larger instances get
			// faster, more stable networking (Fig. 7: m1.medium varies far
			// more than m1.large; Fig. 6: m1.medium variance up to ~50%).
			Net: map[string]dist.Dist{
				"m1.small":  dist.NewNormal(55, 11),
				"m1.medium": dist.NewNormal(75, 13),
				"m1.large":  dist.NewNormal(100, 6),
				"m1.xlarge": dist.NewNormal(120, 5),
			},
			CrossRegionNet: dist.NewNormal(25, 6),
		},
	}
	return cat
}

// spotMarkets derives one spot market per on-demand offering: the mean
// clearing price is frac of the on-demand price, with the given relative
// sigma and revocation hazard shared across types.
func spotMarkets(onDemand map[string]float64, frac, sigma, lambda float64) map[string]SpotMarket {
	m := make(map[string]SpotMarket, len(onDemand))
	for typ, p := range onDemand {
		m[typ] = SpotMarket{
			PricePerHourMean:   p * frac,
			PriceSigma:         sigma,
			RevocationsPerHour: lambda,
		}
	}
	return m
}

// LinkDist returns the effective bandwidth distribution between two instance
// types: the weaker endpoint bounds the link, matching the paper's
// measurement that an m1.medium↔m1.large link behaves like the m1.medium
// endpoint (Fig. 7b).
func (c *Catalog) LinkDist(typeA, typeB string) (dist.Dist, error) {
	a, ok := c.Perf.Net[typeA]
	if !ok {
		return nil, fmt.Errorf("cloud: no network model for %q", typeA)
	}
	b, ok := c.Perf.Net[typeB]
	if !ok {
		return nil, fmt.Errorf("cloud: no network model for %q", typeB)
	}
	if a.Mean() <= b.Mean() {
		return a, nil
	}
	return b, nil
}

// Metadata is the calibrated-performance store: discretized histograms per
// instance type and metric, which the probabilistic IR samples from. It is
// the product of the calibration pipeline (package calib) and the input to
// import(cloud).
type Metadata struct {
	SeqIO          map[string]*dist.Histogram
	RandIO         map[string]*dist.Histogram
	Net            map[string]*dist.Histogram
	CrossRegionNet *dist.Histogram
}

// NewMetadata returns an empty store.
func NewMetadata() *Metadata {
	return &Metadata{
		SeqIO:  map[string]*dist.Histogram{},
		RandIO: map[string]*dist.Histogram{},
		Net:    map[string]*dist.Histogram{},
	}
}

// MetadataFromTruth discretizes the catalog's ground-truth distributions
// into a metadata store with the given number of histogram bins. It is the
// shortcut the tests and experiments use in place of running the full
// calibration micro-benchmarks (package calib produces the same structure
// from measurements).
func MetadataFromTruth(cat *Catalog, bins, samples int, rng *rand.Rand) (*Metadata, error) {
	md := NewMetadata()
	for _, t := range cat.Types {
		h, err := dist.Discretize(cat.Perf.SeqIO[t.Name], bins, samples, rng)
		if err != nil {
			return nil, fmt.Errorf("cloud: seqio %s: %w", t.Name, err)
		}
		md.SeqIO[t.Name] = h
		if h, err = dist.Discretize(cat.Perf.RandIO[t.Name], bins, samples, rng); err != nil {
			return nil, fmt.Errorf("cloud: randio %s: %w", t.Name, err)
		}
		md.RandIO[t.Name] = h
		if h, err = dist.Discretize(cat.Perf.Net[t.Name], bins, samples, rng); err != nil {
			return nil, fmt.Errorf("cloud: net %s: %w", t.Name, err)
		}
		md.Net[t.Name] = h
	}
	h, err := dist.Discretize(cat.Perf.CrossRegionNet, bins, samples, rng)
	if err != nil {
		return nil, fmt.Errorf("cloud: cross-region net: %w", err)
	}
	md.CrossRegionNet = h
	return md, nil
}

// Validate checks the store covers every type in the catalog.
func (m *Metadata) Validate(cat *Catalog) error {
	for _, t := range cat.Types {
		if m.SeqIO[t.Name] == nil {
			return fmt.Errorf("cloud: metadata missing seq I/O for %s", t.Name)
		}
		if m.RandIO[t.Name] == nil {
			return fmt.Errorf("cloud: metadata missing rand I/O for %s", t.Name)
		}
		if m.Net[t.Name] == nil {
			return fmt.Errorf("cloud: metadata missing network for %s", t.Name)
		}
	}
	if m.CrossRegionNet == nil {
		return fmt.Errorf("cloud: metadata missing cross-region network")
	}
	return nil
}
