package cloud

import (
	"math"
	"testing"
)

func TestScalePerfScalesTruthNotPrices(t *testing.T) {
	cat := DefaultCatalog()
	out, err := ScalePerf(cat, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, typ := range cat.Types {
		if got, want := out.Types[i].ECU, typ.ECU*0.5; math.Abs(got-want) > 1e-12 {
			t.Errorf("%s ECU %v, want %v", typ.Name, got, want)
		}
	}
	for _, typ := range cat.TypeNames() {
		if got, want := out.Perf.SeqIO[typ].Mean(), cat.Perf.SeqIO[typ].Mean()*0.5; math.Abs(got-want) > 1e-9 {
			t.Errorf("%s seq I/O mean %v, want %v", typ, got, want)
		}
		if got, want := out.Perf.Net[typ].Mean(), cat.Perf.Net[typ].Mean()*0.5; math.Abs(got-want) > 1e-9 {
			t.Errorf("%s net mean %v, want %v", typ, got, want)
		}
	}
	if cat.Perf.CrossRegionNet != nil {
		if got, want := out.Perf.CrossRegionNet.Mean(), cat.Perf.CrossRegionNet.Mean()*0.5; math.Abs(got-want) > 1e-9 {
			t.Errorf("cross-region mean %v, want %v", got, want)
		}
	}
	for _, r := range cat.Regions {
		for _, typ := range cat.TypeNames() {
			want, _ := cat.Price(r.Name, typ)
			got, err := out.Price(r.Name, typ)
			if err != nil || got != want {
				t.Errorf("price %s/%s changed: %v (want %v) %v", r.Name, typ, got, want, err)
			}
		}
	}
	// The original catalog is untouched.
	fresh := DefaultCatalog()
	for i := range cat.Types {
		if cat.Types[i].ECU != fresh.Types[i].ECU {
			t.Fatalf("ScalePerf mutated its input (%s ECU)", cat.Types[i].Name)
		}
	}
}

func TestScalePerfRejectsBadFactors(t *testing.T) {
	for _, f := range []float64{0, -1} {
		if _, err := ScalePerf(DefaultCatalog(), f); err == nil {
			t.Errorf("factor %v accepted", f)
		}
	}
}
