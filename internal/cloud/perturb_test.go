package cloud

import (
	"math"
	"testing"
)

func TestScalePerfScalesTruthNotPrices(t *testing.T) {
	cat := DefaultCatalog()
	out, err := ScalePerf(cat, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, typ := range cat.Types {
		if got, want := out.Types[i].ECU, typ.ECU*0.5; math.Abs(got-want) > 1e-12 {
			t.Errorf("%s ECU %v, want %v", typ.Name, got, want)
		}
	}
	for _, typ := range cat.TypeNames() {
		if got, want := out.Perf.SeqIO[typ].Mean(), cat.Perf.SeqIO[typ].Mean()*0.5; math.Abs(got-want) > 1e-9 {
			t.Errorf("%s seq I/O mean %v, want %v", typ, got, want)
		}
		if got, want := out.Perf.Net[typ].Mean(), cat.Perf.Net[typ].Mean()*0.5; math.Abs(got-want) > 1e-9 {
			t.Errorf("%s net mean %v, want %v", typ, got, want)
		}
	}
	if cat.Perf.CrossRegionNet != nil {
		if got, want := out.Perf.CrossRegionNet.Mean(), cat.Perf.CrossRegionNet.Mean()*0.5; math.Abs(got-want) > 1e-9 {
			t.Errorf("cross-region mean %v, want %v", got, want)
		}
	}
	for _, r := range cat.Regions {
		for _, typ := range cat.TypeNames() {
			want, _ := cat.Price(r.Name, typ)
			got, err := out.Price(r.Name, typ)
			if err != nil || got != want {
				t.Errorf("price %s/%s changed: %v (want %v) %v", r.Name, typ, got, want, err)
			}
		}
	}
	// The original catalog is untouched.
	fresh := DefaultCatalog()
	for i := range cat.Types {
		if cat.Types[i].ECU != fresh.Types[i].ECU {
			t.Fatalf("ScalePerf mutated its input (%s ECU)", cat.Types[i].Name)
		}
	}
}

func TestScalePerfRejectsBadFactors(t *testing.T) {
	for _, f := range []float64{0, -1} {
		if _, err := ScalePerf(DefaultCatalog(), f); err == nil {
			t.Errorf("factor %v accepted", f)
		}
	}
}

func TestScaleHazardScalesOnlyRevocations(t *testing.T) {
	cat := DefaultCatalog()
	out, err := ScaleHazard(cat, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, r := range cat.Regions {
		scaled, err := out.Region(r.Name)
		if err != nil {
			t.Fatal(err)
		}
		for typ, m := range r.Spot {
			got := scaled.Spot[typ]
			if math.Abs(got.RevocationsPerHour-m.RevocationsPerHour*30) > 1e-12 {
				t.Errorf("%s/%s hazard %v, want %v", r.Name, typ, got.RevocationsPerHour, m.RevocationsPerHour*30)
			}
			if got.PricePerHourMean != m.PricePerHourMean || got.PriceSigma != m.PriceSigma {
				t.Errorf("%s/%s price process changed: %+v vs %+v", r.Name, typ, got, m)
			}
		}
		for typ, want := range r.PricePerHour {
			if got := scaled.PricePerHour[typ]; got != want {
				t.Errorf("%s/%s on-demand price changed: %v vs %v", r.Name, typ, got, want)
			}
		}
	}
	// Factor 0 disarms the hazard; the original catalog is never mutated.
	zero, err := ScaleHazard(cat, 0)
	if err != nil {
		t.Fatal(err)
	}
	us, _ := zero.Region(USEast)
	for typ, m := range us.Spot {
		if m.RevocationsPerHour != 0 {
			t.Errorf("%s hazard %v after factor 0", typ, m.RevocationsPerHour)
		}
	}
	fresh := DefaultCatalog()
	usOrig, _ := cat.Region(USEast)
	usFresh, _ := fresh.Region(USEast)
	if usOrig.Spot["m1.small"] != usFresh.Spot["m1.small"] {
		t.Fatal("ScaleHazard mutated its input")
	}
	if _, err := ScaleHazard(cat, -1); err == nil {
		t.Error("negative factor accepted")
	}
}
