package cloud

import (
	"math"
	"math/rand"
	"testing"
)

func TestDefaultCatalogValid(t *testing.T) {
	cat := DefaultCatalog()
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cat.Types) != 4 {
		t.Errorf("types %d, want 4", len(cat.Types))
	}
	names := cat.TypeNames()
	want := []string{"m1.small", "m1.medium", "m1.large", "m1.xlarge"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("type %d = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestPriceLookups(t *testing.T) {
	cat := DefaultCatalog()
	us, err := cat.Price(USEast, "m1.small")
	if err != nil {
		t.Fatal(err)
	}
	if us != 0.044 { // the paper's m1.small price (§4.2 example fact)
		t.Errorf("us m1.small price %v", us)
	}
	sg, err := cat.Price(APSoutheast, "m1.small")
	if err != nil {
		t.Fatal(err)
	}
	// §6.1: "the price difference of the m1.small instances is 33%".
	if math.Abs(sg/us-1.33) > 1e-9 {
		t.Errorf("sg/us ratio %v, want 1.33", sg/us)
	}
	if _, err := cat.Price("nowhere", "m1.small"); err == nil {
		t.Error("unknown region accepted")
	}
	if _, err := cat.Price(USEast, "m9.mega"); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestTypeLookups(t *testing.T) {
	cat := DefaultCatalog()
	it, err := cat.Type("m1.large")
	if err != nil {
		t.Fatal(err)
	}
	if it.ECU != 4 {
		t.Errorf("m1.large ECU %v", it.ECU)
	}
	if _, err := cat.Type("zzz"); err == nil {
		t.Error("unknown type accepted")
	}
	if got := cat.TypeIndex("m1.medium"); got != 1 {
		t.Errorf("index %d", got)
	}
	if got := cat.TypeIndex("zzz"); got != -1 {
		t.Errorf("index of unknown %d", got)
	}
}

func TestECUAndPricesMonotone(t *testing.T) {
	cat := DefaultCatalog()
	us, _ := cat.Region(USEast)
	prevECU, prevPrice := 0.0, 0.0
	for _, it := range cat.Types {
		if it.ECU <= prevECU {
			t.Errorf("ECU not increasing at %s", it.Name)
		}
		if us.PricePerHour[it.Name] <= prevPrice {
			t.Errorf("price not increasing at %s", it.Name)
		}
		prevECU, prevPrice = it.ECU, us.PricePerHour[it.Name]
	}
}

func TestTable2GroundTruth(t *testing.T) {
	cat := DefaultCatalog()
	// Spot-check two Table 2 entries via the distribution moments.
	seq := cat.Perf.SeqIO["m1.small"]
	if math.Abs(seq.Mean()-129.3*0.79) > 1e-9 {
		t.Errorf("m1.small seq mean %v", seq.Mean())
	}
	randIO := cat.Perf.RandIO["m1.xlarge"]
	if randIO.Mean() != 1034.0 {
		t.Errorf("m1.xlarge rand mean %v", randIO.Mean())
	}
}

func TestLinkDistWeakerEndpoint(t *testing.T) {
	cat := DefaultCatalog()
	d, err := cat.LinkDist("m1.medium", "m1.large")
	if err != nil {
		t.Fatal(err)
	}
	// Fig 7b: the medium endpoint dominates the link behaviour.
	if d.Mean() != cat.Perf.Net["m1.medium"].Mean() {
		t.Errorf("link mean %v, want m1.medium mean", d.Mean())
	}
	// Symmetric.
	d2, err := cat.LinkDist("m1.large", "m1.medium")
	if err != nil {
		t.Fatal(err)
	}
	if d2.Mean() != d.Mean() {
		t.Error("link not symmetric")
	}
	if _, err := cat.LinkDist("zzz", "m1.small"); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if _, err := cat.LinkDist("m1.small", "zzz"); err == nil {
		t.Error("unknown endpoint accepted")
	}
}

func TestNetworkVarianceShrinksWithSize(t *testing.T) {
	cat := DefaultCatalog()
	med := cat.Perf.Net["m1.medium"]
	lrg := cat.Perf.Net["m1.large"]
	cvMed := math.Sqrt(med.Var()) / med.Mean()
	cvLrg := math.Sqrt(lrg.Var()) / lrg.Mean()
	if cvMed <= cvLrg {
		t.Errorf("medium cv %v should exceed large cv %v (Fig 7)", cvMed, cvLrg)
	}
}

func TestMetadataFromTruth(t *testing.T) {
	cat := DefaultCatalog()
	rng := rand.New(rand.NewSource(1))
	md, err := MetadataFromTruth(cat, 20, 20000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := md.Validate(cat); err != nil {
		t.Fatal(err)
	}
	// Histogram moments track ground truth.
	for _, typ := range cat.TypeNames() {
		truth := cat.Perf.SeqIO[typ]
		h := md.SeqIO[typ]
		if math.Abs(h.Mean()-truth.Mean())/truth.Mean() > 0.05 {
			t.Errorf("%s seq mean drifted: %v vs %v", typ, h.Mean(), truth.Mean())
		}
	}
	if math.Abs(md.CrossRegionNet.Mean()-25) > 2 {
		t.Errorf("cross-region mean %v", md.CrossRegionNet.Mean())
	}
}

func TestMetadataValidateDetectsGaps(t *testing.T) {
	cat := DefaultCatalog()
	md := NewMetadata()
	if err := md.Validate(cat); err == nil {
		t.Error("empty metadata passed validation")
	}
}

func TestCatalogValidateDetectsProblems(t *testing.T) {
	empty := &Catalog{}
	if err := empty.Validate(); err == nil {
		t.Error("empty catalog passed")
	}
	cat := DefaultCatalog()
	delete(cat.Regions[0].PricePerHour, "m1.small")
	if err := cat.Validate(); err == nil {
		t.Error("missing price passed")
	}
	cat = DefaultCatalog()
	delete(cat.Perf.Net, "m1.small")
	if err := cat.Validate(); err == nil {
		t.Error("missing perf model passed")
	}
	cat = DefaultCatalog()
	cat.Perf.CrossRegionNet = nil
	if err := cat.Validate(); err == nil {
		t.Error("missing cross-region model passed")
	}
	cat = DefaultCatalog()
	cat.Regions = nil
	if err := cat.Validate(); err == nil {
		t.Error("no regions passed")
	}
}

// TestValidateRejectsUnknownNetRegion is the regression test for the typoed
// transfer destination: before the fix a NetPricePerGB entry naming a
// nonexistent region validated fine and priced every transfer to it as free.
func TestValidateRejectsUnknownNetRegion(t *testing.T) {
	cat := DefaultCatalog()
	cat.Regions[0].NetPricePerGB["ap-southeast-7"] = 0.09
	if err := cat.Validate(); err == nil {
		t.Fatal("NetPricePerGB entry naming an unknown region passed validation")
	}
}

func TestValidateRejectsBadSpotMarkets(t *testing.T) {
	broken := []func(*Catalog){
		func(c *Catalog) { c.Regions[0].Spot["m9.mega"] = SpotMarket{PricePerHourMean: 0.01} },
		func(c *Catalog) {
			c.Regions[0].Spot[SpotName("m1.small")] = SpotMarket{PricePerHourMean: 0.01}
		},
		func(c *Catalog) { c.Regions[0].Spot["m1.small"] = SpotMarket{PricePerHourMean: 0} },
		func(c *Catalog) {
			c.Regions[0].Spot["m1.small"] = SpotMarket{PricePerHourMean: 0.01, PriceSigma: -1}
		},
		func(c *Catalog) {
			c.Regions[0].Spot["m1.small"] = SpotMarket{PricePerHourMean: 0.01, RevocationsPerHour: -2}
		},
	}
	for i, mutate := range broken {
		cat := DefaultCatalog()
		mutate(cat)
		if err := cat.Validate(); err == nil {
			t.Errorf("case %d: broken spot market passed validation", i)
		}
	}
}

func TestSpotHelpers(t *testing.T) {
	if got := SpotName("m1.small"); got != "m1.small:spot" {
		t.Errorf("SpotName = %q", got)
	}
	if !IsSpotName("m1.small:spot") || IsSpotName("m1.small") {
		t.Error("IsSpotName misclassifies")
	}
	if BaseType("m1.small:spot") != "m1.small" || BaseType("m1.large") != "m1.large" {
		t.Error("BaseType misresolves")
	}
	cat := DefaultCatalog()
	m, err := cat.Spot(USEast, "m1.small")
	if err != nil {
		t.Fatal(err)
	}
	od, _ := cat.Price(USEast, "m1.small")
	if m.PricePerHourMean <= 0 || m.PricePerHourMean >= od {
		t.Errorf("spot mean %v not below on-demand %v", m.PricePerHourMean, od)
	}
	// The virtual name resolves to the same market.
	m2, err := cat.Spot(USEast, SpotName("m1.small"))
	if err != nil || m2 != m {
		t.Errorf("spot via virtual name: %v %v", m2, err)
	}
	if _, err := cat.Spot(USEast, "m9.mega"); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := cat.Spot("nowhere", "m1.small"); err == nil {
		t.Error("unknown region accepted")
	}
}
