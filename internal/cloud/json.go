package cloud

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"deco/internal/dist"
)

// This file provides a JSON representation of catalogs so users can define
// custom clouds (types, regions, prices, performance distributions) without
// recompiling — the counterpart of import(cloud) for clouds Deco does not
// ship built in.

// distJSON serializes a performance distribution.
type distJSON struct {
	Family string  `json:"family"` // "normal", "gamma", "uniform", "constant"
	Mu     float64 `json:"mu,omitempty"`
	Sigma  float64 `json:"sigma,omitempty"`
	K      float64 `json:"k,omitempty"`
	Theta  float64 `json:"theta,omitempty"`
	Lo     float64 `json:"lo,omitempty"`
	Hi     float64 `json:"hi,omitempty"`
	Value  float64 `json:"value,omitempty"`
}

func toDistJSON(d dist.Dist) (distJSON, error) {
	switch dd := d.(type) {
	case dist.Normal:
		return distJSON{Family: "normal", Mu: dd.Mu, Sigma: dd.Sigma}, nil
	case dist.Gamma:
		return distJSON{Family: "gamma", K: dd.K, Theta: dd.Theta}, nil
	case dist.Uniform:
		return distJSON{Family: "uniform", Lo: dd.Lo, Hi: dd.Hi}, nil
	case dist.Constant:
		return distJSON{Family: "constant", Value: dd.V}, nil
	}
	return distJSON{}, fmt.Errorf("cloud: unserializable distribution %T", d)
}

func fromDistJSON(j distJSON) (dist.Dist, error) {
	switch j.Family {
	case "normal":
		if j.Sigma < 0 {
			return nil, fmt.Errorf("cloud: negative sigma %v", j.Sigma)
		}
		return dist.NewNormal(j.Mu, j.Sigma), nil
	case "gamma":
		if j.K <= 0 || j.Theta <= 0 {
			return nil, fmt.Errorf("cloud: gamma needs positive k/theta, got %v/%v", j.K, j.Theta)
		}
		return dist.NewGamma(j.K, j.Theta), nil
	case "uniform":
		if j.Lo > j.Hi {
			return nil, fmt.Errorf("cloud: uniform lo %v > hi %v", j.Lo, j.Hi)
		}
		return dist.NewUniform(j.Lo, j.Hi), nil
	case "constant":
		return dist.Constant{V: j.Value}, nil
	}
	return nil, fmt.Errorf("cloud: unknown distribution family %q", j.Family)
}

// catalogJSON is the serialized catalog document.
type catalogJSON struct {
	Types   []InstanceType `json:"types"`
	Regions []Region       `json:"regions"`
	Perf    perfJSON       `json:"perf"`
}

type perfJSON struct {
	SeqIO          map[string]distJSON `json:"seq_io"`
	RandIO         map[string]distJSON `json:"rand_io"`
	Net            map[string]distJSON `json:"net"`
	CrossRegionNet distJSON            `json:"cross_region_net"`
}

// WriteJSON serializes the catalog.
func (c *Catalog) WriteJSON(w io.Writer) error {
	doc := catalogJSON{Types: c.Types, Regions: c.Regions,
		Perf: perfJSON{SeqIO: map[string]distJSON{}, RandIO: map[string]distJSON{}, Net: map[string]distJSON{}}}
	var err error
	for name, d := range c.Perf.SeqIO {
		if doc.Perf.SeqIO[name], err = toDistJSON(d); err != nil {
			return err
		}
	}
	for name, d := range c.Perf.RandIO {
		if doc.Perf.RandIO[name], err = toDistJSON(d); err != nil {
			return err
		}
	}
	for name, d := range c.Perf.Net {
		if doc.Perf.Net[name], err = toDistJSON(d); err != nil {
			return err
		}
	}
	if doc.Perf.CrossRegionNet, err = toDistJSON(c.Perf.CrossRegionNet); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON deserializes and validates a catalog.
func ReadJSON(r io.Reader) (*Catalog, error) {
	var doc catalogJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("cloud: %w", err)
	}
	cat := &Catalog{Types: doc.Types, Regions: doc.Regions,
		Perf: PerfModel{SeqIO: map[string]dist.Dist{}, RandIO: map[string]dist.Dist{}, Net: map[string]dist.Dist{}}}
	var err error
	for name, j := range doc.Perf.SeqIO {
		if cat.Perf.SeqIO[name], err = fromDistJSON(j); err != nil {
			return nil, err
		}
	}
	for name, j := range doc.Perf.RandIO {
		if cat.Perf.RandIO[name], err = fromDistJSON(j); err != nil {
			return nil, err
		}
	}
	for name, j := range doc.Perf.Net {
		if cat.Perf.Net[name], err = fromDistJSON(j); err != nil {
			return nil, err
		}
	}
	if cat.Perf.CrossRegionNet, err = fromDistJSON(doc.Perf.CrossRegionNet); err != nil {
		return nil, err
	}
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	return cat, nil
}

// LoadCatalog reads a catalog from a JSON file.
func LoadCatalog(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}

// SaveCatalog writes the catalog to a JSON file.
func (c *Catalog) SaveCatalog(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
