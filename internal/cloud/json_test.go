package cloud

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deco/internal/dist"
)

func TestCatalogJSONRoundTrip(t *testing.T) {
	cat := DefaultCatalog()
	var buf bytes.Buffer
	if err := cat.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(got.Types) != len(cat.Types) || len(got.Regions) != len(cat.Regions) {
		t.Fatalf("structure changed: %d types %d regions", len(got.Types), len(got.Regions))
	}
	// Distribution parameters survive.
	for _, typ := range cat.TypeNames() {
		if math.Abs(got.Perf.SeqIO[typ].Mean()-cat.Perf.SeqIO[typ].Mean()) > 1e-12 {
			t.Errorf("%s seq mean changed", typ)
		}
		if math.Abs(got.Perf.Net[typ].Var()-cat.Perf.Net[typ].Var()) > 1e-12 {
			t.Errorf("%s net var changed", typ)
		}
	}
	p, err := got.Price(APSoutheast, "m1.xlarge")
	want, _ := cat.Price(APSoutheast, "m1.xlarge")
	if err != nil || p != want {
		t.Errorf("price lost: %v (want %v) %v", p, want, err)
	}
	// Spot markets survive: every (region, type) market round-trips exactly.
	for _, r := range cat.Regions {
		for typ, wantM := range r.Spot {
			gotM, err := got.Spot(r.Name, typ)
			if err != nil || gotM != wantM {
				t.Errorf("spot market lost: %s/%s = %+v (want %+v) %v", r.Name, typ, gotM, wantM, err)
			}
		}
	}
}

// TestCatalogSpotRoundTripStable drives load → write → load on a catalog
// with spot markets and asserts the second write is byte-identical to the
// first, and that a catalog without spot fields (the pre-market document
// shape) still loads.
func TestCatalogSpotRoundTripStable(t *testing.T) {
	dir := t.TempDir()
	cat := DefaultCatalog()
	// Make the markets asymmetric so a field mix-up cannot cancel out.
	cat.Regions[0].Spot["m1.small"] = SpotMarket{PricePerHourMean: 0.013, PriceSigma: 0.4, RevocationsPerHour: 1.25}
	first := filepath.Join(dir, "spot-1.json")
	second := filepath.Join(dir, "spot-2.json")
	if err := cat.SaveCatalog(first); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCatalog(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.SaveCatalog(second); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("second write differs from first")
	}
	m, err := loaded.Spot(USEast, "m1.small")
	if err != nil || m != cat.Regions[0].Spot["m1.small"] {
		t.Errorf("spot market drifted across the file round trip: %+v %v", m, err)
	}
	// A pre-market document (no Spot field anywhere) still loads: regions
	// simply have no spot offerings.
	noSpot := DefaultCatalog()
	for i := range noSpot.Regions {
		noSpot.Regions[i].Spot = nil
	}
	plain := filepath.Join(dir, "plain.json")
	if err := noSpot.SaveCatalog(plain); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCatalog(plain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := back.Spot(USEast, "m1.small"); err == nil {
		t.Error("spotless catalog reports a market")
	}
}

func TestCatalogJSONFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cat.json")
	cat := DefaultCatalog()
	if err := cat.SaveCatalog(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Types) != 4 {
		t.Fatalf("types %d", len(got.Types))
	}
	if _, err := LoadCatalog(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestCatalogFileRoundTripStable drives the full load→write→load cycle on
// disk: a loaded catalog re-serializes to byte-identical JSON, so catalogs
// can be round-tripped through files (edited, versioned, diffed) without
// churn. Also covers a ScalePerf-derived catalog, whose distributions were
// built programmatically rather than parsed.
func TestCatalogFileRoundTripStable(t *testing.T) {
	dir := t.TempDir()
	scaled, err := ScalePerf(DefaultCatalog(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for name, cat := range map[string]*Catalog{"default": DefaultCatalog(), "scaled": scaled} {
		first := filepath.Join(dir, name+"-1.json")
		second := filepath.Join(dir, name+"-2.json")
		if err := cat.SaveCatalog(first); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadCatalog(first)
		if err != nil {
			t.Fatal(err)
		}
		if err := loaded.SaveCatalog(second); err != nil {
			t.Fatal(err)
		}
		b1, err := os.ReadFile(first)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := os.ReadFile(second)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: second write differs from first", name)
		}
		again, err := LoadCatalog(second)
		if err != nil {
			t.Fatal(err)
		}
		for _, typ := range cat.TypeNames() {
			if math.Abs(again.Perf.SeqIO[typ].Mean()-cat.Perf.SeqIO[typ].Mean()) > 1e-12 {
				t.Errorf("%s: %s seq mean drifted across two file round trips", name, typ)
			}
		}
		for _, r := range cat.Regions {
			for _, typ := range cat.TypeNames() {
				want, _ := cat.Price(r.Name, typ)
				got, err := again.Price(r.Name, typ)
				if err != nil || got != want {
					t.Errorf("%s: price %s/%s = %v (want %v) %v", name, r.Name, typ, got, want, err)
				}
			}
		}
	}
}

func TestReadJSONRejectsBadDocuments(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"garbage", "not json"},
		{"unknown field", `{"zzz": 1}`},
		{"bad family", `{"types":[{"Name":"a","ECU":1}],"regions":[{"Name":"r","PricePerHour":{"a":1}}],
			"perf":{"seq_io":{"a":{"family":"zipf"}},"rand_io":{},"net":{},"cross_region_net":{"family":"constant","value":1}}}`},
		{"bad gamma", `{"types":[{"Name":"a","ECU":1}],"regions":[{"Name":"r","PricePerHour":{"a":1}}],
			"perf":{"seq_io":{"a":{"family":"gamma","k":-1,"theta":1}},"rand_io":{},"net":{},"cross_region_net":{"family":"constant","value":1}}}`},
		{"incomplete perf", `{"types":[{"Name":"a","ECU":1}],"regions":[{"Name":"r","PricePerHour":{"a":1}}],
			"perf":{"seq_io":{},"rand_io":{},"net":{},"cross_region_net":{"family":"constant","value":1}}}`},
		{"uniform inverted", `{"types":[{"Name":"a","ECU":1}],"regions":[{"Name":"r","PricePerHour":{"a":1}}],
			"perf":{"seq_io":{"a":{"family":"uniform","lo":5,"hi":1}},"rand_io":{},"net":{},"cross_region_net":{"family":"constant","value":1}}}`},
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestDistJSONFamilies(t *testing.T) {
	// Every serializable family round-trips.
	dists := []dist.Dist{
		dist.NewNormal(10, 2),
		dist.NewGamma(3, 0.5),
		dist.NewUniform(1, 9),
		dist.Constant{V: 7},
	}
	for _, d := range dists {
		j, err := toDistJSON(d)
		if err != nil {
			t.Fatalf("%T: %v", d, err)
		}
		back, err := fromDistJSON(j)
		if err != nil {
			t.Fatalf("%T: %v", d, err)
		}
		if math.Abs(back.Mean()-d.Mean()) > 1e-12 || math.Abs(back.Var()-d.Var()) > 1e-12 {
			t.Errorf("%T round trip changed moments", d)
		}
	}
	// Unserializable distribution errors.
	if _, err := toDistJSON(dist.NewEmpirical([]float64{1, 2})); err == nil {
		t.Error("empirical serialized")
	}
}
