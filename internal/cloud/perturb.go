package cloud

import (
	"fmt"

	"deco/internal/dist"
)

// scaleDist multiplies a performance distribution's rate by factor —
// Normal and Gamma scale both location and spread (a slow disk is also a
// noisy disk in MB/s terms), Uniform and Constant scale their bounds.
func scaleDist(d dist.Dist, factor float64) (dist.Dist, error) {
	switch v := d.(type) {
	case dist.Normal:
		return dist.NewNormal(v.Mu*factor, v.Sigma*factor), nil
	case dist.Gamma:
		return dist.NewGamma(v.K, v.Theta*factor), nil
	case dist.Uniform:
		return dist.NewUniform(v.Lo*factor, v.Hi*factor), nil
	case dist.Constant:
		return dist.Constant{V: v.V * factor}, nil
	}
	return nil, fmt.Errorf("cloud: cannot scale distribution %T", d)
}

// ScaleHazard returns a copy of the catalog with every spot market's
// revocation hazard multiplied by factor (prices, performance, and price
// variance untouched). It is the market analogue of ScalePerf: plan against
// the calibrated hazard, execute against the scaled one, and revocations
// arrive systematically more often than the plan priced in — the drift the
// runtime monitor's forced-recovery path has to absorb. factor 0 removes
// the hazard entirely (spot becomes a pure price discount).
func ScaleHazard(c *Catalog, factor float64) (*Catalog, error) {
	if factor < 0 {
		return nil, fmt.Errorf("cloud: hazard scale factor must be non-negative, got %v", factor)
	}
	out := *c
	out.Regions = append([]Region(nil), c.Regions...)
	for i := range out.Regions {
		if len(out.Regions[i].Spot) == 0 {
			continue
		}
		scaled := make(map[string]SpotMarket, len(out.Regions[i].Spot))
		for typ, m := range out.Regions[i].Spot {
			m.RevocationsPerHour *= factor
			scaled[typ] = m
		}
		out.Regions[i].Spot = scaled
	}
	return &out, nil
}

// ScalePerf returns a copy of the catalog whose ground-truth performance is
// multiplied by factor (0.5 = everything runs at half speed): effective ECU
// (CPU steal), I/O, and network rates all scale. Prices and regions are
// untouched. This is the drift injector for runtime-adaptation experiments:
// calibrate against the original catalog, execute against the scaled one,
// and the calibrated forecasts are systematically wrong by exactly
// 1/factor.
func ScalePerf(c *Catalog, factor float64) (*Catalog, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("cloud: perf scale factor must be positive, got %v", factor)
	}
	out := &Catalog{
		Types:   append([]InstanceType(nil), c.Types...),
		Regions: append([]Region(nil), c.Regions...),
		Perf: PerfModel{
			SeqIO:  make(map[string]dist.Dist, len(c.Perf.SeqIO)),
			RandIO: make(map[string]dist.Dist, len(c.Perf.RandIO)),
			Net:    make(map[string]dist.Dist, len(c.Perf.Net)),
		},
	}
	for i := range out.Types {
		out.Types[i].ECU *= factor
	}
	var err error
	for typ, d := range c.Perf.SeqIO {
		if out.Perf.SeqIO[typ], err = scaleDist(d, factor); err != nil {
			return nil, err
		}
	}
	for typ, d := range c.Perf.RandIO {
		if out.Perf.RandIO[typ], err = scaleDist(d, factor); err != nil {
			return nil, err
		}
	}
	for typ, d := range c.Perf.Net {
		if out.Perf.Net[typ], err = scaleDist(d, factor); err != nil {
			return nil, err
		}
	}
	if c.Perf.CrossRegionNet != nil {
		if out.Perf.CrossRegionNet, err = scaleDist(c.Perf.CrossRegionNet, factor); err != nil {
			return nil, err
		}
	}
	return out, nil
}
