package ftc

import (
	"math/rand"
	"testing"

	"deco/internal/cloud"
	"deco/internal/dag"
	"deco/internal/device"
	"deco/internal/estimate"
	"deco/internal/opt"
	"deco/internal/wfgen"
)

func env(t *testing.T) (*cloud.Catalog, *estimate.Estimator) {
	t.Helper()
	cat := cloud.DefaultCatalog()
	md, err := cloud.MetadataFromTruth(cat, 12, 3000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return cat, estimate.New(cat, md)
}

// mkJobs builds n pipeline jobs initially placed in the given region.
func mkJobs(t *testing.T, est *estimate.Estimator, n, region int, deadline float64) []*Job {
	t.Helper()
	return mkJobsLen(t, est, n, region, deadline, 6)
}

// mkJobsLen builds n pipeline jobs of the given length. Short pipelines
// carry too little remaining work for migration to pay off (the 20MB
// transfer outweighs the price difference); migration tests use long ones.
func mkJobsLen(t *testing.T, est *estimate.Estimator, n, region int, deadline float64, length int) []*Job {
	t.Helper()
	jobs := make([]*Job, n)
	for i := range jobs {
		w, err := wfgen.Pipeline(length, rand.New(rand.NewSource(int64(10+i))))
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := est.BuildTable(w)
		if err != nil {
			t.Fatal(err)
		}
		j, err := NewJob(w, tbl, region, 1, deadline)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	return jobs
}

func TestJobLifecycle(t *testing.T) {
	_, est := env(t)
	jobs := mkJobs(t, est, 1, 0, 0)
	j := jobs[0]
	if j.Done() {
		t.Fatal("fresh job done")
	}
	rem, err := j.RemainingMeanSec()
	if err != nil {
		t.Fatal(err)
	}
	if rem <= 0 {
		t.Fatal("no remaining work")
	}
	if j.LiveDataMB() <= 0 {
		t.Error("pipeline head should have live input data")
	}
}

func TestRuntimeRunsToCompletion(t *testing.T) {
	cat, est := env(t)
	jobs := mkJobs(t, est, 3, 0, 0)
	rt := &Runtime{Cat: cat, Jobs: jobs, Rng: rand.New(rand.NewSource(2)),
		Opt: NewHeuristic(0.5, 30)}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if !j.Done() {
			t.Error("job not finished")
		}
	}
	if res.ExecCost <= 0 || res.TotalCost < res.ExecCost {
		t.Errorf("costs wrong: %+v", res)
	}
}

func TestDecoMigratesFromExpensiveRegion(t *testing.T) {
	cat, est := env(t)
	// Jobs start in Singapore (33% pricier): Deco should move them to
	// US East once migration pays for itself.
	jobs := mkJobsLen(t, est, 4, 1, 0, 40)
	rt := &Runtime{Cat: cat, Jobs: jobs, Rng: rand.New(rand.NewSource(3)),
		Opt: NewDecoOptimizer(device.Sequential{}, 7)}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Error("Deco never migrated out of the expensive region")
	}
	for _, j := range jobs {
		if j.Region != 0 {
			t.Errorf("job ended in region %d, want us-east", j.Region)
		}
	}
}

func TestDecoBeatsStayingPut(t *testing.T) {
	cat, est := env(t)
	run := func(o Optimizer, seed int64) *Result {
		jobs := mkJobsLen(t, est, 4, 1, 0, 40)
		rt := &Runtime{Cat: cat, Jobs: jobs, Rng: rand.New(rand.NewSource(seed)), Opt: o}
		res, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	deco := run(NewDecoOptimizer(device.Sequential{}, 7), 4)
	stay := run(stayPut{}, 4)
	if deco.TotalCost >= stay.TotalCost {
		t.Errorf("deco %v not cheaper than staying put %v", deco.TotalCost, stay.TotalCost)
	}
}

// stayPut never migrates.
type stayPut struct{}

func (stayPut) Name() string { return "stay" }
func (stayPut) Decide(rt *Runtime) ([]int, []float64, error) {
	regions := make([]int, len(rt.Jobs))
	for i, j := range rt.Jobs {
		regions[i] = j.Region
	}
	return regions, nil, nil
}

func TestHeuristicOfflinePlanMigratesOnce(t *testing.T) {
	cat, est := env(t)
	jobs := mkJobsLen(t, est, 2, 1, 0, 40)
	rt := &Runtime{Cat: cat, Jobs: jobs, Rng: rand.New(rand.NewSource(5)),
		Opt: NewHeuristic(10.0, 30)} // huge threshold: no runtime adjustments
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The offline plan should move both jobs to the cheap region exactly
	// once each (unless data outweighs savings — not the case for pipelines).
	if res.Migrations != 2 {
		t.Errorf("migrations %d, want 2 (offline only)", res.Migrations)
	}
}

func TestHeuristicLowThresholdPaysLag(t *testing.T) {
	cat, est := env(t)
	run := func(threshold float64) *Result {
		jobs := mkJobs(t, est, 3, 1, 0)
		rt := &Runtime{Cat: cat, Jobs: jobs, Rng: rand.New(rand.NewSource(6)),
			Opt: NewHeuristic(threshold, 600)}
		res, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	low := run(0.001) // re-optimizes after nearly every task
	high := run(0.9)
	if low.TotalCost <= high.TotalCost {
		t.Errorf("low threshold (%v) should cost more than high (%v) due to lag",
			low.TotalCost, high.TotalCost)
	}
}

func TestSpaceEvaluateAndNeighbors(t *testing.T) {
	cat, est := env(t)
	jobs := mkJobsLen(t, est, 2, 1, 1e9, 40)
	rt := &Runtime{Cat: cat, Jobs: jobs, Rng: rand.New(rand.NewSource(7)),
		Opt: stayPut{}}
	sp := &Space{rt: rt}
	init := sp.Initial()
	if init[0] != 1 || init[1] != 1 {
		t.Fatalf("initial %v", init)
	}
	ns := sp.Neighbors(init)
	if len(ns) != 2 { // two jobs × one other region
		t.Fatalf("neighbors %v", ns)
	}
	evStay, err := sp.Evaluate(init, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	evMove, err := sp.Evaluate(opt.State{0, 0}, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	// Migrating to the cheap region must reduce expected remaining cost for
	// these long pipelines.
	if evMove.Value >= evStay.Value {
		t.Errorf("move %v not cheaper than stay %v", evMove.Value, evStay.Value)
	}
	if !evStay.Feasible || !evMove.Feasible {
		t.Error("huge deadline should be feasible")
	}
	if _, err := sp.Evaluate(opt.State{9, 9}, rand.New(rand.NewSource(8))); err == nil {
		t.Error("bad region accepted")
	}
}

func TestDeadlineBlocksMigration(t *testing.T) {
	cat, est := env(t)
	jobs := mkJobs(t, est, 1, 1, 1)
	rt := &Runtime{Cat: cat, Jobs: jobs, Rng: rand.New(rand.NewSource(9)), Opt: stayPut{}}
	sp := &Space{rt: rt}
	// Any state is deadline-violating (1-second deadline): evaluation must
	// mark infeasibility with a violation gradient.
	ev, err := sp.Evaluate(sp.Initial(), rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Feasible || ev.Violation <= 0 {
		t.Errorf("expected infeasible with violation, got %+v", ev)
	}
}

func TestMigrationChargesNetworkCost(t *testing.T) {
	cat, est := env(t)
	jobs := mkJobs(t, est, 1, 1, 0)
	j := jobs[0]
	rt := &Runtime{Cat: cat, Jobs: jobs, Rng: rand.New(rand.NewSource(11)), Opt: stayPut{}}
	data := j.LiveDataMB()
	if err := rt.migrate(j, 0); err != nil {
		t.Fatal(err)
	}
	want := data / 1024 * 0.12 // Singapore egress
	if j.MigCost != want {
		t.Errorf("migration cost %v, want %v", j.MigCost, want)
	}
	if j.Region != 0 || j.Migrations != 1 {
		t.Errorf("job state %+v", j)
	}
	if j.Elapsed <= 0 {
		t.Error("migration should take time")
	}
}

func TestLiveDataShrinksAsTasksComplete(t *testing.T) {
	cat, est := env(t)
	jobs := mkJobs(t, est, 1, 0, 0)
	j := jobs[0]
	rt := &Runtime{Cat: cat, Jobs: jobs, Rng: rand.New(rand.NewSource(12)), Opt: stayPut{}}
	before := j.LiveDataMB()
	if _, err := rt.Step(); err != nil {
		t.Fatal(err)
	}
	after := j.LiveDataMB()
	// For a pipeline, live data stays bounded (one file between stages).
	if after > before+1e-9 {
		t.Errorf("live data grew: %v -> %v", before, after)
	}
	// Drift was recorded.
	if j.lastDrift < 0 {
		t.Error("drift not recorded")
	}
}

func TestDagImportUsed(t *testing.T) {
	// Silence any unused-import drift: ensure dag types appear in API.
	var _ *dag.Workflow = nil
}

// threeRegionCatalog extends the default catalog with a third, cheapest
// region to exercise multi-region (>2) placement decisions.
func threeRegionCatalog() *cloud.Catalog {
	cat := cloud.DefaultCatalog()
	cheap := map[string]float64{}
	for k, v := range cat.Regions[0].PricePerHour {
		cheap[k] = v * 0.8
	}
	third := cloud.Region{
		Name:          "eu-cheap-1",
		PricePerHour:  cheap,
		NetPricePerGB: map[string]float64{cat.Regions[0].Name: 0.07, cat.Regions[1].Name: 0.10},
	}
	cat.Regions[0].NetPricePerGB[third.Name] = 0.08
	cat.Regions[1].NetPricePerGB[third.Name] = 0.11
	cat.Regions = append(cat.Regions, third)
	return cat
}

func TestThreeRegionMigrationPicksCheapest(t *testing.T) {
	cat := threeRegionCatalog()
	md, err := cloud.MetadataFromTruth(cat, 12, 3000, rand.New(rand.NewSource(50)))
	if err != nil {
		t.Fatal(err)
	}
	est := estimate.New(cat, md)
	var jobs []*Job
	for i := 0; i < 3; i++ {
		w, err := wfgen.Funnel(40, 6000, 20, rand.New(rand.NewSource(int64(60+i))))
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := est.BuildTable(w)
		if err != nil {
			t.Fatal(err)
		}
		j, err := NewJob(w, tbl, 1, 1, 0) // start in Singapore (most expensive)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	rt := &Runtime{Cat: cat, Jobs: jobs, Rng: rand.New(rand.NewSource(51)),
		Opt: NewDecoOptimizer(device.Sequential{}, 52)}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Region != 2 {
			t.Errorf("job ended in region %d, want the cheapest (2)", j.Region)
		}
	}
	// The space enumerates two alternative regions per unfinished job.
	jobs2 := jobs[:1]
	jobs2[0].next = 0 // pretend unfinished
	sp := &Space{rt: &Runtime{Cat: cat, Jobs: jobs2, Rng: rand.New(rand.NewSource(53)), Opt: stayPut{}}}
	if ns := sp.Neighbors(sp.Initial()); len(ns) != 2 {
		t.Errorf("neighbors %d, want 2 (three regions minus current)", len(ns))
	}
}
