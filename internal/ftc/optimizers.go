package ftc

import (
	"deco/internal/device"
	"deco/internal/opt"
)

// DecoOptimizer re-optimizes placements at every decision point with the
// generic search on the device. The re-optimization is fast (the paper's
// GPU acceleration), so it imposes no stall.
type DecoOptimizer struct {
	// Search options; Device and budget govern the per-decision search.
	Options opt.Options
}

// NewDecoOptimizer returns a Deco optimizer on the given device.
func NewDecoOptimizer(d device.Device, seed int64) *DecoOptimizer {
	o := opt.DefaultOptions(d)
	o.MaxStates = 400
	o.BeamWidth = 6
	o.Patience = 6
	o.Seed = seed
	return &DecoOptimizer{Options: o}
}

// Name implements Optimizer.
func (d *DecoOptimizer) Name() string { return "deco" }

// Decide implements Optimizer.
func (d *DecoOptimizer) Decide(rt *Runtime) ([]int, []float64, error) {
	sp := NewSpace(rt)
	res, err := opt.Search(sp, d.Options)
	if err != nil {
		return nil, nil, err
	}
	regions := make([]int, len(rt.Jobs))
	for i := range regions {
		regions[i] = res.Best[i]
	}
	return regions, nil, nil
}

// Heuristic is the baseline of §6.1: an offline plan from the price
// differences between data centers, adjusted at runtime only when the
// monitored execution time of the last task drifts from its estimate by
// more than Threshold. Each runtime adjustment stalls the job by
// ReoptLagSec — the baseline's slow re-optimization ("the optimization
// takes a long time, which cannot catch up with the workflow executions"),
// whereas Deco's device-accelerated search is treated as instantaneous.
type Heuristic struct {
	// Threshold is the relative drift that triggers re-optimization
	// (§6.1: 10%..90%, default 50%).
	Threshold float64
	// ReoptLagSec is the stall per runtime adjustment.
	ReoptLagSec float64

	planned bool
}

// NewHeuristic returns the baseline with the paper's default 50% threshold.
func NewHeuristic(threshold, lagSec float64) *Heuristic {
	return &Heuristic{Threshold: threshold, ReoptLagSec: lagSec}
}

// Name implements Optimizer.
func (h *Heuristic) Name() string { return "heuristic" }

// cheapestRegionFor returns the region minimizing the job's remaining cost
// including migration charges.
func cheapestRegionFor(rt *Runtime, j *Job) (int, error) {
	rem, err := j.RemainingMeanSec()
	if err != nil {
		return 0, err
	}
	best := j.Region
	bestCost := rem / 3600 * rt.price(j.Region, j.TypeIndex)
	for r := range rt.Cat.Regions {
		if r == j.Region {
			continue
		}
		data := j.LiveDataMB()
		priceGB := rt.Cat.Regions[j.Region].NetPricePerGB[rt.Cat.Regions[r].Name]
		cost := rem/3600*rt.price(r, j.TypeIndex) + data/1024*priceGB
		if cost < bestCost {
			bestCost = cost
			best = r
		}
	}
	return best, nil
}

// Decide implements Optimizer: the first call is the offline plan (free);
// later calls only react to drift beyond the threshold, paying the lag.
func (h *Heuristic) Decide(rt *Runtime) ([]int, []float64, error) {
	regions := make([]int, len(rt.Jobs))
	stalls := make([]float64, len(rt.Jobs))
	for i, j := range rt.Jobs {
		regions[i] = j.Region
		if j.Done() {
			continue
		}
		if !h.planned {
			// Offline stage: consider the price differences among data
			// centers and plan the migration to the more cost-efficient one.
			r, err := cheapestRegionFor(rt, j)
			if err != nil {
				return nil, nil, err
			}
			regions[i] = r
			continue
		}
		if j.lastDrift > h.Threshold {
			r, err := cheapestRegionFor(rt, j)
			if err != nil {
				return nil, nil, err
			}
			regions[i] = r
			stalls[i] = h.ReoptLagSec
		}
	}
	h.planned = true
	return regions, stalls, nil
}
