// Package ftc implements the follow-the-cost use case (§3.3): multiple
// workflows run across multiple cloud regions with different prices; at
// runtime, partially-executed workflows may migrate to a cheaper region,
// paying the networking cost of moving their live intermediate data. The
// optimization minimizes the total monetary cost (execution + migration,
// Eq. 7-9) subject to each workflow's deterministic deadline (Eq. 10).
//
// The runtime executes tasks with realized (sampled) durations; after every
// completed task the active optimizer may revise the placement. Deco's
// optimizer runs the generic search over the joint region-assignment space
// on every decision point (its device-accelerated solver is fast enough —
// the "light-weight characteristic" of §3.3); the Heuristic baseline makes
// an offline plan from price differences and re-optimizes only when the
// monitored execution time drifts from the estimate by more than a
// threshold, stalling the workflow for its (slow) re-optimization each time
// (§6.3.3: "the optimization takes a long time, which cannot catch up with
// the workflow executions").
package ftc

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"deco/internal/cloud"
	"deco/internal/dag"
	"deco/internal/estimate"
	"deco/internal/opt"
	"deco/internal/probir"
)

// Job is one workflow executing in the multi-cloud runtime. Tasks execute in
// topological order (the runtime serializes each workflow; the cross-region
// cost tradeoff is unaffected by intra-workflow parallelism).
type Job struct {
	W   *dag.Workflow
	Tbl *estimate.Table
	// Region is the current data-center index into the catalog's regions.
	Region int
	// TypeIndex is the instance type used for the job's tasks.
	TypeIndex int
	// DeadlineSec is the deterministic deadline on total elapsed time.
	DeadlineSec float64

	order   []string
	next    int
	Elapsed float64
	// ExecCost and MigCost accumulate Eq. 8 and Eq. 9.
	ExecCost float64
	MigCost  float64
	// Migrations counts region changes.
	Migrations int
	// lastDrift is |actual-estimated|/estimated of the last completed task,
	// which the Heuristic's threshold rule monitors.
	lastDrift float64
}

// NewJob prepares a job.
func NewJob(w *dag.Workflow, tbl *estimate.Table, region, typeIndex int, deadlineSec float64) (*Job, error) {
	order, err := w.TopoOrder()
	if err != nil {
		return nil, err
	}
	return &Job{W: w, Tbl: tbl, Region: region, TypeIndex: typeIndex,
		DeadlineSec: deadlineSec, order: order}, nil
}

// Done reports whether all tasks have completed.
func (j *Job) Done() bool { return j.next >= len(j.order) }

// TotalCost is the job's accumulated cost.
func (j *Job) TotalCost() float64 { return j.ExecCost + j.MigCost }

// RemainingMeanSec is the expected serialized time of the unfinished tasks.
func (j *Job) RemainingMeanSec() (float64, error) {
	sum := 0.0
	for _, id := range j.order[j.next:] {
		td, err := j.Tbl.Dist(id, j.TypeIndex)
		if err != nil {
			return 0, err
		}
		sum += td.Mean()
	}
	return sum, nil
}

// LiveDataMB is the intermediate data that must move if the job migrates:
// outputs of finished tasks consumed by unfinished tasks, plus the initial
// inputs of unfinished tasks (refetched from the source region's storage).
func (j *Job) LiveDataMB() float64 {
	finished := map[string]bool{}
	for _, id := range j.order[:j.next] {
		finished[id] = true
	}
	produced := map[string]string{}
	for _, t := range j.W.Tasks {
		for _, f := range t.Outputs {
			produced[f.Name] = t.ID
		}
	}
	seen := map[string]bool{}
	total := 0.0
	for _, id := range j.order[j.next:] {
		for _, f := range j.W.Task(id).Inputs {
			if seen[f.Name] {
				continue
			}
			p, ok := produced[f.Name]
			if ok && !finished[p] {
				continue // will be produced after migration; nothing to move
			}
			seen[f.Name] = true
			total += f.SizeMB
		}
	}
	return total
}

// Runtime drives the multi-cloud execution.
type Runtime struct {
	Cat  *cloud.Catalog
	Jobs []*Job
	Rng  *rand.Rand
	// Opt decides placements after every completed task.
	Opt Optimizer
}

// Optimizer decides target regions for all jobs at a decision point. It
// returns the region per job and the stall (seconds) each job pays for the
// decision process itself.
type Optimizer interface {
	Name() string
	Decide(rt *Runtime) (regions []int, stallSec []float64, err error)
}

// Step executes one task of every unfinished job and then lets the
// optimizer revise placements (applying migrations). It returns whether any
// job is still running.
func (rt *Runtime) Step() (bool, error) {
	active := false
	for _, j := range rt.Jobs {
		if j.Done() {
			continue
		}
		active = true
		id := j.order[j.next]
		td, err := j.Tbl.Dist(id, j.TypeIndex)
		if err != nil {
			return false, err
		}
		actual := td.Sample(rt.Rng)
		mean := td.Mean()
		if mean > 0 {
			d := (actual - mean) / mean
			if d < 0 {
				d = -d
			}
			j.lastDrift = d
		}
		price := rt.price(j.Region, j.TypeIndex)
		j.Elapsed += actual
		j.ExecCost += actual / 3600 * price
		j.next++
	}
	if !active {
		return false, nil
	}
	if err := rt.decide(); err != nil {
		return false, err
	}
	return true, nil
}

// decide asks the optimizer for target placements and applies stalls and
// migrations.
func (rt *Runtime) decide() error {
	regions, stalls, err := rt.Opt.Decide(rt)
	if err != nil {
		return err
	}
	if len(regions) != len(rt.Jobs) {
		return fmt.Errorf("ftc: optimizer returned %d regions for %d jobs", len(regions), len(rt.Jobs))
	}
	for i, j := range rt.Jobs {
		if stalls != nil && stalls[i] > 0 {
			j.Elapsed += stalls[i]
			// The stalled instance stays up: its idle time is billed.
			j.ExecCost += stalls[i] / 3600 * rt.price(j.Region, j.TypeIndex)
		}
		if j.Done() || regions[i] == j.Region {
			continue
		}
		if regions[i] < 0 || regions[i] >= len(rt.Cat.Regions) {
			return fmt.Errorf("ftc: region %d out of range", regions[i])
		}
		if err := rt.migrate(j, regions[i]); err != nil {
			return err
		}
	}
	return nil
}

func (rt *Runtime) price(region, typeIndex int) float64 {
	return rt.Cat.Regions[region].PricePerHour[rt.Cat.Types[typeIndex].Name]
}

// migrate moves job j to the target region, charging Eq. 9's networking
// cost and the transfer time over the cross-region link.
func (rt *Runtime) migrate(j *Job, target int) error {
	data := j.LiveDataMB()
	src := rt.Cat.Regions[j.Region]
	priceGB := src.NetPricePerGB[rt.Cat.Regions[target].Name]
	j.MigCost += data / 1024 * priceGB
	if data > 0 {
		bw := rt.Cat.Perf.CrossRegionNet.Sample(rt.Rng)
		if bw < 1e-6 {
			bw = 1e-6
		}
		j.Elapsed += data / bw
	}
	j.Region = target
	j.Migrations++
	return nil
}

// Run drives the runtime to completion and returns the summary. The first
// decision point is *before* any task executes — the offline planning stage
// of both optimizers (§3.3: "At the offline stage, we ... determine the
// plan of migrating the workflows from their initial deployed data center").
func (rt *Runtime) Run() (*Result, error) {
	if err := rt.decide(); err != nil {
		return nil, err
	}
	for {
		active, err := rt.Step()
		if err != nil {
			return nil, err
		}
		if !active {
			break
		}
	}
	res := &Result{Optimizer: rt.Opt.Name()}
	for _, j := range rt.Jobs {
		res.ExecCost += j.ExecCost
		res.MigCost += j.MigCost
		res.Migrations += j.Migrations
		if j.Elapsed > j.DeadlineSec && j.DeadlineSec > 0 {
			res.DeadlineMisses++
		}
	}
	res.TotalCost = res.ExecCost + res.MigCost
	return res, nil
}

// Result summarizes one follow-the-cost run.
type Result struct {
	Optimizer      string
	ExecCost       float64
	MigCost        float64
	TotalCost      float64
	Migrations     int
	DeadlineMisses int
}

// Space is the region-assignment search space Deco's generic search
// explores at each decision point: state[i] is job i's target region. The
// space snapshots the runtime on first evaluation (remaining work, live
// data, prices), so it must be built fresh per decision point — which the
// optimizers do; the fingerprint covers the snapshot so cache entries from
// different decision points never collide.
type Space struct {
	rt *Runtime

	compileOnce sync.Once
	compileErr  error
	jobs        []jobSnapshot
	meanBW      float64
	nRegions    int
}

// jobSnapshot is one job's decision-point state flattened for the kernel
// path: everything Evaluate reads, with the per-target price and network
// rows precomputed so scoring a state is pure arithmetic over slices.
type jobSnapshot struct {
	done     bool
	region   int
	rem      float64 // expected remaining serialized seconds
	live     float64 // MB that must move on migration
	elapsed  float64
	deadline float64
	price    []float64 // hourly price per target region for the job's type
	netGB    []float64 // source region's per-GB transfer price per target
}

// NewSpace builds the region-assignment space over a runtime's jobs.
func NewSpace(rt *Runtime) *Space { return &Space{rt: rt} }

// compile snapshots the runtime once: per-job remaining means, live data,
// and dense price/network rows replace the map lookups the evaluation used
// to redo for every state.
func (s *Space) compile() error {
	s.compileOnce.Do(func() {
		rt := s.rt
		s.meanBW = rt.Cat.Perf.CrossRegionNet.Mean()
		s.nRegions = len(rt.Cat.Regions)
		s.jobs = make([]jobSnapshot, len(rt.Jobs))
		for i, j := range rt.Jobs {
			snap := jobSnapshot{done: j.Done(), region: j.Region,
				elapsed: j.Elapsed, deadline: j.DeadlineSec}
			if !snap.done {
				rem, err := j.RemainingMeanSec()
				if err != nil {
					s.compileErr = err
					return
				}
				snap.rem = rem
				snap.live = j.LiveDataMB()
				snap.price = make([]float64, s.nRegions)
				snap.netGB = make([]float64, s.nRegions)
				src := rt.Cat.Regions[j.Region]
				for r := range rt.Cat.Regions {
					snap.price[r] = rt.price(r, j.TypeIndex)
					snap.netGB[r] = src.NetPricePerGB[rt.Cat.Regions[r].Name]
				}
			}
			s.jobs[i] = snap
		}
	})
	return s.compileErr
}

// Initial implements opt.Space: keep every job where it is.
func (s *Space) Initial() opt.State {
	st := make(opt.State, len(s.rt.Jobs))
	for i, j := range s.rt.Jobs {
		st[i] = j.Region
	}
	return st
}

// Neighbors implements opt.Space: move one unfinished job to one other
// region (a task-granularity migration decision, Gmn of §3.3).
func (s *Space) Neighbors(st opt.State) []opt.State {
	var out []opt.State
	for i, j := range s.rt.Jobs {
		if j.Done() {
			continue
		}
		for r := range s.rt.Cat.Regions {
			if r == st[i] {
				continue
			}
			c := st.Clone()
			c[i] = r
			out = append(out, c)
		}
	}
	return out
}

// accumulate scores one placement over the compiled snapshot, writing the
// three figures (cost sum, violation sum, infeasible-job count) into out.
// Per-job arithmetic and fold order match the original per-state evaluation
// exactly, so every path built on it — Evaluate, the kernel on any device —
// produces bit-identical results.
func (s *Space) accumulate(st opt.State, out []float64) error {
	if len(st) != len(s.jobs) {
		return fmt.Errorf("ftc: state length %d, want %d", len(st), len(s.jobs))
	}
	out[0], out[1], out[2] = 0, 0, 0
	for i := range s.jobs {
		j := &s.jobs[i]
		if j.done {
			continue
		}
		target := st[i]
		if target < 0 || target >= s.nRegions {
			return fmt.Errorf("ftc: region %d out of range", target)
		}
		cost := j.rem / 3600 * j.price[target]
		migTime := 0.0
		if target != j.region {
			cost += j.live / 1024 * j.netGB[target]
			if j.live > 0 && s.meanBW > 0 {
				migTime = j.live / s.meanBW
			}
		}
		out[0] += cost
		if j.deadline > 0 {
			projected := j.elapsed + migTime + j.rem
			if projected > j.deadline {
				out[1] += (projected - j.deadline) / j.deadline
				out[2]++
			}
		}
	}
	return nil
}

// reduce turns the accumulated figures into an Evaluation.
func (s *Space) reduce(sums []float64) *probir.Evaluation {
	return &probir.Evaluation{Value: sums[0], Violation: sums[1], Feasible: sums[2] == 0}
}

// Evaluate implements opt.Space: Eq. 7's expected remaining cost plus
// migration charges, with Eq. 10's deterministic deadline per job.
func (s *Space) Evaluate(st opt.State, rng *rand.Rand) (*probir.Evaluation, error) {
	if err := s.compile(); err != nil {
		return nil, err
	}
	var sums [3]float64
	if err := s.accumulate(st, sums[:]); err != nil {
		return nil, err
	}
	return s.reduce(sums[:]), nil
}

// CRNKernel implements opt.CRNSpace. The placement objective is
// deterministic — no Monte-Carlo worlds — so the kernel is a single world of
// three figures that ignores the CRN base; it exists so per-decision-point
// searches run the solver's compiled kernel pipeline (and its evaluation
// cache) instead of the per-state fallback.
func (s *Space) CRNKernel(st opt.State, base int64) (probir.WorldKernel, error) {
	if err := s.compile(); err != nil {
		return nil, err
	}
	if len(st) != len(s.jobs) {
		return nil, fmt.Errorf("ftc: state length %d, want %d", len(st), len(s.jobs))
	}
	return &placementKernel{sp: s, st: st}, nil
}

// Fingerprint implements opt.FingerprintSpace: a content hash of the full
// decision-point snapshot — every job's progress, placement, prices and
// deadline plus the mean cross-region bandwidth — so cache entries are
// shared exactly between searches seeing identical runtime state.
func (s *Space) Fingerprint() string {
	if s.compile() != nil {
		return "" // unsnapshottable runtime: cannot vouch for identity
	}
	h := sha256.New()
	var buf [8]byte
	putF := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	putF(s.meanBW)
	putF(float64(s.nRegions))
	putF(float64(len(s.jobs)))
	for i := range s.jobs {
		j := &s.jobs[i]
		if j.done {
			putF(math.NaN())
			continue
		}
		putF(float64(j.region))
		putF(j.rem)
		putF(j.live)
		putF(j.elapsed)
		putF(j.deadline)
		for r := 0; r < s.nRegions; r++ {
			putF(j.price[r])
			putF(j.netGB[r])
		}
	}
	return fmt.Sprintf("ftc:%x", h.Sum(nil))
}

// placementKernel is the deterministic single-world kernel of the placement
// space: figures are (cost sum, violation sum, infeasible-job count).
type placementKernel struct {
	sp *Space
	st opt.State
}

func (k *placementKernel) Worlds() int { return 1 }
func (k *placementKernel) Width() int  { return 3 }

func (k *placementKernel) Sample(it int, rng *rand.Rand, out []float64) error {
	return k.sp.accumulate(k.st, out)
}

func (k *placementKernel) Reduce(sums []float64) (*probir.Evaluation, error) {
	return k.sp.reduce(sums), nil
}
