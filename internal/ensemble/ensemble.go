// Package ensemble implements the workflow-ensemble problem of §3.2: groups
// of structurally similar workflows with priorities, per-workflow
// probabilistic deadlines and a shared budget. The optimization goal
// maximizes Σ 2^-Priority(w) over completed workflows (Eq. 4) subject to the
// ensemble budget (Eq. 5) and each admitted workflow's deadline (Eq. 6).
//
// The five ensemble types of the paper's evaluation (constant, uniform
// sorted/unsorted, Pareto sorted/unsorted) control how workflow sizes are
// drawn and whether priority correlates with size.
package ensemble

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"deco/internal/dag"
	"deco/internal/estimate"
	"deco/internal/opt"
	"deco/internal/probir"
	"deco/internal/wfgen"
	"deco/internal/wlog"
)

// Kind enumerates the ensemble types of §6.1.
type Kind string

// The five ensemble types used in Figure 9.
const (
	Constant        Kind = "constant"
	UniformSorted   Kind = "uniform-sorted"
	UniformUnsorted Kind = "uniform-unsorted"
	ParetoSorted    Kind = "pareto-sorted"
	ParetoUnsorted  Kind = "pareto-unsorted"
)

// Kinds lists all ensemble types in presentation order.
var Kinds = []Kind{Constant, UniformSorted, UniformUnsorted, ParetoSorted, ParetoUnsorted}

// Ensemble is a prioritized group of workflows sharing a budget.
type Ensemble struct {
	Kind      Kind
	Workflows []*dag.Workflow // Workflows[i].Priority is set; 0 = highest
}

// Score returns Eq. 4's total score of the given admission set.
func (e *Ensemble) Score(admitted []bool) float64 {
	s := 0.0
	for i, w := range e.Workflows {
		if i < len(admitted) && admitted[i] {
			s += math.Exp2(-float64(w.Priority))
		}
	}
	return s
}

// MaxScore is the score of admitting everything.
func (e *Ensemble) MaxScore() float64 {
	all := make([]bool, len(e.Workflows))
	for i := range all {
		all[i] = true
	}
	return e.Score(all)
}

// Generate builds an ensemble of n workflows of the given application type.
// Sizes are drawn per the ensemble kind from the paper's size set
// {small, medium, large}; "sorted" kinds assign priority by descending size
// (big workflows matter most), "unsorted" kinds assign priorities randomly.
func Generate(kind Kind, app wfgen.App, n int, rng *rand.Rand) (*Ensemble, error) {
	if n < 1 {
		return nil, fmt.Errorf("ensemble: need at least one workflow")
	}
	sizes := make([]int, n)
	const (
		small = 20
		med   = 100
		large = 1000
	)
	switch kind {
	case Constant:
		for i := range sizes {
			sizes[i] = med
		}
	case UniformSorted, UniformUnsorted:
		opts := []int{small, med, large}
		for i := range sizes {
			sizes[i] = opts[rng.Intn(len(opts))]
		}
	case ParetoSorted, ParetoUnsorted:
		// Pareto-distributed sizes: many small, few large.
		for i := range sizes {
			u := rng.Float64()
			switch {
			case u < 0.7:
				sizes[i] = small
			case u < 0.93:
				sizes[i] = med
			default:
				sizes[i] = large
			}
		}
	default:
		return nil, fmt.Errorf("ensemble: unknown kind %q", kind)
	}

	e := &Ensemble{Kind: kind}
	for i, sz := range sizes {
		w, err := wfgen.BySize(app, sz, rng)
		if err != nil {
			return nil, err
		}
		w.Name = fmt.Sprintf("%s-%02d", w.Name, i)
		e.Workflows = append(e.Workflows, w)
	}

	// Priorities: sorted kinds rank by size (largest = priority 0);
	// unsorted kinds shuffle.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	switch kind {
	case UniformSorted, ParetoSorted:
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if e.Workflows[idx[j]].Len() > e.Workflows[idx[i]].Len() {
					idx[i], idx[j] = idx[j], idx[i]
				}
			}
		}
	default:
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	}
	for rank, i := range idx {
		e.Workflows[i].Priority = rank
	}
	return e, nil
}

// PlannedWorkflow is the per-workflow planning result the admission search
// consumes: a type configuration with its estimated cost and deadline
// feasibility.
type PlannedWorkflow struct {
	Config   opt.State
	Cost     float64
	Feasible bool
}

// Planner produces a PlannedWorkflow for one workflow under a deadline.
// Deco's planner runs the transformation-based search; SPSS's planner uses
// its static heuristic. Both plug into the same admission machinery.
type Planner func(w *dag.Workflow, deadlineSec, percentile float64) (*PlannedWorkflow, error)

// Space is the admission search space for opt.Search: state[i] ∈ {0,1} is
// workflow i's admission bit. The initial state admits nothing; neighbors
// admit one more workflow (the state transition of §6.1: "we consider
// executing each of the uncompleted workflows in the ensemble to generate
// child states"). The goal is maximized.
type Space struct {
	E *Ensemble
	// Plans holds the per-workflow plan (nil entries are unplannable
	// workflows that can never be admitted).
	Plans []*PlannedWorkflow
	// Budget is the ensemble budget B of Eq. 5 (callers may change it
	// between searches for budget sweeps; the fingerprint covers it).
	Budget float64

	// compiled flat arrays for the kernel path, derived from E and Plans on
	// first use — both must be fully assembled before the first evaluation.
	compileOnce sync.Once
	weights     []float64 // Exp2(-priority) per workflow
	costs       []float64 // planned cost per workflow (0 when unplannable)
	plannable   []bool
}

// compile flattens the per-workflow weight and cost lookups once, so the
// kernel path touches only dense slices.
func (s *Space) compile() {
	s.compileOnce.Do(func() {
		n := len(s.E.Workflows)
		s.weights = make([]float64, n)
		s.costs = make([]float64, n)
		s.plannable = make([]bool, n)
		for i, w := range s.E.Workflows {
			s.weights[i] = math.Exp2(-float64(w.Priority))
			if i < len(s.Plans) && s.Plans[i] != nil {
				s.costs[i] = s.Plans[i].Cost
				s.plannable[i] = true
			}
		}
	})
}

// NewSpace plans every workflow with the planner and assembles the space.
// Deadlines and percentiles come from each workflow's own fields.
func NewSpace(e *Ensemble, budget float64, plan Planner) (*Space, error) {
	sp := &Space{E: e, Budget: budget}
	for _, w := range e.Workflows {
		p, err := plan(w, w.DeadlineSeconds, w.DeadlinePercentile)
		if err != nil {
			return nil, fmt.Errorf("ensemble: planning %s: %w", w.Name, err)
		}
		if p != nil && !p.Feasible {
			p = nil // cannot meet its deadline at any cost: never admit
		}
		sp.Plans = append(sp.Plans, p)
	}
	return sp, nil
}

// Initial implements opt.Space.
func (s *Space) Initial() opt.State { return make(opt.State, len(s.E.Workflows)) }

// Neighbors implements opt.Space: admit one more (plannable) workflow.
func (s *Space) Neighbors(st opt.State) []opt.State {
	var out []opt.State
	for i := range st {
		if st[i] == 0 && s.Plans[i] != nil {
			c := st.Clone()
			c[i] = 1
			out = append(out, c)
		}
	}
	return out
}

// Evaluate implements opt.Space: the score of the admitted set, feasible iff
// the total cost fits the budget (per-workflow deadlines are already folded
// into the plans).
func (s *Space) Evaluate(st opt.State, rng *rand.Rand) (*probir.Evaluation, error) {
	if len(st) != len(s.E.Workflows) {
		return nil, fmt.Errorf("ensemble: state length %d, want %d", len(st), len(s.E.Workflows))
	}
	cost := 0.0
	admitted := make([]bool, len(st))
	for i, bit := range st {
		if bit == 0 {
			continue
		}
		if s.Plans[i] == nil {
			return nil, fmt.Errorf("ensemble: state admits unplannable workflow %d", i)
		}
		admitted[i] = true
		cost += s.Plans[i].Cost
	}
	ev := &probir.Evaluation{Value: s.E.Score(admitted), Feasible: cost <= s.Budget}
	if !ev.Feasible && s.Budget > 0 {
		ev.Violation = (cost - s.Budget) / s.Budget
	}
	return ev, nil
}

// CRNKernel implements opt.CRNSpace. The admission objective is
// deterministic — no Monte-Carlo worlds — so the kernel is a single world of
// two figures (score sum, cost sum) that ignores the CRN base entirely; it
// exists so admission searches run the solver's compiled kernel pipeline
// (and its evaluation cache) instead of the per-state fallback. Figures fold
// in workflow-index order, exactly as Evaluate accumulates them, so both
// paths are bit-identical on every device.
func (s *Space) CRNKernel(st opt.State, base int64) (probir.WorldKernel, error) {
	if len(st) != len(s.E.Workflows) {
		return nil, fmt.Errorf("ensemble: state length %d, want %d", len(st), len(s.E.Workflows))
	}
	s.compile()
	for i, bit := range st {
		if bit != 0 && !s.plannable[i] {
			return nil, fmt.Errorf("ensemble: state admits unplannable workflow %d", i)
		}
	}
	return &admissionKernel{sp: s, st: st, budget: s.Budget}, nil
}

// Fingerprint implements opt.FingerprintSpace: a content hash of everything
// Evaluate depends on — budget, priorities, and each plan's cost and
// admissibility — so cache entries from different ensembles, plan sets, or
// budget sweep points never collide.
func (s *Space) Fingerprint() string {
	if s.E == nil || len(s.Plans) != len(s.E.Workflows) {
		return "" // half-built space: cannot vouch for identity
	}
	h := sha256.New()
	var buf [8]byte
	putF := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	putF(s.Budget)
	putF(float64(len(s.E.Workflows)))
	for i, w := range s.E.Workflows {
		putF(float64(w.Priority))
		if s.Plans[i] == nil {
			putF(math.NaN())
			continue
		}
		putF(s.Plans[i].Cost)
	}
	return fmt.Sprintf("ensemble:%x", h.Sum(nil))
}

// admissionKernel is the deterministic single-world kernel of the admission
// space: figure 0 is the Eq. 4 score sum, figure 1 the Eq. 5 cost sum.
type admissionKernel struct {
	sp     *Space
	st     opt.State
	budget float64
}

func (k *admissionKernel) Worlds() int { return 1 }
func (k *admissionKernel) Width() int  { return 2 }

func (k *admissionKernel) Sample(it int, rng *rand.Rand, out []float64) error {
	score, cost := 0.0, 0.0
	for i, bit := range k.st {
		if bit == 0 {
			continue
		}
		score += k.sp.weights[i]
		cost += k.sp.costs[i]
	}
	out[0] = score
	out[1] = cost
	return nil
}

func (k *admissionKernel) Reduce(sums []float64) (*probir.Evaluation, error) {
	cost := sums[1]
	ev := &probir.Evaluation{Value: sums[0], Feasible: cost <= k.budget}
	if !ev.Feasible && k.budget > 0 {
		ev.Violation = (cost - k.budget) / k.budget
	}
	return ev, nil
}

// TotalCost sums the planned cost of the admitted workflows.
func (s *Space) TotalCost(st opt.State) float64 {
	c := 0.0
	for i, bit := range st {
		if bit == 1 && s.Plans[i] != nil {
			c += s.Plans[i].Cost
		}
	}
	return c
}

// Admitted converts a state to the bool form used by Score.
func Admitted(st opt.State) []bool {
	out := make([]bool, len(st))
	for i, v := range st {
		out[i] = v == 1
	}
	return out
}

// MinMaxBudget returns the smallest budget that admits the single cheapest
// plannable workflow and the budget admitting everything plannable — the
// MinBudget/MaxBudget anchors the Bgt1..Bgt5 sweep interpolates between.
func (s *Space) MinMaxBudget() (min, max float64) {
	min = math.Inf(1)
	for _, p := range s.Plans {
		if p == nil {
			continue
		}
		if p.Cost < min {
			min = p.Cost
		}
		max += p.Cost
	}
	if math.IsInf(min, 1) {
		min = 0
	}
	return min, max
}

// DefaultDeadlines assigns each workflow a deadline of slack × its
// mean critical-path time on the median type, with the given probabilistic
// percentile. It mirrors the paper's deadline generation between
// MinDeadline and MaxDeadline.
func DefaultDeadlines(e *Ensemble, tbl func(w *dag.Workflow) (*estimate.Table, error), slack, percentile float64) error {
	for _, w := range e.Workflows {
		t, err := tbl(w)
		if err != nil {
			return err
		}
		cfg := make(map[string]int, w.Len())
		for _, task := range w.Tasks {
			cfg[task.ID] = 1 // m1.medium as the reference
		}
		means, err := t.MeanDurations(cfg)
		if err != nil {
			return err
		}
		ms, _, err := w.Makespan(means)
		if err != nil {
			return err
		}
		w.DeadlineSeconds = ms * slack
		w.DeadlinePercentile = percentile
	}
	return nil
}

// Constraint builds the wlog budget constraint of Eq. 5 for reporting.
func Constraint(budget float64) wlog.Constraint {
	return wlog.Constraint{Kind: "budget", Percentile: -1, Bound: budget}
}
