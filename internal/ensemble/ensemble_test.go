package ensemble

import (
	"math"
	"math/rand"
	"testing"

	"deco/internal/cloud"
	"deco/internal/dag"
	"deco/internal/estimate"
	"deco/internal/opt"
	"deco/internal/wfgen"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestGenerateKinds(t *testing.T) {
	for _, kind := range Kinds {
		e, err := Generate(kind, wfgen.AppMontage, 8, rng(1))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(e.Workflows) != 8 {
			t.Fatalf("%s: %d workflows", kind, len(e.Workflows))
		}
		// Priorities are a permutation of 0..n-1.
		seen := map[int]bool{}
		for _, w := range e.Workflows {
			if w.Priority < 0 || w.Priority >= 8 || seen[w.Priority] {
				t.Fatalf("%s: bad priorities", kind)
			}
			seen[w.Priority] = true
		}
	}
	if _, err := Generate("nope", wfgen.AppMontage, 3, rng(1)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Generate(Constant, wfgen.AppMontage, 0, rng(1)); err == nil {
		t.Error("empty ensemble accepted")
	}
}

func TestConstantKindUniformSizes(t *testing.T) {
	e, err := Generate(Constant, wfgen.AppLigo, 5, rng(2))
	if err != nil {
		t.Fatal(err)
	}
	first := e.Workflows[0].Len()
	for _, w := range e.Workflows {
		if w.Len() != first {
			t.Errorf("constant ensemble has varying sizes: %d vs %d", w.Len(), first)
		}
	}
}

func TestSortedKindPriorityBySize(t *testing.T) {
	e, err := Generate(UniformSorted, wfgen.AppLigo, 10, rng(3))
	if err != nil {
		t.Fatal(err)
	}
	// Priority 0 should be (one of) the largest.
	var p0 *dag.Workflow
	maxLen := 0
	for _, w := range e.Workflows {
		if w.Priority == 0 {
			p0 = w
		}
		if w.Len() > maxLen {
			maxLen = w.Len()
		}
	}
	if p0 == nil || p0.Len() != maxLen {
		t.Errorf("priority-0 workflow size %d, max %d", p0.Len(), maxLen)
	}
}

func TestScore(t *testing.T) {
	e := &Ensemble{Workflows: []*dag.Workflow{
		{Name: "a", Priority: 0},
		{Name: "b", Priority: 1},
		{Name: "c", Priority: 2},
	}}
	if got := e.Score([]bool{true, true, true}); got != 1.75 {
		t.Errorf("score %v, want 1.75", got)
	}
	if got := e.Score([]bool{true, false, false}); got != 1 {
		t.Errorf("score %v, want 1", got)
	}
	if got := e.Score([]bool{false, false, false}); got != 0 {
		t.Errorf("score %v, want 0", got)
	}
	if e.MaxScore() != 1.75 {
		t.Errorf("max score %v", e.MaxScore())
	}
}

// fixedPlanner returns canned plans of the given costs.
func fixedPlanner(costs map[string]float64, feasible map[string]bool) Planner {
	return func(w *dag.Workflow, d, p float64) (*PlannedWorkflow, error) {
		f, ok := feasible[w.Name]
		if !ok {
			f = true
		}
		return &PlannedWorkflow{Cost: costs[w.Name], Feasible: f}, nil
	}
}

func smallEnsemble() *Ensemble {
	return &Ensemble{Workflows: []*dag.Workflow{
		{Name: "a", Priority: 0},
		{Name: "b", Priority: 1},
		{Name: "c", Priority: 2},
	}}
}

func TestSpaceEvaluate(t *testing.T) {
	e := smallEnsemble()
	sp, err := NewSpace(e, 10, fixedPlanner(map[string]float64{"a": 6, "b": 5, "c": 1}, nil))
	if err != nil {
		t.Fatal(err)
	}
	// Admit a+c: cost 7 <= 10, score 1.25.
	ev, err := sp.Evaluate(opt.State{1, 0, 1}, rng(4))
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible || ev.Value != 1.25 {
		t.Errorf("eval %+v", ev)
	}
	// Admit all: cost 12 > 10.
	ev, err = sp.Evaluate(opt.State{1, 1, 1}, rng(4))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Feasible {
		t.Error("over-budget state feasible")
	}
	if ev.Violation <= 0 {
		t.Error("violation not set")
	}
	if _, err := sp.Evaluate(opt.State{1}, rng(4)); err == nil {
		t.Error("short state accepted")
	}
}

func TestSpaceNeighborsSkipUnplannable(t *testing.T) {
	e := smallEnsemble()
	sp, err := NewSpace(e, 10, fixedPlanner(
		map[string]float64{"a": 1, "b": 1, "c": 1},
		map[string]bool{"b": false}))
	if err != nil {
		t.Fatal(err)
	}
	ns := sp.Neighbors(sp.Initial())
	if len(ns) != 2 {
		t.Fatalf("neighbors %v (b is unplannable)", ns)
	}
	for _, n := range ns {
		if n[1] == 1 {
			t.Error("unplannable workflow admitted")
		}
	}
}

func TestSearchMaximizesScoreUnderBudget(t *testing.T) {
	e := smallEnsemble()
	// a costs 10 (score 1), b+c cost 5+4 (score 0.75): with budget 10 the
	// optimum admits a alone.
	sp, err := NewSpace(e, 10, fixedPlanner(map[string]float64{"a": 10, "b": 5, "c": 4}, nil))
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(sp, opt.Options{Maximize: true, MaxStates: 100, BeamWidth: 8, Patience: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.BestEval.Value != 1 {
		t.Fatalf("best %v eval %+v", res.Best, res.BestEval)
	}
	if res.Best[0] != 1 || res.Best[1] != 0 || res.Best[2] != 0 {
		t.Errorf("admission %v, want a only", res.Best)
	}
}

func TestMinMaxBudget(t *testing.T) {
	e := smallEnsemble()
	sp, err := NewSpace(e, 0, fixedPlanner(
		map[string]float64{"a": 6, "b": 5, "c": 1},
		map[string]bool{"b": false}))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := sp.MinMaxBudget()
	if lo != 1 || hi != 7 { // b is excluded
		t.Errorf("min %v max %v", lo, hi)
	}
}

func TestAdmittedConversion(t *testing.T) {
	got := Admitted(opt.State{1, 0, 1})
	if !got[0] || got[1] || !got[2] {
		t.Errorf("admitted %v", got)
	}
}

func TestDefaultDeadlines(t *testing.T) {
	cat := cloud.DefaultCatalog()
	md, err := cloud.MetadataFromTruth(cat, 10, 2000, rng(5))
	if err != nil {
		t.Fatal(err)
	}
	est := estimate.New(cat, md)
	e, err := Generate(Constant, wfgen.AppPipeline, 3, rng(6))
	if err != nil {
		t.Fatal(err)
	}
	tblOf := func(w *dag.Workflow) (*estimate.Table, error) { return est.BuildTable(w) }
	if err := DefaultDeadlines(e, tblOf, 1.5, 0.96); err != nil {
		t.Fatal(err)
	}
	for _, w := range e.Workflows {
		if w.DeadlineSeconds <= 0 || w.DeadlinePercentile != 0.96 {
			t.Errorf("%s deadline %v/%v", w.Name, w.DeadlineSeconds, w.DeadlinePercentile)
		}
	}
}

func TestInfeasiblePlansNeverAdmitted(t *testing.T) {
	e := smallEnsemble()
	sp, err := NewSpace(e, 100, fixedPlanner(
		map[string]float64{"a": 1, "b": 1, "c": 1},
		map[string]bool{"a": false, "b": false, "c": false}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Search(sp, opt.Options{Maximize: true, MaxStates: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestEval.Value != 0 {
		t.Errorf("score %v with all plans infeasible", res.BestEval.Value)
	}
}

func TestConstraintHelper(t *testing.T) {
	c := Constraint(42)
	if c.Kind != "budget" || c.Bound != 42 || c.Percentile != -1 {
		t.Errorf("constraint %+v", c)
	}
}

func TestScoreIsMonotoneInAdmission(t *testing.T) {
	e, err := Generate(ParetoUnsorted, wfgen.AppCyberShake, 12, rng(7))
	if err != nil {
		t.Fatal(err)
	}
	adm := make([]bool, 12)
	prev := 0.0
	for i := range adm {
		adm[i] = true
		s := e.Score(adm)
		if s <= prev {
			t.Fatalf("score not increasing at %d: %v <= %v", i, s, prev)
		}
		prev = s
	}
	if math.Abs(prev-e.MaxScore()) > 1e-12 {
		t.Errorf("full admission %v != max score %v", prev, e.MaxScore())
	}
}
