package ensemble

import (
	"math/rand"

	"deco/internal/dag"
	"deco/internal/estimate"
	"deco/internal/opt"
	"deco/internal/probir"
	"deco/internal/wlog"
)

// DecoPlanner plans one workflow with Deco's transformation-based search:
// minimize the Eq. 1 cost under the workflow's probabilistic deadline. The
// resulting fractional (partial-hour-sharing) cost is what the Merge and
// Co-Scheduling transformations make achievable, and is the reason Deco
// fits more workflows into an ensemble budget than SPSS (§6.3.2).
func DecoPlanner(tblOf func(w *dag.Workflow) (*estimate.Table, error), prices []float64, iters int, search opt.Options) Planner {
	return func(w *dag.Workflow, deadlineSec, percentile float64) (*PlannedWorkflow, error) {
		tbl, err := tblOf(w)
		if err != nil {
			return nil, err
		}
		pct := percentile
		if pct == 0 {
			pct = 0.96
		}
		cons := []wlog.Constraint{{Kind: "deadline", Percentile: pct, Bound: deadlineSec}}
		eval, err := probir.NewNative(w, tbl, prices, probir.GoalCost, cons, iters)
		if err != nil {
			return nil, err
		}
		space := opt.NewPackedScheduleSpace(w, eval, tbl, prices, "us-east-1")
		res, err := opt.Search(space, search)
		if err != nil {
			return nil, err
		}
		cost := res.BestEval.Value
		// Re-evaluate feasibility with an independent seed for an honest
		// admission decision.
		ev, err := eval.Evaluate(res.Best, rand.New(rand.NewSource(search.Seed+104729)))
		if err != nil {
			return nil, err
		}
		return &PlannedWorkflow{Config: res.Best, Cost: cost, Feasible: res.Feasible && ev.Feasible}, nil
	}
}
