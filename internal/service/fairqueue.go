// Multi-tenant admission and scheduling: decod consolidates many users'
// workflows onto shared planning capacity (the Workflow-as-a-Service setting
// of Zhou & He's follow-up paper), so the single FIFO queue of PR 1 becomes
// two per-tenant mechanisms:
//
//   - a token bucket per tenant at admission, bounding each tenant's
//     sustained submission rate independently of everyone else's, and
//   - stride scheduling across per-tenant FIFO queues at dispatch, so a
//     backlogged tenant cannot starve the others: each dequeue charges the
//     tenant 1/weight of virtual time, and the scheduler always serves the
//     non-empty tenant with the smallest accumulated pass.
package service

import (
	"sync"
	"time"
)

// fairQueue is a bounded, weighted fair queue of jobs keyed by tenant.
// Within a tenant jobs stay FIFO; across tenants dispatch follows stride
// scheduling, which for equal weights degenerates to round-robin and for
// weight w gives a tenant a w-proportional share of dequeues under backlog.
type fairQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	size     int
	closed   bool
	weights  map[string]float64
	tenants  map[string]*tenantFifo
	vtime    float64 // pass of the most recent dequeue: the queue's virtual clock
}

type tenantFifo struct {
	jobs   []*job
	pass   float64 // virtual time this tenant has consumed
	stride float64 // 1/weight: virtual time charged per dequeue
}

// newFairQueue builds a queue bounding the total backlog at capacity.
// weights maps tenant name to scheduling weight; absent tenants get weight 1.
func newFairQueue(capacity int, weights map[string]float64) *fairQueue {
	q := &fairQueue{capacity: capacity, weights: weights, tenants: make(map[string]*tenantFifo)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues j under its tenant. It returns ErrQueueFull when the total
// backlog is at capacity and ErrShuttingDown after close.
func (q *fairQueue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrShuttingDown
	}
	if q.size >= q.capacity {
		return ErrQueueFull
	}
	t, ok := q.tenants[j.tenant]
	if !ok {
		w := q.weights[j.tenant]
		if w <= 0 {
			w = 1
		}
		t = &tenantFifo{stride: 1 / w}
		q.tenants[j.tenant] = t
	}
	if len(t.jobs) == 0 && t.pass < q.vtime {
		// An idle tenant re-enters at the current virtual time: it competes
		// fairly from now on instead of cashing in the idle period as a burst.
		t.pass = q.vtime
	}
	t.jobs = append(t.jobs, j)
	q.size++
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available and returns the head of the non-empty
// tenant queue with the smallest pass. It returns ok=false once the queue is
// closed and fully drained.
func (q *fairQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.size == 0 {
		return nil, false
	}
	var best *tenantFifo
	var bestName string
	for name, t := range q.tenants {
		if len(t.jobs) == 0 {
			continue
		}
		if best == nil || t.pass < best.pass || (t.pass == best.pass && name < bestName) {
			best, bestName = t, name
		}
	}
	j := best.jobs[0]
	best.jobs[0] = nil // release the reference for GC
	best.jobs = best.jobs[1:]
	q.size--
	q.vtime = best.pass
	best.pass += best.stride
	if len(best.jobs) == 0 {
		delete(q.tenants, bestName) // re-admission resynchronizes pass with vtime
	}
	return j, true
}

// close stops admission; blocked pops drain the backlog and then return
// ok=false.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Len returns the total backlog across tenants.
func (q *fairQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Depths returns the per-tenant backlog (tenants with queued jobs only).
func (q *fairQueue) Depths() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int, len(q.tenants))
	for name, t := range q.tenants {
		if len(t.jobs) > 0 {
			out[name] = len(t.jobs)
		}
	}
	return out
}

// quotas applies per-tenant token-bucket admission: each tenant may sustain
// rate submissions per second with bursts up to burst. rate <= 0 disables
// admission control entirely.
type quotas struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotas(rate, burst float64) *quotas {
	if burst < 1 {
		burst = 1
	}
	return &quotas{rate: rate, burst: burst, buckets: make(map[string]*bucket)}
}

// allow consumes one token from tenant's bucket, reporting false when the
// tenant is over quota.
func (q *quotas) allow(tenant string, now time.Time) bool {
	if q == nil || q.rate <= 0 {
		return true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[tenant]
	if !ok {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
