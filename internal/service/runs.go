package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"deco"
	"deco/internal/cloud"
	"deco/internal/runtime"
)

// RunRequest is the body of POST /v1/runs: a managed run plans the request
// like POST /v1/jobs and then executes the plan once on the cloud simulator
// under the runtime monitor, streaming execution events as they happen.
type RunRequest struct {
	SubmitRequest

	// Adapt enables closed-loop replanning; without it the monitor still
	// observes, streams events, and reports risk, but never intervenes.
	Adapt bool `json:"adapt,omitempty"`
	// Risk is the violation-probability threshold that triggers a replan
	// (0 takes the server default).
	Risk float64 `json:"risk,omitempty"`
	// Perturb scales the simulator's ground-truth performance away from the
	// calibrated histograms (0.5 = half speed; 0 or 1 = none) to model
	// calibration drift.
	Perturb float64 `json:"perturb,omitempty"`
	// SpotHazard scales the simulator's ground-truth spot revocation hazard
	// away from the catalog's market model (0 or 1 = none): spot instances
	// are reclaimed more often than the plan priced in, and each revocation
	// forces a monitor recovery replan onto on-demand capacity.
	SpotHazard float64 `json:"spot_hazard,omitempty"`
}

// runState is the managed-run extension of a job: the live event log the
// events endpoint streams from. events is appended under Manager.mu; once the
// job reaches a terminal state the log is complete.
type runState struct {
	req    RunRequest
	events []runtime.StreamEvent
}

// RunResult is the result document of a finished managed run.
type RunResult struct {
	Plan      PlanResult `json:"plan"`
	Makespan  float64    `json:"makespan"`
	TotalCost float64    `json:"total_cost"`
	// DeadlineMet reports the realized outcome against the plan's deadline
	// constraint (absent when the plan has none).
	DeadlineMet *bool   `json:"deadline_met,omitempty"`
	Replans     int     `json:"replans"`
	RiskMax     float64 `json:"risk_max"`
	Drift       float64 `json:"drift"`
	Perturb     float64 `json:"perturb,omitempty"`
	SpotHazard  float64 `json:"spot_hazard,omitempty"`
	// Spot-market outcome of this run: market reclaims, the monitor's
	// forced recovery replans (not counted in Replans), and the realized
	// spot-vs-on-demand billing delta.
	Revocations    int     `json:"revocations,omitempty"`
	Recoveries     int     `json:"recoveries,omitempty"`
	SpotSavingsUSD float64 `json:"spot_savings_usd,omitempty"`
	// FinalAssignments is the placement actually executed, sorted by task —
	// it differs from Plan.Assignments exactly when replans fired.
	FinalAssignments []Assignment `json:"final_assignments"`
	Events           int          `json:"events"`
}

// SubmitRun validates and enqueues a managed run. Runs never touch the plan
// cache (the execution is stochastic state, not a memoizable answer) and are
// never forwarded to peers — the event stream lives on the node the client
// submitted to — but they share the tenant admission quota and fair queue
// with planning jobs.
func (m *Manager) SubmitRun(req RunRequest) (JobView, error) {
	w, kind, err := m.normalize(&req.SubmitRequest)
	if err != nil {
		return JobView{}, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	if kind == KindEnsemble {
		return JobView{}, fmt.Errorf("%w: ensemble programs have no executable plan; submit them as a planning job", errBadRequest)
	}
	if req.Risk == 0 {
		req.Risk = m.cfg.DefaultRisk
	}
	if req.Risk <= 0 || req.Risk >= 1 {
		return JobView{}, fmt.Errorf("%w: risk must be in (0, 1), got %v", errBadRequest, req.Risk)
	}
	if req.Perturb == 0 {
		req.Perturb = 1
	}
	if req.Perturb <= 0 {
		return JobView{}, fmt.Errorf("%w: perturb must be positive, got %v", errBadRequest, req.Perturb)
	}
	if req.SpotHazard == 0 {
		req.SpotHazard = 1
	}
	if req.SpotHazard < 0 {
		return JobView{}, fmt.Errorf("%w: spot_hazard must be non-negative, got %v", errBadRequest, req.SpotHazard)
	}
	if req.RequestID == "" {
		req.RequestID = genRequestID()
	}
	if !m.quota.allow(req.Tenant, time.Now()) {
		m.metrics.QuotaRejected.Add(1)
		return JobView{}, fmt.Errorf("%w: tenant %q", ErrQuotaExceeded, req.Tenant)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return JobView{}, ErrShuttingDown
	}
	m.nextID++
	j := &job{
		id:        fmt.Sprintf("r-%06d", m.nextID),
		req:       req.SubmitRequest,
		tenant:    req.Tenant,
		requestID: req.RequestID,
		wf:        w,
		kind:      KindRun,
		run:       &runState{req: req},
		submitted: time.Now(),
	}
	m.metrics.TenantAdd(j.tenant, "submitted", 1)
	j.ctx, j.cancel = context.WithCancel(context.Background())
	j.state = JobQueued
	if err := m.queue.push(j); err != nil {
		j.cancel()
		return JobView{}, err
	}
	m.metrics.JobsQueued.Add(1)
	m.recordLocked(j)
	m.logf("run %s rid=%s tenant=%s queued", j.id, j.requestID, j.tenant)
	return j.viewLocked(), nil
}

// runManaged plans and then executes a managed run, appending every monitor
// event to the job's log as it happens. Called from a worker goroutine that
// does not hold m.mu.
func (m *Manager) runManaged(j *job, eng *deco.Engine) (json.RawMessage, error) {
	plan, err := solve(j.ctx, eng, j)
	if err != nil {
		return nil, err
	}
	// Ground truth starts from the plan's catalog, not the worker engine's:
	// a program-mode job may have derived its engine from a custom-cloud
	// import, and the drift knobs must perturb that cloud.
	execCat := plan.Catalog()
	if p := j.run.req.Perturb; p != 1 {
		if execCat, err = cloud.ScalePerf(execCat, p); err != nil {
			return nil, err
		}
	}
	if h := j.run.req.SpotHazard; h != 1 {
		if execCat, err = cloud.ScaleHazard(execCat, h); err != nil {
			return nil, err
		}
	}
	o := runtime.Options{
		Risk: j.run.req.Risk,
		Seed: j.req.Seed,
		Ctx:  j.ctx,
		Sink: func(ev runtime.StreamEvent) {
			m.mu.Lock()
			j.run.events = append(j.run.events, ev)
			m.runCond.Broadcast()
			m.mu.Unlock()
		},
	}
	if !j.run.req.Adapt {
		o.MaxReplans = -1 // observe and stream, never intervene
	}
	res, rep, err := plan.ExecuteAdaptive(j.ctx, j.req.Seed, execCat, o)
	if err != nil {
		return nil, err
	}
	m.metrics.RunsDone.Add(1)
	m.metrics.ReplansTotal.Add(int64(rep.Replans))
	m.metrics.RevocationsTotal.Add(int64(rep.Revocations))
	m.metrics.RecoveriesTotal.Add(int64(rep.Recoveries))
	m.metrics.SpotSavingsMicroUSD.Add(int64(math.Round(res.SpotSavingsUSD * 1e6)))

	final := make([]Assignment, 0, len(rep.FinalConfig))
	pr := PlanResultOf(plan)
	for _, a := range pr.Assignments { // reuse the sorted task order
		final = append(final, Assignment{Task: a.Task, Type: rep.FinalConfig[a.Task]})
	}
	doc := RunResult{
		Plan:             pr,
		Makespan:         res.Makespan,
		TotalCost:        res.TotalCost,
		DeadlineMet:      rep.DeadlineMet,
		Replans:          rep.Replans,
		RiskMax:          rep.RiskMax,
		Drift:            rep.Drift,
		FinalAssignments: final,
		Events:           len(rep.Events),
	}
	if j.run.req.Perturb != 1 {
		doc.Perturb = j.run.req.Perturb
	}
	if j.run.req.SpotHazard != 1 {
		doc.SpotHazard = j.run.req.SpotHazard
	}
	doc.Revocations = rep.Revocations
	doc.Recoveries = rep.Recoveries
	doc.SpotSavingsUSD = res.SpotSavingsUSD
	return json.Marshal(doc)
}

// StreamEvents writes the run's event log to w as NDJSON, one StreamEvent per
// line, blocking until the run reaches a terminal state (the log is then
// complete) or ctx is cancelled. flush, when non-nil, is called after every
// batch so HTTP clients see events as they happen.
func (m *Manager) StreamEvents(ctx context.Context, id string, w io.Writer, flush func()) error {
	// A cancelled client must not stay parked on the cond.
	stop := context.AfterFunc(ctx, func() {
		m.mu.Lock()
		m.runCond.Broadcast()
		m.mu.Unlock()
	})
	defer stop()

	next := 0
	for {
		m.mu.Lock()
		j, ok := m.jobs[id]
		if !ok || j.run == nil {
			m.mu.Unlock()
			if next == 0 {
				return ErrNotFound
			}
			return nil // pruned mid-stream: the log is gone, end cleanly
		}
		for next >= len(j.run.events) && !j.state.terminal() && ctx.Err() == nil {
			m.runCond.Wait()
		}
		batch := append([]runtime.StreamEvent(nil), j.run.events[next:]...)
		done := j.state.terminal()
		m.mu.Unlock()

		enc := json.NewEncoder(w)
		for _, ev := range batch {
			if err := enc.Encode(ev); err != nil {
				return err
			}
		}
		if len(batch) > 0 && flush != nil {
			flush()
		}
		next += len(batch)
		if done {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
}

// terminal reports whether the state is final — for a managed run this also
// means its event log is complete, because the worker appends every event
// before marking the job finished.
func (s JobState) terminal() bool {
	switch s {
	case JobDone, JobFailed, JobCancelled:
		return true
	}
	return false
}
