package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a planning request → job view (202, or
//	                            200 when served from the plan cache)
//	GET    /v1/jobs             list retained jobs (without results)
//	GET    /v1/jobs/{id}        job status + result when done
//	POST   /v1/jobs/{id}/cancel cancel a queued or running job
//	DELETE /v1/jobs/{id}        same as cancel
//	POST   /v1/runs             submit a managed run: plan, then execute on
//	                            the simulator under the runtime monitor (202)
//	GET    /v1/runs/{id}        run status + result when done
//	GET    /v1/runs/{id}/events stream the run's execution events as NDJSON
//	                            (blocks until the run finishes)
//	POST   /v1/runs/{id}/cancel cancel a queued or running managed run
//	GET    /healthz             liveness probe
//	GET    /metrics             JSON counters + solve-latency quantiles
//
// When cfg.EnablePprof is set, the standard net/http/pprof endpoints are
// additionally mounted under /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/runs", s.handleRunSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleRunEvents)
	mux.HandleFunc("POST /v1/runs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		// pprof.Index dispatches /debug/pprof/{heap,goroutine,block,...}
		// itself; Cmdline, Profile, Symbol and Trace need explicit routes.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request body: " + err.Error()})
		return
	}
	view, err := s.mgr.Submit(req)
	switch {
	case errors.Is(err, errBadRequest):
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	case errors.Is(err, ErrQueueFull):
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	case view.State == JobDone: // plan cache hit: answered synchronously
		writeJSON(w, http.StatusOK, view)
	default:
		writeJSON(w, http.StatusAccepted, view)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.List()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	view, err := s.mgr.Get(r.PathValue("id"))
	if errors.Is(err, ErrNotFound) {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.mgr.Cancel(r.PathValue("id"))
	if errors.Is(err, ErrNotFound) {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleRunSubmit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request body: " + err.Error()})
		return
	}
	view, err := s.mgr.SubmitRun(req)
	switch {
	case errors.Is(err, errBadRequest):
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	case errors.Is(err, ErrQueueFull):
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusAccepted, view)
	}
}

func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Resolve before committing to a streaming response, so a missing run
	// still gets a clean JSON 404.
	if _, err := s.mgr.Get(id); errors.Is(err, ErrNotFound) {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := s.mgr.StreamEvents(r.Context(), id, w, flush); errors.Is(err, ErrNotFound) {
		// Not a managed run (or pruned before the first event was written):
		// nothing has been sent yet, so the error document is still valid.
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	flush()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot(s.cache, s.evalCache))
}
