package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"time"

	"deco/internal/cluster"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a planning request → job view (202, or
//	                            200 when served from the plan cache)
//	GET    /v1/jobs             list retained jobs (without results)
//	GET    /v1/jobs/{id}        job status + result when done
//	POST   /v1/jobs/{id}/cancel cancel a queued or running job
//	DELETE /v1/jobs/{id}        same as cancel
//	POST   /v1/runs             submit a managed run: plan, then execute on
//	                            the simulator under the runtime monitor (202)
//	GET    /v1/runs/{id}        run status + result when done
//	GET    /v1/runs/{id}/events stream the run's execution events as NDJSON
//	                            (blocks until the run finishes)
//	POST   /v1/runs/{id}/cancel cancel a queued or running managed run
//	POST   /v1/peer/solve       peer-internal: solve a forwarded job
//	                            synchronously and return its result document
//	GET    /healthz             liveness probe
//	GET    /metrics             JSON counters + solve-latency quantiles +
//	                            per-tenant and cluster series
//
// Submissions honor the X-Request-Id header (one is generated when absent);
// the ID is echoed in job views, propagated on peer forwards, and stamped on
// log lines so one job can be traced across nodes.
//
// When cfg.EnablePprof is set, the standard net/http/pprof endpoints are
// additionally mounted under /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/runs", s.handleRunSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleRunEvents)
	mux.HandleFunc("POST /v1/runs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("POST "+cluster.PeerSolvePath, s.handlePeerSolve)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		// pprof.Index dispatches /debug/pprof/{heap,goroutine,block,...}
		// itself; Cmdline, Profile, Symbol and Trace need explicit routes.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

// requestID extracts the client's trace ID, minting one when absent.
func requestID(r *http.Request) string {
	if id := r.Header.Get(cluster.HeaderRequestID); id != "" && len(id) <= 128 {
		return id
	}
	return genRequestID()
}

// decodeBody decodes a capped JSON request body into into, reporting the
// HTTP status to answer with on failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, into any) (int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return http.StatusRequestEntityTooLarge, err
		}
		return http.StatusBadRequest, err
	}
	return http.StatusOK, nil
}

// writeSubmitError maps manager submission errors to HTTP statuses.
func writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errBadRequest):
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	case errors.Is(err, ErrQuotaExceeded), errors.Is(err, ErrQueueFull):
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if code, err := s.decodeBody(w, r, &req); err != nil {
		writeJSON(w, code, apiError{Error: "bad request body: " + err.Error()})
		return
	}
	req.RequestID = requestID(r)
	view, err := s.mgr.Submit(req)
	switch {
	case err != nil:
		writeSubmitError(w, err)
	case view.State == JobDone: // plan cache hit: answered synchronously
		writeJSON(w, http.StatusOK, view)
	default:
		writeJSON(w, http.StatusAccepted, view)
	}
}

// handlePeerSolve answers a forwarded job synchronously: it enqueues the job
// like a local submission (sharing the fair queue, caches and singleflight)
// and streams back the finished result document. The forwarding node treats
// any non-200 — draining, full queue, solver failure — as "compute locally
// instead", so refusing here hands the work back rather than dropping it.
func (s *Server) handlePeerSolve(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if code, err := s.decodeBody(w, r, &req); err != nil {
		writeJSON(w, code, apiError{Error: "bad request body: " + err.Error()})
		return
	}
	req.RequestID = requestID(r)
	view, err := s.mgr.SubmitForwarded(req)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	if !view.State.terminal() {
		// The solve may outlast the server's WriteTimeout; this response's
		// deadline is governed by the client's (forwarder's) hedge instead.
		_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
		view, err = s.mgr.WaitJob(r.Context(), view.ID)
		if err != nil {
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
			return
		}
	}
	switch view.State {
	case JobDone:
		if view.Cached {
			w.Header().Set(cluster.HeaderCached, "1")
		}
		w.Header().Set(cluster.HeaderRequestID, view.RequestID)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(view.Result)
	case JobCancelled:
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "forwarded job cancelled: " + view.Error})
	default:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "forwarded job failed: " + view.Error})
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.List()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	view, err := s.mgr.Get(r.PathValue("id"))
	if errors.Is(err, ErrNotFound) {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.mgr.Cancel(r.PathValue("id"))
	if errors.Is(err, ErrNotFound) {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleRunSubmit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if code, err := s.decodeBody(w, r, &req); err != nil {
		writeJSON(w, code, apiError{Error: "bad request body: " + err.Error()})
		return
	}
	req.RequestID = requestID(r)
	view, err := s.mgr.SubmitRun(req)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Resolve before committing to a streaming response, so a missing run
	// still gets a clean JSON 404.
	if _, err := s.mgr.Get(id); errors.Is(err, ErrNotFound) {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	// The stream outlives the server's WriteTimeout by design: clear the
	// write deadline and rely on request-context cancellation (client gone)
	// to unblock the stream instead.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := s.mgr.StreamEvents(r.Context(), id, w, flush); errors.Is(err, ErrNotFound) {
		// Not a managed run (or pruned before the first event was written):
		// nothing has been sent yet, so the error document is still valid.
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	flush()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Snapshot())
}
