// Package service runs Deco as a long-lived provisioning-plan service: an
// HTTP/JSON API over an asynchronous job manager. Clients POST a planning
// request (a named synthetic workflow, an inline DAX document, or a raw WLog
// program, plus probabilistic deadline/budget constraints) and get back a job
// ID; a bounded queue feeds a pool of workers, each owning its own
// deco.Engine; finished plans land in a content-addressed LRU cache so
// resubmissions of the same problem are answered without re-searching.
//
// This is the service face the paper implies for Deco-as-WMS-backend (§6.4's
// WMS integration) and the natural step toward the Workflow-as-a-Service
// hosting model: the engine stops being a library call and becomes shared
// infrastructure with admission control (queue depth), cancellation, and
// operational visibility (/metrics, /healthz).
package service

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"deco"
)

// Config sizes the service.
type Config struct {
	// Addr is the listen address, e.g. ":8080".
	Addr string
	// Workers is the solver pool size (default 2).
	Workers int
	// QueueDepth bounds jobs accepted but not yet running (default 64);
	// submissions beyond it are rejected with 429.
	QueueDepth int

	// Self is this node's advertised base URL (e.g. "http://host0:8080") and
	// Peers the full static membership of the cluster, self included or not
	// (it is added). With no peers the node runs standalone: no ring, no
	// forwarding. Every node must list the same peer spellings.
	Self  string
	Peers []string
	// ForwardHedge is how long a worker waits on the owning peer before
	// abandoning the forward and computing locally (default 2s). It only
	// fires when the owner is reachable but slow; an unreachable owner fails
	// the forward immediately.
	ForwardHedge time.Duration
	// ForwardDialTimeout bounds connection establishment to a peer (default
	// 2s) so dead peers fail fast into local computation.
	ForwardDialTimeout time.Duration

	// TenantRate is the per-tenant admission quota in submissions per
	// second, enforced by a token bucket per tenant; 0 disables admission
	// control. TenantBurst is the bucket depth (default max(1, TenantRate)).
	TenantRate  float64
	TenantBurst float64
	// TenantWeights maps tenant names to fair-scheduling weights; absent
	// tenants weigh 1. A weight-2 tenant gets twice the dequeues of a
	// weight-1 tenant while both are backlogged.
	TenantWeights map[string]float64

	// HTTP hardening. MaxRequestBytes caps a submission body (default 1
	// MiB) — peer-to-peer forwarding makes unbounded bodies a cluster-wide
	// hazard, since one oversized program would be copied to its owner.
	// ReadTimeout/WriteTimeout/MaxHeaderBytes harden the listener; the
	// streaming endpoints (run events, peer solve) extend their own write
	// deadlines past WriteTimeout.
	MaxRequestBytes int64
	ReadTimeout     time.Duration
	WriteTimeout    time.Duration
	MaxHeaderBytes  int

	// Logf, when non-nil, receives operational log lines (submissions,
	// forwards, failures) with request IDs. nil discards them.
	Logf func(format string, args ...any)
	// CacheCapacity is the plan cache size in entries (default 256; 0
	// disables caching).
	CacheCapacity int
	// MaxJobsRetained bounds the job table; the oldest finished jobs are
	// dropped past it (default 1024).
	MaxJobsRetained int
	// EvalCacheCapacity is the shared state-evaluation cache size in entries
	// (default deco.DefaultEvalCacheCapacity; negative disables it). Unlike
	// the plan cache, which memoizes whole solved jobs, the evaluation cache
	// memoizes individual Monte-Carlo state evaluations and is shared by every
	// worker engine and every managed run's replan searches.
	EvalCacheCapacity int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by default;
	// the profiles expose internals, so opt in per deployment).
	EnablePprof bool

	// Solver defaults applied to requests that leave them zero.
	DefaultSeed         int64
	DefaultIters        int
	DefaultSearchBudget int
	// DefaultThreads bounds Monte-Carlo iteration parallelism per state
	// evaluation (threads per block); 0 lets the device split iterations
	// freely, 1 restricts it to state-level parallelism. Plans do not depend
	// on this knob.
	DefaultThreads int
	// DefaultAdaptive enables adaptive-precision Monte-Carlo inference for
	// requests that do not set "adaptive" themselves (decod -adaptive).
	DefaultAdaptive bool
	// DefaultRisk is the replan threshold applied to managed runs that leave
	// risk zero (default 0.1).
	DefaultRisk float64
}

func (c *Config) fillDefaults() {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 256
	}
	if c.MaxJobsRetained == 0 {
		c.MaxJobsRetained = 1024
	}
	if c.ForwardHedge <= 0 {
		c.ForwardHedge = 2 * time.Second
	}
	if c.ForwardDialTimeout <= 0 {
		c.ForwardDialTimeout = 2 * time.Second
	}
	if c.TenantBurst <= 0 && c.TenantRate > 0 {
		c.TenantBurst = c.TenantRate
		if c.TenantBurst < 1 {
			c.TenantBurst = 1
		}
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 1 << 20
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 60 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 60 * time.Second
	}
	if c.MaxHeaderBytes <= 0 {
		c.MaxHeaderBytes = 64 << 10
	}
	if c.EvalCacheCapacity == 0 {
		c.EvalCacheCapacity = deco.DefaultEvalCacheCapacity
	}
	if c.DefaultSeed == 0 {
		c.DefaultSeed = 1
	}
	if c.DefaultIters <= 0 {
		c.DefaultIters = 100
	}
	if c.DefaultSearchBudget <= 0 {
		c.DefaultSearchBudget = 4000
	}
	if c.DefaultRisk <= 0 {
		c.DefaultRisk = 0.1
	}
}

// Server ties the job manager to an HTTP listener.
type Server struct {
	cfg       Config
	mgr       *Manager
	cache     *Cache
	evalCache *deco.EvalCache
	metrics   *Metrics
	httpSrv   *http.Server
}

// New builds a server (and starts its worker pool) without binding a socket;
// use Handler with httptest for in-process use, or ListenAndServe.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	cache := NewCache(cfg.CacheCapacity)
	var evalCache *deco.EvalCache
	if cfg.EvalCacheCapacity > 0 {
		evalCache = deco.NewEvalCache(cfg.EvalCacheCapacity)
	}
	metrics := NewMetrics()
	s := &Server{
		cfg:       cfg,
		cache:     cache,
		evalCache: evalCache,
		metrics:   metrics,
		mgr:       NewManager(cfg, cache, evalCache, metrics),
	}
	// Listener hardening: header and body read bounds, a write deadline
	// (long-lived streams extend their own), and a header-size cap. These
	// matter doubly in a cluster, where one node's slowloris becomes every
	// forwarding peer's stuck worker.
	s.httpSrv = &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       cfg.ReadTimeout,
		WriteTimeout:      cfg.WriteTimeout,
		MaxHeaderBytes:    cfg.MaxHeaderBytes,
	}
	return s
}

// Manager exposes the job manager (used by tests and embedded callers).
func (s *Server) Manager() *Manager { return s.mgr }

// Metrics exposes the metrics store.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.httpSrv.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe binds cfg.Addr and serves until Shutdown.
func (s *Server) ListenAndServe() error {
	err := s.httpSrv.ListenAndServe()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown stops accepting HTTP connections and submissions, then drains
// every accepted job. The context bounds the drain: when it expires,
// in-flight solves are cancelled and awaited.
func (s *Server) Shutdown(ctx context.Context) error {
	httpErr := s.httpSrv.Shutdown(ctx)
	drainErr := s.mgr.Shutdown(ctx)
	if httpErr != nil {
		return fmt.Errorf("service: http shutdown: %w", httpErr)
	}
	return drainErr
}
