package service

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"deco"
	"deco/internal/runtime"
)

// pipelineDeadline computes a deadline the calibrated all-small plan for the
// named "pipeline" workflow meets with slack — mirroring the engine a
// quickCfg worker would build, so the service's solver sees the same
// forecasts.
func pipelineDeadline(t *testing.T) float64 {
	t.Helper()
	w, err := deco.NamedWorkflow("pipeline", 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := deco.NewEngine(deco.WithSeed(1), deco.WithIters(20), deco.WithSearchBudget(120))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := eng.Estimator().BuildTable(w)
	if err != nil {
		t.Fatal(err)
	}
	small := -1
	for j, name := range tbl.Types {
		if name == "m1.small" {
			small = j
		}
	}
	if small < 0 {
		t.Fatal("no m1.small in calibrated table")
	}
	mean := 0.0
	for _, tk := range w.Tasks {
		td, err := tbl.Dist(tk.ID, small)
		if err != nil {
			t.Fatal(err)
		}
		mean += td.Mean()
	}
	return 1.25 * mean
}

func submitRun(t *testing.T, ts *httptest.Server, req RunRequest, wantCode int) JobView {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/v1/runs", req)
	if resp.StatusCode != wantCode {
		t.Fatalf("submit run: status %d, want %d; body: %s", resp.StatusCode, wantCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("submit run response: %v; body: %s", err, body)
	}
	return v
}

func TestManagedRunAdaptsUnderDrift(t *testing.T) {
	srv, ts := newTestServer(t, quickCfg())
	deadline := pipelineDeadline(t)

	v := submitRun(t, ts, RunRequest{
		SubmitRequest: SubmitRequest{
			Workflow: "pipeline",
			Deadline: &PctBound{Percentile: 0.9, Value: deadline},
		},
		Adapt:   true,
		Perturb: 0.5,
	}, http.StatusAccepted)
	if v.Kind != "run" || v.State != JobQueued {
		t.Fatalf("submit view = %+v, want a queued run", v)
	}

	// Open the event stream while the run is (potentially) still executing:
	// it must deliver the full log and terminate once the run is done.
	resp, err := http.Get(ts.URL + "/v1/runs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type %q", ct)
	}
	var events []runtime.StreamEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev runtime.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[len(events)-1].Kind != "done" {
		t.Fatalf("stream ended without a done event (%d events)", len(events))
	}

	done := waitForState(t, ts, v.ID, JobDone, 60*time.Second)
	var res RunResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatalf("run result: %v; body: %s", err, done.Result)
	}
	if res.Events != len(events) {
		t.Errorf("result says %d events, stream delivered %d", res.Events, len(events))
	}
	if res.Replans < 1 {
		t.Errorf("no replans under perf scale 0.5 (risk max %.3f, drift %.2f)", res.RiskMax, res.Drift)
	}
	if res.Drift < 1.3 {
		t.Errorf("learned drift %.2f, want > 1.3 under half-speed truth", res.Drift)
	}
	if res.DeadlineMet == nil {
		t.Error("deadline-constrained run reported no deadline outcome")
	}
	changed := false
	if len(res.FinalAssignments) != len(res.Plan.Assignments) {
		t.Fatalf("final assignments cover %d tasks, plan %d", len(res.FinalAssignments), len(res.Plan.Assignments))
	}
	for i, a := range res.FinalAssignments {
		if a.Type != res.Plan.Assignments[i].Type {
			changed = true
		}
	}
	if res.Replans > 0 && !changed {
		t.Error("replans fired but final assignments equal the original plan")
	}

	snap := srv.Metrics().Snapshot(nil, nil)
	if snap.RunsDone < 1 {
		t.Errorf("runs_done = %d, want >= 1", snap.RunsDone)
	}
	if snap.ReplansTotal < int64(res.Replans) {
		t.Errorf("replans_total = %d, want >= %d", snap.ReplansTotal, res.Replans)
	}
}

func TestManagedRunWithoutAdaptObservesOnly(t *testing.T) {
	_, ts := newTestServer(t, quickCfg())
	deadline := pipelineDeadline(t)
	v := submitRun(t, ts, RunRequest{
		SubmitRequest: SubmitRequest{
			Workflow: "pipeline",
			Deadline: &PctBound{Percentile: 0.9, Value: deadline},
		},
		Adapt:   false,
		Perturb: 0.5,
	}, http.StatusAccepted)
	done := waitForState(t, ts, v.ID, JobDone, 60*time.Second)
	var res RunResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Replans != 0 {
		t.Errorf("observe-only run replanned %d times", res.Replans)
	}
	// The monitor still watched: risk must have been flagged under drift.
	if res.RiskMax < 0.5 {
		t.Errorf("risk max %.3f, want the drift detected even without adaptation", res.RiskMax)
	}
	if res.Events == 0 {
		t.Error("observe-only run streamed no events")
	}
}

// spotRunProgram is the managed-run flavor of programs/spot.wlog: a bag of
// independent tasks declared spot-eligible, with a deadline loose enough for
// on-demand recovery to land inside it.
const spotRunProgram = `
import(amazonec2).
import(bag).
spot('m1.small').
minimize Ct in totalcost(Ct).
T in maxtime(P,T) satisfies deadline(90%,2500s).
`

// TestManagedRunSpotRecoveryMetrics drives a spot program through /v1/runs
// under a 30x revocation-hazard drift and reads the market counters back
// from /metrics: every reclaim must be answered by a recovery replan, and
// revocations_total / recoveries_total / spot_savings_usd_total must
// aggregate the run's outcome.
func TestManagedRunSpotRecoveryMetrics(t *testing.T) {
	_, ts := newTestServer(t, quickCfg())
	v := submitRun(t, ts, RunRequest{
		SubmitRequest: SubmitRequest{Program: spotRunProgram, Seed: 1},
		Adapt:         true,
		SpotHazard:    30,
	}, http.StatusAccepted)
	done := waitForState(t, ts, v.ID, JobDone, 60*time.Second)
	var res RunResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatalf("run result: %v; body: %s", err, done.Result)
	}
	if res.SpotHazard != 30 {
		t.Errorf("result echoes spot_hazard %v, want 30", res.SpotHazard)
	}
	if res.Revocations < 1 {
		t.Fatalf("no revocations under a 30x hazard drift: %+v", res)
	}
	if res.Recoveries < 1 {
		t.Fatalf("%d revocations but no recovery replan", res.Revocations)
	}
	if res.SpotSavingsUSD == 0 {
		t.Error("spot run reports zero realized savings delta")
	}
	if res.DeadlineMet == nil || !*res.DeadlineMet {
		t.Errorf("recovered run missed its deadline (makespan %.1fs)", res.Makespan)
	}

	var snap Snapshot
	if code := getJSON(t, ts.URL+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if snap.RevocationsTotal != int64(res.Revocations) {
		t.Errorf("revocations_total = %d, want %d", snap.RevocationsTotal, res.Revocations)
	}
	if snap.RecoveriesTotal != int64(res.Recoveries) {
		t.Errorf("recoveries_total = %d, want %d", snap.RecoveriesTotal, res.Recoveries)
	}
	if math.Abs(snap.SpotSavingsUSDTotal-res.SpotSavingsUSD) > 1e-6 {
		t.Errorf("spot_savings_usd_total = %v, want %v", snap.SpotSavingsUSDTotal, res.SpotSavingsUSD)
	}
}

func TestManagedRunValidation(t *testing.T) {
	_, ts := newTestServer(t, quickCfg())
	base := SubmitRequest{Workflow: "pipeline", Deadline: &PctBound{Percentile: 0.9, Value: 1000}}

	resp, _ := postJSON(t, ts.URL+"/v1/runs", RunRequest{SubmitRequest: base, Risk: 2})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("risk=2: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/runs", RunRequest{SubmitRequest: base, Perturb: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("perturb=-1: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/runs", RunRequest{SubmitRequest: base, SpotHazard: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("spot_hazard=-1: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/runs", RunRequest{SubmitRequest: SubmitRequest{Workflow: "pipeline"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("no constraints: status %d, want 400", resp.StatusCode)
	}
}

func TestRunEventsEndpointRejectsNonRuns(t *testing.T) {
	_, ts := newTestServer(t, quickCfg())
	if code := getJSON(t, ts.URL+"/v1/runs/nope/events", nil); code != http.StatusNotFound {
		t.Errorf("unknown run: status %d, want 404", code)
	}
	// A planning job exists but has no event stream.
	v := submit(t, ts, SubmitRequest{
		Workflow: "pipeline",
		Deadline: &PctBound{Percentile: 0.9, Value: 40000},
	}, http.StatusAccepted)
	waitForState(t, ts, v.ID, JobDone, 30*time.Second)
	if code := getJSON(t, ts.URL+"/v1/runs/"+v.ID+"/events", nil); code != http.StatusNotFound {
		t.Errorf("planning job events: status %d, want 404", code)
	}
}
