package service

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"deco"
)

// Metrics aggregates the service's operational counters and the solve-latency
// distribution. Counters are lock-free; the latency reservoir is a fixed-size
// uniform sample (Vitter's algorithm R) so p50/p95 stay O(1) memory no matter
// how many jobs the daemon has served.
type Metrics struct {
	JobsQueued    atomic.Int64 // gauge: submitted, not yet started
	JobsRunning   atomic.Int64 // gauge: currently solving
	JobsDone      atomic.Int64 // cumulative successes (including cache hits)
	JobsFailed    atomic.Int64 // cumulative failures
	JobsCancelled atomic.Int64 // cumulative cancellations

	RunsDone     atomic.Int64 // cumulative managed runs completed
	ReplansTotal atomic.Int64 // cumulative replans across all managed runs

	mu        sync.Mutex
	latencies []float64 // reservoir of solve latencies in seconds
	seen      int64     // total latencies observed
	rng       *rand.Rand
}

// reservoirCap bounds the latency sample; 512 points give quantile estimates
// well within the noise of Monte-Carlo solve times.
const reservoirCap = 512

// NewMetrics returns an empty metrics store.
func NewMetrics() *Metrics {
	return &Metrics{rng: rand.New(rand.NewSource(1))}
}

// ObserveSolve records one solve latency in seconds.
func (m *Metrics) ObserveSolve(seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seen++
	if len(m.latencies) < reservoirCap {
		m.latencies = append(m.latencies, seconds)
		return
	}
	if j := m.rng.Int63n(m.seen); j < reservoirCap {
		m.latencies[j] = seconds
	}
}

// ScopeStats is one job kind's share of the eval-cache traffic.
type ScopeStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Snapshot is the JSON document served by /metrics.
type Snapshot struct {
	JobsQueued    int64 `json:"jobs_queued"`
	JobsRunning   int64 `json:"jobs_running"`
	JobsDone      int64 `json:"jobs_done"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsCancelled int64 `json:"jobs_cancelled"`

	RunsDone     int64 `json:"runs_done"`
	ReplansTotal int64 `json:"replans_total"`

	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheSize   int   `json:"cache_size"`

	// Evaluation-cache statistics: the shared Monte-Carlo state-evaluation
	// transposition table (distinct from the whole-plan cache above).
	EvalCacheHits   int64 `json:"eval_cache_hits"`
	EvalCacheMisses int64 `json:"eval_cache_misses"`
	EvalCacheSize   int   `json:"eval_cache_size"`
	// EvalCacheScopes breaks the eval-cache traffic down by job kind
	// ("plan", "run", "ensemble"), so e.g. the cross-member sharing of
	// ensemble admission jobs is observable separately from plan jobs.
	EvalCacheScopes map[string]ScopeStats `json:"eval_cache_scopes,omitempty"`

	SolveSamples int64   `json:"solve_samples"`
	SolveP50Ms   float64 `json:"solve_latency_p50_ms"`
	SolveP95Ms   float64 `json:"solve_latency_p95_ms"`
}

// Snapshot captures the current counters plus the statistics of the given
// plan cache and evaluation cache (either may be nil).
func (m *Metrics) Snapshot(c *Cache, ec *deco.EvalCache) Snapshot {
	s := Snapshot{
		JobsQueued:    m.JobsQueued.Load(),
		JobsRunning:   m.JobsRunning.Load(),
		JobsDone:      m.JobsDone.Load(),
		JobsFailed:    m.JobsFailed.Load(),
		JobsCancelled: m.JobsCancelled.Load(),
		RunsDone:      m.RunsDone.Load(),
		ReplansTotal:  m.ReplansTotal.Load(),
	}
	if c != nil {
		s.CacheHits, s.CacheMisses = c.Stats()
		s.CacheSize = c.Len()
	}
	if ec != nil {
		s.EvalCacheHits = ec.Hits()
		s.EvalCacheMisses = ec.Misses()
		s.EvalCacheSize = ec.Len()
		for _, scope := range ec.Scopes() {
			h, miss := ec.ScopeStats(scope)
			if s.EvalCacheScopes == nil {
				s.EvalCacheScopes = make(map[string]ScopeStats)
			}
			s.EvalCacheScopes[scope] = ScopeStats{Hits: h, Misses: miss}
		}
	}
	m.mu.Lock()
	s.SolveSamples = m.seen
	sample := append([]float64(nil), m.latencies...)
	m.mu.Unlock()
	if len(sample) > 0 {
		sort.Float64s(sample)
		s.SolveP50Ms = 1000 * quantile(sample, 0.50)
		s.SolveP95Ms = 1000 * quantile(sample, 0.95)
	}
	return s
}

// quantile reads the p-th quantile from an ascending sample: the nearest-rank
// definition, rank ceil(p*n) (1-based). Truncating p*n instead of taking the
// ceiling reads one element too high whenever p*n is an integer — e.g. the
// p50 of [1,2,3,4] came back 3 rather than 2.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
