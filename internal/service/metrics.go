package service

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"deco"
)

// Metrics aggregates the service's operational counters and the solve-latency
// distribution. Counters are lock-free; latency reservoirs are fixed-size
// uniform samples (Vitter's algorithm R) so quantiles stay O(1) memory no
// matter how many jobs the daemon has served.
type Metrics struct {
	JobsQueued    atomic.Int64 // gauge: submitted, not yet started
	JobsRunning   atomic.Int64 // gauge: currently solving
	JobsDone      atomic.Int64 // cumulative successes (including cache hits)
	JobsFailed    atomic.Int64 // cumulative failures
	JobsCancelled atomic.Int64 // cumulative cancellations

	RunsDone     atomic.Int64 // cumulative managed runs completed
	ReplansTotal atomic.Int64 // cumulative replans across all managed runs

	// Spot-market execution counters across all managed runs: instances
	// reclaimed by the market, and the monitor's forced recovery replans
	// answering them. SpotSavingsMicroUSD accumulates the realized
	// spot-vs-on-demand billing delta in integer micro-dollars (atomics
	// carry no floats; a micro-dollar is far below billing resolution), and
	// can go negative when revocation rework outweighs the discount.
	RevocationsTotal    atomic.Int64
	RecoveriesTotal     atomic.Int64
	SpotSavingsMicroUSD atomic.Int64

	// WorkersBusy is the gauge of workers currently executing a job (solving
	// locally, forwarding, or driving a managed run).
	WorkersBusy atomic.Int64

	// Cluster counters. SolvesTotal counts local engine solves — the work
	// that coalescing, caching and forwarding all exist to avoid, so the
	// cluster-wide sum after an identical-key storm should be exactly 1.
	SolvesTotal     atomic.Int64
	CoalescedTotal  atomic.Int64 // jobs that shared another job's in-flight computation
	ForwardsTotal   atomic.Int64 // jobs routed to their owning peer
	ForwardFailures atomic.Int64 // forwards that fell back to local computation on error
	ForwardHedged   atomic.Int64 // forwards abandoned for local computation after the hedge delay
	CrossShardHits  atomic.Int64 // forwarded jobs answered from the owner's plan cache
	PeerJobs        atomic.Int64 // jobs received from peers via the solve endpoint
	QuotaRejected   atomic.Int64 // submissions refused by per-tenant admission

	// Adaptive-precision sampling economy across all local solves:
	// Monte-Carlo worlds actually evaluated on the adaptive path, and worlds
	// avoided relative to the fixed per-state budget. Both stay zero while no
	// adaptive solve has run.
	WorldsEvaluatedTotal atomic.Int64
	WorldsSavedTotal     atomic.Int64
	// WorldsReorderedTotal counts worlds sampled under decisive-world-first
	// ordering; DeltaEvalsTotal / DeltaFallbacksTotal report the incremental
	// (group-cone) evaluation routing and ConePlanHitsTotal the sibling
	// cone-extraction reuse across all local solves.
	WorldsReorderedTotal atomic.Int64
	DeltaEvalsTotal      atomic.Int64
	DeltaFallbacksTotal  atomic.Int64
	ConePlanHitsTotal    atomic.Int64

	mu     sync.Mutex
	solve  reservoir
	rng    *rand.Rand
	tmu    sync.Mutex
	tenant map[string]*tenantCounters
	trng   *rand.Rand
}

// reservoir is a fixed-size uniform sample of a latency stream; guarded by
// the owning mutex.
type reservoir struct {
	cap   int
	items []float64
	seen  int64
}

func (r *reservoir) observe(v float64, rng *rand.Rand) {
	r.seen++
	if len(r.items) < r.cap {
		r.items = append(r.items, v)
		return
	}
	if j := rng.Int63n(r.seen); j < int64(r.cap) {
		r.items[j] = v
	}
}

// quantiles returns the p50/p95/p99 of the sample in milliseconds.
func (r *reservoir) quantiles() (p50, p95, p99 float64) {
	if len(r.items) == 0 {
		return 0, 0, 0
	}
	s := append([]float64(nil), r.items...)
	sort.Float64s(s)
	return 1000 * quantile(s, 0.50), 1000 * quantile(s, 0.95), 1000 * quantile(s, 0.99)
}

// tenantCounters is one tenant's share of the traffic; guarded by Metrics.tmu.
type tenantCounters struct {
	submitted int64
	done      int64
	failed    int64
	cancelled int64
	cacheHits int64
	solve     reservoir
}

// reservoirCap bounds the global latency sample; 512 points give quantile
// estimates well within the noise of Monte-Carlo solve times. Per-tenant
// reservoirs are smaller because there may be many tenants.
const (
	reservoirCap       = 512
	tenantReservoirCap = 128
)

// NewMetrics returns an empty metrics store.
func NewMetrics() *Metrics {
	return &Metrics{
		solve:  reservoir{cap: reservoirCap},
		rng:    rand.New(rand.NewSource(1)),
		tenant: make(map[string]*tenantCounters),
		trng:   rand.New(rand.NewSource(2)),
	}
}

// ObserveSolve records one solve latency in seconds, attributed to tenant.
func (m *Metrics) ObserveSolve(tenant string, seconds float64) {
	m.mu.Lock()
	m.solve.observe(seconds, m.rng)
	m.mu.Unlock()
	if tenant != "" {
		m.tmu.Lock()
		m.tenantLocked(tenant).solve.observe(seconds, m.trng)
		m.tmu.Unlock()
	}
}

// tenantLocked returns tenant's counters, creating them; caller holds tmu.
func (m *Metrics) tenantLocked(name string) *tenantCounters {
	t, ok := m.tenant[name]
	if !ok {
		t = &tenantCounters{solve: reservoir{cap: tenantReservoirCap}}
		m.tenant[name] = t
	}
	return t
}

// TenantAdd bumps one of a tenant's counters by name:
// "submitted", "done", "failed", "cancelled", "cache_hits".
func (m *Metrics) TenantAdd(tenant, counter string, delta int64) {
	if tenant == "" {
		return
	}
	m.tmu.Lock()
	defer m.tmu.Unlock()
	t := m.tenantLocked(tenant)
	switch counter {
	case "submitted":
		t.submitted += delta
	case "done":
		t.done += delta
	case "failed":
		t.failed += delta
	case "cancelled":
		t.cancelled += delta
	case "cache_hits":
		t.cacheHits += delta
	}
}

// ScopeStats is one job kind's share of the eval-cache traffic.
type ScopeStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// TenantSnapshot is one tenant's row in /metrics: admission, completion and
// cache-hit counters plus queue depth and a solve-latency distribution.
type TenantSnapshot struct {
	Submitted  int64   `json:"submitted"`
	Done       int64   `json:"done"`
	Failed     int64   `json:"failed,omitempty"`
	Cancelled  int64   `json:"cancelled,omitempty"`
	CacheHits  int64   `json:"cache_hits"`
	QueueDepth int     `json:"queue_depth"`
	Samples    int64   `json:"solve_samples"`
	P50Ms      float64 `json:"solve_latency_p50_ms"`
	P95Ms      float64 `json:"solve_latency_p95_ms"`
	P99Ms      float64 `json:"solve_latency_p99_ms"`
}

// Snapshot is the JSON document served by /metrics.
type Snapshot struct {
	JobsQueued    int64 `json:"jobs_queued"`
	JobsRunning   int64 `json:"jobs_running"`
	JobsDone      int64 `json:"jobs_done"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsCancelled int64 `json:"jobs_cancelled"`

	RunsDone     int64 `json:"runs_done"`
	ReplansTotal int64 `json:"replans_total"`

	// Spot-market execution counters (zero until a managed run executes spot
	// capacity). The savings total is the realized spot-vs-on-demand billing
	// delta in USD and can go negative under heavy revocation rework.
	RevocationsTotal    int64   `json:"revocations_total"`
	RecoveriesTotal     int64   `json:"recoveries_total"`
	SpotSavingsUSDTotal float64 `json:"spot_savings_usd_total"`

	// Queue and worker-pool gauges: QueueDepth counts jobs sitting in the
	// fair queue (including cancelled-but-undequeued ones), and
	// WorkerUtilization is WorkersBusy/Workers.
	QueueDepth        int     `json:"queue_depth"`
	Workers           int     `json:"workers"`
	WorkersBusy       int64   `json:"workers_busy"`
	WorkerUtilization float64 `json:"worker_utilization"`

	// Cluster counters (all zero on a standalone node).
	SolvesTotal     int64 `json:"solves_total"`
	CoalescedTotal  int64 `json:"coalesced_total"`
	ForwardsTotal   int64 `json:"forwards_total"`
	ForwardFailures int64 `json:"forward_failures"`
	ForwardHedged   int64 `json:"forward_hedged"`
	CrossShardHits  int64 `json:"cross_shard_hits"`
	PeerJobs        int64 `json:"peer_jobs"`
	QuotaRejected   int64 `json:"quota_rejected"`

	// Adaptive-precision sampling counters (zero unless adaptive solves ran).
	WorldsEvaluatedTotal int64 `json:"worlds_evaluated_total"`
	WorldsSavedTotal     int64 `json:"worlds_saved_total"`
	WorldsReorderedTotal int64 `json:"worlds_reordered_total"`

	// Incremental (group-cone delta) evaluation counters.
	DeltaEvalsTotal     int64 `json:"delta_evals_total"`
	DeltaFallbacksTotal int64 `json:"delta_fallbacks_total"`
	ConePlanHitsTotal   int64 `json:"cone_plan_hits_total"`

	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheSize   int   `json:"cache_size"`

	// Evaluation-cache statistics: the shared Monte-Carlo state-evaluation
	// transposition table (distinct from the whole-plan cache above).
	EvalCacheHits   int64 `json:"eval_cache_hits"`
	EvalCacheMisses int64 `json:"eval_cache_misses"`
	EvalCacheSize   int   `json:"eval_cache_size"`
	// EvalCacheScopes breaks the eval-cache traffic down by job kind
	// ("plan", "run", "ensemble"), so e.g. the cross-member sharing of
	// ensemble admission jobs is observable separately from plan jobs.
	EvalCacheScopes map[string]ScopeStats `json:"eval_cache_scopes,omitempty"`

	SolveSamples int64   `json:"solve_samples"`
	SolveP50Ms   float64 `json:"solve_latency_p50_ms"`
	SolveP95Ms   float64 `json:"solve_latency_p95_ms"`
	SolveP99Ms   float64 `json:"solve_latency_p99_ms"`

	// Tenants is the per-tenant breakdown of the traffic above.
	Tenants map[string]TenantSnapshot `json:"tenants,omitempty"`
}

// Snapshot captures the current counters plus the statistics of the given
// plan cache and evaluation cache (either may be nil). Queue and worker
// gauges are filled by (*Manager).Snapshot, which knows the pool.
func (m *Metrics) Snapshot(c *Cache, ec *deco.EvalCache) Snapshot {
	s := Snapshot{
		JobsQueued:      m.JobsQueued.Load(),
		JobsRunning:     m.JobsRunning.Load(),
		JobsDone:        m.JobsDone.Load(),
		JobsFailed:      m.JobsFailed.Load(),
		JobsCancelled:   m.JobsCancelled.Load(),
		RunsDone:            m.RunsDone.Load(),
		ReplansTotal:        m.ReplansTotal.Load(),
		RevocationsTotal:    m.RevocationsTotal.Load(),
		RecoveriesTotal:     m.RecoveriesTotal.Load(),
		SpotSavingsUSDTotal: float64(m.SpotSavingsMicroUSD.Load()) / 1e6,
		WorkersBusy:     m.WorkersBusy.Load(),
		SolvesTotal:     m.SolvesTotal.Load(),
		CoalescedTotal:  m.CoalescedTotal.Load(),
		ForwardsTotal:   m.ForwardsTotal.Load(),
		ForwardFailures: m.ForwardFailures.Load(),
		ForwardHedged:   m.ForwardHedged.Load(),
		CrossShardHits:  m.CrossShardHits.Load(),
		PeerJobs:        m.PeerJobs.Load(),
		QuotaRejected:   m.QuotaRejected.Load(),

		WorldsEvaluatedTotal: m.WorldsEvaluatedTotal.Load(),
		WorldsSavedTotal:     m.WorldsSavedTotal.Load(),
		WorldsReorderedTotal: m.WorldsReorderedTotal.Load(),
		DeltaEvalsTotal:      m.DeltaEvalsTotal.Load(),
		DeltaFallbacksTotal:  m.DeltaFallbacksTotal.Load(),
		ConePlanHitsTotal:    m.ConePlanHitsTotal.Load(),
	}
	if c != nil {
		s.CacheHits, s.CacheMisses = c.Stats()
		s.CacheSize = c.Len()
	}
	if ec != nil {
		s.EvalCacheHits = ec.Hits()
		s.EvalCacheMisses = ec.Misses()
		s.EvalCacheSize = ec.Len()
		for _, scope := range ec.Scopes() {
			h, miss := ec.ScopeStats(scope)
			if s.EvalCacheScopes == nil {
				s.EvalCacheScopes = make(map[string]ScopeStats)
			}
			s.EvalCacheScopes[scope] = ScopeStats{Hits: h, Misses: miss}
		}
	}
	m.mu.Lock()
	s.SolveSamples = m.solve.seen
	s.SolveP50Ms, s.SolveP95Ms, s.SolveP99Ms = m.solve.quantiles()
	m.mu.Unlock()

	m.tmu.Lock()
	if len(m.tenant) > 0 {
		s.Tenants = make(map[string]TenantSnapshot, len(m.tenant))
		for name, t := range m.tenant {
			ts := TenantSnapshot{
				Submitted: t.submitted, Done: t.done, Failed: t.failed,
				Cancelled: t.cancelled, CacheHits: t.cacheHits, Samples: t.solve.seen,
			}
			ts.P50Ms, ts.P95Ms, ts.P99Ms = t.solve.quantiles()
			s.Tenants[name] = ts
		}
	}
	m.tmu.Unlock()
	return s
}

// quantile reads the p-th quantile from an ascending sample: the nearest-rank
// definition, rank ceil(p*n) (1-based). Truncating p*n instead of taking the
// ceiling reads one element too high whenever p*n is an integer — e.g. the
// p50 of [1,2,3,4] came back 3 rather than 2.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
