package service

import (
	"context"
	crand "crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"deco"
	"deco/internal/cloud"
	"deco/internal/cluster"
	"deco/internal/dag"
	"deco/internal/dax"
)

// JobState is the lifecycle of a planning job.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Job kinds: the solve dispatch, JobView.Kind, and the evaluation-cache
// scope labels of /metrics all share these names.
const (
	KindPlan     = "plan"     // scheduling job producing a provisioning plan
	KindRun      = "run"      // managed adaptive execution
	KindEnsemble = "ensemble" // ensemble-admission job (program mode only)
)

// DefaultTenant is the tenant jobs without an explicit tenant belong to.
const DefaultTenant = "default"

// PctBound is a probabilistic bound: P(X <= Value) >= Percentile. A
// Percentile <= 0 selects the deterministic (expected-value) notion.
type PctBound struct {
	Percentile float64 `json:"percentile"`
	Value      float64 `json:"value"`
}

// SubmitRequest is the body of POST /v1/jobs. Exactly one workflow source
// must be set: Workflow (a named synthetic application: montage, montage4,
// montage8, ligo, epigenomics, cybershake, pipeline — or a .dax/.xml path),
// DAX (an inline DAX XML document), or Program (a raw WLog program, which
// carries its own goal and constraints). A program with an ensemble(kind, n)
// fact is an ensemble-admission job: it returns a deco.EnsembleResult
// document instead of a plan.
type SubmitRequest struct {
	Workflow string `json:"workflow,omitempty"`
	DAX      string `json:"dax,omitempty"`
	Program  string `json:"program,omitempty"`

	// Tenant names the submitting tenant for admission quotas, fair
	// scheduling, and per-tenant metrics. Empty means DefaultTenant. The
	// tenant is deliberately NOT part of the job key: identical problems
	// from different tenants share the plan cache and coalesce into one
	// computation — consolidating tenants onto shared capacity is the point
	// of the WaaS setting.
	Tenant string `json:"tenant,omitempty"`

	// Goal is "cost" or "makespan" (workflow/DAX modes only). Empty defaults
	// to "cost" when a deadline is present, else "makespan".
	Goal string `json:"goal,omitempty"`
	// Deadline bounds execution time in seconds; Budget bounds cost in
	// dollars. Workflow/DAX modes require at least one.
	Deadline *PctBound `json:"deadline,omitempty"`
	Budget   *PctBound `json:"budget,omitempty"`

	// Solver knobs; zero values take the server defaults.
	Seed         int64 `json:"seed,omitempty"`
	Iters        int   `json:"iters,omitempty"`
	SearchBudget int   `json:"search_budget,omitempty"`
	// Threads bounds Monte-Carlo iteration parallelism within one state
	// evaluation (threads per block in the §5.2 device model). 0 takes the
	// server default; 1 restricts the solver to state-level parallelism.
	// The produced plan is identical for every setting.
	Threads int `json:"threads,omitempty"`
	// Adaptive toggles adaptive-precision Monte-Carlo inference (sequential
	// stopping + racing) for this job's solve; absent takes the server
	// default (decod -adaptive). Plan feasibility and quality match the
	// fixed-precision solve; worlds_evaluated/worlds_saved in the result
	// report the sampling economy.
	Adaptive *bool `json:"adaptive,omitempty"`

	// RequestID is transport metadata, not part of the request body: it is
	// taken from the X-Request-Id header (or generated) and propagated
	// through peer forwarding and log lines so a job can be traced across
	// nodes.
	RequestID string `json:"-"`
}

// Assignment maps one task to its provisioned instance type.
type Assignment struct {
	Task string `json:"task"`
	Type string `json:"type"`
}

// PlanResult is the JSON form of a provisioning plan. Assignments are sorted
// by task ID so identical plans serialize identically (and diff cleanly).
type PlanResult struct {
	Workflow        string       `json:"workflow"`
	Tasks           int          `json:"tasks"`
	Feasible        bool         `json:"feasible"`
	EstimatedCost   float64      `json:"estimated_cost"`
	Objective       float64      `json:"objective"`
	ConstraintProbs []float64    `json:"constraint_probs,omitempty"`
	StatesEvaluated int          `json:"states_evaluated"`
	// WorldsEvaluated / WorldsSaved report the adaptive-precision sampling
	// economy of this job's solve (zero for fixed-precision solves).
	WorldsEvaluated int64 `json:"worlds_evaluated,omitempty"`
	WorldsSaved     int64 `json:"worlds_saved,omitempty"`
	// WorldsReordered counts worlds sampled under decisive-world-first
	// ordering; DeltaEvals / DeltaFallbacks / ConePlanHits report the
	// group-cone incremental evaluation routing.
	WorldsReordered int64        `json:"worlds_reordered,omitempty"`
	DeltaEvals      int64        `json:"delta_evals,omitempty"`
	DeltaFallbacks  int64        `json:"delta_fallbacks,omitempty"`
	ConePlanHits    int64        `json:"cone_plan_hits,omitempty"`
	Assignments     []Assignment `json:"assignments"`
}

// PlanResultOf converts an engine plan into its canonical JSON form.
func PlanResultOf(p *deco.Plan) PlanResult {
	asg := p.Assignments()
	ids := make([]string, 0, len(asg))
	for id := range asg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := PlanResult{
		Workflow:        p.Workflow.Name,
		Tasks:           p.Workflow.Len(),
		Feasible:        p.Feasible,
		EstimatedCost:   p.EstimatedCost,
		Objective:       p.Objective,
		ConstraintProbs: p.ConsProb,
		StatesEvaluated: p.StatesEvaluated,
		WorldsEvaluated: p.WorldsEvaluated,
		WorldsSaved:     p.WorldsSaved,
		WorldsReordered: p.WorldsReordered,
		DeltaEvals:      p.DeltaEvals,
		DeltaFallbacks:  p.DeltaFallbacks,
		ConePlanHits:    p.ConePlanHits,
		Assignments:     make([]Assignment, 0, len(ids)),
	}
	for _, id := range ids {
		out.Assignments = append(out.Assignments, Assignment{Task: id, Type: asg[id]})
	}
	return out
}

// JobView is the externally visible state of a job.
type JobView struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Kind is "run" for managed runs, "ensemble" for ensemble-admission
	// jobs, empty for ordinary planning jobs.
	Kind   string `json:"kind,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// RequestID is the end-to-end trace ID (accepted via X-Request-Id or
	// generated at submission).
	RequestID string `json:"request_id,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	// Coalesced reports that the job shared another identical job's
	// in-flight computation instead of solving on its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// Remote reports that the result was computed by the job key's owning
	// peer rather than this node.
	Remote bool `json:"remote,omitempty"`
	// Events counts the run's streamed events so far (managed runs only).
	Events    int             `json:"events,omitempty"`
	Workflow  string          `json:"workflow,omitempty"`
	Submitted time.Time       `json:"submitted"`
	Started   *time.Time      `json:"started,omitempty"`
	Finished  *time.Time      `json:"finished,omitempty"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

// job is the manager's internal record; all fields below mu-guarded state are
// written only under Manager.mu.
type job struct {
	id        string
	req       SubmitRequest
	tenant    string
	requestID string
	// forwarded marks a job received from a peer: it is always solved
	// locally (never re-forwarded) and bypasses tenant admission, which
	// already happened at the ingress node.
	forwarded bool
	// wf is the resolved workflow (nil in program mode).
	wf   *dag.Workflow
	kind string // KindPlan, KindRun or KindEnsemble
	key  string // content-addressed cache key (empty for managed runs)
	// run marks a managed-run job and holds its live event log.
	run *runState

	state     JobState
	cached    bool
	coalesced bool
	remote    bool
	result    json.RawMessage
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time

	ctx    context.Context
	cancel context.CancelFunc
}

// Submission errors the HTTP layer maps to status codes.
var (
	ErrQueueFull     = errors.New("service: job queue is full")
	ErrShuttingDown  = errors.New("service: server is shutting down")
	ErrNotFound      = errors.New("service: no such job")
	ErrQuotaExceeded = errors.New("service: tenant admission quota exceeded")
)

// Manager owns the job table, the weighted fair queue, and the worker pool.
// Each worker keeps its own deco.Engine instances (engines are not shared
// across goroutines), reusing them across jobs with the same solver
// configuration. When configured with peers, the manager routes every keyed
// job to its ring owner and coalesces concurrent identical keys through a
// singleflight group.
type Manager struct {
	cfg       Config
	cache     *Cache
	evalCache *deco.EvalCache // shared across all worker engines; nil disables
	metrics   *Metrics
	catHash   string

	ring   *cluster.Ring   // nil on a standalone node
	peers  *cluster.Client // nil on a standalone node
	flight cluster.Group
	quota  *quotas
	// fwdSem bounds workers concurrently parked on a peer forward to
	// Workers-1, so two nodes forwarding to each other can never consume
	// every worker on both sides waiting for the other (distributed worker
	// starvation); a job that cannot get a slot just solves locally.
	fwdSem chan struct{}

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, for List and retention pruning
	nextID int
	closed bool

	// runCond (on mu) wakes event streamers when a run appends events or
	// reaches a terminal state, and WaitJob callers when any job finishes.
	runCond *sync.Cond

	queue *fairQueue
	wg    sync.WaitGroup
}

// NewManager starts cfg.Workers workers over a fair queue bounding the total
// backlog at cfg.QueueDepth. evalCache, when non-nil, is shared by every
// worker engine (and through them by managed runs' replan searches); it may
// be nil to disable evaluation caching.
func NewManager(cfg Config, cache *Cache, evalCache *deco.EvalCache, metrics *Metrics) *Manager {
	m := &Manager{
		cfg:       cfg,
		cache:     cache,
		evalCache: evalCache,
		metrics:   metrics,
		catHash:   catalogHash(cloud.DefaultCatalog()),
		quota:     newQuotas(cfg.TenantRate, cfg.TenantBurst),
		jobs:      make(map[string]*job),
		queue:     newFairQueue(cfg.QueueDepth, cfg.TenantWeights),
	}
	if len(cfg.Peers) > 0 {
		m.ring = cluster.NewRing(cfg.Self, cfg.Peers)
		m.peers = cluster.NewClient(cfg.ForwardDialTimeout)
		slots := cfg.Workers - 1
		if slots < 1 {
			slots = 1
		}
		m.fwdSem = make(chan struct{}, slots)
	}
	m.runCond = sync.NewCond(&m.mu)
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// logf writes an operational log line through cfg.Logf; the default (nil)
// discards, keeping embedded and test use quiet.
func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Ring exposes the peer ring (nil on a standalone node); used by tests and
// load harnesses to locate a key's owner.
func (m *Manager) Ring() *cluster.Ring { return m.ring }

// JobKeyFor computes the cluster-wide job key a request would get, without
// submitting it. Used by load harnesses to steer storms at a known owner.
func (m *Manager) JobKeyFor(req SubmitRequest) (string, error) {
	w, _, err := m.normalize(&req)
	if err != nil {
		return "", err
	}
	return m.jobKey(&req, w), nil
}

// catalogHash fingerprints the pricing/performance catalog the engines use,
// so plans cached against one catalog are never served for another.
func catalogHash(cat *cloud.Catalog) string {
	b, err := json.Marshal(cat)
	if err != nil {
		panic(fmt.Sprintf("service: catalog not serializable: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// genRequestID mints a random 16-hex-character trace ID.
func genRequestID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// normalize applies server defaults and validates the request, resolving the
// workflow for workflow/DAX modes. It returns the resolved workflow (nil for
// program mode) and the job kind (KindPlan, or KindEnsemble for programs
// carrying an ensemble fact), or a user error.
func (m *Manager) normalize(req *SubmitRequest) (*dag.Workflow, string, error) {
	if req.Seed == 0 {
		req.Seed = m.cfg.DefaultSeed
	}
	if req.Iters == 0 {
		req.Iters = m.cfg.DefaultIters
	}
	if req.Iters < 1 {
		return nil, "", fmt.Errorf("iters must be >= 1")
	}
	if req.SearchBudget == 0 {
		req.SearchBudget = m.cfg.DefaultSearchBudget
	}
	if req.SearchBudget < 1 {
		return nil, "", fmt.Errorf("search_budget must be >= 1")
	}
	if req.Threads == 0 {
		req.Threads = m.cfg.DefaultThreads
	}
	if req.Threads < 0 {
		return nil, "", fmt.Errorf("threads must be >= 0")
	}
	if req.Adaptive == nil {
		v := m.cfg.DefaultAdaptive
		req.Adaptive = &v
	}
	req.Tenant = strings.TrimSpace(req.Tenant)
	if req.Tenant == "" {
		req.Tenant = DefaultTenant
	}
	if len(req.Tenant) > 64 {
		return nil, "", fmt.Errorf("tenant name longer than 64 bytes")
	}
	sources := 0
	for _, s := range []string{req.Workflow, req.DAX, req.Program} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return nil, "", fmt.Errorf("exactly one of workflow, dax, program must be set")
	}
	if req.Program != "" {
		if req.Goal != "" || req.Deadline != nil || req.Budget != nil {
			return nil, "", fmt.Errorf("program mode carries its own goal and constraints; goal/deadline/budget must be empty")
		}
		// ParseEnsembleProgram both validates the WLog syntax and detects
		// the ensemble(kind, n) fact that routes the job to the admission
		// solver instead of the scheduling solver.
		if _, isEnsemble, err := deco.ParseEnsembleProgram(req.Program); err != nil {
			return nil, "", err
		} else if isEnsemble {
			return nil, KindEnsemble, nil
		}
		return nil, KindPlan, nil
	}

	// Workflow / DAX mode: resolve the DAG and check constraints.
	var w *dag.Workflow
	var err error
	if req.DAX != "" {
		w, err = dax.Parse(strings.NewReader(req.DAX))
	} else {
		w, err = deco.NamedWorkflow(req.Workflow, req.Seed)
	}
	if err != nil {
		return nil, "", err
	}
	if req.Deadline == nil && req.Budget == nil {
		return nil, "", fmt.Errorf("at least one of deadline, budget is required")
	}
	if req.Deadline != nil && req.Deadline.Value <= 0 {
		return nil, "", fmt.Errorf("deadline value must be positive")
	}
	if req.Budget != nil && req.Budget.Value <= 0 {
		return nil, "", fmt.Errorf("budget value must be positive")
	}
	switch req.Goal {
	case "":
		if req.Deadline != nil {
			req.Goal = "cost"
		} else {
			req.Goal = "makespan"
		}
	case "cost", "makespan":
	default:
		return nil, "", fmt.Errorf("goal must be \"cost\" or \"makespan\", got %q", req.Goal)
	}
	return w, KindPlan, nil
}

// jobKey computes the content-addressed cache key: a hash over the workflow
// structure (or program text), the catalog, the goal and constraints, and the
// solver configuration. Two requests with the same key provably ask for the
// same plan. Threads is deliberately excluded: plans are device- and
// parallelism-independent (the solver's cross-device determinism tests pin
// this down), so requests differing only in threads share a cache entry. The
// tenant is excluded too (see SubmitRequest.Tenant). The same key shards
// ownership across the peer ring, so it must be computed identically on
// every node.
func (m *Manager) jobKey(req *SubmitRequest, w *dag.Workflow) string {
	h := sha256.New()
	fmt.Fprintf(h, "v1|cat=%s|seed=%d|iters=%d|budget=%d|goal=%s|", m.catHash, req.Seed, req.Iters, req.SearchBudget, req.Goal)
	// Adaptive solves preserve plan quality but may land on a different
	// equal-objective plan, so they get their own cache/ring key. The flag is
	// appended only when set, keeping every fixed-precision key unchanged.
	if req.Adaptive != nil && *req.Adaptive {
		io.WriteString(h, "adaptive|")
	}
	if req.Deadline != nil {
		fmt.Fprintf(h, "deadline=%s@%s|", floatKey(req.Deadline.Value), floatKey(req.Deadline.Percentile))
	}
	if req.Budget != nil {
		fmt.Fprintf(h, "budget=%s@%s|", floatKey(req.Budget.Value), floatKey(req.Budget.Percentile))
	}
	if req.Program != "" {
		io.WriteString(h, "program|")
		io.WriteString(h, req.Program)
	} else {
		io.WriteString(h, "workflow|")
		io.WriteString(h, workflowFingerprint(w))
	}
	return hex.EncodeToString(h.Sum(nil))
}

func floatKey(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// workflowFingerprint serializes the structural content of a workflow
// deterministically: tasks sorted by ID with their work and files, then the
// sorted edge list.
func workflowFingerprint(w *dag.Workflow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "name=%s;", w.Name)
	ids := make([]string, 0, w.Len())
	for _, t := range w.Tasks {
		ids = append(ids, t.ID)
	}
	sort.Strings(ids)
	for _, id := range ids {
		t := w.Task(id)
		fmt.Fprintf(&b, "task=%s|%s|%s", t.ID, t.Executable, floatKey(t.CPUSeconds))
		for _, f := range t.Inputs {
			fmt.Fprintf(&b, "|i:%s:%s", f.Name, floatKey(f.SizeMB))
		}
		for _, f := range t.Outputs {
			fmt.Fprintf(&b, "|o:%s:%s", f.Name, floatKey(f.SizeMB))
		}
		b.WriteByte(';')
	}
	for _, e := range w.Edges() {
		fmt.Fprintf(&b, "edge=%s>%s;", e[0], e[1])
	}
	return b.String()
}

// Submit validates and enqueues a planning request. Cache hits complete
// immediately without touching the queue; a tenant over its admission quota
// is rejected with ErrQuotaExceeded, and a full queue with ErrQueueFull.
func (m *Manager) Submit(req SubmitRequest) (JobView, error) {
	return m.submit(req, false)
}

// SubmitForwarded enqueues a job received from a peer. It is always solved
// locally (never re-forwarded) and bypasses the tenant admission quota,
// which the ingress node already charged.
func (m *Manager) SubmitForwarded(req SubmitRequest) (JobView, error) {
	return m.submit(req, true)
}

func (m *Manager) submit(req SubmitRequest, forwarded bool) (JobView, error) {
	w, kind, err := m.normalize(&req)
	if err != nil {
		return JobView{}, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	if req.RequestID == "" {
		req.RequestID = genRequestID()
	}
	if !forwarded && !m.quota.allow(req.Tenant, time.Now()) {
		m.metrics.QuotaRejected.Add(1)
		return JobView{}, fmt.Errorf("%w: tenant %q", ErrQuotaExceeded, req.Tenant)
	}
	key := m.jobKey(&req, w)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return JobView{}, ErrShuttingDown
	}
	m.nextID++
	j := &job{
		id:        fmt.Sprintf("j-%06d", m.nextID),
		req:       req,
		tenant:    req.Tenant,
		requestID: req.RequestID,
		forwarded: forwarded,
		wf:        w,
		kind:      kind,
		key:       key,
		submitted: time.Now(),
	}
	m.metrics.TenantAdd(j.tenant, "submitted", 1)
	if forwarded {
		m.metrics.PeerJobs.Add(1)
	}

	if cached, ok := m.cache.Get(key); ok {
		j.state = JobDone
		j.cached = true
		j.result = cached
		j.started = j.submitted
		j.finished = j.submitted
		m.metrics.JobsDone.Add(1)
		m.metrics.TenantAdd(j.tenant, "done", 1)
		m.metrics.TenantAdd(j.tenant, "cache_hits", 1)
		m.recordLocked(j)
		return j.viewLocked(), nil
	}

	j.ctx, j.cancel = context.WithCancel(context.Background())
	j.state = JobQueued
	if err := m.queue.push(j); err != nil {
		j.cancel()
		return JobView{}, err
	}
	m.metrics.JobsQueued.Add(1)
	m.recordLocked(j)
	m.logf("job %s rid=%s tenant=%s kind=%s queued (forwarded=%v)", j.id, j.requestID, j.tenant, j.kind, forwarded)
	return j.viewLocked(), nil
}

// errBadRequest tags validation failures for the HTTP layer.
var errBadRequest = errors.New("service: bad request")

// recordLocked inserts the job into the table and prunes old finished jobs
// beyond the retention limit. Caller holds m.mu.
func (m *Manager) recordLocked(j *job) {
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	if m.cfg.MaxJobsRetained <= 0 {
		return
	}
	for len(m.order) > m.cfg.MaxJobsRetained {
		pruned := false
		for i, id := range m.order {
			switch m.jobs[id].state {
			case JobDone, JobFailed, JobCancelled:
				delete(m.jobs, id)
				m.order = append(m.order[:i], m.order[i+1:]...)
				pruned = true
			}
			if pruned {
				break
			}
		}
		if !pruned {
			break // everything retained is still live
		}
	}
}

// Get returns the current view of a job.
func (m *Manager) Get(id string) (JobView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	return j.viewLocked(), nil
}

// WaitJob blocks until the job reaches a terminal state and returns its
// final view. When ctx expires first the job is cancelled — for a forwarded
// job this stops work the forwarding node has already given up on.
func (m *Manager) WaitJob(ctx context.Context, id string) (JobView, error) {
	stop := context.AfterFunc(ctx, func() {
		m.mu.Lock()
		m.runCond.Broadcast()
		m.mu.Unlock()
	})
	defer stop()

	m.mu.Lock()
	for {
		j, ok := m.jobs[id]
		if !ok {
			m.mu.Unlock()
			return JobView{}, ErrNotFound
		}
		if j.state.terminal() {
			v := j.viewLocked()
			m.mu.Unlock()
			return v, nil
		}
		if err := ctx.Err(); err != nil {
			m.mu.Unlock()
			_, _ = m.Cancel(id)
			return JobView{}, err
		}
		m.runCond.Wait()
	}
}

// List returns all retained jobs in submission order, without results (poll
// the job endpoint for the full document).
func (m *Manager) List() []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobView, 0, len(m.order))
	for _, id := range m.order {
		v := m.jobs[id].viewLocked()
		v.Result = nil
		out = append(out, v)
	}
	return out
}

// Cancel stops a queued or running job. Cancelling a finished job is a
// no-op; the current view is returned either way.
func (m *Manager) Cancel(id string) (JobView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	switch j.state {
	case JobQueued:
		// The worker drops it when it reaches the head of its tenant queue.
		j.state = JobCancelled
		j.finished = time.Now()
		j.cancel()
		m.metrics.JobsQueued.Add(-1)
		m.metrics.JobsCancelled.Add(1)
		m.metrics.TenantAdd(j.tenant, "cancelled", 1)
		m.runCond.Broadcast()
	case JobRunning:
		// The solver aborts between state evaluations; the worker marks the
		// terminal state when ScheduleContext returns.
		j.cancel()
	}
	return j.viewLocked(), nil
}

// Snapshot assembles the /metrics document: the metrics store plus the
// queue and worker-pool gauges only the manager knows.
func (m *Manager) Snapshot() Snapshot {
	s := m.metrics.Snapshot(m.cache, m.evalCache)
	s.QueueDepth = m.queue.Len()
	s.Workers = m.cfg.Workers
	if s.Workers > 0 {
		s.WorkerUtilization = float64(s.WorkersBusy) / float64(s.Workers)
	}
	for tenant, depth := range m.queue.Depths() {
		ts := s.Tenants[tenant] // zero value if the tenant has no counters yet
		ts.QueueDepth = depth
		if s.Tenants == nil {
			s.Tenants = make(map[string]TenantSnapshot)
		}
		s.Tenants[tenant] = ts
	}
	return s
}

// Shutdown stops accepting submissions, drains every accepted job (queued
// and running, including jobs forwarded in by peers), and waits for the
// workers to exit. If ctx expires first, the remaining jobs are cancelled
// and Shutdown waits for them to abort. Peers forwarding new work during the
// drain are refused with ErrShuttingDown and compute locally instead — a
// forwarded job is either finished here or handed back, never dropped.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	alreadyClosed := m.closed
	m.closed = true
	m.mu.Unlock()
	if !alreadyClosed {
		m.queue.close()
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		for _, j := range m.jobs {
			if j.cancel != nil {
				j.cancel()
			}
		}
		m.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// worker drains the fair queue, keeping one engine per solver configuration.
// Engines are not safe for concurrent use, so they are strictly
// worker-local; the map lets a worker alternate between configurations
// without rebuilding calibrated metadata every job.
func (m *Manager) worker() {
	defer m.wg.Done()
	type engineCfg struct {
		seed     int64
		iters    int
		budget   int
		threads  int
		adaptive bool
		scope    string
	}
	engines := make(map[engineCfg]*deco.Engine)
	for {
		j, ok := m.queue.pop()
		if !ok {
			return
		}
		m.mu.Lock()
		if j.state != JobQueued { // cancelled while queued
			m.mu.Unlock()
			continue
		}
		j.state = JobRunning
		j.started = time.Now()
		m.metrics.JobsQueued.Add(-1)
		m.metrics.JobsRunning.Add(1)
		m.mu.Unlock()
		m.metrics.WorkersBusy.Add(1)

		// The scope labels the engine's eval-cache traffic by job kind, so
		// /metrics can report e.g. how well ensemble members share
		// evaluations; the cache itself stays one shared table.
		cfg := engineCfg{seed: j.req.Seed, iters: j.req.Iters, budget: j.req.SearchBudget,
			threads: j.req.Threads, scope: j.kind}
		if j.req.Adaptive != nil {
			cfg.adaptive = *j.req.Adaptive
		}
		eng, ok := engines[cfg]
		var err error
		if !ok {
			opts := []deco.Option{deco.WithSeed(cfg.seed), deco.WithIters(cfg.iters),
				deco.WithSearchBudget(cfg.budget), deco.WithThreads(cfg.threads),
				deco.WithAdaptive(cfg.adaptive)}
			if m.evalCache != nil {
				opts = append(opts, deco.WithEvalCache(m.evalCache), deco.WithEvalCacheScope(cfg.scope))
			}
			eng, err = deco.NewEngine(opts...)
			if err == nil {
				if len(engines) >= 8 { // bound worker-local engine memory
					for k := range engines {
						delete(engines, k)
						break
					}
				}
				engines[cfg] = eng
			}
		}

		var out solveOut
		if err == nil {
			if j.run != nil {
				out.doc, err = m.runManaged(j, eng)
			} else {
				out, err = m.solveKeyed(j, eng)
			}
		}
		m.metrics.WorkersBusy.Add(-1)

		m.mu.Lock()
		j.finished = time.Now()
		m.metrics.JobsRunning.Add(-1)
		switch {
		case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
			j.state = JobCancelled
			j.errMsg = err.Error()
			m.metrics.JobsCancelled.Add(1)
			m.metrics.TenantAdd(j.tenant, "cancelled", 1)
		case err != nil:
			j.state = JobFailed
			j.errMsg = err.Error()
			m.metrics.JobsFailed.Add(1)
			m.metrics.TenantAdd(j.tenant, "failed", 1)
			m.logf("job %s rid=%s tenant=%s failed: %v", j.id, j.requestID, j.tenant, err)
		default:
			j.state = JobDone
			j.result = out.doc
			j.cached = j.cached || out.cached
			j.coalesced = out.coalesced
			j.remote = out.remote
			m.metrics.JobsDone.Add(1)
			m.metrics.TenantAdd(j.tenant, "done", 1)
			if out.cached {
				m.metrics.TenantAdd(j.tenant, "cache_hits", 1)
			}
			if j.run == nil {
				m.metrics.ObserveSolve(j.tenant, j.finished.Sub(j.started).Seconds())
				// Only locally computed results enter the plan cache: the
				// owner is the cache authority for its shard, so remote docs
				// stay remote and coalesced followers reuse the leader's Put.
				if !out.remote && !out.coalesced && !out.cached {
					m.cache.Put(j.key, out.doc)
				}
			}
		}
		j.cancel()
		m.runCond.Broadcast()
		m.mu.Unlock()
	}
}

// solveOut is the outcome of a keyed (non-run) job's solve path.
type solveOut struct {
	doc       json.RawMessage
	cached    bool // answered from a plan cache (local recheck or owner's)
	coalesced bool // shared another job's in-flight computation
	remote    bool // computed by the owning peer
}

// solveKeyed answers a keyed job: local plan-cache recheck first (the job
// may have queued behind the identical job that just finished), then the
// singleflight group, inside which the job either forwards to its ring owner
// or solves locally.
func (m *Manager) solveKeyed(j *job, eng *deco.Engine) (solveOut, error) {
	if doc, ok := m.cache.Recheck(j.key); ok {
		return solveOut{doc: doc, cached: true}, nil
	}
	for {
		v, err, shared := m.flight.Do(j.key, func() (any, error) {
			return m.solveRouted(j, eng)
		})
		if shared && err != nil && errors.Is(err, context.Canceled) && j.ctx.Err() == nil {
			// The flight leader was cancelled, not us: retry (possibly
			// becoming the new leader).
			continue
		}
		if err != nil {
			return solveOut{}, err
		}
		out := v.(solveOut)
		if shared {
			out.coalesced = true
			m.metrics.CoalescedTotal.Add(1)
		}
		return out, nil
	}
}

// solveRouted runs inside the singleflight: it forwards the job to its ring
// owner when that is another node, with a hedged fallback to local
// computation when the owner is unreachable, refuses the job (draining, full
// queue), errors, or exceeds the hedge delay.
func (m *Manager) solveRouted(j *job, eng *deco.Engine) (solveOut, error) {
	owner := ""
	if m.ring != nil && !j.forwarded {
		if o := m.ring.Owner(j.key); o != m.ring.Self() {
			owner = o
		}
	}
	if owner == "" {
		return m.solveLocal(j, eng)
	}

	// Take a forwarding slot; if every slot is parked on a peer already,
	// solving locally is both deadlock-free and no slower than queueing.
	select {
	case m.fwdSem <- struct{}{}:
		defer func() { <-m.fwdSem }()
	default:
		return m.solveLocal(j, eng)
	}

	m.metrics.ForwardsTotal.Add(1)
	body, err := json.Marshal(j.req)
	if err != nil {
		return solveOut{}, err
	}
	fctx, fcancel := context.WithCancel(j.ctx)
	defer fcancel()
	type fwdReply struct {
		rep *cluster.SolveReply
		err error
	}
	ch := make(chan fwdReply, 1)
	go func() {
		rep, err := m.peers.Solve(fctx, owner, body, j.requestID)
		ch <- fwdReply{rep, err}
	}()

	hedge := time.NewTimer(m.cfg.ForwardHedge)
	defer hedge.Stop()
	select {
	case r := <-ch:
		if r.err == nil {
			if r.rep.Cached {
				m.metrics.CrossShardHits.Add(1)
			}
			return solveOut{doc: r.rep.Doc, cached: r.rep.Cached, remote: true}, nil
		}
		m.metrics.ForwardFailures.Add(1)
		m.logf("job %s rid=%s: forward to owner %s failed (%v); solving locally", j.id, j.requestID, owner, r.err)
	case <-hedge.C:
		// The owner is reachable but slow (or hung): abandon the forward and
		// compute locally. fcancel (deferred) tells the owner to stop.
		m.metrics.ForwardHedged.Add(1)
		m.logf("job %s rid=%s: owner %s exceeded hedge %v; solving locally", j.id, j.requestID, owner, m.cfg.ForwardHedge)
	case <-j.ctx.Done():
		return solveOut{}, j.ctx.Err()
	}
	return m.solveLocal(j, eng)
}

// solveLocal runs the job on this node's engine.
func (m *Manager) solveLocal(j *job, eng *deco.Engine) (solveOut, error) {
	m.metrics.SolvesTotal.Add(1)
	var doc json.RawMessage
	var err error
	if j.kind == KindEnsemble {
		var res *deco.EnsembleResult
		if res, err = eng.RunEnsembleProgram(j.ctx, j.req.Program); err == nil {
			doc, err = json.Marshal(res)
		}
	} else {
		var plan *deco.Plan
		if plan, err = solve(j.ctx, eng, j); err == nil {
			m.metrics.WorldsEvaluatedTotal.Add(plan.WorldsEvaluated)
			m.metrics.WorldsSavedTotal.Add(plan.WorldsSaved)
			m.metrics.WorldsReorderedTotal.Add(plan.WorldsReordered)
			m.metrics.DeltaEvalsTotal.Add(plan.DeltaEvals)
			m.metrics.DeltaFallbacksTotal.Add(plan.DeltaFallbacks)
			m.metrics.ConePlanHitsTotal.Add(plan.ConePlanHits)
			doc, err = json.Marshal(PlanResultOf(plan))
		}
	}
	if err != nil {
		return solveOut{}, err
	}
	return solveOut{doc: doc}, nil
}

// solve dispatches a job to the engine's context-aware entry points.
func solve(ctx context.Context, eng *deco.Engine, j *job) (*deco.Plan, error) {
	if j.req.Program != "" {
		return eng.RunProgramContext(ctx, j.req.Program, nil)
	}
	var d deco.Deadline
	var b deco.Budget
	if j.req.Deadline != nil {
		d = deco.Deadline{Percentile: j.req.Deadline.Percentile, Seconds: j.req.Deadline.Value}
	}
	if j.req.Budget != nil {
		b = deco.Budget{Percentile: j.req.Budget.Percentile, Dollars: j.req.Budget.Value}
	}
	return eng.ScheduleConstrainedContext(ctx, j.wf, j.req.Goal == "cost", d, b)
}

// viewLocked snapshots the job; caller holds m.mu (or the job is still
// private to the caller).
func (j *job) viewLocked() JobView {
	v := JobView{
		ID:        j.id,
		State:     j.state,
		Tenant:    j.tenant,
		RequestID: j.requestID,
		Cached:    j.cached,
		Coalesced: j.coalesced,
		Remote:    j.remote,
		Submitted: j.submitted,
		Error:     j.errMsg,
		Result:    j.result,
	}
	if j.kind != "" && j.kind != KindPlan {
		v.Kind = j.kind
	}
	if j.run != nil {
		v.Events = len(j.run.events)
	}
	if j.wf != nil {
		v.Workflow = j.wf.Name
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}
