package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"deco"
	"deco/internal/cloud"
	"deco/internal/dag"
	"deco/internal/dax"
)

// JobState is the lifecycle of a planning job.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Job kinds: the solve dispatch, JobView.Kind, and the evaluation-cache
// scope labels of /metrics all share these names.
const (
	KindPlan     = "plan"     // scheduling job producing a provisioning plan
	KindRun      = "run"      // managed adaptive execution
	KindEnsemble = "ensemble" // ensemble-admission job (program mode only)
)

// PctBound is a probabilistic bound: P(X <= Value) >= Percentile. A
// Percentile <= 0 selects the deterministic (expected-value) notion.
type PctBound struct {
	Percentile float64 `json:"percentile"`
	Value      float64 `json:"value"`
}

// SubmitRequest is the body of POST /v1/jobs. Exactly one workflow source
// must be set: Workflow (a named synthetic application: montage, montage4,
// montage8, ligo, epigenomics, cybershake, pipeline — or a .dax/.xml path),
// DAX (an inline DAX XML document), or Program (a raw WLog program, which
// carries its own goal and constraints). A program with an ensemble(kind, n)
// fact is an ensemble-admission job: it returns a deco.EnsembleResult
// document instead of a plan.
type SubmitRequest struct {
	Workflow string `json:"workflow,omitempty"`
	DAX      string `json:"dax,omitempty"`
	Program  string `json:"program,omitempty"`

	// Goal is "cost" or "makespan" (workflow/DAX modes only). Empty defaults
	// to "cost" when a deadline is present, else "makespan".
	Goal string `json:"goal,omitempty"`
	// Deadline bounds execution time in seconds; Budget bounds cost in
	// dollars. Workflow/DAX modes require at least one.
	Deadline *PctBound `json:"deadline,omitempty"`
	Budget   *PctBound `json:"budget,omitempty"`

	// Solver knobs; zero values take the server defaults.
	Seed         int64 `json:"seed,omitempty"`
	Iters        int   `json:"iters,omitempty"`
	SearchBudget int   `json:"search_budget,omitempty"`
	// Threads bounds Monte-Carlo iteration parallelism within one state
	// evaluation (threads per block in the §5.2 device model). 0 takes the
	// server default; 1 restricts the solver to state-level parallelism.
	// The produced plan is identical for every setting.
	Threads int `json:"threads,omitempty"`
}

// Assignment maps one task to its provisioned instance type.
type Assignment struct {
	Task string `json:"task"`
	Type string `json:"type"`
}

// PlanResult is the JSON form of a provisioning plan. Assignments are sorted
// by task ID so identical plans serialize identically (and diff cleanly).
type PlanResult struct {
	Workflow        string       `json:"workflow"`
	Tasks           int          `json:"tasks"`
	Feasible        bool         `json:"feasible"`
	EstimatedCost   float64      `json:"estimated_cost"`
	Objective       float64      `json:"objective"`
	ConstraintProbs []float64    `json:"constraint_probs,omitempty"`
	StatesEvaluated int          `json:"states_evaluated"`
	Assignments     []Assignment `json:"assignments"`
}

// PlanResultOf converts an engine plan into its canonical JSON form.
func PlanResultOf(p *deco.Plan) PlanResult {
	asg := p.Assignments()
	ids := make([]string, 0, len(asg))
	for id := range asg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := PlanResult{
		Workflow:        p.Workflow.Name,
		Tasks:           p.Workflow.Len(),
		Feasible:        p.Feasible,
		EstimatedCost:   p.EstimatedCost,
		Objective:       p.Objective,
		ConstraintProbs: p.ConsProb,
		StatesEvaluated: p.StatesEvaluated,
		Assignments:     make([]Assignment, 0, len(ids)),
	}
	for _, id := range ids {
		out.Assignments = append(out.Assignments, Assignment{Task: id, Type: asg[id]})
	}
	return out
}

// JobView is the externally visible state of a job.
type JobView struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Kind is "run" for managed runs, "ensemble" for ensemble-admission
	// jobs, empty for ordinary planning jobs.
	Kind   string `json:"kind,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	// Events counts the run's streamed events so far (managed runs only).
	Events    int             `json:"events,omitempty"`
	Workflow  string          `json:"workflow,omitempty"`
	Submitted time.Time       `json:"submitted"`
	Started   *time.Time      `json:"started,omitempty"`
	Finished  *time.Time      `json:"finished,omitempty"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

// job is the manager's internal record; all fields below mu-guarded state are
// written only under Manager.mu.
type job struct {
	id  string
	req SubmitRequest
	// wf is the resolved workflow (nil in program mode).
	wf   *dag.Workflow
	kind string // KindPlan, KindRun or KindEnsemble
	key  string // content-addressed cache key (empty for managed runs)
	// run marks a managed-run job and holds its live event log.
	run *runState

	state     JobState
	cached    bool
	result    json.RawMessage
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time

	ctx    context.Context
	cancel context.CancelFunc
}

// Submission errors the HTTP layer maps to status codes.
var (
	ErrQueueFull    = errors.New("service: job queue is full")
	ErrShuttingDown = errors.New("service: server is shutting down")
	ErrNotFound     = errors.New("service: no such job")
)

// Manager owns the job table, the bounded queue, and the worker pool. Each
// worker keeps its own deco.Engine instances (engines are not shared across
// goroutines), reusing them across jobs with the same solver configuration.
type Manager struct {
	cfg       Config
	cache     *Cache
	evalCache *deco.EvalCache // shared across all worker engines; nil disables
	metrics   *Metrics
	catHash   string

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, for List and retention pruning
	nextID int
	closed bool

	// runCond (on mu) wakes event streamers when a run appends events or
	// reaches a terminal state.
	runCond *sync.Cond

	queue chan *job
	wg    sync.WaitGroup
}

// NewManager starts cfg.Workers workers over a queue of depth cfg.QueueDepth.
// evalCache, when non-nil, is shared by every worker engine (and through
// them by managed runs' replan searches); it may be nil to disable
// evaluation caching.
func NewManager(cfg Config, cache *Cache, evalCache *deco.EvalCache, metrics *Metrics) *Manager {
	m := &Manager{
		cfg:       cfg,
		cache:     cache,
		evalCache: evalCache,
		metrics:   metrics,
		catHash:   catalogHash(cloud.DefaultCatalog()),
		jobs:      make(map[string]*job),
		queue:     make(chan *job, cfg.QueueDepth),
	}
	m.runCond = sync.NewCond(&m.mu)
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// catalogHash fingerprints the pricing/performance catalog the engines use,
// so plans cached against one catalog are never served for another.
func catalogHash(cat *cloud.Catalog) string {
	b, err := json.Marshal(cat)
	if err != nil {
		panic(fmt.Sprintf("service: catalog not serializable: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// normalize applies server defaults and validates the request, resolving the
// workflow for workflow/DAX modes. It returns the resolved workflow (nil for
// program mode) and the job kind (KindPlan, or KindEnsemble for programs
// carrying an ensemble fact), or a user error.
func (m *Manager) normalize(req *SubmitRequest) (*dag.Workflow, string, error) {
	if req.Seed == 0 {
		req.Seed = m.cfg.DefaultSeed
	}
	if req.Iters == 0 {
		req.Iters = m.cfg.DefaultIters
	}
	if req.Iters < 1 {
		return nil, "", fmt.Errorf("iters must be >= 1")
	}
	if req.SearchBudget == 0 {
		req.SearchBudget = m.cfg.DefaultSearchBudget
	}
	if req.SearchBudget < 1 {
		return nil, "", fmt.Errorf("search_budget must be >= 1")
	}
	if req.Threads == 0 {
		req.Threads = m.cfg.DefaultThreads
	}
	if req.Threads < 0 {
		return nil, "", fmt.Errorf("threads must be >= 0")
	}
	sources := 0
	for _, s := range []string{req.Workflow, req.DAX, req.Program} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return nil, "", fmt.Errorf("exactly one of workflow, dax, program must be set")
	}
	if req.Program != "" {
		if req.Goal != "" || req.Deadline != nil || req.Budget != nil {
			return nil, "", fmt.Errorf("program mode carries its own goal and constraints; goal/deadline/budget must be empty")
		}
		// ParseEnsembleProgram both validates the WLog syntax and detects
		// the ensemble(kind, n) fact that routes the job to the admission
		// solver instead of the scheduling solver.
		if _, isEnsemble, err := deco.ParseEnsembleProgram(req.Program); err != nil {
			return nil, "", err
		} else if isEnsemble {
			return nil, KindEnsemble, nil
		}
		return nil, KindPlan, nil
	}

	// Workflow / DAX mode: resolve the DAG and check constraints.
	var w *dag.Workflow
	var err error
	if req.DAX != "" {
		w, err = dax.Parse(strings.NewReader(req.DAX))
	} else {
		w, err = deco.NamedWorkflow(req.Workflow, req.Seed)
	}
	if err != nil {
		return nil, "", err
	}
	if req.Deadline == nil && req.Budget == nil {
		return nil, "", fmt.Errorf("at least one of deadline, budget is required")
	}
	if req.Deadline != nil && req.Deadline.Value <= 0 {
		return nil, "", fmt.Errorf("deadline value must be positive")
	}
	if req.Budget != nil && req.Budget.Value <= 0 {
		return nil, "", fmt.Errorf("budget value must be positive")
	}
	switch req.Goal {
	case "":
		if req.Deadline != nil {
			req.Goal = "cost"
		} else {
			req.Goal = "makespan"
		}
	case "cost", "makespan":
	default:
		return nil, "", fmt.Errorf("goal must be \"cost\" or \"makespan\", got %q", req.Goal)
	}
	return w, KindPlan, nil
}

// jobKey computes the content-addressed cache key: a hash over the workflow
// structure (or program text), the catalog, the goal and constraints, and the
// solver configuration. Two requests with the same key provably ask for the
// same plan. Threads is deliberately excluded: plans are device- and
// parallelism-independent (the solver's cross-device determinism tests pin
// this down), so requests differing only in threads share a cache entry.
func (m *Manager) jobKey(req *SubmitRequest, w *dag.Workflow) string {
	h := sha256.New()
	fmt.Fprintf(h, "v1|cat=%s|seed=%d|iters=%d|budget=%d|goal=%s|", m.catHash, req.Seed, req.Iters, req.SearchBudget, req.Goal)
	if req.Deadline != nil {
		fmt.Fprintf(h, "deadline=%s@%s|", floatKey(req.Deadline.Value), floatKey(req.Deadline.Percentile))
	}
	if req.Budget != nil {
		fmt.Fprintf(h, "budget=%s@%s|", floatKey(req.Budget.Value), floatKey(req.Budget.Percentile))
	}
	if req.Program != "" {
		io.WriteString(h, "program|")
		io.WriteString(h, req.Program)
	} else {
		io.WriteString(h, "workflow|")
		io.WriteString(h, workflowFingerprint(w))
	}
	return hex.EncodeToString(h.Sum(nil))
}

func floatKey(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// workflowFingerprint serializes the structural content of a workflow
// deterministically: tasks sorted by ID with their work and files, then the
// sorted edge list.
func workflowFingerprint(w *dag.Workflow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "name=%s;", w.Name)
	ids := make([]string, 0, w.Len())
	for _, t := range w.Tasks {
		ids = append(ids, t.ID)
	}
	sort.Strings(ids)
	for _, id := range ids {
		t := w.Task(id)
		fmt.Fprintf(&b, "task=%s|%s|%s", t.ID, t.Executable, floatKey(t.CPUSeconds))
		for _, f := range t.Inputs {
			fmt.Fprintf(&b, "|i:%s:%s", f.Name, floatKey(f.SizeMB))
		}
		for _, f := range t.Outputs {
			fmt.Fprintf(&b, "|o:%s:%s", f.Name, floatKey(f.SizeMB))
		}
		b.WriteByte(';')
	}
	for _, e := range w.Edges() {
		fmt.Fprintf(&b, "edge=%s>%s;", e[0], e[1])
	}
	return b.String()
}

// Submit validates and enqueues a planning request. Cache hits complete
// immediately without touching the queue; a full queue rejects the request
// with ErrQueueFull.
func (m *Manager) Submit(req SubmitRequest) (JobView, error) {
	w, kind, err := m.normalize(&req)
	if err != nil {
		return JobView{}, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	key := m.jobKey(&req, w)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return JobView{}, ErrShuttingDown
	}
	m.nextID++
	j := &job{
		id:        fmt.Sprintf("j-%06d", m.nextID),
		req:       req,
		wf:        w,
		kind:      kind,
		key:       key,
		submitted: time.Now(),
	}

	if cached, ok := m.cache.Get(key); ok {
		j.state = JobDone
		j.cached = true
		j.result = cached
		j.started = j.submitted
		j.finished = j.submitted
		m.metrics.JobsDone.Add(1)
		m.recordLocked(j)
		return j.viewLocked(), nil
	}

	j.ctx, j.cancel = context.WithCancel(context.Background())
	j.state = JobQueued
	select {
	case m.queue <- j:
	default:
		j.cancel()
		return JobView{}, ErrQueueFull
	}
	m.metrics.JobsQueued.Add(1)
	m.recordLocked(j)
	return j.viewLocked(), nil
}

// errBadRequest tags validation failures for the HTTP layer.
var errBadRequest = errors.New("service: bad request")

// recordLocked inserts the job into the table and prunes old finished jobs
// beyond the retention limit. Caller holds m.mu.
func (m *Manager) recordLocked(j *job) {
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	if m.cfg.MaxJobsRetained <= 0 {
		return
	}
	for len(m.order) > m.cfg.MaxJobsRetained {
		pruned := false
		for i, id := range m.order {
			switch m.jobs[id].state {
			case JobDone, JobFailed, JobCancelled:
				delete(m.jobs, id)
				m.order = append(m.order[:i], m.order[i+1:]...)
				pruned = true
			}
			if pruned {
				break
			}
		}
		if !pruned {
			break // everything retained is still live
		}
	}
}

// Get returns the current view of a job.
func (m *Manager) Get(id string) (JobView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	return j.viewLocked(), nil
}

// List returns all retained jobs in submission order, without results (poll
// the job endpoint for the full document).
func (m *Manager) List() []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobView, 0, len(m.order))
	for _, id := range m.order {
		v := m.jobs[id].viewLocked()
		v.Result = nil
		out = append(out, v)
	}
	return out
}

// Cancel stops a queued or running job. Cancelling a finished job is a
// no-op; the current view is returned either way.
func (m *Manager) Cancel(id string) (JobView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	switch j.state {
	case JobQueued:
		// The worker drops it when it reaches the head of the queue.
		j.state = JobCancelled
		j.finished = time.Now()
		j.cancel()
		m.metrics.JobsQueued.Add(-1)
		m.metrics.JobsCancelled.Add(1)
		m.runCond.Broadcast()
	case JobRunning:
		// The solver aborts between state evaluations; the worker marks the
		// terminal state when ScheduleContext returns.
		j.cancel()
	}
	return j.viewLocked(), nil
}

// Shutdown stops accepting submissions, drains every accepted job (queued
// and running), and waits for the workers to exit. If ctx expires first, the
// remaining jobs are cancelled and Shutdown waits for them to abort.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	alreadyClosed := m.closed
	m.closed = true
	m.mu.Unlock()
	if !alreadyClosed {
		close(m.queue)
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		for _, j := range m.jobs {
			if j.cancel != nil {
				j.cancel()
			}
		}
		m.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// worker drains the queue, keeping one engine per solver configuration.
// Engines are not safe for concurrent use, so they are strictly
// worker-local; the map lets a worker alternate between configurations
// without rebuilding calibrated metadata every job.
func (m *Manager) worker() {
	defer m.wg.Done()
	type engineCfg struct {
		seed    int64
		iters   int
		budget  int
		threads int
		scope   string
	}
	engines := make(map[engineCfg]*deco.Engine)
	for j := range m.queue {
		m.mu.Lock()
		if j.state != JobQueued { // cancelled while queued
			m.mu.Unlock()
			continue
		}
		j.state = JobRunning
		j.started = time.Now()
		m.metrics.JobsQueued.Add(-1)
		m.metrics.JobsRunning.Add(1)
		m.mu.Unlock()

		// The scope labels the engine's eval-cache traffic by job kind, so
		// /metrics can report e.g. how well ensemble members share
		// evaluations; the cache itself stays one shared table.
		cfg := engineCfg{seed: j.req.Seed, iters: j.req.Iters, budget: j.req.SearchBudget,
			threads: j.req.Threads, scope: j.kind}
		eng, ok := engines[cfg]
		var err error
		if !ok {
			opts := []deco.Option{deco.WithSeed(cfg.seed), deco.WithIters(cfg.iters),
				deco.WithSearchBudget(cfg.budget), deco.WithThreads(cfg.threads)}
			if m.evalCache != nil {
				opts = append(opts, deco.WithEvalCache(m.evalCache), deco.WithEvalCacheScope(cfg.scope))
			}
			eng, err = deco.NewEngine(opts...)
			if err == nil {
				if len(engines) >= 8 { // bound worker-local engine memory
					for k := range engines {
						delete(engines, k)
						break
					}
				}
				engines[cfg] = eng
			}
		}

		var doc json.RawMessage
		if err == nil {
			switch {
			case j.run != nil:
				doc, err = m.runManaged(j, eng)
			case j.kind == KindEnsemble:
				var res *deco.EnsembleResult
				if res, err = eng.RunEnsembleProgram(j.ctx, j.req.Program); err == nil {
					doc, err = json.Marshal(res)
				}
			default:
				var plan *deco.Plan
				if plan, err = solve(j.ctx, eng, j); err == nil {
					doc, err = json.Marshal(PlanResultOf(plan))
				}
			}
		}

		m.mu.Lock()
		j.finished = time.Now()
		m.metrics.JobsRunning.Add(-1)
		switch {
		case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
			j.state = JobCancelled
			j.errMsg = err.Error()
			m.metrics.JobsCancelled.Add(1)
		case err != nil:
			j.state = JobFailed
			j.errMsg = err.Error()
			m.metrics.JobsFailed.Add(1)
		default:
			j.state = JobDone
			j.result = doc
			m.metrics.JobsDone.Add(1)
			if j.run == nil {
				m.metrics.ObserveSolve(j.finished.Sub(j.started).Seconds())
				m.cache.Put(j.key, doc)
			}
		}
		j.cancel()
		m.runCond.Broadcast()
		m.mu.Unlock()
	}
}

// solve dispatches a job to the engine's context-aware entry points.
func solve(ctx context.Context, eng *deco.Engine, j *job) (*deco.Plan, error) {
	if j.req.Program != "" {
		return eng.RunProgramContext(ctx, j.req.Program, nil)
	}
	var d deco.Deadline
	var b deco.Budget
	if j.req.Deadline != nil {
		d = deco.Deadline{Percentile: j.req.Deadline.Percentile, Seconds: j.req.Deadline.Value}
	}
	if j.req.Budget != nil {
		b = deco.Budget{Percentile: j.req.Budget.Percentile, Dollars: j.req.Budget.Value}
	}
	return eng.ScheduleConstrainedContext(ctx, j.wf, j.req.Goal == "cost", d, b)
}

// viewLocked snapshots the job; caller holds m.mu (or the job is still
// private to the caller).
func (j *job) viewLocked() JobView {
	v := JobView{
		ID:        j.id,
		State:     j.state,
		Cached:    j.cached,
		Submitted: j.submitted,
		Error:     j.errMsg,
		Result:    j.result,
	}
	if j.kind != "" && j.kind != KindPlan {
		v.Kind = j.kind
	}
	if j.run != nil {
		v.Events = len(j.run.events)
	}
	if j.wf != nil {
		v.Workflow = j.wf.Name
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}
