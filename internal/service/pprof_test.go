package service

import (
	"context"
	"net/http"
	"testing"
	"time"
)

// The pprof endpoints expose internals, so they must only exist when
// explicitly enabled.
func TestPprofGatedByConfig(t *testing.T) {
	_, off := newTestServer(t, quickCfg())
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without -pprof: status %d, want 404", resp.StatusCode)
	}

	cfg := quickCfg()
	cfg.EnablePprof = true
	_, on := newTestServer(t, cfg)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(on.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

// /metrics reports the shared evaluation cache: resolving the same problem
// twice must show eval-cache activity (the second solve is answered by the
// plan cache, so the eval-cache traffic comes from the first search alone).
func TestMetricsReportEvalCache(t *testing.T) {
	srv, ts := newTestServer(t, quickCfg())
	if srv.evalCache == nil {
		t.Fatal("default config built no evaluation cache")
	}

	v := submit(t, ts, SubmitRequest{
		Workflow: "pipeline",
		Deadline: &PctBound{Percentile: 0.9, Value: 40000},
	}, http.StatusAccepted)
	waitForState(t, ts, v.ID, JobDone, 30*time.Second)

	var snap Snapshot
	if code := getJSON(t, ts.URL+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if snap.EvalCacheMisses == 0 {
		t.Errorf("no eval-cache misses recorded after a solve: %+v", snap)
	}
	if snap.EvalCacheSize == 0 {
		t.Errorf("eval cache empty after a solve: %+v", snap)
	}
}

// A negative capacity disables the evaluation cache entirely.
func TestEvalCacheDisabled(t *testing.T) {
	cfg := quickCfg()
	cfg.EvalCacheCapacity = -1
	srv := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Manager().Shutdown(ctx)
	})
	if srv.evalCache != nil {
		t.Error("negative capacity still built an eval cache")
	}
}
