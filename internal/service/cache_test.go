package service

import (
	"encoding/json"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", json.RawMessage(`1`))
	c.Put("b", json.RawMessage(`2`))
	if _, ok := c.Get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", json.RawMessage(`3`))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived eviction")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be cached")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 3/1", hits, misses)
	}
}

func TestCacheUpdateExistingKey(t *testing.T) {
	c := NewCache(2)
	c.Put("k", json.RawMessage(`1`))
	c.Put("k", json.RawMessage(`2`))
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	v, _ := c.Get("k")
	if string(v) != `2` {
		t.Errorf("value = %s, want 2", v)
	}
}

func TestCacheZeroCapacityDisables(t *testing.T) {
	c := NewCache(0)
	c.Put("k", json.RawMessage(`1`))
	if _, ok := c.Get("k"); ok {
		t.Error("zero-capacity cache should never hit")
	}
	if c.Len() != 0 {
		t.Error("zero-capacity cache should stay empty")
	}
}
