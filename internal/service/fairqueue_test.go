package service

import (
	"fmt"
	"testing"
	"time"
)

func qjob(tenant string, n int) *job {
	return &job{id: fmt.Sprintf("%s-%d", tenant, n), tenant: tenant, state: JobQueued}
}

// With equal weights and both tenants backlogged, stride scheduling
// alternates dequeues no matter how lopsided the arrival order was.
func TestFairQueueAlternatesEqualWeights(t *testing.T) {
	q := newFairQueue(64, nil)
	for i := 0; i < 6; i++ {
		if err := q.push(qjob("a", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if err := q.push(qjob("b", i)); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	for i := 0; i < 12; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		order = append(order, j.tenant)
	}
	// After the first dequeue the two tenants must alternate strictly; a
	// FIFO would have produced aaaaaabbbbbb.
	for i := 2; i < len(order); i++ {
		if order[i] == order[i-1] {
			t.Fatalf("dequeue order %v does not alternate at %d", order, i)
		}
	}
}

func TestFairQueueWeightedShares(t *testing.T) {
	q := newFairQueue(128, map[string]float64{"gold": 3, "free": 1})
	for i := 0; i < 40; i++ {
		q.push(qjob("gold", i))
		q.push(qjob("free", i))
	}
	counts := map[string]int{}
	for i := 0; i < 40; i++ { // dequeue half the backlog
		j, _ := q.pop()
		counts[j.tenant]++
	}
	// Weight 3:1 → expect ~30:10.
	if counts["gold"] < 25 || counts["free"] > 15 {
		t.Errorf("dequeues gold=%d free=%d, want ~3:1", counts["gold"], counts["free"])
	}
}

func TestFairQueueTenantFIFOAndCatchUp(t *testing.T) {
	q := newFairQueue(64, nil)
	// Tenant a consumes virtual time alone...
	for i := 0; i < 4; i++ {
		q.push(qjob("a", i))
	}
	for i := 0; i < 4; i++ {
		j, _ := q.pop()
		if j.id != fmt.Sprintf("a-%d", i) {
			t.Fatalf("intra-tenant order broken: got %s at %d", j.id, i)
		}
	}
	// ...then a newcomer must NOT owe the virtual time it was absent for:
	// it enters at the current clock and shares 50/50 from here on.
	for i := 0; i < 4; i++ {
		q.push(qjob("a", 10+i))
		q.push(qjob("b", i))
	}
	counts := map[string]int{}
	for i := 0; i < 4; i++ {
		j, _ := q.pop()
		counts[j.tenant]++
	}
	if counts["b"] < 2 {
		t.Errorf("newcomer got %d of the first 4 dequeues, want >= 2", counts["b"])
	}
}

func TestFairQueueCapacityAndClose(t *testing.T) {
	q := newFairQueue(2, nil)
	if err := q.push(qjob("a", 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("b", 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("c", 0)); err != ErrQueueFull {
		t.Fatalf("overflow push: %v, want ErrQueueFull", err)
	}
	if q.Len() != 2 {
		t.Errorf("Len = %d, want 2", q.Len())
	}
	if d := q.Depths(); d["a"] != 1 || d["b"] != 1 {
		t.Errorf("Depths = %v", d)
	}

	q.close()
	if err := q.push(qjob("d", 0)); err != ErrShuttingDown {
		t.Fatalf("push after close: %v, want ErrShuttingDown", err)
	}
	// The backlog drains before pop reports closed.
	for i := 0; i < 2; i++ {
		if _, ok := q.pop(); !ok {
			t.Fatal("pop reported closed with jobs still queued")
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop returned a job from an empty closed queue")
	}
}

func TestFairQueueBlockingPop(t *testing.T) {
	q := newFairQueue(4, nil)
	got := make(chan *job, 1)
	go func() {
		j, _ := q.pop()
		got <- j
	}()
	time.Sleep(20 * time.Millisecond) // let the popper park
	q.push(qjob("a", 1))
	select {
	case j := <-got:
		if j.tenant != "a" {
			t.Errorf("popped %+v", j)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("push did not wake the blocked pop")
	}
}

func TestQuotasTokenBucket(t *testing.T) {
	q := newQuotas(1, 2) // 1 job/s sustained, burst of 2
	now := time.Now()
	if !q.allow("t", now) || !q.allow("t", now) {
		t.Fatal("burst of 2 must admit 2 immediate submissions")
	}
	if q.allow("t", now) {
		t.Fatal("third immediate submission must be rejected")
	}
	// Another tenant has its own bucket.
	if !q.allow("u", now) {
		t.Fatal("independent tenant was throttled")
	}
	// Tokens refill with time.
	if !q.allow("t", now.Add(1100*time.Millisecond)) {
		t.Fatal("refilled token was rejected")
	}
	// Refill never exceeds the burst.
	later := now.Add(time.Hour)
	ok := 0
	for i := 0; i < 5; i++ {
		if q.allow("t", later) {
			ok++
		}
	}
	if ok != 2 {
		t.Errorf("after a long idle, %d admissions, want burst=2", ok)
	}

	// rate <= 0 disables admission control.
	if !newQuotas(0, 0).allow("x", now) {
		t.Error("disabled quotas rejected a submission")
	}
	var nilq *quotas
	if !nilq.allow("x", now) {
		t.Error("nil quotas rejected a submission")
	}
}
