package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"deco"
)

// newTestServer starts the service over httptest; workers are shut down with
// the test unless the test already shut the server down itself.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Manager().Shutdown(ctx)
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func submit(t *testing.T, ts *httptest.Server, req SubmitRequest, wantCode int) JobView {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != wantCode {
		t.Fatalf("submit: status %d, want %d; body: %s", resp.StatusCode, wantCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("submit response: %v; body: %s", err, body)
	}
	return v
}

// waitForState polls the job until it reaches want (terminal mismatches fail
// immediately) or the deadline passes.
func waitForState(t *testing.T, ts *httptest.Server, id string, want JobState, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v JobView
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("get %s: status %d", id, code)
		}
		if v.State == want {
			return v
		}
		switch v.State {
		case JobDone, JobFailed, JobCancelled:
			t.Fatalf("job %s reached terminal state %q (error: %s), want %q", id, v.State, v.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q after %v, want %q", id, v.State, timeout, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// quickCfg solves small problems in tens of milliseconds.
func quickCfg() Config {
	return Config{Workers: 2, QueueDepth: 8, CacheCapacity: 16, DefaultIters: 20, DefaultSearchBudget: 120}
}

func TestSubmitPollResultHappyPath(t *testing.T) {
	_, ts := newTestServer(t, quickCfg())

	v := submit(t, ts, SubmitRequest{
		Workflow: "pipeline",
		Deadline: &PctBound{Percentile: 0.9, Value: 40000},
	}, http.StatusAccepted)
	if v.ID == "" || v.State != JobQueued {
		t.Fatalf("submit view = %+v, want queued with an ID", v)
	}

	done := waitForState(t, ts, v.ID, JobDone, 30*time.Second)
	if done.Cached {
		t.Error("first solve reported as cached")
	}
	var res PlanResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatalf("result: %v", err)
	}
	if res.Tasks == 0 || len(res.Assignments) != res.Tasks {
		t.Fatalf("result has %d assignments for %d tasks", len(res.Assignments), res.Tasks)
	}
	for _, a := range res.Assignments {
		if a.Task == "" || a.Type == "" {
			t.Fatalf("incomplete assignment %+v", a)
		}
	}
	if !res.Feasible {
		t.Error("generous deadline should be feasible")
	}

	// The job listing shows it without the result payload.
	var list struct{ Jobs []JobView }
	if code := getJSON(t, ts.URL+"/v1/jobs", &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != v.ID || list.Jobs[0].Result != nil {
		t.Fatalf("list = %+v, want the one job without result", list.Jobs)
	}
}

func TestCacheHitOnIdenticalResubmission(t *testing.T) {
	_, ts := newTestServer(t, quickCfg())
	req := SubmitRequest{
		Workflow: "montage",
		Deadline: &PctBound{Percentile: 0.9, Value: 40000},
	}

	first := submit(t, ts, req, http.StatusAccepted)
	firstDone := waitForState(t, ts, first.ID, JobDone, 60*time.Second)

	// Identical resubmission: answered synchronously from the cache.
	second := submit(t, ts, req, http.StatusOK)
	if !second.Cached || second.State != JobDone {
		t.Fatalf("resubmission = %+v, want cached done", second)
	}
	if !bytes.Equal(firstDone.Result, second.Result) {
		t.Errorf("cached plan differs from the original:\n%s\nvs\n%s", firstDone.Result, second.Result)
	}

	// A different problem (new seed regenerates the synthetic workflow) must
	// not hit.
	req2 := req
	req2.Seed = 7
	third := submit(t, ts, req2, http.StatusAccepted)
	waitForState(t, ts, third.ID, JobDone, 60*time.Second)

	var snap Snapshot
	if code := getJSON(t, ts.URL+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if snap.CacheHits != 1 {
		t.Errorf("cache_hits = %d, want 1", snap.CacheHits)
	}
	if snap.CacheMisses != 2 {
		t.Errorf("cache_misses = %d, want 2", snap.CacheMisses)
	}
	if snap.JobsDone != 3 {
		t.Errorf("jobs_done = %d, want 3", snap.JobsDone)
	}
	if snap.SolveSamples != 2 {
		t.Errorf("solve_samples = %d, want 2 (cache hits don't count)", snap.SolveSamples)
	}
	if snap.SolveP50Ms <= 0 || snap.SolveP95Ms < snap.SolveP50Ms {
		t.Errorf("latency quantiles p50=%v p95=%v look wrong", snap.SolveP50Ms, snap.SolveP95Ms)
	}
}

// slowRequest is a problem big enough to keep a worker busy for a long time:
// a large synthetic Montage with a heavy Monte-Carlo and search budget.
func slowRequest(seed int64) SubmitRequest {
	return SubmitRequest{
		Workflow:     "montage8",
		Deadline:     &PctBound{Percentile: 0.95, Value: 40000},
		Seed:         seed,
		Iters:        4000,
		SearchBudget: 100000,
	}
}

func TestCancelRunningJobStopsPromptly(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, DefaultIters: 20, DefaultSearchBudget: 100})

	v := submit(t, ts, slowRequest(1), http.StatusAccepted)
	waitForState(t, ts, v.ID, JobRunning, 30*time.Second)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs/"+v.ID+"/cancel", nil)
	cancelled := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The uncancelled solve would run for minutes (100k states × 4000
	// iterations); the cancelled one must abort within seconds.
	final := waitForState(t, ts, v.ID, JobCancelled, 15*time.Second)
	if took := time.Since(cancelled); took > 10*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", took)
	}
	if final.Result != nil {
		t.Error("cancelled job should carry no result")
	}

	var snap Snapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.JobsCancelled != 1 {
		t.Errorf("jobs_cancelled = %d, want 1", snap.JobsCancelled)
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, DefaultIters: 20, DefaultSearchBudget: 100})

	running := submit(t, ts, slowRequest(1), http.StatusAccepted)
	waitForState(t, ts, running.ID, JobRunning, 30*time.Second)
	queued := submit(t, ts, slowRequest(2), http.StatusAccepted)

	if _, err := srv.Manager().Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	v, err := srv.Manager().Get(queued.ID)
	if err != nil || v.State != JobCancelled {
		t.Fatalf("queued job after cancel: %+v (err %v), want cancelled", v, err)
	}
	if _, err := srv.Manager().Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	waitForState(t, ts, running.ID, JobCancelled, 15*time.Second)
}

func TestQueueFullRejection(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, DefaultIters: 20, DefaultSearchBudget: 100})

	// Fill the single worker, then the single queue slot.
	a := submit(t, ts, slowRequest(1), http.StatusAccepted)
	waitForState(t, ts, a.ID, JobRunning, 30*time.Second)
	b := submit(t, ts, slowRequest(2), http.StatusAccepted)

	resp, body := postJSON(t, ts.URL+"/v1/jobs", slowRequest(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429; body: %s", resp.StatusCode, body)
	}

	// The rejected job must not appear in the table.
	var list struct{ Jobs []JobView }
	getJSON(t, ts.URL+"/v1/jobs", &list)
	if len(list.Jobs) != 2 {
		t.Fatalf("listed %d jobs after rejection, want 2", len(list.Jobs))
	}
	for _, id := range []string{a.ID, b.ID} {
		if _, err := http.Post(ts.URL+"/v1/jobs/"+id+"/cancel", "", nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGracefulShutdownDrainsInFlightJob(t *testing.T) {
	cfg := quickCfg()
	cfg.Workers = 1
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	v := submit(t, ts, SubmitRequest{
		Workflow:     "pipeline",
		Deadline:     &PctBound{Percentile: 0.9, Value: 40000},
		Iters:        2000, // ~600ms solve: reliably observable in flight
		SearchBudget: 400,
	}, http.StatusAccepted)
	waitForState(t, ts, v.ID, JobRunning, 30*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Manager().Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain cleanly: %v", err)
	}

	after, err := srv.Manager().Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.State != JobDone || after.Result == nil {
		t.Fatalf("in-flight job after shutdown = %q (error %q), want done with a result", after.State, after.Error)
	}

	// New submissions are refused once draining.
	if _, err := srv.Manager().Submit(SubmitRequest{Workflow: "pipeline", Deadline: &PctBound{Value: 1000}}); err != ErrShuttingDown {
		t.Fatalf("submit after shutdown: %v, want ErrShuttingDown", err)
	}
}

func TestSubmitValidationAndRouting(t *testing.T) {
	_, ts := newTestServer(t, quickCfg())

	bad := []SubmitRequest{
		{},                     // no source
		{Workflow: "pipeline"}, // no constraint
		{Workflow: "nosuchapp", Deadline: &PctBound{Value: 100}},               // unknown workflow
		{Workflow: "pipeline", Program: "x.", Deadline: &PctBound{Value: 1}},   // two sources
		{Workflow: "pipeline", Deadline: &PctBound{Value: -5}},                 // non-positive bound
		{Workflow: "pipeline", Goal: "speed", Deadline: &PctBound{Value: 100}}, // bad goal
		{Program: "minimize C in totalcost(C)."},                               // WLog program without imports still parses; constraints forbidden
	}
	// The last case is actually valid WLog; replace it with a parse error.
	bad[len(bad)-1] = SubmitRequest{Program: "minimize C in"}
	for i, req := range bad {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad request %d: status %d, want 400; body: %s", i, resp.StatusCode, body)
		}
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/j-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Errorf("healthz = %d %v", code, health)
	}
}

func TestProgramModeSolvesWLog(t *testing.T) {
	_, ts := newTestServer(t, quickCfg())
	prog := `import(amazonec2).
import(pipeline).
minimize Ct in totalcost(Ct).
T in maxtime(Path,T) satisfies deadline(90%,40000s).
`
	v := submit(t, ts, SubmitRequest{Program: prog}, http.StatusAccepted)
	done := waitForState(t, ts, v.ID, JobDone, 60*time.Second)
	var res PlanResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Tasks == 0 {
		t.Fatal("program mode returned an empty plan")
	}
	// Identical program resubmission hits the cache too.
	again := submit(t, ts, SubmitRequest{Program: prog}, http.StatusOK)
	if !again.Cached {
		t.Error("identical program resubmission missed the cache")
	}
}

func TestJobRetentionPruning(t *testing.T) {
	cfg := quickCfg()
	cfg.MaxJobsRetained = 3
	srv, ts := newTestServer(t, cfg)

	var last string
	for i := 0; i < 6; i++ {
		v := submit(t, ts, SubmitRequest{
			Workflow: "pipeline",
			Seed:     int64(i + 1), // distinct problems: no cache hits
			Deadline: &PctBound{Percentile: 0.9, Value: 40000},
		}, http.StatusAccepted)
		last = v.ID
		waitForState(t, ts, v.ID, JobDone, 30*time.Second)
	}
	if n := len(srv.Manager().List()); n > 3 {
		t.Errorf("retained %d jobs, want <= 3", n)
	}
	if _, err := srv.Manager().Get(last); err != nil {
		t.Errorf("most recent job was pruned: %v", err)
	}
}

func TestMetricsEndpointShape(t *testing.T) {
	_, ts := newTestServer(t, quickCfg())
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"jobs_queued", "jobs_running", "jobs_done", "jobs_failed", "jobs_cancelled",
		"cache_hits", "cache_misses", "cache_size", "solve_samples", "solve_latency_p50_ms", "solve_latency_p95_ms"} {
		if _, ok := m[k]; !ok {
			t.Errorf("metrics missing %q", k)
		}
	}
}

func TestMetricsReservoirQuantiles(t *testing.T) {
	m := NewMetrics()
	for i := 1; i <= 1000; i++ {
		m.ObserveSolve("default", float64(i)/1000) // 1ms .. 1000ms uniformly
	}
	s := m.Snapshot(nil, nil)
	if s.SolveSamples != 1000 {
		t.Fatalf("samples = %d, want 1000", s.SolveSamples)
	}
	if s.SolveP50Ms < 300 || s.SolveP50Ms > 700 {
		t.Errorf("p50 = %vms, want ~500ms from a uniform 1..1000ms stream", s.SolveP50Ms)
	}
	if s.SolveP95Ms < 850 || s.SolveP95Ms > 1000 {
		t.Errorf("p95 = %vms, want ~950ms", s.SolveP95Ms)
	}
}

// quantile must implement nearest rank, ceil(p*n) 1-based: the old
// truncation read one element too high when p*n landed on an integer (p50
// of [1,2,3,4] came back 3).
func TestQuantileNearestRank(t *testing.T) {
	cases := []struct {
		sorted []float64
		p      float64
		want   float64
	}{
		{nil, 0.5, 0},
		{[]float64{7}, 0.5, 7},
		{[]float64{7}, 0.95, 7},
		{[]float64{1, 2, 3, 4}, 0.50, 2}, // rank ceil(2)=2 → 2nd element
		{[]float64{1, 2, 3, 4}, 0.25, 1},
		{[]float64{1, 2, 3, 4}, 0.75, 3},
		{[]float64{1, 2, 3, 4}, 0.95, 4},
		{[]float64{1, 2, 3, 4}, 1.00, 4},
		{[]float64{1, 2, 3, 4, 5}, 0.50, 3}, // rank ceil(2.5)=3 → median
		{[]float64{1, 2, 3, 4, 5}, 0.95, 5},
		{[]float64{1, 2, 3, 4, 5}, 0.0, 1},
	}
	for _, tc := range cases {
		if got := quantile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("quantile(%v, %v) = %v, want %v", tc.sorted, tc.p, got, tc.want)
		}
	}
}

func TestWorkflowFingerprintDistinguishesStructure(t *testing.T) {
	m := &Manager{catHash: "x", cfg: Config{DefaultSeed: 1, DefaultIters: 10, DefaultSearchBudget: 10}}
	base := SubmitRequest{Workflow: "pipeline", Seed: 1, Iters: 10, SearchBudget: 10,
		Goal: "cost", Deadline: &PctBound{Percentile: 0.9, Value: 100}}

	mk := func(req SubmitRequest) string {
		wf, err := deco.NamedWorkflow(req.Workflow, req.Seed)
		if err != nil {
			t.Fatal(err)
		}
		return m.jobKey(&req, wf)
	}
	k1 := mk(base)
	if k2 := mk(base); k2 != k1 {
		t.Error("identical requests produced different keys")
	}
	diff := base
	diff.Seed = 2 // different jitter → different workflow structure
	if mk(diff) == k1 {
		t.Error("different workflow produced the same key")
	}
	diff2 := base
	diff2.Deadline = &PctBound{Percentile: 0.9, Value: 101}
	if mk(diff2) == k1 {
		t.Error("different constraint produced the same key")
	}
	diff3 := base
	diff3.Iters = 11
	if mk(diff3) == k1 {
		t.Error("different iteration budget produced the same key")
	}
}

// TestEnsembleJobAndCacheScopeMetrics submits ensemble-admission programs and
// checks (a) the job routes to the admission solver and returns an
// EnsembleResult document, and (b) /metrics breaks eval-cache traffic down by
// job kind, with the second ensemble job (same members, different budget)
// hitting the member-planning evaluations the first one warmed.
func TestEnsembleJobAndCacheScopeMetrics(t *testing.T) {
	_, ts := newTestServer(t, quickCfg())
	prog := func(budget string) string {
		return `import(amazonec2).
import(pipeline).
ensemble(constant, 3).
maximize S in score(S).
C in totalcost(C) satisfies budget(mean, ` + budget + `).
`
	}

	v := submit(t, ts, SubmitRequest{Program: prog("40")}, http.StatusAccepted)
	if v.Kind != KindEnsemble {
		t.Fatalf("job kind = %q, want %q", v.Kind, KindEnsemble)
	}
	done := waitForState(t, ts, v.ID, JobDone, 120*time.Second)
	var res deco.EnsembleResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatalf("ensemble result: %v; body: %s", err, done.Result)
	}
	if res.Kind != "constant" || res.N != 3 {
		t.Fatalf("result header: %+v", res)
	}
	if len(res.Admitted) == 0 || !res.Feasible {
		t.Fatalf("expected a feasible admission under a generous budget: %+v", res)
	}

	// A different budget is a different job (no plan-cache hit) but the same
	// member-planning searches: their evaluations must come out of the shared
	// eval cache, attributed to the "ensemble" scope.
	v2 := submit(t, ts, SubmitRequest{Program: prog("35")}, http.StatusAccepted)
	waitForState(t, ts, v2.ID, JobDone, 120*time.Second)

	var m Snapshot
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	sc, ok := m.EvalCacheScopes[KindEnsemble]
	if !ok {
		t.Fatalf("metrics missing eval-cache scope %q: %+v", KindEnsemble, m.EvalCacheScopes)
	}
	if sc.Misses == 0 {
		t.Error("ensemble scope recorded no eval-cache misses")
	}
	if sc.Hits == 0 {
		t.Error("second ensemble job did not hit the member-planning evaluations the first warmed")
	}

	// Identical resubmission is a whole-plan cache hit.
	again := submit(t, ts, SubmitRequest{Program: prog("40")}, http.StatusOK)
	if !again.Cached {
		t.Error("identical ensemble resubmission missed the plan cache")
	}
}

// TestEnsembleProgramRejectedAsRun pins the run-mode contract: ensemble
// programs have no executable plan, so managed runs must refuse them.
func TestEnsembleProgramRejectedAsRun(t *testing.T) {
	_, ts := newTestServer(t, quickCfg())
	prog := `import(amazonec2).
import(pipeline).
ensemble(constant, 2).
maximize S in score(S).
C in totalcost(C) satisfies budget(mean, 40).
`
	resp, body := postJSON(t, ts.URL+"/v1/runs", RunRequest{SubmitRequest: SubmitRequest{Program: prog}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("run submission of ensemble program: status %d, want 400; body: %s", resp.StatusCode, body)
	}
}

// TestAdaptiveJobStatsAndMetrics covers the adaptive-precision wiring end to
// end: an adaptive job solves to the same plan quality as the fixed job, its
// result carries per-job world counters, the two share no cache entry (the
// job key includes the flag), and /metrics exports the cumulative
// worlds_evaluated_total / worlds_saved_total counters.
func TestAdaptiveJobStatsAndMetrics(t *testing.T) {
	// The evaluation cache is disabled so the adaptive solve evaluates live:
	// complete cached evaluations are shared between fixed and adaptive
	// engines (they are bit-identical), which would leave the adaptive path
	// nothing to run.
	cfg := quickCfg()
	cfg.EvalCacheCapacity = -1
	_, ts := newTestServer(t, cfg)

	req := SubmitRequest{
		Workflow: "pipeline",
		Deadline: &PctBound{Percentile: 0.9, Value: 40000},
	}
	fixed := waitForState(t, ts, submit(t, ts, req, http.StatusAccepted).ID, JobDone, 30*time.Second)
	var fixedRes PlanResult
	if err := json.Unmarshal(fixed.Result, &fixedRes); err != nil {
		t.Fatal(err)
	}
	if fixedRes.WorldsEvaluated != 0 || fixedRes.WorldsSaved != 0 {
		t.Fatalf("fixed-precision solve reported adaptive stats: %+v", fixedRes)
	}

	on := true
	req.Adaptive = &on
	adaptive := waitForState(t, ts, submit(t, ts, req, http.StatusAccepted).ID, JobDone, 30*time.Second)
	if adaptive.Cached {
		t.Fatal("adaptive job hit the fixed job's cache entry: the key must include the flag")
	}
	var adRes PlanResult
	if err := json.Unmarshal(adaptive.Result, &adRes); err != nil {
		t.Fatal(err)
	}
	if adRes.WorldsEvaluated <= 0 {
		t.Fatalf("adaptive solve ran no worlds on the adaptive path: %+v", adRes)
	}
	if adRes.WorldsSaved < 0 {
		t.Fatalf("negative worlds saved: %+v", adRes)
	}
	if adRes.Feasible != fixedRes.Feasible || adRes.Objective != fixedRes.Objective {
		t.Fatalf("adaptive plan quality diverged: fixed (feasible=%v, obj=%v) adaptive (feasible=%v, obj=%v)",
			fixedRes.Feasible, fixedRes.Objective, adRes.Feasible, adRes.Objective)
	}

	var m struct {
		WorldsEvaluatedTotal int64 `json:"worlds_evaluated_total"`
		WorldsSavedTotal     int64 `json:"worlds_saved_total"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if m.WorldsEvaluatedTotal != adRes.WorldsEvaluated || m.WorldsSavedTotal != adRes.WorldsSaved {
		t.Fatalf("metrics totals (%d, %d) != job stats (%d, %d)",
			m.WorldsEvaluatedTotal, m.WorldsSavedTotal, adRes.WorldsEvaluated, adRes.WorldsSaved)
	}
}
