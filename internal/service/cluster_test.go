package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

// testNode is one member of an in-process cluster bound to a real loopback
// listener (peer forwarding needs routable URLs, so httptest alone won't do).
type testNode struct {
	srv *Server
	url string
}

// newTestCluster starts n decod nodes that know each other via a static peer
// list. mutate, when non-nil, adjusts each node's config before start.
func newTestCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) []*testNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	nodes := make([]*testNode, n)
	for i := range nodes {
		cfg := quickCfg()
		cfg.Self = urls[i]
		cfg.Peers = append([]string(nil), urls...)
		cfg.QueueDepth = 64
		if mutate != nil {
			mutate(i, &cfg)
		}
		srv := New(cfg)
		go srv.Serve(listeners[i])
		nodes[i] = &testNode{srv: srv, url: urls[i]}
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, nd := range nodes {
			_ = nd.srv.Shutdown(ctx)
		}
	})
	return nodes
}

func submitTo(t *testing.T, url string, req SubmitRequest, headers map[string]string) (JobView, int) {
	t.Helper()
	b, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return v, resp.StatusCode
}

func waitDoneOn(t *testing.T, url, id string, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v JobView
		if code := getJSON(t, url+"/v1/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("get %s: status %d", id, code)
		}
		if v.State == JobDone {
			return v
		}
		if v.State.terminal() {
			t.Fatalf("job %s on %s reached %q: %s", id, url, v.State, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s on %s stuck in %q", id, url, v.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func metricsOf(t *testing.T, url string) Snapshot {
	t.Helper()
	var s Snapshot
	if code := getJSON(t, url+"/metrics", &s); code != http.StatusOK {
		t.Fatalf("metrics on %s: status %d", url, code)
	}
	return s
}

// clusterRequest is a small, fast problem whose key is stable across nodes.
func clusterRequest(seed int64) SubmitRequest {
	return SubmitRequest{
		Workflow: "pipeline",
		Seed:     seed,
		Deadline: &PctBound{Percentile: 0.9, Value: 40000},
	}
}

// ownerIndex finds which node owns the request's job key.
func ownerIndex(t *testing.T, nodes []*testNode, req SubmitRequest) int {
	t.Helper()
	mgr := nodes[0].srv.Manager()
	key, err := mgr.JobKeyFor(req)
	if err != nil {
		t.Fatal(err)
	}
	owner := mgr.Ring().Owner(key)
	for i, nd := range nodes {
		if nd.url == owner {
			return i
		}
	}
	t.Fatalf("owner %q is not a cluster member", owner)
	return -1
}

// nonOwnerIndex returns some node that does NOT own the request's key.
func nonOwnerIndex(t *testing.T, nodes []*testNode, req SubmitRequest) int {
	return (ownerIndex(t, nodes, req) + 1) % len(nodes)
}

// TestClusterForwardsToOwnerAndSharesCache pins the sharded-cache contract:
// the same problem submitted through every node is computed exactly once
// cluster-wide — the owner solves and caches, everyone else forwards and is
// answered from the owner's cache (a cross-shard hit).
func TestClusterForwardsToOwnerAndSharesCache(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	req := clusterRequest(3)
	own := ownerIndex(t, nodes, req)

	var docs [][]byte
	for i, nd := range nodes {
		v, code := submitTo(t, nd.url, req, nil)
		if code != http.StatusOK && code != http.StatusAccepted {
			t.Fatalf("submit via node %d: status %d", i, code)
		}
		done := v
		if v.State != JobDone {
			done = waitDoneOn(t, nd.url, v.ID, 60*time.Second)
		}
		docs = append(docs, done.Result)
		if i != own && !done.Remote && !done.Coalesced {
			t.Errorf("node %d (non-owner) reports remote=%v coalesced=%v; want the owner's result", i, done.Remote, done.Coalesced)
		}
	}
	for i := 1; i < len(docs); i++ {
		if !bytes.Equal(docs[0], docs[i]) {
			t.Fatalf("node %d returned a different document:\n%s\nvs\n%s", i, docs[0], docs[i])
		}
	}

	var solves, forwards, crossHits int64
	for _, nd := range nodes {
		s := metricsOf(t, nd.url)
		solves += s.SolvesTotal
		forwards += s.ForwardsTotal
		crossHits += s.CrossShardHits
	}
	if solves != 1 {
		t.Errorf("cluster-wide solves = %d, want exactly 1", solves)
	}
	// Both non-owner submissions forward; at least the later one must find
	// the plan already in the owner's cache. (Whether the earlier one does
	// depends on whether the owner's own submission came first.)
	if forwards != 2 || crossHits < 1 {
		t.Errorf("forwards = %d, cross-shard hits = %d, want 2 forwards and >= 1 hit", forwards, crossHits)
	}
}

// TestClusterStormCoalesces drives an identical-key storm at one node and
// checks the cluster computes the plan once, with concurrent duplicates
// coalesced or answered from cache.
func TestClusterStormCoalesces(t *testing.T) {
	nodes := newTestCluster(t, 3, func(i int, cfg *Config) {
		cfg.Workers = 4
		cfg.QueueDepth = 128
	})
	req := clusterRequest(11)
	entry := nodes[nonOwnerIndex(t, nodes, req)]

	const storm = 24
	var wg sync.WaitGroup
	ids := make([]string, storm)
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, code := submitTo(t, entry.url, req, nil)
			if code != http.StatusOK && code != http.StatusAccepted {
				t.Errorf("storm submit %d: status %d", i, code)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if id != "" {
			waitDoneOn(t, entry.url, id, 60*time.Second)
		}
	}

	var solves, coalesced int64
	for _, nd := range nodes {
		s := metricsOf(t, nd.url)
		solves += s.SolvesTotal
		coalesced += s.CoalescedTotal
	}
	if solves != 1 {
		t.Errorf("storm of %d identical jobs caused %d solves, want 1", storm, solves)
	}
	if coalesced == 0 {
		t.Error("storm produced no coalesced jobs")
	}
}

// TestClusterFallbackWhenOwnerUnreachable kills a key's owner and checks the
// surviving node falls back to local computation instead of failing the job.
func TestClusterFallbackWhenOwnerUnreachable(t *testing.T) {
	// Build a 2-node membership but only start node 0; node 1's address is a
	// listener we close immediately (connection refused).
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + dead.Addr().String()
	dead.Close()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	selfURL := "http://" + l.Addr().String()
	cfg := quickCfg()
	cfg.Self = selfURL
	cfg.Peers = []string{selfURL, deadURL}
	srv := New(cfg)
	go srv.Serve(l)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})

	// Find a request owned by the dead node.
	mgr := srv.Manager()
	var req SubmitRequest
	for seed := int64(1); ; seed++ {
		req = clusterRequest(seed)
		key, err := mgr.JobKeyFor(req)
		if err != nil {
			t.Fatal(err)
		}
		if mgr.Ring().Owner(key) == deadURL {
			break
		}
		if seed > 100 {
			t.Fatal("no seed in 1..100 hashed to the dead peer")
		}
	}

	v, code := submitTo(t, selfURL, req, nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	done := waitDoneOn(t, selfURL, v.ID, 60*time.Second)
	if done.Remote {
		t.Error("job reported remote though the owner is dead")
	}
	s := metricsOf(t, selfURL)
	if s.ForwardFailures == 0 {
		t.Error("no forward failure recorded")
	}
	if s.SolvesTotal == 0 {
		t.Error("no local fallback solve recorded")
	}
}

// TestClusterDrainHandsBackForwardedWork pins the drain contract of the
// graceful-drain satellite: when the owner is draining it refuses forwarded
// work with 503 and the forwarding node finishes the job locally; meanwhile
// the draining node completes everything it accepted — an in-flight managed
// run and queued forwarded jobs — and drops nothing silently.
func TestClusterDrainHandsBackForwardedWork(t *testing.T) {
	nodes := newTestCluster(t, 2, func(i int, cfg *Config) {
		cfg.Workers = 1
		cfg.QueueDepth = 64
	})

	// A request owned by node 1, which we will drain.
	var req SubmitRequest
	for seed := int64(1); ; seed++ {
		req = clusterRequest(seed)
		if ownerIndex(t, nodes, req) == 1 {
			break
		}
		if seed > 100 {
			t.Fatal("no seed hashed to node 1")
		}
	}

	// Occupy node 1 with an in-flight managed run and park a forwarded job
	// behind it, then drain. The drain must finish both.
	runBody, _ := json.Marshal(RunRequest{SubmitRequest: SubmitRequest{
		Workflow: "pipeline",
		Deadline: &PctBound{Percentile: 0.9, Value: 40000},
		Iters:    2000, // ~600ms execution: reliably in flight when we drain
	}})
	resp, err := http.Post(nodes[1].url+"/v1/runs", "application/json", bytes.NewReader(runBody))
	if err != nil {
		t.Fatal(err)
	}
	var runView JobView
	_ = json.NewDecoder(resp.Body).Decode(&runView)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("run submit: status %d", resp.StatusCode)
	}
	waitForStateOn(t, nodes[1].url, runView.ID, JobRunning, 30*time.Second)

	fwd, code := submitTo(t, nodes[0].url, req, nil) // forwarded to busy node 1
	if code != http.StatusAccepted {
		t.Fatalf("forwarded submit: status %d", code)
	}

	// Give node 0's worker a moment to put the forwarded job on node 1's
	// queue (behind the running managed run), then drain node 1.
	time.Sleep(200 * time.Millisecond)
	drainCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := nodes[1].srv.Shutdown(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The managed run completed during the drain.
	after, err := nodes[1].srv.Manager().Get(runView.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.State != JobDone || after.Result == nil {
		t.Fatalf("managed run after drain = %q (%s), want done", after.State, after.Error)
	}
	// Nothing on the drained node was dropped: every retained job is done.
	for _, v := range nodes[1].srv.Manager().List() {
		if !v.State.terminal() || v.State == JobFailed {
			t.Errorf("job %s on drained node is %q", v.ID, v.State)
		}
	}

	// The forwarding node's job still completes — either node 1 answered it
	// before refusing new work, or node 0 computed it locally after the 503.
	done := waitDoneOn(t, nodes[0].url, fwd.ID, 60*time.Second)
	if done.Result == nil {
		t.Fatal("forwarded job finished without a result")
	}

	// A fresh submission of a node-1-owned key now falls back to local
	// computation on node 0 (the owner refuses with 503).
	var req2 SubmitRequest
	for seed := int64(101); ; seed++ {
		req2 = clusterRequest(seed)
		if ownerIndex(t, nodes, req2) == 1 {
			break
		}
		if seed > 300 {
			t.Fatal("no seed hashed to node 1")
		}
	}
	v2, code := submitTo(t, nodes[0].url, req2, nil)
	if code != http.StatusAccepted {
		t.Fatalf("post-drain submit: status %d", code)
	}
	done2 := waitDoneOn(t, nodes[0].url, v2.ID, 60*time.Second)
	if done2.Remote {
		t.Error("post-drain job reported remote though the owner is draining")
	}
}

// waitForStateOn is waitForState against an arbitrary base URL.
func waitForStateOn(t *testing.T, url, id string, want JobState, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v JobView
		if code := getJSON(t, url+"/v1/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("get %s: status %d", id, code)
		}
		if v.State == want {
			return v
		}
		if v.State.terminal() {
			t.Fatalf("job %s reached %q (%s), want %q", id, v.State, v.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", id, v.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTenantQuotaRejects drives one tenant over its token bucket and checks
// the 429 surface plus the quota_rejected counter, while a second tenant
// stays unaffected.
func TestTenantQuotaRejects(t *testing.T) {
	cfg := quickCfg()
	cfg.TenantRate = 0.001 // effectively no refill within the test
	cfg.TenantBurst = 2
	cfg.QueueDepth = 64
	_, ts := newTestServer(t, cfg)

	req := func(tenant string, seed int64) SubmitRequest {
		r := clusterRequest(seed)
		r.Tenant = tenant
		return r
	}
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", req("alice", int64(i+1)))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("in-burst submit %d: status %d, body %s", i, resp.StatusCode, body)
		}
	}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", req("alice", 3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, body %s", resp.StatusCode, body)
	}
	// bob has his own bucket.
	resp, body = postJSON(t, ts.URL+"/v1/jobs", req("bob", 4))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("independent tenant: status %d, body %s", resp.StatusCode, body)
	}

	var s Snapshot
	getJSON(t, ts.URL+"/metrics", &s)
	if s.QuotaRejected != 1 {
		t.Errorf("quota_rejected = %d, want 1", s.QuotaRejected)
	}
	if s.Tenants["alice"].Submitted != 2 || s.Tenants["bob"].Submitted != 1 {
		t.Errorf("tenant submitted counts: %+v", s.Tenants)
	}
}

// TestRequestIDPropagation checks the trace ID surface: a provided
// X-Request-Id is echoed in the job view, and absent one a random ID is
// minted.
func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, quickCfg())

	v, code := submitTo(t, ts.URL, clusterRequest(21), map[string]string{"X-Request-Id": "trace-me-42"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if v.RequestID != "trace-me-42" {
		t.Errorf("request_id = %q, want the provided header", v.RequestID)
	}

	v2, _ := submitTo(t, ts.URL, clusterRequest(22), nil)
	if v2.RequestID == "" || v2.RequestID == v.RequestID {
		t.Errorf("generated request_id = %q, want a fresh non-empty ID", v2.RequestID)
	}
}

// TestRequestBodyCap pins the hardening satellite: an oversized submission
// body is refused with 413, not read to completion.
func TestRequestBodyCap(t *testing.T) {
	cfg := quickCfg()
	cfg.MaxRequestBytes = 1024
	_, ts := newTestServer(t, cfg)

	big := SubmitRequest{Program: "% " + string(bytes.Repeat([]byte{'x'}, 4096)) + "\nminimize C in totalcost(C)."}
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

// TestFairSchedulingUnderSaturation builds a backlog for one tenant behind
// a blocked worker, then submits a second tenant's job and checks it is not
// starved behind the backlog when the worker starts draining.
func TestFairSchedulingUnderSaturation(t *testing.T) {
	cfg := quickCfg()
	cfg.Workers = 1
	cfg.QueueDepth = 64
	srv, ts := newTestServer(t, cfg)

	// Park the single worker on a slow blocker so a real backlog can form
	// (solves are CPU-bound, so without this the queue drains as fast as the
	// test can submit).
	blocker := slowRequest(1)
	blocker.Tenant = "hog"
	bv := submit(t, ts, blocker, http.StatusAccepted)
	waitForState(t, ts, bv.ID, JobRunning, 30*time.Second)

	// Backlog: 7 more hog jobs, then one job from a second tenant.
	var hogIDs []string
	for i := 0; i < 7; i++ {
		r := clusterRequest(int64(100 + i))
		r.Tenant = "hog"
		v := submit(t, ts, r, http.StatusAccepted)
		hogIDs = append(hogIDs, v.ID)
	}
	r := clusterRequest(500)
	r.Tenant = "mouse"
	mouse := submit(t, ts, r, http.StatusAccepted)

	// Release the worker, let everything drain, then compare server-side
	// dispatch timestamps (polling for the mouse's completion is too coarse:
	// quick jobs finish faster than a poll interval).
	if resp, _ := http.Post(ts.URL+"/v1/jobs/"+bv.ID+"/cancel", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel blocker: status %d", resp.StatusCode)
	}
	mv := waitForState(t, ts, mouse.ID, JobDone, 60*time.Second)
	for _, id := range hogIDs {
		waitForState(t, ts, id, JobDone, 60*time.Second)
	}

	// Fair scheduling serves the mouse after at most one hog job from the
	// backlog (the first dequeue may tie-break to the hog): almost all of the
	// backlog must have been dispatched after the mouse.
	before := 0
	for _, id := range hogIDs {
		v, err := srv.Manager().Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.Started != nil && mv.Started != nil && v.Started.Before(*mv.Started) {
			before++
		}
	}
	if before > 2 {
		t.Errorf("%d of 7 backlogged hog jobs were dispatched before the mouse's single job; fair queue should have served the mouse after ~1 hog job", before)
	}

	var s Snapshot
	getJSON(t, ts.URL+"/metrics", &s)
	if s.Tenants["hog"].Done == 0 && s.Tenants["hog"].QueueDepth == 0 {
		t.Errorf("tenant series missing hog: %+v", s.Tenants)
	}
	if s.Tenants["mouse"].Done != 1 {
		t.Errorf("mouse done = %d, want 1", s.Tenants["mouse"].Done)
	}
}

// TestMetricsGauges checks the new queue-depth and worker-utilization gauges
// exist and move.
func TestMetricsGauges(t *testing.T) {
	cfg := quickCfg()
	cfg.Workers = 1
	cfg.QueueDepth = 16
	_, ts := newTestServer(t, cfg)

	// Park one slow job on the single worker and queue two more behind it.
	running := submit(t, ts, slowRequest(1), http.StatusAccepted)
	waitForState(t, ts, running.ID, JobRunning, 30*time.Second)
	q1 := submit(t, ts, slowRequest(2), http.StatusAccepted)
	q2 := submit(t, ts, slowRequest(3), http.StatusAccepted)

	var s Snapshot
	getJSON(t, ts.URL+"/metrics", &s)
	if s.Workers != 1 || s.WorkersBusy != 1 || s.WorkerUtilization != 1 {
		t.Errorf("worker gauges = %d/%d (util %v), want 1/1 (1)", s.WorkersBusy, s.Workers, s.WorkerUtilization)
	}
	if s.QueueDepth != 2 {
		t.Errorf("queue_depth = %d, want 2", s.QueueDepth)
	}
	if s.Tenants[DefaultTenant].QueueDepth != 2 {
		t.Errorf("tenant queue_depth = %d, want 2", s.Tenants[DefaultTenant].QueueDepth)
	}

	for _, id := range []string{running.ID, q1.ID, q2.ID} {
		http.Post(ts.URL+"/v1/jobs/"+id+"/cancel", "", nil)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		getJSON(t, ts.URL+"/metrics", &s)
		if s.WorkersBusy == 0 && s.QueueDepth == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gauges did not return to zero: busy=%d depth=%d", s.WorkersBusy, s.QueueDepth)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
