// The plan cache makes decod idempotent over its hot working set: a
// provisioning plan is a pure function of (workflow structure, catalog,
// constraints, seed, iteration budget, search budget), so identical
// submissions are answered from memory without re-running the solver. Keys
// are content hashes of exactly those inputs — see (*Manager).jobKey.
package service

import (
	"container/list"
	"encoding/json"
	"sync"
	"sync/atomic"
)

// Cache is a content-addressed LRU cache of serialized plan results.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key string
	val json.RawMessage
}

// NewCache returns a cache holding at most capacity plans; capacity <= 0
// disables caching (every Get misses, Put is a no-op).
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached plan for key, counting a hit or a miss.
func (c *Cache) Get(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Recheck is Get for the dequeue-time re-lookup a job performs after
// waiting in the queue (the identical job ahead of it may have finished
// meanwhile). A present entry counts as a hit, but absence does not count as
// a miss — the submission already counted its miss at enqueue time, and one
// request should contribute at most one hit or one miss to the ratio.
func (c *Cache) Recheck(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.hits.Add(1)
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores a plan under key, evicting the least recently used entry when
// the cache is full.
func (c *Cache) Put(key string, val json.RawMessage) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
