package exp

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"deco/internal/calib"
)

// Table2Result reproduces Table 2: fitted I/O performance distributions per
// instance type.
type Table2Result struct {
	Calib *calib.Result
}

// calibSamples picks the probe count: the paper's 10,000, or 2,000 in
// quick mode.
func (e *Env) calibSamples() int {
	if e.Cfg.Quick {
		return 2000
	}
	return 10000
}

// Table2 runs the calibration pipeline and renders the fitted parameters.
func (e *Env) Table2(out io.Writer) (*Table2Result, error) {
	res, err := calib.Run(e.Cat, calib.Options{
		Samples: e.calibSamples(), Bins: 30, InstanceHourMinutes: 60,
	}, rand.New(rand.NewSource(e.Cfg.Seed)))
	if err != nil {
		return nil, err
	}
	if out != nil {
		fmt.Fprintln(out, "Table 2: parameters of I/O performance distributions (fitted from calibration)")
		fmt.Fprint(out, res.Table2())
	}
	return &Table2Result{Calib: res}, nil
}

// Fig6Result reproduces Figure 6: network performance dynamics of
// m1.medium — the time-series variance and the Normal fit of the histogram.
type Fig6Result struct {
	MaxVariancePct float64
	NormalFitMu    float64
	NormalFitSigma float64
	KSPass         bool
	HistogramAscii string
}

// Fig6 runs the experiment.
func (e *Env) Fig6(out io.Writer) (*Fig6Result, error) {
	cres, err := calib.Run(e.Cat, calib.Options{
		Samples: e.calibSamples(), Bins: 30, InstanceHourMinutes: 60,
	}, rand.New(rand.NewSource(e.Cfg.Seed+1)))
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{MaxVariancePct: cres.MaxVariancePct("m1.medium")}
	for _, rep := range cres.Reports {
		if rep.Type == "m1.medium" {
			res.NormalFitMu = rep.NetNormal.Mu
			res.NormalFitSigma = rep.NetNormal.Sigma
			res.KSPass = rep.NetKSPass
		}
	}
	h, err := cres.NetHistogram("m1.medium", 15)
	if err != nil {
		return nil, err
	}
	res.HistogramAscii = h.Ascii(40)
	if out != nil {
		fmt.Fprintln(out, "Figure 6: network performance dynamics of m1.medium")
		fmt.Fprintf(out, "(a) max deviation from mean across the series: %.1f%%\n", res.MaxVariancePct)
		fmt.Fprintf(out, "(b) Normal fit mu=%.1f sigma=%.1f MB/s, KS accepts: %v\n", res.NormalFitMu, res.NormalFitSigma, res.KSPass)
		fmt.Fprint(out, res.HistogramAscii)
	}
	return res, nil
}

// Fig7Result reproduces Figure 7: network histograms between instance-type
// pairs. The m1.large↔m1.large link is faster and tighter than the
// m1.medium↔m1.large link, which behaves like its weaker endpoint.
type Fig7Result struct {
	LargeLargeMean float64
	LargeLargeCV   float64
	MixedMean      float64
	MixedCV        float64
}

// Fig7 runs the experiment.
func (e *Env) Fig7(out io.Writer) (*Fig7Result, error) {
	rng := rand.New(rand.NewSource(e.Cfg.Seed + 2))
	ll, err := calib.LinkHistogram(e.Cat, "m1.large", "m1.large", e.calibSamples(), 20, rng)
	if err != nil {
		return nil, err
	}
	mx, err := calib.LinkHistogram(e.Cat, "m1.medium", "m1.large", e.calibSamples(), 20, rng)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{
		LargeLargeMean: ll.Mean(), LargeLargeCV: math.Sqrt(ll.Var()) / ll.Mean(),
		MixedMean: mx.Mean(), MixedCV: math.Sqrt(mx.Var()) / mx.Mean(),
	}
	if out != nil {
		fmt.Fprintln(out, "Figure 7: network performance histograms by endpoint pair")
		fmt.Fprintf(out, "(a) m1.large <-> m1.large:   mean %.1f MB/s, cv %.3f\n", res.LargeLargeMean, res.LargeLargeCV)
		fmt.Fprint(out, ll.Ascii(40))
		fmt.Fprintf(out, "(b) m1.medium <-> m1.large:  mean %.1f MB/s, cv %.3f\n", res.MixedMean, res.MixedCV)
		fmt.Fprint(out, mx.Ascii(40))
	}
	return res, nil
}
