package exp

import (
	"fmt"
	"io"
	"time"

	"deco/internal/device"
	"deco/internal/opt"
	"deco/internal/probir"
	"deco/internal/wfgen"
	"deco/internal/wlog"
)

// SpeedupRow is one workload of the §6.3 parallel-solver comparison. Beam is
// the solver's frontier width: the narrow-beam series (beam 2) keeps batches
// far smaller than the machine, the regime where only iteration-level
// (two-level) parallelism can fill the idle workers.
type SpeedupRow struct {
	Workload        string
	Tasks           int
	Beam            int
	Sequential      time.Duration
	Parallel        time.Duration
	TwoLevel        time.Duration
	Speedup         float64 // sequential / parallel
	TwoLevelSpeedup float64 // sequential / two-level
}

// SpeedupResult reproduces the §6.3.1/§6.3.2 device-speedup measurements:
// the same search run on the sequential (1-thread CPU baseline), the
// state-parallel (one block per state) and the two-level (block per state,
// thread per Monte-Carlo iteration) devices. The paper reports 12X/10X/20X
// for Montage-1/4/8 and 36X/22X/18X for 20/100/1000-task ensembles against
// a 6-core CPU; our ceiling is the host's core count.
type SpeedupResult struct {
	ParallelBlocks int
	Rows           []SpeedupRow
}

// timedSearch runs the scheduling search on the given device and returns
// elapsed wall-clock time. beam <= 0 keeps the default frontier width.
func (e *Env) timedSearch(wName string, nTasks int, dev device.Device, seed int64, beam int) (time.Duration, int, error) {
	w, err := wfgen.BySize(wfgen.AppMontage, nTasks, randFor(seed))
	if err != nil {
		return 0, 0, err
	}
	if wName != "" {
		w.Name = wName
	}
	tbl, err := e.Est.BuildTable(w)
	if err != nil {
		return 0, 0, err
	}
	deadline, err := e.Deadline(w, "medium")
	if err != nil {
		return 0, 0, err
	}
	cons := []wlog.Constraint{{Kind: "deadline", Percentile: 0.96, Bound: deadline}}
	eval, err := probir.NewNative(w, tbl, e.Prices, probir.GoalCost, cons, e.Cfg.Iters)
	if err != nil {
		return 0, 0, err
	}
	space := opt.NewScheduleSpace(w, eval)
	so := opt.DefaultOptions(dev)
	so.MaxStates = e.Cfg.SearchBudget
	so.Seed = seed
	if beam > 0 {
		so.BeamWidth = beam
	}
	start := time.Now()
	res, err := opt.Search(space, so)
	if err != nil {
		return 0, 0, err
	}
	_ = res
	return time.Since(start), w.Len(), nil
}

// speedupRow measures one (size, beam) workload on all three devices.
func (e *Env) speedupRow(n, beam int) (SpeedupRow, error) {
	seqT, tasks, err := e.timedSearch("", n, device.Sequential{}, e.Cfg.Seed+51, beam)
	if err != nil {
		return SpeedupRow{}, err
	}
	parT, _, err := e.timedSearch("", n, device.Parallel{}, e.Cfg.Seed+51, beam)
	if err != nil {
		return SpeedupRow{}, err
	}
	twoT, _, err := e.timedSearch("", n, device.TwoLevel{}, e.Cfg.Seed+51, beam)
	if err != nil {
		return SpeedupRow{}, err
	}
	name := fmt.Sprintf("montage-%dt", tasks)
	if beam > 0 {
		name = fmt.Sprintf("%s-beam%d", name, beam)
	}
	row := SpeedupRow{
		Workload: name, Tasks: tasks, Beam: beam,
		Sequential: seqT, Parallel: parT, TwoLevel: twoT,
	}
	if parT > 0 {
		row.Speedup = float64(seqT) / float64(parT)
	}
	if twoT > 0 {
		row.TwoLevelSpeedup = float64(seqT) / float64(twoT)
	}
	return row, nil
}

// Speedup runs the comparison for the Montage scales: the default-beam
// series, then the narrow-beam (beam 2) series where state-level parallelism
// starves and the two-level device shows its advantage.
func (e *Env) Speedup(out io.Writer) (*SpeedupResult, error) {
	sizes := []int{30, 120, 400}
	if e.Cfg.Quick {
		sizes = []int{30, 120}
	}
	res := &SpeedupResult{ParallelBlocks: device.Parallel{}.Blocks()}
	for _, n := range sizes {
		row, err := e.speedupRow(n, 0)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	narrowSizes := sizes
	if e.Cfg.Quick {
		narrowSizes = sizes[:1]
	}
	for _, n := range narrowSizes {
		row, err := e.speedupRow(n, 2)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	if out != nil {
		fmt.Fprintf(out, "Solver speedup: parallel / two-level (%d blocks) vs sequential device\n", res.ParallelBlocks)
		fmt.Fprintf(out, "%-22s %-7s %-12s %-12s %-12s %-9s %s\n", "workload", "tasks", "sequential", "parallel", "twolevel", "speedup", "2L speedup")
		for _, r := range res.Rows {
			fmt.Fprintf(out, "%-22s %-7d %-12s %-12s %-12s %-9s %.1fx\n",
				r.Workload, r.Tasks,
				r.Sequential.Round(time.Millisecond), r.Parallel.Round(time.Millisecond), r.TwoLevel.Round(time.Millisecond),
				fmt.Sprintf("%.1fx", r.Speedup), r.TwoLevelSpeedup)
		}
	}
	return res, nil
}

// OverheadRow is one workflow scale of the optimization-overhead
// measurement.
type OverheadRow struct {
	Tasks      int
	Total      time.Duration
	PerTask    time.Duration
	PerTaskMs  float64
	StatesEval int
}

// OverheadResult reproduces the paper's headline overhead claim: "the
// optimization overhead of Deco takes 4.3-63.17 ms per task for a workflow
// with 20-1000 tasks".
type OverheadResult struct {
	Rows []OverheadRow
}

// Overhead measures end-to-end optimization time per task across workflow
// scales.
func (e *Env) Overhead(out io.Writer) (*OverheadResult, error) {
	sizes := []int{20, 100, 1000}
	if e.Cfg.Quick {
		sizes = []int{20, 100}
	}
	res := &OverheadResult{}
	for _, n := range sizes {
		w, err := wfgen.BySize(wfgen.AppMontage, n, randFor(e.Cfg.Seed+61))
		if err != nil {
			return nil, err
		}
		tbl, err := e.Est.BuildTable(w)
		if err != nil {
			return nil, err
		}
		deadline, err := e.Deadline(w, "medium")
		if err != nil {
			return nil, err
		}
		cons := []wlog.Constraint{{Kind: "deadline", Percentile: 0.96, Bound: deadline}}
		eval, err := probir.NewNative(w, tbl, e.Prices, probir.GoalCost, cons, e.Cfg.Iters)
		if err != nil {
			return nil, err
		}
		space := opt.NewScheduleSpace(w, eval)
		so := opt.DefaultOptions(e.Cfg.Device)
		so.MaxStates = e.Cfg.SearchBudget
		so.Seed = e.Cfg.Seed + 62
		start := time.Now()
		sres, err := opt.Search(space, so)
		if err != nil {
			return nil, err
		}
		total := time.Since(start)
		perTask := total / time.Duration(w.Len())
		res.Rows = append(res.Rows, OverheadRow{
			Tasks: w.Len(), Total: total, PerTask: perTask,
			PerTaskMs:  float64(perTask) / float64(time.Millisecond),
			StatesEval: sres.Evaluated,
		})
	}
	if out != nil {
		fmt.Fprintln(out, "Optimization overhead per task (paper: 4.3-63.17 ms/task for 20-1000 tasks)")
		fmt.Fprintf(out, "%-7s %-12s %-12s %s\n", "tasks", "total", "ms/task", "states")
		for _, r := range res.Rows {
			fmt.Fprintf(out, "%-7d %-12s %-12.2f %d\n", r.Tasks, r.Total.Round(time.Millisecond), r.PerTaskMs, r.StatesEval)
		}
	}
	return res, nil
}
