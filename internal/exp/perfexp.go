package exp

import (
	"fmt"
	"io"
	"time"

	"deco/internal/device"
	"deco/internal/opt"
	"deco/internal/probir"
	"deco/internal/wfgen"
	"deco/internal/wlog"
)

// SpeedupRow is one workload of the §6.3 parallel-solver comparison.
type SpeedupRow struct {
	Workload   string
	Tasks      int
	Sequential time.Duration
	Parallel   time.Duration
	Speedup    float64
}

// SpeedupResult reproduces the §6.3.1/§6.3.2 device-speedup measurements:
// the same search run on the sequential (1-thread CPU baseline) and
// parallel (GPU-model) devices. The paper reports 12X/10X/20X for
// Montage-1/4/8 and 36X/22X/18X for 20/100/1000-task ensembles against a
// 6-core CPU; our ceiling is the host's core count.
type SpeedupResult struct {
	ParallelBlocks int
	Rows           []SpeedupRow
}

// timedSearch runs the scheduling search on the given device and returns
// elapsed wall-clock time.
func (e *Env) timedSearch(wName string, nTasks int, dev device.Device, seed int64) (time.Duration, int, error) {
	w, err := wfgen.BySize(wfgen.AppMontage, nTasks, randFor(seed))
	if err != nil {
		return 0, 0, err
	}
	if wName != "" {
		w.Name = wName
	}
	tbl, err := e.Est.BuildTable(w)
	if err != nil {
		return 0, 0, err
	}
	deadline, err := e.Deadline(w, "medium")
	if err != nil {
		return 0, 0, err
	}
	cons := []wlog.Constraint{{Kind: "deadline", Percentile: 0.96, Bound: deadline}}
	eval, err := probir.NewNative(w, tbl, e.Prices, probir.GoalCost, cons, e.Cfg.Iters)
	if err != nil {
		return 0, 0, err
	}
	space := opt.NewScheduleSpace(w, eval)
	so := opt.DefaultOptions(dev)
	so.MaxStates = e.Cfg.SearchBudget
	so.Seed = seed
	start := time.Now()
	res, err := opt.Search(space, so)
	if err != nil {
		return 0, 0, err
	}
	_ = res
	return time.Since(start), w.Len(), nil
}

// Speedup runs the comparison for the Montage scales.
func (e *Env) Speedup(out io.Writer) (*SpeedupResult, error) {
	sizes := []int{30, 120, 400}
	if e.Cfg.Quick {
		sizes = []int{30, 120}
	}
	par := device.Parallel{}
	res := &SpeedupResult{ParallelBlocks: par.Blocks()}
	for _, n := range sizes {
		seqT, tasks, err := e.timedSearch("", n, device.Sequential{}, e.Cfg.Seed+51)
		if err != nil {
			return nil, err
		}
		parT, _, err := e.timedSearch("", n, par, e.Cfg.Seed+51)
		if err != nil {
			return nil, err
		}
		row := SpeedupRow{
			Workload: fmt.Sprintf("montage-%dt", tasks), Tasks: tasks,
			Sequential: seqT, Parallel: parT,
		}
		if parT > 0 {
			row.Speedup = float64(seqT) / float64(parT)
		}
		res.Rows = append(res.Rows, row)
	}
	if out != nil {
		fmt.Fprintf(out, "Solver speedup: parallel (%d blocks) vs sequential device\n", res.ParallelBlocks)
		fmt.Fprintf(out, "%-16s %-7s %-12s %-12s %s\n", "workload", "tasks", "sequential", "parallel", "speedup")
		for _, r := range res.Rows {
			fmt.Fprintf(out, "%-16s %-7d %-12s %-12s %.1fx\n", r.Workload, r.Tasks, r.Sequential.Round(time.Millisecond), r.Parallel.Round(time.Millisecond), r.Speedup)
		}
	}
	return res, nil
}

// OverheadRow is one workflow scale of the optimization-overhead
// measurement.
type OverheadRow struct {
	Tasks      int
	Total      time.Duration
	PerTask    time.Duration
	PerTaskMs  float64
	StatesEval int
}

// OverheadResult reproduces the paper's headline overhead claim: "the
// optimization overhead of Deco takes 4.3-63.17 ms per task for a workflow
// with 20-1000 tasks".
type OverheadResult struct {
	Rows []OverheadRow
}

// Overhead measures end-to-end optimization time per task across workflow
// scales.
func (e *Env) Overhead(out io.Writer) (*OverheadResult, error) {
	sizes := []int{20, 100, 1000}
	if e.Cfg.Quick {
		sizes = []int{20, 100}
	}
	res := &OverheadResult{}
	for _, n := range sizes {
		w, err := wfgen.BySize(wfgen.AppMontage, n, randFor(e.Cfg.Seed+61))
		if err != nil {
			return nil, err
		}
		tbl, err := e.Est.BuildTable(w)
		if err != nil {
			return nil, err
		}
		deadline, err := e.Deadline(w, "medium")
		if err != nil {
			return nil, err
		}
		cons := []wlog.Constraint{{Kind: "deadline", Percentile: 0.96, Bound: deadline}}
		eval, err := probir.NewNative(w, tbl, e.Prices, probir.GoalCost, cons, e.Cfg.Iters)
		if err != nil {
			return nil, err
		}
		space := opt.NewScheduleSpace(w, eval)
		so := opt.DefaultOptions(e.Cfg.Device)
		so.MaxStates = e.Cfg.SearchBudget
		so.Seed = e.Cfg.Seed + 62
		start := time.Now()
		sres, err := opt.Search(space, so)
		if err != nil {
			return nil, err
		}
		total := time.Since(start)
		perTask := total / time.Duration(w.Len())
		res.Rows = append(res.Rows, OverheadRow{
			Tasks: w.Len(), Total: total, PerTask: perTask,
			PerTaskMs:  float64(perTask) / float64(time.Millisecond),
			StatesEval: sres.Evaluated,
		})
	}
	if out != nil {
		fmt.Fprintln(out, "Optimization overhead per task (paper: 4.3-63.17 ms/task for 20-1000 tasks)")
		fmt.Fprintf(out, "%-7s %-12s %-12s %s\n", "tasks", "total", "ms/task", "states")
		for _, r := range res.Rows {
			fmt.Fprintf(out, "%-7d %-12s %-12.2f %d\n", r.Tasks, r.Total.Round(time.Millisecond), r.PerTaskMs, r.StatesEval)
		}
	}
	return res, nil
}
