package exp

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"deco/internal/cloud"
	"deco/internal/opt"
	"deco/internal/probir"
	"deco/internal/wlog"
)

// AblationResult collects the design-choice ablations DESIGN.md calls out:
// search strategy, Monte-Carlo budget, objective function, multi-start, and
// transformation granularity. Each section isolates one choice on the same
// scheduling problem.
type AblationResult struct {
	Search      []AblationSearchRow
	MCIters     []AblationMCRow
	Objective   []AblationObjectiveRow
	MultiStart  []AblationStartRow
	Granularity []AblationGranularityRow
}

// AblationSearchRow compares search strategies.
type AblationSearchRow struct {
	Strategy  string
	Cost      float64
	Feasible  bool
	Evaluated int
	Elapsed   time.Duration
}

// AblationMCRow measures Monte-Carlo budget vs estimate stability.
type AblationMCRow struct {
	Iters int
	// ProbErr is |P_est - P_ref| of the deadline satisfaction probability
	// against a high-iteration reference.
	ProbErr float64
	// EvalTime is the time of one state evaluation at this budget.
	EvalTime time.Duration
}

// AblationObjectiveRow compares the fractional Eq. 1 objective with the
// packed (hour-billed, transformation-aware) objective by realized cost.
type AblationObjectiveRow struct {
	Objective    string
	PlannedCost  float64
	RealizedCost float64
}

// AblationStartRow compares single-start (all-cheapest, the paper's Figure
// 5b initial state) with homogeneous multi-start.
type AblationStartRow struct {
	Starts   string
	Cost     float64
	Feasible bool
}

// AblationGranularityRow compares per-task and per-executable
// transformation groups.
type AblationGranularityRow struct {
	Granularity string
	Groups      int
	Cost        float64
	Evaluated   int
}

// ablationProblem builds the shared scheduling problem: Montage at the
// middle size, tight deadline, 96%.
func (e *Env) ablationProblem() (space *opt.ScheduleSpace, eval *probir.Native, deadline float64, err error) {
	w, err := e.Montage(e.MontageDegrees()[1])
	if err != nil {
		return nil, nil, 0, err
	}
	tbl, err := e.Est.BuildTable(w)
	if err != nil {
		return nil, nil, 0, err
	}
	deadline, err = e.Deadline(w, "tight")
	if err != nil {
		return nil, nil, 0, err
	}
	cons := []wlog.Constraint{{Kind: "deadline", Percentile: 0.96, Bound: deadline}}
	eval, err = probir.NewNative(w, tbl, e.Prices, probir.GoalCost, cons, e.Cfg.Iters)
	if err != nil {
		return nil, nil, 0, err
	}
	space = opt.NewPackedScheduleSpace(w, eval, tbl, e.Prices, cloud.USEast)
	return space, eval, deadline, nil
}

// Ablation runs all ablations.
func (e *Env) Ablation(out io.Writer) (*AblationResult, error) {
	res := &AblationResult{}
	space, eval, _, err := e.ablationProblem()
	if err != nil {
		return nil, err
	}
	w := space.W
	tbl := eval.Table

	// 1. Search strategy.
	for _, variant := range []struct {
		name  string
		astar bool
		beam  int
	}{
		{"generic", false, 8},
		{"generic-wide", false, 32},
		{"astar", true, 0},
	} {
		so := opt.DefaultOptions(e.Cfg.Device)
		so.MaxStates = e.Cfg.SearchBudget
		so.Seed = e.Cfg.Seed
		so.AStar = variant.astar
		if variant.beam > 0 {
			so.BeamWidth = variant.beam
		}
		start := time.Now()
		r, err := opt.Search(space, so)
		if err != nil {
			return nil, err
		}
		res.Search = append(res.Search, AblationSearchRow{
			Strategy: variant.name, Cost: r.BestEval.Value, Feasible: r.Feasible,
			Evaluated: r.Evaluated, Elapsed: time.Since(start),
		})
	}

	// 2. Monte-Carlo budget: estimate stability of the deadline probability
	// at the distribution's median — the point where the estimator's
	// variance is maximal (P(X<=mean) ≈ 0.5) and the feasibility decision is
	// hardest.
	config := make(opt.State, w.Len()) // all-cheapest
	msEval, err := probir.NewNative(w, tbl, e.Prices, probir.GoalMakespan, nil, 400)
	if err != nil {
		return nil, err
	}
	msEv, err := msEval.Evaluate(config, rand.New(rand.NewSource(e.Cfg.Seed+70)))
	if err != nil {
		return nil, err
	}
	probe := []wlog.Constraint{{Kind: "deadline", Percentile: 0.96, Bound: msEv.Value}}
	ref, err := probir.NewNative(w, tbl, e.Prices, probir.GoalCost, probe, 8000)
	if err != nil {
		return nil, err
	}
	refEv, err := ref.Evaluate(config, rand.New(rand.NewSource(e.Cfg.Seed+71)))
	if err != nil {
		return nil, err
	}
	for _, iters := range []int{10, 50, 100, 400} {
		n, err := probir.NewNative(w, tbl, e.Prices, probir.GoalCost, probe, iters)
		if err != nil {
			return nil, err
		}
		// Average the evaluation time over repetitions: a single flat-core
		// evaluation is microseconds, well inside timer noise. Each
		// repetition draws a fresh CRN base so the per-world sampling work
		// is actually redone.
		const reps = 16
		rng := rand.New(rand.NewSource(e.Cfg.Seed + 72))
		start := time.Now()
		ev, err := n.Evaluate(config, rng)
		if err != nil {
			return nil, err
		}
		for r := 1; r < reps; r++ {
			if _, err := n.Evaluate(config, rng); err != nil {
				return nil, err
			}
		}
		res.MCIters = append(res.MCIters, AblationMCRow{
			Iters:    iters,
			ProbErr:  math.Abs(ev.ConsProb[0] - refEv.ConsProb[0]),
			EvalTime: time.Since(start) / reps,
		})
	}

	// 3. Objective: fractional vs packed, judged by realized cost.
	for _, variant := range []struct {
		name   string
		packed bool
	}{{"fractional-eq1", false}, {"packed-hours", true}} {
		sp := opt.NewScheduleSpace(w, eval)
		if variant.packed {
			sp.CostFn = space.CostFn
		}
		so := opt.DefaultOptions(e.Cfg.Device)
		so.MaxStates = e.Cfg.SearchBudget
		so.Seed = e.Cfg.Seed + 73
		r, err := opt.Search(sp, so)
		if err != nil {
			return nil, err
		}
		plan, err := opt.Consolidate(w, r.Best, tbl, cloud.USEast)
		if err != nil {
			return nil, err
		}
		realized, _, _, err := e.runPlan(w, plan, e.Cfg.Seed+74)
		if err != nil {
			return nil, err
		}
		res.Objective = append(res.Objective, AblationObjectiveRow{
			Objective: variant.name, PlannedCost: r.BestEval.Value, RealizedCost: realized,
		})
	}

	// 4. Multi-start vs the single all-cheapest start.
	for _, variant := range []struct {
		name   string
		single bool
	}{{"single-start", true}, {"multi-start", false}} {
		sp := opt.NewPackedScheduleSpace(w, eval, tbl, e.Prices, cloud.USEast)
		if variant.single {
			sp.Init = make(opt.State, w.Len())
		}
		so := opt.DefaultOptions(e.Cfg.Device)
		so.MaxStates = e.Cfg.SearchBudget
		so.Seed = e.Cfg.Seed + 75
		r, err := opt.Search(sp, so)
		if err != nil {
			return nil, err
		}
		res.MultiStart = append(res.MultiStart, AblationStartRow{
			Starts: variant.name, Cost: r.BestEval.Value, Feasible: r.Feasible,
		})
	}

	// 5. Transformation granularity.
	for _, variant := range []struct {
		name   string
		groups [][]int
	}{
		{"per-task", opt.GroupPerTask(w)},
		{"per-executable", opt.GroupByExecutable(w)},
	} {
		sp := opt.NewPackedScheduleSpace(w, eval, tbl, e.Prices, cloud.USEast)
		sp.Groups = variant.groups
		so := opt.DefaultOptions(e.Cfg.Device)
		so.MaxStates = e.Cfg.SearchBudget
		so.Seed = e.Cfg.Seed + 76
		r, err := opt.Search(sp, so)
		if err != nil {
			return nil, err
		}
		res.Granularity = append(res.Granularity, AblationGranularityRow{
			Granularity: variant.name, Groups: len(variant.groups),
			Cost: r.BestEval.Value, Evaluated: r.Evaluated,
		})
	}

	if out != nil {
		fmt.Fprintln(out, "Ablation 1: search strategy (same problem, same budget)")
		fmt.Fprintf(out, "%-14s %-10s %-9s %-9s %s\n", "strategy", "cost $", "feasible", "states", "elapsed")
		for _, r := range res.Search {
			fmt.Fprintf(out, "%-14s %-10.4f %-9v %-9d %s\n", r.Strategy, r.Cost, r.Feasible, r.Evaluated, r.Elapsed.Round(time.Millisecond))
		}
		fmt.Fprintln(out, "\nAblation 2: Monte-Carlo budget vs estimate stability")
		fmt.Fprintf(out, "%-8s %-12s %s\n", "iters", "|P-Pref|", "eval time")
		for _, r := range res.MCIters {
			fmt.Fprintf(out, "%-8d %-12.4f %s\n", r.Iters, r.ProbErr, r.EvalTime.Round(time.Microsecond))
		}
		fmt.Fprintln(out, "\nAblation 3: objective function (judged by realized cost)")
		fmt.Fprintf(out, "%-16s %-12s %s\n", "objective", "planned $", "realized $")
		for _, r := range res.Objective {
			fmt.Fprintf(out, "%-16s %-12.4f %.4f\n", r.Objective, r.PlannedCost, r.RealizedCost)
		}
		fmt.Fprintln(out, "\nAblation 4: start states")
		fmt.Fprintf(out, "%-14s %-10s %s\n", "starts", "cost $", "feasible")
		for _, r := range res.MultiStart {
			fmt.Fprintf(out, "%-14s %-10.4f %v\n", r.Starts, r.Cost, r.Feasible)
		}
		fmt.Fprintln(out, "\nAblation 5: transformation granularity")
		fmt.Fprintf(out, "%-16s %-8s %-10s %s\n", "granularity", "groups", "cost $", "states")
		for _, r := range res.Granularity {
			fmt.Fprintf(out, "%-16s %-8d %-10.4f %d\n", r.Granularity, r.Groups, r.Cost, r.Evaluated)
		}
	}
	return res, nil
}
