package exp

import (
	"bytes"
	"strings"
	"testing"

	"deco/internal/ensemble"
)

func quickEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestNewEnvValidation(t *testing.T) {
	if _, err := NewEnv(Config{Runs: 0, Iters: 10}); err == nil {
		t.Error("zero runs accepted")
	}
	if _, err := NewEnv(Config{Runs: 10, Iters: 0}); err == nil {
		t.Error("zero iters accepted")
	}
}

func TestDeadlineSettingsOrdered(t *testing.T) {
	env := quickEnv(t)
	w, err := env.Montage(1)
	if err != nil {
		t.Fatal(err)
	}
	tight, _ := env.Deadline(w, "tight")
	medium, _ := env.Deadline(w, "medium")
	loose, _ := env.Deadline(w, "loose")
	if !(tight < medium && medium < loose) {
		t.Errorf("deadlines not ordered: %v %v %v", tight, medium, loose)
	}
	if _, err := env.Deadline(w, "weird"); err == nil {
		t.Error("unknown setting accepted")
	}
}

func TestFig1Shape(t *testing.T) {
	env := quickEnv(t)
	var buf bytes.Buffer
	res, err := env.Fig1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows %d, want 7 scenarios", len(res.Rows))
	}
	byName := map[string]Fig1Row{}
	for _, r := range res.Rows {
		byName[r.Config] = r
	}
	deco := byName["deco"]
	// Deco satisfies the deadline requirement.
	if !deco.Satisfies {
		t.Errorf("deco violates the deadline: %+v", deco)
	}
	// Among satisfying configurations Deco is cheapest (the Fig 1 claim).
	for name, r := range byName {
		if name == "deco" || !r.Satisfies {
			continue
		}
		if deco.AvgCost > r.AvgCost*1.02 {
			t.Errorf("deco $%.4f more expensive than satisfying %s $%.4f", deco.AvgCost, name, r.AvgCost)
		}
	}
	// Deco is dramatically cheaper than the most expensive configuration
	// (paper: 40% of m1.xlarge).
	if deco.AvgCost >= byName["m1.xlarge"].AvgCost {
		t.Errorf("deco %.4f should be below m1.xlarge %.4f", deco.AvgCost, byName["m1.xlarge"].AvgCost)
	}
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Error("rendering missing")
	}
}

func TestFig2Variance(t *testing.T) {
	env := quickEnv(t)
	var b2 bytes.Buffer
	res, err := env.Fig2(&b2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(env.MontageDegrees()) {
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// Quantiles ordered around 1.
		if !(r.Min <= r.P25 && r.P25 <= r.Med && r.Med <= r.P75 && r.P75 <= r.Max) {
			t.Errorf("%s: quantiles not ordered: %+v", r.Workflow, r)
		}
		if r.Min > 1 || r.Max < 1 {
			t.Errorf("%s: normalization broken: %+v", r.Workflow, r)
		}
		// The paper's point: variance is significant.
		if r.SpreadPct <= 0 {
			t.Errorf("%s: no spread", r.Workflow)
		}
	}
}

func TestTable2RecoversGroundTruth(t *testing.T) {
	env := quickEnv(t)
	var bt bytes.Buffer
	res, err := env.Table2(&bt)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range res.Calib.Reports {
		truth := env.Cat.Perf.SeqIO[rep.Type]
		if rel(rep.SeqGamma.Mean(), truth.Mean()) > 0.05 {
			t.Errorf("%s: seq mean %v vs %v", rep.Type, rep.SeqGamma.Mean(), truth.Mean())
		}
	}
}

func rel(a, b float64) float64 {
	if b == 0 {
		return a
	}
	d := a/b - 1
	if d < 0 {
		return -d
	}
	return d
}

func TestFig6Shape(t *testing.T) {
	env := quickEnv(t)
	var b6 bytes.Buffer
	res, err := env.Fig6(&b6)
	if err != nil {
		t.Fatal(err)
	}
	// §6.2: variance up to ~50%; Normal fit accepted.
	if res.MaxVariancePct < 30 {
		t.Errorf("max variance %v%% too small", res.MaxVariancePct)
	}
	if !res.KSPass {
		t.Error("Normal fit rejected for m1.medium network")
	}
	if rel(res.NormalFitMu, 75) > 0.05 {
		t.Errorf("fitted mu %v, truth 75", res.NormalFitMu)
	}
}

func TestFig7Shape(t *testing.T) {
	env := quickEnv(t)
	var b7 bytes.Buffer
	res, err := env.Fig7(&b7)
	if err != nil {
		t.Fatal(err)
	}
	if res.LargeLargeMean <= res.MixedMean {
		t.Errorf("large-large mean %v should beat mixed %v", res.LargeLargeMean, res.MixedMean)
	}
	if res.LargeLargeCV >= res.MixedCV {
		t.Errorf("large-large cv %v should be tighter than mixed %v", res.LargeLargeCV, res.MixedCV)
	}
}

func TestFig8Shape(t *testing.T) {
	env := quickEnv(t)
	var b8 bytes.Buffer
	res, err := env.Fig8(&b8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) == 0 {
		t.Fatal("no cells")
	}
	worse := 0
	for _, c := range res.Cells {
		// Deco never much more expensive than Autoscaling.
		if c.NormCost > 1.05 {
			worse++
		}
	}
	if worse > len(res.Cells)/3 {
		t.Errorf("deco beaten by autoscaling in %d/%d cells", worse, len(res.Cells))
	}
}

func TestFig9Shape(t *testing.T) {
	env := quickEnv(t)
	var b9 bytes.Buffer
	res, err := env.Fig9(&b9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) == 0 {
		t.Fatal("no cells")
	}
	for _, c := range res.Cells {
		// Deco's admission search never scores below SPSS (the Fig 9 claim:
		// "better than or the same scores as SPSS").
		if c.SPSSScore > 0 && c.DecoScore < c.SPSSScore-1e-9 {
			t.Errorf("%s %s: deco %v < spss %v", c.Kind, c.BudgetLabel, c.DecoScore, c.SPSSScore)
		}
		// SPSS's per-workflow cost exceeds Deco's (paper: ~1.4x).
		if c.CostRatio <= 1 {
			t.Errorf("%s: SPSS/Deco cost ratio %v should exceed 1", c.Kind, c.CostRatio)
		}
	}
	// At some mid budget Deco should strictly beat SPSS for at least one
	// ensemble type.
	strictly := 0
	for _, c := range res.Cells {
		if c.DecoScore > c.SPSSScore+1e-9 {
			strictly++
		}
	}
	if strictly == 0 {
		t.Error("Deco never strictly beat SPSS at any budget")
	}
	_ = ensemble.Kinds
}

func TestFig10Shape(t *testing.T) {
	env := quickEnv(t)
	var b10 bytes.Buffer
	res, err := env.Fig10(&b10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.A) != len(env.MontageDegrees()) || len(res.B) == 0 {
		t.Fatalf("rows a=%d b=%d", len(res.A), len(res.B))
	}
	for _, r := range res.A {
		if r.NormCost > 1.0+1e-9 {
			t.Errorf("%s: deco/heuristic %v > 1", r.Size, r.NormCost)
		}
	}
	// 10b: the heuristic degrades as the threshold shrinks, so Deco's
	// advantage is largest at the smallest threshold.
	first, last := res.B[0], res.B[len(res.B)-1]
	if first.Threshold >= last.Threshold {
		t.Fatal("threshold sweep not ascending")
	}
	if first.NormCost > last.NormCost+1e-9 {
		t.Errorf("advantage at threshold %v (%v) should be at least that at %v (%v)",
			first.Threshold, first.NormCost, last.Threshold, last.NormCost)
	}
}

func TestSpeedupShape(t *testing.T) {
	env := quickEnv(t)
	var bs bytes.Buffer
	res, err := env.Speedup(&bs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	narrow := 0
	for _, r := range res.Rows {
		if r.TwoLevel <= 0 {
			t.Errorf("%s: no two-level measurement", r.Workload)
		}
		if r.Beam > 0 {
			narrow++
		}
	}
	if narrow == 0 {
		t.Error("no narrow-beam rows in the series")
	}
	if res.ParallelBlocks <= 1 {
		t.Skip("single-core host: no parallel speedup to measure")
	}
	for _, r := range res.Rows {
		if r.Speedup < 1.0 {
			t.Errorf("%s: parallel device slower than sequential (%.2fx)", r.Workload, r.Speedup)
		}
		if r.TwoLevelSpeedup < 1.0 {
			t.Errorf("%s: two-level device slower than sequential (%.2fx)", r.Workload, r.TwoLevelSpeedup)
		}
	}
}

func TestOverheadShape(t *testing.T) {
	env := quickEnv(t)
	var bo bytes.Buffer
	res, err := env.Overhead(&bo)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatal("too few rows")
	}
	for _, r := range res.Rows {
		if r.PerTaskMs <= 0 {
			t.Errorf("%d tasks: non-positive per-task overhead", r.Tasks)
		}
		// Practicality claim: well under a second per task.
		if r.PerTaskMs > 1000 {
			t.Errorf("%d tasks: %.1f ms/task is impractical", r.Tasks, r.PerTaskMs)
		}
	}
}

func TestAblationShapes(t *testing.T) {
	env := quickEnv(t)
	var ba bytes.Buffer
	res, err := env.Ablation(&ba)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Search) != 3 || len(res.MCIters) != 4 || len(res.Objective) != 2 ||
		len(res.MultiStart) != 2 || len(res.Granularity) != 2 {
		t.Fatalf("missing sections: %+v", res)
	}
	// All search strategies find a feasible plan.
	for _, r := range res.Search {
		if !r.Feasible {
			t.Errorf("%s found no feasible plan", r.Strategy)
		}
	}
	// A* evaluates far fewer states (its pruning is the point).
	if res.Search[2].Strategy != "astar" || res.Search[2].Evaluated >= res.Search[0].Evaluated {
		t.Errorf("astar states %d not below generic %d", res.Search[2].Evaluated, res.Search[0].Evaluated)
	}
	// MC: evaluation time grows with iterations; the high-budget estimate is
	// closer to the reference than the low-budget one.
	if res.MCIters[0].EvalTime >= res.MCIters[3].EvalTime {
		t.Error("eval time not increasing with iterations")
	}
	if res.MCIters[3].ProbErr > res.MCIters[0].ProbErr+0.05 {
		t.Errorf("400-iter error %v much worse than 10-iter %v", res.MCIters[3].ProbErr, res.MCIters[0].ProbErr)
	}
	// Objective fidelity: the packed objective predicts the realized cost
	// (hour billing included) while the fractional Eq. 1 objective wildly
	// underestimates it — the reason the search optimizes the packed cost.
	packed := res.Objective[1]
	frac := res.Objective[0]
	if rel(packed.PlannedCost, packed.RealizedCost) > 0.3 {
		t.Errorf("packed planned %v should track realized %v", packed.PlannedCost, packed.RealizedCost)
	}
	if frac.PlannedCost > frac.RealizedCost/2 {
		t.Errorf("fractional plan %v suspiciously close to realized %v",
			frac.PlannedCost, frac.RealizedCost)
	}
	// Multi-start never loses to single-start (shared frontier).
	if res.MultiStart[1].Cost > res.MultiStart[0].Cost*1.05 {
		t.Errorf("multi-start %v worse than single-start %v", res.MultiStart[1].Cost, res.MultiStart[0].Cost)
	}
}

func TestFig11Shape(t *testing.T) {
	env := quickEnv(t)
	var buf bytes.Buffer
	res, err := env.Fig11(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// As the deadline loosens, Deco's cost must not increase and its time
	// must not decrease (Fig 11's monotone shape).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].DecoCost > res.Rows[i-1].DecoCost*1.01 {
			t.Errorf("deco cost rose when deadline loosened: %v -> %v",
				res.Rows[i-1].DecoCost, res.Rows[i].DecoCost)
		}
		if res.Rows[i].DecoTime < res.Rows[i-1].DecoTime*0.95 {
			t.Errorf("deco time shrank when deadline loosened: %v -> %v",
				res.Rows[i-1].DecoTime, res.Rows[i].DecoTime)
		}
	}
	// Deco at or below Autoscaling in every setting.
	for _, r := range res.Rows {
		if r.DecoCost > r.AsCost*1.05 {
			t.Errorf("%s: deco %v above autoscaling %v", r.Setting, r.DecoCost, r.AsCost)
		}
	}
	if !strings.Contains(buf.String(), "Figure 11") {
		t.Error("rendering missing")
	}
}
