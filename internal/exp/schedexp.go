package exp

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"deco/internal/baseline"
	"deco/internal/cloud"
	"deco/internal/dag"
	"deco/internal/dist"
	"deco/internal/estimate"
	"deco/internal/opt"
	"deco/internal/sim"
)

// runPlan executes a plan Runs times and returns average realized cost,
// average makespan, and the raw makespans.
func (e *Env) runPlan(w *dag.Workflow, plan *sim.Plan, seed int64) (avgCost, avgTime float64, times []float64, err error) {
	s, err := sim.New(sim.DefaultOptions(e.Cat, rand.New(rand.NewSource(seed))))
	if err != nil {
		return 0, 0, nil, err
	}
	rs, err := s.RunMany(context.Background(), w, plan, e.Cfg.Runs)
	if err != nil {
		return 0, 0, nil, err
	}
	times = sim.Makespans(rs)
	return dist.MeanOf(sim.Costs(rs)), dist.MeanOf(times), times, nil
}

// metTarget is the fraction of runs finishing within the deadline.
func metTarget(times []float64, deadline float64) float64 {
	n := 0
	for _, t := range times {
		if t <= deadline {
			n++
		}
	}
	return float64(n) / float64(len(times))
}

// Fig1Row is one bar of Figure 1.
type Fig1Row struct {
	Config         string
	AvgCost        float64
	NormCost       float64 // normalized to Autoscaling
	MetProbability float64 // fraction of runs within the deadline
	Satisfies      bool    // MetProbability >= the probabilistic requirement
}

// Fig1Result reproduces Figure 1: the average cost of running a Montage
// workflow with a deadline constraint under seven instance configurations.
type Fig1Result struct {
	Workflow   string
	Deadline   float64
	Percentile float64
	Rows       []Fig1Row
}

// Fig1 runs the experiment.
func (e *Env) Fig1(out io.Writer) (*Fig1Result, error) {
	degree := e.MontageDegrees()[1]
	w, err := e.Montage(degree)
	if err != nil {
		return nil, err
	}
	tbl, err := e.Est.BuildTable(w)
	if err != nil {
		return nil, err
	}
	deadline, err := e.Deadline(w, "medium")
	if err != nil {
		return nil, err
	}
	const pct = 0.96
	res := &Fig1Result{Workflow: w.Name, Deadline: deadline, Percentile: pct}

	type scenario struct {
		name string
		plan func() (*sim.Plan, error)
	}
	var scenarios []scenario
	for _, typ := range e.Cat.TypeNames() {
		typ := typ
		scenarios = append(scenarios, scenario{typ, func() (*sim.Plan, error) {
			return consolidatedUniform(w, tbl, e.Cat.TypeIndex(typ))
		}})
	}
	scenarios = append(scenarios,
		scenario{"random", func() (*sim.Plan, error) {
			return sim.RandomPlan(w, e.Cat, cloud.USEast, rand.New(rand.NewSource(e.Cfg.Seed+7))), nil
		}},
		scenario{"autoscaling", func() (*sim.Plan, error) {
			cfg, err := baseline.AutoscalingProbabilistic(w, tbl, e.Prices, deadline, pct, e.Cfg.Iters, rand.New(rand.NewSource(e.Cfg.Seed+8)))
			if err != nil {
				return nil, err
			}
			return opt.Consolidate(w, cfg, tbl, cloud.USEast)
		}},
		scenario{"deco", func() (*sim.Plan, error) {
			cfg, _, _, err := e.decoSchedule(w, tbl, deadline, pct, e.Cfg.Seed+9)
			if err != nil {
				return nil, err
			}
			return opt.Consolidate(w, cfg, tbl, cloud.USEast)
		}},
	)

	var asCost float64
	for _, sc := range scenarios {
		plan, err := sc.plan()
		if err != nil {
			return nil, fmt.Errorf("exp: fig1 %s: %w", sc.name, err)
		}
		cost, _, times, err := e.runPlan(w, plan, e.Cfg.Seed+11)
		if err != nil {
			return nil, err
		}
		met := metTarget(times, deadline)
		row := Fig1Row{Config: sc.name, AvgCost: cost, MetProbability: met, Satisfies: met >= pct}
		if sc.name == "autoscaling" {
			asCost = cost
		}
		res.Rows = append(res.Rows, row)
	}
	for i := range res.Rows {
		if asCost > 0 {
			res.Rows[i].NormCost = res.Rows[i].AvgCost / asCost
		}
	}
	if out != nil {
		fmt.Fprintf(out, "Figure 1: average cost of %s, deadline %.0fs at %.0f%% (normalized to Autoscaling)\n",
			res.Workflow, deadline, pct*100)
		fmt.Fprintf(out, "%-14s %-10s %-10s %-8s %s\n", "config", "avg $", "norm", "P(meet)", "satisfies")
		for _, r := range res.Rows {
			fmt.Fprintf(out, "%-14s %-10.4f %-10.2f %-8.2f %v\n", r.Config, r.AvgCost, r.NormCost, r.MetProbability, r.Satisfies)
		}
	}
	return res, nil
}

// consolidatedUniform builds the single-type plan with the same
// consolidation applied to all scenarios (fair packing).
func consolidatedUniform(w *dag.Workflow, tbl *estimate.Table, typeIdx int) (*sim.Plan, error) {
	cfg := make(opt.State, w.Len())
	for i := range cfg {
		cfg[i] = typeIdx
	}
	return opt.Consolidate(w, cfg, tbl, cloud.USEast)
}

// Fig2Row summarizes the normalized execution-time distribution of one
// workflow scale (the box of a box plot).
type Fig2Row struct {
	Workflow                     string
	Min, P25, Med, P75, P95, Max float64 // normalized to the mean
	SpreadPct                    float64 // (max-min)/mean * 100
}

// Fig2Result reproduces Figure 2: execution-time variance of Montage
// workflows across repeated runs of the Deco-optimized plan.
type Fig2Result struct {
	Rows []Fig2Row
}

// Fig2 runs the experiment.
func (e *Env) Fig2(out io.Writer) (*Fig2Result, error) {
	res := &Fig2Result{}
	for _, degree := range e.MontageDegrees() {
		w, err := e.Montage(degree)
		if err != nil {
			return nil, err
		}
		tbl, err := e.Est.BuildTable(w)
		if err != nil {
			return nil, err
		}
		deadline, err := e.Deadline(w, "medium")
		if err != nil {
			return nil, err
		}
		cfg, _, _, err := e.decoSchedule(w, tbl, deadline, 0.96, e.Cfg.Seed+21)
		if err != nil {
			return nil, err
		}
		plan, err := opt.Consolidate(w, cfg, tbl, cloud.USEast)
		if err != nil {
			return nil, err
		}
		_, _, times, err := e.runPlan(w, plan, e.Cfg.Seed+22)
		if err != nil {
			return nil, err
		}
		mean := dist.MeanOf(times)
		sort.Float64s(times)
		q := func(p float64) float64 { return dist.QuantileOf(times, p) / mean }
		res.Rows = append(res.Rows, Fig2Row{
			Workflow: w.Name,
			Min:      times[0] / mean, P25: q(0.25), Med: q(0.5), P75: q(0.75), P95: q(0.95),
			Max:       times[len(times)-1] / mean,
			SpreadPct: (times[len(times)-1] - times[0]) / mean * 100,
		})
	}
	if out != nil {
		fmt.Fprintln(out, "Figure 2: normalized execution-time quantiles across runs (Deco plans)")
		fmt.Fprintf(out, "%-14s %-7s %-7s %-7s %-7s %-7s %-7s %s\n", "workflow", "min", "p25", "med", "p75", "p95", "max", "spread%")
		for _, r := range res.Rows {
			fmt.Fprintf(out, "%-14s %-7.3f %-7.3f %-7.3f %-7.3f %-7.3f %-7.3f %.1f\n",
				r.Workflow, r.Min, r.P25, r.Med, r.P75, r.P95, r.Max, r.SpreadPct)
		}
	}
	return res, nil
}

// Fig8Cell is one (workflow, percentile) comparison.
type Fig8Cell struct {
	Workflow   string
	Percentile float64
	DecoCost   float64
	AsCost     float64
	NormCost   float64 // Deco / Autoscaling
	DecoTime   float64
	AsTime     float64
	NormTime   float64
	DecoMet    float64 // realized P(makespan <= D) of the Deco plan
}

// Fig8Result reproduces Figure 8: cost and execution time versus the
// probabilistic deadline requirement, Deco vs Autoscaling.
type Fig8Result struct {
	DeadlineSetting string
	Cells           []Fig8Cell
}

// Fig8 runs the experiment. The paper sweeps 90..99.9% at the default
// (medium) deadline; the cost separation is widest under pressure, so the
// harness uses the tight deadline, recording the difference in
// EXPERIMENTS.md.
func (e *Env) Fig8(out io.Writer) (*Fig8Result, error) {
	pcts := []float64{0.90, 0.92, 0.94, 0.96, 0.98, 0.999}
	degrees := e.MontageDegrees()
	if e.Cfg.Quick {
		pcts = []float64{0.90, 0.96, 0.999}
		degrees = degrees[:2]
	}
	res := &Fig8Result{DeadlineSetting: "tight"}
	for _, degree := range degrees {
		w, err := e.Montage(degree)
		if err != nil {
			return nil, err
		}
		tbl, err := e.Est.BuildTable(w)
		if err != nil {
			return nil, err
		}
		deadline, err := e.Deadline(w, res.DeadlineSetting)
		if err != nil {
			return nil, err
		}
		for _, pct := range pcts {
			cfg, _, _, err := e.decoSchedule(w, tbl, deadline, pct, e.Cfg.Seed+31)
			if err != nil {
				return nil, err
			}
			decoPlan, err := opt.Consolidate(w, cfg, tbl, cloud.USEast)
			if err != nil {
				return nil, err
			}
			asCfg, err := baseline.AutoscalingProbabilistic(w, tbl, e.Prices, deadline, pct, e.Cfg.Iters, rand.New(rand.NewSource(e.Cfg.Seed+32)))
			if err != nil {
				return nil, err
			}
			asPlan, err := opt.Consolidate(w, asCfg, tbl, cloud.USEast)
			if err != nil {
				return nil, err
			}
			dCost, dTime, dTimes, err := e.runPlan(w, decoPlan, e.Cfg.Seed+33)
			if err != nil {
				return nil, err
			}
			aCost, aTime, _, err := e.runPlan(w, asPlan, e.Cfg.Seed+33)
			if err != nil {
				return nil, err
			}
			cell := Fig8Cell{
				Workflow: w.Name, Percentile: pct,
				DecoCost: dCost, AsCost: aCost, DecoTime: dTime, AsTime: aTime,
				DecoMet: metTarget(dTimes, deadline),
			}
			if aCost > 0 {
				cell.NormCost = dCost / aCost
			}
			if aTime > 0 {
				cell.NormTime = dTime / aTime
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	if out != nil {
		fmt.Fprintf(out, "Figure 8: Deco vs Autoscaling across probabilistic deadline requirements (%s deadline)\n", res.DeadlineSetting)
		fmt.Fprintf(out, "%-14s %-7s %-10s %-10s %-9s %-9s %-8s\n", "workflow", "p%", "deco $", "autosc $", "norm$", "normT", "P(meet)")
		for _, c := range res.Cells {
			fmt.Fprintf(out, "%-14s %-7.1f %-10.4f %-10.4f %-9.2f %-9.2f %-8.2f\n",
				c.Workflow, c.Percentile*100, c.DecoCost, c.AsCost, c.NormCost, c.NormTime, c.DecoMet)
		}
	}
	return res, nil
}

// Fig11Row is one deadline setting of Figure 11.
type Fig11Row struct {
	Setting  string
	Deadline float64
	DecoCost float64
	AsCost   float64
	DecoTime float64
	AsTime   float64
}

// Fig11Result reproduces Figure 11: sensitivity to the deadline parameter
// (tight/medium/loose) for the largest Montage workflow.
type Fig11Result struct {
	Workflow string
	Rows     []Fig11Row
}

// Fig11 runs the experiment.
func (e *Env) Fig11(out io.Writer) (*Fig11Result, error) {
	degrees := e.MontageDegrees()
	w, err := e.Montage(degrees[len(degrees)-1])
	if err != nil {
		return nil, err
	}
	tbl, err := e.Est.BuildTable(w)
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{Workflow: w.Name}
	const pct = 0.96
	for _, setting := range []string{"tight", "medium", "loose"} {
		deadline, err := e.Deadline(w, setting)
		if err != nil {
			return nil, err
		}
		cfg, _, _, err := e.decoSchedule(w, tbl, deadline, pct, e.Cfg.Seed+41)
		if err != nil {
			return nil, err
		}
		decoPlan, err := opt.Consolidate(w, cfg, tbl, cloud.USEast)
		if err != nil {
			return nil, err
		}
		asCfg, err := baseline.AutoscalingProbabilistic(w, tbl, e.Prices, deadline, pct, e.Cfg.Iters, rand.New(rand.NewSource(e.Cfg.Seed+42)))
		if err != nil {
			return nil, err
		}
		asPlan, err := opt.Consolidate(w, asCfg, tbl, cloud.USEast)
		if err != nil {
			return nil, err
		}
		dCost, dTime, _, err := e.runPlan(w, decoPlan, e.Cfg.Seed+43)
		if err != nil {
			return nil, err
		}
		aCost, aTime, _, err := e.runPlan(w, asPlan, e.Cfg.Seed+43)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig11Row{
			Setting: setting, Deadline: deadline,
			DecoCost: dCost, AsCost: aCost, DecoTime: dTime, AsTime: aTime,
		})
	}
	if out != nil {
		fmt.Fprintf(out, "Figure 11: deadline sensitivity on %s (96%% requirement)\n", res.Workflow)
		fmt.Fprintf(out, "%-8s %-10s %-10s %-10s %-10s %-10s\n", "setting", "deadline", "deco $", "autosc $", "deco T", "autosc T")
		for _, r := range res.Rows {
			fmt.Fprintf(out, "%-8s %-10.0f %-10.4f %-10.4f %-10.0f %-10.0f\n",
				r.Setting, r.Deadline, r.DecoCost, r.AsCost, r.DecoTime, r.AsTime)
		}
	}
	return res, nil
}
