// Package exp is the benchmark harness that regenerates every table and
// figure of the paper's evaluation section (§6). Each experiment has a
// runner producing structured results plus a textual rendering of the same
// rows/series the paper reports; cmd/decobench and the repository-level
// benchmarks drive them. Absolute numbers differ from the paper (our
// substrate is a simulator and a software device, not EC2 + a K40), but the
// shapes — who wins, by roughly what factor, where crossovers fall — are
// asserted in EXPERIMENTS.md.
package exp

import (
	"fmt"
	"math/rand"

	"deco/internal/cloud"
	"deco/internal/dag"
	"deco/internal/device"
	"deco/internal/estimate"
	"deco/internal/opt"
	"deco/internal/probir"
	"deco/internal/wfgen"
	"deco/internal/wlog"
)

// Config scales an experiment run. Quick mode shrinks workflows and
// repetition counts so the full suite runs in seconds (for tests); full
// mode approaches the paper's setup (100 repetitions, Montage-1/4/8).
type Config struct {
	Seed int64
	// Runs is the number of simulated executions per configuration
	// (paper: 100).
	Runs int
	// Iters is the Monte-Carlo budget per state evaluation.
	Iters int
	// SearchBudget bounds solver evaluations.
	SearchBudget int
	// Device runs the solver.
	Device device.Device
	// Quick selects reduced workflow sizes.
	Quick bool
}

// QuickConfig returns the test-scale configuration. Under common random
// numbers every state in a search shares one set of world realizations, so
// the world count bounds how finely feasibility boundaries resolve; 80
// worlds keeps quick-scale searches on the same plans as paper scale, and
// the flat evaluation core makes them cheap.
func QuickConfig() Config {
	return Config{Seed: 1, Runs: 12, Iters: 80, SearchBudget: 1600, Device: device.Parallel{}, Quick: true}
}

// FullConfig returns the paper-scale configuration.
func FullConfig() Config {
	return Config{Seed: 1, Runs: 100, Iters: 100, SearchBudget: 4000, Device: device.Parallel{}}
}

// Env is the shared experimental environment: catalog, calibrated metadata,
// estimator and region prices.
type Env struct {
	Cfg    Config
	Cat    *cloud.Catalog
	Meta   *cloud.Metadata
	Est    *estimate.Estimator
	Prices []float64 // US East, catalog order
	// Cache is the environment-wide evaluation cache every solver search in
	// the suite shares (scheduling, ensemble member planning and admission,
	// follow-the-cost decisions). Hits are bit-identical to live evaluation,
	// so sharing never changes a result — only wall-clock time.
	Cache *opt.EvalCache
}

// NewEnv builds the environment with metadata discretized from the
// calibrated ground truth.
func NewEnv(cfg Config) (*Env, error) {
	if cfg.Device == nil {
		cfg.Device = device.Parallel{}
	}
	if cfg.Runs < 1 || cfg.Iters < 1 {
		return nil, fmt.Errorf("exp: Runs and Iters must be >= 1")
	}
	cat := cloud.DefaultCatalog()
	md, err := cloud.MetadataFromTruth(cat, 20, 8000, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	us, err := cat.Region(cloud.USEast)
	if err != nil {
		return nil, err
	}
	prices := make([]float64, len(cat.Types))
	for j, it := range cat.Types {
		prices[j] = us.PricePerHour[it.Name]
	}
	return &Env{Cfg: cfg, Cat: cat, Meta: md, Est: estimate.New(cat, md), Prices: prices,
		Cache: opt.NewEvalCache(0)}, nil
}

// MontageDegrees returns the Montage sizes of the evaluation: degrees
// 1/4/8 at paper scale, 1/2/3 in quick mode.
func (e *Env) MontageDegrees() []int {
	if e.Cfg.Quick {
		return []int{1, 2, 3}
	}
	return []int{1, 4, 8}
}

// Montage generates the Montage workflow of the given degree with the
// environment seed.
func (e *Env) Montage(degree int) (*dag.Workflow, error) {
	return wfgen.Montage(degree, rand.New(rand.NewSource(e.Cfg.Seed+int64(degree))))
}

// meanMakespan returns the mean-duration makespan of w with every task on
// type index idx.
func (e *Env) meanMakespan(w *dag.Workflow, tbl *estimate.Table, idx int) (float64, error) {
	cfg := make(map[string]int, w.Len())
	for _, t := range w.Tasks {
		cfg[t.ID] = idx
	}
	means, err := tbl.MeanDurations(cfg)
	if err != nil {
		return 0, err
	}
	ms, _, err := w.Makespan(means)
	return ms, err
}

// DeadlineAnchors returns Dmin (all tasks on m1.xlarge) and Dmax (all on
// m1.small): the anchors of the tight/medium/loose deadline settings (§6.1).
func (e *Env) DeadlineAnchors(w *dag.Workflow) (dmin, dmax float64, err error) {
	tbl, err := e.Est.BuildTable(w)
	if err != nil {
		return 0, 0, err
	}
	if dmin, err = e.meanMakespan(w, tbl, len(tbl.Types)-1); err != nil {
		return 0, 0, err
	}
	if dmax, err = e.meanMakespan(w, tbl, 0); err != nil {
		return 0, 0, err
	}
	return dmin, dmax, nil
}

// Deadline materializes the named deadline setting.
func (e *Env) Deadline(w *dag.Workflow, setting string) (float64, error) {
	dmin, dmax, err := e.DeadlineAnchors(w)
	if err != nil {
		return 0, err
	}
	switch setting {
	case "tight":
		return 1.5 * dmin, nil
	case "medium":
		return (dmin + dmax) / 2, nil
	case "loose":
		return 0.75 * dmax, nil
	}
	return 0, fmt.Errorf("exp: unknown deadline setting %q", setting)
}

// decoSchedule runs Deco's scheduling search for w under a probabilistic
// deadline and returns the chosen configuration plus its Eq. 1 cost.
func (e *Env) decoSchedule(w *dag.Workflow, tbl *estimate.Table, deadline, pct float64, seed int64) (opt.State, float64, bool, error) {
	cons := []wlog.Constraint{{Kind: "deadline", Percentile: pct, Bound: deadline}}
	eval, err := probir.NewNative(w, tbl, e.Prices, probir.GoalCost, cons, e.Cfg.Iters)
	if err != nil {
		return nil, 0, false, err
	}
	space := opt.NewPackedScheduleSpace(w, eval, tbl, e.Prices, cloud.USEast)
	so := opt.DefaultOptions(e.Cfg.Device)
	so.MaxStates = e.Cfg.SearchBudget
	so.Seed = seed
	res, err := opt.Search(space, so)
	if err != nil {
		return nil, 0, false, err
	}
	return res.Best, res.BestEval.Value, res.Feasible, nil
}

// randFor is a tiny helper for deterministic per-experiment rngs.
func randFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
