package exp

import (
	"fmt"
	"io"
	"math/rand"

	"deco/internal/estimate"
	"deco/internal/ftc"
	"deco/internal/wfgen"
)

// heuristicLagSec is the stall one Heuristic re-optimization imposes
// (§6.3.3: the baseline's offline-grade optimizer "takes a long time, which
// cannot catch up with the workflow executions"); Deco's device-accelerated
// search decides within milliseconds and imposes none.
const heuristicLagSec = 1800

// ftcJobs builds the follow-the-cost job population: funnel pipelines
// scaled to the Montage degree, alternating start regions (10-50 workflows
// per data center in the paper; reduced in quick mode).
func (e *Env) ftcJobs(degree int, seed int64) ([]*ftc.Job, error) {
	nJobs := 12
	if e.Cfg.Quick {
		nJobs = 6
	}
	length := 15 * degree
	var jobs []*ftc.Job
	for i := 0; i < nJobs; i++ {
		w, err := wfgen.Funnel(length, 6000, 20, rand.New(rand.NewSource(seed+int64(i))))
		if err != nil {
			return nil, err
		}
		var tbl *estimate.Table
		if tbl, err = e.Est.BuildTable(w); err != nil {
			return nil, err
		}
		j, err := ftc.NewJob(w, tbl, i%2, 1, 0)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

func (e *Env) runFTC(degree int, o ftc.Optimizer, seed int64) (*ftc.Result, error) {
	jobs, err := e.ftcJobs(degree, seed)
	if err != nil {
		return nil, err
	}
	if d, ok := o.(*ftc.DecoOptimizer); ok {
		// Every per-decision-point search shares the environment cache; the
		// decision-point fingerprint keys entries, so repeats of identical
		// runtime states (e.g. across the threshold sweep) hit.
		d.Options.Cache = e.Cache
	}
	rt := &ftc.Runtime{Cat: e.Cat, Jobs: jobs, Rng: rand.New(rand.NewSource(seed + 999)), Opt: o}
	return rt.Run()
}

// Fig10aRow compares total cost by workflow size.
type Fig10aRow struct {
	Size          string
	DecoCost      float64
	HeuristicCost float64
	NormCost      float64 // Deco / Heuristic
}

// Fig10bRow compares cost across re-optimization thresholds.
type Fig10bRow struct {
	Threshold     float64
	DecoCost      float64
	HeuristicCost float64
	NormCost      float64
}

// Fig10Result reproduces Figure 10: follow-the-cost monetary cost (a) by
// workflow size and (b) by performance-change threshold.
type Fig10Result struct {
	A []Fig10aRow
	B []Fig10bRow
}

// Fig10 runs the experiment.
func (e *Env) Fig10(out io.Writer) (*Fig10Result, error) {
	res := &Fig10Result{}
	degrees := e.MontageDegrees()
	for _, degree := range degrees {
		deco, err := e.runFTC(degree, ftc.NewDecoOptimizer(e.Cfg.Device, e.Cfg.Seed), e.Cfg.Seed+int64(degree)*100)
		if err != nil {
			return nil, err
		}
		heur, err := e.runFTC(degree, ftc.NewHeuristic(0.5, heuristicLagSec), e.Cfg.Seed+int64(degree)*100)
		if err != nil {
			return nil, err
		}
		row := Fig10aRow{
			Size:     fmt.Sprintf("Montage-%d", degree),
			DecoCost: deco.TotalCost, HeuristicCost: heur.TotalCost,
		}
		if heur.TotalCost > 0 {
			row.NormCost = deco.TotalCost / heur.TotalCost
		}
		res.A = append(res.A, row)
	}
	// (b): threshold sweep on the largest size.
	big := degrees[len(degrees)-1]
	thresholds := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	if e.Cfg.Quick {
		thresholds = []float64{0.1, 0.5, 0.9}
	}
	for _, th := range thresholds {
		deco, err := e.runFTC(big, ftc.NewDecoOptimizer(e.Cfg.Device, e.Cfg.Seed), e.Cfg.Seed+7000)
		if err != nil {
			return nil, err
		}
		heur, err := e.runFTC(big, ftc.NewHeuristic(th, heuristicLagSec), e.Cfg.Seed+7000)
		if err != nil {
			return nil, err
		}
		row := Fig10bRow{Threshold: th, DecoCost: deco.TotalCost, HeuristicCost: heur.TotalCost}
		if heur.TotalCost > 0 {
			row.NormCost = deco.TotalCost / heur.TotalCost
		}
		res.B = append(res.B, row)
	}
	if out != nil {
		fmt.Fprintln(out, "Figure 10a: follow-the-cost total cost by workflow size (normalized to Heuristic)")
		fmt.Fprintf(out, "%-12s %-10s %-12s %-8s\n", "size", "deco $", "heuristic $", "norm")
		for _, r := range res.A {
			fmt.Fprintf(out, "%-12s %-10.4f %-12.4f %-8.2f\n", r.Size, r.DecoCost, r.HeuristicCost, r.NormCost)
		}
		fmt.Fprintln(out, "\nFigure 10b: cost vs re-optimization threshold")
		fmt.Fprintf(out, "%-10s %-10s %-12s %-8s\n", "threshold", "deco $", "heuristic $", "norm")
		for _, r := range res.B {
			fmt.Fprintf(out, "%-10.0f%% %-9.4f %-12.4f %-8.2f\n", r.Threshold*100, r.DecoCost, r.HeuristicCost, r.NormCost)
		}
	}
	return res, nil
}
