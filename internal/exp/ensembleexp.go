package exp

import (
	"fmt"
	"io"
	"math/rand"

	"deco/internal/baseline"
	"deco/internal/dag"
	"deco/internal/ensemble"
	"deco/internal/estimate"
	"deco/internal/opt"
	"deco/internal/wfgen"
)

// Fig9Cell is one (ensemble type, budget) comparison.
type Fig9Cell struct {
	Kind        ensemble.Kind
	Budget      float64
	BudgetLabel string
	DecoScore   float64
	SPSSScore   float64
	NormScore   float64 // Deco / SPSS (>= 1 expected)
	// CostRatio is SPSS's average per-workflow planned cost over Deco's —
	// §6.3.2 reports ~1.4x.
	CostRatio float64
}

// Fig9Result reproduces Figure 9: ensemble scores of Deco vs SPSS across
// the five ensemble types and budgets Bgt1..Bgt5 (deadline D3).
type Fig9Result struct {
	App   wfgen.App
	Cells []Fig9Cell
}

// Fig9 runs the experiment. The paper's ensembles carry 30-50 workflows;
// quick mode uses 8.
func (e *Env) Fig9(out io.Writer) (*Fig9Result, error) {
	nWorkflows := 30
	kinds := ensemble.Kinds
	if e.Cfg.Quick {
		nWorkflows = 8
		kinds = []ensemble.Kind{ensemble.Constant, ensemble.UniformUnsorted, ensemble.ParetoSorted}
	}
	tblOf := func(w *dag.Workflow) (*estimate.Table, error) { return e.Est.BuildTable(w) }
	search := opt.DefaultOptions(e.Cfg.Device)
	search.MaxStates = e.Cfg.SearchBudget / 4
	if search.MaxStates < 100 {
		search.MaxStates = 100
	}
	search.Seed = e.Cfg.Seed
	// One cache and one CRN base across every member's planning search:
	// structurally identical siblings (e.g. the constant ensemble's) hit the
	// evaluations their predecessors warmed.
	search.Cache = e.Cache

	res := &Fig9Result{App: wfgen.AppLigo}
	for ki, kind := range kinds {
		ens, err := ensemble.Generate(kind, res.App, nWorkflows, rand.New(rand.NewSource(e.Cfg.Seed+int64(ki))))
		if err != nil {
			return nil, err
		}
		// Deadline D3: the midpoint of the paper's deadline range; slack 2x
		// the reference critical path, 96% requirement.
		if err := ensemble.DefaultDeadlines(ens, tblOf, 2.0, 0.96); err != nil {
			return nil, err
		}
		decoSpace, err := ensemble.NewSpace(ens, 0, ensemble.DecoPlanner(tblOf, e.Prices, e.Cfg.Iters, search))
		if err != nil {
			return nil, err
		}
		spssSpace, err := ensemble.NewSpace(ens, 0, baseline.SPSSPlanner(tblOf, e.Prices))
		if err != nil {
			return nil, err
		}
		// Budget anchors come from the SPSS plans (the conservative ones),
		// as the paper derives MinBudget/MaxBudget from the baseline setup.
		lo, hi := spssSpace.MinMaxBudget()
		for b := 1; b <= 5; b++ {
			budget := lo + (hi-lo)*float64(b-1)/4
			decoSpace.Budget = budget
			spssSpace.Budget = budget

			admOpts := opt.Options{
				Maximize: true, MaxStates: 4000, BeamWidth: 12, Patience: 10,
				Seed: e.Cfg.Seed + int64(b), Device: e.Cfg.Device,
				Cache: e.Cache, // admission runs the compiled kernel path too
			}
			dres, err := opt.Search(decoSpace, admOpts)
			if err != nil {
				return nil, err
			}
			sstate, err := baseline.SPSSAdmit(spssSpace)
			if err != nil {
				return nil, err
			}
			cell := Fig9Cell{
				Kind: kind, Budget: budget, BudgetLabel: fmt.Sprintf("Bgt%d", b),
				DecoScore: dres.BestEval.Value,
				SPSSScore: ens.Score(ensemble.Admitted(sstate)),
			}
			if cell.SPSSScore > 0 {
				cell.NormScore = cell.DecoScore / cell.SPSSScore
			} else if cell.DecoScore > 0 {
				cell.NormScore = cell.DecoScore // SPSS scored zero
			} else {
				cell.NormScore = 1
			}
			cell.CostRatio = avgPlanCost(spssSpace) / avgPlanCost(decoSpace)
			res.Cells = append(res.Cells, cell)
		}
	}
	if out != nil {
		fmt.Fprintf(out, "Figure 9: ensemble scores, Deco vs SPSS (%s ensembles, deadline D3)\n", res.App)
		fmt.Fprintf(out, "%-18s %-6s %-10s %-10s %-10s %-9s\n", "ensemble", "budget", "deco", "spss", "deco/spss", "SPSS$/Deco$")
		for _, c := range res.Cells {
			fmt.Fprintf(out, "%-18s %-6s %-10.3f %-10.3f %-10.2f %-9.2f\n",
				c.Kind, c.BudgetLabel, c.DecoScore, c.SPSSScore, c.NormScore, c.CostRatio)
		}
	}
	return res, nil
}

// avgPlanCost averages the planned per-workflow cost over plannable
// workflows.
func avgPlanCost(sp *ensemble.Space) float64 {
	sum, n := 0.0, 0
	for _, p := range sp.Plans {
		if p != nil {
			sum += p.Cost
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
