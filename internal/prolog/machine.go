package prolog

import (
	"fmt"
)

// Machine is a Prolog engine: a clause database plus solver state (binding
// trail, step budget). The unification technique follows the classic
// structure-sharing interpreter: binding a variable pushes it on the trail;
// backtracking pops the trail to undo bindings.
type Machine struct {
	db     map[Indicator][]*Clause
	order  []Indicator // insertion order, for deterministic listings
	trail  []*Var
	tabled map[Indicator]bool
	memo   map[string][]Term

	// Steps counts solver resolutions; MaxSteps bounds runaway queries
	// (0 = unlimited).
	Steps    int
	MaxSteps int
}

// NewMachine returns an empty engine.
func NewMachine() *Machine {
	return &Machine{
		db:     map[Indicator][]*Clause{},
		tabled: map[Indicator]bool{},
		memo:   map[string][]Term{},
	}
}

// Assert appends a clause to the database.
func (m *Machine) Assert(c *Clause) error {
	ind, err := IndicatorOf(c.Head)
	if err != nil {
		return err
	}
	if _, ok := builtins[ind]; ok {
		return fmt.Errorf("prolog: cannot redefine builtin %s", ind)
	}
	if _, ok := m.db[ind]; !ok {
		m.order = append(m.order, ind)
	}
	m.db[ind] = append(m.db[ind], c)
	m.clearMemo()
	return nil
}

// AssertFact appends a bodyless clause.
func (m *Machine) AssertFact(head Term) error {
	return m.Assert(&Clause{Head: head})
}

// RetractAll removes every clause of the given predicate and clears memos.
func (m *Machine) RetractAll(ind Indicator) {
	delete(m.db, ind)
	m.clearMemo()
}

// Table marks a predicate for answer tabling: the first call with a given
// binding pattern computes all answers once; later identical calls replay
// the cached answers. Only pure predicates may be tabled; asserting or
// retracting clauses clears the cache.
func (m *Machine) Table(ind Indicator) { m.tabled[ind] = true }

func (m *Machine) clearMemo() {
	if len(m.memo) > 0 {
		m.memo = map[string][]Term{}
	}
}

// Defined reports whether the predicate has clauses.
func (m *Machine) Defined(ind Indicator) bool { return len(m.db[ind]) > 0 }

// Clone returns a machine sharing no mutable state with m, with the same
// clauses and tabling marks. Clause structures are reused — they are
// immutable; the solver renames them before use.
func (m *Machine) Clone() *Machine {
	nm := NewMachine()
	nm.MaxSteps = m.MaxSteps
	for _, ind := range m.order {
		nm.order = append(nm.order, ind)
		nm.db[ind] = append([]*Clause(nil), m.db[ind]...)
	}
	for ind := range m.tabled {
		nm.tabled[ind] = true
	}
	return nm
}

// bind assigns v := t and records the binding on the trail.
func (m *Machine) bind(v *Var, t Term) {
	v.Ref = t
	m.trail = append(m.trail, v)
}

// mark returns the current trail position.
func (m *Machine) mark() int { return len(m.trail) }

// undo unbinds variables bound after the mark.
func (m *Machine) undo(mark int) {
	for i := len(m.trail) - 1; i >= mark; i-- {
		m.trail[i].Ref = nil
	}
	m.trail = m.trail[:mark]
}

// Unify attempts to unify a and b, binding variables as needed. On failure
// partial bindings remain; the solver always brackets calls with mark/undo.
func (m *Machine) Unify(a, b Term) bool {
	a, b = deref(a), deref(b)
	if a == b {
		return true
	}
	if av, ok := a.(*Var); ok {
		m.bind(av, b)
		return true
	}
	if bv, ok := b.(*Var); ok {
		m.bind(bv, a)
		return true
	}
	switch at := a.(type) {
	case Atom:
		bt, ok := b.(Atom)
		return ok && at == bt
	case Number:
		bt, ok := b.(Number)
		return ok && at == bt
	case *Compound:
		bt, ok := b.(*Compound)
		if !ok || at.Functor != bt.Functor || len(at.Args) != len(bt.Args) {
			return false
		}
		for i := range at.Args {
			if !m.Unify(at.Args[i], bt.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// ErrStepLimit reports that the solver exhausted its step budget.
var ErrStepLimit = fmt.Errorf("prolog: step limit exceeded")

// errStop is the internal sentinel: the caller asked to stop enumeration.
var errStop = fmt.Errorf("prolog: stop enumeration")

// cutErr unwinds the solver to the clause choice point at the given depth.
type cutErr struct{ depth int }

func (c cutErr) Error() string { return fmt.Sprintf("prolog: cut to depth %d", c.depth) }

// Solve enumerates solutions of the conjunction goals. For each solution it
// calls yield; if yield returns false the search stops. Solve returns an
// error only for malformed programs or the step limit.
func (m *Machine) Solve(goals []Term, yield func() bool) error {
	k := func() error {
		if !yield() {
			return errStop
		}
		return nil
	}
	err := m.solveAll(goals, 0, k)
	if err == errStop {
		return nil
	}
	if _, isCut := err.(cutErr); isCut {
		return nil // top-level cut: enumeration simply ends
	}
	return err
}

// solveAll proves goals left to right, calling k on success. depth tracks
// clause nesting for cut.
func (m *Machine) solveAll(goals []Term, depth int, k func() error) error {
	if len(goals) == 0 {
		return k()
	}
	goal := deref(goals[0])
	rest := goals[1:]

	m.Steps++
	if m.MaxSteps > 0 && m.Steps > m.MaxSteps {
		return ErrStepLimit
	}

	switch g := goal.(type) {
	case *Var:
		return fmt.Errorf("prolog: unbound goal variable %s", g)
	case Number:
		return fmt.Errorf("prolog: number %v is not callable", g)
	case Atom:
		switch g {
		case "true":
			return m.solveAll(rest, depth, k)
		case "fail", "false":
			return nil
		case "!":
			if err := m.solveAll(rest, depth, k); err != nil {
				return err
			}
			return cutErr{depth: depth}
		}
	case *Compound:
		switch g.Functor {
		case ",":
			if len(g.Args) == 2 {
				return m.solveAll(append([]Term{g.Args[0], g.Args[1]}, rest...), depth, k)
			}
		case ";":
			if len(g.Args) == 2 {
				if err := m.solveAll(append([]Term{g.Args[0]}, rest...), depth, k); err != nil {
					return err
				}
				return m.solveAll(append([]Term{g.Args[1]}, rest...), depth, k)
			}
		case "\\+", "not":
			if len(g.Args) == 1 {
				found, err := m.provable(g.Args[0], depth)
				if err != nil {
					return err
				}
				if found {
					return nil
				}
				return m.solveAll(rest, depth, k)
			}
		}
	}

	ind, err := IndicatorOf(goal)
	if err != nil {
		return err
	}
	if bi, ok := builtins[ind]; ok {
		args := callArgs(goal)
		return bi(m, args, depth, func() error { return m.solveAll(rest, depth, k) })
	}

	clauses, ok := m.db[ind]
	if !ok {
		return fmt.Errorf("prolog: unknown predicate %s", ind)
	}

	if m.tabled[ind] {
		answers, err := m.tabledAnswers(goal, ind)
		if err != nil {
			return err
		}
		for _, ans := range answers {
			mark := m.mark()
			if m.Unify(goal, renameTerm(ans, map[*Var]*Var{})) {
				if err := m.solveAll(rest, depth, k); err != nil {
					m.undo(mark)
					return err
				}
			}
			m.undo(mark)
		}
		return nil
	}

	myDepth := depth + 1
	for _, c := range clauses {
		rc := renameClause(c)
		mark := m.mark()
		if m.Unify(goal, rc.Head) {
			err := m.solveAll(append(append([]Term{}, rc.Body...), rest...), myDepth, k)
			if err != nil {
				m.undo(mark)
				if ce, isCut := err.(cutErr); isCut && ce.depth == myDepth {
					return nil // cut prunes the remaining clauses
				}
				return err
			}
		}
		m.undo(mark)
	}
	return nil
}

// callArgs returns the argument list of a callable term (empty for atoms).
func callArgs(t Term) []Term {
	if c, ok := deref(t).(*Compound); ok {
		return c.Args
	}
	return nil
}

// provable checks whether goal has at least one solution, restoring all
// bindings afterwards. Cuts inside the goal are local to it.
func (m *Machine) provable(goal Term, depth int) (bool, error) {
	found := false
	mark := m.mark()
	err := m.solveAll([]Term{goal}, depth+1, func() error {
		found = true
		return errStop
	})
	m.undo(mark)
	if err == errStop {
		err = nil
	}
	if _, isCut := err.(cutErr); isCut {
		err = nil
	}
	return found, err
}

// collect enumerates solutions of goal, snapshotting template for each.
// Bindings are restored afterwards; cuts inside the goal are local.
func (m *Machine) collect(template, goal Term, depth int) ([]Term, error) {
	var out []Term
	mark := m.mark()
	err := m.solveAll([]Term{goal}, depth+1, func() error {
		out = append(out, Snapshot(template))
		return nil
	})
	m.undo(mark)
	if _, isCut := err.(cutErr); isCut {
		err = nil
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// canonicalKey renders a term with variables numbered by first appearance,
// so structurally identical calls share a memo entry regardless of variable
// names.
func canonicalKey(t Term, n *int, seen map[*Var]string) string {
	switch tt := deref(t).(type) {
	case Atom:
		return "a:" + string(tt)
	case Number:
		return tt.String()
	case *Var:
		if s, ok := seen[tt]; ok {
			return s
		}
		s := fmt.Sprintf("_%d", *n)
		*n++
		seen[tt] = s
		return s
	case *Compound:
		out := tt.Functor + "("
		for i, a := range tt.Args {
			if i > 0 {
				out += ","
			}
			out += canonicalKey(a, n, seen)
		}
		return out + ")"
	}
	return "?"
}

// tabledAnswers returns (computing on first use) all answers of goal.
func (m *Machine) tabledAnswers(goal Term, ind Indicator) ([]Term, error) {
	n := 0
	key := ind.String() + "|" + canonicalKey(goal, &n, map[*Var]string{})
	if ans, ok := m.memo[key]; ok {
		return ans, nil
	}
	// Compute untabled so recursive calls don't consult the incomplete memo.
	m.tabled[ind] = false
	answers, err := m.collect(goal, goal, 0)
	m.tabled[ind] = true
	if err != nil {
		return nil, err
	}
	answers = SortUnique(answers)
	m.memo[key] = answers
	return answers, nil
}

// Query proves the single goal and reports whether a solution exists.
func (m *Machine) Query(goal Term) (bool, error) {
	return m.provable(goal, 0)
}

// FindAll returns a snapshot of template for every solution of goal.
func (m *Machine) FindAll(template, goal Term) ([]Term, error) {
	return m.collect(template, goal, 0)
}

// Once proves goal and returns the snapshot of template from the first
// solution (found=false if none).
func (m *Machine) Once(template, goal Term) (Term, bool, error) {
	var result Term
	found := false
	mark := m.mark()
	err := m.solveAll([]Term{goal}, 1, func() error {
		result = Snapshot(template)
		found = true
		return errStop
	})
	m.undo(mark)
	if err == errStop {
		err = nil
	}
	if _, isCut := err.(cutErr); isCut {
		err = nil
	}
	return result, found, err
}
