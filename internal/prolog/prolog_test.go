package prolog

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// assertRules loads clauses built programmatically.
func machineWith(t *testing.T, clauses ...*Clause) *Machine {
	t.Helper()
	m := NewMachine()
	for _, c := range clauses {
		if err := m.Assert(c); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestUnifyBasics(t *testing.T) {
	m := NewMachine()
	x := NewVar("X")
	if !m.Unify(x, Atom("a")) {
		t.Fatal("var-atom unify failed")
	}
	if deref(x) != Atom("a") {
		t.Fatal("binding not visible")
	}
	// Atom mismatch.
	mark := m.mark()
	if m.Unify(Atom("a"), Atom("b")) {
		t.Fatal("distinct atoms unified")
	}
	m.undo(mark)
	// Compound unification binds inner vars.
	y := NewVar("Y")
	if !m.Unify(Comp("f", Atom("a"), y), Comp("f", NewVar("Z"), Number(3))) {
		t.Fatal("compound unify failed")
	}
	if deref(y) != Number(3) {
		t.Fatal("inner binding missing")
	}
	// Arity mismatch.
	if m.Unify(Comp("f", Atom("a")), Comp("f", Atom("a"), Atom("b"))) {
		t.Fatal("arity mismatch unified")
	}
	// Number equality.
	if !m.Unify(Number(2), Number(2)) || m.Unify(Number(2), Number(3)) {
		t.Fatal("number unification wrong")
	}
}

func TestUndoRestoresBindings(t *testing.T) {
	m := NewMachine()
	x := NewVar("X")
	mark := m.mark()
	m.Unify(x, Atom("a"))
	m.undo(mark)
	if x.Ref != nil {
		t.Fatal("undo did not unbind")
	}
}

func TestFactsAndQuery(t *testing.T) {
	m := machineWith(t,
		&Clause{Head: Comp("edge", Atom("a"), Atom("b"))},
		&Clause{Head: Comp("edge", Atom("b"), Atom("c"))},
	)
	ok, err := m.Query(Comp("edge", Atom("a"), Atom("b")))
	if err != nil || !ok {
		t.Fatalf("fact query: %v %v", ok, err)
	}
	ok, err = m.Query(Comp("edge", Atom("a"), Atom("c")))
	if err != nil || ok {
		t.Fatalf("absent fact proved: %v %v", ok, err)
	}
}

func TestRecursiveRules(t *testing.T) {
	// reach(X,Y) :- edge(X,Y).
	// reach(X,Y) :- edge(X,Z), reach(Z,Y).
	x, y, z := NewVar("X"), NewVar("Y"), NewVar("Z")
	m := machineWith(t,
		&Clause{Head: Comp("edge", Atom("a"), Atom("b"))},
		&Clause{Head: Comp("edge", Atom("b"), Atom("c"))},
		&Clause{Head: Comp("edge", Atom("c"), Atom("d"))},
		&Clause{Head: Comp("reach", x, y), Body: []Term{Comp("edge", x, y)}},
		&Clause{Head: Comp("reach", x, y), Body: []Term{Comp("edge", x, z), Comp("reach", z, y)}},
	)
	ok, err := m.Query(Comp("reach", Atom("a"), Atom("d")))
	if err != nil || !ok {
		t.Fatalf("transitive reach failed: %v %v", ok, err)
	}
	// Enumerate all reachable from a.
	w := NewVar("W")
	sols, err := m.FindAll(w, Comp("reach", Atom("a"), w))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 3 {
		t.Fatalf("reachable set %v, want 3 nodes", sols)
	}
}

func TestArithmeticIs(t *testing.T) {
	m := NewMachine()
	x := NewVar("X")
	res, found, err := m.Once(x, Comp("is", x, Comp("+", Number(2), Comp("*", Number(3), Number(4)))))
	if err != nil || !found {
		t.Fatalf("is failed: %v %v", found, err)
	}
	if res != Number(14) {
		t.Fatalf("2+3*4 = %v", res)
	}
	// Division by zero errors.
	if _, _, err := m.Once(x, Comp("is", x, Comp("/", Number(1), Number(0)))); err == nil {
		t.Fatal("division by zero accepted")
	}
	// Unbound arithmetic errors.
	if _, _, err := m.Once(x, Comp("is", x, NewVar("U"))); err == nil {
		t.Fatal("unbound arith accepted")
	}
}

func TestEvalArithFunctions(t *testing.T) {
	cases := []struct {
		t    Term
		want float64
	}{
		{Comp("-", Number(10), Number(4)), 6},
		{Comp("-", Number(5)), -5},
		{Comp("abs", Number(-3)), 3},
		{Comp("sqrt", Number(16)), 4},
		{Comp("floor", Number(2.7)), 2},
		{Comp("ceiling", Number(2.1)), 3},
		{Comp("min", Number(3), Number(5)), 3},
		{Comp("max", Number(3), Number(5)), 5},
		{Comp("mod", Number(7), Number(3)), 1},
		{Atom("pi"), 3.141592653589793},
	}
	for _, c := range cases {
		got, err := EvalArith(c.t)
		if err != nil {
			t.Errorf("%s: %v", c.t, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.t, got, c.want)
		}
	}
	if _, err := EvalArith(Comp("frobnicate", Number(1))); err == nil {
		t.Error("unknown function accepted")
	}
	if _, err := EvalArith(Atom("zz")); err == nil {
		t.Error("non-arith atom accepted")
	}
}

func TestComparisons(t *testing.T) {
	m := NewMachine()
	for _, c := range []struct {
		op   string
		a, b float64
		want bool
	}{
		{"<", 1, 2, true}, {"<", 2, 1, false},
		{">", 2, 1, true}, {"=<", 2, 2, true},
		{">=", 1, 2, false}, {"=:=", 3, 3, true}, {"=\\=", 3, 3, false},
	} {
		ok, err := m.Query(Comp(c.op, Number(c.a), Number(c.b)))
		if err != nil {
			t.Fatalf("%v %s %v: %v", c.a, c.op, c.b, err)
		}
		if ok != c.want {
			t.Errorf("%v %s %v = %v, want %v", c.a, c.op, c.b, ok, c.want)
		}
	}
}

func TestFindallSetofSumMax(t *testing.T) {
	m := machineWith(t,
		&Clause{Head: Comp("cost", Atom("t1"), Number(5))},
		&Clause{Head: Comp("cost", Atom("t2"), Number(3))},
		&Clause{Head: Comp("cost", Atom("t3"), Number(5))},
	)
	c, bag, total := NewVar("C"), NewVar("Bag"), NewVar("Total")
	// findall + sum: the totalcost pattern of Example 1 rule r5.
	goal := Comp(",",
		Comp("findall", c, Comp("cost", NewVar("T"), c), bag),
		Comp("sum", bag, total))
	res, found, err := m.Once(total, goal)
	if err != nil || !found {
		t.Fatalf("findall/sum: %v %v", found, err)
	}
	if res != Number(13) {
		t.Fatalf("total %v, want 13", res)
	}

	// setof: sorted unique values.
	set := NewVar("Set")
	res, found, err = m.Once(set, Comp("setof", c, Comp("cost", NewVar("T2"), c), set))
	if err != nil || !found {
		t.Fatalf("setof: %v %v", found, err)
	}
	if res.String() != "[3,5]" {
		t.Fatalf("setof %v", res)
	}

	// setof fails on no solutions.
	ok, err := m.Query(Comp("setof", c, Comp("cost", Atom("zz"), c), set))
	if err != nil || ok {
		t.Fatalf("setof on empty should fail: %v %v", ok, err)
	}

	// max over pairs by last element — the maxtime pattern of rule r3.
	pairs := MkList(
		MkList(Atom("p1"), Number(10)),
		MkList(Atom("p2"), Number(30)),
		MkList(Atom("p3"), Number(20)))
	best := NewVar("Best")
	res, found, err = m.Once(best, Comp("max", pairs, best))
	if err != nil || !found {
		t.Fatalf("max: %v %v", found, err)
	}
	if res.String() != "[p2,30]" {
		t.Fatalf("max pair %v", res)
	}
	// max over numbers.
	res, _, _ = m.Once(best, Comp("max", MkList(Number(4), Number(9), Number(2)), best))
	if res != Number(9) {
		t.Fatalf("max number %v", res)
	}
	// min.
	res, _, _ = m.Once(best, Comp("min", MkList(Number(4), Number(9), Number(2)), best))
	if res != Number(2) {
		t.Fatalf("min %v", res)
	}
	// max on empty fails.
	ok, err = m.Query(Comp("max", MkList(), best))
	if err != nil || ok {
		t.Fatal("max on empty should fail")
	}
}

func TestMemberAppendLengthBetweenNth0Sort(t *testing.T) {
	m := NewMachine()
	x := NewVar("X")
	list := MkList(Atom("a"), Atom("b"), Atom("c"))

	sols, err := m.FindAll(x, Comp("member", x, list))
	if err != nil || len(sols) != 3 {
		t.Fatalf("member: %v %v", sols, err)
	}

	z := NewVar("Z")
	res, found, err := m.Once(z, Comp("append", MkList(Number(1)), MkList(Number(2)), z))
	if err != nil || !found || res.String() != "[1,2]" {
		t.Fatalf("append: %v %v %v", res, found, err)
	}
	// Relational append: enumerate splits.
	a, b := NewVar("A"), NewVar("B")
	splits, err := m.FindAll(MkList(a, b), Comp("append", a, b, MkList(Number(1), Number(2))))
	if err != nil || len(splits) != 3 {
		t.Fatalf("append splits: %v %v", splits, err)
	}

	res, found, err = m.Once(z, Comp("length", list, z))
	if err != nil || !found || res != Number(3) {
		t.Fatalf("length: %v", res)
	}
	res, found, err = m.Once(z, Comp("length", z, Number(2)))
	if err != nil || !found {
		t.Fatalf("length gen: %v %v", found, err)
	}
	if items, ok := ListSlice(res); !ok || len(items) != 2 {
		t.Fatalf("length gen list: %v", res)
	}

	sols, err = m.FindAll(x, Comp("between", Number(1), Number(4), x))
	if err != nil || len(sols) != 4 {
		t.Fatalf("between: %v %v", sols, err)
	}

	res, found, err = m.Once(z, Comp("nth0", Number(1), list, z))
	if err != nil || !found || res != Atom("b") {
		t.Fatalf("nth0: %v", res)
	}
	// nth0 enumeration mode.
	idx := NewVar("I")
	sols, err = m.FindAll(idx, Comp("nth0", idx, list, NewVar("E")))
	if err != nil || len(sols) != 3 {
		t.Fatalf("nth0 enum: %v %v", sols, err)
	}

	res, found, err = m.Once(z, Comp("sort", MkList(Number(3), Number(1), Number(3), Number(2)), z))
	if err != nil || !found || res.String() != "[1,2,3]" {
		t.Fatalf("sort: %v", res)
	}
}

func TestNegationAsFailure(t *testing.T) {
	m := machineWith(t, &Clause{Head: Comp("p", Atom("a"))})
	ok, err := m.Query(Comp("\\+", Comp("p", Atom("b"))))
	if err != nil || !ok {
		t.Fatalf("negation of absent fact: %v %v", ok, err)
	}
	ok, err = m.Query(Comp("not", Comp("p", Atom("a"))))
	if err != nil || ok {
		t.Fatalf("negation of present fact: %v %v", ok, err)
	}
}

func TestDisjunctionAndConjunction(t *testing.T) {
	m := machineWith(t, &Clause{Head: Comp("p", Atom("a"))}, &Clause{Head: Comp("q", Atom("b"))})
	x := NewVar("X")
	sols, err := m.FindAll(x, Comp(";", Comp("p", x), Comp("q", x)))
	if err != nil || len(sols) != 2 {
		t.Fatalf("disjunction: %v %v", sols, err)
	}
	ok, err := m.Query(Comp(",", Comp("p", Atom("a")), Comp("q", Atom("b"))))
	if err != nil || !ok {
		t.Fatalf("conjunction: %v %v", ok, err)
	}
}

func TestCutPrunesChoicePoints(t *testing.T) {
	// first(X) :- p(X), !.
	x := NewVar("X")
	m := machineWith(t,
		&Clause{Head: Comp("p", Atom("a"))},
		&Clause{Head: Comp("p", Atom("b"))},
		&Clause{Head: Comp("first", x), Body: []Term{Comp("p", x), Atom("!")}},
	)
	y := NewVar("Y")
	sols, err := m.FindAll(y, Comp("first", y))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || sols[0] != Atom("a") {
		t.Fatalf("cut failed to prune: %v", sols)
	}
}

func TestCutIsLocalToClause(t *testing.T) {
	// q :- p(X), !. ; r has two solutions independent of q's cut.
	x := NewVar("X")
	m := machineWith(t,
		&Clause{Head: Comp("p", Atom("a"))},
		&Clause{Head: Comp("p", Atom("b"))},
		&Clause{Head: Atom("q"), Body: []Term{Comp("p", x), Atom("!")}},
		&Clause{Head: Comp("r", Atom("one"))},
		&Clause{Head: Comp("r", Atom("two"))},
	)
	y := NewVar("Y")
	sols, err := m.FindAll(y, Comp(",", Atom("q"), Comp("r", y)))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("cut leaked outside clause: %v", sols)
	}
}

func TestTypeChecks(t *testing.T) {
	m := NewMachine()
	checks := []struct {
		goal Term
		want bool
	}{
		{Comp("number", Number(3)), true},
		{Comp("number", Atom("a")), false},
		{Comp("atom", Atom("a")), true},
		{Comp("var", NewVar("V")), true},
		{Comp("nonvar", Number(1)), true},
		{Comp("ground", Comp("f", Atom("a"))), true},
		{Comp("ground", Comp("f", NewVar("V"))), false},
	}
	for _, c := range checks {
		ok, err := m.Query(c.goal)
		if err != nil {
			t.Fatalf("%s: %v", c.goal, err)
		}
		if ok != c.want {
			t.Errorf("%s = %v, want %v", c.goal, ok, c.want)
		}
	}
}

func TestStepLimit(t *testing.T) {
	// loop :- loop.
	m := machineWith(t, &Clause{Head: Atom("loop"), Body: []Term{Atom("loop")}})
	m.MaxSteps = 1000
	_, err := m.Query(Atom("loop"))
	if err != ErrStepLimit {
		t.Fatalf("want step limit error, got %v", err)
	}
}

func TestUnknownPredicateErrors(t *testing.T) {
	m := NewMachine()
	if _, err := m.Query(Comp("nosuch", Atom("a"))); err == nil {
		t.Fatal("unknown predicate accepted")
	}
}

func TestCannotRedefineBuiltin(t *testing.T) {
	m := NewMachine()
	if err := m.AssertFact(Comp("is", Number(1), Number(1))); err == nil {
		t.Fatal("builtin redefinition accepted")
	}
}

func TestTabling(t *testing.T) {
	// Diamond path counting: tabling must not change answers.
	x, y, z, z2 := NewVar("X"), NewVar("Y"), NewVar("Z"), NewVar("Z2")
	tp, t1, tv := NewVar("Tp"), NewVar("T1"), NewVar("T")
	clauses := []*Clause{
		{Head: Comp("edge", Atom("a"), Atom("b"))},
		{Head: Comp("edge", Atom("b"), Atom("c"))},
		{Head: Comp("edge", Atom("a"), Atom("c"))},
		{Head: Comp("w", Atom("a"), Number(1))},
		{Head: Comp("w", Atom("b"), Number(2))},
		{Head: Comp("w", Atom("c"), Number(0))},
		// path(X,Y,Tp) :- edge(X,Y), w(X,T), Tp is T.
		{Head: Comp("path", x, y, tp), Body: []Term{
			Comp("edge", x, y), Comp("w", x, tv), Comp("is", tp, tv)}},
		// path(X,Y,Tp) :- edge(X,Z), Z\==Y, path(Z,Y,T1), w(X,T), Tp is T+T1.
		{Head: Comp("path", x, y, tp), Body: []Term{
			Comp("edge", x, z), Comp("\\==", z, y), Comp("path", z, y, t1),
			Comp("w", x, tv), Comp("is", tp, Comp("+", tv, t1))}},
	}
	_ = z2
	run := func(table bool) []Term {
		m := machineWith(t, clauses...)
		if table {
			m.Table(Indicator{"path", 3})
		}
		v := NewVar("V")
		sols, err := m.FindAll(v, Comp("path", Atom("a"), Atom("c"), v))
		if err != nil {
			t.Fatal(err)
		}
		return SortUnique(sols)
	}
	plain, tabled := run(false), run(true)
	if len(plain) != len(tabled) {
		t.Fatalf("tabling changed answers: %v vs %v", plain, tabled)
	}
	for i := range plain {
		if Compare(plain[i], tabled[i]) != 0 {
			t.Fatalf("tabling changed answers: %v vs %v", plain, tabled)
		}
	}
	// Paths a->c: direct (w(a)=1) and via b (1+2=3).
	if len(plain) != 2 || plain[0] != Number(1) || plain[1] != Number(3) {
		t.Fatalf("path answers %v", plain)
	}
}

func TestTablingCachesAnswers(t *testing.T) {
	x := NewVar("X")
	m := machineWith(t,
		&Clause{Head: Comp("p", Atom("a"))},
		&Clause{Head: Comp("p", Atom("b"))},
	)
	m.Table(Indicator{"p", 1})
	if _, err := m.FindAll(x, Comp("p", x)); err != nil {
		t.Fatal(err)
	}
	steps1 := m.Steps
	if _, err := m.FindAll(NewVar("Y"), Comp("p", NewVar("Y"))); err != nil {
		t.Fatal(err)
	}
	steps2 := m.Steps - steps1
	if steps2 >= steps1 {
		t.Errorf("tabled second call (%d steps) not cheaper than first (%d)", steps2, steps1)
	}
	// Asserting clears the memo.
	if err := m.AssertFact(Comp("p", Atom("c"))); err != nil {
		t.Fatal(err)
	}
	sols, err := m.FindAll(x, Comp("p", x))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 3 {
		t.Fatalf("memo not invalidated: %v", sols)
	}
}

func TestCloneIsolation(t *testing.T) {
	m := machineWith(t, &Clause{Head: Comp("p", Atom("a"))})
	c := m.Clone()
	if err := c.AssertFact(Comp("p", Atom("b"))); err != nil {
		t.Fatal(err)
	}
	sols, _ := m.FindAll(NewVar("X"), Comp("p", NewVar("X")))
	if len(sols) != 1 {
		t.Fatalf("clone mutated original: %v", sols)
	}
	sols, _ = c.FindAll(NewVar("X"), Comp("p", NewVar("X")))
	if len(sols) != 2 {
		t.Fatalf("clone missing fact: %v", sols)
	}
}

func TestListHelpers(t *testing.T) {
	l := MkList(Number(1), Number(2))
	if l.String() != "[1,2]" {
		t.Errorf("list string %s", l.String())
	}
	items, ok := ListSlice(l)
	if !ok || len(items) != 2 {
		t.Errorf("ListSlice: %v %v", items, ok)
	}
	// Improper list.
	improper := Cons(Number(1), Number(2))
	if _, ok := ListSlice(improper); ok {
		t.Error("improper list accepted")
	}
	if !strings.Contains(improper.String(), "|") {
		t.Errorf("improper list rendering %s", improper.String())
	}
	if MkList().String() != "[]" {
		t.Error("empty list rendering")
	}
}

func TestCompareOrder(t *testing.T) {
	// Var < Number < Atom < Compound.
	v := NewVar("V")
	terms := []Term{Comp("f", Atom("a")), Atom("z"), Number(1), v}
	sorted := SortUnique(terms)
	if _, isVar := sorted[0].(*Var); !isVar {
		t.Errorf("order wrong: %v", sorted)
	}
	if _, isNum := sorted[1].(Number); !isNum {
		t.Errorf("order wrong: %v", sorted)
	}
	// Compound ordering by arity then functor then args.
	if Compare(Comp("f", Number(1)), Comp("f", Number(2))) >= 0 {
		t.Error("arg order wrong")
	}
	if Compare(Comp("a", Number(1), Number(1)), Comp("z", Number(1))) <= 0 {
		t.Error("arity should dominate functor")
	}
}

func TestIndicatorOf(t *testing.T) {
	ind, err := IndicatorOf(Comp("f", Number(1), Number(2)))
	if err != nil || ind.Functor != "f" || ind.Arity != 2 {
		t.Fatalf("indicator %v %v", ind, err)
	}
	ind, err = IndicatorOf(Atom("q"))
	if err != nil || ind.Arity != 0 {
		t.Fatalf("atom indicator %v %v", ind, err)
	}
	if _, err := IndicatorOf(Number(3)); err == nil {
		t.Fatal("number indicator accepted")
	}
	if ind.String() != "q/0" {
		t.Errorf("indicator string %s", ind.String())
	}
}

func TestSnapshotIndependence(t *testing.T) {
	m := NewMachine()
	x := NewVar("X")
	term := Comp("f", x)
	m.Unify(x, Atom("bound"))
	snap := Snapshot(term)
	m.undo(0)
	if snap.String() != "f(bound)" {
		t.Errorf("snapshot lost binding: %s", snap)
	}
}

func TestUnifyAndIdenticalBuiltins(t *testing.T) {
	m := NewMachine()
	x := NewVar("X")
	res, found, err := m.Once(x, Comp("=", x, Atom("hello")))
	if err != nil || !found || res != Atom("hello") {
		t.Fatalf("=/2: %v %v %v", res, found, err)
	}
	ok, err := m.Query(Comp("=", Atom("a"), Atom("b")))
	if err != nil || ok {
		t.Fatal("distinct atoms unified via =/2")
	}
	ok, err = m.Query(Comp("==", Atom("a"), Atom("a")))
	if err != nil || !ok {
		t.Fatal("==/2 failed on identical atoms")
	}
	// ==/2 does not unify: an unbound var is not identical to an atom.
	ok, err = m.Query(Comp("==", NewVar("U"), Atom("a")))
	if err != nil || ok {
		t.Fatal("==/2 unified an unbound variable")
	}
	ok, err = m.Query(Comp("\\==", Number(1), Number(2)))
	if err != nil || !ok {
		t.Fatal("\\==/2 failed on distinct numbers")
	}
}

func TestSolveEnumeratesAndStops(t *testing.T) {
	m := machineWith(t,
		&Clause{Head: Comp("p", Number(1))},
		&Clause{Head: Comp("p", Number(2))},
		&Clause{Head: Comp("p", Number(3))},
	)
	x := NewVar("X")
	var seen []Term
	err := m.Solve([]Term{Comp("p", x)}, func() bool {
		seen = append(seen, Snapshot(x))
		return len(seen) < 2 // stop after two solutions
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("solutions %v", seen)
	}
}

func TestRetractAllAndDefined(t *testing.T) {
	m := machineWith(t, &Clause{Head: Comp("p", Atom("a"))})
	ind := Indicator{Functor: "p", Arity: 1}
	if !m.Defined(ind) {
		t.Fatal("p/1 should be defined")
	}
	m.RetractAll(ind)
	if m.Defined(ind) {
		t.Fatal("p/1 still defined after RetractAll")
	}
	if _, err := m.Query(Comp("p", Atom("a"))); err == nil {
		t.Fatal("retracted predicate should be unknown")
	}
}

func TestCutErrorString(t *testing.T) {
	e := cutErr{depth: 3}
	if e.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestBuiltinErrorPaths(t *testing.T) {
	m := NewMachine()
	improper := Cons(Number(1), Number(2))
	cases := []Term{
		Comp("sum", improper, NewVar("S")),
		Comp("max", improper, NewVar("M")),
		Comp("member", NewVar("X"), improper),
		Comp("append", NewVar("A"), NewVar("B"), improper),
		Comp("nth0", Number(0), improper, NewVar("E")),
		Comp("sort", improper, NewVar("S")),
		Comp("length", NewVar("L"), Atom("three")),
		Comp("sum", MkList(Atom("notanumber")), NewVar("S")),
		Comp("max", MkList(Comp("f", Number(1))), NewVar("M")),
		Comp("between", Atom("a"), Number(3), NewVar("X")),
	}
	for _, goal := range cases {
		if _, err := m.Query(goal); err == nil {
			t.Errorf("%s: expected error", goal)
		}
	}
}

func TestLengthNegativeOrFractionalFails(t *testing.T) {
	m := NewMachine()
	ok, err := m.Query(Comp("length", NewVar("L"), Number(-1)))
	if err != nil || ok {
		t.Fatal("negative length should fail cleanly")
	}
	ok, err = m.Query(Comp("length", NewVar("L"), Number(2.5)))
	if err != nil || ok {
		t.Fatal("fractional length should fail cleanly")
	}
}

func TestNth0OutOfRangeFails(t *testing.T) {
	m := NewMachine()
	list := MkList(Atom("a"))
	ok, err := m.Query(Comp("nth0", Number(5), list, NewVar("E")))
	if err != nil || ok {
		t.Fatal("out-of-range nth0 should fail")
	}
	ok, err = m.Query(Comp("nth0", Number(-1), list, NewVar("E")))
	if err != nil || ok {
		t.Fatal("negative nth0 should fail")
	}
}

func TestAtomGoalControl(t *testing.T) {
	m := machineWith(t, &Clause{Head: Comp("p", Atom("a"))})
	ok, err := m.Query(Comp(",", Atom("true"), Comp("p", Atom("a"))))
	if err != nil || !ok {
		t.Fatal("true conjunction failed")
	}
	ok, err = m.Query(Comp(",", Atom("fail"), Comp("p", Atom("a"))))
	if err != nil || ok {
		t.Fatal("fail conjunction succeeded")
	}
	// Unbound and numeric goals error.
	if _, err := m.Query(NewVar("G")); err == nil {
		t.Fatal("unbound goal accepted")
	}
	if _, err := m.Query(Comp(",", Number(3), Atom("true"))); err == nil {
		t.Fatal("numeric goal accepted")
	}
}

func TestFindAllWithBuiltinsInsideBodies(t *testing.T) {
	// Rules whose bodies mix builtins and user predicates, exercised through
	// findall: the shape of Example 1's cost rule.
	tid, vid, c, up, tv, con := NewVar("Tid"), NewVar("Vid"), NewVar("C"), NewVar("Up"), NewVar("T"), NewVar("Con")
	m := machineWith(t,
		&Clause{Head: Comp("price", Atom("v0"), Number(2))},
		&Clause{Head: Comp("price", Atom("v1"), Number(5))},
		&Clause{Head: Comp("exetime", Atom("t1"), Atom("v0"), Number(10))},
		&Clause{Head: Comp("exetime", Atom("t1"), Atom("v1"), Number(4))},
		&Clause{Head: Comp("configs", Atom("t1"), Atom("v0"), Number(0))},
		&Clause{Head: Comp("configs", Atom("t1"), Atom("v1"), Number(1))},
		&Clause{Head: Comp("cost", tid, vid, c), Body: []Term{
			Comp("price", vid, up),
			Comp("exetime", tid, vid, tv),
			Comp("configs", tid, vid, con),
			Comp("is", c, Comp("*", Comp("*", tv, up), con)),
		}},
	)
	bag := NewVar("Bag")
	total := NewVar("Total")
	c2 := NewVar("C2")
	goal := Comp(",",
		Comp("findall", c2, Comp("cost", NewVar("T2"), NewVar("V2"), c2), bag),
		Comp("sum", bag, total))
	res, found, err := m.Once(total, goal)
	if err != nil || !found {
		t.Fatalf("cost query: %v %v", found, err)
	}
	// v0: 10*2*0 = 0; v1: 4*5*1 = 20.
	if res != Number(20) {
		t.Fatalf("total cost %v, want 20", res)
	}
}

// Property: unify-then-undo restores every variable, for random term pairs.
func TestUnifyUndoProperty(t *testing.T) {
	// Build random terms over a small vocabulary with shared variables.
	var build func(r *rand.Rand, vars []*Var, depth int) Term
	build = func(r *rand.Rand, vars []*Var, depth int) Term {
		switch c := r.Intn(4); {
		case c == 0 && depth > 0:
			args := make([]Term, r.Intn(3)+1)
			for i := range args {
				args[i] = build(r, vars, depth-1)
			}
			return Comp([]string{"f", "g"}[r.Intn(2)], args...)
		case c == 1:
			return vars[r.Intn(len(vars))]
		case c == 2:
			return Number(float64(r.Intn(5)))
		default:
			return Atom([]string{"a", "b"}[r.Intn(2)])
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vars := []*Var{NewVar("A"), NewVar("B"), NewVar("C")}
		t1 := build(r, vars, 3)
		t2 := build(r, vars, 3)
		m := NewMachine()
		mark := m.mark()
		m.Unify(t1, t2)
		m.undo(mark)
		for _, v := range vars {
			if v.Ref != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: if unification succeeds, both terms snapshot identically.
func TestUnifyMakesEqualProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMachine()
		x, y := NewVar("X"), NewVar("Y")
		t1 := Comp("f", x, Number(float64(r.Intn(3))), y)
		t2 := Comp("f", Atom("a"), Number(float64(r.Intn(3))), Comp("g", x))
		mark := m.mark()
		ok := m.Unify(t1, t2)
		equal := true
		if ok {
			equal = Compare(t1, t2) == 0
		}
		m.undo(mark)
		return !ok || equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
