package prolog

import (
	"fmt"
	"math"
)

// builtin implements one built-in predicate: args are the call's arguments,
// depth the current cut depth, and k the continuation proving the remaining
// goals. A builtin may call k zero or more times (once per solution).
type builtin func(m *Machine, args []Term, depth int, k func() error) error

// builtins is the registry of built-in predicates. WLog highlights these in
// its programs (§4.1: "Prolog offers many built-in predicates, such as the
// ones for arithmetic operations (e.g., is, max and sum) and the ones for
// list-based operations (e.g., setof, findall)").
var builtins map[Indicator]builtin

func init() {
	builtins = map[Indicator]builtin{
		{"is", 2}:      biIs,
		{"<", 2}:       biCompare(func(a, b float64) bool { return a < b }),
		{">", 2}:       biCompare(func(a, b float64) bool { return a > b }),
		{"=<", 2}:      biCompare(func(a, b float64) bool { return a <= b }),
		{">=", 2}:      biCompare(func(a, b float64) bool { return a >= b }),
		{"=:=", 2}:     biCompare(func(a, b float64) bool { return a == b }),
		{"=\\=", 2}:    biCompare(func(a, b float64) bool { return a != b }),
		{"=", 2}:       biUnify,
		{"==", 2}:      biIdentical,
		{"\\==", 2}:    biNotIdentical,
		{"findall", 3}: biFindall,
		{"setof", 3}:   biSetof,
		{"sum", 2}:     biSum,
		{"max", 2}:     biMax,
		{"min", 2}:     biMin,
		{"member", 2}:  biMember,
		{"append", 3}:  biAppend,
		{"length", 2}:  biLength,
		{"between", 3}: biBetween,
		{"nth0", 3}:    biNth0,
		{"sort", 2}:    biSort,
		{"number", 1}:  biTypeCheck(func(t Term) bool { _, ok := t.(Number); return ok }),
		{"atom", 1}:    biTypeCheck(func(t Term) bool { _, ok := t.(Atom); return ok }),
		{"var", 1}:     biTypeCheck(func(t Term) bool { _, ok := t.(*Var); return ok }),
		{"nonvar", 1}:  biTypeCheck(func(t Term) bool { _, ok := t.(*Var); return !ok }),
		{"ground", 1}:  biTypeCheck(Ground),
	}
}

// EvalArith evaluates an arithmetic expression term to a float64.
func EvalArith(t Term) (float64, error) {
	switch tt := deref(t).(type) {
	case Number:
		return float64(tt), nil
	case *Var:
		return 0, fmt.Errorf("prolog: arithmetic on unbound variable %s", tt)
	case Atom:
		switch tt {
		case "pi":
			return math.Pi, nil
		case "e":
			return math.E, nil
		}
		return 0, fmt.Errorf("prolog: atom %s is not arithmetic", tt)
	case *Compound:
		unary := func(f func(float64) float64) (float64, error) {
			x, err := EvalArith(tt.Args[0])
			if err != nil {
				return 0, err
			}
			return f(x), nil
		}
		binary := func(f func(a, b float64) float64) (float64, error) {
			a, err := EvalArith(tt.Args[0])
			if err != nil {
				return 0, err
			}
			b, err := EvalArith(tt.Args[1])
			if err != nil {
				return 0, err
			}
			return f(a, b), nil
		}
		switch {
		case tt.Functor == "+" && len(tt.Args) == 2:
			return binary(func(a, b float64) float64 { return a + b })
		case tt.Functor == "-" && len(tt.Args) == 2:
			return binary(func(a, b float64) float64 { return a - b })
		case tt.Functor == "*" && len(tt.Args) == 2:
			return binary(func(a, b float64) float64 { return a * b })
		case tt.Functor == "/" && len(tt.Args) == 2:
			a, err := EvalArith(tt.Args[0])
			if err != nil {
				return 0, err
			}
			b, err := EvalArith(tt.Args[1])
			if err != nil {
				return 0, err
			}
			if b == 0 {
				return 0, fmt.Errorf("prolog: division by zero")
			}
			return a / b, nil
		case tt.Functor == "-" && len(tt.Args) == 1:
			return unary(func(x float64) float64 { return -x })
		case tt.Functor == "abs" && len(tt.Args) == 1:
			return unary(math.Abs)
		case tt.Functor == "sqrt" && len(tt.Args) == 1:
			return unary(math.Sqrt)
		case tt.Functor == "floor" && len(tt.Args) == 1:
			return unary(math.Floor)
		case tt.Functor == "ceiling" && len(tt.Args) == 1:
			return unary(math.Ceil)
		case tt.Functor == "min" && len(tt.Args) == 2:
			return binary(math.Min)
		case tt.Functor == "max" && len(tt.Args) == 2:
			return binary(math.Max)
		case tt.Functor == "mod" && len(tt.Args) == 2:
			return binary(math.Mod)
		}
		return 0, fmt.Errorf("prolog: unknown arithmetic function %s/%d", tt.Functor, len(tt.Args))
	}
	return 0, fmt.Errorf("prolog: cannot evaluate %s", t)
}

func biIs(m *Machine, args []Term, depth int, k func() error) error {
	v, err := EvalArith(args[1])
	if err != nil {
		return err
	}
	mark := m.mark()
	if m.Unify(args[0], Number(v)) {
		if err := k(); err != nil {
			m.undo(mark)
			return err
		}
	}
	m.undo(mark)
	return nil
}

func biCompare(cmp func(a, b float64) bool) builtin {
	return func(m *Machine, args []Term, depth int, k func() error) error {
		a, err := EvalArith(args[0])
		if err != nil {
			return err
		}
		b, err := EvalArith(args[1])
		if err != nil {
			return err
		}
		if cmp(a, b) {
			return k()
		}
		return nil
	}
}

func biUnify(m *Machine, args []Term, depth int, k func() error) error {
	mark := m.mark()
	if m.Unify(args[0], args[1]) {
		if err := k(); err != nil {
			m.undo(mark)
			return err
		}
	}
	m.undo(mark)
	return nil
}

func biIdentical(m *Machine, args []Term, depth int, k func() error) error {
	if Compare(args[0], args[1]) == 0 {
		return k()
	}
	return nil
}

func biNotIdentical(m *Machine, args []Term, depth int, k func() error) error {
	if Compare(args[0], args[1]) != 0 {
		return k()
	}
	return nil
}

func biFindall(m *Machine, args []Term, depth int, k func() error) error {
	sols, err := m.collect(args[0], args[1], depth)
	if err != nil {
		return err
	}
	mark := m.mark()
	if m.Unify(args[2], MkList(sols...)) {
		if err := k(); err != nil {
			m.undo(mark)
			return err
		}
	}
	m.undo(mark)
	return nil
}

// biSetof implements the sorted-unique collection of setof/3. Like standard
// setof it fails when there are no solutions. (Free-variable grouping is not
// implemented; WLog programs quantify all variables inside the goal.)
func biSetof(m *Machine, args []Term, depth int, k func() error) error {
	sols, err := m.collect(args[0], args[1], depth)
	if err != nil {
		return err
	}
	if len(sols) == 0 {
		return nil
	}
	sols = SortUnique(sols)
	mark := m.mark()
	if m.Unify(args[2], MkList(sols...)) {
		if err := k(); err != nil {
			m.undo(mark)
			return err
		}
	}
	m.undo(mark)
	return nil
}

func biSum(m *Machine, args []Term, depth int, k func() error) error {
	items, ok := ListSlice(args[0])
	if !ok {
		return fmt.Errorf("prolog: sum/2 needs a proper list, got %s", args[0])
	}
	total := 0.0
	for _, it := range items {
		v, err := EvalArith(it)
		if err != nil {
			return err
		}
		total += v
	}
	mark := m.mark()
	if m.Unify(args[1], Number(total)) {
		if err := k(); err != nil {
			m.undo(mark)
			return err
		}
	}
	m.undo(mark)
	return nil
}

// extremumKey returns the numeric ordering key of a list element for
// max/2 and min/2: a plain number orders by itself; a list such as the
// [Path,T] pairs of Example 1 orders by its last element.
func extremumKey(t Term) (float64, error) {
	t = deref(t)
	if n, ok := t.(Number); ok {
		return float64(n), nil
	}
	if items, ok := ListSlice(t); ok && len(items) > 0 {
		return EvalArith(items[len(items)-1])
	}
	return 0, fmt.Errorf("prolog: cannot order %s in max/min", t)
}

func biExtremum(better func(a, b float64) bool) builtin {
	return func(m *Machine, args []Term, depth int, k func() error) error {
		items, ok := ListSlice(args[0])
		if !ok {
			return fmt.Errorf("prolog: max/min needs a proper list, got %s", args[0])
		}
		if len(items) == 0 {
			return nil // fail on empty list
		}
		best := items[0]
		bestKey, err := extremumKey(best)
		if err != nil {
			return err
		}
		for _, it := range items[1:] {
			key, err := extremumKey(it)
			if err != nil {
				return err
			}
			if better(key, bestKey) {
				best, bestKey = it, key
			}
		}
		mark := m.mark()
		if m.Unify(args[1], best) {
			if err := k(); err != nil {
				m.undo(mark)
				return err
			}
		}
		m.undo(mark)
		return nil
	}
}

var (
	biMax = biExtremum(func(a, b float64) bool { return a > b })
	biMin = biExtremum(func(a, b float64) bool { return a < b })
)

func biMember(m *Machine, args []Term, depth int, k func() error) error {
	items, ok := ListSlice(args[1])
	if !ok {
		return fmt.Errorf("prolog: member/2 needs a proper list, got %s", args[1])
	}
	for _, it := range items {
		mark := m.mark()
		if m.Unify(args[0], it) {
			if err := k(); err != nil {
				m.undo(mark)
				return err
			}
		}
		m.undo(mark)
	}
	return nil
}

func biAppend(m *Machine, args []Term, depth int, k func() error) error {
	// If the first two are proper lists, concatenate directly.
	if xs, ok := ListSlice(args[0]); ok {
		if ys, ok2 := ListSlice(args[1]); ok2 {
			mark := m.mark()
			if m.Unify(args[2], MkList(append(append([]Term{}, xs...), ys...)...)) {
				if err := k(); err != nil {
					m.undo(mark)
					return err
				}
			}
			m.undo(mark)
			return nil
		}
	}
	// Otherwise enumerate splits of the third list.
	zs, ok := ListSlice(args[2])
	if !ok {
		return fmt.Errorf("prolog: append/3 needs list arguments")
	}
	for i := 0; i <= len(zs); i++ {
		mark := m.mark()
		if m.Unify(args[0], MkList(zs[:i]...)) && m.Unify(args[1], MkList(zs[i:]...)) {
			if err := k(); err != nil {
				m.undo(mark)
				return err
			}
		}
		m.undo(mark)
	}
	return nil
}

func biLength(m *Machine, args []Term, depth int, k func() error) error {
	if items, ok := ListSlice(args[0]); ok {
		mark := m.mark()
		if m.Unify(args[1], Number(len(items))) {
			if err := k(); err != nil {
				m.undo(mark)
				return err
			}
		}
		m.undo(mark)
		return nil
	}
	// Generate a list of fresh variables of the requested length.
	n, err := EvalArith(args[1])
	if err != nil {
		return fmt.Errorf("prolog: length/2 with unbound list needs a numeric length")
	}
	if n < 0 || n != math.Trunc(n) {
		return nil
	}
	vars := make([]Term, int(n))
	for i := range vars {
		vars[i] = NewVar("")
	}
	mark := m.mark()
	if m.Unify(args[0], MkList(vars...)) {
		if err := k(); err != nil {
			m.undo(mark)
			return err
		}
	}
	m.undo(mark)
	return nil
}

func biBetween(m *Machine, args []Term, depth int, k func() error) error {
	lo, err := EvalArith(args[0])
	if err != nil {
		return err
	}
	hi, err := EvalArith(args[1])
	if err != nil {
		return err
	}
	for i := lo; i <= hi; i++ {
		mark := m.mark()
		if m.Unify(args[2], Number(i)) {
			if err := k(); err != nil {
				m.undo(mark)
				return err
			}
		}
		m.undo(mark)
	}
	return nil
}

func biNth0(m *Machine, args []Term, depth int, k func() error) error {
	items, ok := ListSlice(args[1])
	if !ok {
		return fmt.Errorf("prolog: nth0/3 needs a proper list")
	}
	if n, isNum := deref(args[0]).(Number); isNum {
		i := int(n)
		if i < 0 || i >= len(items) {
			return nil
		}
		mark := m.mark()
		if m.Unify(args[2], items[i]) {
			if err := k(); err != nil {
				m.undo(mark)
				return err
			}
		}
		m.undo(mark)
		return nil
	}
	for i, it := range items {
		mark := m.mark()
		if m.Unify(args[0], Number(i)) && m.Unify(args[2], it) {
			if err := k(); err != nil {
				m.undo(mark)
				return err
			}
		}
		m.undo(mark)
	}
	return nil
}

func biSort(m *Machine, args []Term, depth int, k func() error) error {
	items, ok := ListSlice(args[0])
	if !ok {
		return fmt.Errorf("prolog: sort/2 needs a proper list")
	}
	snap := make([]Term, len(items))
	for i, it := range items {
		snap[i] = Snapshot(it)
	}
	sorted := SortUnique(snap)
	mark := m.mark()
	if m.Unify(args[1], MkList(sorted...)) {
		if err := k(); err != nil {
			m.undo(mark)
			return err
		}
	}
	m.undo(mark)
	return nil
}

func biTypeCheck(pred func(Term) bool) builtin {
	return func(m *Machine, args []Term, depth int, k func() error) error {
		if pred(deref(args[0])) {
			return k()
		}
		return nil
	}
}
