// Package prolog implements the logic-programming engine WLog extends: terms,
// unification, a SLD-resolution solver with backtracking and cut, the
// built-in predicates the paper's example programs rely on (is, findall,
// setof, sum, max, member, ...), and answer tabling for pure predicates.
// WLog programs are translated to this engine's clause database; the
// probabilistic IR (package probir) evaluates queries against it per sampled
// world.
package prolog

import (
	"fmt"
	"sort"
	"strings"
)

// Term is a Prolog term: Atom, Number, *Var or *Compound.
type Term interface {
	isTerm()
	String() string
}

// Atom is a constant symbol (lower-case initial by convention).
type Atom string

func (Atom) isTerm() {}

// String implements fmt.Stringer.
func (a Atom) String() string { return string(a) }

// Number is a numeric constant. WLog models times, costs and probabilities,
// so a single float64 numeric type suffices.
type Number float64

func (Number) isTerm() {}

// String implements fmt.Stringer.
func (n Number) String() string {
	return strings.TrimSuffix(strings.TrimSuffix(fmt.Sprintf("%.6f", float64(n)), "000000"), ".")
}

// Var is a logic variable. Ref is nil while unbound; binding assigns Ref and
// is undone on backtracking via the trail.
type Var struct {
	Name string
	Ref  Term
}

func (*Var) isTerm() {}

// String implements fmt.Stringer.
func (v *Var) String() string {
	if v.Ref != nil {
		return v.Ref.String()
	}
	if v.Name == "" {
		return fmt.Sprintf("_G%p", v)
	}
	return v.Name
}

// NewVar returns a fresh unbound variable with the given display name.
func NewVar(name string) *Var { return &Var{Name: name} }

// Compound is a functor with arguments, e.g. exetime(t1, v0, T).
type Compound struct {
	Functor string
	Args    []Term
}

func (*Compound) isTerm() {}

// String implements fmt.Stringer.
func (c *Compound) String() string {
	if c.Functor == "." && len(c.Args) == 2 {
		// Render lists in bracket notation.
		var items []string
		var t Term = c
		for {
			cc, ok := t.(*Compound)
			if !ok || cc.Functor != "." || len(cc.Args) != 2 {
				break
			}
			items = append(items, deref(cc.Args[0]).String())
			t = deref(cc.Args[1])
		}
		if a, ok := t.(Atom); ok && a == "[]" {
			return "[" + strings.Join(items, ",") + "]"
		}
		return "[" + strings.Join(items, ",") + "|" + t.String() + "]"
	}
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = deref(a).String()
	}
	return fmt.Sprintf("%s(%s)", c.Functor, strings.Join(parts, ","))
}

// Comp builds a compound term.
func Comp(functor string, args ...Term) *Compound {
	return &Compound{Functor: functor, Args: args}
}

// EmptyList is the empty-list atom.
const EmptyList = Atom("[]")

// Cons builds the list cell [head|tail].
func Cons(head, tail Term) *Compound { return Comp(".", head, tail) }

// MkList builds a proper list from items.
func MkList(items ...Term) Term {
	var t Term = EmptyList
	for i := len(items) - 1; i >= 0; i-- {
		t = Cons(items[i], t)
	}
	return t
}

// ListSlice converts a proper list term to a Go slice. It reports
// ok=false for improper or non-list terms.
func ListSlice(t Term) (items []Term, ok bool) {
	t = deref(t)
	for {
		if a, isAtom := t.(Atom); isAtom && a == "[]" {
			return items, true
		}
		c, isComp := t.(*Compound)
		if !isComp || c.Functor != "." || len(c.Args) != 2 {
			return nil, false
		}
		items = append(items, deref(c.Args[0]))
		t = deref(c.Args[1])
	}
}

// Indicator identifies a predicate by functor and arity, e.g. path/4.
type Indicator struct {
	Functor string
	Arity   int
}

// String implements fmt.Stringer.
func (i Indicator) String() string { return fmt.Sprintf("%s/%d", i.Functor, i.Arity) }

// IndicatorOf returns the predicate indicator of a callable term.
func IndicatorOf(t Term) (Indicator, error) {
	switch tt := deref(t).(type) {
	case Atom:
		return Indicator{Functor: string(tt), Arity: 0}, nil
	case *Compound:
		return Indicator{Functor: tt.Functor, Arity: len(tt.Args)}, nil
	default:
		return Indicator{}, fmt.Errorf("prolog: term %s is not callable", t)
	}
}

// Clause is one rule: Head :- Body. A fact has an empty Body.
type Clause struct {
	Head Term
	Body []Term
}

// renameClause copies a clause with fresh variables, preserving sharing.
func renameClause(c *Clause) *Clause {
	seen := map[*Var]*Var{}
	nc := &Clause{Head: renameTerm(c.Head, seen)}
	nc.Body = make([]Term, len(c.Body))
	for i, b := range c.Body {
		nc.Body[i] = renameTerm(b, seen)
	}
	return nc
}

func renameTerm(t Term, seen map[*Var]*Var) Term {
	switch tt := t.(type) {
	case Atom, Number:
		return tt
	case *Var:
		if tt.Ref != nil {
			return renameTerm(tt.Ref, seen)
		}
		if nv, ok := seen[tt]; ok {
			return nv
		}
		nv := NewVar(tt.Name)
		seen[tt] = nv
		return nv
	case *Compound:
		args := make([]Term, len(tt.Args))
		for i, a := range tt.Args {
			args[i] = renameTerm(a, seen)
		}
		return &Compound{Functor: tt.Functor, Args: args}
	default:
		panic(fmt.Sprintf("prolog: unknown term type %T", t))
	}
}

// Snapshot returns a copy of t with all bound variables replaced by their
// values and unbound variables preserved as fresh markers. Use it to keep a
// solution after backtracking undoes bindings.
func Snapshot(t Term) Term {
	return renameTerm(t, map[*Var]*Var{})
}

// deref follows variable bindings to the representative term.
func deref(t Term) Term {
	for {
		v, ok := t.(*Var)
		if !ok || v.Ref == nil {
			return t
		}
		t = v.Ref
	}
}

// Deref is the exported variant of deref.
func Deref(t Term) Term { return deref(t) }

// Ground reports whether t contains no unbound variables.
func Ground(t Term) bool {
	switch tt := deref(t).(type) {
	case Atom, Number:
		return true
	case *Var:
		return false
	case *Compound:
		for _, a := range tt.Args {
			if !Ground(a) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Compare imposes the standard order of terms: Number < Atom < Compound
// (by arity, then functor, then args); unbound Vars sort first by identity.
func Compare(a, b Term) int {
	a, b = deref(a), deref(b)
	oa, ob := termOrder(a), termOrder(b)
	if oa != ob {
		return oa - ob
	}
	switch ta := a.(type) {
	case *Var:
		tb := b.(*Var)
		if ta == tb {
			return 0
		}
		return strings.Compare(fmt.Sprintf("%p", ta), fmt.Sprintf("%p", tb))
	case Number:
		tb := b.(Number)
		switch {
		case ta < tb:
			return -1
		case ta > tb:
			return 1
		}
		return 0
	case Atom:
		return strings.Compare(string(ta), string(b.(Atom)))
	case *Compound:
		tb := b.(*Compound)
		if d := len(ta.Args) - len(tb.Args); d != 0 {
			return d
		}
		if d := strings.Compare(ta.Functor, tb.Functor); d != 0 {
			return d
		}
		for i := range ta.Args {
			if d := Compare(ta.Args[i], tb.Args[i]); d != 0 {
				return d
			}
		}
		return 0
	}
	return 0
}

func termOrder(t Term) int {
	switch t.(type) {
	case *Var:
		return 0
	case Number:
		return 1
	case Atom:
		return 2
	case *Compound:
		return 3
	}
	return 4
}

// SortUnique sorts terms in the standard order and removes duplicates, as
// setof/3 requires.
func SortUnique(ts []Term) []Term {
	sort.Slice(ts, func(i, j int) bool { return Compare(ts[i], ts[j]) < 0 })
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || Compare(out[len(out)-1], t) != 0 {
			out = append(out, t)
		}
	}
	return out
}
