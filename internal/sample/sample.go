// Package sample implements the statistical machinery of adaptive-precision
// Monte-Carlo inference: chunked world schedules, sequential stopping rules
// for the solver's probabilistic feasibility checks, and paired-difference
// racing trackers for successive elimination across a frontier batch.
//
// The solver's feasibility question (§4.2 of the paper) is "is
// P(constraint satisfied) >= percentile?", answered by averaging 0/1
// indicator figures over a fixed number of Monte-Carlo worlds. Two stopping
// rules decide that question from a prefix of the worlds:
//
//   - The exact worst-case rule: after seeing s successes in t of N worlds,
//     the final success probability lies in [s/N, (s+N-t)/N] no matter how
//     the remaining worlds come out. When that whole interval falls on one
//     side of the target the verdict is certain — not statistically likely,
//     certain — so a verdict reached this way is always bit-identical to the
//     full evaluation's. A clearly infeasible state is decided after
//     floor((1-pct)*N)+1 failures (a handful of worlds at pct=0.96), and at
//     t=N the interval collapses to the exact final probability, so the rule
//     always terminates with the exact verdict.
//
//   - Anytime-valid confidence sequences (Hoeffding or empirical-Bernstein
//     radii with a telescoping error allocation over checks) decide states
//     whose empirical mean is far from the target long before the worst-case
//     interval closes. These fire only at large world counts — at N=100 the
//     exact rule always wins — and carry a total error probability bounded by
//     the configured delta.
//
// Racing is driven by common random numbers (the CRN contract of the
// evaluation core): every state sees the same world realizations, so
// per-world differences between two states are paired samples whose variance
// is far below the variance of either state's figures alone. The Paired
// tracker accumulates Welford moments of those differences and reports an
// empirical-Bernstein lower confidence bound on the mean difference;
// successive elimination drops a state once it is provably (to the
// configured confidence) worse than the racing reference.
package sample

import (
	"math"
	"sort"
)

// Verdict is the outcome of a sequential feasibility check.
type Verdict int

const (
	// Undecided means the prefix cannot yet settle the check.
	Undecided Verdict = iota
	// DecidedFeasible means the constraint probability provably reaches the
	// target.
	DecidedFeasible
	// DecidedInfeasible means the constraint probability provably misses the
	// target.
	DecidedInfeasible
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case DecidedFeasible:
		return "feasible"
	case DecidedInfeasible:
		return "infeasible"
	case Undecided:
		return "undecided"
	}
	return "verdict(?)"
}

// Chunks returns the cumulative world counts at which a sequential evaluation
// checks its stopping rules: min worlds first, then geometrically doubling
// chunk sizes, ending exactly at total. Geometric growth keeps the number of
// checks (and therefore the union-bound error allocation and the per-chunk
// scheduling overhead) logarithmic in total.
func Chunks(min, total int) []int {
	if total <= 0 {
		return nil
	}
	if min < 1 {
		min = 1
	}
	var ends []int
	end, size := 0, min
	for end < total {
		end += size
		if end > total {
			end = total
		}
		ends = append(ends, end)
		size *= 2
	}
	return ends
}

// TailChunks is Chunks with additional checkpoints where tail verdicts first
// become decidable. Under the exact worst-case rule a feasible verdict for a
// constraint at percentile target needs at least ceil(target*total) successes,
// so the earliest possible feasible stop is at ceil(target*total) seen worlds —
// world 96 of 100 at pct=0.96, which plain geometric chunks jump straight past
// to the full run. For every target this inserts checkpoints at
// ceil(target*total) + {0, 1, 2, 4, 8, ...}: a state whose few violating
// worlds were already seen (decisive-world-first ordering front-loads them)
// confirms feasible within a geometric cushion of its failure count instead of
// always running to total. The result is sorted, deduplicated, and still ends
// exactly at total, so it composes with the same stopping rules as Chunks.
func TailChunks(min, total int, targets []float64) []int {
	ends := Chunks(min, total)
	if total <= 0 || len(targets) == 0 {
		return ends
	}
	seen := make(map[int]bool, len(ends)+8*len(targets))
	for _, e := range ends {
		seen[e] = true
	}
	for _, tg := range targets {
		if tg <= 0 || tg > 1 {
			continue
		}
		first := int(math.Ceil(tg * float64(total)))
		if first < 1 {
			first = 1
		}
		for step := 0; ; {
			cp := first + step
			if cp >= total {
				break
			}
			if !seen[cp] {
				seen[cp] = true
				ends = append(ends, cp)
			}
			if step == 0 {
				step = 1
			} else {
				step *= 2
			}
		}
	}
	sort.Ints(ends)
	return ends
}

// DeltaAt allocates the per-check error budget of the k-th stopping check
// (1-based) from a total budget delta: delta/(k*(k+1)), which telescopes to
// at most delta over any number of checks.
func DeltaAt(check int, delta float64) float64 {
	if check < 1 {
		check = 1
	}
	return delta / (float64(check) * float64(check+1))
}

// HoeffdingRadius is the two-sided Hoeffding confidence radius for the mean
// of n i.i.d. [0,1]-bounded samples at error probability delta:
// sqrt(ln(2/delta) / (2n)).
func HoeffdingRadius(n int, delta float64) float64 {
	if n <= 0 || delta <= 0 || delta >= 1 {
		return math.Inf(1)
	}
	return math.Sqrt(math.Log(2/delta) / (2 * float64(n)))
}

// BernsteinRadius is the empirical-Bernstein confidence radius for the mean
// of n i.i.d. samples with range width rang and sample variance v, at error
// probability delta: sqrt(2 v ln(3/delta) / n) + 3 rang ln(3/delta) / n.
// It beats Hoeffding when the sample variance is small relative to the
// range — the common case for CRN-paired differences.
func BernsteinRadius(n int, v, rang, delta float64) float64 {
	if n <= 0 || delta <= 0 || delta >= 1 {
		return math.Inf(1)
	}
	l := math.Log(3 / delta)
	fn := float64(n)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(2*v*l/fn) + 3*rang*l/fn
}

// Bernoulli tracks the running success count of one probabilistic constraint
// over a prefix of Monte-Carlo worlds. Succ is kept as a float64 because it
// is folded from indicator figure sums exactly as the full reduction folds
// them — at Seen == total, Succ/total is bit-identical to the probability
// the full evaluation reports.
type Bernoulli struct {
	Succ float64
	Seen int
}

// Add folds a chunk's indicator sum over worlds more worlds into the tracker.
func (b *Bernoulli) Add(succ float64, worlds int) {
	b.Succ += succ
	b.Seen += worlds
}

// Range returns the worst-case interval of the final success probability over
// total worlds: every unseen world failing (lo) or succeeding (hi). Both
// bounds are exact — division by total is monotone in the numerator.
func (b Bernoulli) Range(total int) (lo, hi float64) {
	ft := float64(total)
	lo = b.Succ / ft
	hi = (b.Succ + float64(total-b.Seen)) / ft
	return lo, hi
}

// Check decides the constraint "final success probability >= target" from the
// prefix. The exact worst-case rule is consulted first (its verdicts are
// certain and bit-identical to the full evaluation); the anytime-valid
// Hoeffding confidence sequence supplements it with error budget
// DeltaAt(check, delta) when delta > 0 and worlds remain. check is the
// 1-based index of this stopping check.
func (b Bernoulli) Check(total int, target, delta float64, check int) Verdict {
	lo, hi := b.Range(total)
	if lo >= target {
		return DecidedFeasible
	}
	if hi < target {
		return DecidedInfeasible
	}
	if b.Seen < total && b.Seen > 0 && delta > 0 {
		r := HoeffdingRadius(b.Seen, DeltaAt(check, delta))
		p := b.Succ / float64(b.Seen)
		if p-r >= target {
			return DecidedFeasible
		}
		if p+r < target {
			return DecidedInfeasible
		}
	}
	return Undecided
}

// Paired accumulates Welford moments of CRN-paired per-world differences
// (this state's figure minus the racing reference's, same world index on both
// sides) plus the largest absolute difference seen, which stands in for the
// unknown range in the empirical-Bernstein radius.
type Paired struct {
	N      int
	Mean   float64
	m2     float64
	AbsMax float64
}

// Add folds one paired difference.
func (p *Paired) Add(d float64) {
	p.N++
	delta := d - p.Mean
	p.Mean += delta / float64(p.N)
	p.m2 += delta * (d - p.Mean)
	if a := math.Abs(d); a > p.AbsMax {
		p.AbsMax = a
	}
}

// Var returns the sample variance of the differences.
func (p Paired) Var() float64 {
	if p.N < 2 {
		return math.Inf(1)
	}
	return p.m2 / float64(p.N-1)
}

// LowerBound returns an empirical-Bernstein lower confidence bound on the
// mean difference at error probability DeltaAt(check, delta). A positive
// bound means this state's figure provably exceeds the reference's on
// average — for a minimized figure, grounds for elimination. The observed
// absolute maximum stands in for the range, so the bound is a strong
// heuristic rather than a finite-sample certainty; racing callers carry the
// residual risk in their configured delta.
func (p Paired) LowerBound(delta float64, check int) float64 {
	if p.N < 2 {
		return math.Inf(-1)
	}
	return p.Mean - BernsteinRadius(p.N, p.Var(), 2*p.AbsMax, DeltaAt(check, delta))
}
