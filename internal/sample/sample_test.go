package sample

import (
	"math"
	"math/rand"
	"testing"
)

func TestChunks(t *testing.T) {
	cases := []struct {
		min, total int
		want       []int
	}{
		{16, 100, []int{16, 48, 100}},
		{16, 16, []int{16}},
		{16, 10, []int{10}},
		{1, 7, []int{1, 3, 7}},
		{4, 64, []int{4, 12, 28, 60, 64}},
		{16, 0, nil},
		{0, 5, []int{1, 3, 5}},
	}
	for _, c := range cases {
		got := Chunks(c.min, c.total)
		if len(got) != len(c.want) {
			t.Fatalf("Chunks(%d, %d) = %v, want %v", c.min, c.total, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Chunks(%d, %d) = %v, want %v", c.min, c.total, got, c.want)
			}
		}
	}
	// The last chunk must always land exactly on total.
	for min := 1; min < 40; min++ {
		for total := 1; total < 200; total += 7 {
			ends := Chunks(min, total)
			if ends[len(ends)-1] != total {
				t.Fatalf("Chunks(%d, %d) ends at %d", min, total, ends[len(ends)-1])
			}
			prev := 0
			for _, e := range ends {
				if e <= prev {
					t.Fatalf("Chunks(%d, %d): non-increasing end %d after %d", min, total, e, prev)
				}
				prev = e
			}
		}
	}
}

func TestDeltaAtTelescopes(t *testing.T) {
	const delta = 0.01
	sum := 0.0
	for k := 1; k <= 10000; k++ {
		sum += DeltaAt(k, delta)
	}
	if sum > delta {
		t.Fatalf("sum of per-check budgets %g exceeds total %g", sum, delta)
	}
	if sum < 0.99*delta {
		t.Fatalf("allocation wastes too much budget: %g of %g", sum, delta)
	}
}

func TestRadiiShrink(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int{1, 2, 4, 16, 64, 256} {
		r := HoeffdingRadius(n, 0.01)
		if r >= prev {
			t.Fatalf("Hoeffding radius not shrinking at n=%d: %g >= %g", n, r, prev)
		}
		prev = r
	}
	if r := HoeffdingRadius(0, 0.01); !math.IsInf(r, 1) {
		t.Fatalf("HoeffdingRadius(0) = %g, want +Inf", r)
	}
	// Bernstein beats Hoeffding when the variance is small.
	if b, h := BernsteinRadius(1000, 0.001, 1, 0.01), HoeffdingRadius(1000, 0.01); b >= h {
		t.Fatalf("low-variance Bernstein %g not below Hoeffding %g", b, h)
	}
}

// TestBernoulliExactNeverWrong drives random Bernoulli world sequences
// through the exact rule (delta=0) and asserts that any early verdict matches
// the verdict computed from the full sequence — the property that makes
// adaptive feasibility bit-identical to fixed evaluation.
func TestBernoulliExactNeverWrong(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const total = 100
	for trial := 0; trial < 2000; trial++ {
		p := rng.Float64()
		target := 0.5 + rng.Float64()/2
		outcomes := make([]float64, total)
		full := 0.0
		for i := range outcomes {
			if rng.Float64() < p {
				outcomes[i] = 1
				full++
			}
		}
		finalFeasible := full/float64(total) >= target
		var b Bernoulli
		decided := Undecided
		decidedAt := 0
		check := 0
		prev := 0
		for _, end := range Chunks(8, total) {
			chunk := 0.0
			for i := prev; i < end; i++ {
				chunk += outcomes[i]
			}
			b.Add(chunk, end-prev)
			prev = end
			check++
			if v := b.Check(total, target, 0, check); v != Undecided {
				decided, decidedAt = v, end
				break
			}
		}
		if decided == Undecided {
			t.Fatalf("trial %d: undecided at t=N (the exact rule must close)", trial)
		}
		if (decided == DecidedFeasible) != finalFeasible {
			t.Fatalf("trial %d: early verdict %v at t=%d contradicts final feasible=%v",
				trial, decided, decidedAt, finalFeasible)
		}
	}
}

// TestBernoulliDecidesInfeasibleEarly checks the savings claim: a clearly
// infeasible state at pct=0.96 is decided after a handful of worlds.
func TestBernoulliDecidesInfeasibleEarly(t *testing.T) {
	const total = 100
	var b Bernoulli
	// Alternate success/failure: p ~ 0.5, far below 0.96.
	decidedAt := 0
	for it := 0; it < total; it++ {
		if it%2 == 0 {
			b.Add(1, 1)
		} else {
			b.Add(0, 1)
		}
		if b.Check(total, 0.96, 0, 1) == DecidedInfeasible {
			decidedAt = it + 1
			break
		}
	}
	if decidedAt == 0 || decidedAt > 12 {
		t.Fatalf("clearly infeasible state decided at t=%d, want <= 12", decidedAt)
	}
}

// TestBernoulliConfidenceStops checks that the Hoeffding supplement fires at
// large world counts where the worst-case interval is still open.
func TestBernoulliConfidenceStops(t *testing.T) {
	const total = 100000
	b := Bernoulli{Succ: 4000, Seen: 4000} // perfect record so far
	if v := b.Check(total, 0.96, 0, 1); v != Undecided {
		t.Fatalf("exact rule alone decided %v with %d/%d worlds", v, b.Seen, total)
	}
	if v := b.Check(total, 0.96, 1e-3, 3); v != DecidedFeasible {
		t.Fatalf("confidence sequence verdict %v, want feasible", v)
	}
	// And the mirror: a terrible record decides infeasible.
	b = Bernoulli{Succ: 1000, Seen: 2000}
	if v := b.Check(total, 0.96, 1e-3, 3); v != DecidedInfeasible {
		t.Fatalf("confidence sequence verdict %v, want infeasible", v)
	}
}

func TestPairedWelford(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var p Paired
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 1.5
		p.Add(xs[i])
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	v /= float64(len(xs) - 1)
	if math.Abs(p.Mean-mean) > 1e-9 || math.Abs(p.Var()-v) > 1e-9 {
		t.Fatalf("Welford mean/var (%g, %g) != direct (%g, %g)", p.Mean, p.Var(), mean, v)
	}
	// A clearly positive mean difference yields a positive lower bound; a
	// zero-mean one does not.
	var pos, zero Paired
	for i := 0; i < 400; i++ {
		pos.Add(5 + rng.NormFloat64()*0.1)
		zero.Add(rng.NormFloat64() * 0.1)
	}
	if lb := pos.LowerBound(1e-3, 1); lb <= 0 {
		t.Fatalf("positive-mean lower bound %g, want > 0", lb)
	}
	if lb := zero.LowerBound(1e-3, 1); lb > 0 {
		t.Fatalf("zero-mean lower bound %g, want <= 0", lb)
	}
	if lb := (Paired{}).LowerBound(1e-3, 1); !math.IsInf(lb, -1) {
		t.Fatalf("empty tracker lower bound %g, want -Inf", lb)
	}
}

func TestTailChunks(t *testing.T) {
	// With no (or out-of-range) targets TailChunks degenerates to Chunks.
	for _, targets := range [][]float64{nil, {}, {-0.5, 0, 1.5}} {
		got := TailChunks(16, 100, targets)
		want := Chunks(16, 100)
		if len(got) != len(want) {
			t.Fatalf("TailChunks(16, 100, %v) = %v, want %v", targets, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("TailChunks(16, 100, %v) = %v, want %v", targets, got, want)
			}
		}
	}
	if got := TailChunks(16, 0, []float64{0.96}); got != nil {
		t.Fatalf("TailChunks(16, 0) = %v, want nil", got)
	}

	// General properties: strictly increasing, ends at total, superset of
	// Chunks, and contains every tail checkpoint ceil(target*total)+2^k that
	// lies below total.
	for _, tc := range []struct {
		min, total int
		targets    []float64
	}{
		{8, 100, []float64{0.96}},
		{8, 256, []float64{0.96}},
		{16, 256, []float64{0.9, 0.96}},
		{1, 50, []float64{0.5}},
		{8, 100, []float64{0.999}},
		{8, 100, []float64{0.01}},
	} {
		got := TailChunks(tc.min, tc.total, tc.targets)
		if got[len(got)-1] != tc.total {
			t.Fatalf("TailChunks(%d, %d, %v) ends at %d", tc.min, tc.total, tc.targets, got[len(got)-1])
		}
		seen := make(map[int]bool, len(got))
		prev := 0
		for _, e := range got {
			if e <= prev {
				t.Fatalf("TailChunks(%d, %d, %v): non-increasing end %d after %d",
					tc.min, tc.total, tc.targets, e, prev)
			}
			prev = e
			seen[e] = true
		}
		for _, e := range Chunks(tc.min, tc.total) {
			if !seen[e] {
				t.Fatalf("TailChunks(%d, %d, %v) = %v missing Chunks end %d",
					tc.min, tc.total, tc.targets, got, e)
			}
		}
		for _, tg := range tc.targets {
			if tg <= 0 || tg > 1 {
				continue
			}
			first := int(math.Ceil(tg * float64(tc.total)))
			if first < 1 {
				first = 1
			}
			for step := 0; ; {
				cp := first + step
				if cp >= tc.total {
					break
				}
				if !seen[cp] {
					t.Fatalf("TailChunks(%d, %d, %v) = %v missing tail checkpoint %d",
						tc.min, tc.total, tc.targets, got, cp)
				}
				if step == 0 {
					step = 1
				} else {
					step *= 2
				}
			}
		}
	}

	// The pct=0.96/total=100 case of the bench rows: the earliest feasible
	// stop (96 successes seen) must be a checkpoint, which plain Chunks skips.
	got := TailChunks(8, 100, []float64{0.96})
	has96 := false
	for _, e := range got {
		if e == 96 {
			has96 = true
		}
	}
	if !has96 {
		t.Fatalf("TailChunks(8, 100, [0.96]) = %v missing checkpoint 96", got)
	}
	for _, e := range Chunks(8, 100) {
		if e == 96 {
			t.Fatalf("Chunks(8, 100) unexpectedly contains 96; tail test is vacuous")
		}
	}
}
