package dag

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the workflow in Graphviz DOT format, one node per task
// labeled with its executable, for visual inspection of generated
// structures. colorOf optionally colors nodes (e.g. by assigned instance
// type); pass nil for uncolored output.
func (w *Workflow) WriteDOT(out io.Writer, colorOf func(taskID string) string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, style=filled, fillcolor=white];\n", w.Name)
	for _, t := range w.Tasks {
		attrs := fmt.Sprintf("label=%q", t.ID+"\\n"+t.Executable)
		if colorOf != nil {
			if c := colorOf(t.ID); c != "" {
				attrs += fmt.Sprintf(", fillcolor=%q", c)
			}
		}
		fmt.Fprintf(&b, "  %q [%s];\n", t.ID, attrs)
	}
	for _, e := range w.Edges() {
		fmt.Fprintf(&b, "  %q -> %q;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	_, err := io.WriteString(out, b.String())
	return err
}
