package dag

// Flat is the compiled, index-based form of a workflow: the topological
// order and the parent adjacency lowered to dense []int32 arrays (CSR
// layout), so longest-path dynamic programs run over preallocated scratch
// with no map operations or per-call allocations — the per-world hot loop
// of the Monte-Carlo evaluation core. A Flat is immutable after
// construction and safe for concurrent use.
type Flat struct {
	// IDs are the task IDs in Workflow.Tasks order; position i in every
	// duration/finish slice refers to IDs[i].
	IDs []string
	// Order is a topological order of task indices (into IDs).
	Order []int32
	// ParentStart/Parents are the parent adjacency in CSR form, aligned
	// with Order: the parents of the k-th task in topological order are
	// Parents[ParentStart[k]:ParentStart[k+1]] (task indices).
	ParentStart []int32
	Parents     []int32
	// ChildStart/Children are the child adjacency in CSR form, indexed by
	// task (not topological position): the children of task i are
	// Children[ChildStart[i]:ChildStart[i+1]] (task indices). Delta
	// evaluation uses it to push finish-time changes forward.
	ChildStart []int32
	Children   []int32
}

// Flatten compiles the workflow into its flat form, cached until the next
// AddTask/AddEdge. It returns an error if the graph has a cycle.
func (w *Workflow) Flatten() (*Flat, error) {
	if w.flat != nil {
		return w.flat, nil
	}
	order, err := w.TopoOrder()
	if err != nil {
		return nil, err
	}
	idx := make(map[string]int, len(w.Tasks))
	f := &Flat{
		IDs:         make([]string, len(w.Tasks)),
		Order:       make([]int32, len(order)),
		ParentStart: make([]int32, len(order)+1),
	}
	for i, t := range w.Tasks {
		idx[t.ID] = i
		f.IDs[i] = t.ID
	}
	nEdges := 0
	for _, ps := range w.parents {
		nEdges += len(ps)
	}
	f.Parents = make([]int32, 0, nEdges)
	for k, id := range order {
		f.Order[k] = int32(idx[id])
		f.ParentStart[k] = int32(len(f.Parents))
		for _, p := range w.parents[id] {
			f.Parents = append(f.Parents, int32(idx[p]))
		}
	}
	f.ParentStart[len(order)] = int32(len(f.Parents))
	// Child CSR: counting sort of the parent arrays, so Children[i] lists
	// every task that names i as a parent.
	f.ChildStart = make([]int32, len(order)+1)
	for _, p := range f.Parents {
		f.ChildStart[p+1]++
	}
	for i := 0; i < len(order); i++ {
		f.ChildStart[i+1] += f.ChildStart[i]
	}
	f.Children = make([]int32, len(f.Parents))
	fill := append([]int32(nil), f.ChildStart[:len(order)]...)
	for k := range f.Order {
		ti := f.Order[k]
		for _, p := range f.Parents[f.ParentStart[k]:f.ParentStart[k+1]] {
			f.Children[fill[p]] = ti
			fill[p]++
		}
	}
	w.flat = f
	return f, nil
}

// ConeScratch holds the reusable buffers of Flat.Cone so repeated cone
// computations over one workflow allocate nothing. The zero value is ready to
// use; a scratch must not be shared between concurrent Cone calls.
type ConeScratch struct {
	mark []bool
	cone []int32
}

// Cone computes the dirty cone of a set of task indices: the dirty tasks plus
// every topological descendant — exactly the tasks whose finish times can
// change when the dirty tasks' durations change. It returns the cone as
// positions into Order, ascending, so callers can recompute finish times in
// one forward pass, plus the total number of parent edges entering cone
// members (the recomputation cost of the cone in DP edge-scan units). The
// returned slice aliases the scratch and is valid until the next Cone call
// with the same scratch.
func (f *Flat) Cone(dirty []int32, sc *ConeScratch) ([]int32, int) {
	n := f.Len()
	if cap(sc.mark) < n {
		sc.mark = make([]bool, n)
	}
	mark := sc.mark[:n]
	cone := sc.cone[:0]
	for _, d := range dirty {
		mark[d] = true
	}
	edges := 0
	for k, ti := range f.Order {
		ps, pe := f.ParentStart[k], f.ParentStart[k+1]
		in := mark[ti]
		if !in {
			for _, p := range f.Parents[ps:pe] {
				if mark[p] {
					in = true
					break
				}
			}
			if !in {
				continue
			}
			mark[ti] = true
		}
		cone = append(cone, int32(k))
		edges += int(pe - ps)
	}
	// Reset the marks (dirty tasks are cone members, so clearing the cone
	// clears everything).
	for _, k := range cone {
		mark[f.Order[k]] = false
	}
	sc.cone = cone
	return cone, edges
}

// Len is the number of tasks.
func (f *Flat) Len() int { return len(f.IDs) }

// Makespan runs the longest-path dynamic program over one world's task
// durations: duration[i] is task i's duration (IDs order), finish is
// caller-provided scratch of the same length that receives every task's end
// time. Neither slice is retained; the caller may pool the scratch. This is
// the allocation-free core behind Workflow.Makespan.
func (f *Flat) Makespan(duration, finish []float64) float64 {
	makespan := 0.0
	for k, ti := range f.Order {
		start := 0.0
		for _, p := range f.Parents[f.ParentStart[k]:f.ParentStart[k+1]] {
			if fp := finish[p]; fp > start {
				start = fp
			}
		}
		end := start + duration[ti]
		finish[ti] = end
		if end > makespan {
			makespan = end
		}
	}
	return makespan
}
