package dag

// Flat is the compiled, index-based form of a workflow: the topological
// order and the parent adjacency lowered to dense []int32 arrays (CSR
// layout), so longest-path dynamic programs run over preallocated scratch
// with no map operations or per-call allocations — the per-world hot loop
// of the Monte-Carlo evaluation core. A Flat is immutable after
// construction and safe for concurrent use.
type Flat struct {
	// IDs are the task IDs in Workflow.Tasks order; position i in every
	// duration/finish slice refers to IDs[i].
	IDs []string
	// Order is a topological order of task indices (into IDs).
	Order []int32
	// ParentStart/Parents are the parent adjacency in CSR form, aligned
	// with Order: the parents of the k-th task in topological order are
	// Parents[ParentStart[k]:ParentStart[k+1]] (task indices).
	ParentStart []int32
	Parents     []int32
}

// Flatten compiles the workflow into its flat form, cached until the next
// AddTask/AddEdge. It returns an error if the graph has a cycle.
func (w *Workflow) Flatten() (*Flat, error) {
	if w.flat != nil {
		return w.flat, nil
	}
	order, err := w.TopoOrder()
	if err != nil {
		return nil, err
	}
	idx := make(map[string]int, len(w.Tasks))
	f := &Flat{
		IDs:         make([]string, len(w.Tasks)),
		Order:       make([]int32, len(order)),
		ParentStart: make([]int32, len(order)+1),
	}
	for i, t := range w.Tasks {
		idx[t.ID] = i
		f.IDs[i] = t.ID
	}
	nEdges := 0
	for _, ps := range w.parents {
		nEdges += len(ps)
	}
	f.Parents = make([]int32, 0, nEdges)
	for k, id := range order {
		f.Order[k] = int32(idx[id])
		f.ParentStart[k] = int32(len(f.Parents))
		for _, p := range w.parents[id] {
			f.Parents = append(f.Parents, int32(idx[p]))
		}
	}
	f.ParentStart[len(order)] = int32(len(f.Parents))
	w.flat = f
	return f, nil
}

// Len is the number of tasks.
func (f *Flat) Len() int { return len(f.IDs) }

// Makespan runs the longest-path dynamic program over one world's task
// durations: duration[i] is task i's duration (IDs order), finish is
// caller-provided scratch of the same length that receives every task's end
// time. Neither slice is retained; the caller may pool the scratch. This is
// the allocation-free core behind Workflow.Makespan.
func (f *Flat) Makespan(duration, finish []float64) float64 {
	makespan := 0.0
	for k, ti := range f.Order {
		start := 0.0
		for _, p := range f.Parents[f.ParentStart[k]:f.ParentStart[k+1]] {
			if fp := finish[p]; fp > start {
				start = fp
			}
		}
		end := start + duration[ti]
		finish[ti] = end
		if end > makespan {
			makespan = end
		}
	}
	return makespan
}
