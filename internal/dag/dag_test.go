package dag

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds the four-task diamond A -> (B, C) -> D.
func diamond(t *testing.T) *Workflow {
	t.Helper()
	w := New("diamond")
	for _, id := range []string{"A", "B", "C", "D"} {
		if err := w.AddTask(&Task{ID: id, CPUSeconds: 10}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"A", "B"}, {"A", "C"}, {"B", "D"}, {"C", "D"}} {
		if err := w.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestAddTaskValidation(t *testing.T) {
	w := New("w")
	if err := w.AddTask(&Task{ID: ""}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := w.AddTask(&Task{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddTask(&Task{ID: "a"}); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	w := New("w")
	_ = w.AddTask(&Task{ID: "a"})
	_ = w.AddTask(&Task{ID: "b"})
	if err := w.AddEdge("a", "x"); err == nil {
		t.Error("unknown child accepted")
	}
	if err := w.AddEdge("x", "b"); err == nil {
		t.Error("unknown parent accepted")
	}
	if err := w.AddEdge("a", "a"); err == nil {
		t.Error("self edge accepted")
	}
	if err := w.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	// Duplicate edges are a no-op.
	if err := w.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if len(w.Children("a")) != 1 {
		t.Errorf("duplicate edge stored: %v", w.Children("a"))
	}
}

func TestTopoOrderDiamond(t *testing.T) {
	w := diamond(t)
	order, err := w.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range w.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violated in order %v", e, order)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	w := New("cyclic")
	for _, id := range []string{"a", "b", "c"} {
		_ = w.AddTask(&Task{ID: id})
	}
	_ = w.AddEdge("a", "b")
	_ = w.AddEdge("b", "c")
	_ = w.AddEdge("c", "a")
	if err := w.Validate(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestMakespanDiamond(t *testing.T) {
	w := diamond(t)
	dur := map[string]float64{"A": 5, "B": 10, "C": 20, "D": 1}
	ms, finish, err := w.Makespan(dur)
	if err != nil {
		t.Fatal(err)
	}
	if ms != 26 { // A(5) + C(20) + D(1)
		t.Errorf("makespan %v, want 26", ms)
	}
	if finish["B"] != 15 || finish["C"] != 25 {
		t.Errorf("finish times wrong: %v", finish)
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	w := diamond(t)
	dur := map[string]float64{"A": 5, "B": 10, "C": 20, "D": 1}
	path, length, err := w.CriticalPath(dur)
	if err != nil {
		t.Fatal(err)
	}
	if length != 26 {
		t.Errorf("length %v, want 26", length)
	}
	want := []string{"A", "C", "D"}
	if len(path) != len(want) {
		t.Fatalf("path %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
}

func TestRootsLeavesLevels(t *testing.T) {
	w := diamond(t)
	if r := w.Roots(); len(r) != 1 || r[0] != "A" {
		t.Errorf("roots %v", r)
	}
	if l := w.Leaves(); len(l) != 1 || l[0] != "D" {
		t.Errorf("leaves %v", l)
	}
	levels, err := w.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 || len(levels[1]) != 2 {
		t.Errorf("levels %v", levels)
	}
}

func TestTransferMB(t *testing.T) {
	w := New("xfer")
	_ = w.AddTask(&Task{ID: "p1", Outputs: []File{{Name: "f1", SizeMB: 100}}})
	_ = w.AddTask(&Task{ID: "p2", Outputs: []File{{Name: "f2", SizeMB: 50}}})
	_ = w.AddTask(&Task{ID: "c", Inputs: []File{
		{Name: "f1", SizeMB: 100}, {Name: "f2", SizeMB: 50}, {Name: "ext", SizeMB: 7},
	}})
	_ = w.AddEdge("p1", "c")
	_ = w.AddEdge("p2", "c")

	// Nothing co-located: everything transfers.
	got := w.TransferMB("c", func(string) bool { return false })
	if got != 157 {
		t.Errorf("transfer %v, want 157", got)
	}
	// p1 co-located: its file is local.
	got = w.TransferMB("c", func(p string) bool { return p == "p1" })
	if got != 57 {
		t.Errorf("transfer %v, want 57", got)
	}
	// Unknown task.
	if w.TransferMB("zz", func(string) bool { return true }) != 0 {
		t.Error("unknown task should transfer 0")
	}
}

func TestInputOutputMB(t *testing.T) {
	task := &Task{
		Inputs:  []File{{SizeMB: 1}, {SizeMB: 2}},
		Outputs: []File{{SizeMB: 4}},
	}
	if task.InputMB() != 3 || task.OutputMB() != 4 {
		t.Errorf("in=%v out=%v", task.InputMB(), task.OutputMB())
	}
}

func TestCloneIndependence(t *testing.T) {
	w := diamond(t)
	w.Priority = 3
	w.DeadlineSeconds = 100
	w.DeadlinePercentile = 0.95
	c := w.Clone()
	if c.Len() != 4 || c.Priority != 3 || c.DeadlineSeconds != 100 || c.DeadlinePercentile != 0.95 {
		t.Fatal("clone lost metadata")
	}
	// Mutating the clone must not touch the original.
	c.Task("A").CPUSeconds = 999
	if w.Task("A").CPUSeconds == 999 {
		t.Error("clone shares task memory")
	}
	if err := c.AddEdge("B", "C"); err != nil {
		t.Fatal(err)
	}
	if len(w.Children("B")) != 1 {
		t.Error("clone shares edge maps")
	}
}

func TestTotalCPUSeconds(t *testing.T) {
	w := diamond(t)
	if got := w.TotalCPUSeconds(); got != 40 {
		t.Errorf("total %v", got)
	}
}

// randomDAG builds a random layered DAG for property testing.
func randomDAG(r *rand.Rand, n int) *Workflow {
	w := New("rand")
	for i := 0; i < n; i++ {
		_ = w.AddTask(&Task{ID: string(rune('a' + i)), CPUSeconds: float64(r.Intn(100) + 1)})
	}
	// Edges only from lower to higher index: acyclic by construction.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.3 {
				_ = w.AddEdge(string(rune('a'+i)), string(rune('a'+j)))
			}
		}
	}
	return w
}

// Property: makespan >= max task duration and <= sum of durations, and the
// critical-path length always equals the makespan.
func TestMakespanBoundsProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%20) + 1
		r := rand.New(rand.NewSource(seed))
		w := randomDAG(r, n)
		dur := map[string]float64{}
		maxD, sumD := 0.0, 0.0
		for _, task := range w.Tasks {
			d := float64(r.Intn(50) + 1)
			dur[task.ID] = d
			if d > maxD {
				maxD = d
			}
			sumD += d
		}
		ms, _, err := w.Makespan(dur)
		if err != nil {
			return false
		}
		_, cp, err := w.CriticalPath(dur)
		if err != nil {
			return false
		}
		return ms >= maxD && ms <= sumD && ms == cp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: topological order is consistent with every edge.
func TestTopoOrderProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%20) + 1
		r := rand.New(rand.NewSource(seed))
		w := randomDAG(r, n)
		order, err := w.TopoOrder()
		if err != nil || len(order) != n {
			return false
		}
		pos := map[string]int{}
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range w.Edges() {
			if pos[e[0]] >= pos[e[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWriteDOT(t *testing.T) {
	w := diamond(t)
	var buf strings.Builder
	colors := map[string]string{"A": "lightblue"}
	err := w.WriteDOT(&buf, func(id string) string { return colors[id] })
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`digraph "diamond"`, `"A" -> "B"`, `"C" -> "D"`, "lightblue"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Nil colorOf works too.
	var buf2 strings.Builder
	if err := w.WriteDOT(&buf2, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf2.String(), "lightblue") {
		t.Error("nil colorOf colored nodes")
	}
}

// coneIDs runs Flat.Cone on the tasks with the given IDs and returns the cone
// members as a sorted ID set.
func coneIDs(t *testing.T, w *Workflow, dirty ...string) ([]string, int) {
	t.Helper()
	f, err := w.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int32{}
	for i, id := range f.IDs {
		idx[id] = int32(i)
	}
	var d []int32
	for _, id := range dirty {
		d = append(d, idx[id])
	}
	var sc ConeScratch
	cone, edges := f.Cone(d, &sc)
	var ids []string
	prev := int32(-1)
	for _, k := range cone {
		if k <= prev {
			t.Fatalf("cone positions not ascending: %v", cone)
		}
		prev = k
		ids = append(ids, f.IDs[f.Order[k]])
	}
	sort.Strings(ids)
	return ids, edges
}

func TestFlatChildrenCSR(t *testing.T) {
	w := diamond(t)
	f, err := w.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	children := map[string][]string{}
	for i, id := range f.IDs {
		var cs []string
		for _, c := range f.Children[f.ChildStart[i]:f.ChildStart[i+1]] {
			cs = append(cs, f.IDs[c])
		}
		sort.Strings(cs)
		children[id] = cs
	}
	want := map[string][]string{"A": {"B", "C"}, "B": {"D"}, "C": {"D"}, "D": nil}
	for id, cs := range want {
		got := children[id]
		if len(got) != len(cs) {
			t.Fatalf("children of %s = %v, want %v", id, got, cs)
		}
		for i := range cs {
			if got[i] != cs[i] {
				t.Fatalf("children of %s = %v, want %v", id, got, cs)
			}
		}
	}
}

func TestConeDiamond(t *testing.T) {
	w := diamond(t)
	for _, tc := range []struct {
		dirty []string
		want  []string
		edges int
	}{
		{[]string{"A"}, []string{"A", "B", "C", "D"}, 4}, // all four edges enter the cone
		{[]string{"B"}, []string{"B", "D"}, 3},           // B's edge from A, D's two edges
		{[]string{"D"}, []string{"D"}, 2},
		{[]string{"B", "C"}, []string{"B", "C", "D"}, 4},
	} {
		got, edges := coneIDs(t, w, tc.dirty...)
		if strings.Join(got, ",") != strings.Join(tc.want, ",") {
			t.Errorf("cone(%v) = %v, want %v", tc.dirty, got, tc.want)
		}
		if edges != tc.edges {
			t.Errorf("cone(%v) edges = %d, want %d", tc.dirty, edges, tc.edges)
		}
	}
}

// TestConeMatchesReachability cross-checks Cone against a straightforward
// forward BFS over random DAGs, and that scratch reuse leaves no stale marks.
func TestConeMatchesReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		w := New("rand")
		ids := make([]string, n)
		for i := range ids {
			ids[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
			if err := w.AddTask(&Task{ID: ids[i], CPUSeconds: 1}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.2 {
					if err := w.AddEdge(ids[i], ids[j]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		f, err := w.Flatten()
		if err != nil {
			t.Fatal(err)
		}
		var sc ConeScratch
		for rep := 0; rep < 4; rep++ { // reuse the scratch across calls
			dirty := []int32{int32(rng.Intn(n))}
			if rng.Intn(2) == 0 {
				dirty = append(dirty, int32(rng.Intn(n)))
			}
			// Reference: BFS over Workflow.Children.
			want := map[string]bool{}
			queue := []string{}
			for _, d := range dirty {
				id := f.IDs[d]
				if !want[id] {
					want[id] = true
					queue = append(queue, id)
				}
			}
			for len(queue) > 0 {
				id := queue[0]
				queue = queue[1:]
				for _, c := range w.Children(id) {
					if !want[c] {
						want[c] = true
						queue = append(queue, c)
					}
				}
			}
			cone, _ := f.Cone(dirty, &sc)
			if len(cone) != len(want) {
				t.Fatalf("cone size %d, want %d", len(cone), len(want))
			}
			for _, k := range cone {
				if !want[f.IDs[f.Order[k]]] {
					t.Fatalf("cone contains unreachable task %s", f.IDs[f.Order[k]])
				}
			}
		}
	}
}
