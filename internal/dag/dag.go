// Package dag implements the scientific-workflow model that Deco optimizes:
// tasks (the minimum execution unit, §2 of the paper), data dependencies,
// input/output files, topological ordering, and critical-path analysis.
//
// A Workflow corresponds to one DAX document. Tasks reference the files they
// consume and produce; an edge X→Y is implied whenever Y consumes a file X
// produces, or is declared explicitly via parent/child elements.
package dag

import (
	"fmt"
	"sort"
)

// File is a workflow data product with a size in megabytes. File sizes drive
// the I/O and network components of the task execution-time model and the
// migration cost of follow-the-cost.
type File struct {
	Name   string
	SizeMB float64
}

// Task is the minimum execution unit of a workflow.
type Task struct {
	ID         string  // unique within a workflow, e.g. "ID01"
	Executable string  // the transformation/executable name, e.g. "mProjectPP"
	CPUSeconds float64 // CPU work on the reference (1 ECU) machine
	Inputs     []File
	Outputs    []File
}

// InputMB returns the total size of the task's input files in MB.
func (t *Task) InputMB() float64 {
	s := 0.0
	for _, f := range t.Inputs {
		s += f.SizeMB
	}
	return s
}

// OutputMB returns the total size of the task's output files in MB.
func (t *Task) OutputMB() float64 {
	s := 0.0
	for _, f := range t.Outputs {
		s += f.SizeMB
	}
	return s
}

// Workflow is a directed acyclic graph of tasks.
type Workflow struct {
	Name  string
	Tasks []*Task

	// Priority ranks workflows inside an ensemble: 0 is the highest priority
	// and scores 2^0 = 1; priority p scores 2^-p (Eq. 4).
	Priority int

	// DeadlineSeconds is the per-workflow deadline D (Eq. 3); 0 means unset.
	DeadlineSeconds float64
	// DeadlinePercentile is the probabilistic requirement p in P(t_w<=D)>=p;
	// 0 means the deterministic notion (expected time <= D).
	DeadlinePercentile float64

	byID     map[string]*Task
	children map[string][]string
	parents  map[string][]string
	topo     []string // cached topological order of task IDs
	flat     *Flat    // cached index-based form (see Flatten)
}

// New creates an empty workflow with the given name.
func New(name string) *Workflow {
	return &Workflow{
		Name:     name,
		byID:     map[string]*Task{},
		children: map[string][]string{},
		parents:  map[string][]string{},
	}
}

// AddTask inserts a task. It returns an error on duplicate or empty IDs.
func (w *Workflow) AddTask(t *Task) error {
	if t.ID == "" {
		return fmt.Errorf("dag: task with empty ID")
	}
	if _, dup := w.byID[t.ID]; dup {
		return fmt.Errorf("dag: duplicate task ID %q", t.ID)
	}
	w.byID[t.ID] = t
	w.Tasks = append(w.Tasks, t)
	w.topo = nil
	w.flat = nil
	return nil
}

// AddEdge declares that child depends on parent. Both tasks must exist.
// Duplicate edges are ignored.
func (w *Workflow) AddEdge(parent, child string) error {
	if _, ok := w.byID[parent]; !ok {
		return fmt.Errorf("dag: edge references unknown parent %q", parent)
	}
	if _, ok := w.byID[child]; !ok {
		return fmt.Errorf("dag: edge references unknown child %q", child)
	}
	if parent == child {
		return fmt.Errorf("dag: self edge on %q", parent)
	}
	for _, c := range w.children[parent] {
		if c == child {
			return nil
		}
	}
	w.children[parent] = append(w.children[parent], child)
	w.parents[child] = append(w.parents[child], parent)
	w.topo = nil
	w.flat = nil
	return nil
}

// Task returns the task with the given ID, or nil.
func (w *Workflow) Task(id string) *Task { return w.byID[id] }

// Children returns the IDs of the direct successors of id.
func (w *Workflow) Children(id string) []string { return w.children[id] }

// Parents returns the IDs of the direct predecessors of id.
func (w *Workflow) Parents(id string) []string { return w.parents[id] }

// Roots returns the IDs of tasks with no parents, in insertion order.
func (w *Workflow) Roots() []string {
	var roots []string
	for _, t := range w.Tasks {
		if len(w.parents[t.ID]) == 0 {
			roots = append(roots, t.ID)
		}
	}
	return roots
}

// Leaves returns the IDs of tasks with no children, in insertion order.
func (w *Workflow) Leaves() []string {
	var leaves []string
	for _, t := range w.Tasks {
		if len(w.children[t.ID]) == 0 {
			leaves = append(leaves, t.ID)
		}
	}
	return leaves
}

// Len returns the number of tasks.
func (w *Workflow) Len() int { return len(w.Tasks) }

// Edges returns all (parent, child) pairs in a deterministic order.
func (w *Workflow) Edges() [][2]string {
	var es [][2]string
	for _, t := range w.Tasks {
		cs := append([]string(nil), w.children[t.ID]...)
		sort.Strings(cs)
		for _, c := range cs {
			es = append(es, [2]string{t.ID, c})
		}
	}
	return es
}

// TopoOrder returns task IDs in a topological order (Kahn's algorithm,
// deterministic by insertion order). It returns an error if the graph has a
// cycle.
func (w *Workflow) TopoOrder() ([]string, error) {
	if w.topo != nil {
		return w.topo, nil
	}
	indeg := make(map[string]int, len(w.Tasks))
	for _, t := range w.Tasks {
		indeg[t.ID] = len(w.parents[t.ID])
	}
	var queue []string
	for _, t := range w.Tasks {
		if indeg[t.ID] == 0 {
			queue = append(queue, t.ID)
		}
	}
	order := make([]string, 0, len(w.Tasks))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, c := range w.children[id] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != len(w.Tasks) {
		return nil, fmt.Errorf("dag: workflow %q has a cycle", w.Name)
	}
	w.topo = order
	return order, nil
}

// Validate checks structural invariants: acyclicity and edge endpoints.
func (w *Workflow) Validate() error {
	_, err := w.TopoOrder()
	return err
}

// Makespan computes the workflow execution time given each task's duration,
// as the longest path from any root to any leaf (the critical path of
// Eq. 3, with virtual root/tail tasks of zero weight). Missing durations
// count as zero. It returns the makespan and the end time of every task.
// It is a map-keyed adapter over the flat index-based core (Flat.Makespan),
// which hot paths use directly.
func (w *Workflow) Makespan(duration map[string]float64) (float64, map[string]float64, error) {
	f, err := w.Flatten()
	if err != nil {
		return 0, nil, err
	}
	dur := make([]float64, f.Len())
	fin := make([]float64, f.Len())
	for i, id := range f.IDs {
		dur[i] = duration[id]
	}
	makespan := f.Makespan(dur, fin)
	finish := make(map[string]float64, f.Len())
	for i, id := range f.IDs {
		finish[id] = fin[i]
	}
	return makespan, finish, nil
}

// CriticalPath returns the task IDs on a longest path (root→leaf) under the
// given durations, in execution order, together with the path length.
func (w *Workflow) CriticalPath(duration map[string]float64) ([]string, float64, error) {
	order, err := w.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	finish := make(map[string]float64, len(order))
	pred := make(map[string]string, len(order))
	endID := ""
	makespan := -1.0
	for _, id := range order {
		start := 0.0
		from := ""
		for _, p := range w.parents[id] {
			if finish[p] > start {
				start = finish[p]
				from = p
			}
		}
		finish[id] = start + duration[id]
		pred[id] = from
		if finish[id] > makespan {
			makespan = finish[id]
			endID = id
		}
	}
	if endID == "" {
		return nil, 0, nil
	}
	var rev []string
	for id := endID; id != ""; id = pred[id] {
		rev = append(rev, id)
	}
	path := make([]string, len(rev))
	for i, id := range rev {
		path[len(rev)-1-i] = id
	}
	return path, makespan, nil
}

// Levels returns tasks grouped by their depth (longest hop distance from a
// root), which characterizes the parallelism structure of the workflow.
func (w *Workflow) Levels() ([][]string, error) {
	order, err := w.TopoOrder()
	if err != nil {
		return nil, err
	}
	depth := map[string]int{}
	maxDepth := 0
	for _, id := range order {
		d := 0
		for _, p := range w.parents[id] {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[id] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	levels := make([][]string, maxDepth+1)
	for _, id := range order {
		levels[depth[id]] = append(levels[depth[id]], id)
	}
	return levels, nil
}

// TotalCPUSeconds sums the reference CPU seconds across all tasks.
func (w *Workflow) TotalCPUSeconds() float64 {
	s := 0.0
	for _, t := range w.Tasks {
		s += t.CPUSeconds
	}
	return s
}

// TransferMB returns the number of megabytes task id must receive from
// parent tasks that ran on a *different* instance, given the set of co-located
// parents. It is used by the simulator and by migration-cost accounting: data
// from co-located parents moves via local disk, the rest over the network.
func (w *Workflow) TransferMB(id string, colocatedParent func(parent string) bool) float64 {
	t := w.byID[id]
	if t == nil {
		return 0
	}
	// Map file name → producing parent.
	producers := map[string]string{}
	for _, p := range w.parents[id] {
		pt := w.byID[p]
		for _, f := range pt.Outputs {
			producers[f.Name] = p
		}
	}
	total := 0.0
	for _, f := range t.Inputs {
		if p, ok := producers[f.Name]; ok && colocatedParent(p) {
			continue
		}
		total += f.SizeMB
	}
	return total
}

// Clone returns a deep copy of the workflow structure (tasks are copied;
// file slices are copied).
func (w *Workflow) Clone() *Workflow {
	nw := New(w.Name)
	nw.Priority = w.Priority
	nw.DeadlineSeconds = w.DeadlineSeconds
	nw.DeadlinePercentile = w.DeadlinePercentile
	for _, t := range w.Tasks {
		ct := &Task{
			ID:         t.ID,
			Executable: t.Executable,
			CPUSeconds: t.CPUSeconds,
			Inputs:     append([]File(nil), t.Inputs...),
			Outputs:    append([]File(nil), t.Outputs...),
		}
		if err := nw.AddTask(ct); err != nil {
			panic(err) // impossible: source workflow was valid
		}
	}
	for _, e := range w.Edges() {
		if err := nw.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	return nw
}
