package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Histogram is a discretized probability distribution: the form in which the
// metadata store keeps calibrated cloud performance. Bin i covers
// [Edges[i], Edges[i+1]) and has probability mass Probs[i]. Sampling returns
// the bin midpoint, matching the paper's "discretize the probabilistic
// performance distributions as histograms" step; the number of bins controls
// the n in the probabilistic fact "p_j : exetime(Tid,Vid,T_j)".
type Histogram struct {
	Edges []float64 // len = len(Probs)+1, strictly increasing
	Probs []float64 // non-negative, sums to 1 (within epsilon)

	cum []float64 // cumulative probabilities, built lazily by normalize
}

// NewHistogram builds a histogram from bin edges and masses. It validates
// shape, normalizes the masses to sum to 1, and precomputes the cumulative
// table used for sampling.
func NewHistogram(edges, probs []float64) (*Histogram, error) {
	if len(edges) != len(probs)+1 {
		return nil, fmt.Errorf("dist: histogram needs len(edges)=len(probs)+1, got %d and %d", len(edges), len(probs))
	}
	if len(probs) == 0 {
		return nil, fmt.Errorf("dist: histogram needs at least one bin")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("dist: histogram edges not increasing at %d: %v <= %v", i, edges[i], edges[i-1])
		}
	}
	total := 0.0
	for _, p := range probs {
		if p < 0 || math.IsNaN(p) {
			return nil, fmt.Errorf("dist: negative or NaN bin mass %v", p)
		}
		total += p
	}
	if total <= 0 {
		return nil, fmt.Errorf("dist: histogram total mass is zero")
	}
	h := &Histogram{
		Edges: append([]float64(nil), edges...),
		Probs: make([]float64, len(probs)),
	}
	for i, p := range probs {
		h.Probs[i] = p / total
	}
	h.buildCum()
	return h, nil
}

func (h *Histogram) buildCum() {
	h.cum = make([]float64, len(h.Probs))
	c := 0.0
	for i, p := range h.Probs {
		c += p
		h.cum[i] = c
	}
	h.cum[len(h.cum)-1] = 1 // guard against fp drift
}

// FromSamples builds a histogram with the given number of equal-width bins
// spanning [min, max] of the sample. It panics if bins < 1 and returns an
// error on an empty sample. A degenerate all-equal sample produces a single
// bin of unit width centred on the value.
func FromSamples(xs []float64, bins int) (*Histogram, error) {
	if bins < 1 {
		panic("dist: bins < 1")
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("dist: no samples")
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo == hi {
		// All samples identical: one unit-width bin around the value.
		return NewHistogram([]float64{lo - 0.5, lo + 0.5}, []float64{1})
	}
	edges := make([]float64, bins+1)
	w := (hi - lo) / float64(bins)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	edges[bins] = hi // exact upper edge
	probs := make([]float64, bins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i >= bins {
			i = bins - 1
		}
		probs[i]++
	}
	return NewHistogram(edges, probs)
}

// Discretize converts any distribution into an n-bin histogram by sampling.
// The metadata store uses this to turn fitted parametric distributions back
// into the histogram form Deco's probabilistic IR consumes.
func Discretize(d Dist, n, samples int, rng *rand.Rand) (*Histogram, error) {
	xs := make([]float64, samples)
	for i := range xs {
		xs[i] = d.Sample(rng)
	}
	return FromSamples(xs, n)
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.Probs) }

// Mid returns the midpoint of bin i.
func (h *Histogram) Mid(i int) float64 { return (h.Edges[i] + h.Edges[i+1]) / 2 }

// Sample draws a bin according to the masses and returns its midpoint.
func (h *Histogram) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(h.cum, u)
	if i >= len(h.Probs) {
		i = len(h.Probs) - 1
	}
	return h.Mid(i)
}

// SampleBin draws a bin index according to the masses.
func (h *Histogram) SampleBin(rng *rand.Rand) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(h.cum, u)
	if i >= len(h.Probs) {
		i = len(h.Probs) - 1
	}
	return i
}

// Mean returns the histogram mean (using bin midpoints).
func (h *Histogram) Mean() float64 {
	m := 0.0
	for i, p := range h.Probs {
		m += p * h.Mid(i)
	}
	return m
}

// Var returns the histogram variance (using bin midpoints).
func (h *Histogram) Var() float64 {
	m := h.Mean()
	v := 0.0
	for i, p := range h.Probs {
		d := h.Mid(i) - m
		v += p * d * d
	}
	return v
}

// Quantile returns the smallest bin midpoint m such that P(X <= m) >= p.
func (h *Histogram) Quantile(p float64) float64 {
	if p <= 0 {
		return h.Mid(0)
	}
	if p >= 1 {
		return h.Mid(len(h.Probs) - 1)
	}
	i := sort.SearchFloat64s(h.cum, p)
	if i >= len(h.Probs) {
		i = len(h.Probs) - 1
	}
	return h.Mid(i)
}

// Scale returns a new histogram with all edges multiplied by f > 0. Deco uses
// this to scale a base performance histogram by data size or CPU factor.
func (h *Histogram) Scale(f float64) *Histogram {
	if f <= 0 {
		panic(fmt.Sprintf("dist: non-positive scale %v", f))
	}
	edges := make([]float64, len(h.Edges))
	for i, e := range h.Edges {
		edges[i] = e * f
	}
	nh := &Histogram{Edges: edges, Probs: append([]float64(nil), h.Probs...)}
	nh.buildCum()
	return nh
}

// Support returns the [lo, hi] range covered by the histogram.
func (h *Histogram) Support() (lo, hi float64) {
	return h.Edges[0], h.Edges[len(h.Edges)-1]
}

// String renders a compact textual sparkline of the histogram, useful in the
// experiment harness output for Figures 6-7.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hist[%d bins, %.4g..%.4g, mean=%.4g]", h.Bins(), h.Edges[0], h.Edges[len(h.Edges)-1], h.Mean())
	return b.String()
}

// Ascii renders the histogram as rows of "midpoint | ####" bars with the
// given maximum bar width, for terminal figures.
func (h *Histogram) Ascii(width int) string {
	maxP := 0.0
	for _, p := range h.Probs {
		if p > maxP {
			maxP = p
		}
	}
	var b strings.Builder
	for i, p := range h.Probs {
		n := 0
		if maxP > 0 {
			n = int(p / maxP * float64(width))
		}
		fmt.Fprintf(&b, "%12.4g | %s %.3f\n", h.Mid(i), strings.Repeat("#", n), p)
	}
	return b.String()
}
