package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestNormalMoments(t *testing.T) {
	n := NewNormal(10, 3)
	if n.Mean() != 10 {
		t.Errorf("mean = %v, want 10", n.Mean())
	}
	if n.Var() != 9 {
		t.Errorf("var = %v, want 9", n.Var())
	}
}

func TestNormalSampleMoments(t *testing.T) {
	n := NewNormal(150.3, 50.0) // m1.small random I/O from Table 2
	r := rng(1)
	const N = 200000
	xs := make([]float64, N)
	for i := range xs {
		xs[i] = n.Sample(r)
	}
	m := MeanOf(xs)
	sd := StddevOf(xs)
	if math.Abs(m-150.3) > 0.5 {
		t.Errorf("sample mean = %v, want ~150.3", m)
	}
	if math.Abs(sd-50.0) > 0.5 {
		t.Errorf("sample stddev = %v, want ~50", sd)
	}
}

func TestNormalCDFSymmetry(t *testing.T) {
	n := NewNormal(0, 1)
	if got := n.CDF(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(0) = %v, want 0.5", got)
	}
	// Standard normal: CDF(1.96) ~ 0.975.
	if got := n.CDF(1.959964); math.Abs(got-0.975) > 1e-4 {
		t.Errorf("CDF(1.96) = %v, want ~0.975", got)
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	n := NewNormal(5, 2)
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999} {
		x := n.Quantile(p)
		if got := n.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalZeroSigma(t *testing.T) {
	n := NewNormal(7, 0)
	if n.Sample(rng(1)) != 7 {
		t.Error("zero-sigma sample != mu")
	}
	if n.CDF(6.999) != 0 || n.CDF(7) != 1 {
		t.Error("degenerate CDF wrong")
	}
}

func TestGammaMoments(t *testing.T) {
	g := NewGamma(129.3, 0.79) // m1.small sequential I/O from Table 2
	wantMean := 129.3 * 0.79
	wantVar := 129.3 * 0.79 * 0.79
	if math.Abs(g.Mean()-wantMean) > 1e-12 {
		t.Errorf("mean = %v, want %v", g.Mean(), wantMean)
	}
	if math.Abs(g.Var()-wantVar) > 1e-12 {
		t.Errorf("var = %v, want %v", g.Var(), wantVar)
	}
}

func TestGammaSampleMoments(t *testing.T) {
	for _, tc := range []struct{ k, theta float64 }{
		{129.3, 0.79}, {376.6, 0.28}, {2.5, 1.3}, {0.7, 2.0}, // includes shape<1 branch
	} {
		g := NewGamma(tc.k, tc.theta)
		r := rng(42)
		const N = 200000
		xs := make([]float64, N)
		for i := range xs {
			xs[i] = g.Sample(r)
		}
		m := MeanOf(xs)
		if math.Abs(m-g.Mean())/g.Mean() > 0.02 {
			t.Errorf("Gamma(%v,%v): sample mean %v, want %v", tc.k, tc.theta, m, g.Mean())
		}
		v := VarOf(xs, m)
		if math.Abs(v-g.Var())/g.Var() > 0.05 {
			t.Errorf("Gamma(%v,%v): sample var %v, want %v", tc.k, tc.theta, v, g.Var())
		}
	}
}

func TestGammaSamplesPositive(t *testing.T) {
	g := NewGamma(0.5, 1.0)
	r := rng(7)
	for i := 0; i < 10000; i++ {
		if x := g.Sample(r); x <= 0 {
			t.Fatalf("non-positive gamma sample %v", x)
		}
	}
}

func TestGammaCDFKnownValues(t *testing.T) {
	// Gamma(1, 1) is Exponential(1): CDF(x) = 1 - e^-x.
	g := NewGamma(1, 1)
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		want := 1 - math.Exp(-x)
		if got := g.CDF(x); math.Abs(got-want) > 1e-10 {
			t.Errorf("Exp CDF(%v) = %v, want %v", x, got, want)
		}
	}
	// Gamma(k, theta) CDF at the mean is near but below the median-free value;
	// sanity: strictly increasing.
	g2 := NewGamma(3, 2)
	prev := -1.0
	for x := 0.5; x < 30; x += 0.5 {
		c := g2.CDF(x)
		if c < prev {
			t.Fatalf("CDF not monotone at %v", x)
		}
		prev = c
	}
}

func TestGammaQuantileInvertsCDF(t *testing.T) {
	g := NewGamma(127.1, 0.80)
	for _, p := range []float64{0.05, 0.5, 0.9, 0.99} {
		x := g.Quantile(p)
		if got := g.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestUniformAndConstant(t *testing.T) {
	u := NewUniform(2, 6)
	if u.Mean() != 4 {
		t.Errorf("uniform mean %v", u.Mean())
	}
	if math.Abs(u.Var()-16.0/12) > 1e-12 {
		t.Errorf("uniform var %v", u.Var())
	}
	r := rng(3)
	for i := 0; i < 1000; i++ {
		x := u.Sample(r)
		if x < 2 || x >= 6 {
			t.Fatalf("uniform sample %v out of range", x)
		}
	}
	c := Constant{V: 9}
	if c.Sample(r) != 9 || c.Mean() != 9 || c.Var() != 0 {
		t.Error("constant distribution misbehaves")
	}
}

func TestEmpirical(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	e := NewEmpirical(xs)
	if e.Len() != 5 || e.Min() != 1 || e.Max() != 5 {
		t.Fatalf("empirical order stats wrong: %v %v %v", e.Len(), e.Min(), e.Max())
	}
	if e.Mean() != 3 {
		t.Errorf("mean %v", e.Mean())
	}
	if got := e.Quantile(0.5); got != 3 {
		t.Errorf("median %v", got)
	}
	if got := e.Quantile(0); got != 1 {
		t.Errorf("q0 %v", got)
	}
	if got := e.Quantile(1); got != 5 {
		t.Errorf("q1 %v", got)
	}
	r := rng(5)
	for i := 0; i < 100; i++ {
		x := e.Sample(r)
		if x < 1 || x > 5 {
			t.Fatalf("sample %v outside observations", x)
		}
	}
}

func TestQuantileOfInterpolates(t *testing.T) {
	s := []float64{0, 10}
	if got := QuantileOf(s, 0.25); got != 2.5 {
		t.Errorf("q(0.25) = %v, want 2.5", got)
	}
	if !math.IsNaN(QuantileOf(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

// Property: for any sorted sample, quantiles are monotone in p and bounded by
// min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e := NewEmpirical(xs)
		p1 := float64(a%101) / 100
		p2 := float64(b%101) / 100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		q1, q2 := e.Quantile(p1), e.Quantile(p2)
		return q1 <= q2 && q1 >= e.Min() && q2 <= e.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeanVarEdgeCases(t *testing.T) {
	if MeanOf(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if VarOf([]float64{1}, 1) != 0 {
		t.Error("var of singleton should be 0")
	}
}

func TestNormalQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewNormal(0, 1).Quantile(0)
}

func TestNewGammaPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGamma(0, 1)
}
