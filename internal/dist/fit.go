package dist

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the distribution-fitting half of the calibration
// pipeline: given raw micro-benchmark samples, fit Normal and Gamma
// distributions (method of moments, as is standard for Gamma calibration) and
// test the fit (chi-square and Kolmogorov-Smirnov). Section 6.2 of the paper
// verifies, e.g., that m1.medium network performance "can be modeled with a
// normal distribution" via a null-hypothesis test; Table 2 reports the fitted
// parameters.

// FitNormal fits a Normal distribution to xs by maximum likelihood
// (sample mean, sample standard deviation).
func FitNormal(xs []float64) Normal {
	m := MeanOf(xs)
	return Normal{Mu: m, Sigma: math.Sqrt(VarOf(xs, m))}
}

// FitGamma fits a Gamma distribution to xs by the method of moments:
// k = mean^2/var, theta = var/mean. It returns an error if the sample mean or
// variance is non-positive (Gamma requires positive support).
func FitGamma(xs []float64) (Gamma, error) {
	m := MeanOf(xs)
	v := VarOf(xs, m)
	if m <= 0 || v <= 0 {
		return Gamma{}, fmt.Errorf("dist: cannot fit gamma: mean=%v var=%v", m, v)
	}
	return Gamma{K: m * m / v, Theta: v / m}, nil
}

// CDFer is a distribution with an analytic CDF, required by the fit tests.
type CDFer interface {
	CDF(x float64) float64
}

// CDF implements CDFer for Gamma via the regularized lower incomplete gamma
// function P(k, x/theta).
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return regIncGammaLower(g.K, x/g.Theta)
}

// Quantile returns the p-quantile of the Gamma distribution by bisection on
// the CDF, for p in (0,1).
func (g Gamma) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("dist: quantile p=%v out of (0,1)", p))
	}
	lo, hi := 0.0, g.Mean()+40*math.Sqrt(g.Var())+1
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if g.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// regIncGammaLower computes the regularized lower incomplete gamma function
// P(a, x) using the series expansion for x < a+1 and the continued fraction
// for x >= a+1 (Numerical Recipes style).
func regIncGammaLower(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	lgA, _ := math.Lgamma(a)
	if x < a+1 {
		// Series representation.
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lgA)
	}
	// Continued fraction for Q(a,x), then P = 1-Q.
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lgA) * h
	return 1 - q
}

// KSStatistic returns the two-sided Kolmogorov-Smirnov statistic between the
// sample xs and the theoretical distribution d.
func KSStatistic(xs []float64, d CDFer) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := float64(len(s))
	maxD := 0.0
	for i, x := range s {
		f := d.CDF(x)
		d1 := math.Abs(float64(i+1)/n - f)
		d2 := math.Abs(f - float64(i)/n)
		if d1 > maxD {
			maxD = d1
		}
		if d2 > maxD {
			maxD = d2
		}
	}
	return maxD
}

// KSTest runs a Kolmogorov-Smirnov goodness-of-fit test at significance
// level alpha (supported: 0.01, 0.05, 0.10). It reports whether the null
// hypothesis "xs is drawn from d" is NOT rejected, together with the
// statistic and the critical value used.
func KSTest(xs []float64, d CDFer, alpha float64) (ok bool, stat, crit float64) {
	stat = KSStatistic(xs, d)
	var c float64
	switch {
	case alpha <= 0.01:
		c = 1.63
	case alpha <= 0.05:
		c = 1.36
	default:
		c = 1.22
	}
	crit = c / math.Sqrt(float64(len(xs)))
	return stat <= crit, stat, crit
}

// ChiSquareStatistic bins the sample into the histogram's bins and compares
// observed counts with the counts expected under d. It returns the statistic
// and the degrees of freedom (bins-1-params).
func ChiSquareStatistic(xs []float64, h *Histogram, d CDFer, fittedParams int) (stat float64, dof int) {
	n := float64(len(xs))
	obs := make([]float64, h.Bins())
	for _, x := range xs {
		// Locate bin (clamping out-of-range values to the edge bins).
		i := sort.SearchFloat64s(h.Edges, x) - 1
		if i < 0 {
			i = 0
		}
		if i >= h.Bins() {
			i = h.Bins() - 1
		}
		obs[i]++
	}
	for i := 0; i < h.Bins(); i++ {
		p := d.CDF(h.Edges[i+1]) - d.CDF(h.Edges[i])
		exp := n * p
		if exp < 1e-9 {
			if obs[i] > 0 {
				// Observations in a bin the model says is impossible: strong
				// evidence against the fit. Floor the expectation so the
				// statistic blows up instead of silently skipping the bin.
				exp = 1e-9
			} else {
				continue
			}
		}
		diff := obs[i] - exp
		stat += diff * diff / exp
	}
	dof = h.Bins() - 1 - fittedParams
	if dof < 1 {
		dof = 1
	}
	return stat, dof
}

// FitReport is the outcome of fitting one parametric family to a sample.
type FitReport struct {
	Family string  // "normal" or "gamma"
	Dist   Dist    // the fitted distribution
	KSStat float64 // KS statistic against the sample
	KSCrit float64 // critical value at the 5% level
	KSPass bool    // whether the fit is not rejected at 5%
}

// BestFit fits both Normal and Gamma to the sample and returns the reports
// sorted by ascending KS statistic (best first). Samples with non-positive
// values skip the Gamma fit.
func BestFit(xs []float64) []FitReport {
	var reports []FitReport
	nrm := FitNormal(xs)
	ok, stat, crit := KSTest(xs, nrm, 0.05)
	reports = append(reports, FitReport{Family: "normal", Dist: nrm, KSStat: stat, KSCrit: crit, KSPass: ok})
	if gm, err := FitGamma(xs); err == nil {
		ok, stat, crit := KSTest(xs, gm, 0.05)
		reports = append(reports, FitReport{Family: "gamma", Dist: gm, KSStat: stat, KSCrit: crit, KSPass: ok})
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].KSStat < reports[j].KSStat })
	return reports
}
