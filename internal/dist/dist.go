// Package dist provides the probability-distribution toolkit Deco uses to
// model cloud performance dynamics: parametric distributions (Normal, Gamma,
// Uniform), empirical samples, discretized histograms, distribution fitting,
// and goodness-of-fit tests.
//
// The paper models sequential I/O performance with Gamma distributions,
// random I/O and network performance with Normal distributions (Table 2,
// Figures 6-7), discretizes them as histograms in the metadata store, and
// samples from the histograms during Monte-Carlo evaluation. This package
// implements all of those pieces with the standard library only.
package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Dist is a one-dimensional probability distribution over float64 values.
type Dist interface {
	// Sample draws one value using rng.
	Sample(rng *rand.Rand) float64
	// Mean returns the distribution mean.
	Mean() float64
	// Var returns the distribution variance.
	Var() float64
	// String describes the distribution.
	String() string
}

// Normal is a Gaussian distribution with mean Mu and standard deviation Sigma.
type Normal struct {
	Mu    float64
	Sigma float64
}

// NewNormal returns a Normal distribution. Sigma must be non-negative.
func NewNormal(mu, sigma float64) Normal {
	if sigma < 0 {
		panic(fmt.Sprintf("dist: negative sigma %v", sigma))
	}
	return Normal{Mu: mu, Sigma: sigma}
}

// Sample draws from the Gaussian using the polar method provided by math/rand.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// Mean returns Mu.
func (n Normal) Mean() float64 { return n.Mu }

// Var returns Sigma^2.
func (n Normal) Var() float64 { return n.Sigma * n.Sigma }

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 {
	if n.Sigma == 0 {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Quantile returns the p-quantile (inverse CDF) for p in (0,1).
func (n Normal) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("dist: quantile p=%v out of (0,1)", p))
	}
	// Bisection on the CDF: robust and dependency-free. The CDF is monotone,
	// so 200 iterations give ~1e-14 relative precision on the bracket.
	lo, hi := n.Mu-40*n.Sigma-1, n.Mu+40*n.Sigma+1
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if n.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// String implements fmt.Stringer.
func (n Normal) String() string {
	return fmt.Sprintf("Normal(mu=%.4g, sigma=%.4g)", n.Mu, n.Sigma)
}

// Gamma is a Gamma distribution with shape K and scale Theta.
type Gamma struct {
	K     float64 // shape
	Theta float64 // scale
}

// NewGamma returns a Gamma distribution. Both parameters must be positive.
func NewGamma(k, theta float64) Gamma {
	if k <= 0 || theta <= 0 {
		panic(fmt.Sprintf("dist: non-positive gamma params k=%v theta=%v", k, theta))
	}
	return Gamma{K: k, Theta: theta}
}

// Sample draws from the Gamma distribution using the Marsaglia-Tsang method.
func (g Gamma) Sample(rng *rand.Rand) float64 {
	k := g.K
	boost := 1.0
	if k < 1 {
		// Boost shape to >= 1 then correct with a uniform power.
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		boost = math.Pow(u, 1/k)
		k++
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return boost * d * v * g.Theta
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return boost * d * v * g.Theta
		}
	}
}

// Mean returns K*Theta.
func (g Gamma) Mean() float64 { return g.K * g.Theta }

// Var returns K*Theta^2.
func (g Gamma) Var() float64 { return g.K * g.Theta * g.Theta }

// String implements fmt.Stringer.
func (g Gamma) String() string {
	return fmt.Sprintf("Gamma(k=%.4g, theta=%.4g)", g.K, g.Theta)
}

// Uniform is a continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// NewUniform returns a Uniform distribution; requires Lo <= Hi.
func NewUniform(lo, hi float64) Uniform {
	if lo > hi {
		panic(fmt.Sprintf("dist: uniform lo=%v > hi=%v", lo, hi))
	}
	return Uniform{Lo: lo, Hi: hi}
}

// Sample draws uniformly from [Lo, Hi).
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Lo + (u.Hi-u.Lo)*rng.Float64()
}

// Mean returns the midpoint.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Var returns (Hi-Lo)^2/12.
func (u Uniform) Var() float64 { d := u.Hi - u.Lo; return d * d / 12 }

// String implements fmt.Stringer.
func (u Uniform) String() string {
	return fmt.Sprintf("Uniform(%.4g, %.4g)", u.Lo, u.Hi)
}

// Constant is a degenerate distribution that always yields V. It models the
// paper's observation that CPU performance is "rather stable in the cloud".
type Constant struct {
	V float64
}

// Sample returns V.
func (c Constant) Sample(*rand.Rand) float64 { return c.V }

// Mean returns V.
func (c Constant) Mean() float64 { return c.V }

// Var returns 0.
func (c Constant) Var() float64 { return 0 }

// String implements fmt.Stringer.
func (c Constant) String() string { return fmt.Sprintf("Constant(%.4g)", c.V) }

// Empirical is the empirical distribution of a measured sample, used by the
// calibration pipeline before a parametric fit is chosen.
type Empirical struct {
	sorted []float64
	mean   float64
	vr     float64
}

// NewEmpirical copies xs and precomputes order statistics and moments.
// It panics on an empty sample.
func NewEmpirical(xs []float64) *Empirical {
	if len(xs) == 0 {
		panic("dist: empty empirical sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	m := MeanOf(s)
	return &Empirical{sorted: s, mean: m, vr: VarOf(s, m)}
}

// Sample draws one of the observed values uniformly.
func (e *Empirical) Sample(rng *rand.Rand) float64 {
	return e.sorted[rng.Intn(len(e.sorted))]
}

// Mean returns the sample mean.
func (e *Empirical) Mean() float64 { return e.mean }

// Var returns the (unbiased) sample variance.
func (e *Empirical) Var() float64 { return e.vr }

// Len returns the sample size.
func (e *Empirical) Len() int { return len(e.sorted) }

// Min returns the smallest observation.
func (e *Empirical) Min() float64 { return e.sorted[0] }

// Max returns the largest observation.
func (e *Empirical) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Quantile returns the p-th quantile of the sample (linear interpolation),
// p in [0, 1].
func (e *Empirical) Quantile(p float64) float64 {
	return QuantileOf(e.sorted, p)
}

// String implements fmt.Stringer.
func (e *Empirical) String() string {
	return fmt.Sprintf("Empirical(n=%d, mean=%.4g)", len(e.sorted), e.mean)
}

// MeanOf returns the arithmetic mean of xs (0 for an empty slice).
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// VarOf returns the unbiased sample variance of xs around mean (0 if n < 2).
func VarOf(xs []float64, mean float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		d := x - mean
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StddevOf returns the unbiased sample standard deviation of xs.
func StddevOf(xs []float64) float64 {
	return math.Sqrt(VarOf(xs, MeanOf(xs)))
}

// QuantileOf returns the p-th quantile of a *sorted* sample using linear
// interpolation between order statistics. p is clamped to [0,1].
func QuantileOf(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return sorted[n-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}
