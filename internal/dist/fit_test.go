package dist

import (
	"math"
	"testing"
)

func TestFitNormalRecoversParams(t *testing.T) {
	n := NewNormal(128.9, 8.4) // m1.medium random I/O, Table 2
	r := rng(9)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = n.Sample(r)
	}
	fit := FitNormal(xs)
	if math.Abs(fit.Mu-128.9) > 0.3 {
		t.Errorf("mu %v", fit.Mu)
	}
	if math.Abs(fit.Sigma-8.4) > 0.3 {
		t.Errorf("sigma %v", fit.Sigma)
	}
}

func TestFitGammaRecoversParams(t *testing.T) {
	g := NewGamma(408.1, 0.26) // m1.xlarge sequential I/O, Table 2
	r := rng(10)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = g.Sample(r)
	}
	fit, err := FitGamma(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.K-408.1)/408.1 > 0.05 {
		t.Errorf("k = %v, want ~408.1", fit.K)
	}
	if math.Abs(fit.Theta-0.26)/0.26 > 0.05 {
		t.Errorf("theta = %v, want ~0.26", fit.Theta)
	}
}

func TestFitGammaRejectsNonPositive(t *testing.T) {
	if _, err := FitGamma([]float64{-1, -2, -3}); err == nil {
		t.Error("expected error for negative sample")
	}
	if _, err := FitGamma([]float64{5, 5, 5}); err == nil {
		t.Error("expected error for zero-variance sample")
	}
}

func TestKSTestAcceptsTrueDistribution(t *testing.T) {
	n := NewNormal(0, 1)
	r := rng(20)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = n.Sample(r)
	}
	ok, stat, crit := KSTest(xs, n, 0.05)
	if !ok {
		t.Errorf("KS rejected true distribution: stat=%v crit=%v", stat, crit)
	}
}

func TestKSTestRejectsWrongDistribution(t *testing.T) {
	// Sample from Normal(0,1), test against Normal(3,1): should reject.
	n := NewNormal(0, 1)
	r := rng(21)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = n.Sample(r)
	}
	ok, _, _ := KSTest(xs, NewNormal(3, 1), 0.05)
	if ok {
		t.Error("KS failed to reject a shifted distribution")
	}
}

func TestKSAlphaLevels(t *testing.T) {
	xs := []float64{0, 0.5, 1}
	_, _, c1 := KSTest(xs, NewNormal(0, 1), 0.01)
	_, _, c5 := KSTest(xs, NewNormal(0, 1), 0.05)
	_, _, c10 := KSTest(xs, NewNormal(0, 1), 0.10)
	if !(c1 > c5 && c5 > c10) {
		t.Errorf("critical values not ordered: %v %v %v", c1, c5, c10)
	}
}

func TestChiSquareLowForGoodFit(t *testing.T) {
	g := NewGamma(129.3, 0.79)
	r := rng(30)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = g.Sample(r)
	}
	h, err := FromSamples(xs, 20)
	if err != nil {
		t.Fatal(err)
	}
	stat, dof := ChiSquareStatistic(xs, h, g, 2)
	// For a good fit the statistic should be near dof; allow generous slack.
	if stat > float64(dof)*3 {
		t.Errorf("chi2 = %v with dof %d: suspiciously high for true distribution", stat, dof)
	}
	// And a clearly wrong distribution should give a much higher statistic.
	statBad, _ := ChiSquareStatistic(xs, h, NewNormal(0, 1), 2)
	if statBad < stat*10 {
		t.Errorf("chi2 bad=%v should dwarf good=%v", statBad, stat)
	}
}

func TestBestFitPrefersTrueFamily(t *testing.T) {
	// Gamma data with strong skew so the Normal fit is distinguishable.
	g := NewGamma(2, 3)
	r := rng(40)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = g.Sample(r)
	}
	reports := BestFit(xs)
	if len(reports) != 2 {
		t.Fatalf("want 2 reports, got %d", len(reports))
	}
	if reports[0].Family != "gamma" {
		t.Errorf("best fit = %s, want gamma (KS %v vs %v)", reports[0].Family, reports[0].KSStat, reports[1].KSStat)
	}

	// Normal data: normal should win.
	n := NewNormal(50, 5)
	ys := make([]float64, 20000)
	for i := range ys {
		ys[i] = n.Sample(r)
	}
	reports = BestFit(ys)
	if reports[0].Family != "normal" {
		t.Errorf("best fit = %s, want normal", reports[0].Family)
	}
}

func TestRegIncGammaLowerKnown(t *testing.T) {
	// P(1, x) = 1 - e^-x.
	for _, x := range []float64{0.5, 1, 2, 10} {
		want := 1 - math.Exp(-x)
		if got := regIncGammaLower(1, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(a, 0) = 0; bounds.
	if regIncGammaLower(3, 0) != 0 {
		t.Error("P(3,0) != 0")
	}
	if got := regIncGammaLower(5, 1000); math.Abs(got-1) > 1e-9 {
		t.Errorf("P(5,1000) = %v, want ~1", got)
	}
	if !math.IsNaN(regIncGammaLower(-1, 1)) {
		t.Error("negative shape should be NaN")
	}
}
