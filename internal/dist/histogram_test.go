package dist

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	cases := []struct {
		name  string
		edges []float64
		probs []float64
	}{
		{"shape mismatch", []float64{0, 1}, []float64{0.5, 0.5}},
		{"no bins", []float64{0}, nil},
		{"non-increasing", []float64{0, 0, 1}, []float64{0.5, 0.5}},
		{"negative mass", []float64{0, 1, 2}, []float64{-1, 2}},
		{"zero mass", []float64{0, 1}, []float64{0}},
		{"nan mass", []float64{0, 1}, []float64{math.NaN()}},
	}
	for _, c := range cases {
		if _, err := NewHistogram(c.edges, c.probs); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestHistogramNormalizes(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Probs[0]-0.75) > 1e-12 || math.Abs(h.Probs[1]-0.25) > 1e-12 {
		t.Errorf("probs not normalized: %v", h.Probs)
	}
}

func TestHistogramMeanVarQuantile(t *testing.T) {
	h, err := NewHistogram([]float64{0, 2, 4}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Midpoints 1 and 3 with equal mass.
	if h.Mean() != 2 {
		t.Errorf("mean %v", h.Mean())
	}
	if h.Var() != 1 {
		t.Errorf("var %v", h.Var())
	}
	if h.Quantile(0.4) != 1 {
		t.Errorf("q(0.4) = %v, want 1", h.Quantile(0.4))
	}
	if h.Quantile(0.9) != 3 {
		t.Errorf("q(0.9) = %v, want 3", h.Quantile(0.9))
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 3 {
		t.Error("boundary quantiles wrong")
	}
}

func TestHistogramSampleDistribution(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2, 3}, []float64{0.2, 0.5, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	r := rng(11)
	counts := map[float64]int{}
	const N = 100000
	for i := 0; i < N; i++ {
		counts[h.Sample(r)]++
	}
	for i, want := range []float64{0.2, 0.5, 0.3} {
		got := float64(counts[h.Mid(i)]) / N
		if math.Abs(got-want) > 0.01 {
			t.Errorf("bin %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestFromSamples(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h, err := FromSamples(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins() != 5 {
		t.Fatalf("bins %d", h.Bins())
	}
	total := 0.0
	for _, p := range h.Probs {
		total += p
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("total mass %v", total)
	}
	lo, hi := h.Support()
	if lo != 0 || hi != 9 {
		t.Errorf("support %v..%v", lo, hi)
	}
}

func TestFromSamplesDegenerate(t *testing.T) {
	h, err := FromSamples([]float64{4, 4, 4}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins() != 1 {
		t.Fatalf("degenerate sample should make 1 bin, got %d", h.Bins())
	}
	if h.Mid(0) != 4 {
		t.Errorf("mid %v", h.Mid(0))
	}
	if _, err := FromSamples(nil, 3); err == nil {
		t.Error("empty sample should error")
	}
}

func TestDiscretizeRecoverMoments(t *testing.T) {
	n := NewNormal(100, 10)
	h, err := Discretize(n, 50, 100000, rng(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Mean()-100) > 1 {
		t.Errorf("discretized mean %v", h.Mean())
	}
	if math.Abs(math.Sqrt(h.Var())-10) > 1 {
		t.Errorf("discretized sd %v", math.Sqrt(h.Var()))
	}
}

func TestHistogramScale(t *testing.T) {
	h, _ := NewHistogram([]float64{1, 2, 3}, []float64{0.5, 0.5})
	s := h.Scale(10)
	if s.Edges[0] != 10 || s.Edges[2] != 30 {
		t.Errorf("scaled edges %v", s.Edges)
	}
	if math.Abs(s.Mean()-h.Mean()*10) > 1e-9 {
		t.Errorf("scaled mean %v, want %v", s.Mean(), h.Mean()*10)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on zero scale")
		}
	}()
	h.Scale(0)
}

func TestHistogramAsciiAndString(t *testing.T) {
	h, _ := NewHistogram([]float64{0, 1, 2}, []float64{0.25, 0.75})
	if !strings.Contains(h.String(), "2 bins") {
		t.Errorf("String() = %q", h.String())
	}
	a := h.Ascii(20)
	if !strings.Contains(a, "#") {
		t.Errorf("Ascii missing bars: %q", a)
	}
	if strings.Count(a, "\n") != 2 {
		t.Errorf("Ascii should have one line per bin")
	}
}

// Property: histogram sampling only produces bin midpoints, and quantiles are
// monotone in p.
func TestHistogramSamplePropertyQuick(t *testing.T) {
	f := func(seed int64, massesRaw []uint8) bool {
		if len(massesRaw) == 0 {
			massesRaw = []uint8{1}
		}
		if len(massesRaw) > 20 {
			massesRaw = massesRaw[:20]
		}
		edges := make([]float64, len(massesRaw)+1)
		probs := make([]float64, len(massesRaw))
		anyPositive := false
		for i, m := range massesRaw {
			edges[i] = float64(i)
			probs[i] = float64(m)
			if m > 0 {
				anyPositive = true
			}
		}
		edges[len(massesRaw)] = float64(len(massesRaw))
		if !anyPositive {
			probs[0] = 1
		}
		h, err := NewHistogram(edges, probs)
		if err != nil {
			return false
		}
		r := rng(seed)
		mids := map[float64]bool{}
		for i := 0; i < h.Bins(); i++ {
			mids[h.Mid(i)] = true
		}
		for i := 0; i < 50; i++ {
			if !mids[h.Sample(r)] {
				return false
			}
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			q := h.Quantile(p)
			if q < prev {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
