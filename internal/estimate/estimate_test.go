package estimate

import (
	"math"
	"math/rand"
	"testing"

	"deco/internal/cloud"
	"deco/internal/dag"
)

func setup(t *testing.T) (*cloud.Catalog, *Estimator) {
	t.Helper()
	cat := cloud.DefaultCatalog()
	rng := rand.New(rand.NewSource(1))
	md, err := cloud.MetadataFromTruth(cat, 20, 20000, rng)
	if err != nil {
		t.Fatal(err)
	}
	return cat, New(cat, md)
}

func task() *dag.Task {
	return &dag.Task{
		ID: "t", Executable: "x", CPUSeconds: 100,
		Inputs:  []dag.File{{Name: "in", SizeMB: 500}},
		Outputs: []dag.File{{Name: "out", SizeMB: 300}},
	}
}

func TestCPUTimeScalesWithECU(t *testing.T) {
	_, e := setup(t)
	tk := &dag.Task{ID: "cpu", CPUSeconds: 80} // no I/O
	small, err := e.TaskTime(tk, "m1.small")
	if err != nil {
		t.Fatal(err)
	}
	xlarge, err := e.TaskTime(tk, "m1.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	if small.Mean() != 80 {
		t.Errorf("small mean %v, want 80 (1 ECU)", small.Mean())
	}
	if xlarge.Mean() != 10 {
		t.Errorf("xlarge mean %v, want 10 (8 ECU)", xlarge.Mean())
	}
	// Pure-CPU tasks are deterministic.
	r := rand.New(rand.NewSource(2))
	if small.Sample(r) != 80 {
		t.Error("pure CPU task should sample deterministically")
	}
}

func TestMeanMatchesSampleMean(t *testing.T) {
	_, e := setup(t)
	td, err := e.TaskTime(task(), "m1.medium")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	const N = 100000
	sum := 0.0
	for i := 0; i < N; i++ {
		sum += td.Sample(r)
	}
	got := sum / N
	if math.Abs(got-td.Mean())/td.Mean() > 0.01 {
		t.Errorf("sample mean %v vs analytic %v", got, td.Mean())
	}
}

func TestFasterTypeIsFaster(t *testing.T) {
	_, e := setup(t)
	tk := task()
	var prev float64 = math.Inf(1)
	for _, typ := range []string{"m1.small", "m1.medium", "m1.large", "m1.xlarge"} {
		td, err := e.TaskTime(tk, typ)
		if err != nil {
			t.Fatal(err)
		}
		if td.Mean() >= prev {
			t.Errorf("%s mean %v not faster than previous %v", typ, td.Mean(), prev)
		}
		prev = td.Mean()
	}
}

func TestCPUScale(t *testing.T) {
	_, e := setup(t)
	e.CPUScale = 2
	tk := &dag.Task{ID: "cpu", CPUSeconds: 50}
	td, err := e.TaskTime(tk, "m1.small")
	if err != nil {
		t.Fatal(err)
	}
	if td.Mean() != 100 {
		t.Errorf("scaled mean %v, want 100", td.Mean())
	}
}

func TestTaskTimeErrors(t *testing.T) {
	_, e := setup(t)
	if _, err := e.TaskTime(task(), "m9.zz"); err == nil {
		t.Error("unknown type accepted")
	}
	// Metadata gap.
	delete(e.Meta.Net, "m1.small")
	if _, err := e.TaskTime(task(), "m1.small"); err == nil {
		t.Error("missing metadata accepted")
	}
}

func TestBuildTableAndDurations(t *testing.T) {
	_, e := setup(t)
	w := dag.New("w")
	_ = w.AddTask(&dag.Task{ID: "a", CPUSeconds: 10})
	_ = w.AddTask(&dag.Task{ID: "b", CPUSeconds: 20,
		Inputs: []dag.File{{Name: "f", SizeMB: 100}}})
	_ = w.AddEdge("a", "b")
	tbl, err := e.BuildTable(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Types) != 4 {
		t.Fatalf("types %d", len(tbl.Types))
	}
	td, err := tbl.Dist("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if td.Mean() != 10 {
		t.Errorf("a on small %v", td.Mean())
	}
	if _, err := tbl.Dist("zz", 0); err == nil {
		t.Error("unknown task accepted")
	}
	if _, err := tbl.Dist("a", 9); err == nil {
		t.Error("bad index accepted")
	}

	cfg := map[string]int{"a": 0, "b": 3}
	means, err := tbl.MeanDurations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if means["a"] != 10 {
		t.Errorf("mean a %v", means["a"])
	}
	r := rand.New(rand.NewSource(4))
	sample, err := tbl.SampleDurations(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	if sample["a"] != 10 { // deterministic CPU-only task
		t.Errorf("sample a %v", sample["a"])
	}
	if sample["b"] <= 20.0/8 {
		t.Errorf("sample b %v should include I/O time", sample["b"])
	}
	// Error propagation.
	if _, err := tbl.MeanDurations(map[string]int{"zz": 0}); err == nil {
		t.Error("unknown task in config accepted")
	}
	if _, err := tbl.SampleDurations(map[string]int{"a": 99}, r); err == nil {
		t.Error("bad index in config accepted")
	}
}

func TestIOAndNetworkContribute(t *testing.T) {
	_, e := setup(t)
	pureCPU := &dag.Task{ID: "c", CPUSeconds: 10}
	withIO := &dag.Task{ID: "d", CPUSeconds: 10,
		Inputs:  []dag.File{{Name: "i", SizeMB: 1000}},
		Outputs: []dag.File{{Name: "o", SizeMB: 1000}}}
	a, _ := e.TaskTime(pureCPU, "m1.small")
	b, _ := e.TaskTime(withIO, "m1.small")
	if b.Mean() <= a.Mean() {
		t.Errorf("I/O-heavy task (%v) should be slower than pure-CPU (%v)", b.Mean(), a.Mean())
	}
	// Roughly: 2000MB over ~102 MB/s disk plus 1000MB over ~55MB/s net.
	approx := 10 + 2000/102.0 + 1000/55.0
	if math.Abs(b.Mean()-approx)/approx > 0.15 {
		t.Errorf("I/O-heavy mean %v, expected around %v", b.Mean(), approx)
	}
}
