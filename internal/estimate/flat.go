package estimate

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sort"

	"deco/internal/dist"
)

// FlatTable is the dense, index-based form of a Table for one workflow: the
// TimeDist of task i on type j sits at Dists[i*NumTypes+j], so the
// Monte-Carlo evaluation core resolves distributions by integer arithmetic
// with no map lookups. A FlatTable is immutable after construction and safe
// for concurrent use.
type FlatTable struct {
	Types    []string
	TaskIDs  []string
	NumTypes int
	Dists    []*TimeDist // task-major: Dists[task*NumTypes+type]
}

// Flatten resolves the table against an ordered task-ID list (typically
// dag.Flat.IDs), densifying every (task, type) pair.
func (tb *Table) Flatten(taskIDs []string) (*FlatTable, error) {
	ft := &FlatTable{
		Types:    tb.Types,
		TaskIDs:  taskIDs,
		NumTypes: len(tb.Types),
		Dists:    make([]*TimeDist, len(taskIDs)*len(tb.Types)),
	}
	for i, id := range taskIDs {
		row, ok := tb.Dists[id]
		if !ok {
			return nil, fmt.Errorf("estimate: unknown task %q", id)
		}
		if len(row) != ft.NumTypes {
			return nil, fmt.Errorf("estimate: task %q has %d dists for %d types", id, len(row), ft.NumTypes)
		}
		copy(ft.Dists[i*ft.NumTypes:(i+1)*ft.NumTypes], row)
	}
	return ft, nil
}

// Dist returns the distribution of task index i on type index j; indices
// must be in range (hot-path accessor, no error return).
func (ft *FlatTable) Dist(i, j int) *TimeDist { return ft.Dists[i*ft.NumTypes+j] }

// Len is the number of tasks.
func (ft *FlatTable) Len() int { return len(ft.TaskIDs) }

// writeFloats writes float64s to a hash in a fixed binary form.
func writeFloats(w io.Writer, xs ...float64) {
	var buf [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		w.Write(buf[:])
	}
}

// Fingerprint content-hashes the table: every task's per-type CPU/IO/net
// figures plus the performance histograms behind them. Two tables with equal
// fingerprints produce identical execution-time distributions for every
// (task, type) pair, so Monte-Carlo evaluations against them are
// interchangeable — the property the solver's cross-search evaluation cache
// keys on.
func (tb *Table) Fingerprint() string {
	h := sha256.New()
	for _, typ := range tb.Types {
		io.WriteString(h, typ)
		io.WriteString(h, "|")
	}
	ids := make([]string, 0, len(tb.Dists))
	for id := range tb.Dists {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	// Performance histograms are shared across tasks (one per type), so hash
	// each distinct one once and refer back by index thereafter.
	seen := map[*dist.Histogram]int{}
	hashHist := func(hst *dist.Histogram) {
		if hst == nil {
			io.WriteString(h, "nil;")
			return
		}
		if i, ok := seen[hst]; ok {
			fmt.Fprintf(h, "ref=%d;", i)
			return
		}
		seen[hst] = len(seen)
		io.WriteString(h, "hist;")
		writeFloats(h, hst.Edges...)
		writeFloats(h, hst.Probs...)
	}
	for _, id := range ids {
		io.WriteString(h, id)
		for _, td := range tb.Dists[id] {
			writeFloats(h, td.CPUSeconds, td.IOMB, td.NetMB, td.XferMB, td.XferCostUSD)
			hashHist(td.seq)
			hashHist(td.net)
			hashHist(td.xnet)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
