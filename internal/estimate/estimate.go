// Package estimate implements the task execution-time model Deco uses when
// translating WLog programs to the probabilistic IR (§5.1): given a task's
// input size, reference CPU time and output size, its execution time on an
// instance type is the sum of CPU, I/O and network time on that instance
// (the approach of Yu et al. the paper adopts). CPU time is deterministic
// (scaled by the instance's ECU factor); I/O and network times divide the
// data volumes by performance values drawn from the calibrated histograms,
// so the estimated task time is itself a probability distribution.
package estimate

import (
	"fmt"
	"math/rand"
	"sort"

	"deco/internal/cloud"
	"deco/internal/dag"
	"deco/internal/dist"
)

// Estimator derives execution-time distributions from the cloud metadata.
type Estimator struct {
	Cat  *cloud.Catalog
	Meta *cloud.Metadata
	// CPUScale scales CPU time to account for multi-core effects (the
	// scaling factor of Pietri et al. cited in §5.1). 1.0 = no scaling.
	CPUScale float64
}

// New returns an estimator over the given catalog and metadata store.
func New(cat *cloud.Catalog, meta *cloud.Metadata) *Estimator {
	return &Estimator{Cat: cat, Meta: meta, CPUScale: 1.0}
}

// TimeDist is the execution-time distribution of one task on one instance
// type: a deterministic CPU component plus stochastic I/O and network
// components.
type TimeDist struct {
	CPUSeconds float64 // already scaled by ECU
	IOMB       float64 // data through the local disk
	NetMB      float64 // data over the network

	seq *dist.Histogram // sequential I/O MB/s
	net *dist.Histogram // network MB/s

	invSeqMean float64 // E[1/seq], cached
	invNetMean float64 // E[1/net], cached
}

// invMean returns E[1/X] for a histogram, guarding against non-positive
// bins (performance histograms should be strictly positive).
func invMean(h *dist.Histogram) (float64, error) {
	s := 0.0
	for i, p := range h.Probs {
		m := h.Mid(i)
		if m <= 0 {
			return 0, fmt.Errorf("estimate: non-positive performance bin %v", m)
		}
		s += p / m
	}
	return s, nil
}

// TaskTime builds the execution-time distribution of task t on the named
// instance type. The data volumes follow the paper's model: all input and
// output bytes pass through local disk (I/O component) and input bytes
// additionally arrive over the network (from S3 or a parent task's
// instance; co-location discounts are applied by the simulator, not here,
// because the estimate must be placement-independent).
func (e *Estimator) TaskTime(t *dag.Task, typ string) (*TimeDist, error) {
	it, err := e.Cat.Type(typ)
	if err != nil {
		return nil, err
	}
	seq := e.Meta.SeqIO[typ]
	net := e.Meta.Net[typ]
	if seq == nil || net == nil {
		return nil, fmt.Errorf("estimate: no metadata for type %q", typ)
	}
	scale := e.CPUScale
	if scale == 0 {
		scale = 1
	}
	td := &TimeDist{
		CPUSeconds: t.CPUSeconds / it.ECU * scale,
		IOMB:       t.InputMB() + t.OutputMB(),
		NetMB:      t.InputMB(),
		seq:        seq,
		net:        net,
	}
	if td.invSeqMean, err = invMean(seq); err != nil {
		return nil, err
	}
	if td.invNetMean, err = invMean(net); err != nil {
		return nil, err
	}
	return td, nil
}

// Sample draws one execution time in seconds.
func (td *TimeDist) Sample(rng *rand.Rand) float64 {
	t := td.CPUSeconds
	if td.IOMB > 0 {
		t += td.IOMB / td.seq.Sample(rng)
	}
	if td.NetMB > 0 {
		t += td.NetMB / td.net.Sample(rng)
	}
	return t
}

// Mean returns the exact mean of the distribution:
// cpu + io*E[1/seq] + net*E[1/net].
func (td *TimeDist) Mean() float64 {
	return td.CPUSeconds + td.IOMB*td.invSeqMean + td.NetMB*td.invNetMean
}

// Table precomputes the TimeDist of every (task, type) pair of a workflow,
// indexed by task ID then catalog type index. This is the exetime(Tid,Vid,T)
// fact table of the probabilistic IR.
type Table struct {
	Types []string
	Dists map[string][]*TimeDist // task ID -> per-type distribution
}

// BuildTable precomputes execution-time distributions for all tasks of w on
// all catalog types.
func (e *Estimator) BuildTable(w *dag.Workflow) (*Table, error) {
	tbl := &Table{Types: e.Cat.TypeNames(), Dists: make(map[string][]*TimeDist, w.Len())}
	for _, t := range w.Tasks {
		row := make([]*TimeDist, len(tbl.Types))
		for j, typ := range tbl.Types {
			td, err := e.TaskTime(t, typ)
			if err != nil {
				return nil, err
			}
			row[j] = td
		}
		tbl.Dists[t.ID] = row
	}
	return tbl, nil
}

// Dist returns the distribution of the given task on type index j.
func (tb *Table) Dist(taskID string, j int) (*TimeDist, error) {
	row, ok := tb.Dists[taskID]
	if !ok {
		return nil, fmt.Errorf("estimate: unknown task %q", taskID)
	}
	if j < 0 || j >= len(row) {
		return nil, fmt.Errorf("estimate: type index %d out of range", j)
	}
	return row[j], nil
}

// MeanDurations returns the mean duration of every task under the given
// per-task type assignment (task ID -> type index).
func (tb *Table) MeanDurations(config map[string]int) (map[string]float64, error) {
	out := make(map[string]float64, len(config))
	for id, j := range config {
		td, err := tb.Dist(id, j)
		if err != nil {
			return nil, err
		}
		out[id] = td.Mean()
	}
	return out, nil
}

// SampleDurations draws one world: a concrete duration for every task under
// the given assignment. Tasks consume the rng in sorted-ID order, so the
// same seed reproduces the same world (ranging over the map directly would
// randomize the consumption order run to run). Hot paths use the flat
// common-random-number core in package probir instead; this map-keyed form
// remains for tooling and tests.
func (tb *Table) SampleDurations(config map[string]int, rng *rand.Rand) (map[string]float64, error) {
	ids := make([]string, 0, len(config))
	for id := range config {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make(map[string]float64, len(config))
	for _, id := range ids {
		td, err := tb.Dist(id, config[id])
		if err != nil {
			return nil, err
		}
		out[id] = td.Sample(rng)
	}
	return out, nil
}
