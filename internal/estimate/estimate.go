// Package estimate implements the task execution-time model Deco uses when
// translating WLog programs to the probabilistic IR (§5.1): given a task's
// input size, reference CPU time and output size, its execution time on an
// instance type is the sum of CPU, I/O and network time on that instance
// (the approach of Yu et al. the paper adopts). CPU time is deterministic
// (scaled by the instance's ECU factor); I/O and network times divide the
// data volumes by performance values drawn from the calibrated histograms,
// so the estimated task time is itself a probability distribution.
package estimate

import (
	"fmt"
	"math/rand"
	"sort"

	"deco/internal/cloud"
	"deco/internal/dag"
	"deco/internal/dist"
)

// Estimator derives execution-time distributions from the cloud metadata.
type Estimator struct {
	Cat  *cloud.Catalog
	Meta *cloud.Metadata
	// CPUScale scales CPU time to account for multi-core effects (the
	// scaling factor of Pietri et al. cited in §5.1). 1.0 = no scaling.
	CPUScale float64
	// Transfer, when non-nil, prices data gravity into the table: the
	// workflow's source inputs live in Transfer.From and must cross to the
	// execution region, so source tasks gain a stochastic cross-region
	// transfer time plus a deterministic egress cost.
	Transfer *Transfer
}

// Transfer describes one cross-region data-gravity configuration, derived
// from a transfer(src, dst) WLog fact against a catalog.
type Transfer struct {
	From, To string
	// PriceGB is the USD price per GB out of From to To
	// (Region.NetPricePerGB resolved once).
	PriceGB float64
	// Net is the calibrated cross-region bandwidth histogram in MB/s.
	Net *dist.Histogram
}

// New returns an estimator over the given catalog and metadata store.
func New(cat *cloud.Catalog, meta *cloud.Metadata) *Estimator {
	return &Estimator{Cat: cat, Meta: meta, CPUScale: 1.0}
}

// TimeDist is the execution-time distribution of one task on one instance
// type: a deterministic CPU component plus stochastic I/O and network
// components.
type TimeDist struct {
	CPUSeconds float64 // already scaled by ECU
	IOMB       float64 // data through the local disk
	NetMB      float64 // data over the network

	// XferMB is source input data that must cross regions before the task
	// can run (zero unless the estimator has a Transfer configured and the
	// task is a workflow source); XferCostUSD is the deterministic egress
	// price of moving it.
	XferMB      float64
	XferCostUSD float64

	seq  *dist.Histogram // sequential I/O MB/s
	net  *dist.Histogram // network MB/s
	xnet *dist.Histogram // cross-region MB/s (nil without a transfer)

	invSeqMean  float64 // E[1/seq], cached
	invNetMean  float64 // E[1/net], cached
	invXNetMean float64 // E[1/xnet], cached
}

// invMean returns E[1/X] for a histogram, guarding against non-positive
// bins (performance histograms should be strictly positive).
func invMean(h *dist.Histogram) (float64, error) {
	s := 0.0
	for i, p := range h.Probs {
		m := h.Mid(i)
		if m <= 0 {
			return 0, fmt.Errorf("estimate: non-positive performance bin %v", m)
		}
		s += p / m
	}
	return s, nil
}

// TaskTime builds the execution-time distribution of task t on the named
// instance type. The data volumes follow the paper's model: all input and
// output bytes pass through local disk (I/O component) and input bytes
// additionally arrive over the network (from S3 or a parent task's
// instance; co-location discounts are applied by the simulator, not here,
// because the estimate must be placement-independent).
func (e *Estimator) TaskTime(t *dag.Task, typ string) (*TimeDist, error) {
	it, err := e.Cat.Type(typ)
	if err != nil {
		return nil, err
	}
	seq := e.Meta.SeqIO[typ]
	net := e.Meta.Net[typ]
	if seq == nil || net == nil {
		return nil, fmt.Errorf("estimate: no metadata for type %q", typ)
	}
	scale := e.CPUScale
	if scale == 0 {
		scale = 1
	}
	td := &TimeDist{
		CPUSeconds: t.CPUSeconds / it.ECU * scale,
		IOMB:       t.InputMB() + t.OutputMB(),
		NetMB:      t.InputMB(),
		seq:        seq,
		net:        net,
	}
	if td.invSeqMean, err = invMean(seq); err != nil {
		return nil, err
	}
	if td.invNetMean, err = invMean(net); err != nil {
		return nil, err
	}
	return td, nil
}

// Sample draws one execution time in seconds. The cross-region transfer
// draw comes last so tables without a transfer configured consume the rng
// exactly as before — the common-random-numbers contract is append-only.
func (td *TimeDist) Sample(rng *rand.Rand) float64 {
	t := td.CPUSeconds
	if td.IOMB > 0 {
		t += td.IOMB / td.seq.Sample(rng)
	}
	if td.NetMB > 0 {
		t += td.NetMB / td.net.Sample(rng)
	}
	if td.XferMB > 0 {
		t += td.XferMB / td.xnet.Sample(rng)
	}
	return t
}

// Mean returns the exact mean of the distribution:
// cpu + io*E[1/seq] + net*E[1/net] + xfer*E[1/xnet].
func (td *TimeDist) Mean() float64 {
	return td.CPUSeconds + td.IOMB*td.invSeqMean + td.NetMB*td.invNetMean + td.XferMB*td.invXNetMean
}

// Table precomputes the TimeDist of every (task, type) pair of a workflow,
// indexed by task ID then catalog type index. This is the exetime(Tid,Vid,T)
// fact table of the probabilistic IR.
type Table struct {
	Types []string
	Dists map[string][]*TimeDist // task ID -> per-type distribution
}

// BuildTable precomputes execution-time distributions for all tasks of w on
// all catalog types. With a Transfer configured, workflow sources (tasks
// with no parents — their inputs come from storage in the remote region,
// not from a parent's instance) additionally pay the cross-region transfer
// time and egress cost on every type.
func (e *Estimator) BuildTable(w *dag.Workflow) (*Table, error) {
	if e.Transfer != nil {
		if e.Transfer.Net == nil {
			return nil, fmt.Errorf("estimate: transfer %s->%s has no bandwidth model", e.Transfer.From, e.Transfer.To)
		}
		if _, err := invMean(e.Transfer.Net); err != nil {
			return nil, err
		}
	}
	tbl := &Table{Types: e.Cat.TypeNames(), Dists: make(map[string][]*TimeDist, w.Len())}
	for _, t := range w.Tasks {
		row := make([]*TimeDist, len(tbl.Types))
		for j, typ := range tbl.Types {
			td, err := e.TaskTime(t, typ)
			if err != nil {
				return nil, err
			}
			if e.Transfer != nil && len(w.Parents(t.ID)) == 0 && t.InputMB() > 0 {
				td.XferMB = t.InputMB()
				td.XferCostUSD = t.InputMB() / 1024 * e.Transfer.PriceGB
				td.xnet = e.Transfer.Net
				if td.invXNetMean, err = invMean(td.xnet); err != nil {
					return nil, err
				}
			}
			row[j] = td
		}
		tbl.Dists[t.ID] = row
	}
	return tbl, nil
}

// ExpandSpot returns a new table with one virtual "<base>:spot" column per
// entry of spots appended, in order, after the on-demand columns. Spot
// columns share the base column's TimeDist pointers — a spot instance runs
// the task with identical performance, it just prices (and survives)
// differently; the market semantics attach to the column index in the
// probabilistic IR, not here.
func (tb *Table) ExpandSpot(spots []string) (*Table, error) {
	if len(spots) == 0 {
		return tb, nil
	}
	baseIdx := make(map[string]int, len(tb.Types))
	for j, typ := range tb.Types {
		baseIdx[typ] = j
	}
	out := &Table{
		Types: append([]string(nil), tb.Types...),
		Dists: make(map[string][]*TimeDist, len(tb.Dists)),
	}
	seen := make(map[string]bool, len(spots))
	cols := make([]int, 0, len(spots))
	for _, base := range spots {
		j, ok := baseIdx[base]
		if !ok {
			return nil, fmt.Errorf("estimate: spot type %q not in the table", base)
		}
		if cloud.IsSpotName(base) {
			return nil, fmt.Errorf("estimate: spot type %q already a spot name", base)
		}
		if seen[base] {
			return nil, fmt.Errorf("estimate: duplicate spot type %q", base)
		}
		seen[base] = true
		cols = append(cols, j)
		out.Types = append(out.Types, cloud.SpotName(base))
	}
	for id, row := range tb.Dists {
		nrow := make([]*TimeDist, 0, len(out.Types))
		nrow = append(nrow, row...)
		for _, j := range cols {
			nrow = append(nrow, row[j])
		}
		out.Dists[id] = nrow
	}
	return out, nil
}

// Dist returns the distribution of the given task on type index j.
func (tb *Table) Dist(taskID string, j int) (*TimeDist, error) {
	row, ok := tb.Dists[taskID]
	if !ok {
		return nil, fmt.Errorf("estimate: unknown task %q", taskID)
	}
	if j < 0 || j >= len(row) {
		return nil, fmt.Errorf("estimate: type index %d out of range", j)
	}
	return row[j], nil
}

// MeanDurations returns the mean duration of every task under the given
// per-task type assignment (task ID -> type index).
func (tb *Table) MeanDurations(config map[string]int) (map[string]float64, error) {
	out := make(map[string]float64, len(config))
	for id, j := range config {
		td, err := tb.Dist(id, j)
		if err != nil {
			return nil, err
		}
		out[id] = td.Mean()
	}
	return out, nil
}

// SampleDurations draws one world: a concrete duration for every task under
// the given assignment. Tasks consume the rng in sorted-ID order, so the
// same seed reproduces the same world (ranging over the map directly would
// randomize the consumption order run to run). Hot paths use the flat
// common-random-number core in package probir instead; this map-keyed form
// remains for tooling and tests.
func (tb *Table) SampleDurations(config map[string]int, rng *rand.Rand) (map[string]float64, error) {
	ids := make([]string, 0, len(config))
	for id := range config {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make(map[string]float64, len(config))
	for _, id := range ids {
		td, err := tb.Dist(id, config[id])
		if err != nil {
			return nil, err
		}
		out[id] = td.Sample(rng)
	}
	return out, nil
}
