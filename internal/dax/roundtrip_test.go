package dax

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"deco/internal/dag"
	"deco/internal/wfgen"
)

// TestGeneratorRoundTrip writes every synthetic-application generator's
// output as a DAX document, reads it back, and requires the parsed workflow
// to be structurally equal to the original: same tasks (executable, CPU
// work, files) and the same dependency edges.
func TestGeneratorRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		gen  func(rng *rand.Rand) (*dag.Workflow, error)
	}{
		{"montage", func(r *rand.Rand) (*dag.Workflow, error) { return wfgen.Montage(2, r) }},
		{"ligo", func(r *rand.Rand) (*dag.Workflow, error) { return wfgen.Ligo(3, r) }},
		{"epigenomics", func(r *rand.Rand) (*dag.Workflow, error) { return wfgen.Epigenomics(2, 4, r) }},
		{"cybershake", func(r *rand.Rand) (*dag.Workflow, error) { return wfgen.CyberShake(3, 5, r) }},
		{"pipeline", func(r *rand.Rand) (*dag.Workflow, error) { return wfgen.Pipeline(6, r) }},
		{"funnel", func(r *rand.Rand) (*dag.Workflow, error) { return wfgen.Funnel(5, 200, 40, r) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig, err := tc.gen(rand.New(rand.NewSource(42)))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := Write(&buf, orig); err != nil {
				t.Fatal(err)
			}
			parsed, err := Parse(&buf)
			if err != nil {
				t.Fatalf("parsing written DAX: %v\ndocument:\n%s", err, buf.String())
			}
			assertStructurallyEqual(t, orig, parsed)
		})
	}
}

// fileSizeTolMB absorbs the byte-rounding of dax.Write (sizes are written as
// whole bytes, so at most 0.5 bytes ≈ 5e-7 MB of error per file).
const fileSizeTolMB = 1e-6

func assertStructurallyEqual(t *testing.T, want, got *dag.Workflow) {
	t.Helper()
	if got.Name != want.Name {
		t.Errorf("name = %q, want %q", got.Name, want.Name)
	}
	if got.Len() != want.Len() {
		t.Fatalf("task count = %d, want %d", got.Len(), want.Len())
	}
	for _, wt := range want.Tasks {
		gt := got.Task(wt.ID)
		if gt == nil {
			t.Fatalf("task %q missing after round trip", wt.ID)
		}
		if gt.Executable != wt.Executable {
			t.Errorf("task %s executable = %q, want %q", wt.ID, gt.Executable, wt.Executable)
		}
		if gt.CPUSeconds != wt.CPUSeconds {
			t.Errorf("task %s cpu = %v, want %v (runtime must round-trip exactly)", wt.ID, gt.CPUSeconds, wt.CPUSeconds)
		}
		assertFilesEqual(t, wt.ID+" inputs", wt.Inputs, gt.Inputs)
		assertFilesEqual(t, wt.ID+" outputs", wt.Outputs, gt.Outputs)
	}
	wantEdges, gotEdges := want.Edges(), got.Edges()
	if len(gotEdges) != len(wantEdges) {
		t.Fatalf("edge count = %d, want %d\ngot  %v\nwant %v", len(gotEdges), len(wantEdges), gotEdges, wantEdges)
	}
	for i := range wantEdges {
		if wantEdges[i] != gotEdges[i] {
			t.Fatalf("edge %d = %v, want %v", i, gotEdges[i], wantEdges[i])
		}
	}
}

func assertFilesEqual(t *testing.T, what string, want, got []dag.File) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d files, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name {
			t.Errorf("%s[%d] = %q, want %q", what, i, got[i].Name, want[i].Name)
		}
		if math.Abs(got[i].SizeMB-want[i].SizeMB) > fileSizeTolMB {
			t.Errorf("%s[%d] size = %v MB, want %v MB (±%v)", what, i, got[i].SizeMB, want[i].SizeMB, fileSizeTolMB)
		}
	}
}
