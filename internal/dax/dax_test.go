package dax

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"deco/internal/dag"
)

// pipelineDAX is the example document from Figure 4 of the paper (a pipeline
// workflow where ID02 consumes ID01's output).
const pipelineDAX = `<?xml version="1.0" encoding="UTF-8"?>
<adag name="pipeline">
  <job id="ID01" name="process1" runtime="30">
    <uses file="f.a" link="input" size="1048576"/>
    <uses file="f.b1" link="output" size="2097152"/>
  </job>
  <job id="ID02" name="process2" runtime="45">
    <uses file="f.b1" link="input" size="2097152"/>
    <uses file="f.c" link="output" size="524288"/>
  </job>
  <child ref="ID02">
    <parent ref="ID01"/>
  </child>
</adag>`

func TestParsePipeline(t *testing.T) {
	w, err := Parse(strings.NewReader(pipelineDAX))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "pipeline" || w.Len() != 2 {
		t.Fatalf("name=%q len=%d", w.Name, w.Len())
	}
	t1 := w.Task("ID01")
	if t1 == nil || t1.Executable != "process1" || t1.CPUSeconds != 30 {
		t.Fatalf("ID01 = %+v", t1)
	}
	if t1.Inputs[0].SizeMB != 1 {
		t.Errorf("input size %v MB, want 1", t1.Inputs[0].SizeMB)
	}
	if t1.Outputs[0].SizeMB != 2 {
		t.Errorf("output size %v MB, want 2", t1.Outputs[0].SizeMB)
	}
	if cs := w.Children("ID01"); len(cs) != 1 || cs[0] != "ID02" {
		t.Errorf("children of ID01 = %v", cs)
	}
}

func TestParseImplicitDataDependency(t *testing.T) {
	// No <child> element: the edge must come from the f.b1 data dependency.
	doc := strings.Replace(pipelineDAX, "<child ref=\"ID02\">\n    <parent ref=\"ID01\"/>\n  </child>", "", 1)
	w, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if cs := w.Children("ID01"); len(cs) != 1 || cs[0] != "ID02" {
		t.Errorf("implicit edge missing: children = %v", cs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"garbage", "not xml at all"},
		{"bad runtime", `<adag name="x"><job id="a" name="p" runtime="zzz"/></adag>`},
		{"negative runtime", `<adag name="x"><job id="a" name="p" runtime="-5"/></adag>`},
		{"bad size", `<adag name="x"><job id="a" name="p"><uses file="f" link="input" size="NaNb"/></job></adag>`},
		{"bad link", `<adag name="x"><job id="a" name="p"><uses file="f" link="sideways"/></job></adag>`},
		{"dup id", `<adag name="x"><job id="a" name="p"/><job id="a" name="q"/></adag>`},
		{"unknown parent", `<adag name="x"><job id="a" name="p"/><child ref="a"><parent ref="zz"/></child></adag>`},
		{"cycle", `<adag name="x"><job id="a" name="p"/><job id="b" name="q"/>` +
			`<child ref="a"><parent ref="b"/></child><child ref="b"><parent ref="a"/></child></adag>`},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	w, err := Parse(strings.NewReader(`<adag><job id="a" name="p"/></adag>`))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "workflow" {
		t.Errorf("default name %q", w.Name)
	}
	if w.Task("a").CPUSeconds != 0 {
		t.Errorf("default runtime %v", w.Task("a").CPUSeconds)
	}
}

func TestRoundTrip(t *testing.T) {
	w, err := Parse(strings.NewReader(pipelineDAX))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, w); err != nil {
		t.Fatal(err)
	}
	w2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, buf.String())
	}
	if w2.Len() != w.Len() || w2.Name != w.Name {
		t.Fatalf("round trip lost structure")
	}
	for _, task := range w.Tasks {
		got := w2.Task(task.ID)
		if got == nil || got.CPUSeconds != task.CPUSeconds || got.Executable != task.Executable {
			t.Errorf("task %s changed: %+v vs %+v", task.ID, got, task)
		}
		if len(got.Inputs) != len(task.Inputs) || len(got.Outputs) != len(task.Outputs) {
			t.Errorf("task %s files changed", task.ID)
		}
	}
	if len(w2.Edges()) != len(w.Edges()) {
		t.Errorf("edges changed: %v vs %v", w2.Edges(), w.Edges())
	}
}

func TestWriteAndParseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wf.dax")

	w := dag.New("disk")
	_ = w.AddTask(&dag.Task{ID: "t1", Executable: "e1", CPUSeconds: 12,
		Outputs: []dag.File{{Name: "o", SizeMB: 3}}})
	_ = w.AddTask(&dag.Task{ID: "t2", Executable: "e2", CPUSeconds: 8,
		Inputs: []dag.File{{Name: "o", SizeMB: 3}}})
	_ = w.AddEdge("t1", "t2")

	if err := WriteFile(path, w); err != nil {
		t.Fatal(err)
	}
	got, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Task("t2").Inputs[0].SizeMB != 3 {
		t.Fatalf("file round trip mismatch: %+v", got)
	}
	if _, err := ParseFile(filepath.Join(dir, "missing.dax")); err == nil {
		t.Error("missing file should error")
	}
}
