// Package dax reads and writes Pegasus DAX workflow descriptions (the XML
// format in Figure 4 of the paper). A DAX document lists <job> elements —
// each with an executable name and <uses> file declarations (link="input" or
// "output") — and <child>/<parent> elements declaring dependencies.
//
// Deco's import(daxfile) construct is backed by this package: parsing a DAX
// yields the workflow-related facts (task/1, edge/2, file sizes) that WLog
// programs consume.
package dax

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"deco/internal/dag"
)

// adag mirrors the <adag> root element of a DAX document.
type adag struct {
	XMLName xml.Name   `xml:"adag"`
	Name    string     `xml:"name,attr"`
	Jobs    []job      `xml:"job"`
	Childs  []childDep `xml:"child"`
}

type job struct {
	ID      string  `xml:"id,attr"`
	Name    string  `xml:"name,attr"` // executable, e.g. "process1"
	Runtime string  `xml:"runtime,attr"`
	Uses    []usage `xml:"uses"`
}

type usage struct {
	File string `xml:"file,attr"`
	Link string `xml:"link,attr"` // "input" or "output"
	Size string `xml:"size,attr"` // bytes (Pegasus convention)
}

type childDep struct {
	Ref     string      `xml:"ref,attr"`
	Parents []parentRef `xml:"parent"`
}

type parentRef struct {
	Ref string `xml:"ref,attr"`
}

// Parse decodes a DAX document into a Workflow. File sizes in the DAX are in
// bytes and are converted to MB; job runtimes are reference CPU seconds.
func Parse(r io.Reader) (*dag.Workflow, error) {
	var doc adag
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("dax: %w", err)
	}
	name := doc.Name
	if name == "" {
		name = "workflow"
	}
	w := dag.New(name)
	producers := map[string]string{} // file name -> producing task
	for _, j := range doc.Jobs {
		t := &dag.Task{ID: j.ID, Executable: j.Name}
		if j.Runtime != "" {
			rt, err := strconv.ParseFloat(j.Runtime, 64)
			if err != nil {
				return nil, fmt.Errorf("dax: job %s: bad runtime %q: %w", j.ID, j.Runtime, err)
			}
			if rt < 0 {
				return nil, fmt.Errorf("dax: job %s: negative runtime %v", j.ID, rt)
			}
			t.CPUSeconds = rt
		}
		for _, u := range j.Uses {
			sizeMB := 0.0
			if u.Size != "" {
				b, err := strconv.ParseFloat(u.Size, 64)
				if err != nil {
					return nil, fmt.Errorf("dax: job %s: bad size %q: %w", j.ID, u.Size, err)
				}
				sizeMB = b / (1 << 20)
			}
			f := dag.File{Name: u.File, SizeMB: sizeMB}
			switch u.Link {
			case "input":
				t.Inputs = append(t.Inputs, f)
			case "output":
				t.Outputs = append(t.Outputs, f)
				producers[u.File] = j.ID
			default:
				return nil, fmt.Errorf("dax: job %s: unknown link %q for file %q", j.ID, u.Link, u.File)
			}
		}
		if err := w.AddTask(t); err != nil {
			return nil, err
		}
	}
	// Explicit child/parent dependencies.
	for _, c := range doc.Childs {
		for _, p := range c.Parents {
			if err := w.AddEdge(p.Ref, c.Ref); err != nil {
				return nil, err
			}
		}
	}
	// Implicit data dependencies: a task consuming a file another produces.
	for _, t := range w.Tasks {
		for _, f := range t.Inputs {
			if p, ok := producers[f.Name]; ok && p != t.ID {
				if err := w.AddEdge(p, t.ID); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// ParseFile parses the DAX document at path.
func ParseFile(path string) (*dag.Workflow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Write encodes a workflow as a DAX document.
func Write(wr io.Writer, w *dag.Workflow) error {
	doc := adag{Name: w.Name}
	for _, t := range w.Tasks {
		j := job{ID: t.ID, Name: t.Executable, Runtime: strconv.FormatFloat(t.CPUSeconds, 'g', -1, 64)}
		for _, f := range t.Inputs {
			j.Uses = append(j.Uses, usage{File: f.Name, Link: "input", Size: strconv.FormatFloat(f.SizeMB*(1<<20), 'f', 0, 64)})
		}
		for _, f := range t.Outputs {
			j.Uses = append(j.Uses, usage{File: f.Name, Link: "output", Size: strconv.FormatFloat(f.SizeMB*(1<<20), 'f', 0, 64)})
		}
		doc.Jobs = append(doc.Jobs, j)
	}
	// Group edges by child, deterministically.
	byChild := map[string][]string{}
	for _, e := range w.Edges() {
		byChild[e[1]] = append(byChild[e[1]], e[0])
	}
	var childIDs []string
	for c := range byChild {
		childIDs = append(childIDs, c)
	}
	sort.Strings(childIDs)
	for _, c := range childIDs {
		cd := childDep{Ref: c}
		sort.Strings(byChild[c])
		for _, p := range byChild[c] {
			cd.Parents = append(cd.Parents, parentRef{Ref: p})
		}
		doc.Childs = append(doc.Childs, cd)
	}
	if _, err := io.WriteString(wr, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(wr)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("dax: %w", err)
	}
	return enc.Close()
}

// WriteFile writes the workflow as a DAX document at path.
func WriteFile(path string, w *dag.Workflow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, w); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
