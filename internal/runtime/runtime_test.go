package runtime

import (
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"deco/internal/cloud"
	"deco/internal/dag"
	"deco/internal/estimate"
	"deco/internal/sim"
	"deco/internal/wfgen"
	"deco/internal/wlog"
)

// scenario is the drift test-bed: a chain workflow planned on the cheapest
// type against calibrated forecasts, with a deadline the calibrated plan
// meets comfortably and a perturbable ground-truth catalog for execution.
type scenario struct {
	w        *dag.Workflow
	cat      *cloud.Catalog // calibration ground truth
	tbl      *estimate.Table
	prices   []float64
	plan     *sim.Plan
	deadline float64
	cons     []wlog.Constraint
}

func newScenario(t *testing.T) *scenario {
	t.Helper()
	cat := cloud.DefaultCatalog()
	meta, err := cloud.MetadataFromTruth(cat, 20, 400, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	est := estimate.New(cat, meta)
	w, err := wfgen.Pipeline(6, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := est.BuildTable(w)
	if err != nil {
		t.Fatal(err)
	}
	names := cat.TypeNames()
	prices := make([]float64, len(names))
	for j, n := range names {
		if prices[j], err = cat.Price(cloud.USEast, n); err != nil {
			t.Fatal(err)
		}
	}
	// Cheapest-type chain: the cost-minimal plan when the deadline leaves
	// this much slack.
	small := 0
	for j, n := range names {
		if n == "m1.small" {
			small = j
		}
	}
	mean := 0.0
	for _, tk := range w.Tasks {
		td, err := tbl.Dist(tk.ID, small)
		if err != nil {
			t.Fatal(err)
		}
		mean += td.Mean()
	}
	s := &scenario{
		w: w, cat: cat, tbl: tbl, prices: prices,
		plan:     sim.UniformPlan(w, "m1.small", cloud.USEast),
		deadline: 1.25 * mean,
	}
	s.cons = []wlog.Constraint{{Kind: "deadline", Percentile: 0.95, Bound: s.deadline}}
	return s
}

func (s *scenario) execCat(t *testing.T, factor float64) *cloud.Catalog {
	t.Helper()
	if factor == 1 {
		return s.cat
	}
	c, err := cloud.ScalePerf(s.cat, factor)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runOnce executes the scenario once. A nil monitor is an open-loop run.
func (s *scenario) runOnce(t *testing.T, factor float64, seed int64, o *Options) (*sim.Result, *Report) {
	t.Helper()
	sm, err := sim.New(sim.DefaultOptions(s.execCat(t, factor), rand.New(rand.NewSource(seed))))
	if err != nil {
		t.Fatal(err)
	}
	if o == nil {
		res, err := sm.Run(context.Background(), s.w, s.plan)
		if err != nil {
			t.Fatal(err)
		}
		return res, nil
	}
	mon, err := NewMonitor(s.w, s.plan, s.tbl, s.prices, cloud.USEast, s.cons, *o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sm.RunControlled(context.Background(), s.w, s.plan, mon)
	if err != nil {
		t.Fatal(err)
	}
	if mon.Err() != nil {
		t.Fatalf("monitor error: %v", mon.Err())
	}
	mon.Finish(res)
	return res, mon.Report()
}

// TestAdaptiveRecoversDeadlineUnderDrift is the acceptance scenario: the
// simulator's ground truth degrades to half the calibrated performance;
// open-loop execution of the calibrated plan misses the deadline, the
// monitored execution detects the drift, replans, and meets it — measured
// over 20 seeded runs.
func TestAdaptiveRecoversDeadlineUnderDrift(t *testing.T) {
	s := newScenario(t)
	const runs = 20
	const factor = 0.5
	openMiss, adaptMiss, replans := 0, 0, 0
	for i := 0; i < runs; i++ {
		seed := int64(100 + i)
		open, _ := s.runOnce(t, factor, seed, nil)
		if open.Makespan > s.deadline {
			openMiss++
		}
		o := &Options{Seed: seed, Iters: 150, ReplanBudget: 200}
		adapt, rep := s.runOnce(t, factor, seed, o)
		if adapt.Makespan > s.deadline {
			adaptMiss++
		}
		replans += rep.Replans
		if rep.Drift < 1.3 {
			t.Errorf("seed %d: learned drift %.2f, want > 1.3 under half-speed truth", seed, rep.Drift)
		}
	}
	if openMiss < runs*3/4 {
		t.Fatalf("scenario too weak: open-loop missed the deadline only %d/%d times", openMiss, runs)
	}
	if replans == 0 {
		t.Fatalf("no replans fired over %d drifted runs", runs)
	}
	if adaptMiss*2 >= openMiss {
		t.Fatalf("adaptation did not measurably reduce violations: open-loop %d/%d misses, adaptive %d/%d",
			openMiss, runs, adaptMiss, runs)
	}
	t.Logf("deadline %.0fs: open-loop missed %d/%d, adaptive missed %d/%d (%d replans)",
		s.deadline, openMiss, runs, adaptMiss, runs, replans)
}

// TestNoDriftNoSpuriousReplans: when execution matches calibration, the
// monitor must stay quiet — zero replans across seeds.
func TestNoDriftNoSpuriousReplans(t *testing.T) {
	s := newScenario(t)
	for i := 0; i < 10; i++ {
		seed := int64(500 + i)
		o := &Options{Seed: seed, Iters: 150, ReplanBudget: 200}
		res, rep := s.runOnce(t, 1, seed, o)
		if rep.Replans != 0 {
			t.Fatalf("seed %d: %d spurious replans without drift (risk max %.3f)", seed, rep.Replans, rep.RiskMax)
		}
		if res.Makespan > s.deadline {
			t.Errorf("seed %d: calibrated run missed its own deadline (%.1f > %.1f)", seed, res.Makespan, s.deadline)
		}
	}
}

// TestAdaptiveRunsAreDeterministic: the same seed must reproduce the exact
// event log and the exact final plan — monitoring decisions, replan
// searches, and the simulator all derive from explicit substreams.
func TestAdaptiveRunsAreDeterministic(t *testing.T) {
	s := newScenario(t)
	type outcome struct {
		events []byte
		cfg    map[string]string
		place  map[string]sim.Placement
		ms     float64
	}
	run := func() outcome {
		o := &Options{Seed: 42, Iters: 150, ReplanBudget: 200}
		res, rep := s.runOnce(t, 0.5, 42, o)
		ev, err := json.Marshal(rep.Events)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{events: ev, cfg: rep.FinalConfig, place: res.Plan.Place, ms: res.Makespan}
	}
	a, b := run(), run()
	if string(a.events) != string(b.events) {
		t.Fatalf("event logs differ between identical seeded runs:\n%s\n---\n%s", a.events, b.events)
	}
	if !reflect.DeepEqual(a.cfg, b.cfg) {
		t.Fatalf("final configs differ: %v vs %v", a.cfg, b.cfg)
	}
	if !reflect.DeepEqual(a.place, b.place) {
		t.Fatalf("final plans differ: %v vs %v", a.place, b.place)
	}
	if a.ms != b.ms {
		t.Fatalf("makespans differ: %v vs %v", a.ms, b.ms)
	}
	// The run must actually have adapted, or the test proves nothing.
	var evs []StreamEvent
	if err := json.Unmarshal(a.events, &evs); err != nil {
		t.Fatal(err)
	}
	sawReplan := false
	for _, e := range evs {
		if e.Kind == "replan" {
			sawReplan = true
		}
	}
	if !sawReplan {
		t.Fatal("determinism scenario produced no replan; tighten it")
	}
}

// TestMonitorAdaptiveRiskMatchesFixed pins the monitor-side sequential
// stopping contract: chunked risk evaluation may stop early only when the
// replan predicate is already certain, so the replan decisions — and with
// them the final plan and makespan — must be identical to the fixed path,
// while the adaptive run provably spends fewer Monte-Carlo worlds. This is
// also the race smoke for the chunked risk path (run with -race).
func TestMonitorAdaptiveRiskMatchesFixed(t *testing.T) {
	s := newScenario(t)
	const factor = 0.5
	sawSavings := false
	for i := 0; i < 3; i++ {
		seed := int64(100 + i)
		of := &Options{Seed: seed, Iters: 150, ReplanBudget: 200}
		resF, repF := s.runOnce(t, factor, seed, of)
		oa := &Options{Seed: seed, Iters: 150, ReplanBudget: 200, Adaptive: true}
		resA, repA := s.runOnce(t, factor, seed, oa)

		if resA.Makespan != resF.Makespan {
			t.Fatalf("seed %d: adaptive makespan %v != fixed %v", seed, resA.Makespan, resF.Makespan)
		}
		if !reflect.DeepEqual(resA.Plan.Place, resF.Plan.Place) {
			t.Fatalf("seed %d: final plans differ:\n%v\n---\n%v", seed, resA.Plan.Place, resF.Plan.Place)
		}
		if !reflect.DeepEqual(repA.FinalConfig, repF.FinalConfig) {
			t.Fatalf("seed %d: final configs differ: %v vs %v", seed, repA.FinalConfig, repF.FinalConfig)
		}
		if repA.Replans != repF.Replans {
			t.Fatalf("seed %d: adaptive made %d replans, fixed %d", seed, repA.Replans, repF.Replans)
		}
		// The replan decision stream must match event for event. Risk events
		// may report pessimistic bounds under early stops, so only the
		// decisions (and their triggering risk, which always completes its
		// full budget) are compared.
		replansOf := func(rep *Report) []StreamEvent {
			var out []StreamEvent
			for _, e := range rep.Events {
				if e.Kind == "replan" {
					out = append(out, e)
				}
			}
			return out
		}
		ra, rf := replansOf(repA), replansOf(repF)
		if !reflect.DeepEqual(ra, rf) {
			t.Fatalf("seed %d: replan events differ:\n%+v\n---\n%+v", seed, ra, rf)
		}

		if repF.RiskWorldsRun != repF.RiskWorldsBudget {
			t.Fatalf("seed %d: fixed path must run its full budget: %d of %d",
				seed, repF.RiskWorldsRun, repF.RiskWorldsBudget)
		}
		if repA.RiskWorldsBudget != repF.RiskWorldsBudget {
			t.Fatalf("seed %d: budgets differ: adaptive %d fixed %d",
				seed, repA.RiskWorldsBudget, repF.RiskWorldsBudget)
		}
		if repA.RiskWorldsRun > repA.RiskWorldsBudget {
			t.Fatalf("seed %d: adaptive ran more worlds than its budget: %d of %d",
				seed, repA.RiskWorldsRun, repA.RiskWorldsBudget)
		}
		if repA.RiskWorldsRun < repA.RiskWorldsBudget {
			sawSavings = true
		}
	}
	if !sawSavings {
		t.Fatal("adaptive risk evaluation never stopped early across seeds; scenario too weak")
	}
}
