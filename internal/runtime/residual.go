package runtime

import (
	"fmt"
	"math/rand"

	"deco/internal/device"
	"deco/internal/estimate"
	"deco/internal/probir"
	"deco/internal/sample"
	"deco/internal/wlog"
)

// Task execution states as the monitor sees them.
const (
	stUnstarted = iota
	stRunning
	stFinished
)

// residual is the monitor's snapshot of execution progress, shared by every
// kernel a risk evaluation or replan search builds: the remaining DAG
// conditioned on what already happened. It is mutated only between
// evaluations (the monitor runs on the simulator's goroutine), so kernels
// may sample it concurrently. Finished tasks contribute their
// observed finish times, running tasks their observed starts plus a
// duration conditioned on having survived `elapsed` seconds, unstarted
// tasks a full sampled duration starting no earlier than now. All sampled
// durations are inflated by the learned drift factor.
type residual struct {
	ids     []string
	order   []int   // topo order, indices into ids
	parents [][]int // parent indices per task
	state   []int
	startAt []float64 // running tasks: observed start
	elapsed []float64 // running tasks: now - startAt
	finish  []float64 // finished tasks: observed finish
	now     float64
	accrued float64 // committed cost so far
	drift   float64 // realized/forecast duration ratio, ≥ small positive
	tbl     *estimate.Table
	prices  []float64 // per type index, hourly
	cons    []wlog.Constraint
	iters   int
}

// condSample draws a duration conditioned on the task having already run
// for `elapsed` seconds: rejection-sample the calibrated distribution above
// the elapsed time, falling back to a memoryless restart (elapsed + mean)
// when the observation has outlived the distribution's support.
func condSample(td *estimate.TimeDist, drift, elapsed float64, rng *rand.Rand) float64 {
	if elapsed <= 0 {
		return td.Sample(rng) * drift
	}
	for try := 0; try < 8; try++ {
		if d := td.Sample(rng) * drift; d > elapsed {
			return d
		}
	}
	return elapsed + td.Mean()*drift
}

// residualKernel is the probir world kernel of one candidate configuration
// over the remaining DAG. Figure layout mirrors probir's native kernel: a
// sampled makespan (when a deadline needs it), a sampled total cost (when a
// probabilistic budget needs it), then one satisfaction indicator per
// probabilistic constraint.
type residualKernel struct {
	r      *residual
	dists  []*estimate.TimeDist // per task, for this config
	prices []float64            // per task, hourly
	mean   float64              // deterministic residual cost: accrued + unstarted means

	width    int
	msIdx    int
	costIdx  int
	indIdx   []int
	needMS   bool
	needCost bool
}

// buildKernel resolves config's per-task distributions and figure layout.
func (r *residual) buildKernel(config []int) (*residualKernel, error) {
	if len(config) != len(r.ids) {
		return nil, fmt.Errorf("runtime: config length %d, want %d", len(config), len(r.ids))
	}
	k := &residualKernel{r: r, msIdx: -1, costIdx: -1,
		dists:  make([]*estimate.TimeDist, len(config)),
		prices: make([]float64, len(config)),
	}
	k.mean = r.accrued
	for i, j := range config {
		td, err := r.tbl.Dist(r.ids[i], j)
		if err != nil {
			return nil, err
		}
		k.dists[i] = td
		k.prices[i] = r.prices[j]
		if r.state[i] == stUnstarted {
			k.mean += td.Mean() * r.drift / 3600 * k.prices[i]
		}
	}
	for _, c := range r.cons {
		if c.Kind == "deadline" {
			k.needMS = true
		}
		if c.Kind == "budget" && c.Percentile >= 0 {
			k.needCost = true
		}
	}
	if k.needMS {
		k.msIdx = k.width
		k.width++
	}
	if k.needCost {
		k.costIdx = k.width
		k.width++
	}
	k.indIdx = make([]int, len(r.cons))
	for ci, c := range r.cons {
		k.indIdx[ci] = -1
		if c.Percentile >= 0 {
			k.indIdx[ci] = k.width
			k.width++
		}
	}
	return k, nil
}

// Worlds implements probir.WorldKernel.
func (k *residualKernel) Worlds() int {
	if !k.needMS && !k.needCost {
		return 0
	}
	return k.r.iters
}

// Width implements probir.WorldKernel.
func (k *residualKernel) Width() int { return k.width }

// Sample implements probir.WorldKernel: one realization of the remaining
// DAG. Observed finishes are facts; running tasks sample a conditioned
// residual; unstarted tasks sample a full (drift-inflated) duration
// starting at max(now, parents' finish).
func (k *residualKernel) Sample(it int, rng *rand.Rand, out []float64) error {
	r := k.r
	finish := make([]float64, len(r.ids))
	var ms float64
	cost := r.accrued
	for _, ti := range r.order {
		var f float64
		switch r.state[ti] {
		case stFinished:
			f = r.finish[ti]
		case stRunning:
			f = r.startAt[ti] + condSample(k.dists[ti], r.drift, r.elapsed[ti], rng)
		default:
			s := r.now
			for _, p := range r.parents[ti] {
				if finish[p] > s {
					s = finish[p]
				}
			}
			d := k.dists[ti].Sample(rng) * r.drift
			f = s + d
			if k.needCost {
				cost += d / 3600 * k.prices[ti]
			}
		}
		finish[ti] = f
		if f > ms {
			ms = f
		}
	}
	if k.needMS {
		out[k.msIdx] = ms
	}
	if k.needCost {
		out[k.costIdx] = cost
	}
	for ci, c := range r.cons {
		fi := k.indIdx[ci]
		if fi < 0 {
			continue
		}
		switch c.Kind {
		case "deadline":
			if ms <= c.Bound {
				out[fi] = 1
			}
		case "budget":
			if cost <= c.Bound {
				out[fi] = 1
			}
		}
	}
	return nil
}

// Reduce implements probir.WorldKernel with the same constraint semantics
// as the solver's native kernel, so replan search results rank exactly like
// initial-planning results.
func (k *residualKernel) Reduce(sums []float64) (*probir.Evaluation, error) {
	r := k.r
	iters := float64(k.r.iters)
	ev := &probir.Evaluation{Value: k.mean, Feasible: true, ConsProb: make([]float64, len(r.cons))}
	for ci, c := range r.cons {
		var prob, mean float64
		switch c.Kind {
		case "deadline":
			mean = sums[k.msIdx] / iters
			if c.Percentile < 0 {
				if mean <= c.Bound {
					prob = 1
				}
			} else {
				prob = sums[k.indIdx[ci]] / iters
			}
		case "budget":
			if c.Percentile < 0 {
				mean = k.mean
				if mean <= c.Bound {
					prob = 1
				}
			} else {
				mean = sums[k.costIdx] / iters
				prob = sums[k.indIdx[ci]] / iters
			}
		default:
			return nil, fmt.Errorf("runtime: unknown constraint kind %q", c.Kind)
		}
		ev.ConsProb[ci] = prob
		if c.Percentile < 0 {
			if prob < 1 {
				ev.Feasible = false
				if c.Bound > 0 {
					ev.Violation += (mean - c.Bound) / c.Bound
				} else {
					ev.Violation += mean
				}
			}
		} else if prob < c.Percentile {
			ev.Feasible = false
			ev.Violation += c.Percentile - prob
			if mean > c.Bound && c.Bound > 0 {
				ev.Violation += (mean - c.Bound) / c.Bound
			}
		}
	}
	return ev, nil
}

// violationProb extracts the monitor's risk measure from an evaluation: the
// highest per-constraint probability of violating the bound itself (1 -
// P(X ≤ Bound)); for deterministic (mean-based) constraints it is 0 or 1.
func violationProb(ev *probir.Evaluation) float64 {
	risk := 0.0
	for _, p := range ev.ConsProb {
		if v := 1 - p; v > risk {
			risk = v
		}
	}
	return risk
}

// riskMinWorlds is the first chunk of a chunked risk re-evaluation — the
// minimum worlds sampled before any stop decision, mirroring the solver's
// adaptive default.
const riskMinWorlds = 16

// chunkable reports whether the kernel's replan predicate can be decided
// from a world prefix: every sampled constraint carries a satisfaction
// indicator, and no mean-based deadline is present (its verdict needs the
// full makespan sum; a mean-based budget is known exactly before any world
// runs, from the deterministic mean cost).
func (k *residualKernel) chunkable() bool {
	hasInd := false
	for ci, c := range k.r.cons {
		if k.indIdx[ci] >= 0 {
			hasInd = true
			continue
		}
		if c.Kind == "deadline" {
			return false
		}
	}
	return hasInd
}

// chunkedRisk runs the kernel's worlds in chunks with the exact worst-case
// stopping rule of package sample, deciding the monitor's replan predicate
// ("violation risk > threshold") from a world prefix when it is certain:
//
//   - Certainly no replan — every indicator's worst-case lower probability
//     bound already clears 1-threshold — stops immediately and returns the
//     pessimistic risk bound (≤ threshold) with a nil evaluation.
//   - Certainly replan: if the caller can act on it (needFull), the
//     remaining worlds run so the returned evaluation is complete (the
//     replan search compares candidate plans against it, and the emitted
//     risk is exact); otherwise the evaluation stops with the bound.
//
// The chunk schedule includes the tail checkpoints of the no-replan target,
// so a healthy execution confirms "risk ≤ threshold" as soon as enough
// worlds have succeeded instead of always running the full budget. Either
// way the decision is identical to the fixed path's: stops happen only on
// certain verdicts. A returned non-nil evaluation ran every world and is
// bit-identical to evalKernel's (chunked folds accumulate in ascending world
// order).
func chunkedRisk(k *residualKernel, base int64, bd device.BlockDevice, threshold float64, needFull bool) (*probir.Evaluation, float64, int, error) {
	worlds, width := k.Worlds(), k.Width()
	// A mean-based budget's verdict is known before any world runs.
	detViolated := false
	for ci, c := range k.r.cons {
		if k.indIdx[ci] < 0 && k.mean > c.Bound {
			detViolated = true
		}
	}
	sums := make([]float64, width)
	kernel := func(_, t int, out []float64) error {
		return k.Sample(t, probir.WorldRNG(base, t), out)
	}
	ends := sample.TailChunks(riskMinWorlds, worlds, []float64{1 - threshold})
	lo := 0
	for _, end := range ends {
		if _, errs := device.ReduceBlocksRange(bd, 1, lo, end, width, sums, kernel); errs[0] != nil {
			return nil, 0, lo, errs[0]
		}
		lo = end
		if end == worlds {
			break
		}
		// Worst-case bounds per indicator over the fixed world set: the
		// final satisfaction probability of constraint ci lies in
		// [Succ/N, (Succ+N-Seen)/N] no matter how the unseen worlds come out.
		replanCertain := detViolated
		noReplanCertain := !detViolated
		riskHi := 0.0
		if detViolated {
			riskHi = 1
		}
		for ci := range k.r.cons {
			fi := k.indIdx[ci]
			if fi < 0 {
				continue
			}
			blo, bhi := sample.Bernoulli{Succ: sums[fi], Seen: end}.Range(worlds)
			if bhi < 1-threshold {
				replanCertain = true
			}
			if blo < 1-threshold {
				noReplanCertain = false
			}
			if r := 1 - blo; r > riskHi {
				riskHi = r
			}
		}
		if noReplanCertain || (replanCertain && !needFull) {
			return nil, riskHi, end, nil
		}
		if replanCertain {
			// The replan search needs the complete evaluation; finish the
			// remaining worlds in one sweep.
			if _, errs := device.ReduceBlocksRange(bd, 1, end, worlds, width, sums, kernel); errs[0] != nil {
				return nil, 0, end, errs[0]
			}
			lo = worlds
			break
		}
	}
	ev, err := k.Reduce(sums)
	if err != nil {
		return nil, 0, lo, err
	}
	return ev, violationProb(ev), lo, nil
}

// evalKernel runs a kernel's worlds on the device (one block, a thread per
// world) and reduces them — bit-identical to probir.RunKernel on any
// device, because ReduceBlocks folds thread slots in canonical order.
func evalKernel(k probir.WorldKernel, base int64, dev device.Device) (*probir.Evaluation, error) {
	bd, ok := dev.(device.BlockDevice)
	if !ok || k.Worlds() == 0 {
		return probir.RunKernel(k, base)
	}
	sums, errs := device.ReduceBlocks(bd, 1, k.Worlds(), k.Width(), func(_, t int, out []float64) error {
		return k.Sample(t, probir.WorldRNG(base, t), out)
	})
	if errs[0] != nil {
		return nil, errs[0]
	}
	return k.Reduce(sums)
}
