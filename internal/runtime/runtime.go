// Package runtime closes the loop between plan and execution. The solver's
// probabilistic guarantee — P(makespan ≤ D) ≥ p under the calibrated
// histograms — is only as good as the calibration: once I/O or network
// performance drifts from what was measured, an open-loop execution silently
// loses the guarantee. This package provides the event-driven execution
// monitor and adaptive replanner the production WMS literature calls for:
// a Monitor consumes the simulator's typed execution events, conditions the
// calibrated per-task forecasts on observed progress (elapsed running time
// and a drift factor learned from realized durations), re-evaluates the
// violation probability of the *remaining* DAG with the probir Monte-Carlo
// kernel on an internal/device, and — when that probability crosses a
// configurable risk threshold — triggers an incremental replan: a
// warm-started opt search over the unfinished tasks only, with spent cost
// and elapsed time folded into the constraints. Accepted replans are applied
// to the running execution through the simulator's Controller revision hook.
package runtime

import (
	"context"

	"deco/internal/device"
	"deco/internal/opt"
	"deco/internal/probir"
)

// Options configures the monitor and replanner.
type Options struct {
	// Risk is the violation-probability threshold: when the monitor's
	// estimate of P(deadline or budget violated) for the remaining DAG
	// exceeds it, a replan triggers (default 0.1).
	Risk float64
	// Iters is the Monte-Carlo worlds per risk evaluation and per replan
	// state evaluation (default 200).
	Iters int
	// ReplanBudget bounds state evaluations per incremental replan
	// (default 400).
	ReplanBudget int
	// MaxReplans bounds replans per run (default 3; negative disables
	// replanning — the monitor still observes and streams events).
	MaxReplans int
	// Cooldown is how many task completions must be observed after a replan
	// before the next may fire (default 1).
	Cooldown int
	// Seed makes monitoring decisions reproducible: risk evaluations and
	// replan searches derive per-decision rng substreams from it.
	Seed int64
	// Adaptive enables chunked risk re-evaluation with sequential stopping:
	// the monitor decides its replan predicate (risk > Risk) from a world
	// prefix when the exact worst-case interval settles it, instead of always
	// running every world. Replan decisions are identical to the fixed path —
	// an early stop happens only when the verdict is certain, and a
	// replan-triggering evaluation always completes its full budget (the
	// replan search compares candidates against it) — but early-stopped risk
	// events report a pessimistic upper bound rather than the exact
	// probability. Requires a BlockDevice and indicator-backed constraints;
	// silently inert otherwise (see Report.RiskWorldsRun).
	Adaptive bool
	// Device runs Monte-Carlo worlds (default device.Parallel{}).
	Device device.Device
	// Ctx cancels replan searches; nil means context.Background().
	Ctx context.Context
	// Sink, when set, receives every StreamEvent as it is appended to the
	// monitor's log (the decod NDJSON stream hangs off this).
	Sink func(StreamEvent)
	// Cache, when set, is the shared evaluation cache replan searches
	// consult (see opt.EvalCache); replans fingerprint their residual
	// snapshot, so entries from distinct snapshots never collide.
	Cache *opt.EvalCache
}

func (o *Options) fillDefaults() {
	if o.Risk <= 0 {
		o.Risk = 0.1
	}
	if o.Iters <= 0 {
		o.Iters = 200
	}
	if o.ReplanBudget <= 0 {
		o.ReplanBudget = 400
	}
	if o.MaxReplans == 0 {
		o.MaxReplans = 3
	} else if o.MaxReplans < 0 {
		o.MaxReplans = 0
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 1
	}
	if o.Device == nil {
		o.Device = device.Parallel{}
	}
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
}

// ReplanEvent details one accepted replan.
type ReplanEvent struct {
	// Changed is how many unstarted tasks moved to a different type.
	Changed int `json:"changed"`
	// RiskBefore is the violation probability that triggered the replan.
	RiskBefore float64 `json:"risk_before"`
	// Assignments maps the changed tasks to their new instance type.
	Assignments map[string]string `json:"assignments,omitempty"`
}

// StreamEvent is one entry of the monitor's event log — what decod streams
// as NDJSON from /v1/runs/{id}/events. Kinds: instance_acquired,
// task_start, task_finish, instance_revoked, risk, replan, done.
type StreamEvent struct {
	Seq  int     `json:"seq"`
	Time float64 `json:"t"`
	Kind string  `json:"kind"`
	Task string  `json:"task,omitempty"`
	Slot int     `json:"slot,omitempty"`
	Type string  `json:"type,omitempty"`
	// Duration is the realized execution time (task_finish).
	Duration float64 `json:"duration,omitempty"`
	// Forecast is the calibrated mean duration for the type the task ran on
	// (task_finish) — the drift signal in the raw.
	Forecast float64 `json:"forecast,omitempty"`
	// AccruedCost is the cost committed so far (task_finish).
	AccruedCost float64 `json:"accrued_cost,omitempty"`
	// Risk is the estimated violation probability of the remaining DAG
	// (risk, replan).
	Risk float64 `json:"risk,omitempty"`
	// Drift is the learned realized/forecast duration ratio (risk).
	Drift float64 `json:"drift,omitempty"`
	// Replan details an accepted replan (replan).
	Replan *ReplanEvent `json:"replan,omitempty"`
	// Makespan/TotalCost/DeadlineMet summarize the finished run (done).
	Makespan    float64 `json:"makespan,omitempty"`
	TotalCost   float64 `json:"total_cost,omitempty"`
	DeadlineMet *bool   `json:"deadline_met,omitempty"`
}

// Report summarizes a monitored execution.
type Report struct {
	Replans int `json:"replans"`
	// Revocations counts spot instances the market reclaimed during the run;
	// Recoveries counts the forced replans that moved the orphaned sub-DAG
	// onto on-demand capacity in response (they do not count against
	// MaxReplans).
	Revocations int `json:"revocations,omitempty"`
	Recoveries  int `json:"recoveries,omitempty"`
	// RiskMax is the highest violation probability observed.
	RiskMax float64 `json:"risk_max"`
	// Drift is the final realized/forecast duration ratio.
	Drift float64 `json:"drift"`
	// FinalConfig maps every task to the instance type it ran (or was last
	// planned to run) on.
	FinalConfig map[string]string `json:"final_config"`
	// Events is the full monitor log.
	Events []StreamEvent `json:"events"`
	// RiskWorldsRun / RiskWorldsBudget are the Monte-Carlo worlds the
	// monitor's risk re-evaluations actually sampled vs the fixed budget
	// (decisions × Iters). They differ only under Options.Adaptive.
	RiskWorldsRun    int64 `json:"risk_worlds_run,omitempty"`
	RiskWorldsBudget int64 `json:"risk_worlds_budget,omitempty"`

	Makespan        float64 `json:"makespan,omitempty"`
	TotalCost       float64 `json:"total_cost,omitempty"`
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
	DeadlineMet     *bool   `json:"deadline_met,omitempty"`
	// Error reports a monitoring failure (the run continued open-loop).
	Error string `json:"error,omitempty"`
}

// mixSeed derives decision d's rng substream from the monitor seed
// (splitmix64 finalizer, like probir's world substreams).
func mixSeed(seed int64, d int) int64 {
	z := uint64(seed) + uint64(d+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// scoreEval ranks evaluations the way the solver does: any feasible state
// beats any infeasible one; feasible states rank by objective value,
// infeasible ones by violation.
func scoreEval(ev *probir.Evaluation) float64 {
	if ev.Feasible {
		return ev.Value
	}
	return 1e15 * (1 + ev.Violation)
}
