package runtime

import (
	"fmt"

	"deco/internal/cloud"
	"deco/internal/dag"
	"deco/internal/device"
	"deco/internal/estimate"
	"deco/internal/probir"
	"deco/internal/sim"
	"deco/internal/wlog"
)

// Monitor is a sim.Controller that watches an execution and adapts it. It
// keeps a progress snapshot (observed starts, finishes, committed cost, a
// learned drift factor), re-estimates the violation probability of the
// remaining DAG after every task completion, and replans when the risk
// crosses Options.Risk. All methods are called from the simulator's
// goroutine; Report may be called after the run completes.
type Monitor struct {
	opt    Options
	w      *dag.Workflow
	tbl    *estimate.Table
	prices []float64
	region string
	cons   []wlog.Constraint
	index  map[string]int

	config   []int // current type index per task, w.Tasks order
	plan     map[string]sim.Placement
	nextSlot int

	res *residual

	sumObs, sumForecast float64
	decisions           int
	sinceReplan         int
	replans             int
	revocations         int
	recoveries          int
	revokedSlots        []int // slots reclaimed since the last Revise
	riskMax             float64
	riskWorldsRun       int64
	riskWorldsBudget    int64
	events              []StreamEvent
	err                 error
	done                bool
	final               *StreamEvent
}

// NewMonitor builds a monitor for executing plan on w. tbl holds the
// calibrated per-task forecasts the plan was made with, prices the hourly
// price per type index (tbl.Types order), and cons the plan's probabilistic
// constraints (absolute bounds: wall-clock deadline seconds, total budget
// dollars).
func NewMonitor(w *dag.Workflow, plan *sim.Plan, tbl *estimate.Table, prices []float64, region string, cons []wlog.Constraint, o Options) (*Monitor, error) {
	o.fillDefaults()
	if len(prices) != len(tbl.Types) {
		return nil, fmt.Errorf("runtime: %d prices for %d types", len(prices), len(tbl.Types))
	}
	typeIdx := make(map[string]int, len(tbl.Types))
	for j, name := range tbl.Types {
		typeIdx[name] = j
	}
	n := w.Len()
	m := &Monitor{
		opt: o, w: w, tbl: tbl, prices: prices, region: region, cons: cons,
		index:       make(map[string]int, n),
		config:      make([]int, n),
		plan:        make(map[string]sim.Placement, n),
		sinceReplan: o.Cooldown,
	}
	for i, t := range w.Tasks {
		m.index[t.ID] = i
		pl, ok := plan.Place[t.ID]
		if !ok {
			return nil, fmt.Errorf("runtime: plan missing task %q", t.ID)
		}
		j, ok := typeIdx[pl.Type]
		if !ok {
			return nil, fmt.Errorf("runtime: plan type %q not in calibrated table", pl.Type)
		}
		m.config[i] = j
		m.plan[t.ID] = pl
		if pl.Slot >= m.nextSlot {
			m.nextSlot = pl.Slot + 1
		}
	}
	ids, err := w.TopoOrder()
	if err != nil {
		return nil, err
	}
	r := &residual{
		ids:     make([]string, n),
		order:   make([]int, n),
		parents: make([][]int, n),
		state:   make([]int, n),
		startAt: make([]float64, n),
		elapsed: make([]float64, n),
		finish:  make([]float64, n),
		drift:   1,
		tbl:     tbl,
		prices:  prices,
		cons:    cons,
		iters:   o.Iters,
	}
	for i, t := range w.Tasks {
		r.ids[i] = t.ID
		for _, p := range w.Parents(t.ID) {
			r.parents[i] = append(r.parents[i], m.index[p])
		}
	}
	for k, id := range ids {
		r.order[k] = m.index[id]
	}
	m.res = r
	return m, nil
}

// emit appends an event to the log and forwards it to the sink.
func (m *Monitor) emit(ev StreamEvent) {
	ev.Seq = len(m.events)
	m.events = append(m.events, ev)
	if m.opt.Sink != nil {
		m.opt.Sink(ev)
	}
}

// typeIndex resolves a catalog type name to its table index (-1 if absent).
func (m *Monitor) typeIndex(name string) int {
	for j, t := range m.tbl.Types {
		if t == name {
			return j
		}
	}
	return -1
}

// OnEvent implements sim.Controller: fold one execution event into the
// progress snapshot.
func (m *Monitor) OnEvent(ev sim.Event) {
	switch ev.Kind {
	case sim.EvInstanceAcquired:
		m.emit(StreamEvent{Time: ev.Time, Kind: ev.Kind.String(), Slot: ev.Slot, Type: ev.Type})
	case sim.EvTaskStart:
		i, ok := m.index[ev.Task]
		if !ok {
			return
		}
		m.res.state[i] = stRunning
		m.res.startAt[i] = ev.Time
		if ev.Time > m.res.now {
			m.res.now = ev.Time
		}
		m.emit(StreamEvent{Time: ev.Time, Kind: ev.Kind.String(), Task: ev.Task,
			Slot: ev.Slot, Type: ev.Type})
	case sim.EvTaskFinish:
		i, ok := m.index[ev.Task]
		if !ok {
			return
		}
		m.res.state[i] = stFinished
		m.res.finish[i] = ev.Time
		if ev.Time > m.res.now {
			m.res.now = ev.Time
		}
		m.res.accrued = ev.AccruedCost
		var forecast float64
		if j := m.typeIndex(ev.Type); j >= 0 {
			if td, err := m.tbl.Dist(ev.Task, j); err == nil {
				forecast = td.Mean()
				m.sumObs += ev.Duration
				m.sumForecast += forecast
			}
		}
		// Drift: the realized/forecast duration ratio over everything
		// observed so far, clamped to keep one outlier from dominating.
		if m.sumForecast > 0 {
			d := m.sumObs / m.sumForecast
			if d < 0.25 {
				d = 0.25
			}
			if d > 4 {
				d = 4
			}
			m.res.drift = d
		}
		for k, st := range m.res.state {
			if st == stRunning {
				m.res.elapsed[k] = m.res.now - m.res.startAt[k]
			}
		}
		m.sinceReplan++
		m.emit(StreamEvent{Time: ev.Time, Kind: ev.Kind.String(), Task: ev.Task,
			Slot: ev.Slot, Type: ev.Type, Duration: ev.Duration,
			Forecast: forecast, AccruedCost: ev.AccruedCost})
	case sim.EvInstanceRevoked:
		// A spot market reclaimed an instance: the killed task (if any) goes
		// back to unstarted and the slot is queued for forced recovery on the
		// next Revise — revocation is the most aggressive drift there is.
		if ev.Time > m.res.now {
			m.res.now = ev.Time
		}
		m.res.accrued = ev.AccruedCost
		if i, ok := m.index[ev.Task]; ok && ev.Task != "" {
			m.res.state[i] = stUnstarted
			m.res.startAt[i] = 0
			m.res.elapsed[i] = 0
		}
		m.revocations++
		m.revokedSlots = append(m.revokedSlots, ev.Slot)
		m.emit(StreamEvent{Time: ev.Time, Kind: ev.Kind.String(), Task: ev.Task,
			Slot: ev.Slot, Type: ev.Type, AccruedCost: ev.AccruedCost})
	}
}

// recoverRevoked is the forced replan after a spot revocation: every
// unstarted task still planned onto a reclaimed slot moves to the on-demand
// base of its current type, one fresh slot each. It bypasses the risk
// threshold, cooldown, and MaxReplans — leaving the orphaned sub-DAG on the
// simulator's default same-market retry would re-expose it to the very
// hazard that just fired.
func (m *Monitor) recoverRevoked() map[string]sim.Placement {
	if len(m.revokedSlots) == 0 {
		return nil
	}
	dead := make(map[int]bool, len(m.revokedSlots))
	for _, sl := range m.revokedSlots {
		dead[sl] = true
	}
	m.revokedSlots = nil
	newCfg := append([]int(nil), m.config...)
	changed := map[string]string{}
	for i, t := range m.w.Tasks {
		if m.res.state[i] != stUnstarted || !dead[m.plan[t.ID].Slot] {
			continue
		}
		base := cloud.BaseType(m.tbl.Types[m.config[i]])
		j := m.typeIndex(base)
		if j < 0 || j == m.config[i] {
			continue // no on-demand column, or already on one
		}
		newCfg[i] = j
		changed[t.ID] = base
	}
	if len(changed) == 0 {
		return nil
	}
	// Re-consolidate the whole unstarted sub-DAG (hour-packed, like any
	// replan) so the recovered tasks share on-demand capacity instead of
	// fanning out one instance each.
	upd, err := m.replanPlacements(newCfg)
	if err != nil {
		m.fail(err)
		return nil
	}
	m.config = newCfg
	for id, pl := range upd {
		m.plan[id] = pl
	}
	m.recoveries++
	m.emit(StreamEvent{Time: m.res.now, Kind: "replan",
		Replan: &ReplanEvent{Changed: len(changed), Assignments: changed}})
	return upd
}

// Revise implements sim.Controller: after each completion, re-estimate the
// violation probability of the remaining DAG; above the risk threshold, run
// the incremental replan and return the revised placements. Pending
// revocations short-circuit into a forced recovery replan first.
func (m *Monitor) Revise() map[string]sim.Placement {
	if upd := m.recoverRevoked(); upd != nil {
		return upd
	}
	if m.err != nil || len(m.cons) == 0 {
		return nil
	}
	k, err := m.res.buildKernel(m.config)
	if err != nil {
		m.fail(err)
		return nil
	}
	base := mixSeed(m.opt.Seed, m.decisions)
	m.decisions++
	var ev *probir.Evaluation
	var risk float64
	m.riskWorldsBudget += int64(k.Worlds())
	bd, isBlock := m.opt.Device.(device.BlockDevice)
	if m.opt.Adaptive && isBlock && k.chunkable() && k.Worlds() > riskMinWorlds {
		// Chunked sequential stopping: a nil evaluation means the replan
		// predicate was decided early from a world prefix, with risk the
		// pessimistic bound; a replan-triggering evaluation always completes
		// (canReplan), so the replan search below sees exact numbers.
		canReplan := m.replans < m.opt.MaxReplans && m.sinceReplan >= m.opt.Cooldown
		var run int
		ev, risk, run, err = chunkedRisk(k, base, bd, m.opt.Risk, canReplan)
		m.riskWorldsRun += int64(run)
	} else {
		ev, err = evalKernel(k, base, m.opt.Device)
		m.riskWorldsRun += int64(k.Worlds())
		if err == nil {
			risk = violationProb(ev)
		}
	}
	if err != nil {
		m.fail(err)
		return nil
	}
	if risk > m.riskMax {
		m.riskMax = risk
	}
	m.emit(StreamEvent{Time: m.res.now, Kind: "risk", Risk: risk, Drift: m.res.drift})
	if risk <= m.opt.Risk || m.replans >= m.opt.MaxReplans || m.sinceReplan < m.opt.Cooldown || ev == nil {
		return nil
	}
	searchSeed := mixSeed(m.opt.Seed, m.decisions)
	m.decisions++
	upd, rev, err := m.replan(ev, searchSeed)
	if err != nil {
		m.fail(err)
		return nil
	}
	// Cooldown applies to attempts, not just accepted replans, so a risk
	// stuck above threshold with no better plan available does not re-run
	// the search after every completion.
	m.sinceReplan = 0
	if upd == nil {
		return nil
	}
	m.replans++
	rev.RiskBefore = risk
	m.emit(StreamEvent{Time: m.res.now, Kind: "replan", Risk: risk, Replan: rev})
	return upd
}

// fail records a monitoring error and stops further adaptation; the
// execution itself continues open-loop.
func (m *Monitor) fail(err error) {
	m.err = err
	m.emit(StreamEvent{Time: m.res.now, Kind: "error"})
}

// deadline returns the first deadline constraint's bound (0 if none).
func (m *Monitor) deadline() float64 {
	for _, c := range m.cons {
		if c.Kind == "deadline" {
			return c.Bound
		}
	}
	return 0
}

// Finish folds the completed run's outcome into the log. Call it once after
// RunControlled returns.
func (m *Monitor) Finish(res *sim.Result) {
	if m.done || res == nil {
		return
	}
	m.done = true
	se := StreamEvent{Time: res.Makespan, Kind: "done",
		Makespan: res.Makespan, TotalCost: res.TotalCost}
	if d := m.deadline(); d > 0 {
		met := res.Makespan <= d
		se.DeadlineMet = &met
	}
	m.emit(se)
	m.final = &m.events[len(m.events)-1]
}

// Err returns the first monitoring error, if any (the run itself is not
// affected; adaptation just stops).
func (m *Monitor) Err() error { return m.err }

// Report summarizes the monitored execution.
func (m *Monitor) Report() *Report {
	rep := &Report{
		Replans:          m.replans,
		Revocations:      m.revocations,
		Recoveries:       m.recoveries,
		RiskMax:          m.riskMax,
		Drift:            m.res.drift,
		FinalConfig:      make(map[string]string, len(m.config)),
		Events:           m.events,
		DeadlineSeconds:  m.deadline(),
		RiskWorldsRun:    m.riskWorldsRun,
		RiskWorldsBudget: m.riskWorldsBudget,
	}
	for i, t := range m.w.Tasks {
		rep.FinalConfig[t.ID] = m.tbl.Types[m.config[i]]
	}
	if m.final != nil {
		rep.Makespan = m.final.Makespan
		rep.TotalCost = m.final.TotalCost
		rep.DeadlineMet = m.final.DeadlineMet
	}
	if m.err != nil {
		rep.Error = m.err.Error()
	}
	return rep
}
