package runtime

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"

	"deco/internal/dag"
	"deco/internal/opt"
	"deco/internal/probir"
	"deco/internal/sim"
)

// residualSpace is the incremental-replan search space: full configuration
// vectors whose start state is the *current* plan (warm start) and whose
// neighbors mutate only unstarted tasks — started work is sunk. Evaluation
// is the residual Monte-Carlo kernel, so spent cost and elapsed time are
// folded into every candidate's constraints.
type residualSpace struct {
	r         *residual
	base      []int
	unstarted []int // positions free to change
	numTypes  int

	fpOnce sync.Once
	fp     string
}

// Initial implements opt.Space: the running plan restricted to unfinished
// tasks — exactly where the execution currently stands.
func (s *residualSpace) Initial() opt.State {
	return append(opt.State(nil), s.base...)
}

// Neighbors implements opt.Space: promote/demote each unstarted task by one
// type, plus a global shift of all unstarted tasks (the escape move for
// uniform drift).
func (s *residualSpace) Neighbors(st opt.State) []opt.State {
	var out []opt.State
	for _, i := range s.unstarted {
		for _, d := range []int{1, -1} {
			j := st[i] + d
			if j < 0 || j >= s.numTypes {
				continue
			}
			c := append(opt.State(nil), st...)
			c[i] = j
			out = append(out, c)
		}
	}
	for _, d := range []int{1, -1} {
		c := append(opt.State(nil), st...)
		moved := false
		for _, i := range s.unstarted {
			j := st[i] + d
			if j >= 0 && j < s.numTypes {
				c[i] = j
				moved = true
			}
		}
		if moved {
			out = append(out, c)
		}
	}
	return out
}

// Evaluate implements opt.Space, running the residual kernel with the
// solver-supplied state rng — the same substream base the kernel path
// derives, so both are bit-identical.
func (s *residualSpace) Evaluate(st opt.State, rng *rand.Rand) (*probir.Evaluation, error) {
	k, err := s.r.buildKernel(st)
	if err != nil {
		return nil, err
	}
	return probir.RunKernel(k, rng.Int63())
}

// Kernel implements opt.KernelSpace for two-level device execution. The
// residual space stays on the state-keyed rng contract: its conditioned
// rejection sampling (condSample) draws a data-dependent number of variates
// per task, which is incompatible with the fixed (task, iteration) streams
// of the CRN duration matrix.
func (s *residualSpace) Kernel(st opt.State) (probir.WorldKernel, error) {
	return s.r.buildKernel(st)
}

// Fingerprint implements opt.FingerprintSpace: a content hash of the full
// residual snapshot — everything a state's evaluation depends on — so cache
// entries from different replan instants (different progress, drift, or
// accrued cost) never collide.
func (s *residualSpace) Fingerprint() string {
	s.fpOnce.Do(func() {
		r := s.r
		h := sha256.New()
		io.WriteString(h, "residual;")
		io.WriteString(h, r.tbl.Fingerprint())
		var buf [8]byte
		writeF := func(xs ...float64) {
			for _, x := range xs {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
				h.Write(buf[:])
			}
		}
		writeI := func(xs ...int64) {
			for _, x := range xs {
				binary.LittleEndian.PutUint64(buf[:], uint64(x))
				h.Write(buf[:])
			}
		}
		writeI(int64(len(r.ids)), int64(r.iters))
		for i, id := range r.ids {
			io.WriteString(h, id)
			writeI(int64(r.state[i]))
			writeF(r.startAt[i], r.elapsed[i], r.finish[i])
		}
		for _, ti := range r.order {
			writeI(int64(ti), int64(len(r.parents[ti])))
			for _, p := range r.parents[ti] {
				writeI(int64(p))
			}
		}
		writeF(r.now, r.accrued, r.drift)
		writeF(r.prices...)
		writeI(int64(len(r.cons)))
		for _, c := range r.cons {
			io.WriteString(h, c.Kind)
			writeF(c.Percentile, c.Bound)
		}
		s.fp = hex.EncodeToString(h.Sum(nil))
	})
	return s.fp
}

// replanPlacements materializes the unstarted portion of a new
// configuration into placements on fresh slots: the unstarted sub-DAG is
// consolidated (hour-packed) exactly like an initial plan, then its slots
// are offset past every slot the execution has already referenced.
func (m *Monitor) replanPlacements(config []int) (map[string]sim.Placement, error) {
	sub := dag.New(m.w.Name + "/residual")
	subIdx := []int{}
	for i, t := range m.w.Tasks {
		if m.res.state[i] != stUnstarted {
			continue
		}
		tc := *t
		if err := sub.AddTask(&tc); err != nil {
			return nil, err
		}
		subIdx = append(subIdx, i)
	}
	for _, i := range subIdx {
		id := m.w.Tasks[i].ID
		for _, p := range m.w.Parents(id) {
			if sub.Task(p) != nil {
				if err := sub.AddEdge(p, id); err != nil {
					return nil, err
				}
			}
		}
	}
	subCfg := make(opt.State, 0, len(subIdx))
	for _, i := range subIdx {
		subCfg = append(subCfg, config[i])
	}
	plan, err := opt.Consolidate(sub, subCfg, m.tbl, m.region)
	if err != nil {
		return nil, err
	}
	out := make(map[string]sim.Placement, len(plan.Place))
	maxUsed := -1
	for id, pl := range plan.Place {
		pl.Slot += m.nextSlot
		if pl.Slot-m.nextSlot > maxUsed {
			maxUsed = pl.Slot - m.nextSlot
		}
		out[id] = pl
	}
	m.nextSlot += maxUsed + 1
	return out, nil
}

// replan runs the warm-started incremental search and, if the best found
// configuration ranks strictly better than staying the course, returns the
// revised placements for the unstarted tasks.
func (m *Monitor) replan(cur *probir.Evaluation, seed int64) (map[string]sim.Placement, *ReplanEvent, error) {
	unstarted := []int{}
	for i := range m.config {
		if m.res.state[i] == stUnstarted {
			unstarted = append(unstarted, i)
		}
	}
	if len(unstarted) == 0 {
		return nil, nil, nil
	}
	space := &residualSpace{
		r:         m.res,
		base:      append([]int(nil), m.config...),
		unstarted: unstarted,
		numTypes:  len(m.tbl.Types),
	}
	sopt := opt.Options{
		Device:    m.opt.Device,
		MaxStates: m.opt.ReplanBudget,
		BeamWidth: 6,
		Patience:  6,
		Seed:      seed,
		Ctx:       m.opt.Ctx,
		Cache:     m.opt.Cache,
	}
	res, err := opt.Search(space, sopt)
	if err != nil {
		return nil, nil, fmt.Errorf("runtime: replan search: %w", err)
	}
	if scoreEval(res.BestEval) >= scoreEval(cur) {
		return nil, nil, nil // staying the course is at least as good
	}
	changed := map[string]string{}
	for _, i := range unstarted {
		if res.Best[i] != m.config[i] {
			changed[m.w.Tasks[i].ID] = m.tbl.Types[res.Best[i]]
		}
	}
	if len(changed) == 0 {
		return nil, nil, nil
	}
	newCfg := append([]int(nil), m.config...)
	for _, i := range unstarted {
		newCfg[i] = res.Best[i]
	}
	upd, err := m.replanPlacements(newCfg)
	if err != nil {
		return nil, nil, err
	}
	m.config = newCfg
	for id, pl := range upd {
		m.plan[id] = pl
	}
	return upd, &ReplanEvent{Changed: len(changed), Assignments: changed}, nil
}
