package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRingDeterministicAndComplete(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := NewRing("http://a:1", peers)
	r2 := NewRing("http://b:1", []string{"http://c:1", "http://b:1", "http://a:1", "http://a:1"})
	if r1.Size() != 3 || r2.Size() != 3 {
		t.Fatalf("sizes = %d, %d, want 3 (dedup + self-insert)", r1.Size(), r2.Size())
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if o1, o2 := r1.Owner(key), r2.Owner(key); o1 != o2 {
			t.Fatalf("ring views disagree on %q: %q vs %q", key, o1, o2)
		}
	}
	if !NewRing("http://a:1", nil).IsOwner("anything") {
		t.Error("single-node ring must own every key")
	}
}

func TestRingBalance(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(peers[0], peers)
	counts := make(map[string]int)
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("job-%d", i))]++
	}
	for _, p := range peers {
		if c := counts[p]; c < n/6 || c > n/2 {
			t.Errorf("peer %s owns %d of %d keys; want roughly %d", p, c, n, n/3)
		}
	}
}

// Rendezvous hashing's selling point: removing a peer only moves the keys it
// owned; every other key keeps its owner.
func TestRingMinimalDisruption(t *testing.T) {
	full := NewRing("http://a:1", []string{"http://a:1", "http://b:1", "http://c:1"})
	reduced := NewRing("http://a:1", []string{"http://a:1", "http://b:1"})
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before != "http://c:1" && before != after {
			t.Fatalf("key %q moved from %q to %q though its owner never left", key, before, after)
		}
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	var g Group
	var calls atomic.Int64
	release := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	shared := make([]bool, n)
	vals := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, sh := g.Do("k", func() (any, error) {
				calls.Add(1)
				<-release
				return "plan", nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			vals[i], shared[i] = v, sh
		}(i)
	}
	// Wait for the leader to be in flight, then let everyone pile on.
	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // let the waiters join the flight
	close(release)
	wg.Wait()

	if c := calls.Load(); c != 1 {
		t.Fatalf("fn ran %d times, want 1", c)
	}
	nShared := 0
	for i := 0; i < n; i++ {
		if vals[i] != "plan" {
			t.Errorf("caller %d got %v", i, vals[i])
		}
		if shared[i] {
			nShared++
		}
	}
	if nShared != n-1 {
		t.Errorf("%d callers reported shared, want %d", nShared, n-1)
	}

	// The key is forgotten after completion: a later call runs fn again.
	if _, _, sh := g.Do("k", func() (any, error) { calls.Add(1); return "again", nil }); sh {
		t.Error("post-completion call reported shared")
	}
	if calls.Load() != 2 {
		t.Errorf("fn ran %d times total, want 2", calls.Load())
	}
}

func TestSingleflightDistinctKeysRunIndependently(t *testing.T) {
	var g Group
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.Do(fmt.Sprintf("k%d", i), func() (any, error) {
				calls.Add(1)
				return i, nil
			})
		}(i)
	}
	wg.Wait()
	if calls.Load() != 4 {
		t.Errorf("fn ran %d times, want 4", calls.Load())
	}
}

func TestClientSolveRoundTrip(t *testing.T) {
	var gotForwarded, gotRID string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != PeerSolvePath || r.Method != http.MethodPost {
			t.Errorf("peer saw %s %s", r.Method, r.URL.Path)
		}
		gotForwarded = r.Header.Get(HeaderForwarded)
		gotRID = r.Header.Get(HeaderRequestID)
		w.Header().Set(HeaderCached, "1")
		fmt.Fprint(w, `{"feasible":true}`)
	}))
	defer ts.Close()

	c := NewClient(time.Second)
	rep, err := c.Solve(context.Background(), ts.URL+"/", []byte(`{}`), "rid-123")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Cached || string(rep.Doc) != `{"feasible":true}` {
		t.Errorf("reply = %+v", rep)
	}
	if gotForwarded != "1" || gotRID != "rid-123" {
		t.Errorf("headers: forwarded=%q rid=%q", gotForwarded, gotRID)
	}
}

func TestClientSolveErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
	}))
	c := NewClient(time.Second)
	if _, err := c.Solve(context.Background(), ts.URL, []byte(`{}`), ""); err == nil {
		t.Error("non-200 status did not error")
	}
	ts.Close()
	if _, err := c.Solve(context.Background(), ts.URL, []byte(`{}`), ""); err == nil {
		t.Error("closed peer did not error")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Solve(ctx, "http://127.0.0.1:1", []byte(`{}`), ""); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context: %v, want context.Canceled", err)
	}
}
