package cluster

import (
	"fmt"
	"sync"
)

// Group deduplicates concurrent function calls by key: while one caller (the
// leader) runs fn, every other caller with the same key blocks and receives
// the leader's result. Once the leader returns the key is forgotten, so
// sequential calls each execute — memoization is the cache's job, not ours.
//
// This is the in-process half of request coalescing: identical job keys
// arriving on one node — whether submitted locally or forwarded in by a peer
// — share a single solver run.
type Group struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

// Do runs fn under key, coalescing with any in-flight call for the same key.
// shared reports whether the result came from another caller's execution.
func (g *Group) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := new(flightCall)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	defer func() {
		// A panicking fn must still release waiters and forget the key, or
		// every future caller of this key would block forever.
		if r := recover(); r != nil {
			c.err = fmt.Errorf("cluster: singleflight leader panicked: %v", r)
			g.forget(key, c)
			panic(r)
		}
	}()
	c.val, c.err = fn()
	g.forget(key, c)
	return c.val, c.err, false
}

func (g *Group) forget(key string, c *flightCall) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
}
