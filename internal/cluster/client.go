package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// PeerSolvePath is the internal endpoint a node exposes for forwarded jobs.
// It solves synchronously: the response body is the finished result document.
const PeerSolvePath = "/v1/peer/solve"

// Headers used by peer forwarding.
const (
	// HeaderRequestID carries the end-to-end request ID so one job can be
	// traced across every node that touched it.
	HeaderRequestID = "X-Request-Id"
	// HeaderCached is "1" when the owner answered from its plan cache — a
	// cross-shard cache hit from the forwarder's point of view.
	HeaderCached = "X-Deco-Cached"
	// HeaderForwarded marks a request as peer-forwarded so the owner never
	// re-forwards it, even under a (misconfigured) disagreeing ring view.
	HeaderForwarded = "X-Deco-Forwarded"
)

// maxReplyBytes bounds a peer response document; result documents are a few
// KB, so 32 MiB is purely a hostile-peer guard.
const maxReplyBytes = 32 << 20

// SolveReply is a peer's answer to a forwarded job.
type SolveReply struct {
	// Doc is the finished result document (a PlanResult or EnsembleResult).
	Doc json.RawMessage
	// Cached reports whether the owner served it from its plan cache.
	Cached bool
}

// Client forwards jobs to their owning peers over HTTP. It is safe for
// concurrent use; cancellation and deadlines come from the caller's context
// (the forwarding node hedges to local computation itself, so the client
// carries no global timeout).
type Client struct {
	http *http.Client
}

// NewClient builds a forwarding client. dialTimeout bounds connection
// establishment only — an unreachable peer fails fast so the caller can fall
// back to local computation immediately rather than waiting out a hedge.
func NewClient(dialTimeout time.Duration) *Client {
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	return &Client{http: &http.Client{
		Transport: &http.Transport{
			DialContext:         (&net.Dialer{Timeout: dialTimeout}).DialContext,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		},
	}}
}

// Solve posts the JSON-encoded submit request body to peer's solve endpoint
// and returns the finished result document. Any transport error or non-200
// status is reported as an error; the caller treats all of them the same way
// — compute locally instead.
func (c *Client) Solve(ctx context.Context, peer string, body []byte, requestID string) (*SolveReply, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(peer, "/")+PeerSolvePath, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: building request for %s: %w", peer, err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderForwarded, "1")
	if requestID != "" {
		req.Header.Set(HeaderRequestID, requestID)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: peer %s unreachable: %w", peer, err)
	}
	defer resp.Body.Close()
	doc, err := io.ReadAll(io.LimitReader(resp.Body, maxReplyBytes))
	if err != nil {
		return nil, fmt.Errorf("cluster: reading reply from %s: %w", peer, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: peer %s refused forwarded job: %s: %s",
			peer, resp.Status, snippet(doc))
	}
	return &SolveReply{Doc: doc, Cached: resp.Header.Get(HeaderCached) == "1"}, nil
}

func snippet(b []byte) string {
	s := strings.TrimSpace(string(b))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}
