// Package cluster turns N decod processes into one planning service. Three
// small pieces compose into the distributed story:
//
//   - Ring: a rendezvous-hash ring over a static peer list that assigns every
//     job key a single owner, sharding plan-cache and eval-cache ownership
//     across the cluster (the owner's caches accumulate that key's plans and
//     state evaluations; everyone else forwards).
//   - Group: singleflight coalescing, so concurrent identical job keys —
//     locally submitted or forwarded in — share one computation.
//   - Client: the HTTP peer-forwarding client a non-owner uses to route a job
//     to its owner, with the caller falling back to local computation when
//     the owner is unreachable or slow (hedging).
//
// The package is deliberately transport-thin and state-free: membership is a
// static -peers list (no gossip), and consistency is trivial because plans
// are pure functions of their job key — any node can compute any plan, so
// ownership is an optimization (cache locality, deduplication), never a
// correctness requirement.
package cluster

import (
	"hash/fnv"
	"sort"
)

// Ring assigns keys to peers by rendezvous (highest-random-weight) hashing:
// the owner of a key is the peer maximizing hash(peer, key). Unlike a ketama
// ring, rendezvous hashing needs no virtual nodes for balance and moves only
// 1/N of the keyspace when a peer is added or removed.
type Ring struct {
	self  string
	peers []string // sorted, deduplicated, includes self
}

// NewRing builds a ring over peers, ensuring self is a member. Peer strings
// are compared verbatim, so every node must be configured with the same
// spelling of each address (including scheme and port).
func NewRing(self string, peers []string) *Ring {
	seen := make(map[string]bool, len(peers)+1)
	all := make([]string, 0, len(peers)+1)
	for _, p := range append(append([]string(nil), peers...), self) {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		all = append(all, p)
	}
	sort.Strings(all)
	return &Ring{self: self, peers: all}
}

// Self returns this node's own address as configured.
func (r *Ring) Self() string { return r.self }

// Peers returns the full sorted membership, including self.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// Size returns the number of members.
func (r *Ring) Size() int { return len(r.peers) }

// Owner returns the peer owning key: the member with the highest
// hash(member, key) score. A ring with no members owns nothing and returns
// self.
func (r *Ring) Owner(key string) string {
	if len(r.peers) == 0 {
		return r.self
	}
	best, bestScore := r.peers[0], uint64(0)
	for i, p := range r.peers {
		s := score(p, key)
		if i == 0 || s > bestScore || (s == bestScore && p < best) {
			best, bestScore = p, s
		}
	}
	return best
}

// IsOwner reports whether this node owns key.
func (r *Ring) IsOwner(key string) bool { return r.Owner(key) == r.self }

// score is the rendezvous weight of (peer, key): FNV-1a over both, with a
// separator so ("ab","c") and ("a","bc") never collide.
func score(peer, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}
