package wlog

import (
	"fmt"

	"deco/internal/prolog"
)

// Goal is the optimization objective: minimize or maximize Var, which Query
// binds (e.g. "minimize Ct in totalcost(Ct)").
type Goal struct {
	Maximize bool
	Var      prolog.Term
	Query    prolog.Term
}

// Constraint is a probabilistic requirement: Var, bound by Query, must
// satisfy the deadline/budget built-in (e.g. "T in maxtime(Path,T) satisfies
// deadline(95%,10h)").
type Constraint struct {
	Var   prolog.Term
	Query prolog.Term
	// Kind is "deadline" (bound on time) or "budget" (bound on cost).
	Kind string
	// Percentile p of the probabilistic notion P(X <= Bound) >= p, in [0,1].
	// The sentinel -1 selects the deterministic notion (expected value <=
	// Bound), written deadline(mean, D) — used by dynamic problems such as
	// follow-the-cost (§3.3).
	Percentile float64
	// Bound in base units (seconds for deadlines, dollars for budgets).
	Bound float64
}

// VarDecl declares the optimization variables: Template instantiated for
// every solution of the generator conjunction ("configs(Tid,Vid,Con) forall
// task(Tid) and vm(Vid)").
type VarDecl struct {
	Template   prolog.Term
	Generators []prolog.Term
}

// Program is a parsed WLog program.
type Program struct {
	Imports     []string
	Goal        *Goal
	Constraints []Constraint
	Decls       []VarDecl
	Rules       []*prolog.Clause
	AStar       bool
	// Spots lists the instance types declared preemptible-eligible via
	// spot(type) facts: the solver may place tasks on those types' spot
	// markets in addition to their on-demand offerings.
	Spots []string
	// Transfers lists transfer(src, dst) facts: the workflow's source inputs
	// live in region src and must cross to the execution region dst, so
	// cross-region bandwidth and NetPricePerGB participate in the objective.
	Transfers [][2]string
}

// HasRule reports whether the program defines the given predicate itself
// (which overrides any engine-native implementation).
func (p *Program) HasRule(functor string, arity int) bool {
	for _, r := range p.Rules {
		ind, err := prolog.IndicatorOf(r.Head)
		if err == nil && ind.Functor == functor && ind.Arity == arity {
			return true
		}
	}
	return false
}

type parser struct {
	toks []token
	pos  int
	vars map[string]*prolog.Var // per-statement variable scope
}

// Parse parses WLog source text into a Program.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for p.peek().kind != tokEOF {
		if err := p.statement(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

func (p *parser) peek() token    { return p.toks[p.pos] }
func (p *parser) advance() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("wlog: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	t := p.peek()
	if t.kind != tokPunct || t.text != s {
		return p.errf(t, "expected %q, found %s", s, t)
	}
	p.advance()
	return nil
}

func (p *parser) expectAtom(s string) error {
	t := p.peek()
	if t.kind != tokAtom || t.text != s {
		return p.errf(t, "expected %q, found %s", s, t)
	}
	p.advance()
	return nil
}

// atPunct reports whether the next token is the given punctuation.
func (p *parser) atPunct(s string) bool {
	t := p.peek()
	return t.kind == tokPunct && t.text == s
}

// atAtom reports whether the next token is the given atom.
func (p *parser) atAtom(s string) bool {
	t := p.peek()
	return t.kind == tokAtom && t.text == s
}

// statement parses one top-level WLog statement into prog.
func (p *parser) statement(prog *Program) error {
	p.vars = map[string]*prolog.Var{}
	t := p.peek()

	// import(name).
	if t.kind == tokAtom && t.text == "import" && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "(" {
		p.advance()
		p.advance()
		name := p.peek()
		if name.kind != tokAtom {
			return p.errf(name, "import needs an atom, found %s", name)
		}
		p.advance()
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		if err := p.expectPunct("."); err != nil {
			return err
		}
		prog.Imports = append(prog.Imports, name.text)
		return nil
	}

	// minimize/maximize Var in Query.
	if t.kind == tokAtom && (t.text == "minimize" || t.text == "maximize") {
		if prog.Goal != nil {
			return p.errf(t, "duplicate optimization goal")
		}
		p.advance()
		v, err := p.term(1200)
		if err != nil {
			return err
		}
		if err := p.expectAtom("in"); err != nil {
			return err
		}
		q, err := p.term(1200)
		if err != nil {
			return err
		}
		if err := p.expectPunct("."); err != nil {
			return err
		}
		prog.Goal = &Goal{Maximize: t.text == "maximize", Var: v, Query: q}
		return nil
	}

	// enabled(astar).
	if t.kind == tokAtom && t.text == "enabled" && p.toks[p.pos+1].text == "(" {
		p.advance()
		p.advance()
		feat := p.peek()
		if feat.kind != tokAtom {
			return p.errf(feat, "enabled needs an atom")
		}
		p.advance()
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		if err := p.expectPunct("."); err != nil {
			return err
		}
		switch feat.text {
		case "astar":
			prog.AStar = true
		default:
			return p.errf(feat, "unknown feature %q in enabled/1", feat.text)
		}
		return nil
	}

	// General term, then dispatch on what follows.
	head, err := p.term(1200)
	if err != nil {
		return err
	}
	next := p.peek()
	switch {
	case next.kind == tokOp && next.text == ":-":
		p.advance()
		var body []prolog.Term
		for {
			g, err := p.term(999)
			if err != nil {
				return err
			}
			body = append(body, g)
			if p.atPunct(",") {
				p.advance()
				continue
			}
			break
		}
		if err := p.expectPunct("."); err != nil {
			return err
		}
		prog.Rules = append(prog.Rules, &prolog.Clause{Head: head, Body: body})
		return nil

	case next.kind == tokAtom && next.text == "in":
		// Constraint: Var in Query satisfies deadline(p,d)/budget(p,b).
		p.advance()
		q, err := p.term(1200)
		if err != nil {
			return err
		}
		if err := p.expectAtom("satisfies"); err != nil {
			return err
		}
		ct, err := p.term(1200)
		if err != nil {
			return err
		}
		if err := p.expectPunct("."); err != nil {
			return err
		}
		cons, err := parseConstraintTerm(head, q, ct)
		if err != nil {
			return p.errf(next, "%v", err)
		}
		prog.Constraints = append(prog.Constraints, *cons)
		return nil

	case next.kind == tokAtom && next.text == "forall":
		p.advance()
		var gens []prolog.Term
		for {
			g, err := p.term(999)
			if err != nil {
				return err
			}
			gens = append(gens, g)
			if p.atAtom("and") {
				p.advance()
				continue
			}
			break
		}
		if err := p.expectPunct("."); err != nil {
			return err
		}
		prog.Decls = append(prog.Decls, VarDecl{Template: head, Generators: gens})
		return nil

	case next.kind == tokPunct && next.text == ".":
		p.advance()
		// Market facts are directives for the engine-native pipeline, like
		// import/1 and enabled/1; they never reach the Prolog database.
		if c, ok := prolog.Deref(head).(*prolog.Compound); ok {
			switch {
			case c.Functor == "spot" && len(c.Args) == 1:
				a, ok := prolog.Deref(c.Args[0]).(prolog.Atom)
				if !ok {
					return p.errf(next, "spot/1 needs an instance-type atom, found %s", c.Args[0])
				}
				prog.Spots = append(prog.Spots, string(a))
				return nil
			case c.Functor == "transfer" && len(c.Args) == 2:
				src, okSrc := prolog.Deref(c.Args[0]).(prolog.Atom)
				dst, okDst := prolog.Deref(c.Args[1]).(prolog.Atom)
				if !okSrc || !okDst {
					return p.errf(next, "transfer/2 needs two region atoms, found %s", head)
				}
				prog.Transfers = append(prog.Transfers, [2]string{string(src), string(dst)})
				return nil
			}
		}
		prog.Rules = append(prog.Rules, &prolog.Clause{Head: head})
		return nil
	}
	return p.errf(next, "expected ':-', 'in', 'forall' or '.', found %s", next)
}

// parseConstraintTerm interprets the term after "satisfies".
func parseConstraintTerm(v, q, ct prolog.Term) (*Constraint, error) {
	c, ok := prolog.Deref(ct).(*prolog.Compound)
	if !ok || (c.Functor != "deadline" && c.Functor != "budget") || len(c.Args) != 2 {
		return nil, fmt.Errorf("constraint must be deadline(p,d) or budget(p,b), found %s", ct)
	}
	cons := &Constraint{Var: v, Query: q, Kind: c.Functor}
	switch arg := prolog.Deref(c.Args[0]).(type) {
	case prolog.Number:
		pct := float64(arg)
		if pct <= 0 || pct > 1 {
			return nil, fmt.Errorf("%s percentile %v out of (0,1]; write e.g. 95%%", c.Functor, pct)
		}
		cons.Percentile = pct
	case prolog.Atom:
		if arg != "mean" {
			return nil, fmt.Errorf("%s first argument must be a percentage or 'mean', found %s", c.Functor, arg)
		}
		cons.Percentile = -1
	default:
		return nil, fmt.Errorf("%s first argument must be a percentage or 'mean', found %s", c.Functor, c.Args[0])
	}
	b, ok := prolog.Deref(c.Args[1]).(prolog.Number)
	if !ok {
		return nil, fmt.Errorf("%s bound must be a number, found %s", c.Functor, c.Args[1])
	}
	if b < 0 {
		return nil, fmt.Errorf("%s bound must be non-negative, found %v", c.Functor, float64(b))
	}
	cons.Bound = float64(b)
	return cons, nil
}

// binary operator precedence table (lower binds tighter; Prolog convention).
var binPrec = map[string]int{
	"is": 700, "<": 700, ">": 700, "=<": 700, ">=": 700,
	"==": 700, "\\==": 700, "=:=": 700, "=\\=": 700, "=": 700,
	"+": 500, "-": 500,
	"*": 400, "/": 400,
	";": 1100,
}

// term parses a term with operators of precedence <= maxPrec.
func (p *parser) term(maxPrec int) (prolog.Term, error) {
	left, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op string
		if t.kind == tokOp {
			op = t.text
		} else if t.kind == tokAtom && t.text == "is" {
			op = "is"
		} else {
			break
		}
		prec, ok := binPrec[op]
		if !ok || prec > maxPrec {
			break
		}
		p.advance()
		// Left-associative: the right operand binds tighter.
		right, err := p.term(prec - 1)
		if err != nil {
			return nil, err
		}
		left = prolog.Comp(op, left, right)
	}
	return left, nil
}

// primary parses an operand: number, variable, atom/compound, list,
// parenthesized term, unary minus, negation, cut.
func (p *parser) primary() (prolog.Term, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.advance()
		return prolog.Number(t.num), nil

	case t.kind == tokVar:
		p.advance()
		if t.text == "_" {
			return prolog.NewVar("_"), nil
		}
		if v, ok := p.vars[t.text]; ok {
			return v, nil
		}
		v := prolog.NewVar(t.text)
		p.vars[t.text] = v
		return v, nil

	case t.kind == tokAtom:
		p.advance()
		if p.atPunct("(") {
			p.advance()
			var args []prolog.Term
			for {
				a, err := p.term(999)
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.atPunct(",") {
					p.advance()
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return prolog.Comp(t.text, args...), nil
		}
		return prolog.Atom(t.text), nil

	case t.kind == tokPunct && t.text == "[":
		p.advance()
		if p.atPunct("]") {
			p.advance()
			return prolog.EmptyList, nil
		}
		var items []prolog.Term
		for {
			a, err := p.term(999)
			if err != nil {
				return nil, err
			}
			items = append(items, a)
			if p.atPunct(",") {
				p.advance()
				continue
			}
			break
		}
		var tail prolog.Term = prolog.EmptyList
		if p.atPunct("|") {
			p.advance()
			var err error
			tail, err = p.term(999)
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		list := tail
		for i := len(items) - 1; i >= 0; i-- {
			list = prolog.Cons(items[i], list)
		}
		return list, nil

	case t.kind == tokPunct && t.text == "(":
		p.advance()
		inner, err := p.term(1200)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil

	case t.kind == tokOp && t.text == "-":
		p.advance()
		operand, err := p.primary()
		if err != nil {
			return nil, err
		}
		if n, ok := operand.(prolog.Number); ok {
			return prolog.Number(-float64(n)), nil
		}
		return prolog.Comp("-", operand), nil

	case t.kind == tokOp && t.text == "\\+":
		p.advance()
		operand, err := p.primary()
		if err != nil {
			return nil, err
		}
		return prolog.Comp("\\+", operand), nil

	case t.kind == tokOp && t.text == "!":
		p.advance()
		return prolog.Atom("!"), nil
	}
	return nil, p.errf(t, "unexpected token %s", t)
}
