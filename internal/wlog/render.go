package wlog

import (
	"fmt"
	"strings"

	"deco/internal/prolog"
)

// This file renders parsed programs back to WLog source. Rendering is the
// inverse of Parse up to whitespace and comments: Parse(Render(p)) yields a
// structurally identical program, which the tests assert — a strong check
// on both the parser and the AST.

// renderTerm writes a term in parseable WLog syntax (operators infix,
// lists bracketed).
func renderTerm(t prolog.Term) string {
	t = prolog.Deref(t)
	switch tt := t.(type) {
	case prolog.Atom:
		return renderAtom(string(tt))
	case prolog.Number:
		return tt.String()
	case *prolog.Var:
		if tt.Name == "" || tt.Name == "_" {
			return "_"
		}
		return tt.Name
	case *prolog.Compound:
		// Lists.
		if tt.Functor == "." && len(tt.Args) == 2 {
			return renderList(tt)
		}
		// Binary operators parse back as operators.
		if _, isOp := binPrec[tt.Functor]; isOp && len(tt.Args) == 2 {
			return fmt.Sprintf("(%s %s %s)", renderTerm(tt.Args[0]), tt.Functor, renderTerm(tt.Args[1]))
		}
		if tt.Functor == "\\+" && len(tt.Args) == 1 {
			return "\\+ " + renderTerm(tt.Args[0])
		}
		if tt.Functor == "-" && len(tt.Args) == 1 {
			return "-" + renderTerm(tt.Args[0])
		}
		parts := make([]string, len(tt.Args))
		for i, a := range tt.Args {
			parts[i] = renderTerm(a)
		}
		return fmt.Sprintf("%s(%s)", renderAtom(tt.Functor), strings.Join(parts, ", "))
	}
	return "?"
}

// renderAtom quotes atoms that would not lex as plain atoms.
func renderAtom(s string) string {
	if s == "" {
		return "''"
	}
	plain := s[0] >= 'a' && s[0] <= 'z'
	for _, r := range s {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_') {
			plain = false
			break
		}
	}
	if plain {
		return s
	}
	return "'" + s + "'"
}

func renderList(c *prolog.Compound) string {
	var items []string
	var t prolog.Term = c
	for {
		cc, ok := prolog.Deref(t).(*prolog.Compound)
		if !ok || cc.Functor != "." || len(cc.Args) != 2 {
			break
		}
		items = append(items, renderTerm(cc.Args[0]))
		t = prolog.Deref(cc.Args[1])
	}
	if a, ok := prolog.Deref(t).(prolog.Atom); ok && a == "[]" {
		return "[" + strings.Join(items, ", ") + "]"
	}
	return "[" + strings.Join(items, ", ") + " | " + renderTerm(t) + "]"
}

// renderConstraint writes a percentile/bound pair back in parseable syntax.
// The percentile renders as a plain probability (0.95 rather than 95%) so
// the round trip is exact in floating point; bounds are plain seconds or
// dollars.
func renderConstraint(c Constraint) string {
	pct := "mean"
	if c.Percentile >= 0 {
		pct = fmt.Sprintf("%g", c.Percentile)
	}
	return fmt.Sprintf("%s in %s satisfies %s(%s, %g).",
		renderTerm(c.Var), renderTerm(c.Query), c.Kind, pct, c.Bound)
}

// Render writes the program back as WLog source.
func (p *Program) Render() string {
	var b strings.Builder
	for _, imp := range p.Imports {
		fmt.Fprintf(&b, "import(%s).\n", renderAtom(imp))
	}
	if p.Goal != nil {
		verb := "minimize"
		if p.Goal.Maximize {
			verb = "maximize"
		}
		fmt.Fprintf(&b, "%s %s in %s.\n", verb, renderTerm(p.Goal.Var), renderTerm(p.Goal.Query))
	}
	for _, c := range p.Constraints {
		b.WriteString(renderConstraint(c))
		b.WriteByte('\n')
	}
	for _, d := range p.Decls {
		gens := make([]string, len(d.Generators))
		for i, g := range d.Generators {
			gens[i] = renderTerm(g)
		}
		fmt.Fprintf(&b, "%s forall %s.\n", renderTerm(d.Template), strings.Join(gens, " and "))
	}
	if p.AStar {
		b.WriteString("enabled(astar).\n")
	}
	for _, r := range p.Rules {
		b.WriteString(renderTerm(r.Head))
		for i, g := range r.Body {
			if i == 0 {
				b.WriteString(" :- ")
			} else {
				b.WriteString(", ")
			}
			b.WriteString(renderTerm(g))
		}
		b.WriteString(".\n")
	}
	return b.String()
}
