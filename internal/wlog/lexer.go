// Package wlog implements the WLog declarative language of §4: ProLog syntax
// extended with workflow/cloud constructs — import(...) facts, minimize/
// maximize goals, probabilistic deadline(p,d) and budget(p,b) constraints
// with percentage and duration literals (95%, 10h), optimization-variable
// declarations ("configs(Tid,Vid,Con) forall task(Tid) and vm(Vid)"), and
// the enabled(astar) switch for heuristic search.
package wlog

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokAtom
	tokVar
	tokNumber
	tokPunct // ( ) [ ] , | .
	tokOp    // :- is < > =< >= == \== =:= =\= + - * / = ; ! \+
)

type token struct {
	kind tokenKind
	text string
	num  float64 // valid for tokNumber, with units applied
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("wlog: %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekAt(off int) rune {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

// skipSpace consumes whitespace and comments (% line, /* */ block).
func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '%':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peekAt(1) == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// unitFactor maps a literal unit suffix to a multiplier into base units
// (seconds for durations; percentages divide by 100).
var unitFactor = map[string]float64{
	"%": 0.01,
	"s": 1, "m": 60, "h": 3600, "d": 86400,
}

func isAtomStart(r rune) bool { return unicode.IsLower(r) }
func isVarStart(r rune) bool  { return unicode.IsUpper(r) || r == '_' }
func isIdent(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// next scans one token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	tok := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		tok.kind = tokEOF
		return tok, nil
	}
	r := l.peek()
	switch {
	case unicode.IsDigit(r):
		start := l.pos
		for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
			l.advance()
		}
		if l.peek() == '.' && unicode.IsDigit(l.peekAt(1)) {
			l.advance()
			for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
				l.advance()
			}
		}
		text := string(l.src[start:l.pos])
		n, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return tok, l.errf("bad number %q", text)
		}
		// Unit suffix: %, s, m, h, d — only when not the start of a longer
		// identifier (so "10h" is 36000 but "10hello" is an error).
		if f, ok := unitFactor[string(l.peek())]; ok && !isIdent(l.peekAt(1)) {
			suffix := l.advance()
			if suffix == '%' {
				n /= 100 // divide, not multiply by 0.01: keeps 95% == 0.95 exactly
			} else {
				n *= f
			}
			text += string(suffix)
		}
		tok.kind = tokNumber
		tok.text = text
		tok.num = n
		return tok, nil

	case isAtomStart(r):
		start := l.pos
		for l.pos < len(l.src) && isIdent(l.peek()) {
			l.advance()
		}
		tok.kind = tokAtom
		tok.text = string(l.src[start:l.pos])
		return tok, nil

	case isVarStart(r):
		start := l.pos
		for l.pos < len(l.src) && isIdent(l.peek()) {
			l.advance()
		}
		tok.kind = tokVar
		tok.text = string(l.src[start:l.pos])
		return tok, nil

	case r == '\'':
		// Quoted atom.
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return tok, l.errf("unterminated quoted atom")
			}
			c := l.advance()
			if c == '\'' {
				break
			}
			b.WriteRune(c)
		}
		tok.kind = tokAtom
		tok.text = b.String()
		return tok, nil

	case strings.ContainsRune("()[],|.", r):
		// '.' could start ':-'? No — just punct. But distinguish the
		// end-of-clause '.' from a decimal point (handled in number case).
		l.advance()
		tok.kind = tokPunct
		tok.text = string(r)
		return tok, nil

	default:
		// Operators, longest match first.
		ops := []string{":-", "?-", "=<", ">=", "==", "\\==", "=:=", "=\\=", "\\+",
			"<", ">", "+", "-", "*", "/", "=", ";", "!"}
		rest := string(l.src[l.pos:])
		for _, op := range ops {
			if strings.HasPrefix(rest, op) {
				for range op {
					l.advance()
				}
				tok.kind = tokOp
				tok.text = op
				return tok, nil
			}
		}
		return tok, l.errf("unexpected character %q", r)
	}
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
