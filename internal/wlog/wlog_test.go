package wlog

import (
	"math"
	"strings"
	"testing"

	"deco/internal/prolog"
)

// example1 is the WLog program of Example 1 in the paper (workflow
// scheduling: minimize monetary cost under a 95% probabilistic deadline).
const example1 = `
import(amazonec2).
import(montage).
minimize Ct in totalcost(Ct).
T in maxtime(Path,T) satisfies deadline(95%,10h).
configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).

/*calculate the time on the edge from X to Y*/
path(X,Y,Y,Tp) :- edge(X,Y), exetime(X,Vid,T),
  configs(X,Vid,Con), Con==1, Tp is T.
/*calculate the time on the path from X to Y, with Z as the next hop for X*/
path(X,Y,Z,Tp) :- edge(X,Z), Z\==Y,
  path(Z,Y,Z2,T1), exetime(X,Vid,T),
  configs(X,Vid,Con), Con==1, Tp is T+T1.
/*calculate the time on the critical path from root to tail*/
maxtime(Path,T) :- setof([Z,T1], path(root,tail,Z,T1), Set), max(Set, [Path,T]).
/*calculate the cost of Tid executing on Vid*/
cost(Tid,Vid,C) :- price(Vid,Up), exetime(Tid,Vid,T), configs(Tid,Vid,Con), C is T*Up*Con.
/*calculate the total cost of all tasks*/
totalcost(Ct) :- findall(C, cost(Tid,Vid,C), Bag), sum(Bag, Ct).
`

func TestParseExample1(t *testing.T) {
	prog, err := Parse(example1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Imports) != 2 || prog.Imports[0] != "amazonec2" || prog.Imports[1] != "montage" {
		t.Errorf("imports %v", prog.Imports)
	}
	if prog.Goal == nil || prog.Goal.Maximize {
		t.Fatal("goal missing or wrong direction")
	}
	if prog.Goal.Query.String() != "totalcost(Ct)" {
		t.Errorf("goal query %s", prog.Goal.Query)
	}
	// Goal var is shared with the query.
	gq := prog.Goal.Query.(*prolog.Compound)
	if prog.Goal.Var != gq.Args[0] {
		t.Error("goal variable not shared with query")
	}
	if len(prog.Constraints) != 1 {
		t.Fatalf("constraints %d", len(prog.Constraints))
	}
	c := prog.Constraints[0]
	if c.Kind != "deadline" {
		t.Errorf("kind %s", c.Kind)
	}
	if c.Percentile != 0.95 {
		t.Errorf("percentile %v, want 0.95", c.Percentile)
	}
	if c.Bound != 36000 {
		t.Errorf("bound %v, want 36000 (10h)", c.Bound)
	}
	if len(prog.Decls) != 1 {
		t.Fatalf("decls %d", len(prog.Decls))
	}
	d := prog.Decls[0]
	if d.Template.String() != "configs(Tid,Vid,Con)" {
		t.Errorf("template %s", d.Template)
	}
	if len(d.Generators) != 2 || d.Generators[0].String() != "task(Tid)" || d.Generators[1].String() != "vm(Vid)" {
		t.Errorf("generators %v", d.Generators)
	}
	if len(prog.Rules) != 5 {
		t.Fatalf("rules %d, want 5", len(prog.Rules))
	}
	if !prog.HasRule("totalcost", 1) || !prog.HasRule("path", 4) {
		t.Error("HasRule misses defined predicates")
	}
	if prog.HasRule("makespan", 1) {
		t.Error("HasRule invents predicates")
	}
	if prog.AStar {
		t.Error("astar should be off")
	}
}

func TestParseAStarHints(t *testing.T) {
	src := `
enabled(astar).
cal_g_score(C) :- totalcost(C).
est_h_score(C) :- totalcost(C).
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.AStar {
		t.Error("astar not enabled")
	}
	if !prog.HasRule("cal_g_score", 1) || !prog.HasRule("est_h_score", 1) {
		t.Error("score rules missing")
	}
}

func TestParseUnits(t *testing.T) {
	cases := []struct {
		src  string
		pct  float64
		bnd  float64
		kind string
	}{
		{"T in q(T) satisfies deadline(90%, 2h).", 0.90, 7200, "deadline"},
		{"T in q(T) satisfies deadline(99.9%, 30m).", 0.999, 1800, "deadline"},
		{"T in q(T) satisfies deadline(mean, 45s).", -1, 45, "deadline"},
		{"C in q(C) satisfies budget(96%, 100).", 0.96, 100, "budget"},
		{"T in q(T) satisfies deadline(95%, 1d).", 0.95, 86400, "deadline"},
	}
	for _, c := range cases {
		prog, err := Parse(c.src)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		got := prog.Constraints[0]
		if math.Abs(got.Percentile-c.pct) > 1e-12 || got.Bound != c.bnd || got.Kind != c.kind {
			t.Errorf("%s: got %+v", c.src, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"bad import", "import(X)."},
		{"unterminated", "p(a"},
		{"missing dot", "p(a)"},
		{"bad constraint kind", "T in q(T) satisfies speedlimit(95%, 10h)."},
		{"percentile over 1", "T in q(T) satisfies deadline(500%, 10h)."},
		{"percentile zero", "T in q(T) satisfies deadline(0%, 10h)."},
		{"bad percentile atom", "T in q(T) satisfies deadline(median, 10h)."},
		{"non-number bound", "T in q(T) satisfies deadline(95%, soon)."},
		{"negative bound", "T in q(T) satisfies deadline(95%, -3)."},
		{"duplicate goal", "minimize X in c(X). minimize Y in c(Y)."},
		{"bad enabled", "enabled(warpdrive)."},
		{"unterminated comment", "/* hello"},
		{"unexpected char", "p(a) @ q."},
		{"number ident", "p(10hello)."},
		{"unterminated quote", "p('abc)."},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestVariableScopePerStatement(t *testing.T) {
	prog, err := Parse("p(X) :- q(X).\nr(X) :- s(X).")
	if err != nil {
		t.Fatal(err)
	}
	x1 := prog.Rules[0].Head.(*prolog.Compound).Args[0]
	x2 := prog.Rules[1].Head.(*prolog.Compound).Args[0]
	if x1 == x2 {
		t.Error("variables leak across clauses")
	}
	// Within a clause, same name is the same variable.
	bx := prog.Rules[0].Body[0].(*prolog.Compound).Args[0]
	if x1 != bx {
		t.Error("variable not shared within clause")
	}
}

func TestUnderscoreAlwaysFresh(t *testing.T) {
	prog, err := Parse("p(_, _).")
	if err != nil {
		t.Fatal(err)
	}
	args := prog.Rules[0].Head.(*prolog.Compound).Args
	if args[0] == args[1] {
		t.Error("underscores unified")
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	prog, err := Parse("p(C) :- C is 1+2*3-4.")
	if err != nil {
		t.Fatal(err)
	}
	m := prolog.NewMachine()
	for _, r := range prog.Rules {
		if err := m.Assert(r); err != nil {
			t.Fatal(err)
		}
	}
	v := prolog.NewVar("V")
	res, found, err := m.Once(v, prolog.Comp("p", v))
	if err != nil || !found {
		t.Fatalf("eval: %v %v", found, err)
	}
	if res != prolog.Number(3) {
		t.Errorf("1+2*3-4 = %v, want 3", res)
	}
}

func TestListsAndNegation(t *testing.T) {
	prog, err := Parse(`p([1,2|T], T). q(X) :- \+ member(X, [a,b]).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 2 {
		t.Fatalf("rules %d", len(prog.Rules))
	}
	if !strings.HasPrefix(prog.Rules[0].Head.String(), "p([1,2|") {
		t.Errorf("list head %s", prog.Rules[0].Head)
	}
	m := prolog.NewMachine()
	for _, r := range prog.Rules {
		if err := m.Assert(r); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := m.Query(prolog.Comp("q", prolog.Atom("z")))
	if err != nil || !ok {
		t.Fatalf("negation rule: %v %v", ok, err)
	}
	ok, _ = m.Query(prolog.Comp("q", prolog.Atom("a")))
	if ok {
		t.Error("q(a) should fail")
	}
}

func TestQuotedAtomsAndComments(t *testing.T) {
	prog, err := Parse(`
% line comment
p('m1.small'). /* block
comment */ p('m1.xlarge').
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 2 {
		t.Fatalf("rules %d", len(prog.Rules))
	}
	if prog.Rules[0].Head.String() != "p(m1.small)" {
		t.Errorf("quoted atom %s", prog.Rules[0].Head)
	}
}

func TestParseMarketFacts(t *testing.T) {
	prog, err := Parse(`
import(amazonec2).
spot('m1.small'). spot('m1.medium').
transfer('us-east-1', 'ap-southeast-1').
minimize Ct in totalcost(Ct).
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Spots) != 2 || prog.Spots[0] != "m1.small" || prog.Spots[1] != "m1.medium" {
		t.Errorf("spots %v", prog.Spots)
	}
	if len(prog.Transfers) != 1 || prog.Transfers[0] != [2]string{"us-east-1", "ap-southeast-1"} {
		t.Errorf("transfers %v", prog.Transfers)
	}
	// Market facts are directives, not database clauses.
	if len(prog.Rules) != 0 {
		t.Errorf("market facts leaked into rules: %v", prog.Rules)
	}
	// Malformed market facts are rejected, not silently treated as rules.
	if _, err := Parse("spot(X)."); err == nil {
		t.Error("spot with a variable accepted")
	}
	if _, err := Parse("transfer('us-east-1', 7)."); err == nil {
		t.Error("transfer with a number accepted")
	}
}

func TestNegativeNumbersAndUnaryMinus(t *testing.T) {
	prog, err := Parse("p(-5). q(X, Y) :- Y is -X.")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Rules[0].Head.String() != "p(-5)" {
		t.Errorf("negative literal %s", prog.Rules[0].Head)
	}
	m := prolog.NewMachine()
	for _, r := range prog.Rules {
		_ = m.Assert(r)
	}
	v := prolog.NewVar("V")
	res, found, err := m.Once(v, prolog.Comp("q", prolog.Number(7), v))
	if err != nil || !found || res != prolog.Number(-7) {
		t.Errorf("unary minus: %v %v %v", res, found, err)
	}
}

func TestCutParses(t *testing.T) {
	prog, err := Parse("first(X) :- p(X), !.")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules[0].Body) != 2 || prog.Rules[0].Body[1] != prolog.Atom("!") {
		t.Errorf("cut body %v", prog.Rules[0].Body)
	}
}

func TestDisjunctionParses(t *testing.T) {
	prog, err := Parse("p(X) :- (q(X) ; r(X)).")
	if err != nil {
		t.Fatal(err)
	}
	b := prog.Rules[0].Body[0].(*prolog.Compound)
	if b.Functor != ";" {
		t.Errorf("disjunction %s", b)
	}
}

// structurallyEqual compares two programs modulo variable identity.
func structurallyEqual(t *testing.T, a, b *Program) {
	t.Helper()
	if len(a.Imports) != len(b.Imports) || len(a.Constraints) != len(b.Constraints) ||
		len(a.Decls) != len(b.Decls) || len(a.Rules) != len(b.Rules) || a.AStar != b.AStar {
		t.Fatalf("structure differs:\nA: %+v\nB: %+v", a, b)
	}
	for i := range a.Imports {
		if a.Imports[i] != b.Imports[i] {
			t.Errorf("import %d: %q vs %q", i, a.Imports[i], b.Imports[i])
		}
	}
	if (a.Goal == nil) != (b.Goal == nil) {
		t.Fatal("goal presence differs")
	}
	if a.Goal != nil {
		if a.Goal.Maximize != b.Goal.Maximize || a.Goal.Query.String() != b.Goal.Query.String() {
			t.Errorf("goal differs: %s vs %s", a.Goal.Query, b.Goal.Query)
		}
	}
	for i := range a.Constraints {
		ca, cb := a.Constraints[i], b.Constraints[i]
		if ca.Kind != cb.Kind || ca.Percentile != cb.Percentile || ca.Bound != cb.Bound ||
			ca.Query.String() != cb.Query.String() {
			t.Errorf("constraint %d differs: %+v vs %+v", i, ca, cb)
		}
	}
	for i := range a.Rules {
		if a.Rules[i].Head.String() != b.Rules[i].Head.String() ||
			len(a.Rules[i].Body) != len(b.Rules[i].Body) {
			t.Errorf("rule %d differs: %s vs %s", i, a.Rules[i].Head, b.Rules[i].Head)
			continue
		}
		for j := range a.Rules[i].Body {
			if a.Rules[i].Body[j].String() != b.Rules[i].Body[j].String() {
				t.Errorf("rule %d body %d differs: %s vs %s", i, j,
					a.Rules[i].Body[j], b.Rules[i].Body[j])
			}
		}
	}
}

func TestRenderRoundTripExample1(t *testing.T) {
	orig, err := Parse(example1)
	if err != nil {
		t.Fatal(err)
	}
	src := orig.Render()
	back, err := Parse(src)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nrendered:\n%s", err, src)
	}
	structurallyEqual(t, orig, back)
}

func TestRenderRoundTripFeatures(t *testing.T) {
	src := `
import('my.cloud').
maximize S in score(S).
C in total(C) satisfies budget(mean, 42.5).
admit(W, A) forall workflow(W) and active(W).
enabled(astar).
p([1, 2 | T], T).
q(X) :- \+ member(X, [a, b]), Y is -X + 3*2, Y > 0.
first(X) :- p(X, _), !.
`
	orig, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := orig.Render()
	back, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nrendered:\n%s", err, rendered)
	}
	structurallyEqual(t, orig, back)
	// And the round trip is a fixed point: render(parse(render(p))) == render(p).
	if back.Render() != rendered {
		t.Errorf("render not idempotent:\nfirst:\n%s\nsecond:\n%s", rendered, back.Render())
	}
}

func TestRenderQuotedAtoms(t *testing.T) {
	prog, err := Parse(`p('m1.small'). q(simple).`)
	if err != nil {
		t.Fatal(err)
	}
	out := prog.Render()
	if !strings.Contains(out, "'m1.small'") {
		t.Errorf("dotted atom not quoted: %s", out)
	}
	if strings.Contains(out, "'simple'") {
		t.Errorf("plain atom needlessly quoted: %s", out)
	}
}
