package calib

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"deco/internal/cloud"
)

func run(t *testing.T, samples int) (*cloud.Catalog, *Result) {
	t.Helper()
	cat := cloud.DefaultCatalog()
	opt := DefaultOptions()
	opt.Samples = samples
	res, err := Run(cat, opt, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return cat, res
}

func TestRunRecoversTable2(t *testing.T) {
	cat, res := run(t, 10000)
	if len(res.Reports) != len(cat.Types) {
		t.Fatalf("reports %d, want %d", len(res.Reports), len(cat.Types))
	}
	for _, rep := range res.Reports {
		truthSeq := cat.Perf.SeqIO[rep.Type]
		truthRand := cat.Perf.RandIO[rep.Type]
		// Means must be recovered within 3%.
		if math.Abs(rep.SeqGamma.Mean()-truthSeq.Mean())/truthSeq.Mean() > 0.03 {
			t.Errorf("%s: seq mean %v vs truth %v", rep.Type, rep.SeqGamma.Mean(), truthSeq.Mean())
		}
		if math.Abs(rep.RandNormal.Mu-truthRand.Mean())/truthRand.Mean() > 0.03 {
			t.Errorf("%s: rand mu %v vs truth %v", rep.Type, rep.RandNormal.Mu, truthRand.Mean())
		}
		// Goodness-of-fit must not reject the true family.
		if !rep.SeqKSPass {
			t.Errorf("%s: KS rejected Gamma for seq I/O (stat %v)", rep.Type, rep.SeqKSStat)
		}
		if !rep.RandKSPass {
			t.Errorf("%s: KS rejected Normal for rand I/O (stat %v)", rep.Type, rep.RandKSStat)
		}
		if !rep.NetKSPass {
			t.Errorf("%s: KS rejected Normal for network", rep.Type)
		}
	}
}

func TestRunMetadataComplete(t *testing.T) {
	cat, res := run(t, 2000)
	if err := res.Metadata.Validate(cat); err != nil {
		t.Fatal(err)
	}
	// Histogram mean tracks ground truth.
	h := res.Metadata.SeqIO["m1.large"]
	truth := cat.Perf.SeqIO["m1.large"]
	if math.Abs(h.Mean()-truth.Mean())/truth.Mean() > 0.05 {
		t.Errorf("metadata drifted: %v vs %v", h.Mean(), truth.Mean())
	}
}

func TestRunValidation(t *testing.T) {
	cat := cloud.DefaultCatalog()
	if _, err := Run(cat, Options{Samples: 5, Bins: 10}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("too few samples accepted")
	}
	if _, err := Run(cat, Options{Samples: 100, Bins: 1}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("too few bins accepted")
	}
}

func TestInstanceRecycling(t *testing.T) {
	_, res := run(t, 601)
	m := res.Raw["m1.small"]["seqio"]
	// 601 one-minute probes with hourly recycling: 10 replacements.
	if m.Recycles != 10 {
		t.Errorf("recycles %d, want 10", m.Recycles)
	}
}

func TestTable2Rendering(t *testing.T) {
	_, res := run(t, 2000)
	tbl := res.Table2()
	for _, typ := range []string{"m1.small", "m1.medium", "m1.large", "m1.xlarge"} {
		if !strings.Contains(tbl, typ) {
			t.Errorf("Table2 missing %s:\n%s", typ, tbl)
		}
	}
	if !strings.Contains(tbl, "k=") || !strings.Contains(tbl, "sigma=") {
		t.Errorf("Table2 missing parameters:\n%s", tbl)
	}
}

func TestNetSeriesNormalized(t *testing.T) {
	_, res := run(t, 2000)
	s := res.NetSeries("m1.medium")
	if len(s) != 2000 {
		t.Fatalf("series length %d", len(s))
	}
	mean := 0.0
	for _, v := range s {
		mean += v
	}
	mean /= float64(len(s))
	if math.Abs(mean-1) > 1e-9 {
		t.Errorf("normalized series mean %v, want 1", mean)
	}
	if res.NetSeries("nope") != nil {
		t.Error("unknown type should return nil series")
	}
}

func TestMaxVariancePctMediumVsLarge(t *testing.T) {
	_, res := run(t, 10000)
	med := res.MaxVariancePct("m1.medium")
	lrg := res.MaxVariancePct("m1.large")
	// Fig 6a: m1.medium max deviation should be substantial (tens of %)...
	if med < 30 {
		t.Errorf("m1.medium max variance %v%%, expected >= 30%%", med)
	}
	// ...and clearly larger than m1.large's (Fig 7).
	if med <= lrg {
		t.Errorf("medium (%v%%) should exceed large (%v%%)", med, lrg)
	}
}

func TestNetHistogram(t *testing.T) {
	_, res := run(t, 2000)
	h, err := res.NetHistogram("m1.medium", 20)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins() != 20 {
		t.Errorf("bins %d", h.Bins())
	}
	if _, err := res.NetHistogram("zzz", 20); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestLinkHistogramWeakerEndpoint(t *testing.T) {
	cat := cloud.DefaultCatalog()
	rng := rand.New(rand.NewSource(5))
	hMix, err := LinkHistogram(cat, "m1.medium", "m1.large", 5000, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The mixed link behaves like the medium endpoint: mean near 75, not 100.
	if math.Abs(hMix.Mean()-75) > 5 {
		t.Errorf("mixed link mean %v, want ~75", hMix.Mean())
	}
	hLarge, err := LinkHistogram(cat, "m1.large", "m1.large", 5000, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if hLarge.Mean() <= hMix.Mean() {
		t.Errorf("large-large link (%v) should beat mixed (%v)", hLarge.Mean(), hMix.Mean())
	}
	// Large-large should also be tighter (Fig 7a vs 7b).
	if math.Sqrt(hLarge.Var())/hLarge.Mean() >= math.Sqrt(hMix.Var())/hMix.Mean() {
		t.Error("large-large link should have smaller relative spread")
	}
	if _, err := LinkHistogram(cat, "zz", "m1.large", 100, 10, rng); err == nil {
		t.Error("unknown endpoint accepted")
	}
}

func TestSortedTypes(t *testing.T) {
	_, res := run(t, 500)
	got := res.SortedTypes()
	if len(got) != 4 {
		t.Fatalf("types %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Errorf("not sorted: %v", got)
		}
	}
}
