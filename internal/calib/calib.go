// Package calib implements the cloud-calibration pipeline of §6.1/§6.2: it
// runs micro-benchmarks (hdparm-style sequential reads, 512-byte random
// reads, iperf-style bandwidth probes) against instances, collects samples
// — "once a minute, ... 7 days (in total 10,000 times)", recycling each
// instance at the full hour — fits parametric distributions (sequential I/O
// → Gamma, random I/O → Normal, network → Normal), runs goodness-of-fit
// tests, and stores the discretized histograms in the metadata store.
//
// Because the real EC2 is unavailable, the probes measure the *simulated*
// cloud: draws from the catalog's ground-truth distributions. Calibration
// must recover the Table 2 parameters from those measurements.
package calib

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"deco/internal/cloud"
	"deco/internal/dist"
)

// Options configures a calibration run.
type Options struct {
	// Samples per (type, metric). The paper's setup measures once a minute
	// for 7 days ≈ 10,000 samples.
	Samples int
	// Bins of the stored histograms.
	Bins int
	// InstanceHourMinutes is how many one-minute probes an instance serves
	// before it is released and replaced (the paper recycles at the full
	// hour).
	InstanceHourMinutes int
}

// DefaultOptions mirror the paper's measurement methodology.
func DefaultOptions() Options {
	return Options{Samples: 10000, Bins: 30, InstanceHourMinutes: 60}
}

// Measurement is the raw series of one micro-benchmark against one target.
type Measurement struct {
	Type   string // instance type probed
	Metric string // "seqio", "randio", "net"
	Values []float64
	// Recycles counts how many instances were consumed (one per full hour).
	Recycles int
}

// probe collects n samples from the ground-truth distribution d, recycling
// the (simulated) instance every hourMin probes.
func probe(d dist.Dist, n, hourMin int, rng *rand.Rand) ([]float64, int) {
	vals := make([]float64, n)
	recycles := 0
	for i := 0; i < n; i++ {
		if hourMin > 0 && i > 0 && i%hourMin == 0 {
			recycles++ // release the instance, acquire a fresh one
		}
		vals[i] = d.Sample(rng)
	}
	return vals, recycles
}

// TypeReport is one row of Table 2: the fitted sequential-I/O Gamma and
// random-I/O Normal for one instance type, with fit diagnostics.
type TypeReport struct {
	Type string

	SeqGamma   dist.Gamma
	SeqKSPass  bool
	SeqKSStat  float64
	RandNormal dist.Normal
	RandKSPass bool
	RandKSStat float64

	NetNormal dist.Normal
	NetKSPass bool
}

// Result is the full calibration outcome.
type Result struct {
	Reports  []TypeReport
	Metadata *cloud.Metadata
	// Raw measurement series, kept for the Figure 6/7 renderings.
	Raw map[string]map[string]*Measurement // type -> metric -> measurement
}

// Run calibrates every instance type in the catalog.
func Run(cat *cloud.Catalog, opt Options, rng *rand.Rand) (*Result, error) {
	if opt.Samples < 10 {
		return nil, fmt.Errorf("calib: need at least 10 samples, got %d", opt.Samples)
	}
	if opt.Bins < 2 {
		return nil, fmt.Errorf("calib: need at least 2 bins, got %d", opt.Bins)
	}
	res := &Result{
		Metadata: cloud.NewMetadata(),
		Raw:      map[string]map[string]*Measurement{},
	}
	for _, it := range cat.Types {
		raw := map[string]*Measurement{}
		res.Raw[it.Name] = raw
		rep := TypeReport{Type: it.Name}

		// Sequential I/O: hdparm-style buffered reads → Gamma fit.
		seqVals, rec := probe(cat.Perf.SeqIO[it.Name], opt.Samples, opt.InstanceHourMinutes, rng)
		raw["seqio"] = &Measurement{Type: it.Name, Metric: "seqio", Values: seqVals, Recycles: rec}
		g, err := dist.FitGamma(seqVals)
		if err != nil {
			return nil, fmt.Errorf("calib: %s seq I/O: %w", it.Name, err)
		}
		rep.SeqGamma = g
		rep.SeqKSPass, rep.SeqKSStat, _ = dist.KSTest(seqVals, g, 0.05)

		// Random I/O: 512-byte random reads → Normal fit.
		randVals, _ := probe(cat.Perf.RandIO[it.Name], opt.Samples, opt.InstanceHourMinutes, rng)
		raw["randio"] = &Measurement{Type: it.Name, Metric: "randio", Values: randVals}
		nrm := dist.FitNormal(randVals)
		rep.RandNormal = nrm
		rep.RandKSPass, rep.RandKSStat, _ = dist.KSTest(randVals, nrm, 0.05)

		// Network: iperf between two instances of this type → Normal fit.
		netVals, _ := probe(cat.Perf.Net[it.Name], opt.Samples, opt.InstanceHourMinutes, rng)
		raw["net"] = &Measurement{Type: it.Name, Metric: "net", Values: netVals}
		netFit := dist.FitNormal(netVals)
		rep.NetNormal = netFit
		rep.NetKSPass, _, _ = dist.KSTest(netVals, netFit, 0.05)

		// Store discretized histograms in the metadata store.
		if res.Metadata.SeqIO[it.Name], err = dist.FromSamples(seqVals, opt.Bins); err != nil {
			return nil, err
		}
		if res.Metadata.RandIO[it.Name], err = dist.FromSamples(randVals, opt.Bins); err != nil {
			return nil, err
		}
		if res.Metadata.Net[it.Name], err = dist.FromSamples(netVals, opt.Bins); err != nil {
			return nil, err
		}
		res.Reports = append(res.Reports, rep)
	}
	// Cross-region bandwidth.
	xVals, _ := probe(cat.Perf.CrossRegionNet, opt.Samples, opt.InstanceHourMinutes, rng)
	var err error
	if res.Metadata.CrossRegionNet, err = dist.FromSamples(xVals, opt.Bins); err != nil {
		return nil, err
	}
	return res, nil
}

// Table2 renders the calibration reports in the layout of Table 2.
func (r *Result) Table2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-28s %-28s\n", "Instance", "Sequential I/O (Gamma)", "Random I/O (Normal)")
	for _, rep := range r.Reports {
		fmt.Fprintf(&b, "%-12s k=%-8.1f theta=%-10.2f mu=%-8.1f sigma=%-8.1f\n",
			rep.Type, rep.SeqGamma.K, rep.SeqGamma.Theta, rep.RandNormal.Mu, rep.RandNormal.Sigma)
	}
	return b.String()
}

// NetSeries returns the network measurement series of the given type,
// normalized to its mean — the time-series view of Figure 6a. It returns nil
// if the type was not calibrated.
func (r *Result) NetSeries(typ string) []float64 {
	raw, ok := r.Raw[typ]
	if !ok {
		return nil
	}
	m := raw["net"]
	if m == nil {
		return nil
	}
	mean := dist.MeanOf(m.Values)
	out := make([]float64, len(m.Values))
	for i, v := range m.Values {
		out[i] = v / mean
	}
	return out
}

// MaxVariancePct returns the maximum relative deviation from the mean (in
// percent) observed in the network series of typ — the "maximum variance can
// reach up to 50%" statistic of §6.2.
func (r *Result) MaxVariancePct(typ string) float64 {
	s := r.NetSeries(typ)
	maxDev := 0.0
	for _, v := range s {
		d := v - 1
		if d < 0 {
			d = -d
		}
		if d > maxDev {
			maxDev = d
		}
	}
	return maxDev * 100
}

// NetHistogram returns the measured network histogram of typ with the given
// number of bins (Figure 6b / Figure 7), or an error if not calibrated.
func (r *Result) NetHistogram(typ string, bins int) (*dist.Histogram, error) {
	raw, ok := r.Raw[typ]
	if !ok || raw["net"] == nil {
		return nil, fmt.Errorf("calib: type %q not calibrated", typ)
	}
	return dist.FromSamples(raw["net"].Values, bins)
}

// LinkHistogram returns the measured bandwidth histogram between two
// instance types, probing the weaker endpoint as in Figure 7b.
func LinkHistogram(cat *cloud.Catalog, typeA, typeB string, samples, bins int, rng *rand.Rand) (*dist.Histogram, error) {
	d, err := cat.LinkDist(typeA, typeB)
	if err != nil {
		return nil, err
	}
	vals, _ := probe(d, samples, 60, rng)
	return dist.FromSamples(vals, bins)
}

// SortedTypes returns calibrated type names sorted alphabetically, a
// convenience for deterministic iteration in reports.
func (r *Result) SortedTypes() []string {
	var out []string
	for t := range r.Raw {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
