// Package wms is the workflow-management-system integration surface of §2:
// a compact Pegasus-like WMS with a mapper that turns DAX documents into
// executable workflows, a pluggable scheduler interface (the "user-defined
// callouts inside the WMS" Deco replaces), and an execution engine that
// distributes the executable workflow onto cloud resources — here the
// simulator. Schedulers include Pegasus's default Random scheduler,
// fixed-type schedulers (Figure 1's m1.* scenarios), the Autoscaling
// baseline, and Deco itself.
package wms

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"deco/internal/baseline"
	"deco/internal/cloud"
	"deco/internal/dag"
	"deco/internal/dax"
	"deco/internal/device"
	"deco/internal/estimate"
	"deco/internal/opt"
	"deco/internal/probir"
	"deco/internal/runtime"
	"deco/internal/sim"
	"deco/internal/wlog"
)

// Scheduler decides which instance runs each task — the resource
// orchestration component of §1.
type Scheduler interface {
	Name() string
	Schedule(w *dag.Workflow) (*sim.Plan, error)
}

// Random is Pegasus's default scheduler: a uniformly random type per task.
type Random struct {
	Cat    *cloud.Catalog
	Region string
	Rng    *rand.Rand
}

// Name implements Scheduler.
func (r *Random) Name() string { return "random" }

// Schedule implements Scheduler.
func (r *Random) Schedule(w *dag.Workflow) (*sim.Plan, error) {
	return sim.RandomPlan(w, r.Cat, r.Region, r.Rng), nil
}

// Fixed places every task on one instance type (the single-type scenarios
// of Figure 1).
type Fixed struct {
	Type   string
	Region string
}

// Name implements Scheduler.
func (f *Fixed) Name() string { return f.Type }

// Schedule implements Scheduler.
func (f *Fixed) Schedule(w *dag.Workflow) (*sim.Plan, error) {
	return sim.UniformPlan(w, f.Type, f.Region), nil
}

// Autoscaling wraps the Mao & Humphrey baseline as a WMS scheduler. The
// deadline comes from the workflow's DeadlineSeconds field.
type Autoscaling struct {
	Est    *estimate.Estimator
	Prices []float64
	Region string
}

// Name implements Scheduler.
func (a *Autoscaling) Name() string { return "autoscaling" }

// Schedule implements Scheduler.
func (a *Autoscaling) Schedule(w *dag.Workflow) (*sim.Plan, error) {
	if w.DeadlineSeconds <= 0 {
		return nil, fmt.Errorf("wms: autoscaling needs a workflow deadline")
	}
	tbl, err := a.Est.BuildTable(w)
	if err != nil {
		return nil, err
	}
	config, err := baseline.Autoscaling(w, tbl, a.Prices, w.DeadlineSeconds)
	if err != nil {
		return nil, err
	}
	// Autoscaling consolidates instances too (its "instance consolidation"
	// step), so materialize through the same packing.
	return opt.Consolidate(w, config, tbl, a.Region)
}

// Deco runs the declarative engine's scheduling search: minimize monetary
// cost under the workflow's probabilistic deadline, then materialize the
// configuration with the plan-level transformations.
type Deco struct {
	Est    *estimate.Estimator
	Prices []float64
	Region string
	// Iters is the Monte-Carlo budget per state evaluation.
	Iters int
	// Search configures the solver (device, beam, budget).
	Search opt.Options
}

// Name implements Scheduler.
func (d *Deco) Name() string { return "deco" }

// Schedule implements Scheduler.
func (d *Deco) Schedule(w *dag.Workflow) (*sim.Plan, error) {
	if w.DeadlineSeconds <= 0 {
		return nil, fmt.Errorf("wms: deco needs a workflow deadline")
	}
	tbl, err := d.Est.BuildTable(w)
	if err != nil {
		return nil, err
	}
	iters := d.Iters
	if iters <= 0 {
		iters = 100
	}
	pct := w.DeadlinePercentile
	if pct == 0 {
		pct = 0.96 // the paper's default probabilistic requirement
	}
	cons := []wlog.Constraint{{Kind: "deadline", Percentile: pct, Bound: w.DeadlineSeconds}}
	eval, err := probir.NewNative(w, tbl, d.Prices, probir.GoalCost, cons, iters)
	if err != nil {
		return nil, err
	}
	space := opt.NewPackedScheduleSpace(w, eval, tbl, d.Prices, d.Region)
	search := d.Search
	if search.Device == nil {
		search.Device = device.Parallel{}
	}
	res, err := opt.Search(space, search)
	if err != nil {
		return nil, err
	}
	return opt.Consolidate(w, res.Best, tbl, d.Region)
}

// WMS glues the mapper, scheduler and execution engine together.
type WMS struct {
	Cat *cloud.Catalog
	// SimRng seeds the execution engine's dynamics.
	SimRng *rand.Rand
}

// New returns a WMS over the catalog.
func New(cat *cloud.Catalog, rng *rand.Rand) *WMS {
	return &WMS{Cat: cat, SimRng: rng}
}

// Run is the outcome of one workflow submission.
type Run struct {
	Scheduler string
	Plan      *sim.Plan
	Exec      *sim.Result
	// Adapt reports the runtime monitor's view of the execution when the
	// scheduler was wrapped in Adaptive (nil for open-loop runs).
	Adapt *runtime.Report
}

// ControllerFactory is implemented by schedulers that want to observe (and
// possibly revise) the execution of the plan they produced — wms.Adaptive
// implements it to plug the runtime monitor into the simulator.
type ControllerFactory interface {
	Controller(w *dag.Workflow, plan *sim.Plan) (sim.Controller, error)
}

// Submit maps the DAX document into an executable workflow, asks the
// scheduler for a provisioning plan, and executes it on the cloud
// (simulator). Deadline fields are applied to the parsed workflow before
// scheduling.
func (m *WMS) Submit(ctx context.Context, daxSrc io.Reader, sched Scheduler, deadlineSec, percentile float64) (*Run, error) {
	w, err := dax.Parse(daxSrc)
	if err != nil {
		return nil, err
	}
	w.DeadlineSeconds = deadlineSec
	w.DeadlinePercentile = percentile
	return m.Execute(ctx, w, sched)
}

// Execute schedules and runs an already-mapped workflow. When the scheduler
// implements ControllerFactory, execution runs under its controller —
// closed-loop monitoring and replanning instead of open-loop.
func (m *WMS) Execute(ctx context.Context, w *dag.Workflow, sched Scheduler) (*Run, error) {
	plan, err := sched.Schedule(w)
	if err != nil {
		return nil, fmt.Errorf("wms: scheduler %s: %w", sched.Name(), err)
	}
	s, err := sim.New(sim.DefaultOptions(m.Cat, m.SimRng))
	if err != nil {
		return nil, err
	}
	var ctrl sim.Controller
	if cf, ok := sched.(ControllerFactory); ok {
		if ctrl, err = cf.Controller(w, plan); err != nil {
			return nil, fmt.Errorf("wms: scheduler %s: %w", sched.Name(), err)
		}
	}
	res, err := s.RunControlled(ctx, w, plan, ctrl)
	if err != nil {
		return nil, err
	}
	run := &Run{Scheduler: sched.Name(), Plan: plan, Exec: res}
	if mon, ok := ctrl.(*runtime.Monitor); ok {
		mon.Finish(res)
		run.Adapt = mon.Report()
	}
	return run, nil
}

// ExecuteMany runs the same plan n times to observe the execution-time
// distribution (Figure 2's methodology).
func (m *WMS) ExecuteMany(ctx context.Context, w *dag.Workflow, sched Scheduler, n int) ([]*sim.Result, error) {
	plan, err := sched.Schedule(w)
	if err != nil {
		return nil, fmt.Errorf("wms: scheduler %s: %w", sched.Name(), err)
	}
	s, err := sim.New(sim.DefaultOptions(m.Cat, m.SimRng))
	if err != nil {
		return nil, err
	}
	return s.RunMany(ctx, w, plan, n)
}
