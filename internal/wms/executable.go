package wms

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"

	"deco/internal/dag"
	"deco/internal/sim"
)

// This file renders the mapper's output: the "executable workflow" of §2,
// which "contains information such as where to find the executable file of a
// task and which site the task should execute on". Deco's provisioning plan
// supplies the site (instance) per task; the XML is the concrete document a
// Pegasus-like execution engine would distribute to cloud resources.

type executableDoc struct {
	XMLName xml.Name        `xml:"executable-workflow"`
	Name    string          `xml:"name,attr"`
	Sites   []siteElem      `xml:"site"`
	Jobs    []executableJob `xml:"job"`
}

type siteElem struct {
	ID     int    `xml:"id,attr"`
	Type   string `xml:"instance-type,attr"`
	Region string `xml:"region,attr"`
}

type executableJob struct {
	ID         string  `xml:"id,attr"`
	Executable string  `xml:"executable,attr"`
	Site       int     `xml:"site,attr"`
	Runtime    float64 `xml:"runtime,attr"`
}

// WriteExecutable renders the executable workflow for w under plan.
func WriteExecutable(out io.Writer, w *dag.Workflow, plan *sim.Plan) error {
	doc := executableDoc{Name: w.Name}
	seen := map[int]sim.Placement{}
	for _, t := range w.Tasks {
		pl, ok := plan.Place[t.ID]
		if !ok {
			return fmt.Errorf("wms: plan missing task %q", t.ID)
		}
		seen[pl.Slot] = pl
		doc.Jobs = append(doc.Jobs, executableJob{
			ID: t.ID, Executable: t.Executable, Site: pl.Slot, Runtime: t.CPUSeconds,
		})
	}
	slots := make([]int, 0, len(seen))
	for s := range seen {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	for _, s := range slots {
		doc.Sites = append(doc.Sites, siteElem{ID: s, Type: seen[s].Type, Region: seen[s].Region})
	}
	if _, err := io.WriteString(out, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(out)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("wms: %w", err)
	}
	return enc.Close()
}
