package wms

import (
	"fmt"

	"deco/internal/dag"
	"deco/internal/estimate"
	"deco/internal/runtime"
	"deco/internal/sim"
	"deco/internal/wlog"
)

// Adaptive wraps any scheduler with the runtime monitor: the wrapped
// scheduler produces the initial plan as usual, and execution then runs
// closed-loop — the monitor watches task completions, re-estimates the
// violation probability of the workflow's deadline, and replans the
// unstarted tasks when it crosses Opts.Risk.
type Adaptive struct {
	Inner  Scheduler
	Est    *estimate.Estimator
	Prices []float64
	Region string
	// Opts configures the monitor (risk threshold, MC iterations, replan
	// budget); zero values take runtime defaults.
	Opts runtime.Options
}

// Name implements Scheduler.
func (a *Adaptive) Name() string { return a.Inner.Name() + "+adaptive" }

// Schedule implements Scheduler by delegating to the wrapped scheduler.
func (a *Adaptive) Schedule(w *dag.Workflow) (*sim.Plan, error) {
	return a.Inner.Schedule(w)
}

// Controller implements ControllerFactory: build the runtime monitor for
// the plan about to execute, with the workflow's deadline as the monitored
// constraint.
func (a *Adaptive) Controller(w *dag.Workflow, plan *sim.Plan) (sim.Controller, error) {
	if w.DeadlineSeconds <= 0 {
		return nil, fmt.Errorf("wms: adaptive needs a workflow deadline")
	}
	tbl, err := a.Est.BuildTable(w)
	if err != nil {
		return nil, err
	}
	pct := w.DeadlinePercentile
	if pct == 0 {
		pct = 0.96
	}
	cons := []wlog.Constraint{{Kind: "deadline", Percentile: pct, Bound: w.DeadlineSeconds}}
	return runtime.NewMonitor(w, plan, tbl, a.Prices, a.Region, cons, a.Opts)
}
