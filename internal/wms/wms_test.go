package wms

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"deco/internal/cloud"
	"deco/internal/dag"
	"deco/internal/device"
	"deco/internal/estimate"
	"deco/internal/opt"
	"deco/internal/runtime"
	"deco/internal/sim"
	"deco/internal/wfgen"
)

func env(t *testing.T) (*cloud.Catalog, *estimate.Estimator, []float64) {
	t.Helper()
	cat := cloud.DefaultCatalog()
	md, err := cloud.MetadataFromTruth(cat, 12, 3000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	us, _ := cat.Region(cloud.USEast)
	prices := make([]float64, len(cat.Types))
	for j, it := range cat.Types {
		prices[j] = us.PricePerHour[it.Name]
	}
	return cat, estimate.New(cat, md), prices
}

// montageDeadline returns a medium deadline for the workflow: the midpoint
// of all-small and all-xlarge mean makespans (the paper's default setting).
func montageDeadline(t *testing.T, est *estimate.Estimator, w *dag.Workflow) float64 {
	t.Helper()
	tbl, err := est.BuildTable(w)
	if err != nil {
		t.Fatal(err)
	}
	ms := func(typeIdx int) float64 {
		cfg := map[string]int{}
		for _, task := range w.Tasks {
			cfg[task.ID] = typeIdx
		}
		means, err := tbl.MeanDurations(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := w.Makespan(means)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	return (ms(0) + ms(3)) / 2
}

const pipelineDAX = `<adag name="pipe">
  <job id="a" name="p1" runtime="600">
    <uses file="in" link="input" size="104857600"/>
    <uses file="mid" link="output" size="104857600"/>
  </job>
  <job id="b" name="p2" runtime="900">
    <uses file="mid" link="input" size="104857600"/>
    <uses file="out" link="output" size="10485760"/>
  </job>
</adag>`

func TestSubmitWithRandomScheduler(t *testing.T) {
	cat, _, _ := env(t)
	m := New(cat, rand.New(rand.NewSource(2)))
	run, err := m.Submit(context.Background(), strings.NewReader(pipelineDAX),
		&Random{Cat: cat, Region: cloud.USEast, Rng: rand.New(rand.NewSource(3))}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if run.Scheduler != "random" || run.Exec.Makespan <= 0 || run.Exec.TotalCost <= 0 {
		t.Fatalf("run %+v", run)
	}
}

func TestFixedScheduler(t *testing.T) {
	cat, _, _ := env(t)
	m := New(cat, rand.New(rand.NewSource(4)))
	run, err := m.Submit(context.Background(), strings.NewReader(pipelineDAX),
		&Fixed{Type: "m1.large", Region: cloud.USEast}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range run.Plan.Place {
		if pl.Type != "m1.large" {
			t.Errorf("placement %+v", pl)
		}
	}
}

func TestAutoscalingSchedulerRequiresDeadline(t *testing.T) {
	cat, est, prices := env(t)
	m := New(cat, rand.New(rand.NewSource(5)))
	sched := &Autoscaling{Est: est, Prices: prices, Region: cloud.USEast}
	if _, err := m.Submit(context.Background(), strings.NewReader(pipelineDAX), sched, 0, 0); err == nil {
		t.Error("missing deadline accepted")
	}
	run, err := m.Submit(context.Background(), strings.NewReader(pipelineDAX), sched, 7200, 0.96)
	if err != nil {
		t.Fatal(err)
	}
	if run.Exec.Makespan <= 0 {
		t.Error("no execution")
	}
}

func TestDecoSchedulerEndToEnd(t *testing.T) {
	cat, est, prices := env(t)
	w, err := wfgen.Montage(1, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	w.DeadlineSeconds = montageDeadline(t, est, w)
	w.DeadlinePercentile = 0.96

	m := New(cat, rand.New(rand.NewSource(7)))
	deco := &Deco{Est: est, Prices: prices, Region: cloud.USEast, Iters: 40,
		Search: opt.Options{Device: device.Parallel{}, MaxStates: 300, BeamWidth: 4, Patience: 6, Seed: 8}}
	run, err := m.Execute(context.Background(), w, deco)
	if err != nil {
		t.Fatal(err)
	}
	if run.Exec.TotalCost <= 0 {
		t.Fatal("no cost")
	}

	// Deco should not cost more than the most expensive fixed configuration
	// (Figure 1: Deco ~40% of m1.xlarge).
	m2 := New(cat, rand.New(rand.NewSource(7)))
	xl, err := m2.Execute(context.Background(), w, &Fixed{Type: "m1.xlarge", Region: cloud.USEast})
	if err != nil {
		t.Fatal(err)
	}
	if run.Exec.TotalCost > xl.Exec.TotalCost {
		t.Errorf("deco cost %v exceeds m1.xlarge %v", run.Exec.TotalCost, xl.Exec.TotalCost)
	}
}

func TestDecoSchedulerRequiresDeadline(t *testing.T) {
	cat, est, prices := env(t)
	m := New(cat, rand.New(rand.NewSource(9)))
	deco := &Deco{Est: est, Prices: prices, Region: cloud.USEast}
	if _, err := m.Submit(context.Background(), strings.NewReader(pipelineDAX), deco, 0, 0); err == nil {
		t.Error("missing deadline accepted")
	}
}

func TestExecuteManyProducesDistribution(t *testing.T) {
	cat, _, _ := env(t)
	w, err := wfgen.Pipeline(4, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	m := New(cat, rand.New(rand.NewSource(11)))
	rs, err := m.ExecuteMany(context.Background(), w, &Fixed{Type: "m1.medium", Region: cloud.USEast}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 20 {
		t.Fatalf("runs %d", len(rs))
	}
	distinct := map[float64]bool{}
	for _, r := range rs {
		distinct[r.Makespan] = true
	}
	if len(distinct) < 2 {
		t.Error("no makespan variation across runs")
	}
}

func TestSubmitBadDAX(t *testing.T) {
	cat, _, _ := env(t)
	m := New(cat, rand.New(rand.NewSource(12)))
	if _, err := m.Submit(context.Background(), strings.NewReader("not xml"),
		&Fixed{Type: "m1.small", Region: cloud.USEast}, 0, 0); err == nil {
		t.Error("garbage DAX accepted")
	}
}

func TestSchedulerNames(t *testing.T) {
	cat, est, prices := env(t)
	scheds := []Scheduler{
		&Random{Cat: cat, Region: cloud.USEast, Rng: rand.New(rand.NewSource(1))},
		&Fixed{Type: "m1.small", Region: cloud.USEast},
		&Autoscaling{Est: est, Prices: prices, Region: cloud.USEast},
		&Deco{Est: est, Prices: prices, Region: cloud.USEast},
	}
	want := []string{"random", "m1.small", "autoscaling", "deco"}
	for i, s := range scheds {
		if s.Name() != want[i] {
			t.Errorf("name %q, want %q", s.Name(), want[i])
		}
	}
}

func TestWriteExecutable(t *testing.T) {
	cat, _, _ := env(t)
	w := dag.New("exec")
	_ = w.AddTask(&dag.Task{ID: "a", Executable: "proc1", CPUSeconds: 30})
	_ = w.AddTask(&dag.Task{ID: "b", Executable: "proc2", CPUSeconds: 40})
	_ = w.AddEdge("a", "b")
	plan := &sim.Plan{Place: map[string]sim.Placement{
		"a": {Slot: 0, Type: "m1.small", Region: cloud.USEast},
		"b": {Slot: 0, Type: "m1.small", Region: cloud.USEast},
	}}
	if err := plan.Validate(w, cat); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteExecutable(&buf, w, plan); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`<executable-workflow name="exec">`,
		`instance-type="m1.small"`,
		`executable="proc1"`,
		`site="0"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Missing placement errors.
	bad := &sim.Plan{Place: map[string]sim.Placement{"a": plan.Place["a"]}}
	if err := WriteExecutable(&buf, w, bad); err == nil {
		t.Error("missing placement accepted")
	}
}

func TestAdaptiveSchedulerClosesTheLoop(t *testing.T) {
	cat, est, prices := env(t)
	// The WMS executes against a half-speed cloud while the scheduler and
	// monitor forecast from the unperturbed calibration: the initial cheap
	// plan misses its deadline open-loop, and the adaptive wrapper has to
	// notice and recover.
	drifted, err := cloud.ScalePerf(cat, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	w, err := wfgen.Pipeline(5, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := est.BuildTable(w)
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, task := range w.Tasks {
		td, err := tbl.Dist(task.ID, 0) // type index 0 = m1.small
		if err != nil {
			t.Fatal(err)
		}
		mean += td.Mean()
	}
	w.DeadlineSeconds = 1.25 * mean
	w.DeadlinePercentile = 0.95

	sched := &Adaptive{
		Inner: &Fixed{Type: "m1.small", Region: cloud.USEast},
		Est:   est, Prices: prices, Region: cloud.USEast,
		Opts: runtime.Options{Seed: 22, Iters: 100, ReplanBudget: 150},
	}
	if got := sched.Name(); got != "m1.small+adaptive" {
		t.Errorf("name %q", got)
	}
	m := New(drifted, rand.New(rand.NewSource(23)))
	run, err := m.Execute(context.Background(), w, sched)
	if err != nil {
		t.Fatal(err)
	}
	if run.Adapt == nil {
		t.Fatal("adaptive run reported no monitor view")
	}
	if run.Adapt.Replans < 1 {
		t.Errorf("no replans under half-speed drift (risk max %.3f)", run.Adapt.RiskMax)
	}
	if run.Exec.Makespan > w.DeadlineSeconds {
		t.Errorf("adaptive run missed the deadline: %.1f > %.1f", run.Exec.Makespan, w.DeadlineSeconds)
	}
	if run.Adapt.DeadlineMet == nil || !*run.Adapt.DeadlineMet {
		t.Error("report does not confirm the deadline was met")
	}

	// Without a workflow deadline the wrapper must refuse, not run open-loop.
	bare, err := wfgen.Pipeline(3, rand.New(rand.NewSource(24)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Execute(context.Background(), bare, sched); err == nil {
		t.Error("adaptive execution without a deadline accepted")
	}
}
