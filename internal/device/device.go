// Package device is the execution substrate for Deco's parallel solver. The
// paper runs the solver on an NVIDIA K40: one GPU thread block per searched
// state, one thread per Monte-Carlo iteration, shared-memory reductions
// inside a block, and no communication across blocks (§5.2-5.3). Go has no
// mature CUDA ecosystem, so this package reproduces the *execution model* in
// software: a Device schedules independent "blocks" of work across a pool of
// goroutines, with the Sequential device standing in for the single-thread
// CPU baseline the paper's speedup numbers compare against.
//
// The two implementations run the same work and produce identical results
// given per-block deterministic seeds; only wall-clock time differs, which
// is what the §6.3 speedup experiments measure.
package device

import (
	"fmt"
	"runtime"
	"sync"
)

// Device schedules n independent work items ("blocks"). Implementations must
// call fn exactly once for every i in [0, n).
type Device interface {
	// Name identifies the device in benchmark output.
	Name() string
	// Blocks is the number of concurrently executing blocks (the GPU's
	// multiprocessor count N in §5.3; 1 for the sequential device).
	Blocks() int
	// Map runs fn(i) for every i in [0, n).
	Map(n int, fn func(i int))
}

// Sequential runs blocks one at a time — the single-thread CPU baseline.
type Sequential struct{}

// Name implements Device.
func (Sequential) Name() string { return "sequential" }

// Blocks implements Device.
func (Sequential) Blocks() int { return 1 }

// Map implements Device.
func (Sequential) Map(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// Parallel runs blocks across a goroutine pool, standing in for the GPU's
// multiprocessors.
type Parallel struct {
	// NumBlocks is the number of worker goroutines; 0 means GOMAXPROCS.
	NumBlocks int
}

// Name implements Device.
func (p Parallel) Name() string { return fmt.Sprintf("parallel-%d", p.blocks()) }

// Blocks implements Device.
func (p Parallel) Blocks() int { return p.blocks() }

func (p Parallel) blocks() int {
	if p.NumBlocks > 0 {
		return p.NumBlocks
	}
	return runtime.GOMAXPROCS(0)
}

// Map implements Device: work items are distributed to workers via a shared
// index channel (block scheduling); there is no cross-block communication,
// matching the GPU implementation principle of §5.2.
func (p Parallel) Map(n int, fn func(i int)) {
	workers := p.blocks()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Reduce runs fn(i) for every i in [0, n) on the device and sums the
// results — the shared-memory reduction pattern of the paper's Monte-Carlo
// kernel (§5.2: "store the temporary results of each thread into the shared
// memory for fast synchronization").
func Reduce(d Device, n int, fn func(i int) float64) float64 {
	partial := make([]float64, n)
	d.Map(n, func(i int) { partial[i] = fn(i) })
	total := 0.0
	for _, v := range partial {
		total += v
	}
	return total
}
