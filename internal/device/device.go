// Package device is the execution substrate for Deco's parallel solver. The
// paper runs the solver on an NVIDIA K40: one GPU thread block per searched
// state, one thread per Monte-Carlo iteration, shared-memory reductions
// inside a block, and no communication across blocks (§5.2-5.3). Go has no
// mature CUDA ecosystem, so this package reproduces the *execution model* in
// software: a Device schedules independent "blocks" of work across a pool of
// goroutines, with the Sequential device standing in for the single-thread
// CPU baseline the paper's speedup numbers compare against.
//
// The execution model has two levels:
//
//   - Map schedules blocks only (one per searched state) — the outer level.
//   - MapBlocks schedules blocks *and* the threads within them (one per
//     Monte-Carlo iteration), so a batch narrower than the machine — one A*
//     expansion, a handful of multi-start seeds, an exploitation-phase child
//     set — still saturates every core. The TwoLevel device shares thread
//     chunks across its worker pool, stealing work from wide blocks when the
//     batch is narrow.
//
// All implementations run the same work and produce identical results given
// per-(block,thread) deterministic seeds; only wall-clock time differs,
// which is what the §6.3 speedup experiments measure.
package device

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Device schedules n independent work items ("blocks"). Implementations must
// call fn exactly once for every i in [0, n).
type Device interface {
	// Name identifies the device in benchmark output.
	Name() string
	// Blocks is the number of concurrently executing blocks (the GPU's
	// multiprocessor count N in §5.3; 1 for the sequential device).
	Blocks() int
	// Map runs fn(i) for every i in [0, n).
	Map(n int, fn func(i int))
}

// BlockDevice is a Device that also exposes the inner level of the paper's
// execution model: kernels addressed by (block, thread) pairs, one thread per
// Monte-Carlo iteration. Implementations must call kernel exactly once for
// every pair in [0, nBlocks) x [0, threads); the schedule (which worker runs
// which pair, in what order) is unspecified, so kernels must write only to
// per-(block,thread) state.
type BlockDevice interface {
	Device
	// MapBlocks runs kernel(b, t) for every block b in [0, nBlocks) and
	// thread t in [0, threads).
	MapBlocks(nBlocks, threads int, kernel func(block, thread int))
}

// Sequential runs blocks one at a time — the single-thread CPU baseline.
type Sequential struct{}

// Name implements Device.
func (Sequential) Name() string { return "sequential" }

// Blocks implements Device.
func (Sequential) Blocks() int { return 1 }

// Map implements Device.
func (Sequential) Map(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// MapBlocks implements BlockDevice: block-major, thread order.
func (Sequential) MapBlocks(nBlocks, threads int, kernel func(block, thread int)) {
	for b := 0; b < nBlocks; b++ {
		for t := 0; t < threads; t++ {
			kernel(b, t)
		}
	}
}

// Parallel runs blocks across a goroutine pool, standing in for the GPU's
// multiprocessors. It parallelizes the outer level only: each block's
// threads run sequentially on the worker that owns the block, so a batch
// narrower than the pool leaves workers idle (the state-only-parallel
// baseline the narrow-batch speedup series compares against).
type Parallel struct {
	// NumBlocks is the number of worker goroutines; 0 means GOMAXPROCS.
	NumBlocks int
}

// Name implements Device.
func (p Parallel) Name() string { return fmt.Sprintf("parallel-%d", p.blocks()) }

// Blocks implements Device.
func (p Parallel) Blocks() int { return p.blocks() }

func (p Parallel) blocks() int {
	if p.NumBlocks > 0 {
		return p.NumBlocks
	}
	return runtime.GOMAXPROCS(0)
}

// Map implements Device: work items are distributed to workers via a shared
// index channel (block scheduling); there is no cross-block communication,
// matching the GPU implementation principle of §5.2.
func (p Parallel) Map(n int, fn func(i int)) {
	workers := p.blocks()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// MapBlocks implements BlockDevice with outer-level parallelism only.
func (p Parallel) MapBlocks(nBlocks, threads int, kernel func(block, thread int)) {
	p.Map(nBlocks, func(b int) {
		for t := 0; t < threads; t++ {
			kernel(b, t)
		}
	})
}

// TwoLevel is the full block/thread device of §5.2-5.3: states are blocks,
// Monte-Carlo iterations are threads within a block, and the worker pool
// shares thread chunks across blocks. A wide batch degenerates to block
// scheduling (each worker drains whole blocks); a narrow batch splits each
// block's threads across many workers, so even a single-state evaluation
// uses the whole machine.
type TwoLevel struct {
	// NumWorkers is the goroutine pool size; 0 means GOMAXPROCS.
	NumWorkers int
	// MaxThreads caps how many thread chunks of one block may be in flight
	// concurrently — the iteration-parallelism knob. 0 means unbounded
	// (split blocks as finely as keeps all workers busy); 1 pins each block
	// to a single worker, reproducing the state-only-parallel baseline.
	MaxThreads int
}

// Name implements Device.
func (d TwoLevel) Name() string {
	if d.MaxThreads > 0 {
		return fmt.Sprintf("twolevel-%dx%d", d.workers(), d.MaxThreads)
	}
	return fmt.Sprintf("twolevel-%d", d.workers())
}

// Blocks implements Device.
func (d TwoLevel) Blocks() int { return d.workers() }

func (d TwoLevel) workers() int {
	if d.NumWorkers > 0 {
		return d.NumWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// Map implements Device (outer level only), for callers that have no
// per-thread decomposition.
func (d TwoLevel) Map(n int, fn func(i int)) {
	Parallel{NumBlocks: d.workers()}.Map(n, fn)
}

// MapBlocks implements BlockDevice. Every block's threads are cut into
// chunks that never span blocks; workers pull chunks from a shared counter,
// so when the batch is narrower than the pool the surplus workers steal
// chunks from the blocks that remain — the cross-block work-sharing a real
// GPU gets from oversubscribing its multiprocessors.
func (d TwoLevel) MapBlocks(nBlocks, threads int, kernel func(block, thread int)) {
	if nBlocks <= 0 || threads <= 0 {
		return
	}
	workers := d.workers()
	if total := nBlocks * threads; workers > total {
		workers = total
	}
	if workers <= 1 {
		Sequential{}.MapBlocks(nBlocks, threads, kernel)
		return
	}
	// Aim for ~4 chunks per worker so stealing stays cheap but no worker
	// idles behind one long chunk; never split finer than MaxThreads allows.
	chunksPerBlock := (4*workers + nBlocks - 1) / nBlocks
	if chunksPerBlock > threads {
		chunksPerBlock = threads
	}
	if d.MaxThreads > 0 && chunksPerBlock > d.MaxThreads {
		chunksPerBlock = d.MaxThreads
	}
	if chunksPerBlock < 1 {
		chunksPerBlock = 1
	}
	chunk := (threads + chunksPerBlock - 1) / chunksPerBlock
	chunksPerBlock = (threads + chunk - 1) / chunk // tight after rounding
	units := nBlocks * chunksPerBlock

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				u := int(next.Add(1)) - 1
				if u >= units {
					return
				}
				b := u / chunksPerBlock
				lo := (u % chunksPerBlock) * chunk
				hi := lo + chunk
				if hi > threads {
					hi = threads
				}
				for t := lo; t < hi; t++ {
					kernel(b, t)
				}
			}
		}()
	}
	wg.Wait()
}

// ReduceBlocks runs kernel(b, t, out) for every (block, thread) pair on the
// device — out being the thread's private width-sized slot — and folds each
// block's slots figure-wise in thread order: the deterministic software
// analogue of the paper's shared-memory block reduction (§5.2: "store the
// temporary results of each thread into the shared memory for fast
// synchronization"). Because the fold order is canonical, the returned sums
// are bit-identical on every device regardless of how the work was
// scheduled.
//
// The returned slice is block-major (sums[b*width+w]); errs[b] is block b's
// first error in thread order, or nil. A block with an error still has its
// remaining threads run (threads are independent); its sums are meaningless.
func ReduceBlocks(d BlockDevice, nBlocks, threads, width int, kernel func(block, thread int, out []float64) error) (sums []float64, errs []error) {
	sums = make([]float64, nBlocks*width)
	errs = make([]error, nBlocks)
	if nBlocks <= 0 || threads <= 0 || width <= 0 {
		return sums, errs
	}
	slots := make([]float64, nBlocks*threads*width)
	slotErrs := make([]error, nBlocks*threads)
	d.MapBlocks(nBlocks, threads, func(b, t int) {
		off := (b*threads + t) * width
		slotErrs[b*threads+t] = kernel(b, t, slots[off:off+width:off+width])
	})
	for b := 0; b < nBlocks; b++ {
		for t := 0; t < threads; t++ {
			if err := slotErrs[b*threads+t]; err != nil {
				errs[b] = err
				break
			}
		}
		if errs[b] != nil {
			continue
		}
		for t := 0; t < threads; t++ {
			off := (b*threads + t) * width
			for w := 0; w < width; w++ {
				sums[b*width+w] += slots[off+w]
			}
		}
	}
	return sums, errs
}

// ReduceBlocksRange is ReduceBlocks restricted to the thread range [lo, hi):
// it runs kernel(b, t, out) for every block b and thread t in the range and
// folds each block's slots into the caller's running sums — sums[b*width+w],
// len nBlocks*width — one thread at a time in ascending thread order.
// Because the fold appends world by world to whatever the sums already hold,
// chaining ranges [0,a), [a,b), ... yields sums bit-identical to a single
// [0, n) ReduceBlocks: float accumulation happens in the same order either
// way. This is the execution primitive of adaptive (chunked) evaluation,
// where a batch of states advances through world chunks and states leave the
// batch as their verdicts are decided.
//
// errs[b] is block b's first error in thread order within this range, or nil;
// a block with an error still has its remaining threads run, and its sums are
// left untouched (not folded). The returned slots slice holds the range's raw
// per-thread figures, laid out slots[(b*(hi-lo)+(t-lo))*width+w], for callers
// that need per-world figures beyond the sums (racing's paired differences);
// it is freshly allocated each call and owned by the caller.
func ReduceBlocksRange(d BlockDevice, nBlocks, lo, hi, width int, sums []float64, kernel func(block, thread int, out []float64) error) (slots []float64, errs []error) {
	errs = make([]error, nBlocks)
	if nBlocks <= 0 || hi <= lo || width <= 0 {
		return nil, errs
	}
	span := hi - lo
	slots = make([]float64, nBlocks*span*width)
	slotErrs := make([]error, nBlocks*span)
	d.MapBlocks(nBlocks, span, func(b, t int) {
		off := (b*span + t) * width
		slotErrs[b*span+t] = kernel(b, lo+t, slots[off:off+width:off+width])
	})
	for b := 0; b < nBlocks; b++ {
		for t := 0; t < span; t++ {
			if err := slotErrs[b*span+t]; err != nil {
				errs[b] = err
				break
			}
		}
		if errs[b] != nil {
			continue
		}
		for t := 0; t < span; t++ {
			off := (b*span + t) * width
			for w := 0; w < width; w++ {
				sums[b*width+w] += slots[off+w]
			}
		}
	}
	return slots, errs
}

// Reduce runs fn(i) for every i in [0, n) on the device and sums the results
// in index order — a single-block ReduceBlocks.
func Reduce(d BlockDevice, n int, fn func(i int) float64) float64 {
	sums, _ := ReduceBlocks(d, 1, n, 1, func(_, t int, out []float64) error {
		out[0] = fn(t)
		return nil
	})
	return sums[0]
}
