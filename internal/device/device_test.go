package device

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSequentialMapVisitsAllInOrder(t *testing.T) {
	var got []int
	Sequential{}.Map(5, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("order %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("visited %d", len(got))
	}
}

func TestParallelMapVisitsAllExactlyOnce(t *testing.T) {
	const n = 1000
	var counts [n]int32
	Parallel{NumBlocks: 8}.Map(n, func(i int) {
		atomic.AddInt32(&counts[i], 1)
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("item %d visited %d times", i, c)
		}
	}
}

func TestParallelDegeneratesGracefully(t *testing.T) {
	// n < workers and n == 0.
	var visits int32
	Parallel{NumBlocks: 16}.Map(3, func(i int) { atomic.AddInt32(&visits, 1) })
	if visits != 3 {
		t.Fatalf("visits %d", visits)
	}
	Parallel{NumBlocks: 16}.Map(0, func(i int) { t.Fatal("should not run") })
	Parallel{NumBlocks: 1}.Map(2, func(i int) { atomic.AddInt32(&visits, 1) })
	if visits != 5 {
		t.Fatalf("visits %d", visits)
	}
}

func TestBlocksAndNames(t *testing.T) {
	if (Sequential{}).Blocks() != 1 || (Sequential{}).Name() != "sequential" {
		t.Error("sequential identity wrong")
	}
	p := Parallel{NumBlocks: 6}
	if p.Blocks() != 6 {
		t.Errorf("blocks %d", p.Blocks())
	}
	if p.Name() != "parallel-6" {
		t.Errorf("name %s", p.Name())
	}
	if (Parallel{}).Blocks() < 1 {
		t.Error("default blocks < 1")
	}
}

func TestReduceMatchesSequentialSum(t *testing.T) {
	f := func(vals []float64) bool {
		n := len(vals)
		fn := func(i int) float64 { return vals[i] }
		seq := Reduce(Sequential{}, n, fn)
		par := Reduce(Parallel{NumBlocks: 4}, n, fn)
		return seq == par
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The parallel device must produce identical results to the sequential one
// when blocks are independent — the determinism contract the solver relies
// on.
func TestParallelDeterminism(t *testing.T) {
	const n = 200
	run := func(d Device) [n]float64 {
		var out [n]float64
		d.Map(n, func(i int) { out[i] = float64(i*i) * 0.5 })
		return out
	}
	if run(Sequential{}) != run(Parallel{NumBlocks: 7}) {
		t.Error("devices disagree")
	}
}

// MapBlocks must call the kernel exactly once per (block, thread) pair, on
// every implementation and for shapes narrower and wider than the pool.
func TestMapBlocksVisitsEveryPairExactlyOnce(t *testing.T) {
	devices := []BlockDevice{
		Sequential{},
		Parallel{NumBlocks: 5},
		TwoLevel{NumWorkers: 5},
		TwoLevel{NumWorkers: 5, MaxThreads: 1},
		TwoLevel{NumWorkers: 5, MaxThreads: 3},
	}
	shapes := [][2]int{{1, 100}, {2, 37}, {13, 1}, {8, 8}, {40, 3}, {3, 0}, {0, 3}}
	for _, d := range devices {
		for _, sh := range shapes {
			nb, th := sh[0], sh[1]
			counts := make([]int32, nb*th)
			d.MapBlocks(nb, th, func(b, tt int) {
				atomic.AddInt32(&counts[b*th+tt], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("%s %dx%d: pair %d visited %d times", d.Name(), nb, th, i, c)
				}
			}
		}
	}
}

// MaxThreads=1 pins each block to one chunk: the kernel must then see each
// block's threads strictly in order (the state-only-parallel baseline).
func TestTwoLevelMaxThreadsOnePinsBlocks(t *testing.T) {
	const nb, th = 6, 50
	last := make([]int32, nb)
	for i := range last {
		last[i] = -1
	}
	TwoLevel{NumWorkers: 4, MaxThreads: 1}.MapBlocks(nb, th, func(b, tt int) {
		if prev := atomic.LoadInt32(&last[b]); int32(tt) != prev+1 {
			t.Errorf("block %d: thread %d after %d", b, tt, prev)
		}
		atomic.StoreInt32(&last[b], int32(tt))
	})
	for b, l := range last {
		if l != th-1 {
			t.Errorf("block %d stopped at thread %d", b, l)
		}
	}
}

func TestTwoLevelNames(t *testing.T) {
	if got := (TwoLevel{NumWorkers: 4}).Name(); got != "twolevel-4" {
		t.Errorf("name %s", got)
	}
	if got := (TwoLevel{NumWorkers: 4, MaxThreads: 2}).Name(); got != "twolevel-4x2" {
		t.Errorf("name %s", got)
	}
	if (TwoLevel{}).Blocks() < 1 {
		t.Error("default workers < 1")
	}
}

// ReduceBlocks must fold in canonical thread order: identical sums — bit for
// bit — on every device, even though float addition does not commute.
func TestReduceBlocksBitIdenticalAcrossDevices(t *testing.T) {
	const nb, th, width = 7, 93, 3
	kernel := func(b, tt int, out []float64) error {
		// Values at wildly different magnitudes so any reordering of the
		// fold would change the rounded sums.
		x := float64(b+1) * float64(tt+1)
		out[0] = x * 1e-17
		out[1] = x * 1e17
		out[2] = 1 / x
		return nil
	}
	ref, _ := ReduceBlocks(Sequential{}, nb, th, width, kernel)
	for _, d := range []BlockDevice{Parallel{NumBlocks: 5}, TwoLevel{NumWorkers: 5}, TwoLevel{NumWorkers: 3, MaxThreads: 2}} {
		for rep := 0; rep < 10; rep++ {
			got, errs := ReduceBlocks(d, nb, th, width, kernel)
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%s: sums[%d] = %v, want %v", d.Name(), i, got[i], ref[i])
				}
			}
		}
	}
}

// An error in one block must be attributed to that block alone — first in
// thread order — while other blocks reduce normally.
func TestReduceBlocksErrorAttribution(t *testing.T) {
	const nb, th = 4, 20
	// Block 1 fails at threads 3 and 7; block 3 at thread 0.
	kernel := func(b, tt int, out []float64) error {
		if b == 1 && (tt == 7 || tt == 3) {
			return errBoom{tt}
		}
		if b == 3 && tt == 0 {
			return errBoom{tt}
		}
		out[0] = 1
		return nil
	}
	sums, errs := ReduceBlocks(TwoLevel{NumWorkers: 4}, nb, th, 1, kernel)
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("healthy blocks got errors: %v %v", errs[0], errs[2])
	}
	if e, ok := errs[1].(errBoom); !ok || e.t != 3 {
		t.Errorf("block 1: want first-in-thread-order error at t=3, got %v", errs[1])
	}
	if e, ok := errs[3].(errBoom); !ok || e.t != 0 {
		t.Errorf("block 3: want error at t=0, got %v", errs[3])
	}
	for _, b := range []int{0, 2} {
		if sums[b] != th {
			t.Errorf("block %d sum %v, want %d", b, sums[b], th)
		}
	}
}

type errBoom struct{ t int }

func (e errBoom) Error() string { return "boom" }

// TestReduceBlocksRangeChainsBitIdentical verifies the chunked-fold contract:
// accumulating ranges [0,a), [a,b), ... into running sums is bit-identical to
// one full ReduceBlocks, on every device, and the returned slots carry the
// raw per-thread figures of the range.
func TestReduceBlocksRangeChainsBitIdentical(t *testing.T) {
	const nb, th, width = 5, 97, 2
	kernel := func(b, tt int, out []float64) error {
		x := float64(b+1) * float64(tt+1)
		out[0] = x * 1e-17
		out[1] = 1 / x
		return nil
	}
	ref, _ := ReduceBlocks(Sequential{}, nb, th, width, kernel)
	for _, d := range []BlockDevice{Sequential{}, Parallel{NumBlocks: 4}, TwoLevel{NumWorkers: 5}} {
		for _, bounds := range [][]int{{th}, {16, 48, th}, {1, 2, 3, 50, th}} {
			sums := make([]float64, nb*width)
			lo := 0
			for _, hi := range bounds {
				slots, errs := ReduceBlocksRange(d, nb, lo, hi, width, sums, kernel)
				for _, err := range errs {
					if err != nil {
						t.Fatal(err)
					}
				}
				// Spot-check slots layout against the kernel directly.
				span := hi - lo
				for b := 0; b < nb; b++ {
					tt := lo + span/2
					var want [width]float64
					_ = kernel(b, tt, want[:])
					off := (b*span + (tt - lo)) * width
					for w := 0; w < width; w++ {
						if slots[off+w] != want[w] {
							t.Fatalf("%s: slots[b=%d t=%d w=%d] = %v, want %v",
								d.Name(), b, tt, w, slots[off+w], want[w])
						}
					}
				}
				lo = hi
			}
			for i := range ref {
				if sums[i] != ref[i] {
					t.Fatalf("%s bounds %v: sums[%d] = %v, want %v", d.Name(), bounds, i, sums[i], ref[i])
				}
			}
		}
	}
}

// TestReduceBlocksRangeErrorSkipsFold: an errored block's sums stay
// untouched for the range, and the first-in-thread-order error is reported.
func TestReduceBlocksRangeErrorSkipsFold(t *testing.T) {
	kernel := func(b, tt int, out []float64) error {
		if b == 1 && tt >= 10 {
			return errBoom{tt}
		}
		out[0] = 1
		return nil
	}
	sums := make([]float64, 3)
	_, errs := ReduceBlocksRange(TwoLevel{NumWorkers: 3}, 3, 0, 8, 1, sums, kernel)
	for b, err := range errs {
		if err != nil {
			t.Fatalf("unexpected error in clean range, block %d: %v", b, err)
		}
	}
	_, errs = ReduceBlocksRange(TwoLevel{NumWorkers: 3}, 3, 8, 20, 1, sums, kernel)
	if e, ok := errs[1].(errBoom); !ok || e.t != 10 {
		t.Fatalf("block 1: want first error at t=10, got %v", errs[1])
	}
	if sums[0] != 20 || sums[2] != 20 {
		t.Fatalf("healthy block sums %v, want 20", sums)
	}
	if sums[1] != 8 {
		t.Fatalf("errored block folded anyway: sum %v, want 8 (first range only)", sums[1])
	}
}
