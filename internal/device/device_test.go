package device

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSequentialMapVisitsAllInOrder(t *testing.T) {
	var got []int
	Sequential{}.Map(5, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("order %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("visited %d", len(got))
	}
}

func TestParallelMapVisitsAllExactlyOnce(t *testing.T) {
	const n = 1000
	var counts [n]int32
	Parallel{NumBlocks: 8}.Map(n, func(i int) {
		atomic.AddInt32(&counts[i], 1)
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("item %d visited %d times", i, c)
		}
	}
}

func TestParallelDegeneratesGracefully(t *testing.T) {
	// n < workers and n == 0.
	var visits int32
	Parallel{NumBlocks: 16}.Map(3, func(i int) { atomic.AddInt32(&visits, 1) })
	if visits != 3 {
		t.Fatalf("visits %d", visits)
	}
	Parallel{NumBlocks: 16}.Map(0, func(i int) { t.Fatal("should not run") })
	Parallel{NumBlocks: 1}.Map(2, func(i int) { atomic.AddInt32(&visits, 1) })
	if visits != 5 {
		t.Fatalf("visits %d", visits)
	}
}

func TestBlocksAndNames(t *testing.T) {
	if (Sequential{}).Blocks() != 1 || (Sequential{}).Name() != "sequential" {
		t.Error("sequential identity wrong")
	}
	p := Parallel{NumBlocks: 6}
	if p.Blocks() != 6 {
		t.Errorf("blocks %d", p.Blocks())
	}
	if p.Name() != "parallel-6" {
		t.Errorf("name %s", p.Name())
	}
	if (Parallel{}).Blocks() < 1 {
		t.Error("default blocks < 1")
	}
}

func TestReduceMatchesSequentialSum(t *testing.T) {
	f := func(vals []float64) bool {
		n := len(vals)
		fn := func(i int) float64 { return vals[i] }
		seq := Reduce(Sequential{}, n, fn)
		par := Reduce(Parallel{NumBlocks: 4}, n, fn)
		return seq == par
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The parallel device must produce identical results to the sequential one
// when blocks are independent — the determinism contract the solver relies
// on.
func TestParallelDeterminism(t *testing.T) {
	const n = 200
	run := func(d Device) [n]float64 {
		var out [n]float64
		d.Map(n, func(i int) { out[i] = float64(i*i) * 0.5 })
		return out
	}
	if run(Sequential{}) != run(Parallel{NumBlocks: 7}) {
		t.Error("devices disagree")
	}
}
