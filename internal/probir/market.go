package probir

import (
	"fmt"
	"math"
	"math/rand"

	"deco/internal/cloud"
	"deco/internal/dag"
	"deco/internal/estimate"
	"deco/internal/wlog"
)

// This file adds market semantics to the CRN evaluation core: a table column
// may be a spot offering, whose per-world cost is a random variable driven by
// a clearing-price draw and a Poisson revocation hazard instead of the
// deterministic hourly price. All market randomness is drawn at row-fill time
// from the same per-(task, column) CRN stream as the duration draws, so cost
// and makespan stay paired world by world and every determinism contract
// built on the duration matrix — delta evaluation, decisive-world ordering,
// adaptive stopping, the eval cache — composes unchanged.

// MarketSpec describes the pricing market of one table column. The zero
// value is the degenerate on-demand market: deterministic price, no
// revocations.
type MarketSpec struct {
	// Spot marks the column as a preemptible offering.
	Spot bool
	// PriceMean and PriceSigma define the clearing-price process: a world's
	// hourly price is PriceMean·(1+PriceSigma·z) with z standard normal,
	// floored at cloud.SpotPriceFloorFrac of the mean.
	PriceMean  float64
	PriceSigma float64
	// RevocationsPerHour is the Poisson revocation hazard λ: the time until
	// the instance is reclaimed is Exponential(λ) hours from acquisition.
	RevocationsPerHour float64
	// OnDemandUSD is the hourly on-demand price of the underlying type — the
	// rate the full rerun pays after a revocation.
	OnDemandUSD float64
}

// NewNativeMarkets builds a native evaluator whose table columns carry
// market semantics. markets must be nil (all on-demand — equivalent to
// NewNative) or one entry per table column. With any spot column present,
// the cost of EVERY state becomes a per-world sampled figure: GoalCost turns
// into expected-cost-under-revocation, and percentile budget constraints
// bound cost-at-risk. Mean-notion budgets keep comparing the deterministic
// Eq. 1-2 anchor (mean durations at mean prices, no revocation reruns), so
// their verdict stays world-free.
func NewNativeMarkets(w *dag.Workflow, tbl *estimate.Table, prices []float64, markets []MarketSpec, goal GoalKind, cons []wlog.Constraint, iters int) (*Native, error) {
	n, err := NewNative(w, tbl, prices, goal, cons, iters)
	if err != nil {
		return nil, err
	}
	if markets == nil {
		return n, nil
	}
	if len(markets) != len(tbl.Types) {
		return nil, fmt.Errorf("probir: %d markets for %d types", len(markets), len(tbl.Types))
	}
	for j, m := range markets {
		if !m.Spot {
			continue
		}
		if m.PriceMean <= 0 {
			return nil, fmt.Errorf("probir: spot column %s has non-positive mean price %v", tbl.Types[j], m.PriceMean)
		}
		if m.PriceSigma < 0 {
			return nil, fmt.Errorf("probir: spot column %s has negative price sigma %v", tbl.Types[j], m.PriceSigma)
		}
		if m.RevocationsPerHour < 0 {
			return nil, fmt.Errorf("probir: spot column %s has negative revocation hazard %v", tbl.Types[j], m.RevocationsPerHour)
		}
		if m.OnDemandUSD <= 0 {
			return nil, fmt.Errorf("probir: spot column %s has non-positive on-demand rerun price %v", tbl.Types[j], m.OnDemandUSD)
		}
		n.hasSpot = true
	}
	n.Markets = markets
	return n, nil
}

// HasSpotMarkets reports whether any table column is a spot offering — the
// switch that turns cost into a sampled per-world figure.
func (n *Native) HasSpotMarkets() bool { return n.hasSpot }

// fillSpotRow fills one (task, spot column) row pair: row[it] is the
// effective duration of world it, costRow[it] its realized cost. Per world
// the stream is consumed in a fixed order — duration draw(s), revocation
// uniform, price normal — so the pair is a pure function of (program
// content, base seed, row index) like every other CRN row.
//
// Revocation semantics: the instance is reclaimed T ~ Exponential(λ) hours
// after acquisition. If the task outlives T, the attempt is lost — the spot
// market bills only the used T — and the task reruns in full on on-demand
// capacity of the same type, so the effective duration is T + d and the
// cost is the spot bill for T plus the on-demand bill for d. One revocation
// per task attempt: the rerun is on-demand and cannot be reclaimed again.
func fillSpotRow(td *estimate.TimeDist, m MarketSpec, rng *rand.Rand, row, costRow []float64) {
	floor := m.PriceMean * cloud.SpotPriceFloorFrac
	for it := range row {
		d := td.Sample(rng)
		u := rng.Float64()
		z := rng.NormFloat64()
		price := m.PriceMean * (1 + m.PriceSigma*z)
		if price < floor {
			price = floor
		}
		dur, cost := d, price*d/3600
		if m.RevocationsPerHour > 0 {
			tRev := -math.Log(1-u) * 3600 / m.RevocationsPerHour
			if tRev < d {
				dur = tRev + d
				cost = price*tRev/3600 + m.OnDemandUSD*d/3600
			}
		}
		row[it] = dur
		costRow[it] = cost
	}
}
