package probir

import "sort"

// This file implements decisive-world-first ordering: a per-world severity
// signal computed once per (program, base seed) that lets the adaptive
// evaluator run likely-violating worlds first. The exact worst-case stopping
// rule (package sample) bounds the final success probability over the FIXED
// finite world set, so it stays valid under any fixed permutation of that
// set — the permutation changes which prefix is seen, never the bound's
// soundness. Front-loading severe worlds means a near-boundary infeasible
// state meets its floor((1-pct)*N)+1 failing worlds in the first chunk
// instead of spread across all N, and a feasible state exhausts its few
// failing worlds early so the tail checkpoint at ceil(pct*N) can confirm it.
//
// The severity signal is the critical-path length over the CRN duration
// base, summed across every uniform configuration: severity[w] is the sum
// over instance types j of the makespan of world w with every task on type
// j. Duration rows are keyed by (task, type, iteration), so a mixed
// configuration's makespan reads one uniform configuration's draw per task —
// a world slow across the uniform sweeps is slow under any configuration.
// The signal depends only on (program content, base seed), never on the
// search state or device, so the resulting permutation — and with it every
// adaptive decision — is bit-identical across Sequential/Parallel/TwoLevel.

// WorldOrderer is an optional CRNEvaluator capability: a fixed
// decisive-world-first permutation of the Monte-Carlo worlds for one CRN
// base seed.
type WorldOrderer interface {
	// WorldOrder returns a permutation of [0, Worlds): position p holds the
	// p-th world to run, most severe first. The returned slice is shared and
	// read-only; nil means the evaluator has no useful ordering (no sampled
	// worlds).
	WorldOrder(base int64) []int32
}

// WorldOrder implements WorldOrderer: worlds sorted by descending severity
// (critical-path sum over the uniform configurations), ties broken by
// ascending world index. The permutation is computed once per compiled
// program and cached; computing it fills the program's full duration matrix,
// which doubles as a warm-up for the search that follows.
func (n *Native) WorldOrder(base int64) []int32 {
	if n.Iters <= 0 || !n.samplesWorlds() {
		return nil
	}
	return n.program(base).worldOrder()
}

// samplesWorlds reports whether evaluation runs any Monte-Carlo worlds at
// all (a sampled makespan or a sampled cost figure).
func (n *Native) samplesWorlds() bool {
	if n.needsMSSampling() || n.hasSpot {
		return true
	}
	for _, c := range n.Constraints {
		if c.Kind == "budget" && c.Percentile >= 0 {
			return true
		}
	}
	return false
}

// worldOrder computes and caches the program's severity permutation.
func (p *Program) worldOrder() []int32 {
	p.orderOnce.Do(func() {
		f := p.flat
		nt := f.Len()
		sev := make([]float64, p.iters)
		cfg := make([]int, nt)
		finish := make([]float64, nt)
		for j := 0; j < p.nTypes; j++ {
			for i := range cfg {
				cfg[i] = j
			}
			rows := p.Rows(cfg)
			for it := 0; it < p.iters; it++ {
				ms := 0.0
				for k, ti := range f.Order {
					start := 0.0
					for _, pa := range f.Parents[f.ParentStart[k]:f.ParentStart[k+1]] {
						if fp := finish[pa]; fp > start {
							start = fp
						}
					}
					end := start + rows[ti][it]
					finish[ti] = end
					if end > ms {
						ms = end
					}
				}
				sev[it] += ms
			}
		}
		order := make([]int32, p.iters)
		for i := range order {
			order[i] = int32(i)
		}
		sort.Slice(order, func(a, b int) bool {
			sa, sb := sev[order[a]], sev[order[b]]
			if sa != sb {
				return sa > sb
			}
			return order[a] < order[b]
		})
		p.order = order
	})
	return p.order
}
