package probir

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"deco/internal/cloud"
	"deco/internal/dag"
	"deco/internal/dist"
	"deco/internal/estimate"
	"deco/internal/wlog"
)

// schedProgram is Example 1 with parameterized deadline, minus imports
// (facts are installed by the evaluator).
func schedProgram(t *testing.T, deadline string) *wlog.Program {
	t.Helper()
	src := `
minimize Ct in totalcost(Ct).
T in maxtime(Path,T) satisfies ` + deadline + `.
configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).

path(X,Y,Y,Tp) :- edge(X,Y), exetime(X,Vid,T), configs(X,Vid,Con), Con==1, Tp is T.
path(X,Y,Z,Tp) :- edge(X,Z), Z\==Y, path(Z,Y,Z2,T1), exetime(X,Vid,T),
  configs(X,Vid,Con), Con==1, Tp is T+T1.
maxtime(Path,T) :- setof([Z,T1], path(root,tail,Z,T1), Set), max(Set, [Path,T]).
cost(Tid,Vid,C) :- price(Vid,Up), exetime(Tid,Vid,T), configs(Tid,Vid,Con), C is T*Up*Con.
totalcost(Ct) :- findall(C, cost(Tid,Vid,C), Bag), sum(Bag, Ct).
`
	prog, err := wlog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// fixture builds a diamond workflow, catalog prices, and an estimate table.
func fixture(t testing.TB, cpuOnly bool) (*dag.Workflow, *estimate.Table, []float64) {
	t.Helper()
	w := dag.New("diamond")
	mb := 200.0
	if cpuOnly {
		mb = 0
	}
	mk := func(id string, cpu float64) *dag.Task {
		task := &dag.Task{ID: id, CPUSeconds: cpu}
		if mb > 0 {
			task.Inputs = []dag.File{{Name: "in_" + id, SizeMB: mb}}
			task.Outputs = []dag.File{{Name: "out_" + id, SizeMB: mb / 2}}
		}
		return task
	}
	_ = w.AddTask(mk("a", 100))
	_ = w.AddTask(mk("b", 300))
	_ = w.AddTask(mk("c", 500))
	_ = w.AddTask(mk("d", 200))
	_ = w.AddEdge("a", "b")
	_ = w.AddEdge("a", "c")
	_ = w.AddEdge("b", "d")
	_ = w.AddEdge("c", "d")

	cat := cloud.DefaultCatalog()
	md, err := cloud.MetadataFromTruth(cat, 15, 5000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := estimate.New(cat, md).BuildTable(w)
	if err != nil {
		t.Fatal(err)
	}
	us, _ := cat.Region(cloud.USEast)
	prices := make([]float64, len(tbl.Types))
	for j, name := range tbl.Types {
		prices[j] = us.PricePerHour[name]
	}
	return w, tbl, prices
}

func TestNativeMeanCostMonotoneInTypes(t *testing.T) {
	w, tbl, prices := fixture(t, true)
	n, err := NewNative(w, tbl, prices, GoalCost, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	// With m1 pricing the $/ECU ratio is nearly constant, so CPU-bound cost
	// is almost type-independent — the economics of the paper's tradeoff live
	// in I/O, which larger types barely speed up while costing 8x.
	costSmall, err := n.MeanCost([]int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	costXL, err := n.MeanCost([]int{3, 3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(costSmall, costXL) > 0.02 {
		t.Errorf("CPU-bound cost should be near-flat: small %v vs xlarge %v", costSmall, costXL)
	}
	// Exact check: 1100 CPU-s on small at 0.044/h.
	want := 1100.0 / 3600 * 0.044
	if math.Abs(costSmall-want) > 1e-12 {
		t.Errorf("cost %v, want %v", costSmall, want)
	}

	// I/O-heavy workloads make larger types clearly more expensive (Fig 1).
	wIO, tblIO, pricesIO := fixture(t, false)
	nio, err := NewNative(wIO, tblIO, pricesIO, GoalCost, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	ioSmall, _ := nio.MeanCost([]int{0, 0, 0, 0})
	ioXL, _ := nio.MeanCost([]int{3, 3, 3, 3})
	if ioXL <= ioSmall {
		t.Errorf("I/O-heavy cost on xlarge %v should exceed small %v", ioXL, ioSmall)
	}
}

func TestNativeDeadlineFeasibility(t *testing.T) {
	w, tbl, prices := fixture(t, true)
	// CPU-only diamond on m1.small: makespan = 100+500+200 = 800 exactly.
	mk := func(bound float64, pct float64) *Evaluation {
		cons := []wlog.Constraint{{Kind: "deadline", Percentile: pct, Bound: bound}}
		n, err := NewNative(w, tbl, prices, GoalCost, cons, 50)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := n.Evaluate([]int{0, 0, 0, 0}, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	if ev := mk(800, 0.95); !ev.Feasible || ev.ConsProb[0] != 1 {
		t.Errorf("deadline exactly at makespan should hold: %+v", ev)
	}
	if ev := mk(799, 0.95); ev.Feasible {
		t.Errorf("deadline below makespan should fail: %+v", ev)
	}
	// Deterministic (mean) notion.
	if ev := mk(800, -1); !ev.Feasible {
		t.Errorf("mean notion at bound should hold: %+v", ev)
	}
}

func TestNativeProbabilisticDeadline(t *testing.T) {
	w, tbl, prices := fixture(t, false) // stochastic I/O
	// Pin the deadline at the empirical 60th percentile of the makespan
	// distribution (sampled through the map-based adapter APIs, independent
	// of the CRN core): a 40% requirement must pass, a 95% must fail.
	r := rand.New(rand.NewSource(3))
	samples := make([]float64, 2000)
	config := []int{0, 0, 0, 0}
	cfgMap := map[string]int{"a": 0, "b": 0, "c": 0, "d": 0}
	for i := range samples {
		durs, err := tbl.SampleDurations(cfgMap, r)
		if err != nil {
			t.Fatal(err)
		}
		if samples[i], _, err = w.Makespan(durs); err != nil {
			t.Fatal(err)
		}
	}
	e := dist.NewEmpirical(samples)
	deadline := e.Quantile(0.60)

	mk := func(pct float64) *Evaluation {
		cons := []wlog.Constraint{{Kind: "deadline", Percentile: pct, Bound: deadline}}
		n, err := NewNative(w, tbl, prices, GoalCost, cons, 1000)
		if err != nil {
			t.Fatal(err)
		}
		out, err := n.Evaluate(config, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	loose := mk(0.40)
	tight := mk(0.95)
	if !loose.Feasible {
		t.Errorf("40%% requirement should hold at the 60th percentile: %+v", loose)
	}
	if tight.Feasible {
		t.Errorf("95%% requirement should fail at the 60th percentile: %+v", tight)
	}
	if loose.ConsProb[0] <= 0.45 || loose.ConsProb[0] >= 0.75 {
		t.Errorf("satisfaction probability %v should be near 0.6", loose.ConsProb[0])
	}
}

func TestNativeBudgetConstraint(t *testing.T) {
	w, tbl, prices := fixture(t, true)
	cost := 1100.0 / 3600 * 0.044
	mk := func(bound, pct float64) bool {
		cons := []wlog.Constraint{{Kind: "budget", Percentile: pct, Bound: bound}}
		n, err := NewNative(w, tbl, prices, GoalCost, cons, 50)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := n.Evaluate([]int{0, 0, 0, 0}, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		return ev.Feasible
	}
	if !mk(cost+1e-9, 0.95) {
		t.Error("budget above cost should hold")
	}
	if mk(cost*0.9, 0.95) {
		t.Error("budget below cost should fail")
	}
	if !mk(cost+1e-9, -1) || mk(cost*0.9, -1) {
		t.Error("mean-notion budget wrong")
	}
}

func TestNativeValidation(t *testing.T) {
	w, tbl, prices := fixture(t, true)
	if _, err := NewNative(w, tbl, prices, GoalCost, nil, 0); err == nil {
		t.Error("iters 0 accepted")
	}
	if _, err := NewNative(w, tbl, prices[:2], GoalCost, nil, 10); err == nil {
		t.Error("price length mismatch accepted")
	}
	badCons := []wlog.Constraint{{Kind: "speed", Percentile: 0.9, Bound: 1}}
	if _, err := NewNative(w, tbl, prices, GoalCost, badCons, 10); err == nil {
		t.Error("bad constraint kind accepted")
	}
	n, _ := NewNative(w, tbl, prices, GoalCost, nil, 10)
	if _, err := n.Evaluate([]int{0}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("short config accepted")
	}
	if _, err := n.Evaluate([]int{9, 9, 9, 9}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("out-of-range type accepted")
	}
}

func TestPrologEvaluatorDeterministicAgreesExactly(t *testing.T) {
	w, tbl, prices := fixture(t, true) // CPU-only: no randomness
	prog := schedProgram(t, "deadline(95%,10h)")
	pe, err := NewProlog(w, tbl, prices, prog, 3)
	if err != nil {
		t.Fatal(err)
	}
	ne, err := NewNative(w, tbl, prices, GoalCost,
		[]wlog.Constraint{{Kind: "deadline", Percentile: 0.95, Bound: 36000}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	config := []int{0, 1, 2, 3}
	pv, err := pe.Evaluate(config, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	nv, err := ne.Evaluate(config, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pv.Value-nv.Value) > 1e-9 {
		t.Errorf("prolog cost %v vs native %v", pv.Value, nv.Value)
	}
	if pv.Feasible != nv.Feasible {
		t.Errorf("feasibility disagrees: %v vs %v", pv.Feasible, nv.Feasible)
	}
}

// The headline equivalence property: on the stochastic fixture the Prolog
// interpretation of Example 1 converges to the native evaluator's answers.
func TestPrologNativeEquivalenceStochastic(t *testing.T) {
	if testing.Short() {
		t.Skip("MC equivalence is slow")
	}
	w, tbl, prices := fixture(t, false)
	prog := schedProgram(t, "deadline(95%,10h)")
	pe, err := NewProlog(w, tbl, prices, prog, 300)
	if err != nil {
		t.Fatal(err)
	}
	ne, err := NewNative(w, tbl, prices, GoalCost,
		[]wlog.Constraint{{Kind: "deadline", Percentile: 0.95, Bound: 36000}}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for _, config := range [][]int{{0, 0, 0, 0}, {1, 2, 1, 3}, {3, 3, 3, 3}} {
		pv, err := pe.Evaluate(config, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		nv, err := ne.Evaluate(config, rand.New(rand.NewSource(10)))
		if err != nil {
			t.Fatal(err)
		}
		if relDiff(pv.Value, nv.Value) > 0.05 {
			t.Errorf("config %v: prolog cost %v vs native %v", config, pv.Value, nv.Value)
		}
		if pv.Feasible != nv.Feasible {
			t.Errorf("config %v: feasibility %v vs %v (probs %v vs %v)",
				config, pv.Feasible, nv.Feasible, pv.ConsProb, nv.ConsProb)
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

func TestPrologValidation(t *testing.T) {
	w, tbl, prices := fixture(t, true)
	prog := schedProgram(t, "deadline(95%,10h)")
	if _, err := NewProlog(w, tbl, prices, prog, 0); err == nil {
		t.Error("iters 0 accepted")
	}
	if _, err := NewProlog(w, tbl, prices[:1], prog, 5); err == nil {
		t.Error("price mismatch accepted")
	}
	noGoal := &wlog.Program{}
	if _, err := NewProlog(w, tbl, prices, noGoal, 5); err == nil {
		t.Error("program without goal accepted")
	}
	pe, _ := NewProlog(w, tbl, prices, prog, 5)
	if _, err := pe.Evaluate([]int{0}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("short config accepted")
	}
}

func TestTranslateRendersProbIR(t *testing.T) {
	w, tbl, _ := fixture(t, false)
	prog := schedProgram(t, "deadline(95%,10h)")
	rules, err := Translate(w, tbl, prog, 5, 500, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	// The deterministic rules come first with probability 1.
	if rules[0].Prob != 1 || !strings.Contains(rules[0].Clause, ":-") {
		t.Errorf("first rule %+v", rules[0])
	}
	// Probabilistic exetime facts exist and their masses sum to ~1 per
	// (task,type).
	sums := map[string]float64{}
	for _, r := range rules {
		if r.Prob < 1 || strings.HasPrefix(r.Clause, "exetime") {
			if strings.HasPrefix(r.Clause, "exetime") {
				key := r.Clause[:strings.LastIndex(r.Clause, ",")]
				sums[key] += r.Prob
			}
		}
	}
	if len(sums) == 0 {
		t.Fatal("no probabilistic facts emitted")
	}
	for k, s := range sums {
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("%s: bin masses sum to %v", k, s)
		}
	}
	if _, err := Translate(w, tbl, prog, 0, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Error("bins 0 accepted")
	}
}

func TestNativeMakespanGoal(t *testing.T) {
	w, tbl, prices := fixture(t, true)
	n, err := NewNative(w, tbl, prices, GoalMakespan, nil, 20)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := n.Evaluate([]int{0, 0, 0, 0}, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Value != 800 { // deterministic CPU-only critical path
		t.Errorf("makespan goal %v, want 800", ev.Value)
	}
	// xlarge divides by 8.
	ev, _ = n.Evaluate([]int{3, 3, 3, 3}, rand.New(rand.NewSource(12)))
	if ev.Value != 100 {
		t.Errorf("makespan on xlarge %v, want 100", ev.Value)
	}
}
