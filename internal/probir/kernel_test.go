package probir

import (
	"math/rand"
	"testing"

	"deco/internal/wlog"
)

// foldOutOfOrder runs a kernel's worlds in reverse order (as a concurrent
// device might) but folds the per-world figures canonically — the exact
// contract device.ReduceBlocks implements — and reduces.
func foldOutOfOrder(t *testing.T, k WorldKernel, base int64) *Evaluation {
	t.Helper()
	worlds, width := k.Worlds(), k.Width()
	slots := make([]float64, worlds*width)
	for it := worlds - 1; it >= 0; it-- {
		if err := k.Sample(it, WorldRNG(base, it), slots[it*width:(it+1)*width]); err != nil {
			t.Fatal(err)
		}
	}
	sums := make([]float64, width)
	for it := 0; it < worlds; it++ {
		for w := 0; w < width; w++ {
			sums[w] += slots[it*width+w]
		}
	}
	ev, err := k.Reduce(sums)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func assertBitIdentical(t *testing.T, got, want *Evaluation) {
	t.Helper()
	if got.Value != want.Value {
		t.Errorf("Value %v != %v", got.Value, want.Value)
	}
	if got.Feasible != want.Feasible {
		t.Errorf("Feasible %v != %v", got.Feasible, want.Feasible)
	}
	if got.Violation != want.Violation {
		t.Errorf("Violation %v != %v", got.Violation, want.Violation)
	}
	if len(got.ConsProb) != len(want.ConsProb) {
		t.Fatalf("ConsProb len %d != %d", len(got.ConsProb), len(want.ConsProb))
	}
	for i := range got.ConsProb {
		if got.ConsProb[i] != want.ConsProb[i] {
			t.Errorf("ConsProb[%d] %v != %v", i, got.ConsProb[i], want.ConsProb[i])
		}
	}
}

// The device path (kernels sampled in any order, sums folded canonically)
// must be bit-identical to Evaluate, for every native goal/constraint mix.
func TestNativeKernelMatchesEvaluateBitExact(t *testing.T) {
	w, tbl, prices := fixture(t, false)
	cases := []struct {
		name string
		goal GoalKind
		cons []wlog.Constraint
	}{
		{"makespan-probabilistic-deadline", GoalMakespan,
			[]wlog.Constraint{{Kind: "deadline", Percentile: 0.9, Bound: 2000}}},
		{"cost-deterministic-deadline", GoalCost,
			[]wlog.Constraint{{Kind: "deadline", Percentile: -1, Bound: 2000}}},
		{"cost-probabilistic-budget-and-deadline", GoalCost,
			[]wlog.Constraint{
				{Kind: "deadline", Percentile: 0.95, Bound: 1500},
				{Kind: "budget", Percentile: 0.9, Bound: 1.0},
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := NewNative(w, tbl, prices, tc.goal, tc.cons, 64)
			if err != nil {
				t.Fatal(err)
			}
			config := []int{0, 1, 2, 0}
			const seed = 42
			want, err := n.Evaluate(config, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			// Evaluate derives its CRN base by drawing from the rng; the
			// kernel path must reproduce it from an identical source.
			base := rand.New(rand.NewSource(seed)).Int63()
			k, err := n.CRNKernel(config, base)
			if err != nil {
				t.Fatal(err)
			}
			got := foldOutOfOrder(t, k, base)
			assertBitIdentical(t, got, want)
		})
	}
}

// Same contract for the Prolog-path evaluator.
func TestPrologKernelMatchesEvaluateBitExact(t *testing.T) {
	w, tbl, prices := fixture(t, false)
	prog := schedProgram(t, "deadline(90%,2000s)")
	p, err := NewProlog(w, tbl, prices, prog, 8)
	if err != nil {
		t.Fatal(err)
	}
	config := []int{1, 0, 2, 1}
	const seed = 7
	want, err := p.Evaluate(config, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	k, err := p.Kernel(config)
	if err != nil {
		t.Fatal(err)
	}
	base := rand.New(rand.NewSource(seed)).Int63()
	got := foldOutOfOrder(t, k, base)
	assertBitIdentical(t, got, want)
}

// Substreams must differ across iterations and across bases; the same
// (base, it) pair must reproduce its stream.
func TestWorldRNGSubstreams(t *testing.T) {
	seen := map[int64]bool{}
	for _, base := range []int64{0, 1, 1 << 40} {
		for it := 0; it < 100; it++ {
			s := worldSeed(base, it)
			if seen[s] {
				t.Fatalf("seed collision at base=%d it=%d", base, it)
			}
			seen[s] = true
		}
	}
	a, b := WorldRNG(9, 3), WorldRNG(9, 3)
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (base, it) not reproducible")
		}
	}
}
