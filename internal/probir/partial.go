package probir

import "fmt"

// This file extends the per-world kernel decomposition (kernel.go) with
// partial evaluation: finalizing a state's Evaluation from a prefix of its
// Monte-Carlo worlds. The adaptive evaluator in the solver runs worlds in
// chunks, consults sequential stopping rules on the running indicator sums,
// and stops a state as soon as its feasibility verdict is decided — which
// requires the kernel to (a) expose which figures are constraint indicators
// and what targets they face, and (b) reduce a world prefix into a sound,
// pessimistic Evaluation.

// PartialKernel is a WorldKernel whose evaluation can be finalized from a
// prefix of its worlds. All probir chunked execution folds worlds in
// ascending iteration order, so a prefix's figure sums are exactly the first
// worlds' contribution to the full sums; ReducePartial(sums, Worlds()) is
// bit-identical to Reduce(sums).
type PartialKernel interface {
	WorldKernel
	// Indicators returns the indicator figure index and target percentile of
	// every probabilistic (percentile-bounded) constraint. ok reports whether
	// the feasibility verdict is fully determined by those indicators plus
	// world-free deterministic checks; when false (e.g. a deterministic
	// deadline that compares the sampled mean makespan), partial evaluation
	// cannot decide feasibility early and the caller must run every world.
	Indicators() (idx []int, targets []float64, ok bool)
	// ValueFigure returns the figure index the goal value is reduced from, or
	// -1 when the goal value is world-free (deterministic, exact under any
	// prefix).
	ValueFigure() int
	// ReducePartial folds figure sums over the first seen worlds (accumulated
	// in ascending world order) into a pessimistic Evaluation: every unseen
	// world is assumed to violate every probabilistic constraint, so Feasible
	// is true only when the prefix alone proves every constraint probability,
	// and reported constraint probabilities are guaranteed lower bounds of
	// the full evaluation's. Sampled means (and a sampled goal value) are
	// estimated from the prefix.
	ReducePartial(sums []float64, seen int) (*Evaluation, error)
}

// Indicators implements PartialKernel. The verdict decomposes completely
// unless a constraint needs a sampled mean without an indicator — the
// deterministic-notion deadline (Percentile < 0), whose pass/fail depends on
// the mean makespan over all worlds. A deterministic-notion budget compares
// the world-free Eq. 1-2 mean cost and never blocks partial evaluation.
func (k *nativeKernel) Indicators() (idx []int, targets []float64, ok bool) {
	ok = true
	for ci, c := range k.n.Constraints {
		if c.Percentile >= 0 {
			idx = append(idx, k.indIdx[ci])
			targets = append(targets, c.Percentile)
		} else if c.Kind == "deadline" {
			ok = false
		}
	}
	return idx, targets, ok
}

// ValueFigure implements PartialKernel: the sampled mean makespan drives the
// GoalMakespan value; the GoalCost value is the deterministic mean cost —
// unless spot markets make cost itself a sampled figure, in which case the
// goal reduces from the realized-cost column.
func (k *nativeKernel) ValueFigure() int {
	if k.n.Goal == GoalMakespan {
		return k.msIdx
	}
	if k.n.Goal == GoalCost && k.n.hasSpot {
		return k.costIdx
	}
	return -1
}

// ReducePartial implements PartialKernel. It mirrors Reduce figure-for-figure
// with two denominators: constraint probabilities divide by the full world
// count (the pessimistic completion — unseen worlds fail), sampled means
// divide by the seen count (the natural estimate). At seen == Worlds() both
// denominators coincide with Reduce's and the result is bit-identical.
func (k *nativeKernel) ReducePartial(sums []float64, seen int) (*Evaluation, error) {
	n := k.n
	if seen <= 0 || seen > n.Iters {
		return nil, fmt.Errorf("probir: partial reduction over %d of %d worlds", seen, n.Iters)
	}
	iters := float64(n.Iters)
	fseen := float64(seen)
	ev := &Evaluation{Feasible: true, ConsProb: make([]float64, len(n.Constraints))}

	switch n.Goal {
	case GoalCost:
		if n.hasSpot {
			ev.Value = sums[k.costIdx] / fseen
		} else {
			ev.Value = k.meanCost
		}
	case GoalMakespan:
		ev.Value = sums[k.msIdx] / fseen
	default:
		return nil, fmt.Errorf("probir: unknown goal kind %d", n.Goal)
	}

	for ci, c := range n.Constraints {
		var prob, mean float64
		switch c.Kind {
		case "deadline":
			mean = sums[k.msIdx] / fseen
			if c.Percentile < 0 {
				if mean <= c.Bound {
					prob = 1
				}
			} else {
				prob = sums[k.indIdx[ci]] / iters
			}
		case "budget":
			if c.Percentile < 0 {
				mean = k.meanCost
				if mean <= c.Bound {
					prob = 1
				}
			} else {
				mean = sums[k.costIdx] / fseen
				prob = sums[k.indIdx[ci]] / iters
			}
		}
		ev.ConsProb[ci] = prob
		if c.Percentile < 0 {
			if prob < 1 {
				ev.Feasible = false
				if c.Bound > 0 {
					ev.Violation += (mean - c.Bound) / c.Bound
				} else {
					ev.Violation += mean
				}
			}
		} else if prob < c.Percentile {
			ev.Feasible = false
			ev.Violation += c.Percentile - prob
			if mean > c.Bound && c.Bound > 0 {
				ev.Violation += (mean - c.Bound) / c.Bound
			}
		}
	}
	return ev, nil
}

// RunCRNKernelRange executes worlds [lo, hi) of a CRN kernel sequentially,
// folding each world's figures into the caller's running sums in ascending
// iteration order — the chunk-resumable form of RunCRNKernel. Chaining
// ranges [0,a), [a,b), ... over the same sums yields bit-identical sums to a
// single [0, Worlds()) run, because float accumulation happens world by
// world in the same order either way.
func RunCRNKernelRange(k WorldKernel, sums []float64, lo, hi int) error {
	width := k.Width()
	if len(sums) != width {
		return fmt.Errorf("probir: range sums length %d, want %d", len(sums), width)
	}
	tmp := make([]float64, width)
	for it := lo; it < hi; it++ {
		for w := range tmp {
			tmp[w] = 0
		}
		if err := k.Sample(it, nil, tmp); err != nil {
			return err
		}
		for w := range tmp {
			sums[w] += tmp[w]
		}
	}
	return nil
}
