package probir

import (
	"sync"
	"testing"
)

// warmNative builds a small Native fixture for program-cache and Rows tests.
func warmNative(t testing.TB) *Native {
	t.Helper()
	w, tbl, prices := fixture(t, true)
	n, err := NewNative(w, tbl, prices, GoalCost, nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestRowsConcurrentWarm hammers Rows from many goroutines over configs that
// partially overlap, mixing warm reads with first fills. Under -race this
// fails if the lock-free fast path races the double-checked fill; the value
// checks fail if two racing fills ever publish different samples for one
// (task, type) row.
func TestRowsConcurrentWarm(t *testing.T) {
	n := warmNative(t)
	p := n.program(42)
	nTasks := n.W.Len()
	nTypes := n.NumTypes()

	configs := make([][]int, 8)
	for c := range configs {
		cfg := make([]int, nTasks)
		for i := range cfg {
			cfg[i] = (c + i) % nTypes
		}
		configs[c] = cfg
	}
	// Reference rows, filled single-threaded on an identical program.
	ref := n.program(43)
	refRows := make([][][]float64, len(configs))
	for c, cfg := range configs {
		refRows[c] = ref.Rows(cfg)
	}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				c := (g + rep) % len(configs)
				rows := p.Rows(configs[c])
				for i := range rows {
					if len(rows[i]) != p.iters {
						t.Errorf("row %d: len %d, want %d", i, len(rows[i]), p.iters)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Same base seed => every row must be bit-identical to the
	// single-threaded reference, however the concurrent fills interleaved.
	p2 := n.program(42)
	if p2 != p {
		t.Fatalf("program(42) returned a different Program after concurrent use")
	}
	for c, cfg := range configs {
		got := p.Rows(cfg)
		for i := range got {
			for it := range got[i] {
				if got[i][it] != refRows[c][i][it] {
					t.Fatalf("config %d task %d world %d: %v != reference %v",
						c, i, it, got[i][it], refRows[c][i][it])
				}
			}
		}
	}
}

// TestRowsSharedPointers verifies filled rows are shared: two Rows calls with
// the same (task, type) assignment hand out the same underlying slice, so
// repeat evaluations of a configuration do no sampling work.
func TestRowsSharedPointers(t *testing.T) {
	n := warmNative(t)
	p := n.program(7)
	cfg := make([]int, n.W.Len())
	a := p.Rows(cfg)
	b := p.Rows(cfg)
	for i := range a {
		if &a[i][0] != &b[i][0] {
			t.Fatalf("task %d: second Rows call returned a different backing row", i)
		}
	}
}

// TestProgramLRUEviction is the regression test for the random-eviction bug:
// filling the cache beyond maxPrograms must evict the least-recently-used
// base, and never a base that was just touched — a running search's program
// survives unrelated searches starting on the same Native.
func TestProgramLRUEviction(t *testing.T) {
	n := warmNative(t)

	first := n.program(0) // base 0 is the running search
	for b := int64(1); b < maxPrograms; b++ {
		n.program(b) // fill the cache: bases 0..maxPrograms-1
	}
	// Touch base 0 so it is the MRU; base 1 becomes the LRU.
	if got := n.program(0); got != first {
		t.Fatalf("base 0 rebuilt while cache below capacity")
	}
	old1 := n.program(1) // re-touch 1; now base 2 is LRU
	if len(n.progs) != maxPrograms {
		t.Fatalf("cache holds %d programs, want %d", len(n.progs), maxPrograms)
	}

	// Insert a fresh base at capacity: base 2 (the LRU) must go; 0 and 1
	// must survive with identical pointers.
	old2 := n.progs[2].p
	n.program(int64(maxPrograms))
	if _, ok := n.progs[2]; ok {
		t.Fatalf("LRU base 2 not evicted")
	}
	if got := n.program(0); got != first {
		t.Fatalf("MRU-adjacent base 0 was evicted (its Program was rebuilt)")
	}
	if got := n.program(1); got != old1 {
		t.Fatalf("recently used base 1 was evicted")
	}
	// Re-requesting the evicted base rebuilds it (a new Program).
	if got := n.program(2); got == old2 {
		t.Fatalf("evicted base 2 returned the stale Program pointer")
	}
}

// BenchmarkRowsWarmParallel measures the warm-path Rows throughput under
// parallelism: every row is pre-filled, so with the lock-free fast path the
// goroutines never serialize. Before the fix this benchmark collapsed onto a
// single global mutex.
func BenchmarkRowsWarmParallel(b *testing.B) {
	w, tbl, prices := fixture(b, true)
	n, err := NewNative(w, tbl, prices, GoalCost, nil, 100)
	if err != nil {
		b.Fatal(err)
	}
	p := n.program(1)
	cfg := make([]int, n.W.Len())
	p.Rows(cfg) // warm every row
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p.Rows(cfg)
		}
	})
}
