package probir

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"deco/internal/cloud"
	"deco/internal/dag"
	"deco/internal/estimate"
	"deco/internal/wlog"
)

// deltaFixture builds a random layered workflow with stochastic I/O (so
// per-world durations actually vary) and a Native with makespan-sampling
// constraints, the shape delta evaluation exists for.
func deltaFixture(t testing.TB, nTasks int, seed int64, goal GoalKind, cons []wlog.Constraint, iters int) *Native {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := dag.New("rand")
	id := func(i int) string { return fmt.Sprintf("t%02d", i) }
	for i := 0; i < nTasks; i++ {
		task := &dag.Task{ID: id(i), CPUSeconds: 50 + rng.Float64()*400}
		task.Inputs = []dag.File{{Name: "in_" + id(i), SizeMB: 50 + rng.Float64()*300}}
		task.Outputs = []dag.File{{Name: "out_" + id(i), SizeMB: 25 + rng.Float64()*150}}
		if err := w.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < nTasks; i++ {
		for p := 1 + rng.Intn(3); p > 0; p-- {
			if err := w.AddEdge(id(rng.Intn(i)), id(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	cat := cloud.DefaultCatalog()
	md, err := cloud.MetadataFromTruth(cat, 15, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := estimate.New(cat, md).BuildTable(w)
	if err != nil {
		t.Fatal(err)
	}
	us, _ := cat.Region(cloud.USEast)
	prices := make([]float64, len(tbl.Types))
	for j, name := range tbl.Types {
		prices[j] = us.PricePerHour[name]
	}
	n, err := NewNative(w, tbl, prices, goal, cons, iters)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// sameEval fails the test unless two evaluations are bitwise identical.
func sameEval(t *testing.T, step int, delta, full *Evaluation) {
	t.Helper()
	if delta.Value != full.Value || delta.Feasible != full.Feasible ||
		delta.Violation != full.Violation {
		t.Fatalf("step %d: delta %+v != full %+v", step, delta, full)
	}
	if len(delta.ConsProb) != len(full.ConsProb) {
		t.Fatalf("step %d: ConsProb lengths differ", step)
	}
	for ci := range delta.ConsProb {
		if delta.ConsProb[ci] != full.ConsProb[ci] {
			t.Fatalf("step %d: ConsProb[%d] delta %v != full %v",
				step, ci, delta.ConsProb[ci], full.ConsProb[ci])
		}
	}
}

// TestDeltaChainBitIdentical walks random mutation chains — each step
// reassigns one or two tasks — evaluating every step three ways: delta from
// the previous step's snapshot (so snapshots produced by delta kernels
// themselves parent further deltas), full CRN evaluation, and a capturing
// full evaluation. The delta evaluation and the delta-written snapshot must
// both be bit-identical to the full ones, under a makespan goal with
// probabilistic deadline and budget constraints (exercising the makespan,
// cost, and indicator figures at once).
func TestDeltaChainBitIdentical(t *testing.T) {
	cons := []wlog.Constraint{
		{Kind: "deadline", Percentile: 0.9, Bound: 2500},
		{Kind: "budget", Percentile: 0.8, Bound: 0.05},
	}
	n := deltaFixture(t, 30, 11, GoalMakespan, cons, 40)
	nTasks, nTypes := n.W.Len(), n.NumTypes()
	const base = int64(99)

	rng := rand.New(rand.NewSource(7))
	config := make([]int, nTasks)
	for i := range config {
		config[i] = rng.Intn(nTypes)
	}

	// Root of the chain: full evaluation with capture.
	snap := n.NewSnapshot()
	if snap == nil {
		t.Fatal("NewSnapshot returned nil for a makespan-sampling Native")
	}
	k, err := n.CRNKernelSnap(config, base, snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCRNKernel(k); err != nil {
		t.Fatal(err)
	}

	deltas := 0
	for step := 0; step < 25; step++ {
		// Mutate 1-2 distinct tasks to new types.
		dirtyN := 1 + rng.Intn(2)
		next := append([]int(nil), config...)
		var dirty []int32
		for len(dirty) < dirtyN {
			ti := rng.Intn(nTasks)
			nt := rng.Intn(nTypes)
			if nt == next[ti] {
				continue
			}
			dup := false
			for _, d := range dirty {
				if int(d) == ti {
					dup = true
				}
			}
			if dup {
				continue
			}
			next[ti] = nt
			dirty = append(dirty, int32(ti))
		}

		childSnap := n.NewSnapshot()
		dk, err := n.CRNDeltaKernel(next, base, dirty, snap, childSnap)
		if err != nil {
			t.Fatal(err)
		}
		full, err := n.EvaluateCRN(next, base)
		if err != nil {
			t.Fatal(err)
		}
		if dk == nil {
			// Structural fallback (cone too large for this mutation); the
			// chain continues from a fresh full capture.
			fk, err := n.CRNKernelSnap(next, base, childSnap)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := RunCRNKernel(fk); err != nil {
				t.Fatal(err)
			}
		} else {
			deltas++
			dev, err := RunCRNKernel(dk)
			if err != nil {
				t.Fatal(err)
			}
			sameEval(t, step, dev, full)

			// The delta-written snapshot must equal a full capture bit for
			// bit — it parents the next step.
			ref := n.NewSnapshot()
			rk, err := n.CRNKernelSnap(next, base, ref)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := RunCRNKernel(rk); err != nil {
				t.Fatal(err)
			}
			for i := range ref.finish {
				if childSnap.finish[i] != ref.finish[i] {
					t.Fatalf("step %d: snapshot finish[%d] delta %v != full %v",
						step, i, childSnap.finish[i], ref.finish[i])
				}
			}
			for it := range ref.ms {
				if childSnap.ms[it] != ref.ms[it] {
					t.Fatalf("step %d: snapshot ms[%d] delta %v != full %v",
						step, it, childSnap.ms[it], ref.ms[it])
				}
			}
			n.ReleaseSnapshot(ref)
		}
		n.ReleaseSnapshot(snap)
		snap, config = childSnap, next
	}
	if deltas == 0 {
		t.Fatal("no step took the delta path; fixture exercises nothing")
	}
}

// TestDeltaConcurrentWorlds runs one delta kernel's worlds from many
// goroutines (as the Parallel/TwoLevel devices do) and checks the per-world
// figures match the sequential run — under -race this also proves the
// snapshot's disjoint per-world writes don't conflict.
func TestDeltaConcurrentWorlds(t *testing.T) {
	cons := []wlog.Constraint{{Kind: "deadline", Percentile: 0.9, Bound: 2500}}
	n := deltaFixture(t, 24, 3, GoalMakespan, cons, 64)
	const base = int64(5)
	config := make([]int, n.W.Len())

	snap := n.NewSnapshot()
	k, err := n.CRNKernelSnap(config, base, snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCRNKernel(k); err != nil {
		t.Fatal(err)
	}

	// Mutate two late tasks (edges run low→high index, so their cones are
	// small and the delta path engages).
	d1, d2 := int32(n.W.Len()-2), int32(n.W.Len()-1)
	next := append([]int(nil), config...)
	next[d1], next[d2] = 1, 2
	seqSnap := n.NewSnapshot()
	sk, err := n.CRNDeltaKernel(next, base, []int32{d1, d2}, snap, seqSnap)
	if err != nil || sk == nil {
		t.Fatalf("sequential delta kernel: %v (nil=%v)", err, sk == nil)
	}
	want := make([][]float64, sk.Worlds())
	for it := range want {
		want[it] = make([]float64, sk.Width())
		if err := sk.Sample(it, nil, want[it]); err != nil {
			t.Fatal(err)
		}
	}

	parSnap := n.NewSnapshot()
	pk, err := n.CRNDeltaKernel(next, base, []int32{d1, d2}, snap, parSnap)
	if err != nil || pk == nil {
		t.Fatalf("parallel delta kernel: %v (nil=%v)", err, pk == nil)
	}
	got := make([][]float64, pk.Worlds())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := g; it < pk.Worlds(); it += 8 {
				out := make([]float64, pk.Width())
				if err := pk.Sample(it, nil, out); err != nil {
					t.Error(err)
					return
				}
				got[it] = out
			}
		}(g)
	}
	wg.Wait()
	for it := range want {
		for wi := range want[it] {
			if got[it][wi] != want[it][wi] {
				t.Fatalf("world %d figure %d: parallel %v != sequential %v",
					it, wi, got[it][wi], want[it][wi])
			}
		}
	}
}

// TestDeltaFallbacks pins the cases where CRNDeltaKernel must decline
// (nil, nil) — the caller's cue to evaluate fully — versus hard-error.
func TestDeltaFallbacks(t *testing.T) {
	cons := []wlog.Constraint{{Kind: "deadline", Percentile: 0.9, Bound: 2500}}
	n := deltaFixture(t, 20, 2, GoalMakespan, cons, 16)
	const base = int64(1)
	config := make([]int, n.W.Len())

	snap := n.NewSnapshot()
	k, _ := n.CRNKernelSnap(config, base, snap)
	if _, err := RunCRNKernel(k); err != nil {
		t.Fatal(err)
	}
	child := n.NewSnapshot()

	if dk, err := n.CRNDeltaKernel(config, base, []int32{0}, nil, child); dk != nil || err != nil {
		t.Fatalf("nil parent: want (nil, nil), got (%v, %v)", dk, err)
	}
	if dk, err := n.CRNDeltaKernel(config, base+1, []int32{0}, snap, child); dk != nil || err != nil {
		t.Fatalf("base mismatch: want (nil, nil), got (%v, %v)", dk, err)
	}
	if dk, err := n.CRNDeltaKernel(config, base, nil, snap, child); dk != nil || err != nil {
		t.Fatalf("empty dirty: want (nil, nil), got (%v, %v)", dk, err)
	}
	all := make([]int32, n.W.Len())
	for i := range all {
		all[i] = int32(i)
	}
	if dk, err := n.CRNDeltaKernel(config, base, all, snap, child); dk != nil || err != nil {
		t.Fatalf("full-width dirty set: want structural fallback (nil, nil), got (%v, %v)", dk, err)
	}
	if _, err := n.CRNDeltaKernel(config, base, []int32{int32(n.W.Len())}, snap, child); err == nil {
		t.Fatal("out-of-range dirty task: want error")
	}

	// A Native that never samples makespans has nothing to snapshot.
	costOnly := deltaFixture(t, 8, 4, GoalCost, nil, 16)
	if s := costOnly.NewSnapshot(); s != nil {
		t.Fatalf("cost-only Native returned a snapshot: %+v", s)
	}
}

// TestSnapshotPooling verifies released snapshots are recycled.
func TestSnapshotPooling(t *testing.T) {
	cons := []wlog.Constraint{{Kind: "deadline", Percentile: -1, Bound: 1000}}
	n := deltaFixture(t, 6, 8, GoalCost, cons, 8)
	s := n.NewSnapshot()
	if s == nil {
		t.Fatal("deterministic deadline still samples makespans; want a snapshot")
	}
	// sync.Pool drops items probabilistically under the race detector, so
	// assert reuse over repeated release/get cycles rather than one.
	reused := false
	for i := 0; i < 100 && !reused; i++ {
		n.ReleaseSnapshot(s)
		got := n.NewSnapshot()
		if got == nil || len(got.finish) != len(s.finish) {
			t.Fatalf("cycle %d: got %+v, want a snapshot shaped like %+v", i, got, s)
		}
		reused = got == s
		s = got
	}
	if !reused {
		t.Fatal("released snapshots never recycled through the pool")
	}
	n.ReleaseSnapshot(nil) // must not panic
}
