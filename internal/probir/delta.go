package probir

import (
	"fmt"

	"deco/internal/dag"
)

// This file implements incremental (delta) state evaluation. Under the CRN
// contract every state in a search shares one duration matrix keyed by
// (task, type, iteration), so when a neighbor differs from its parent by a
// transformation that reassigns a few tasks, the parent's per-(task, world)
// finish times remain valid for every task whose inputs did not change. The
// delta kernel copies the parent's finish row for a world and re-runs the
// longest-path recurrence only over the dirty cone — the reassigned tasks
// plus their topological descendants (dag.Flat.Cone) — and within the cone
// skips any task none of whose parents actually changed value in that world
// (value-change propagation over the child CSR). Recomputed tasks read
// bitwise-identical inputs to a full evaluation, and skipped tasks provably
// kept their parent values, so the resulting makespan is bit-identical to
// the full DP; the max over tasks is order-independent. Cost figures are
// recomputed in full, in the same index order as the full path, because
// float summation order is observable. Delta is therefore a wall-clock
// optimization only — never a semantics change.

// The structural fallback is a work-estimate model, in DP work units (one
// unit ≈ one task step of the longest-path recurrence: an edge scan plus a
// duration-row gather). Per world, delta evaluation pays a finish-row copy of
// the whole DAG (deltaCopyUnit units per task — a contiguous memmove element
// is far cheaper than a DP step) plus the cone's recomputation (cone tasks +
// entering edges); full evaluation pays the whole DAG's DP (tasks + edges).
// Delta is declined only when the estimated delta work reaches the full
// work, so Montage-scale group cones (~58% of the DAG, where the old flat
// 0.75 cone-fraction threshold was already borderline and per-executable
// transforms mostly fell back) stay on the delta path as long as the copy
// overhead leaves real savings.
const deltaCopyUnit = 0.25

// deltaWorthIt is the work-estimate model: true when evaluating a cone of
// coneTasks tasks and coneEdges entering edges incrementally beats the full
// DP over nTasks tasks and nEdges edges.
func deltaWorthIt(nTasks, nEdges, coneTasks, coneEdges int) bool {
	est := deltaCopyUnit*float64(nTasks) + float64(coneTasks+coneEdges)
	return est < float64(nTasks+nEdges)
}

// ConePlan is one dirty set's cone extraction, hoisted out of kernel
// construction so it can be shared: sibling children of one parent that
// change the same task group (per-executable transforms) — and children of
// later parents with the same dirty set — reuse one plan instead of
// re-extracting and copying the cone per child. A plan is immutable after
// PlanCone returns and safe for concurrent kernels to read.
type ConePlan struct {
	n         int
	cone      []int32 // cone positions into flat.Order, ascending
	edges     int     // parent edges entering cone members
	dirtyMask []bool  // per task: assignment differs from the parent's
	lastDirty int     // index into cone of the last dirty task
	delta     bool    // work model: delta evaluation beats the full DP
}

// Delta reports whether the work-estimate model chose delta evaluation for
// this cone; false means callers should evaluate fully (the plan is still a
// valid description of the cone).
func (cp *ConePlan) Delta() bool { return cp.delta }

// ConeSize returns the number of tasks in the dirty cone.
func (cp *ConePlan) ConeSize() int { return len(cp.cone) }

// Snapshot holds one state's per-world finish times — finish[it*n+task] —
// plus each world's makespan and argmax task. A snapshot is written by a
// capturing or delta kernel as its worlds run (disjoint slices per world, so
// device threads never contend) and read as the parent of later delta
// kernels. Snapshots are pooled by the Native that issued them; callers
// return them via ReleaseSnapshot when evicted from their snapshot store.
type Snapshot struct {
	n      int
	worlds int
	base   int64 // CRN base seed the finish times were computed under
	finish []float64
	ms     []float64
	amax   []int32
}

// Bytes reports the snapshot's retained memory, for store budgeting.
func (s *Snapshot) Bytes() int64 {
	return int64(len(s.finish))*8 + int64(len(s.ms))*8 + int64(len(s.amax))*4
}

// DeltaEvaluator is a CRNEvaluator that can additionally capture per-world
// finish-time snapshots and evaluate a neighbor configuration incrementally
// from its parent's snapshot.
type DeltaEvaluator interface {
	CRNEvaluator
	// NewSnapshot returns a pooled snapshot sized for this evaluator, or nil
	// when evaluation involves no per-world finish times (nothing to reuse).
	NewSnapshot() *Snapshot
	// ReleaseSnapshot returns a snapshot to the pool. The caller must hold
	// no kernel built against it.
	ReleaseSnapshot(s *Snapshot)
	// CRNKernelSnap is CRNKernel, additionally recording every world's
	// finish times into snap (which must come from NewSnapshot; nil degrades
	// to CRNKernel). The snapshot is valid once the kernel has run all
	// worlds.
	CRNKernelSnap(config []int, base int64, snap *Snapshot) (WorldKernel, error)
	// CRNDeltaKernel builds a kernel that evaluates config by reusing the
	// parent snapshot, recomputing only the cone of the dirty tasks — the
	// tasks whose (task, type) assignment differs from the parent's — and
	// capturing the result into snap so it can parent further deltas.
	// Returns (nil, nil) when delta does not apply (no parent, base
	// mismatch, or cone too large): the caller must then evaluate fully.
	// The caller is responsible for dirty being exactly the set of tasks on
	// which config and the parent's configuration differ.
	CRNDeltaKernel(config []int, base int64, dirty []int32, parent, snap *Snapshot) (WorldKernel, error)
}

// PlannedDeltaEvaluator is a DeltaEvaluator whose dirty-cone extraction can
// be hoisted into a reusable ConePlan: callers that expand many children off
// one parent plan each distinct dirty set once and build every sibling's
// kernel from the shared plan.
type PlannedDeltaEvaluator interface {
	DeltaEvaluator
	// PlanCone extracts one dirty set's cone into an immutable plan.
	PlanCone(dirty []int32) (*ConePlan, error)
	// CRNDeltaKernelPlanned is CRNDeltaKernel with the plan precomputed; the
	// kernel borrows the plan's cone and dirty mask read-only.
	CRNDeltaKernelPlanned(config []int, base int64, plan *ConePlan, parent, snap *Snapshot) (WorldKernel, error)
}

// needsMSSampling reports whether evaluation samples per-world makespans —
// the precondition for finish-time snapshots to exist at all.
func (n *Native) needsMSSampling() bool {
	if n.Goal == GoalMakespan {
		return true
	}
	for _, c := range n.Constraints {
		if c.Kind == "deadline" {
			return true
		}
	}
	return false
}

// NewSnapshot implements DeltaEvaluator. Snapshots are pooled per Native;
// the returned snapshot's contents are undefined until a capturing kernel
// has run.
func (n *Native) NewSnapshot() *Snapshot {
	if !n.needsMSSampling() {
		return nil
	}
	nt := n.W.Len()
	n.snapMu.Lock()
	for len(n.snapFree) > 0 {
		s := n.snapFree[len(n.snapFree)-1]
		n.snapFree = n.snapFree[:len(n.snapFree)-1]
		if s.n == nt && s.worlds == n.Iters {
			n.snapMu.Unlock()
			return s
		}
		// Sized for a different shape (shouldn't happen per Native); drop it.
	}
	n.snapMu.Unlock()
	return &Snapshot{
		n:      nt,
		worlds: n.Iters,
		finish: make([]float64, nt*n.Iters),
		ms:     make([]float64, n.Iters),
		amax:   make([]int32, n.Iters),
	}
}

// snapFreeCap bounds the snapshot freelist; at most this many released
// snapshots are retained for reuse (roughly one frontier batch's worth),
// anything beyond goes to the GC.
const snapFreeCap = 256

// ReleaseSnapshot implements DeltaEvaluator.
func (n *Native) ReleaseSnapshot(s *Snapshot) {
	if s == nil {
		return
	}
	n.snapMu.Lock()
	if len(n.snapFree) < snapFreeCap {
		n.snapFree = append(n.snapFree, s)
	}
	n.snapMu.Unlock()
}

// CRNKernelSnap implements DeltaEvaluator.
func (n *Native) CRNKernelSnap(config []int, base int64, snap *Snapshot) (WorldKernel, error) {
	k, err := n.newCRNKernel(config, base)
	if err != nil {
		return nil, err
	}
	if snap != nil && k.needMS {
		if snap.n != n.W.Len() || snap.worlds != n.Iters {
			return nil, fmt.Errorf("probir: snapshot shape (%d tasks, %d worlds), want (%d, %d)",
				snap.n, snap.worlds, n.W.Len(), n.Iters)
		}
		snap.base = base
		k.capture = snap
	}
	return k, nil
}

// PlanCone extracts the dirty cone of one changed-task set into a shareable,
// immutable ConePlan: the cone positions, the per-task dirty mask, the last
// dirty cone index, and the work-estimate verdict. The caller owns sharing:
// one plan per distinct dirty set serves every child kernel that changes
// exactly those tasks, across siblings and across parents (the cone depends
// on the DAG and the dirty set only, never on the configurations).
func (n *Native) PlanCone(dirty []int32) (*ConePlan, error) {
	nt := n.W.Len()
	if len(dirty) == 0 {
		return nil, fmt.Errorf("probir: empty dirty set")
	}
	for _, d := range dirty {
		if d < 0 || int(d) >= nt {
			return nil, fmt.Errorf("probir: dirty task %d out of range", d)
		}
	}
	f := n.flat
	sc := new(dag.ConeScratch)
	cone, edges := f.Cone(dirty, sc)
	cp := &ConePlan{
		n:         nt,
		cone:      append([]int32(nil), cone...),
		edges:     edges,
		dirtyMask: make([]bool, nt),
		delta:     deltaWorthIt(nt, len(f.Parents), len(cone), edges),
	}
	for _, d := range dirty {
		cp.dirtyMask[d] = true
	}
	for ci, kpos := range cp.cone {
		if cp.dirtyMask[f.Order[kpos]] {
			cp.lastDirty = ci
		}
	}
	return cp, nil
}

// CRNDeltaKernelPlanned is CRNDeltaKernel with the cone extraction hoisted
// out: the kernel borrows the plan's cone and dirty mask (read-only) instead
// of extracting and owning copies, so building a sibling's kernel allocates
// nothing cone-related. Returns (nil, nil) when delta does not apply — the
// plan's work model declined, there is no parent snapshot, or the snapshot
// shapes/base do not line up — and the caller must then evaluate fully. The
// plan must come from PlanCone over exactly the tasks on which config and
// the parent's configuration differ.
func (n *Native) CRNDeltaKernelPlanned(config []int, base int64, plan *ConePlan, parent, snap *Snapshot) (WorldKernel, error) {
	if plan == nil || !plan.delta || parent == nil || snap == nil || !n.needsMSSampling() {
		return nil, nil
	}
	nt := n.W.Len()
	if plan.n != nt {
		return nil, fmt.Errorf("probir: cone plan for %d tasks, want %d", plan.n, nt)
	}
	if parent.base != base || parent.n != nt || parent.worlds != n.Iters {
		return nil, nil
	}
	if snap.n != nt || snap.worlds != n.Iters {
		return nil, fmt.Errorf("probir: snapshot shape (%d tasks, %d worlds), want (%d, %d)",
			snap.n, snap.worlds, nt, n.Iters)
	}
	k, err := n.newCRNKernel(config, base)
	if err != nil {
		return nil, err
	}
	if !k.needMS {
		// Nothing to delta (no makespan figures); run it as a plain kernel.
		return k, nil
	}
	snap.base = base
	k.capture = snap
	k.parent = parent
	k.cone = plan.cone
	k.dirtyMask = plan.dirtyMask
	k.lastDirty = plan.lastDirty
	return k, nil
}

// CRNDeltaKernel implements DeltaEvaluator: PlanCone + CRNDeltaKernelPlanned
// for callers without a plan cache. Each call re-extracts the cone; the
// solver's compiled pipeline uses the planned form with a shared plan per
// dirty set instead.
func (n *Native) CRNDeltaKernel(config []int, base int64, dirty []int32, parent, snap *Snapshot) (WorldKernel, error) {
	if parent == nil || snap == nil || !n.needsMSSampling() {
		return nil, nil
	}
	if len(dirty) == 0 {
		// An identical configuration is not a delta; let the caller's eval
		// cache or full path handle it.
		return nil, nil
	}
	plan, err := n.PlanCone(dirty)
	if err != nil {
		return nil, err
	}
	if !plan.delta {
		return nil, nil
	}
	return n.CRNDeltaKernelPlanned(config, base, plan, parent, snap)
}

// sampleDeltaMS computes world it's makespan incrementally: copy the
// parent's finish row, walk the cone in topological order recomputing a task
// only if it is dirty or one of its parents changed value this world, push
// value changes to children through the child CSR, and derive the makespan
// in O(1) from the parent's (makespan, argmax) unless the argmax task itself
// changed. Recompute marks are epoch-stamped (no per-world clearing), and
// the walk stops as soon as no marked task remains ahead and every dirty
// task has been visited — past that point the world provably keeps its
// parent values. All comparisons are bitwise, so the result is exactly the
// full DP's.
func (k *nativeKernel) sampleDeltaMS(it int) float64 {
	f := k.n.flat
	n0 := f.Len()
	row := k.capture.finish[it*n0 : (it+1)*n0]
	copy(row, k.parent.finish[it*n0:(it+1)*n0])

	em := k.prog.flags.Get().(*epochMarks)
	epoch := em.next()
	marks := em.marks
	parentAmax := k.parent.amax[it]
	amaxChanged := false
	changedMax := 0.0
	changedArg := int32(-1)
	pending := 0 // marked tasks not yet visited; all lie ahead in the cone
	for ci, kpos := range k.cone {
		if pending == 0 && ci > k.lastDirty {
			break
		}
		ti := f.Order[kpos]
		if marks[ti] == epoch {
			pending--
		} else if !k.dirtyMask[ti] {
			continue
		}
		start := 0.0
		for _, p := range f.Parents[f.ParentStart[kpos]:f.ParentStart[kpos+1]] {
			if v := row[p]; v > start {
				start = v
			}
		}
		end := start + k.rows[ti][it]
		if end != row[ti] {
			row[ti] = end
			for _, c := range f.Children[f.ChildStart[ti]:f.ChildStart[ti+1]] {
				if marks[c] != epoch {
					marks[c] = epoch
					pending++
				}
			}
			if changedArg < 0 || end > changedMax {
				changedMax = end
				changedArg = ti
			}
			if ti == parentAmax {
				amaxChanged = true
			}
		}
	}
	k.prog.flags.Put(em)

	var ms float64
	amax := parentAmax
	if amaxChanged {
		if changedMax >= k.parent.ms[it] {
			// Every unchanged task still sits at its parent value, all of
			// which are <= the parent makespan, so the changed maximum wins
			// outright — no rescan needed.
			ms = changedMax
			amax = changedArg
		} else {
			// The task that attained the parent's makespan dropped below it;
			// rescan the contiguous finish row.
			ms = 0
			amax = -1
			for i, v := range row {
				if v > ms {
					ms = v
					amax = int32(i)
				}
			}
		}
	} else {
		// The parent's maximum still stands; only a changed value can beat it.
		ms = k.parent.ms[it]
		if changedArg >= 0 && changedMax > ms {
			ms = changedMax
			amax = changedArg
		}
	}
	k.capture.ms[it] = ms
	k.capture.amax[it] = amax
	return ms
}
