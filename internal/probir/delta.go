package probir

import (
	"fmt"

	"deco/internal/dag"
)

// This file implements incremental (delta) state evaluation. Under the CRN
// contract every state in a search shares one duration matrix keyed by
// (task, type, iteration), so when a neighbor differs from its parent by a
// transformation that reassigns a few tasks, the parent's per-(task, world)
// finish times remain valid for every task whose inputs did not change. The
// delta kernel copies the parent's finish row for a world and re-runs the
// longest-path recurrence only over the dirty cone — the reassigned tasks
// plus their topological descendants (dag.Flat.Cone) — and within the cone
// skips any task none of whose parents actually changed value in that world
// (value-change propagation over the child CSR). Recomputed tasks read
// bitwise-identical inputs to a full evaluation, and skipped tasks provably
// kept their parent values, so the resulting makespan is bit-identical to
// the full DP; the max over tasks is order-independent. Cost figures are
// recomputed in full, in the same index order as the full path, because
// float summation order is observable. Delta is therefore a wall-clock
// optimization only — never a semantics change.

// deltaConeFraction is the structural fallback threshold: when the cone's
// recomputation cost (tasks + parent edges) exceeds this fraction of the
// full DP's cost, CRNDeltaKernel declines and the caller evaluates fully.
// Past that point the copy + bookkeeping overhead outweighs the skipped
// work.
const deltaConeFraction = 0.75

// Snapshot holds one state's per-world finish times — finish[it*n+task] —
// plus each world's makespan and argmax task. A snapshot is written by a
// capturing or delta kernel as its worlds run (disjoint slices per world, so
// device threads never contend) and read as the parent of later delta
// kernels. Snapshots are pooled by the Native that issued them; callers
// return them via ReleaseSnapshot when evicted from their snapshot store.
type Snapshot struct {
	n      int
	worlds int
	base   int64 // CRN base seed the finish times were computed under
	finish []float64
	ms     []float64
	amax   []int32
}

// Bytes reports the snapshot's retained memory, for store budgeting.
func (s *Snapshot) Bytes() int64 {
	return int64(len(s.finish))*8 + int64(len(s.ms))*8 + int64(len(s.amax))*4
}

// DeltaEvaluator is a CRNEvaluator that can additionally capture per-world
// finish-time snapshots and evaluate a neighbor configuration incrementally
// from its parent's snapshot.
type DeltaEvaluator interface {
	CRNEvaluator
	// NewSnapshot returns a pooled snapshot sized for this evaluator, or nil
	// when evaluation involves no per-world finish times (nothing to reuse).
	NewSnapshot() *Snapshot
	// ReleaseSnapshot returns a snapshot to the pool. The caller must hold
	// no kernel built against it.
	ReleaseSnapshot(s *Snapshot)
	// CRNKernelSnap is CRNKernel, additionally recording every world's
	// finish times into snap (which must come from NewSnapshot; nil degrades
	// to CRNKernel). The snapshot is valid once the kernel has run all
	// worlds.
	CRNKernelSnap(config []int, base int64, snap *Snapshot) (WorldKernel, error)
	// CRNDeltaKernel builds a kernel that evaluates config by reusing the
	// parent snapshot, recomputing only the cone of the dirty tasks — the
	// tasks whose (task, type) assignment differs from the parent's — and
	// capturing the result into snap so it can parent further deltas.
	// Returns (nil, nil) when delta does not apply (no parent, base
	// mismatch, or cone too large): the caller must then evaluate fully.
	// The caller is responsible for dirty being exactly the set of tasks on
	// which config and the parent's configuration differ.
	CRNDeltaKernel(config []int, base int64, dirty []int32, parent, snap *Snapshot) (WorldKernel, error)
}

// needsMSSampling reports whether evaluation samples per-world makespans —
// the precondition for finish-time snapshots to exist at all.
func (n *Native) needsMSSampling() bool {
	if n.Goal == GoalMakespan {
		return true
	}
	for _, c := range n.Constraints {
		if c.Kind == "deadline" {
			return true
		}
	}
	return false
}

// NewSnapshot implements DeltaEvaluator. Snapshots are pooled per Native;
// the returned snapshot's contents are undefined until a capturing kernel
// has run.
func (n *Native) NewSnapshot() *Snapshot {
	if !n.needsMSSampling() {
		return nil
	}
	nt := n.W.Len()
	if v := n.snaps.Get(); v != nil {
		s := v.(*Snapshot)
		if s.n == nt && s.worlds == n.Iters {
			return s
		}
		// Sized for a different shape (shouldn't happen per Native); drop it.
	}
	return &Snapshot{
		n:      nt,
		worlds: n.Iters,
		finish: make([]float64, nt*n.Iters),
		ms:     make([]float64, n.Iters),
		amax:   make([]int32, n.Iters),
	}
}

// ReleaseSnapshot implements DeltaEvaluator.
func (n *Native) ReleaseSnapshot(s *Snapshot) {
	if s != nil {
		n.snaps.Put(s)
	}
}

// CRNKernelSnap implements DeltaEvaluator.
func (n *Native) CRNKernelSnap(config []int, base int64, snap *Snapshot) (WorldKernel, error) {
	k, err := n.newCRNKernel(config, base)
	if err != nil {
		return nil, err
	}
	if snap != nil && k.needMS {
		if snap.n != n.W.Len() || snap.worlds != n.Iters {
			return nil, fmt.Errorf("probir: snapshot shape (%d tasks, %d worlds), want (%d, %d)",
				snap.n, snap.worlds, n.W.Len(), n.Iters)
		}
		snap.base = base
		k.capture = snap
	}
	return k, nil
}

// CRNDeltaKernel implements DeltaEvaluator.
func (n *Native) CRNDeltaKernel(config []int, base int64, dirty []int32, parent, snap *Snapshot) (WorldKernel, error) {
	if parent == nil || snap == nil || !n.needsMSSampling() {
		return nil, nil
	}
	nt := n.W.Len()
	if parent.base != base || parent.n != nt || parent.worlds != n.Iters {
		return nil, nil
	}
	if len(dirty) == 0 {
		// An identical configuration is not a delta; let the caller's eval
		// cache or full path handle it.
		return nil, nil
	}
	for _, d := range dirty {
		if d < 0 || int(d) >= nt {
			return nil, fmt.Errorf("probir: dirty task %d out of range", d)
		}
	}
	if snap.n != nt || snap.worlds != n.Iters {
		return nil, fmt.Errorf("probir: snapshot shape (%d tasks, %d worlds), want (%d, %d)",
			snap.n, snap.worlds, nt, n.Iters)
	}
	f := n.flat
	prog := n.program(base)
	sc := prog.cones.Get().(*dag.ConeScratch)
	cone, edges := f.Cone(dirty, sc)
	full := nt + len(f.Parents)
	if float64(len(cone)+edges) > deltaConeFraction*float64(full) {
		prog.cones.Put(sc)
		return nil, nil
	}
	k, err := n.newCRNKernel(config, base)
	if err != nil {
		prog.cones.Put(sc)
		return nil, err
	}
	k.cone = append(k.cone, cone...) // own the cone; scratch goes back now
	prog.cones.Put(sc)
	if !k.needMS {
		// Nothing to delta (no makespan figures); run it as a plain kernel.
		return k, nil
	}
	snap.base = base
	k.capture = snap
	k.parent = parent
	k.dirtyMask = make([]bool, nt)
	for _, d := range dirty {
		k.dirtyMask[d] = true
	}
	for ci, kpos := range k.cone {
		if k.dirtyMask[f.Order[kpos]] {
			k.lastDirty = ci
		}
	}
	return k, nil
}

// sampleDeltaMS computes world it's makespan incrementally: copy the
// parent's finish row, walk the cone in topological order recomputing a task
// only if it is dirty or one of its parents changed value this world, push
// value changes to children through the child CSR, and derive the makespan
// in O(1) from the parent's (makespan, argmax) unless the argmax task itself
// changed. Recompute marks are epoch-stamped (no per-world clearing), and
// the walk stops as soon as no marked task remains ahead and every dirty
// task has been visited — past that point the world provably keeps its
// parent values. All comparisons are bitwise, so the result is exactly the
// full DP's.
func (k *nativeKernel) sampleDeltaMS(it int) float64 {
	f := k.n.flat
	n0 := f.Len()
	row := k.capture.finish[it*n0 : (it+1)*n0]
	copy(row, k.parent.finish[it*n0:(it+1)*n0])

	em := k.prog.flags.Get().(*epochMarks)
	epoch := em.next()
	marks := em.marks
	parentAmax := k.parent.amax[it]
	amaxChanged := false
	changedMax := 0.0
	changedArg := int32(-1)
	pending := 0 // marked tasks not yet visited; all lie ahead in the cone
	for ci, kpos := range k.cone {
		if pending == 0 && ci > k.lastDirty {
			break
		}
		ti := f.Order[kpos]
		if marks[ti] == epoch {
			pending--
		} else if !k.dirtyMask[ti] {
			continue
		}
		start := 0.0
		for _, p := range f.Parents[f.ParentStart[kpos]:f.ParentStart[kpos+1]] {
			if v := row[p]; v > start {
				start = v
			}
		}
		end := start + k.rows[ti][it]
		if end != row[ti] {
			row[ti] = end
			for _, c := range f.Children[f.ChildStart[ti]:f.ChildStart[ti+1]] {
				if marks[c] != epoch {
					marks[c] = epoch
					pending++
				}
			}
			if changedArg < 0 || end > changedMax {
				changedMax = end
				changedArg = ti
			}
			if ti == parentAmax {
				amaxChanged = true
			}
		}
	}
	k.prog.flags.Put(em)

	var ms float64
	amax := parentAmax
	if amaxChanged {
		if changedMax >= k.parent.ms[it] {
			// Every unchanged task still sits at its parent value, all of
			// which are <= the parent makespan, so the changed maximum wins
			// outright — no rescan needed.
			ms = changedMax
			amax = changedArg
		} else {
			// The task that attained the parent's makespan dropped below it;
			// rescan the contiguous finish row.
			ms = 0
			amax = -1
			for i, v := range row {
				if v > ms {
					ms = v
					amax = int32(i)
				}
			}
		}
	} else {
		// The parent's maximum still stands; only a changed value can beat it.
		ms = k.parent.ms[it]
		if changedArg >= 0 && changedMax > ms {
			ms = changedMax
			amax = changedArg
		}
	}
	k.capture.ms[it] = ms
	k.capture.amax[it] = amax
	return ms
}
