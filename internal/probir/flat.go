package probir

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"deco/internal/dag"
	"deco/internal/estimate"
)

// This file implements the common-random-number (CRN) evaluation core. A
// Native program is compiled once per search into a Program: the workflow's
// flat index form (dag.Flat), the dense per-(task, type) time-distribution
// table (estimate.FlatTable), and a lazily-filled duration matrix
// rows[task][type][iteration]. Duration draws are keyed by (task, type,
// iteration) — NOT by search state — so every state evaluated within one
// search observes the same world realizations. That is the CRN determinism
// contract:
//
//   - Evaluating a neighbor state that reassigns Δ tasks resolves only the Δ
//     missing rows (O(Δ·worlds) sampling instead of O(tasks·worlds)).
//   - State-vs-state comparisons see the same randomness, cutting the
//     Monte-Carlo variance of score differences.
//   - Results depend only on (program, base seed, configuration); kernels
//     built from a Program ignore the per-world rng entirely, so devices may
//     run worlds in any order or in parallel and fold bit-identically.

// crnSeed derives the rng seed of one (task, type) duration row from the
// search-level base seed (splitmix64-style finalizer over a distinct stream
// constant from worldSeed, so CRN rows never collide with state-keyed world
// substreams).
func crnSeed(base int64, stream int) int64 {
	z := uint64(base) ^ 0x6A09E667F3BCC909
	z += uint64(stream+1) * 0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Program is a Native program compiled for one CRN base seed: the flat DAG,
// the dense distribution table, and the shared duration matrix. Rows are
// filled lazily the first time a configuration needs them; a filled row is
// published through an atomic pointer, so the warm path — every row already
// sampled, the steady state of a search — is entirely lock-free and never
// serializes behind another goroutine filling rows for a different
// configuration. Only the fill itself takes fillMu (double-checked, so two
// goroutines racing to the same missing row sample it once). The scratch and
// flag pools serve per-world buffers so device threads evaluating worlds
// concurrently never allocate.
type Program struct {
	flat   *dag.Flat
	ft     *estimate.FlatTable
	base   int64
	iters  int
	nTypes int

	// markets, when non-nil, holds one MarketSpec per type column; spot
	// columns fill a paired cost row alongside the duration row from the same
	// rng stream (market.go).
	markets []MarketSpec

	fillMu sync.Mutex
	rows   []atomic.Pointer[[]float64] // rows[task*nTypes+type][iteration], lazily filled
	// costRows parallels rows for spot columns only: costRows[ri][it] is the
	// realized cost of the (task, spot type) pair in world it. On-demand
	// entries stay nil — their world cost is duration/3600·price, computed in
	// the kernel. A cost row is always published before its duration row, so
	// any reader that observed the duration row can load the cost row
	// lock-free.
	costRows []atomic.Pointer[[]float64]

	// orderOnce/order cache the decisive-world-first permutation (order.go):
	// a pure function of (program content, base), immutable once built.
	orderOnce sync.Once
	order     []int32

	scratch sync.Pool // *[]float64 of len flat.Len(): per-world finish times
	flags   sync.Pool // *epochMarks of len flat.Len(): per-world delta recompute marks
	cones   sync.Pool // *dag.ConeScratch: per-kernel-build cone computation
}

// epochMarks is a reusable per-task mark buffer that resets in O(1): a task
// is marked iff marks[task] == epoch, so bumping the epoch unmarks
// everything. The delta makespan pass marks the tasks whose finish value
// must be recomputed in the current world.
type epochMarks struct {
	epoch uint32
	marks []uint32
}

// next unmarks every task and returns the fresh epoch, clearing the buffer
// explicitly on the (once per 4G worlds) wrap so stale marks can never alias
// a live epoch.
func (e *epochMarks) next() uint32 {
	e.epoch++
	if e.epoch == 0 {
		for i := range e.marks {
			e.marks[i] = 0
		}
		e.epoch = 1
	}
	return e.epoch
}

func newProgram(flat *dag.Flat, ft *estimate.FlatTable, base int64, iters int, markets []MarketSpec) *Program {
	p := &Program{
		flat:    flat,
		ft:      ft,
		base:    base,
		iters:   iters,
		nTypes:  ft.NumTypes,
		markets: markets,
		rows:    make([]atomic.Pointer[[]float64], flat.Len()*ft.NumTypes),
	}
	if markets != nil {
		p.costRows = make([]atomic.Pointer[[]float64], flat.Len()*ft.NumTypes)
	}
	n := flat.Len()
	p.scratch.New = func() any {
		s := make([]float64, n)
		return &s
	}
	p.flags.New = func() any {
		return &epochMarks{marks: make([]uint32, n)}
	}
	p.cones.New = func() any { return new(dag.ConeScratch) }
	return p
}

// Rows resolves one configuration against the duration matrix, filling any
// missing (task, type) rows: row[it] is the task's sampled duration in world
// it, drawn from an rng seeded by crnSeed(base, task*nTypes+type) and
// consumed in iteration order. A fully warm configuration takes no locks.
// The returned per-task slices are shared and immutable once filled; callers
// must not modify them.
func (p *Program) Rows(config []int) [][]float64 {
	out := make([][]float64, len(config))
	missing := 0
	for i, j := range config {
		if rp := p.rows[i*p.nTypes+j].Load(); rp != nil {
			out[i] = *rp
		} else {
			missing++
		}
	}
	if missing == 0 {
		return out
	}
	p.fillMu.Lock()
	defer p.fillMu.Unlock()
	for i, j := range config {
		if out[i] != nil {
			continue
		}
		ri := i*p.nTypes + j
		if rp := p.rows[ri].Load(); rp != nil { // filled while we waited
			out[i] = *rp
			continue
		}
		row := make([]float64, p.iters)
		rng := rand.New(rand.NewSource(crnSeed(p.base, ri)))
		td := p.ft.Dist(i, j)
		if p.markets != nil && p.markets[j].Spot {
			costRow := make([]float64, p.iters)
			fillSpotRow(td, p.markets[j], rng, row, costRow)
			p.costRows[ri].Store(&costRow)
		} else {
			for it := range row {
				row[it] = td.Sample(rng)
			}
		}
		p.rows[ri].Store(&row)
		out[i] = row
	}
	return out
}

// CostRows resolves the paired per-world cost rows of a configuration:
// out[i] is non-nil iff task i's assigned column is a spot offering (nil
// entries mean deterministic pricing — duration/3600·price). The caller must
// have resolved the same configuration through Rows first; Rows publishes a
// spot column's cost row before its duration row, so every row is present
// here lock-free.
func (p *Program) CostRows(config []int) [][]float64 {
	out := make([][]float64, len(config))
	if p.costRows == nil {
		return out
	}
	for i, j := range config {
		if !p.markets[j].Spot {
			continue
		}
		rp := p.costRows[i*p.nTypes+j].Load()
		if rp == nil {
			panic("probir: CostRows called before Rows filled the configuration")
		}
		out[i] = *rp
	}
	return out
}

// maxPrograms bounds the per-Native program cache. A search uses a single
// base seed, so this only needs to cover a handful of concurrent or
// successive searches (e.g. runtime replans) over the same Native.
const maxPrograms = 8

// progEntry is one cached Program plus its last-use tick for LRU eviction.
type progEntry struct {
	p    *Program
	tick uint64
}

// program returns the compiled Program for the given CRN base, building and
// caching it on first use. When the cache is full the least-recently-used
// base is evicted — deterministically, and never the base just touched, so
// a running search's duration matrix is only rebuilt if maxPrograms other
// searches have since used this Native.
func (n *Native) program(base int64) *Program {
	n.progMu.Lock()
	defer n.progMu.Unlock()
	n.progTick++
	if e, ok := n.progs[base]; ok {
		e.tick = n.progTick
		return e.p
	}
	if n.progs == nil {
		n.progs = make(map[int64]*progEntry)
	}
	if len(n.progs) >= maxPrograms {
		var victim int64
		oldest := uint64(math.MaxUint64)
		for k, e := range n.progs {
			if e.tick < oldest {
				oldest = e.tick
				victim = k
			}
		}
		delete(n.progs, victim)
	}
	p := newProgram(n.flat, n.ftab, base, n.Iters, n.Markets)
	n.progs[base] = &progEntry{p: p, tick: n.progTick}
	return p
}

// CRNEvaluator is an Evaluator whose Monte-Carlo evaluation can run under
// the common-random-number contract: kernels built by CRNKernel share one
// duration matrix per base seed and ignore the per-world rng (Sample may be
// called with a nil rng).
type CRNEvaluator interface {
	Evaluator
	// CRNKernel builds the per-world kernel of one configuration under the
	// CRN base seed.
	CRNKernel(config []int, base int64) (WorldKernel, error)
}

// RunCRNKernel executes a CRN kernel's worlds sequentially and reduces them,
// accumulating in iteration order — the reference semantics every device
// execution must (and does) match bit-identically. The kernel must have been
// built by a CRNKernel call (its Sample ignores the rng).
func RunCRNKernel(k WorldKernel) (*Evaluation, error) {
	width := k.Width()
	sums := make([]float64, width)
	tmp := make([]float64, width)
	for it := 0; it < k.Worlds(); it++ {
		for w := range tmp {
			tmp[w] = 0
		}
		if err := k.Sample(it, nil, tmp); err != nil {
			return nil, err
		}
		for w := range tmp {
			sums[w] += tmp[w]
		}
	}
	return k.Reduce(sums)
}

// EvaluateCRN evaluates one configuration under the CRN contract with the
// given base seed. Two calls with equal (program, base, config) return
// bit-identical evaluations regardless of device or interleaving.
func (n *Native) EvaluateCRN(config []int, base int64) (*Evaluation, error) {
	k, err := n.CRNKernel(config, base)
	if err != nil {
		return nil, err
	}
	return RunCRNKernel(k)
}

// hashFloats writes float64s to a hash in a fixed binary form.
func hashFloats(w io.Writer, xs ...float64) {
	var buf [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		w.Write(buf[:])
	}
}

// hashInts writes ints to a hash in a fixed binary form.
func hashInts(w io.Writer, xs ...int64) {
	var buf [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		w.Write(buf[:])
	}
}

// Fingerprint content-hashes everything the evaluation depends on: the
// time-distribution table, prices, goal, constraints, iteration count, and
// the DAG structure. Two Natives with equal fingerprints produce identical
// evaluations for every (config, base) pair — the key property behind the
// solver's cross-search evaluation cache.
func (n *Native) Fingerprint() string {
	n.fpOnce.Do(func() {
		h := sha256.New()
		io.WriteString(h, "native;")
		io.WriteString(h, n.Table.Fingerprint())
		hashFloats(h, n.PricePerHour...)
		hashInts(h, int64(n.Goal), int64(n.Iters), int64(len(n.Constraints)))
		if n.Markets != nil {
			io.WriteString(h, "markets;")
			for _, m := range n.Markets {
				spot := int64(0)
				if m.Spot {
					spot = 1
				}
				hashInts(h, spot)
				hashFloats(h, m.PriceMean, m.PriceSigma, m.RevocationsPerHour, m.OnDemandUSD)
			}
		}
		for _, c := range n.Constraints {
			io.WriteString(h, c.Kind)
			hashFloats(h, c.Percentile, c.Bound)
		}
		f := n.flat
		hashInts(h, int64(f.Len()))
		for _, id := range f.IDs {
			io.WriteString(h, id)
			io.WriteString(h, "|")
		}
		var buf [4]byte
		for _, o := range f.Order {
			binary.LittleEndian.PutUint32(buf[:], uint32(o))
			h.Write(buf[:])
		}
		for _, s := range f.ParentStart {
			binary.LittleEndian.PutUint32(buf[:], uint32(s))
			h.Write(buf[:])
		}
		for _, p := range f.Parents {
			binary.LittleEndian.PutUint32(buf[:], uint32(p))
			h.Write(buf[:])
		}
		n.fp = hex.EncodeToString(h.Sum(nil))
	})
	return n.fp
}

// checkConfig validates a configuration's length and type indices.
func (n *Native) checkConfig(config []int) error {
	if len(config) != n.W.Len() {
		return fmt.Errorf("probir: config length %d, want %d", len(config), n.W.Len())
	}
	for _, j := range config {
		if j < 0 || j >= n.NumTypes() {
			return fmt.Errorf("probir: type index %d out of range", j)
		}
	}
	return nil
}
