package probir

import (
	"math/rand"
	"testing"

	"deco/internal/cloud"
	"deco/internal/dag"
	"deco/internal/estimate"
	"deco/internal/wlog"
)

// marketFixture expands the diamond fixture's table with spot columns for
// m1.small and m1.xlarge and builds the matching price vector (mean clearing
// price for spot columns) and market specs from the default catalog.
func marketFixture(t testing.TB) (*dag.Workflow, *estimate.Table, []float64, []MarketSpec) {
	t.Helper()
	w, tbl, _ := fixture(t, false)
	cat := cloud.DefaultCatalog()
	us, err := cat.Region(cloud.USEast)
	if err != nil {
		t.Fatal(err)
	}
	xtbl, err := tbl.ExpandSpot([]string{"m1.small", "m1.xlarge"})
	if err != nil {
		t.Fatal(err)
	}
	prices := make([]float64, len(xtbl.Types))
	markets := make([]MarketSpec, len(xtbl.Types))
	for j, name := range xtbl.Types {
		if cloud.IsSpotName(name) {
			m := us.Spot[cloud.BaseType(name)]
			prices[j] = m.PricePerHourMean
			markets[j] = MarketSpec{
				Spot:               true,
				PriceMean:          m.PricePerHourMean,
				PriceSigma:         m.PriceSigma,
				RevocationsPerHour: m.RevocationsPerHour,
				OnDemandUSD:        us.PricePerHour[cloud.BaseType(name)],
			}
		} else {
			prices[j] = us.PricePerHour[name]
		}
	}
	return w, xtbl, prices, markets
}

func TestNewNativeMarketsValidation(t *testing.T) {
	w, xtbl, prices, markets := marketFixture(t)
	if _, err := NewNativeMarkets(w, xtbl, prices, markets, GoalCost, nil, 50); err != nil {
		t.Fatalf("valid markets rejected: %v", err)
	}
	if _, err := NewNativeMarkets(w, xtbl, prices, markets[:2], GoalCost, nil, 50); err == nil {
		t.Error("market/type length mismatch accepted")
	}
	spotIdx := -1
	for j, m := range markets {
		if m.Spot {
			spotIdx = j
			break
		}
	}
	mutate := map[string]func(m *MarketSpec){
		"zero mean price":  func(m *MarketSpec) { m.PriceMean = 0 },
		"negative sigma":   func(m *MarketSpec) { m.PriceSigma = -0.1 },
		"negative hazard":  func(m *MarketSpec) { m.RevocationsPerHour = -1 },
		"zero rerun price": func(m *MarketSpec) { m.OnDemandUSD = 0 },
	}
	for name, mut := range mutate {
		bad := append([]MarketSpec(nil), markets...)
		mut(&bad[spotIdx])
		if _, err := NewNativeMarkets(w, xtbl, prices, bad, GoalCost, nil, 50); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestSpotObjectiveIsSampledExpectedCost: with spot markets present the cost
// goal becomes a Monte-Carlo figure (worlds run even without constraints,
// ValueFigure points at the cost column) and an all-spot plan is cheaper in
// expectation than the same plan on demand — the clearing price is a
// fraction of on-demand and revocation reruns only claw part of it back.
func TestSpotObjectiveIsSampledExpectedCost(t *testing.T) {
	w, xtbl, prices, markets := marketFixture(t)
	n, err := NewNativeMarkets(w, xtbl, prices, markets, GoalCost, nil, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !n.HasSpotMarkets() {
		t.Fatal("HasSpotMarkets() = false")
	}
	spotSmall := -1
	for j, name := range xtbl.Types {
		if name == cloud.SpotName("m1.small") {
			spotSmall = j
		}
	}
	base := int64(42)
	k, err := n.CRNKernel([]int{spotSmall, spotSmall, spotSmall, spotSmall}, base)
	if err != nil {
		t.Fatal(err)
	}
	if k.Worlds() == 0 {
		t.Fatal("spot cost goal needs sampled worlds")
	}
	pk := k.(PartialKernel)
	if fig := pk.ValueFigure(); fig < 0 {
		t.Fatalf("ValueFigure() = %d, want the sampled cost column", fig)
	}
	evSpot, err := RunCRNKernel(k)
	if err != nil {
		t.Fatal(err)
	}
	evOD, err := n.EvaluateCRN([]int{0, 0, 0, 0}, base)
	if err != nil {
		t.Fatal(err)
	}
	if evSpot.Value <= 0 || evOD.Value <= 0 {
		t.Fatalf("non-positive costs: spot %v od %v", evSpot.Value, evOD.Value)
	}
	if evSpot.Value >= evOD.Value {
		t.Errorf("all-spot expected cost %v not below on-demand %v", evSpot.Value, evOD.Value)
	}
}

func TestSpotEvaluationDeterministic(t *testing.T) {
	w, xtbl, prices, markets := marketFixture(t)
	cons := []wlog.Constraint{{Kind: "deadline", Percentile: 0.9, Bound: 2000}}
	n, err := NewNativeMarkets(w, xtbl, prices, markets, GoalCost, cons, 200)
	if err != nil {
		t.Fatal(err)
	}
	cfg := []int{4, 1, 5, 0} // mixed spot and on-demand columns
	base := int64(7)
	a, err := n.EvaluateCRN(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.EvaluateCRN(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Feasible != b.Feasible || a.Violation != b.Violation {
		t.Errorf("same (config, base) evaluated differently: %+v vs %+v", a, b)
	}
	for ci := range a.ConsProb {
		if a.ConsProb[ci] != b.ConsProb[ci] {
			t.Errorf("constraint %d prob %v vs %v", ci, a.ConsProb[ci], b.ConsProb[ci])
		}
	}
}

// TestSpotDeltaMatchesFull: incremental dirty-cone evaluation of a spot
// configuration is bit-identical to the full path — the paired cost rows are
// part of the shared CRN matrix, untouched by the delta makespan recurrence.
func TestSpotDeltaMatchesFull(t *testing.T) {
	w, xtbl, prices, markets := marketFixture(t)
	cons := []wlog.Constraint{{Kind: "deadline", Percentile: 0.9, Bound: 2000}}
	n, err := NewNativeMarkets(w, xtbl, prices, markets, GoalCost, cons, 300)
	if err != nil {
		t.Fatal(err)
	}
	base := int64(99)
	parentCfg := []int{0, 0, 0, 0}
	childCfg := []int{0, 0, 4, 0} // task c moves to m1.small:spot

	parentSnap := n.NewSnapshot()
	pk, err := n.CRNKernelSnap(parentCfg, base, parentSnap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCRNKernel(pk); err != nil {
		t.Fatal(err)
	}
	childSnap := n.NewSnapshot()
	dk, err := n.CRNDeltaKernel(childCfg, base, []int32{2}, parentSnap, childSnap)
	if err != nil {
		t.Fatal(err)
	}
	if dk == nil {
		t.Fatal("delta kernel declined on a 2-task cone")
	}
	got, err := RunCRNKernel(dk)
	if err != nil {
		t.Fatal(err)
	}
	want, err := n.EvaluateCRN(childCfg, base)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value || got.Feasible != want.Feasible || got.Violation != want.Violation {
		t.Errorf("delta %+v != full %+v", got, want)
	}
	for ci := range want.ConsProb {
		if got.ConsProb[ci] != want.ConsProb[ci] {
			t.Errorf("constraint %d: delta prob %v != full %v", ci, got.ConsProb[ci], want.ConsProb[ci])
		}
	}
}

// TestNonSpotMarketsMatchPlainNative: a markets vector with no spot columns
// is semantically the plain evaluator — draws, figures, and reductions all
// bit-identical.
func TestNonSpotMarketsMatchPlainNative(t *testing.T) {
	w, xtbl, prices, _ := marketFixture(t)
	odMarkets := make([]MarketSpec, len(xtbl.Types))
	cons := []wlog.Constraint{
		{Kind: "deadline", Percentile: 0.9, Bound: 2000},
		{Kind: "budget", Percentile: 0.9, Bound: 1.0},
	}
	plain, err := NewNative(w, xtbl, prices, GoalCost, cons, 150)
	if err != nil {
		t.Fatal(err)
	}
	marked, err := NewNativeMarkets(w, xtbl, prices, odMarkets, GoalCost, cons, 150)
	if err != nil {
		t.Fatal(err)
	}
	if marked.HasSpotMarkets() {
		t.Fatal("all-on-demand markets flagged as spot")
	}
	cfg := []int{1, 4, 2, 5}
	a, err := plain.EvaluateCRN(cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	b, err := marked.EvaluateCRN(cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Feasible != b.Feasible || a.Violation != b.Violation {
		t.Errorf("markets-off evaluator diverged: %+v vs %+v", a, b)
	}
}

// TestFillSpotRowSemantics pins the per-world revocation arithmetic on a
// deterministic-duration task.
func TestFillSpotRowSemantics(t *testing.T) {
	td := &estimate.TimeDist{CPUSeconds: 100}
	rng := rand.New(rand.NewSource(5))
	iters := 2000
	row := make([]float64, iters)
	costRow := make([]float64, iters)

	// No hazard: duration is the plain draw, cost the (floored) clearing
	// price times the duration.
	m := MarketSpec{Spot: true, PriceMean: 0.03, PriceSigma: 0.5, OnDemandUSD: 0.1}
	fillSpotRow(td, m, rng, row, costRow)
	floorCost := m.PriceMean * cloud.SpotPriceFloorFrac * 100 / 3600
	for it := range row {
		if row[it] != 100 {
			t.Fatalf("world %d: duration %v without hazard, want 100", it, row[it])
		}
		if costRow[it] < floorCost {
			t.Fatalf("world %d: cost %v below price floor %v", it, costRow[it], floorCost)
		}
	}

	// Overwhelming hazard: essentially every world is revoked, pays the
	// on-demand rerun on top of the used spot time, and runs longer than the
	// plain duration.
	m.RevocationsPerHour = 1e6
	revoked := 0
	fillSpotRow(td, m, rng, row, costRow)
	odCost := m.OnDemandUSD * 100 / 3600
	for it := range row {
		if row[it] < 100 || costRow[it] < odCost {
			t.Fatalf("world %d: dur %v cost %v below revocation floor (100, %v)", it, row[it], costRow[it], odCost)
		}
		if row[it] > 100 {
			revoked++
		}
	}
	if revoked < iters*9/10 {
		t.Errorf("only %d/%d worlds revoked under λ=1e6", revoked, iters)
	}
}

// TestMarketsFingerprintDistinct: the fingerprint must separate otherwise
// identical evaluators with different market vectors, or the cross-search
// eval cache would alias them.
func TestMarketsFingerprintDistinct(t *testing.T) {
	w, xtbl, prices, markets := marketFixture(t)
	plain, err := NewNative(w, xtbl, prices, GoalCost, nil, 60)
	if err != nil {
		t.Fatal(err)
	}
	marked, err := NewNativeMarkets(w, xtbl, prices, markets, GoalCost, nil, 60)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Fingerprint() == marked.Fingerprint() {
		t.Error("markets not part of the fingerprint")
	}
	cheap := append([]MarketSpec(nil), markets...)
	for j := range cheap {
		if cheap[j].Spot {
			cheap[j].PriceMean *= 0.5
		}
	}
	marked2, err := NewNativeMarkets(w, xtbl, prices, cheap, GoalCost, nil, 60)
	if err != nil {
		t.Fatal(err)
	}
	if marked.Fingerprint() == marked2.Fingerprint() {
		t.Error("market prices not part of the fingerprint")
	}
}
