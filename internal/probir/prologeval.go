package probir

import (
	"fmt"
	"math/rand"
	"sync"

	"deco/internal/dag"
	"deco/internal/dist"
	"deco/internal/estimate"
	"deco/internal/prolog"
	"deco/internal/wlog"
)

// Prolog is the general evaluator: it interprets the WLog program's own
// rules with the Prolog machine, per sampled world. It is the path taken
// when a program defines its own goal/constraint predicates instead of
// relying on the engine-native constructs; it is exact but much slower, so
// Deco uses it for small problems and for validating the native evaluator.
//
// Database layout per world (the probabilistic IR realization):
//
//	task(tid).                     one per workflow task
//	vm(vid).                       one per catalog type (vid = v0..vK-1)
//	edge(root,X), edge(X,tail)     virtual source/sink as in Example 1
//	edge(X,Y).                     workflow structure
//	price(vid, $/second).
//	exetime(tid, vid, seconds).    sampled from the calibrated histograms
//	exetime(root, vid, 0). exetime(tail, vid, 0).
//	configs(tid, vid, 0|1).        the state being evaluated
//	configs(root, vid, 1). configs(tail, vid, 1).
type Prolog struct {
	W       *dag.Workflow
	Table   *estimate.Table
	Prices  []float64 // per hour, converted to $/s in the price facts
	Program *wlog.Program
	Iters   int

	base *prolog.Machine // static part: rules + structure facts
}

// typeAtom names catalog type j in the fact database.
func typeAtom(j int) prolog.Atom { return prolog.Atom(fmt.Sprintf("v%d", j)) }

// taskAtom names a task in the fact database. DAX IDs are already atoms-safe
// lowercase in our generators; quote-insensitive Atom covers the rest.
func taskAtom(id string) prolog.Atom { return prolog.Atom(id) }

// NewProlog builds the general evaluator for the given program.
func NewProlog(w *dag.Workflow, tbl *estimate.Table, prices []float64, prog *wlog.Program, iters int) (*Prolog, error) {
	if iters < 1 {
		return nil, fmt.Errorf("probir: iters must be >= 1, got %d", iters)
	}
	if prog.Goal == nil {
		return nil, fmt.Errorf("probir: program has no optimization goal")
	}
	if len(prices) != len(tbl.Types) {
		return nil, fmt.Errorf("probir: %d prices for %d types", len(prices), len(tbl.Types))
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	p := &Prolog{W: w, Table: tbl, Prices: prices, Program: prog, Iters: iters}
	m := prolog.NewMachine()
	for _, r := range prog.Rules {
		if err := m.Assert(r); err != nil {
			return nil, err
		}
	}
	// Structure facts.
	for _, t := range w.Tasks {
		if err := m.AssertFact(prolog.Comp("task", taskAtom(t.ID))); err != nil {
			return nil, err
		}
	}
	for j := range tbl.Types {
		if err := m.AssertFact(prolog.Comp("vm", typeAtom(j))); err != nil {
			return nil, err
		}
		perSec := prices[j] / 3600
		if err := m.AssertFact(prolog.Comp("price", typeAtom(j), prolog.Number(perSec))); err != nil {
			return nil, err
		}
	}
	for _, e := range w.Edges() {
		if err := m.AssertFact(prolog.Comp("edge", taskAtom(e[0]), taskAtom(e[1]))); err != nil {
			return nil, err
		}
	}
	// Virtual root and tail (Example 1: "we add task root and tail as two
	// virtual tasks to represent the start and end of the workflow").
	for _, r := range w.Roots() {
		if err := m.AssertFact(prolog.Comp("edge", prolog.Atom("root"), taskAtom(r))); err != nil {
			return nil, err
		}
	}
	for _, l := range w.Leaves() {
		if err := m.AssertFact(prolog.Comp("edge", taskAtom(l), prolog.Atom("tail"))); err != nil {
			return nil, err
		}
	}
	p.base = m
	return p, nil
}

// NumTasks implements Evaluator.
func (p *Prolog) NumTasks() int { return p.W.Len() }

// NumTypes implements Evaluator.
func (p *Prolog) NumTypes() int { return len(p.Table.Types) }

var (
	exetimeInd = prolog.Indicator{Functor: "exetime", Arity: 3}
	configsInd = prolog.Indicator{Functor: "configs", Arity: 3}
)

// assertWorld installs the config facts and one sampled world of exetime
// facts into m.
func (p *Prolog) assertWorld(m *prolog.Machine, config []int, rng *rand.Rand) error {
	m.RetractAll(exetimeInd)
	m.RetractAll(configsInd)
	for i, t := range p.W.Tasks {
		for j := range p.Table.Types {
			td, err := p.Table.Dist(t.ID, j)
			if err != nil {
				return err
			}
			secs := td.Sample(rng)
			if err := m.AssertFact(prolog.Comp("exetime", taskAtom(t.ID), typeAtom(j), prolog.Number(secs))); err != nil {
				return err
			}
			con := 0
			if config[i] == j {
				con = 1
			}
			if err := m.AssertFact(prolog.Comp("configs", taskAtom(t.ID), typeAtom(j), prolog.Number(con))); err != nil {
				return err
			}
		}
	}
	// Virtual root/tail run "for free" on every type.
	for _, v := range []prolog.Atom{"root", "tail"} {
		for j := range p.Table.Types {
			if err := m.AssertFact(prolog.Comp("exetime", v, typeAtom(j), prolog.Number(0))); err != nil {
				return err
			}
			if err := m.AssertFact(prolog.Comp("configs", v, typeAtom(j), prolog.Number(1))); err != nil {
				return err
			}
		}
	}
	return nil
}

// queryNumber proves query once and evaluates v.
func queryNumber(m *prolog.Machine, v, query prolog.Term) (float64, error) {
	res, found, err := m.Once(v, query)
	if err != nil {
		return 0, err
	}
	if !found {
		return 0, fmt.Errorf("probir: query %s has no solution", query)
	}
	n, ok := prolog.Deref(res).(prolog.Number)
	if !ok {
		return 0, fmt.Errorf("probir: query %s bound %s, not a number", query, res)
	}
	return float64(n), nil
}

// Evaluate implements Evaluator: the WLog interpreter of Algorithm 1 run for
// Iters sampled realizations, through the same per-world kernel the device
// path executes, so results are device- and schedule-independent.
func (p *Prolog) Evaluate(config []int, rng *rand.Rand) (*Evaluation, error) {
	k, err := p.Kernel(config)
	if err != nil {
		return nil, err
	}
	return RunKernel(k, rng.Int63())
}

// prologKernel interprets one world per thread. Figures: the goal value,
// then per constraint its queried value and a 0/1 satisfaction indicator.
// Machines are pooled: each concurrent world checks one out, installs its
// sampled facts (which clears any tabled answers), and returns it.
type prologKernel struct {
	p      *Prolog
	config []int
	pool   sync.Pool
}

// Kernel implements KernelEvaluator.
func (p *Prolog) Kernel(config []int) (WorldKernel, error) {
	if len(config) != p.W.Len() {
		return nil, fmt.Errorf("probir: config length %d, want %d", len(config), p.W.Len())
	}
	k := &prologKernel{p: p, config: config}
	k.pool.New = func() any { return p.base.Clone() }
	return k, nil
}

// Worlds implements WorldKernel.
func (k *prologKernel) Worlds() int { return k.p.Iters }

// Width implements WorldKernel.
func (k *prologKernel) Width() int { return 1 + 2*len(k.p.Program.Constraints) }

// Sample implements WorldKernel.
func (k *prologKernel) Sample(it int, rng *rand.Rand, out []float64) error {
	m := k.pool.Get().(*prolog.Machine)
	defer k.pool.Put(m)
	if err := k.p.assertWorld(m, k.config, rng); err != nil {
		return err
	}
	gv, err := queryNumber(m, k.p.Program.Goal.Var, k.p.Program.Goal.Query)
	if err != nil {
		return err
	}
	out[0] = gv
	for ci, c := range k.p.Program.Constraints {
		cv, err := queryNumber(m, c.Var, c.Query)
		if err != nil {
			return err
		}
		out[1+2*ci] = cv
		if cv <= c.Bound {
			out[2+2*ci] = 1
		}
	}
	return nil
}

// Reduce implements WorldKernel.
func (k *prologKernel) Reduce(sums []float64) (*Evaluation, error) {
	p := k.p
	iters := float64(p.Iters)
	ev := &Evaluation{
		Value:    sums[0] / iters,
		Feasible: true,
		ConsProb: make([]float64, len(p.Program.Constraints)),
	}
	for ci, c := range p.Program.Constraints {
		mean := sums[1+2*ci] / iters
		if c.Percentile < 0 {
			// Deterministic notion on the mean.
			if mean <= c.Bound {
				ev.ConsProb[ci] = 1
			} else {
				ev.Feasible = false
				if c.Bound > 0 {
					ev.Violation += (mean - c.Bound) / c.Bound
				} else {
					ev.Violation += mean
				}
			}
			continue
		}
		prob := sums[2+2*ci] / iters
		ev.ConsProb[ci] = prob
		if prob < c.Percentile {
			ev.Feasible = false
			ev.Violation += c.Percentile - prob
			if mean > c.Bound && c.Bound > 0 {
				ev.Violation += (mean - c.Bound) / c.Bound
			}
		}
	}
	return ev, nil
}

// ProbRule is one rule of the textual probabilistic IR: a probability
// annotation and a clause, in ProbLog's "p :: fact." notation.
type ProbRule struct {
	Prob   float64
	Clause string
}

// Translate renders the probabilistic IR of a program for one workflow: the
// deterministic rules with probability 1.0, and the probabilistic exetime
// facts with the bin probabilities of each task/type execution-time
// histogram (discretized to the given number of bins via sampling).
// This is the human-readable form of the §5.1 translation; evaluation uses
// the evaluators above rather than re-parsing this text.
func Translate(w *dag.Workflow, tbl *estimate.Table, prog *wlog.Program, bins, samples int, rng *rand.Rand) ([]ProbRule, error) {
	if bins < 1 || samples < bins {
		return nil, fmt.Errorf("probir: need bins >= 1 and samples >= bins")
	}
	var rules []ProbRule
	for _, r := range prog.Rules {
		text := r.Head.String()
		for bi, b := range r.Body {
			if bi == 0 {
				text += " :- "
			} else {
				text += ", "
			}
			text += b.String()
		}
		rules = append(rules, ProbRule{Prob: 1.0, Clause: text + "."})
	}
	for _, t := range w.Tasks {
		for j := range tbl.Types {
			td, err := tbl.Dist(t.ID, j)
			if err != nil {
				return nil, err
			}
			xs := make([]float64, samples)
			for i := range xs {
				xs[i] = td.Sample(rng)
			}
			h, err := dist.FromSamples(xs, bins)
			if err != nil {
				return nil, err
			}
			for bi := 0; bi < h.Bins(); bi++ {
				if h.Probs[bi] == 0 {
					continue
				}
				rules = append(rules, ProbRule{
					Prob:   h.Probs[bi],
					Clause: fmt.Sprintf("exetime(%s,v%d,%.1f).", t.ID, j, h.Mid(bi)),
				})
			}
		}
	}
	return rules, nil
}
