package probir

import (
	"testing"

	"deco/internal/wlog"
)

// TestWorldOrderPermutation checks the decisive-world-first ordering
// contract: the result is a valid permutation of [0, Iters), identical on
// repeated calls (cached), and bit-identical across independently built
// evaluators over the same program content and base seed — the property the
// adaptive search relies on for device invariance.
func TestWorldOrderPermutation(t *testing.T) {
	w, tbl, prices := fixture(t, false)
	cons := []wlog.Constraint{{Kind: "deadline", Percentile: 0.95, Bound: 2000}}
	const iters = 128
	n1, err := NewNative(w, tbl, prices, GoalCost, cons, iters)
	if err != nil {
		t.Fatal(err)
	}
	const base = 42
	order := n1.WorldOrder(base)
	if order == nil {
		t.Fatal("WorldOrder returned nil for a sampled-deadline program")
	}
	if len(order) != iters {
		t.Fatalf("WorldOrder length %d, want %d", len(order), iters)
	}
	seen := make([]bool, iters)
	for _, wi := range order {
		if wi < 0 || int(wi) >= iters {
			t.Fatalf("world index %d out of range [0, %d)", wi, iters)
		}
		if seen[wi] {
			t.Fatalf("world index %d appears twice", wi)
		}
		seen[wi] = true
	}

	// Repeated calls return the same cached permutation.
	again := n1.WorldOrder(base)
	for i := range order {
		if order[i] != again[i] {
			t.Fatalf("repeated WorldOrder differs at %d: %d vs %d", i, order[i], again[i])
		}
	}

	// An independently built evaluator over the same inputs orders worlds
	// identically: the signal depends only on program content and base seed.
	n2, err := NewNative(w, tbl, prices, GoalCost, cons, iters)
	if err != nil {
		t.Fatal(err)
	}
	other := n2.WorldOrder(base)
	if len(other) != len(order) {
		t.Fatalf("fresh evaluator order length %d, want %d", len(other), len(order))
	}
	for i := range order {
		if order[i] != other[i] {
			t.Fatalf("fresh evaluator order differs at %d: %d vs %d", i, order[i], other[i])
		}
	}

	// Severity must actually be descending: replay the documented signal
	// (critical-path sum over uniform configurations) and check sortedness
	// with the ascending-index tie-break.
	sev := make([]float64, iters)
	nTasks := n1.NumTasks()
	cfg := make([]int, nTasks)
	for j := 0; j < n1.NumTypes(); j++ {
		for i := range cfg {
			cfg[i] = j
		}
		rows := n1.program(base).Rows(cfg)
		f := n1.flat
		finish := make([]float64, f.Len())
		for it := 0; it < iters; it++ {
			ms := 0.0
			for k, ti := range f.Order {
				start := 0.0
				for _, pa := range f.Parents[f.ParentStart[k]:f.ParentStart[k+1]] {
					if fp := finish[pa]; fp > start {
						start = fp
					}
				}
				end := start + rows[ti][it]
				finish[ti] = end
				if end > ms {
					ms = end
				}
			}
			sev[it] += ms
		}
	}
	for i := 1; i < len(order); i++ {
		a, b := order[i-1], order[i]
		if sev[a] < sev[b] || (sev[a] == sev[b] && a > b) {
			t.Fatalf("order not severity-descending at %d: world %d (sev %g) before world %d (sev %g)",
				i, a, sev[a], b, sev[b])
		}
	}
}

// TestWorldOrderNilWithoutSampling checks that a program whose evaluation
// runs no Monte-Carlo worlds (cost goal, mean-notion constraints only)
// reports no useful ordering.
func TestWorldOrderNilWithoutSampling(t *testing.T) {
	w, tbl, prices := fixture(t, false)
	cons := []wlog.Constraint{{Kind: "budget", Percentile: -1, Bound: 100}}
	n, err := NewNative(w, tbl, prices, GoalCost, cons, 64)
	if err != nil {
		t.Fatal(err)
	}
	if order := n.WorldOrder(7); order != nil {
		t.Fatalf("WorldOrder = %v for a world-free program, want nil", order)
	}
}
