// Package probir implements the probabilistic intermediate representation of
// §5.1-5.2: WLog programs are translated into probability-annotated rules
// ("p_j : exetime(Tid,Vid,T_j)" with p_j taken from the calibrated
// performance histograms), and queries on goals and constraints are answered
// by Monte-Carlo approximate inference (Algorithm 1): sample realizations
// (worlds) of the probabilistic facts, evaluate the query deterministically
// in each world, and aggregate — the mean value for goal queries, the
// satisfaction probability for constraint queries.
//
// Two evaluators implement the same interface:
//
//   - Native: the engine-native fast path behind WLog's built-in
//     deadline/budget/totalcost/maxtime constructs (Table 1). It computes the
//     workflow makespan per world with a longest-path dynamic program and the
//     cost from mean task times (Eq. 1-3), exactly matching the semantics of
//     Example 1's rules.
//   - Prolog: the general path that interprets arbitrary user-defined WLog
//     rules with the Prolog machine per sampled world.
//
// Property tests assert the two agree on the standard scheduling program.
package probir

import (
	"fmt"
	"math/rand"

	"deco/internal/dag"
	"deco/internal/estimate"
	"deco/internal/wlog"
)

// Evaluation is the outcome of evaluating one provisioning plan (search
// state).
type Evaluation struct {
	// Value of the optimization goal (mean over sampled worlds).
	Value float64
	// Feasible reports whether every constraint holds at its required
	// probability.
	Feasible bool
	// ConsProb is the estimated satisfaction probability of each constraint
	// (for the deterministic 'mean' notion, 1 if satisfied else 0).
	ConsProb []float64
	// Violation measures how far the state is from feasibility (0 when
	// feasible); the solver uses it to rank infeasible states so the search
	// climbs toward the feasible region.
	Violation float64
}

// Evaluator scores a configuration: config[i] is the catalog type index
// assigned to workflow task i (in Workflow.Tasks order).
type Evaluator interface {
	Evaluate(config []int, rng *rand.Rand) (*Evaluation, error)
	// NumTasks and NumTypes give the dimensions of the configuration space.
	NumTasks() int
	NumTypes() int
}

// GoalKind selects what the native evaluator's goal query computes.
type GoalKind int

// Native goal kinds.
const (
	// GoalCost is the total monetary cost Σ M_ij×U_j×vm_ij (Eq. 1).
	GoalCost GoalKind = iota
	// GoalMakespan is the mean workflow execution time (Eq. 3's t_w).
	GoalMakespan
)

// Native is the histogram-driven Monte-Carlo evaluator for the standard
// workflow constructs.
type Native struct {
	W     *dag.Workflow
	Table *estimate.Table
	// PricePerHour per catalog type index.
	PricePerHour []float64
	Goal         GoalKind
	Constraints  []wlog.Constraint
	// Iters is Max_iter of Algorithm 1.
	Iters int

	order []string // topological order, cached
	index map[string]int
	// orderIdx[k] is the task index (W.Tasks order) of the k-th task in
	// topological order; orderParents[k] are its parents' task indices. The
	// per-world kernels run the longest-path DP over these integer arrays so
	// the Monte-Carlo hot loop touches no maps.
	orderIdx     []int
	orderParents [][]int
}

// NewNative builds a native evaluator. The constraint list may contain
// deadline and budget constraints; Query/Var fields are ignored (the native
// evaluator implements maxtime and totalcost itself).
func NewNative(w *dag.Workflow, tbl *estimate.Table, prices []float64, goal GoalKind, cons []wlog.Constraint, iters int) (*Native, error) {
	if iters < 1 {
		return nil, fmt.Errorf("probir: iters must be >= 1, got %d", iters)
	}
	if len(prices) != len(tbl.Types) {
		return nil, fmt.Errorf("probir: %d prices for %d types", len(prices), len(tbl.Types))
	}
	order, err := w.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, c := range cons {
		if c.Kind != "deadline" && c.Kind != "budget" {
			return nil, fmt.Errorf("probir: unsupported constraint kind %q", c.Kind)
		}
	}
	idx := make(map[string]int, len(order))
	for i, t := range w.Tasks {
		idx[t.ID] = i
	}
	orderIdx := make([]int, len(order))
	orderParents := make([][]int, len(order))
	for k, id := range order {
		orderIdx[k] = idx[id]
		parents := w.Parents(id)
		pi := make([]int, len(parents))
		for i, p := range parents {
			pi[i] = idx[p]
		}
		orderParents[k] = pi
	}
	return &Native{
		W: w, Table: tbl, PricePerHour: prices, Goal: goal,
		Constraints: cons, Iters: iters, order: order, index: idx,
		orderIdx: orderIdx, orderParents: orderParents,
	}, nil
}

// NumTasks implements Evaluator.
func (n *Native) NumTasks() int { return n.W.Len() }

// NumTypes implements Evaluator.
func (n *Native) NumTypes() int { return len(n.Table.Types) }

// MeanCost returns the deterministic total cost of a configuration from mean
// task times (Eq. 1-2): Σ_i mean_i(config)/3600 × U_config(i).
func (n *Native) MeanCost(config []int) (float64, error) {
	if len(config) != n.W.Len() {
		return 0, fmt.Errorf("probir: config length %d, want %d", len(config), n.W.Len())
	}
	total := 0.0
	for i, t := range n.W.Tasks {
		j := config[i]
		td, err := n.Table.Dist(t.ID, j)
		if err != nil {
			return 0, err
		}
		total += td.Mean() / 3600 * n.PricePerHour[j]
	}
	return total, nil
}

// sampleMakespan draws one world and returns its makespan via the
// longest-path DP over the DAG (virtual root/tail of zero weight are
// implicit).
func (n *Native) sampleMakespan(config []int, rng *rand.Rand) (float64, error) {
	finish := make(map[string]float64, len(n.order))
	ms := 0.0
	for _, id := range n.order {
		start := 0.0
		for _, p := range n.W.Parents(id) {
			if finish[p] > start {
				start = finish[p]
			}
		}
		td, err := n.Table.Dist(id, config[n.index[id]])
		if err != nil {
			return 0, err
		}
		end := start + td.Sample(rng)
		finish[id] = end
		if end > ms {
			ms = end
		}
	}
	return ms, nil
}

// sampleCost draws one world's realized cost.
func (n *Native) sampleCost(config []int, rng *rand.Rand) (float64, error) {
	total := 0.0
	for i, t := range n.W.Tasks {
		j := config[i]
		td, err := n.Table.Dist(t.ID, j)
		if err != nil {
			return 0, err
		}
		total += td.Sample(rng) / 3600 * n.PricePerHour[j]
	}
	return total, nil
}

// MeanMakespan estimates the expected makespan by Monte-Carlo sampling.
func (n *Native) MeanMakespan(config []int, rng *rand.Rand) (float64, error) {
	sum := 0.0
	for it := 0; it < n.Iters; it++ {
		ms, err := n.sampleMakespan(config, rng)
		if err != nil {
			return 0, err
		}
		sum += ms
	}
	return sum / float64(n.Iters), nil
}

// Evaluate implements Evaluator: Monte-Carlo inference per Algorithm 1, run
// as the per-world kernel plus reduction of kernel.go. Each world draws from
// its own (state, iteration) substream seeded off rng, so a device running
// the same kernel in parallel produces bit-identical results.
func (n *Native) Evaluate(config []int, rng *rand.Rand) (*Evaluation, error) {
	k, err := n.Kernel(config)
	if err != nil {
		return nil, err
	}
	return RunKernel(k, rng.Int63())
}

// configSampler resolves one configuration against the time-distribution
// table once, so per-world sampling runs over integer-indexed arrays with no
// map lookups in the Monte-Carlo hot loop.
type configSampler struct {
	n *Native
	s *estimate.Sampler
	// pricePerTask is the hourly price of each task's configured type.
	pricePerTask []float64
}

// newSampler builds the per-world sampler of a configuration; config indices
// must already be validated.
func (n *Native) newSampler(config []int) (*configSampler, error) {
	ids := make([]string, len(n.W.Tasks))
	for i, t := range n.W.Tasks {
		ids[i] = t.ID
	}
	s, err := n.Table.Sampler(ids, config)
	if err != nil {
		return nil, err
	}
	prices := make([]float64, len(config))
	for i, j := range config {
		prices[i] = n.PricePerHour[j]
	}
	return &configSampler{n: n, s: s, pricePerTask: prices}, nil
}

// makespan draws one world and returns its makespan via the longest-path DP
// over the DAG (virtual root/tail of zero weight are implicit).
func (cs *configSampler) makespan(rng *rand.Rand) float64 {
	finish := make([]float64, cs.s.Len())
	ms := 0.0
	for k, ti := range cs.n.orderIdx {
		start := 0.0
		for _, p := range cs.n.orderParents[k] {
			if finish[p] > start {
				start = finish[p]
			}
		}
		end := start + cs.s.Sample(ti, rng)
		finish[ti] = end
		if end > ms {
			ms = end
		}
	}
	return ms
}

// cost draws one world's realized cost.
func (cs *configSampler) cost(rng *rand.Rand) float64 {
	total := 0.0
	for i := 0; i < cs.s.Len(); i++ {
		total += cs.s.Sample(i, rng) / 3600 * cs.pricePerTask[i]
	}
	return total
}
