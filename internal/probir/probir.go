// Package probir implements the probabilistic intermediate representation of
// §5.1-5.2: WLog programs are translated into probability-annotated rules
// ("p_j : exetime(Tid,Vid,T_j)" with p_j taken from the calibrated
// performance histograms), and queries on goals and constraints are answered
// by Monte-Carlo approximate inference (Algorithm 1): sample realizations
// (worlds) of the probabilistic facts, evaluate the query deterministically
// in each world, and aggregate — the mean value for goal queries, the
// satisfaction probability for constraint queries.
//
// Two evaluators implement the same interface:
//
//   - Native: the engine-native fast path behind WLog's built-in
//     deadline/budget/totalcost/maxtime constructs (Table 1). It computes the
//     workflow makespan per world with a longest-path dynamic program and the
//     cost from mean task times (Eq. 1-3), exactly matching the semantics of
//     Example 1's rules.
//   - Prolog: the general path that interprets arbitrary user-defined WLog
//     rules with the Prolog machine per sampled world.
//
// Property tests assert the two agree on the standard scheduling program.
package probir

import (
	"fmt"
	"math/rand"
	"sync"

	"deco/internal/dag"
	"deco/internal/estimate"
	"deco/internal/wlog"
)

// Evaluation is the outcome of evaluating one provisioning plan (search
// state).
type Evaluation struct {
	// Value of the optimization goal (mean over sampled worlds).
	Value float64
	// Feasible reports whether every constraint holds at its required
	// probability.
	Feasible bool
	// ConsProb is the estimated satisfaction probability of each constraint
	// (for the deterministic 'mean' notion, 1 if satisfied else 0).
	ConsProb []float64
	// Violation measures how far the state is from feasibility (0 when
	// feasible); the solver uses it to rank infeasible states so the search
	// climbs toward the feasible region.
	Violation float64
}

// Evaluator scores a configuration: config[i] is the catalog type index
// assigned to workflow task i (in Workflow.Tasks order).
type Evaluator interface {
	Evaluate(config []int, rng *rand.Rand) (*Evaluation, error)
	// NumTasks and NumTypes give the dimensions of the configuration space.
	NumTasks() int
	NumTypes() int
}

// GoalKind selects what the native evaluator's goal query computes.
type GoalKind int

// Native goal kinds.
const (
	// GoalCost is the total monetary cost Σ M_ij×U_j×vm_ij (Eq. 1).
	GoalCost GoalKind = iota
	// GoalMakespan is the mean workflow execution time (Eq. 3's t_w).
	GoalMakespan
)

// Native is the histogram-driven Monte-Carlo evaluator for the standard
// workflow constructs.
type Native struct {
	W     *dag.Workflow
	Table *estimate.Table
	// PricePerHour per catalog type index.
	PricePerHour []float64
	Goal         GoalKind
	Constraints  []wlog.Constraint
	// Iters is Max_iter of Algorithm 1.
	Iters int

	// Markets, when non-nil, carries one MarketSpec per table column (see
	// market.go); hasSpot caches whether any column is a spot offering.
	Markets []MarketSpec
	hasSpot bool

	// flat/ftab are the compiled index-based forms of the DAG and the
	// time-distribution table: the per-world kernels run the longest-path DP
	// over dense integer arrays so the Monte-Carlo hot loop touches no maps
	// and performs no per-world allocations.
	flat *dag.Flat
	ftab *estimate.FlatTable

	// progs caches compiled CRN Programs by base seed with LRU eviction
	// (see flat.go).
	progMu   sync.Mutex
	progs    map[int64]*progEntry
	progTick uint64

	// snapFree freelists finish-time Snapshots for delta evaluation (see
	// delta.go). A bounded freelist rather than a sync.Pool: snapshots are
	// large (n·worlds floats) and cycle through every warm expansion, so
	// letting the GC clear the pool between batches would re-allocate whole
	// arenas mid-search.
	snapMu   sync.Mutex
	snapFree []*Snapshot

	fpOnce sync.Once
	fp     string
}

// NewNative builds a native evaluator. The constraint list may contain
// deadline and budget constraints; Query/Var fields are ignored (the native
// evaluator implements maxtime and totalcost itself).
func NewNative(w *dag.Workflow, tbl *estimate.Table, prices []float64, goal GoalKind, cons []wlog.Constraint, iters int) (*Native, error) {
	if iters < 1 {
		return nil, fmt.Errorf("probir: iters must be >= 1, got %d", iters)
	}
	if len(prices) != len(tbl.Types) {
		return nil, fmt.Errorf("probir: %d prices for %d types", len(prices), len(tbl.Types))
	}
	flat, err := w.Flatten()
	if err != nil {
		return nil, err
	}
	ftab, err := tbl.Flatten(flat.IDs)
	if err != nil {
		return nil, err
	}
	for _, c := range cons {
		if c.Kind != "deadline" && c.Kind != "budget" {
			return nil, fmt.Errorf("probir: unsupported constraint kind %q", c.Kind)
		}
	}
	return &Native{
		W: w, Table: tbl, PricePerHour: prices, Goal: goal,
		Constraints: cons, Iters: iters, flat: flat, ftab: ftab,
	}, nil
}

// NumTasks implements Evaluator.
func (n *Native) NumTasks() int { return n.W.Len() }

// NumTypes implements Evaluator.
func (n *Native) NumTypes() int { return len(n.Table.Types) }

// MeanCost returns the deterministic total cost of a configuration from mean
// task times (Eq. 1-2): Σ_i mean_i(config)/3600 × U_config(i), plus any
// deterministic cross-region egress cost. For spot columns U is the mean
// clearing price and revocation reruns are ignored — this is the world-free
// anchor; the sampled expected-cost-under-revocation lives in the kernel.
func (n *Native) MeanCost(config []int) (float64, error) {
	if err := n.checkConfig(config); err != nil {
		return 0, err
	}
	total := 0.0
	for i, j := range config {
		td := n.ftab.Dist(i, j)
		total += td.Mean()/3600*n.PricePerHour[j] + td.XferCostUSD
	}
	return total, nil
}

// MeanMakespan estimates the expected makespan by Monte-Carlo sampling over
// the flat evaluation core (the CRN base is drawn from rng).
func (n *Native) MeanMakespan(config []int, rng *rand.Rand) (float64, error) {
	if err := n.checkConfig(config); err != nil {
		return 0, err
	}
	rows := n.program(rng.Int63()).Rows(config)
	f := n.flat
	finish := make([]float64, f.Len())
	sum := 0.0
	for it := 0; it < n.Iters; it++ {
		ms := 0.0
		for k, ti := range f.Order {
			start := 0.0
			for _, p := range f.Parents[f.ParentStart[k]:f.ParentStart[k+1]] {
				if fp := finish[p]; fp > start {
					start = fp
				}
			}
			end := start + rows[ti][it]
			finish[ti] = end
			if end > ms {
				ms = end
			}
		}
		sum += ms
	}
	return sum / float64(n.Iters), nil
}

// Evaluate implements Evaluator: Monte-Carlo inference per Algorithm 1, run
// as the per-world kernel plus reduction of kernel.go under the CRN contract
// with a base seed drawn from rng. Results are bit-identical whether the
// kernel's worlds run sequentially or in parallel on a device.
func (n *Native) Evaluate(config []int, rng *rand.Rand) (*Evaluation, error) {
	return n.EvaluateCRN(config, rng.Int63())
}
