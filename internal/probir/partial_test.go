package probir

import (
	"math/rand"
	"testing"

	"deco/internal/wlog"
)

// TestRunCRNKernelRangeChains verifies the chunk-resumable executor: folding
// worlds chunk by chunk into running sums is bit-identical to a single
// sequential run, for any chunk boundaries.
func TestRunCRNKernelRangeChains(t *testing.T) {
	cons := []wlog.Constraint{
		{Kind: "deadline", Percentile: 0.9, Bound: 2500},
		{Kind: "budget", Percentile: 0.8, Bound: 5},
	}
	n := deltaFixture(t, 24, 41, GoalCost, cons, 64)
	cfg := make([]int, 24)
	rng := rand.New(rand.NewSource(5))
	for i := range cfg {
		cfg[i] = rng.Intn(n.NumTypes())
	}
	k, err := n.CRNKernel(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	full := make([]float64, k.Width())
	if err := RunCRNKernelRange(k, full, 0, k.Worlds()); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		chunked := make([]float64, k.Width())
		lo := 0
		for lo < k.Worlds() {
			hi := lo + 1 + rng.Intn(20)
			if hi > k.Worlds() {
				hi = k.Worlds()
			}
			if err := RunCRNKernelRange(k, chunked, lo, hi); err != nil {
				t.Fatal(err)
			}
			lo = hi
		}
		for w := range full {
			if chunked[w] != full[w] {
				t.Fatalf("trial %d: chunked sums[%d]=%v != full %v", trial, w, chunked[w], full[w])
			}
		}
	}
}

// TestReducePartialFullIsReduce asserts the contract adaptive evaluation
// rests on: ReducePartial over all worlds is bit-identical to Reduce.
func TestReducePartialFullIsReduce(t *testing.T) {
	for _, goal := range []GoalKind{GoalCost, GoalMakespan} {
		cons := []wlog.Constraint{
			{Kind: "deadline", Percentile: 0.9, Bound: 2500},
			{Kind: "budget", Percentile: 0.8, Bound: 5},
			{Kind: "budget", Percentile: -1, Bound: 50},
		}
		n := deltaFixture(t, 20, 17, goal, cons, 48)
		cfg := make([]int, 20)
		rng := rand.New(rand.NewSource(3))
		for i := range cfg {
			cfg[i] = rng.Intn(n.NumTypes())
		}
		wk, err := n.CRNKernel(cfg, 7)
		if err != nil {
			t.Fatal(err)
		}
		k := wk.(*nativeKernel)
		sums := make([]float64, k.Width())
		if err := RunCRNKernelRange(k, sums, 0, k.Worlds()); err != nil {
			t.Fatal(err)
		}
		full, err := k.Reduce(sums)
		if err != nil {
			t.Fatal(err)
		}
		part, err := k.ReducePartial(sums, k.Worlds())
		if err != nil {
			t.Fatal(err)
		}
		sameEval(t, int(goal), part, full)
	}
}

// TestReducePartialPessimistic checks that a prefix reduction never claims
// feasibility the remaining worlds could retract, and reports constraint
// probabilities no higher than the full evaluation's.
func TestReducePartialPessimistic(t *testing.T) {
	cons := []wlog.Constraint{{Kind: "deadline", Percentile: 0.9, Bound: 2500}}
	n := deltaFixture(t, 20, 23, GoalCost, cons, 64)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		cfg := make([]int, 20)
		for i := range cfg {
			cfg[i] = rng.Intn(n.NumTypes())
		}
		wk, err := n.CRNKernel(cfg, 7)
		if err != nil {
			t.Fatal(err)
		}
		k := wk.(*nativeKernel)
		fullSums := make([]float64, k.Width())
		if err := RunCRNKernelRange(k, fullSums, 0, k.Worlds()); err != nil {
			t.Fatal(err)
		}
		full, err := k.Reduce(fullSums)
		if err != nil {
			t.Fatal(err)
		}
		sums := make([]float64, k.Width())
		lo := 0
		for _, hi := range []int{8, 24, 48} {
			if err := RunCRNKernelRange(k, sums, lo, hi); err != nil {
				t.Fatal(err)
			}
			lo = hi
			part, err := k.ReducePartial(sums, hi)
			if err != nil {
				t.Fatal(err)
			}
			if part.Feasible && !full.Feasible {
				t.Fatalf("trial %d: partial at %d worlds claims feasible, full is not", trial, hi)
			}
			for ci := range part.ConsProb {
				if part.ConsProb[ci] > full.ConsProb[ci] {
					t.Fatalf("trial %d: partial prob %v exceeds full %v at %d worlds",
						trial, part.ConsProb[ci], full.ConsProb[ci], hi)
				}
			}
		}
	}
}

// TestIndicators covers the capability probe: percentile constraints expose
// indicator figures; a deterministic-notion deadline blocks partial
// evaluation; a deterministic budget does not; the goal decides ValueFigure.
func TestIndicators(t *testing.T) {
	cfgFor := func(n *Native) []int { return make([]int, n.W.Len()) }

	n := deltaFixture(t, 8, 3, GoalCost, []wlog.Constraint{
		{Kind: "deadline", Percentile: 0.96, Bound: 2500},
		{Kind: "budget", Percentile: -1, Bound: 50},
		{Kind: "budget", Percentile: 0.8, Bound: 5},
	}, 16)
	wk, err := n.CRNKernel(cfgFor(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	k := wk.(*nativeKernel)
	idx, targets, ok := k.Indicators()
	if !ok {
		t.Fatal("indicator-backed constraints reported as not partialable")
	}
	if len(idx) != 2 || len(targets) != 2 || targets[0] != 0.96 || targets[1] != 0.8 {
		t.Fatalf("Indicators() = %v, %v", idx, targets)
	}
	for _, fi := range idx {
		if fi < 0 || fi >= k.Width() {
			t.Fatalf("indicator figure %d out of width %d", fi, k.Width())
		}
	}
	if vf := k.ValueFigure(); vf != -1 {
		t.Fatalf("GoalCost ValueFigure() = %d, want -1", vf)
	}

	n = deltaFixture(t, 8, 3, GoalMakespan, []wlog.Constraint{
		{Kind: "deadline", Percentile: -1, Bound: 2500},
	}, 16)
	wk, err = n.CRNKernel(cfgFor(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	k = wk.(*nativeKernel)
	if _, _, ok := k.Indicators(); ok {
		t.Fatal("deterministic-notion deadline must block partial evaluation")
	}
	if vf := k.ValueFigure(); vf != k.msIdx {
		t.Fatalf("GoalMakespan ValueFigure() = %d, want %d", vf, k.msIdx)
	}
}
