package probir

import (
	"fmt"
	"math/rand"
)

// This file decomposes Monte-Carlo evaluation into the paper's GPU kernel
// shape (§5.2): a *per-world kernel* — one thread samples one realization of
// the probabilistic facts and computes its figures — plus a *reduction* that
// folds the per-world figures into the Evaluation. Every aggregate Algorithm
// 1 needs (goal means, constraint means, satisfaction counts) is a sum over
// worlds, so the reduction is exactly the shared-memory block sum of §5.2,
// and a device may run the worlds of one state in any order or in parallel.
//
// Determinism: the canonical contract for Native programs is common random
// numbers (flat.go) — duration draws are keyed by (task, type, iteration)
// against a search-level base seed, kernels ignore the per-world rng, and
// every state in a search shares the same world realizations. Kernels that
// cannot share realizations (the Prolog interpreter, the runtime's
// conditioned residual kernels) instead draw world `it` from
// WorldRNG(base, it), a substream keyed by (state, iteration). Under either
// contract a world's figures depend only on (kernel, base, it), so results
// are bit-identical whether the worlds ran sequentially, state-parallel, or
// two-level on a device.

// WorldKernel is one state's Monte-Carlo evaluation, decomposed for
// block/thread execution.
type WorldKernel interface {
	// Worlds is the number of Monte-Carlo iterations (threads per block).
	// 0 means the evaluation is deterministic and needs no sampled worlds.
	Worlds() int
	// Width is the number of figures each world produces.
	Width() int
	// Sample computes world it into out (len Width(), zeroed). It must be
	// safe for concurrent calls with distinct it and draw only from rng.
	Sample(it int, rng *rand.Rand, out []float64) error
	// Reduce folds the figure-wise sums over all worlds (len Width()) into
	// the final evaluation.
	Reduce(sums []float64) (*Evaluation, error)
}

// KernelEvaluator is an Evaluator whose Monte-Carlo loop decomposes into a
// WorldKernel, enabling iteration-level device parallelism.
type KernelEvaluator interface {
	Evaluator
	// Kernel builds the per-world kernel for one configuration.
	Kernel(config []int) (WorldKernel, error)
}

// worldSeed mixes a state-level base seed with an iteration index
// (splitmix64 finalizer), giving every (state, iteration) pair its own
// statistically independent substream.
func worldSeed(base int64, it int) int64 {
	z := uint64(base) + uint64(it+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// WorldRNG returns the deterministic rng of Monte-Carlo iteration it within
// the substream identified by base. The solver derives base from its seed
// and the state key; results therefore depend on neither the device nor the
// schedule.
func WorldRNG(base int64, it int) *rand.Rand {
	return rand.New(rand.NewSource(worldSeed(base, it)))
}

// RunKernel executes a kernel's worlds sequentially from the given substream
// base and reduces them, accumulating in iteration order — the reference
// semantics every device execution must (and does) match bit-identically.
func RunKernel(k WorldKernel, base int64) (*Evaluation, error) {
	width := k.Width()
	sums := make([]float64, width)
	tmp := make([]float64, width)
	for it := 0; it < k.Worlds(); it++ {
		for w := range tmp {
			tmp[w] = 0
		}
		if err := k.Sample(it, WorldRNG(base, it), tmp); err != nil {
			return nil, err
		}
		for w := range tmp {
			sums[w] += tmp[w]
		}
	}
	return k.Reduce(sums)
}

// nativeKernel is the Native evaluator's per-world kernel under the CRN
// contract. Its figures are laid out as: the sampled makespan (if any
// goal/constraint needs it), the sampled world cost (if a probabilistic
// budget needs it), then one 0/1 satisfaction indicator per probabilistic
// constraint. Makespan and cost figures of one world share the same
// per-(task, world) duration draws from the program's CRN matrix (under the
// old state-keyed contract they drew separately from one stream).
type nativeKernel struct {
	n      *Native
	config []int

	prog *Program
	// rows[i] is task i's CRN duration row (rows[i][it] = duration in world
	// it); nil when Worlds() == 0. pricePerTask is each task's hourly price
	// under the configuration, resolved only when cost samples are needed.
	rows         [][]float64
	pricePerTask []float64
	meanCost     float64 // deterministic Eq. 1-2 cost, computed once
	// costRows[i], non-nil only when task i sits on a spot column, is the
	// paired per-world realized cost row (market.go); xferTotal is the
	// configuration's deterministic cross-region egress cost, added to every
	// world's cost figure.
	costRows  [][]float64
	xferTotal float64

	width    int
	msIdx    int   // -1 when no makespan samples are needed
	costIdx  int   // -1 when no cost samples are needed
	indIdx   []int // per constraint: indicator figure, or -1
	needMS   bool
	needCost bool

	// capture, when non-nil, receives every world's finish-time row,
	// makespan, and argmax task as Sample runs — the parent-side half of
	// delta evaluation (delta.go). parent/cone/dirtyMask, when set, switch
	// Sample's makespan pass to the incremental dirty-cone recurrence that
	// starts from the parent snapshot instead of the full topological DP.
	capture   *Snapshot
	parent    *Snapshot
	cone      []int32 // dirty-cone positions into flat.Order, ascending
	dirtyMask []bool  // per task: duration row differs from the parent's
	lastDirty int     // index into cone of the last dirty task
}

// CRNKernel implements CRNEvaluator: it builds the per-world kernel of one
// configuration against the shared duration matrix of the given base seed.
// Row filling happens here (serially, under the program's fill lock), so
// Sample is read-only and a device may run worlds concurrently.
func (n *Native) CRNKernel(config []int, base int64) (WorldKernel, error) {
	k, err := n.newCRNKernel(config, base)
	if err != nil {
		return nil, err
	}
	return k, nil
}

// newCRNKernel is the concrete-typed CRNKernel build, shared with the
// snapshot-capturing and delta variants in delta.go.
func (n *Native) newCRNKernel(config []int, base int64) (*nativeKernel, error) {
	if err := n.checkConfig(config); err != nil {
		return nil, err
	}
	k := &nativeKernel{n: n, config: config, msIdx: -1, costIdx: -1}
	k.needMS = n.Goal == GoalMakespan
	for _, c := range n.Constraints {
		if c.Kind == "deadline" {
			k.needMS = true
		}
		if c.Kind == "budget" && c.Percentile >= 0 {
			k.needCost = true
		}
	}
	// Spot markets make cost a random variable for every state of the search
	// (uniform kernel shape — the compiled solver resolves figure layout once
	// per problem), so the cost figure is always sampled.
	if n.hasSpot {
		k.needCost = true
	}
	if k.needMS {
		k.msIdx = k.width
		k.width++
	}
	if k.needCost {
		k.costIdx = k.width
		k.width++
	}
	k.indIdx = make([]int, len(n.Constraints))
	for ci, c := range n.Constraints {
		k.indIdx[ci] = -1
		if c.Percentile >= 0 {
			k.indIdx[ci] = k.width
			k.width++
		}
	}
	var err error
	if k.meanCost, err = n.MeanCost(config); err != nil {
		return nil, err
	}
	if k.needMS || k.needCost {
		k.prog = n.program(base)
		k.rows = k.prog.Rows(config)
	}
	if k.needCost {
		k.pricePerTask = make([]float64, len(config))
		for i, j := range config {
			k.pricePerTask[i] = n.PricePerHour[j]
			k.xferTotal += n.ftab.Dist(i, j).XferCostUSD
		}
		if n.hasSpot {
			k.costRows = k.prog.CostRows(config)
		}
	}
	return k, nil
}

// Worlds implements WorldKernel: no sampled worlds when every figure is
// deterministic.
func (k *nativeKernel) Worlds() int {
	if !k.needMS && !k.needCost {
		return 0
	}
	return k.n.Iters
}

// Width implements WorldKernel.
func (k *nativeKernel) Width() int { return k.width }

// Sample implements WorldKernel: read world it's task durations from the CRN
// matrix, compute the makespan — by the full longest-path DP over pooled
// scratch, or by the incremental dirty-cone recurrence when a parent
// snapshot is attached — and sum the realized cost, then score the
// probabilistic constraints. The rng is ignored (may be nil): all randomness
// was drawn at row-fill time.
func (k *nativeKernel) Sample(it int, _ *rand.Rand, out []float64) error {
	var ms, cost float64
	if k.needMS {
		if k.parent != nil {
			ms = k.sampleDeltaMS(it)
		} else {
			ms = k.sampleFullMS(it)
		}
		out[k.msIdx] = ms
	}
	if k.needCost {
		cost = k.xferTotal
		if k.costRows != nil {
			for i, row := range k.rows {
				if cr := k.costRows[i]; cr != nil {
					cost += cr[it]
					continue
				}
				cost += row[it] / 3600 * k.pricePerTask[i]
			}
		} else {
			for i, row := range k.rows {
				cost += row[it] / 3600 * k.pricePerTask[i]
			}
		}
		out[k.costIdx] = cost
	}
	for ci, c := range k.n.Constraints {
		fi := k.indIdx[ci]
		if fi < 0 {
			continue
		}
		switch c.Kind {
		case "deadline":
			if ms <= c.Bound {
				out[fi] = 1
			}
		case "budget":
			if cost <= c.Bound {
				out[fi] = 1
			}
		}
	}
	return nil
}

// sampleFullMS runs the full longest-path DP for world it. Without a capture
// snapshot the finish times live in pooled scratch exactly as before delta
// evaluation existed; with one they are written into the snapshot's world
// row, along with the world's makespan and argmax task, so children of this
// state can later be evaluated incrementally.
func (k *nativeKernel) sampleFullMS(it int) float64 {
	f := k.n.flat
	ms := 0.0
	if k.capture == nil {
		sp := k.prog.scratch.Get().(*[]float64)
		finish := *sp
		// No zeroing needed: topological order writes finish[ti] before any
		// child reads it, and every task is written each world.
		for ki, ti := range f.Order {
			start := 0.0
			for _, p := range f.Parents[f.ParentStart[ki]:f.ParentStart[ki+1]] {
				if fp := finish[p]; fp > start {
					start = fp
				}
			}
			end := start + k.rows[ti][it]
			finish[ti] = end
			if end > ms {
				ms = end
			}
		}
		k.prog.scratch.Put(sp)
		return ms
	}
	n0 := f.Len()
	finish := k.capture.finish[it*n0 : (it+1)*n0]
	amax := int32(-1)
	for ki, ti := range f.Order {
		start := 0.0
		for _, p := range f.Parents[f.ParentStart[ki]:f.ParentStart[ki+1]] {
			if fp := finish[p]; fp > start {
				start = fp
			}
		}
		end := start + k.rows[ti][it]
		finish[ti] = end
		if end > ms {
			ms = end
			amax = ti
		}
	}
	k.capture.ms[it] = ms
	k.capture.amax[it] = amax
	return ms
}

// Reduce implements WorldKernel: the same aggregation Algorithm 1 performs,
// from figure sums instead of a sample loop.
func (k *nativeKernel) Reduce(sums []float64) (*Evaluation, error) {
	n := k.n
	iters := float64(n.Iters)
	ev := &Evaluation{Feasible: true, ConsProb: make([]float64, len(n.Constraints))}

	switch n.Goal {
	case GoalCost:
		if n.hasSpot {
			// Expected cost under revocation: the mean of the sampled
			// per-world realized costs.
			ev.Value = sums[k.costIdx] / iters
		} else {
			ev.Value = k.meanCost
		}
	case GoalMakespan:
		ev.Value = sums[k.msIdx] / iters
	default:
		return nil, fmt.Errorf("probir: unknown goal kind %d", n.Goal)
	}

	for ci, c := range n.Constraints {
		var prob, mean float64
		switch c.Kind {
		case "deadline":
			mean = sums[k.msIdx] / iters
			if c.Percentile < 0 {
				// Deterministic notion: expected makespan within bound.
				if mean <= c.Bound {
					prob = 1
				}
			} else {
				prob = sums[k.indIdx[ci]] / iters
			}
		case "budget":
			if c.Percentile < 0 {
				mean = k.meanCost
				if mean <= c.Bound {
					prob = 1
				}
			} else {
				mean = sums[k.costIdx] / iters
				prob = sums[k.indIdx[ci]] / iters
			}
		}
		ev.ConsProb[ci] = prob
		if c.Percentile < 0 {
			if prob < 1 {
				ev.Feasible = false
				if c.Bound > 0 {
					ev.Violation += (mean - c.Bound) / c.Bound
				} else {
					ev.Violation += mean
				}
			}
		} else if prob < c.Percentile {
			ev.Feasible = false
			// The probability gap alone has no gradient once prob hits 0, so
			// add the relative mean excess to keep the search climbing.
			ev.Violation += c.Percentile - prob
			if mean > c.Bound && c.Bound > 0 {
				ev.Violation += (mean - c.Bound) / c.Bound
			}
		}
	}
	return ev, nil
}
