package probir

import (
	"fmt"
	"math/rand"
)

// This file decomposes Monte-Carlo evaluation into the paper's GPU kernel
// shape (§5.2): a *per-world kernel* — one thread samples one realization of
// the probabilistic facts and computes its figures — plus a *reduction* that
// folds the per-world figures into the Evaluation. Every aggregate Algorithm
// 1 needs (goal means, constraint means, satisfaction counts) is a sum over
// worlds, so the reduction is exactly the shared-memory block sum of §5.2,
// and a device may run the worlds of one state in any order or in parallel.
//
// Determinism: world `it` of a state draws from WorldRNG(base, it), a
// substream keyed by (state, iteration) rather than a single rng consumed in
// iteration order. Evaluators' own Evaluate methods run the same kernels
// through RunKernel, so results are bit-identical whether the worlds ran
// sequentially, state-parallel, or two-level on a device.

// WorldKernel is one state's Monte-Carlo evaluation, decomposed for
// block/thread execution.
type WorldKernel interface {
	// Worlds is the number of Monte-Carlo iterations (threads per block).
	// 0 means the evaluation is deterministic and needs no sampled worlds.
	Worlds() int
	// Width is the number of figures each world produces.
	Width() int
	// Sample computes world it into out (len Width(), zeroed). It must be
	// safe for concurrent calls with distinct it and draw only from rng.
	Sample(it int, rng *rand.Rand, out []float64) error
	// Reduce folds the figure-wise sums over all worlds (len Width()) into
	// the final evaluation.
	Reduce(sums []float64) (*Evaluation, error)
}

// KernelEvaluator is an Evaluator whose Monte-Carlo loop decomposes into a
// WorldKernel, enabling iteration-level device parallelism.
type KernelEvaluator interface {
	Evaluator
	// Kernel builds the per-world kernel for one configuration.
	Kernel(config []int) (WorldKernel, error)
}

// worldSeed mixes a state-level base seed with an iteration index
// (splitmix64 finalizer), giving every (state, iteration) pair its own
// statistically independent substream.
func worldSeed(base int64, it int) int64 {
	z := uint64(base) + uint64(it+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// WorldRNG returns the deterministic rng of Monte-Carlo iteration it within
// the substream identified by base. The solver derives base from its seed
// and the state key; results therefore depend on neither the device nor the
// schedule.
func WorldRNG(base int64, it int) *rand.Rand {
	return rand.New(rand.NewSource(worldSeed(base, it)))
}

// RunKernel executes a kernel's worlds sequentially from the given substream
// base and reduces them, accumulating in iteration order — the reference
// semantics every device execution must (and does) match bit-identically.
func RunKernel(k WorldKernel, base int64) (*Evaluation, error) {
	width := k.Width()
	sums := make([]float64, width)
	tmp := make([]float64, width)
	for it := 0; it < k.Worlds(); it++ {
		for w := range tmp {
			tmp[w] = 0
		}
		if err := k.Sample(it, WorldRNG(base, it), tmp); err != nil {
			return nil, err
		}
		for w := range tmp {
			sums[w] += tmp[w]
		}
	}
	return k.Reduce(sums)
}

// nativeKernel is the Native evaluator's per-world kernel. Its figures are
// laid out as: the sampled makespan (if any goal/constraint needs it), the
// sampled world cost (if a probabilistic budget needs it), then one 0/1
// satisfaction indicator per probabilistic constraint.
type nativeKernel struct {
	n      *Native
	config []int

	sampler  *configSampler
	meanCost float64 // deterministic Eq. 1-2 cost, computed once

	width     int
	msIdx     int   // -1 when no makespan samples are needed
	costIdx   int   // -1 when no cost samples are needed
	indIdx    []int // per constraint: indicator figure, or -1
	needMS    bool
	needCost  bool
}

// Kernel implements KernelEvaluator.
func (n *Native) Kernel(config []int) (WorldKernel, error) {
	if len(config) != n.W.Len() {
		return nil, fmt.Errorf("probir: config length %d, want %d", len(config), n.W.Len())
	}
	for _, j := range config {
		if j < 0 || j >= n.NumTypes() {
			return nil, fmt.Errorf("probir: type index %d out of range", j)
		}
	}
	k := &nativeKernel{n: n, config: config, msIdx: -1, costIdx: -1}
	k.needMS = n.Goal == GoalMakespan
	for _, c := range n.Constraints {
		if c.Kind == "deadline" {
			k.needMS = true
		}
		if c.Kind == "budget" && c.Percentile >= 0 {
			k.needCost = true
		}
	}
	if k.needMS {
		k.msIdx = k.width
		k.width++
	}
	if k.needCost {
		k.costIdx = k.width
		k.width++
	}
	k.indIdx = make([]int, len(n.Constraints))
	for ci, c := range n.Constraints {
		k.indIdx[ci] = -1
		if c.Percentile >= 0 {
			k.indIdx[ci] = k.width
			k.width++
		}
	}
	var err error
	if k.meanCost, err = n.MeanCost(config); err != nil {
		return nil, err
	}
	if k.sampler, err = n.newSampler(config); err != nil {
		return nil, err
	}
	return k, nil
}

// Worlds implements WorldKernel: no sampled worlds when every figure is
// deterministic.
func (k *nativeKernel) Worlds() int {
	if !k.needMS && !k.needCost {
		return 0
	}
	return k.n.Iters
}

// Width implements WorldKernel.
func (k *nativeKernel) Width() int { return k.width }

// Sample implements WorldKernel: draw one realization of every task's
// execution time, run the longest-path DP for the makespan and sum the
// realized cost, then score the probabilistic constraints.
func (k *nativeKernel) Sample(it int, rng *rand.Rand, out []float64) error {
	var ms, cost float64
	if k.needMS {
		ms = k.sampler.makespan(rng)
		out[k.msIdx] = ms
	}
	if k.needCost {
		cost = k.sampler.cost(rng)
		out[k.costIdx] = cost
	}
	for ci, c := range k.n.Constraints {
		fi := k.indIdx[ci]
		if fi < 0 {
			continue
		}
		switch c.Kind {
		case "deadline":
			if ms <= c.Bound {
				out[fi] = 1
			}
		case "budget":
			if cost <= c.Bound {
				out[fi] = 1
			}
		}
	}
	return nil
}

// Reduce implements WorldKernel: the same aggregation Algorithm 1 performs,
// from figure sums instead of a sample loop.
func (k *nativeKernel) Reduce(sums []float64) (*Evaluation, error) {
	n := k.n
	iters := float64(n.Iters)
	ev := &Evaluation{Feasible: true, ConsProb: make([]float64, len(n.Constraints))}

	switch n.Goal {
	case GoalCost:
		ev.Value = k.meanCost
	case GoalMakespan:
		ev.Value = sums[k.msIdx] / iters
	default:
		return nil, fmt.Errorf("probir: unknown goal kind %d", n.Goal)
	}

	for ci, c := range n.Constraints {
		var prob, mean float64
		switch c.Kind {
		case "deadline":
			mean = sums[k.msIdx] / iters
			if c.Percentile < 0 {
				// Deterministic notion: expected makespan within bound.
				if mean <= c.Bound {
					prob = 1
				}
			} else {
				prob = sums[k.indIdx[ci]] / iters
			}
		case "budget":
			if c.Percentile < 0 {
				mean = k.meanCost
				if mean <= c.Bound {
					prob = 1
				}
			} else {
				mean = sums[k.costIdx] / iters
				prob = sums[k.indIdx[ci]] / iters
			}
		}
		ev.ConsProb[ci] = prob
		if c.Percentile < 0 {
			if prob < 1 {
				ev.Feasible = false
				if c.Bound > 0 {
					ev.Violation += (mean - c.Bound) / c.Bound
				} else {
					ev.Violation += mean
				}
			}
		} else if prob < c.Percentile {
			ev.Feasible = false
			// The probability gap alone has no gradient once prob hits 0, so
			// add the relative mean excess to keep the search climbing.
			ev.Violation += c.Percentile - prob
			if mean > c.Bound && c.Bound > 0 {
				ev.Violation += (mean - c.Bound) / c.Bound
			}
		}
	}
	return ev, nil
}
