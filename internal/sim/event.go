package sim

// EventKind enumerates the typed execution events the simulator emits while
// a Controller observes a run.
type EventKind int

const (
	// EvInstanceAcquired fires when a slot's instance first becomes usable
	// (the provision delay, if any, has already elapsed).
	EvInstanceAcquired EventKind = iota
	// EvTaskStart fires when a task begins executing.
	EvTaskStart
	// EvTaskFinish fires when a task's completion becomes observable.
	// Duration carries the realized execution time and AccruedCost the cost
	// committed by the execution so far.
	EvTaskFinish
	// EvInstanceRevoked fires when a spot instance is reclaimed by the
	// market. Task names the execution killed mid-run (empty when the
	// instance was idle), and the slot is dead from Time on — its unstarted
	// tasks have been moved to a replacement slot, which a Controller may
	// override through Revise. Delivered with the same causality as
	// EvTaskFinish: buffered until no task could start before it.
	EvInstanceRevoked
)

// String names the event kind for logs and NDJSON streams.
func (k EventKind) String() string {
	switch k {
	case EvInstanceAcquired:
		return "instance_acquired"
	case EvTaskStart:
		return "task_start"
	case EvTaskFinish:
		return "task_finish"
	case EvInstanceRevoked:
		return "instance_revoked"
	}
	return "unknown"
}

// Event is one typed execution event.
type Event struct {
	Kind EventKind
	// Time is the simulation clock in seconds. Events arrive in
	// non-decreasing Time order.
	Time float64
	// Task is the subject task ID (empty for instance events).
	Task string
	// Slot, Type, Region identify the instance involved.
	Slot   int
	Type   string
	Region string
	// Duration is the realized execution time (TaskFinish only).
	Duration float64
	// AccruedCost is the monetary cost already committed at Time: billed
	// quanta covering every started task's scheduled finish on its instance,
	// plus cross-region network charges so far (TaskFinish only).
	AccruedCost float64
}

// Controller observes a simulated execution and may revise the placement of
// tasks that have not started yet — the hook the runtime monitor plugs into.
// The simulator calls both methods sequentially from one goroutine.
//
// Causality: a task's realized duration is revealed only through its
// EvTaskFinish event, and every finish that happens at or before a later
// task's start is delivered (with a Revise consultation) before that task's
// EvTaskStart. A controller therefore never observes the future.
type Controller interface {
	// OnEvent receives every execution event in non-decreasing Time order.
	OnEvent(Event)
	// Revise is consulted after each EvTaskFinish and EvInstanceRevoked. A
	// non-nil return updates the placements of not-yet-started tasks;
	// entries for tasks that already
	// started are ignored. Revised placements may name fresh slots (the
	// instance is acquired on first use, paying the provision delay) or
	// reuse existing slots with matching type and region.
	Revise() map[string]Placement
}
