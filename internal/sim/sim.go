// Package sim is the CloudSim-like simulator the paper's evaluation runs on
// (§6.1, "Implementation details"). It has the three components the paper
// describes: a Cloud maintaining a pool of resources with acquisition and
// release of Instances, Instances whose I/O and network performance vary
// per-second according to the calibrated distributions, and a Workflow
// executor that schedules tasks onto the simulated instances and reports
// realized makespan and monetary cost (instance-hours plus cross-region
// networking).
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"deco/internal/cloud"
	"deco/internal/dag"
)

// Placement assigns a task to a logical instance slot. Tasks sharing a Slot
// run serially on the same instance — this is how the Merge and
// Co-Scheduling transformations materialize. Type selects the instance type
// and Region the data center.
type Placement struct {
	Slot   int
	Type   string
	Region string
}

// Plan maps every task of a workflow to its placement.
type Plan struct {
	Place map[string]Placement
}

// UniformPlan places every task on its own instance of the given type.
func UniformPlan(w *dag.Workflow, typ, region string) *Plan {
	p := &Plan{Place: make(map[string]Placement, w.Len())}
	for i, t := range w.Tasks {
		p.Place[t.ID] = Placement{Slot: i, Type: typ, Region: region}
	}
	return p
}

// PlanFromConfig builds a plan from a task→type-index assignment, each task
// on its own slot.
func PlanFromConfig(w *dag.Workflow, config map[string]int, typeNames []string, region string) (*Plan, error) {
	p := &Plan{Place: make(map[string]Placement, w.Len())}
	for i, t := range w.Tasks {
		j, ok := config[t.ID]
		if !ok {
			return nil, fmt.Errorf("sim: config missing task %q", t.ID)
		}
		if j < 0 || j >= len(typeNames) {
			return nil, fmt.Errorf("sim: config for %q has type index %d out of range", t.ID, j)
		}
		p.Place[t.ID] = Placement{Slot: i, Type: typeNames[j], Region: region}
	}
	return p, nil
}

// RandomPlan places each task on its own instance of a uniformly random type
// (the paper's "randomly chosen instance types" scenario and Pegasus's
// default Random scheduler).
func RandomPlan(w *dag.Workflow, cat *cloud.Catalog, region string, rng *rand.Rand) *Plan {
	names := cat.TypeNames()
	p := &Plan{Place: make(map[string]Placement, w.Len())}
	for i, t := range w.Tasks {
		p.Place[t.ID] = Placement{Slot: i, Type: names[rng.Intn(len(names))], Region: region}
	}
	return p
}

// Validate checks the plan covers the workflow and references known types,
// regions, and consistent slot typing. Spot placements ("<type>:spot") must
// name a type with a spot market in their region.
func (p *Plan) Validate(w *dag.Workflow, cat *cloud.Catalog) error {
	slotType := map[int]Placement{}
	for _, t := range w.Tasks {
		pl, ok := p.Place[t.ID]
		if !ok {
			return fmt.Errorf("sim: plan missing task %q", t.ID)
		}
		if _, err := cat.Type(cloud.BaseType(pl.Type)); err != nil {
			return err
		}
		if _, err := cat.Region(pl.Region); err != nil {
			return err
		}
		if cloud.IsSpotName(pl.Type) {
			if _, err := cat.Spot(pl.Region, pl.Type); err != nil {
				return err
			}
		}
		if prev, seen := slotType[pl.Slot]; seen {
			if prev.Type != pl.Type || prev.Region != pl.Region {
				return fmt.Errorf("sim: slot %d used with conflicting type/region", pl.Slot)
			}
		} else {
			slotType[pl.Slot] = pl
		}
	}
	return nil
}

// Options configures a simulation run.
type Options struct {
	Cat *cloud.Catalog
	Rng *rand.Rand
	// ProvisionDelaySec is the lag between requesting an instance and it
	// becoming usable.
	ProvisionDelaySec float64
	// BillingQuantumSec is the billing granularity (3600 = instance hours,
	// the EC2 model of the paper).
	BillingQuantumSec float64
	// DynamicsPeriodSec is how long one drawn I/O or network rate persists
	// before the simulator redraws it. Cloud interference is temporally
	// correlated — the calibration measures once a minute (§6.1) — so the
	// default is 60s; i.i.d. per-second draws would average the variance
	// away and hide the Figure 2 dynamics.
	DynamicsPeriodSec float64
}

// DefaultOptions returns EC2-like settings with the given catalog and rng.
func DefaultOptions(cat *cloud.Catalog, rng *rand.Rand) Options {
	return Options{Cat: cat, Rng: rng, BillingQuantumSec: 3600, DynamicsPeriodSec: 60}
}

// TaskRecord reports one task's realized execution.
type TaskRecord struct {
	Start, Finish float64
	Instance      int
	TransferMB    float64 // bytes fetched over the network
}

// InstanceRecord reports one simulated instance's lifetime and cost.
type InstanceRecord struct {
	Slot         int
	Type, Region string
	AcquiredAt   float64
	ReleasedAt   float64
	Cost         float64
}

// Result is the outcome of simulating one workflow execution.
type Result struct {
	Makespan      float64
	InstanceCost  float64
	NetworkCost   float64 // cross-region transfer charges
	TotalCost     float64
	Tasks         map[string]*TaskRecord
	Instances     []InstanceRecord
	InstanceHours float64
	// Revocations counts spot instances reclaimed by the market during the
	// run (whether or not a task was killed by the reclaim).
	Revocations int
	// SpotSavingsUSD is the instance cost avoided by running spot slots at
	// their drawn clearing price instead of the on-demand rate — negative
	// when a market draw cleared above on-demand. It does not net out the
	// rework billed after revocations; TotalCost already carries that.
	SpotSavingsUSD float64
	// Plan holds the placements actually executed — identical to the input
	// plan unless a Controller revised them mid-run.
	Plan *Plan
}

// transferSpec describes where a task's input bytes come from.
type transferSpec struct {
	localMB  float64 // produced on the same instance
	sameMB   float64 // same region, different instance
	crossMB  float64 // another region
	sourceMB float64 // initial inputs from storage (same region)
}

// Sim executes workflows on the simulated cloud.
type Sim struct {
	opt Options
}

// New returns a simulator. Options must carry a catalog and rng.
func New(opt Options) (*Sim, error) {
	if opt.Cat == nil {
		return nil, fmt.Errorf("sim: catalog required")
	}
	if opt.Rng == nil {
		return nil, fmt.Errorf("sim: rng required")
	}
	if opt.BillingQuantumSec <= 0 {
		opt.BillingQuantumSec = 3600
	}
	return &Sim{opt: opt}, nil
}

// integrate simulates moving mb megabytes at a rate drawn from d and held
// for period seconds before redrawing — the temporally-correlated cloud
// dynamics the calibration observes (one probe a minute for 7 days). The
// final partial period is fractional. To bound the cost of pathological
// inputs, after 100k periods the remaining volume moves at the mean rate.
func integrate(mb float64, d interface {
	Sample(*rand.Rand) float64
	Mean() float64
}, rng *rand.Rand, period float64) float64 {
	if mb <= 0 {
		return 0
	}
	if period <= 0 {
		period = 60
	}
	t := 0.0
	const maxSteps = 100000
	for i := 0; i < maxSteps && mb > 0; i++ {
		rate := d.Sample(rng)
		if rate < 1e-6 {
			rate = 1e-6
		}
		chunk := rate * period
		if chunk >= mb {
			t += mb / rate
			return t
		}
		mb -= chunk
		t += period
	}
	if mb > 0 {
		mean := d.Mean()
		if mean < 1e-6 {
			mean = 1e-6
		}
		t += mb / mean
	}
	return t
}

// realizedDuration simulates one task's execution time on an instance type:
// deterministic CPU time plus per-second-dynamic disk I/O and network
// transfer phases.
func (s *Sim) realizedDuration(t *dag.Task, typ string, xfer transferSpec) (float64, error) {
	// A spot instance is hardware-identical to its on-demand base type; only
	// billing and lifecycle differ.
	typ = cloud.BaseType(typ)
	it, err := s.opt.Cat.Type(typ)
	if err != nil {
		return 0, err
	}
	perf := s.opt.Cat.Perf
	d := t.CPUSeconds / it.ECU
	// Disk: all inputs and outputs pass through the local disk.
	ioMB := t.InputMB() + t.OutputMB()
	d += integrate(ioMB, perf.SeqIO[typ], s.opt.Rng, s.opt.DynamicsPeriodSec)
	// Network: bytes not already on this instance.
	netMB := xfer.sameMB + xfer.sourceMB
	d += integrate(netMB, perf.Net[typ], s.opt.Rng, s.opt.DynamicsPeriodSec)
	d += integrate(xfer.crossMB, perf.CrossRegionNet, s.opt.Rng, s.opt.DynamicsPeriodSec)
	return d, nil
}

// classifyTransfers splits task id's input bytes by origin relative to its
// placement.
func classifyTransfers(w *dag.Workflow, plan *Plan, id string) transferSpec {
	t := w.Task(id)
	pl := plan.Place[id]
	producers := map[string]string{} // file -> producing parent
	for _, p := range w.Parents(id) {
		for _, f := range w.Task(p).Outputs {
			producers[f.Name] = p
		}
	}
	var spec transferSpec
	for _, f := range t.Inputs {
		p, produced := producers[f.Name]
		switch {
		case !produced:
			spec.sourceMB += f.SizeMB
		case plan.Place[p].Slot == pl.Slot:
			spec.localMB += f.SizeMB
		case plan.Place[p].Region == pl.Region:
			spec.sameMB += f.SizeMB
		default:
			spec.crossMB += f.SizeMB
		}
	}
	return spec
}

// Run simulates one execution of w under plan and returns the realized
// makespan and costs. The context cancels long simulations (checked once per
// scheduled task).
func (s *Sim) Run(ctx context.Context, w *dag.Workflow, plan *Plan) (*Result, error) {
	return s.RunControlled(ctx, w, plan, nil)
}

// slotState tracks one logical instance slot during a run.
type slotState struct {
	freeAt     float64
	acquiredAt float64
	lastFinish float64
	used       bool
	price      float64 // per-hour price, resolved at acquisition
	place      Placement
	// notBefore is the earliest instant anything may be scheduled on the
	// slot — set on replacement slots so work displaced by a revocation (or
	// moved by a revision) cannot start before the event that displaced it.
	notBefore float64
	// Spot lifecycle: a spot slot draws its clearing price and revocation
	// time at acquisition; once the clock passes revokeAt the instance is
	// reclaimed and the slot is dead.
	spot     bool
	odPrice  float64 // on-demand rate of the base type, for savings
	revokeAt float64 // +Inf for on-demand slots
	dead     bool
}

// finishEvent is a buffered task completion awaiting causal delivery.
type finishEvent struct {
	time float64
	ev   Event
}

// finishQueue is a min-heap of pending completions ordered by time (ties by
// task ID for determinism).
type finishQueue []finishEvent

func (q finishQueue) Len() int { return len(q) }
func (q finishQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].ev.Task < q[j].ev.Task
}
func (q finishQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *finishQueue) Push(x any)   { *q = append(*q, x.(finishEvent)) }
func (q *finishQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// RunControlled simulates one execution of w under plan, reporting typed
// execution events to ctrl and applying any placement revisions it returns.
// A nil ctrl behaves exactly like Run. The plan is not mutated; the
// placements actually executed (after revisions) are returned in
// Result.Plan.
//
// Event causality: task durations are realized when a task starts (so a run
// with a passive controller is bit-identical to the uncontrolled run), but
// a completion is revealed to the controller only once no task could start
// before it — finishes are buffered and flushed in time order before each
// later start, with ctrl.Revise consulted after each one.
func (s *Sim) RunControlled(ctx context.Context, w *dag.Workflow, plan *Plan, ctrl Controller) (*Result, error) {
	if err := plan.Validate(w, s.opt.Cat); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	// Work on a copy: the controller may revise placements mid-run.
	cur := &Plan{Place: make(map[string]Placement, len(plan.Place))}
	for id, pl := range plan.Place {
		cur.Place[id] = pl
	}
	res := &Result{Tasks: make(map[string]*TaskRecord, w.Len()), Plan: cur}

	slots := map[int]*slotState{}
	for _, t := range w.Tasks {
		pl := cur.Place[t.ID]
		if _, ok := slots[pl.Slot]; !ok {
			slots[pl.Slot] = &slotState{place: pl}
		}
	}

	remainingParents := map[string]int{}
	readyAt := map[string]float64{} // max parent finish
	for _, t := range w.Tasks {
		remainingParents[t.ID] = len(w.Parents(t.ID))
	}
	done := map[string]bool{}
	pending := w.Len()

	// committedCost is the money already locked in by scheduling decisions:
	// whole billing quanta covering every started task's finish, plus
	// network charges accrued so far.
	committedCost := func() float64 {
		c := res.NetworkCost
		for _, st := range slots {
			if !st.used {
				continue
			}
			up := st.lastFinish - st.acquiredAt + s.opt.ProvisionDelaySec
			quanta := math.Ceil(up / s.opt.BillingQuantumSec)
			if quanta < 1 {
				quanta = 1
			}
			c += quanta * st.price * (s.opt.BillingQuantumSec / 3600)
		}
		return c
	}

	// applyRevision installs a controller revision observed at time `at`:
	// slots it introduces cannot be scheduled before the event that carried
	// the revision.
	applyRevision := func(upd map[string]Placement, at float64) error {
		for id, pl := range upd {
			if done[id] {
				continue // already started; revision ignored by contract
			}
			if w.Task(id) == nil {
				return fmt.Errorf("sim: revision references unknown task %q", id)
			}
			if _, err := s.opt.Cat.Type(cloud.BaseType(pl.Type)); err != nil {
				return err
			}
			if _, err := s.opt.Cat.Region(pl.Region); err != nil {
				return err
			}
			if cloud.IsSpotName(pl.Type) {
				if _, err := s.opt.Cat.Spot(pl.Region, pl.Type); err != nil {
					return err
				}
			}
			if st, ok := slots[pl.Slot]; ok {
				if st.dead {
					return fmt.Errorf("sim: revision of %q reuses revoked slot %d", id, pl.Slot)
				}
				if st.used && (st.place.Type != pl.Type || st.place.Region != pl.Region) {
					return fmt.Errorf("sim: revision of %q reuses acquired slot %d with conflicting type/region", id, pl.Slot)
				}
			} else {
				slots[pl.Slot] = &slotState{place: pl, notBefore: at}
			}
			cur.Place[id] = pl
		}
		return nil
	}

	var fin finishQueue
	// flushOne delivers the earliest buffered completion and consults the
	// controller for a revision.
	flushOne := func() error {
		it := heap.Pop(&fin).(finishEvent)
		ev := it.ev
		ev.AccruedCost = committedCost()
		ctrl.OnEvent(ev)
		if upd := ctrl.Revise(); upd != nil {
			if err := applyRevision(upd, it.time); err != nil {
				return err
			}
		}
		return nil
	}

	// retireSpot reclaims a spot slot at time `at`, killing `killed` (empty
	// when the instance was idle) and moving every unstarted task mapped to
	// the slot onto a fresh replacement. Replacement slots carry negative
	// IDs so they can never collide with slots a controller revision names.
	// Open-loop the replacement retries the same spot market; after
	// maxSpotRetries kills of one task it falls back to the on-demand base
	// type, which bounds the retry chain. A controller observes the
	// revocation causally (through the finish queue) and may re-place the
	// displaced tasks itself via Revise.
	const maxSpotRetries = 8
	killCount := map[string]int{}
	nextReplacement := -1
	retireSpot := func(st *slotState, killed string, at float64) {
		st.dead = true
		st.freeAt = at
		st.lastFinish = at // the market bills the instance until reclaim
		res.Revocations++
		typ := st.place.Type
		if killed != "" {
			killCount[killed]++
			if killCount[killed] >= maxSpotRetries {
				typ = cloud.BaseType(typ)
			}
		}
		fresh := nextReplacement
		nextReplacement--
		slots[fresh] = &slotState{
			place:     Placement{Slot: fresh, Type: typ, Region: st.place.Region},
			notBefore: at,
		}
		for _, tt := range w.Tasks {
			if done[tt.ID] || cur.Place[tt.ID].Slot != st.place.Slot {
				continue
			}
			cur.Place[tt.ID] = Placement{Slot: fresh, Type: typ, Region: st.place.Region}
		}
		if ctrl != nil {
			heap.Push(&fin, finishEvent{time: at, ev: Event{
				Kind: EvInstanceRevoked, Time: at, Task: killed,
				Slot: st.place.Slot, Type: st.place.Type, Region: st.place.Region,
			}})
		}
	}

	for pending > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: run cancelled: %w", err)
		}
		// Pick the ready task with the earliest feasible start (breaking ties
		// by task order for determinism).
		bestID := ""
		bestStart := math.Inf(1)
		for _, t := range w.Tasks {
			if done[t.ID] || remainingParents[t.ID] > 0 {
				continue
			}
			st := slots[cur.Place[t.ID].Slot]
			start := readyAt[t.ID]
			if st.used && st.freeAt > start {
				start = st.freeAt
			}
			if start < st.notBefore {
				start = st.notBefore
			}
			if !st.used {
				start += s.opt.ProvisionDelaySec
			}
			if start < bestStart {
				bestStart = start
				bestID = t.ID
			}
		}
		if bestID == "" {
			return nil, fmt.Errorf("sim: no ready task but %d pending (cycle?)", pending)
		}
		// Reveal every completion observable before this start, one at a
		// time (each may revise the plan, which can change the pick).
		if ctrl != nil && len(fin) > 0 && fin[0].time <= bestStart {
			if err := flushOne(); err != nil {
				return nil, err
			}
			continue
		}
		t := w.Task(bestID)
		pl := cur.Place[bestID]
		st := slots[pl.Slot]
		if st.used && st.spot && bestStart >= st.revokeAt {
			// The market reclaimed the instance while it sat idle; retire it
			// and re-pick — the displaced tasks now map to the replacement.
			retireSpot(st, "", st.revokeAt)
			continue
		}
		if !st.used {
			price, err := s.opt.Cat.Price(pl.Region, cloud.BaseType(pl.Type))
			if err != nil {
				return nil, err
			}
			st.used = true
			st.acquiredAt = bestStart // provision delay already folded in
			st.price = price
			st.place = pl
			st.revokeAt = math.Inf(1)
			if cloud.IsSpotName(pl.Type) {
				sm, err := s.opt.Cat.Spot(pl.Region, pl.Type)
				if err != nil {
					return nil, err
				}
				// Clearing price: floored normal around the market mean.
				// Revocation: Exponential(λ) hours from acquisition.
				st.spot = true
				st.odPrice = price
				p := sm.PricePerHourMean * (1 + sm.PriceSigma*s.opt.Rng.NormFloat64())
				if floor := sm.PricePerHourMean * cloud.SpotPriceFloorFrac; p < floor {
					p = floor
				}
				st.price = p
				if sm.RevocationsPerHour > 0 {
					u := s.opt.Rng.Float64()
					st.revokeAt = bestStart - math.Log(1-u)*3600/sm.RevocationsPerHour
				}
			}
			if ctrl != nil {
				ctrl.OnEvent(Event{Kind: EvInstanceAcquired, Time: bestStart,
					Slot: pl.Slot, Type: pl.Type, Region: pl.Region})
			}
		}
		xfer := classifyTransfers(w, cur, bestID)
		dur, err := s.realizedDuration(t, pl.Type, xfer)
		if err != nil {
			return nil, err
		}
		finish := bestStart + dur
		if st.spot && finish > st.revokeAt {
			// The instance is reclaimed mid-run: the attempt's work is lost,
			// the task goes back to pending on the replacement slot. The
			// controller sees the doomed start, then the revocation.
			if ctrl != nil {
				ctrl.OnEvent(Event{Kind: EvTaskStart, Time: bestStart, Task: bestID,
					Slot: pl.Slot, Type: pl.Type, Region: pl.Region})
			}
			retireSpot(st, bestID, st.revokeAt)
			continue
		}
		st.freeAt = finish
		st.lastFinish = finish
		res.Tasks[bestID] = &TaskRecord{
			Start: bestStart, Finish: finish, Instance: pl.Slot,
			TransferMB: xfer.sameMB + xfer.crossMB + xfer.sourceMB,
		}
		if finish > res.Makespan {
			res.Makespan = finish
		}
		// Cross-region networking charges accrue per transferred GB.
		if xfer.crossMB > 0 {
			// Price charged by the sending region; take the max over parents'
			// regions for a conservative single-rate model.
			rate := 0.0
			for _, p := range w.Parents(bestID) {
				srcRegion := cur.Place[p].Region
				if srcRegion == pl.Region {
					continue
				}
				r, err := s.opt.Cat.Region(srcRegion)
				if err != nil {
					return nil, err
				}
				if pr := r.NetPricePerGB[pl.Region]; pr > rate {
					rate = pr
				}
			}
			res.NetworkCost += xfer.crossMB / 1024 * rate
		}
		if ctrl != nil {
			ctrl.OnEvent(Event{Kind: EvTaskStart, Time: bestStart, Task: bestID,
				Slot: pl.Slot, Type: pl.Type, Region: pl.Region})
			heap.Push(&fin, finishEvent{time: finish, ev: Event{
				Kind: EvTaskFinish, Time: finish, Task: bestID,
				Slot: pl.Slot, Type: pl.Type, Region: pl.Region, Duration: dur,
			}})
		}
		done[bestID] = true
		pending--
		for _, c := range w.Children(bestID) {
			remainingParents[c]--
			if finish > readyAt[c] {
				readyAt[c] = finish
			}
		}
	}
	// Drain remaining completions in time order.
	for ctrl != nil && len(fin) > 0 {
		if err := flushOne(); err != nil {
			return nil, err
		}
	}

	// Billing: each used slot is one instance billed in whole quanta.
	var slotIDs []int
	for id := range slots {
		slotIDs = append(slotIDs, id)
	}
	sort.Ints(slotIDs)
	for _, id := range slotIDs {
		st := slots[id]
		if !st.used {
			continue
		}
		up := st.lastFinish - st.acquiredAt + s.opt.ProvisionDelaySec
		quanta := math.Ceil(up / s.opt.BillingQuantumSec)
		if quanta < 1 {
			quanta = 1
		}
		cost := quanta * st.price * (s.opt.BillingQuantumSec / 3600)
		res.InstanceCost += cost
		res.InstanceHours += quanta * s.opt.BillingQuantumSec / 3600
		if st.spot {
			res.SpotSavingsUSD += quanta * (st.odPrice - st.price) * (s.opt.BillingQuantumSec / 3600)
		}
		res.Instances = append(res.Instances, InstanceRecord{
			Slot: id, Type: st.place.Type, Region: st.place.Region,
			AcquiredAt: st.acquiredAt - s.opt.ProvisionDelaySec,
			ReleasedAt: st.lastFinish, Cost: cost,
		})
	}
	res.TotalCost = res.InstanceCost + res.NetworkCost
	return res, nil
}

// RunMany simulates n independent executions and returns all results.
func (s *Sim) RunMany(ctx context.Context, w *dag.Workflow, plan *Plan, n int) ([]*Result, error) {
	out := make([]*Result, n)
	for i := range out {
		r, err := s.Run(ctx, w, plan)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// Makespans extracts the makespans from a result list.
func Makespans(rs []*Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Makespan
	}
	return out
}

// Costs extracts the total costs from a result list.
func Costs(rs []*Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.TotalCost
	}
	return out
}

// Utilization is the fraction of billed instance time actually spent
// executing tasks — the resource-waste measure behind the Merge and
// Co-Scheduling transformations (idle partial hours are pure waste).
func (r *Result) Utilization() float64 {
	billedSec := r.InstanceHours * 3600
	if billedSec <= 0 {
		return 0
	}
	busy := 0.0
	for _, t := range r.Tasks {
		busy += t.Finish - t.Start
	}
	u := busy / billedSec
	if u > 1 {
		u = 1
	}
	return u
}
