package sim

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"deco/internal/cloud"
	"deco/internal/wfgen"
)

// recorder is a passive controller: it logs every event and never revises.
type recorder struct {
	events []Event
	revise map[string]Placement // returned once by Revise, then cleared
	after  string               // fire the revision after this task finishes
}

func (r *recorder) OnEvent(ev Event) { r.events = append(r.events, ev) }

func (r *recorder) Revise() map[string]Placement {
	if r.revise == nil || len(r.events) == 0 {
		return nil
	}
	last := r.events[len(r.events)-1]
	if last.Kind != EvTaskFinish || last.Task != r.after {
		return nil
	}
	upd := r.revise
	r.revise = nil
	return upd
}

func TestEventStreamOrderedAndComplete(t *testing.T) {
	cat := cloud.DefaultCatalog()
	w, err := wfgen.Pipeline(5, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	plan := UniformPlan(w, "m1.small", cloud.USEast)
	s, err := New(DefaultOptions(cat, rand.New(rand.NewSource(7))))
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	res, err := s.RunControlled(context.Background(), w, plan, rec)
	if err != nil {
		t.Fatal(err)
	}

	starts := map[string]Event{}
	finishes := map[string]Event{}
	acquired := map[int]float64{}
	lastT, lastCost := 0.0, 0.0
	for i, ev := range rec.events {
		if ev.Time < lastT {
			t.Fatalf("event %d at t=%v after t=%v: out of order", i, ev.Time, lastT)
		}
		lastT = ev.Time
		switch ev.Kind {
		case EvInstanceAcquired:
			if _, dup := acquired[ev.Slot]; dup {
				t.Errorf("slot %d acquired twice", ev.Slot)
			}
			acquired[ev.Slot] = ev.Time
		case EvTaskStart:
			if _, dup := starts[ev.Task]; dup {
				t.Errorf("task %s started twice", ev.Task)
			}
			if at, ok := acquired[ev.Slot]; !ok {
				t.Errorf("task %s started on slot %d before acquisition", ev.Task, ev.Slot)
			} else if ev.Time < at {
				t.Errorf("task %s started at %v before slot %d acquired at %v", ev.Task, ev.Time, ev.Slot, at)
			}
			starts[ev.Task] = ev
		case EvTaskFinish:
			st, ok := starts[ev.Task]
			if !ok {
				t.Fatalf("task %s finished without starting", ev.Task)
			}
			if got, want := ev.Duration, ev.Time-st.Time; math.Abs(got-want) > 1e-9 {
				t.Errorf("task %s: duration %v, want finish-start %v", ev.Task, got, want)
			}
			if ev.AccruedCost < lastCost {
				t.Errorf("task %s: accrued cost %v dropped below %v", ev.Task, ev.AccruedCost, lastCost)
			}
			lastCost = ev.AccruedCost
			finishes[ev.Task] = ev
		}
	}
	for _, tk := range w.Tasks {
		st, ok := starts[tk.ID]
		if !ok {
			t.Fatalf("no start event for %s", tk.ID)
		}
		fin, ok := finishes[tk.ID]
		if !ok {
			t.Fatalf("no finish event for %s", tk.ID)
		}
		rec := res.Tasks[tk.ID]
		if st.Time != rec.Start || fin.Time != rec.Finish {
			t.Errorf("%s: events say [%v,%v], result says [%v,%v]",
				tk.ID, st.Time, fin.Time, rec.Start, rec.Finish)
		}
	}
	// With every task finished, the committed cost is the final bill.
	if math.Abs(lastCost-res.TotalCost) > 1e-9 {
		t.Errorf("final accrued cost %v != total cost %v", lastCost, res.TotalCost)
	}
}

// TestPassiveControllerPreservesResult: observing must not perturb the run —
// a controller that never revises yields the bit-identical result of an
// uncontrolled run with the same seed.
func TestPassiveControllerPreservesResult(t *testing.T) {
	cat := cloud.DefaultCatalog()
	w, err := wfgen.Montage(2, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	plan := UniformPlan(w, "m1.medium", cloud.USEast)
	run := func(ctrl Controller) *Result {
		s, err := New(DefaultOptions(cat, rand.New(rand.NewSource(5))))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RunControlled(context.Background(), w, plan, ctrl)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, observed := run(nil), run(&recorder{})
	if plain.Makespan != observed.Makespan || plain.TotalCost != observed.TotalCost {
		t.Fatalf("observation changed the run: %v/$%v vs %v/$%v",
			plain.Makespan, plain.TotalCost, observed.Makespan, observed.TotalCost)
	}
	if !reflect.DeepEqual(plain.Tasks, observed.Tasks) {
		t.Fatal("observation changed per-task records")
	}
}

// TestRevisionMovesUnstartedTask: a revision delivered after the first
// finish must land the final task on its new type, and the executed plan in
// the result must say so.
func TestRevisionMovesUnstartedTask(t *testing.T) {
	cat := cloud.DefaultCatalog()
	w, err := wfgen.Pipeline(4, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	plan := UniformPlan(w, "m1.small", cloud.USEast)
	last := w.Tasks[len(w.Tasks)-1].ID
	first := w.Tasks[0].ID
	fresh := w.Len() // slot IDs 0..Len-1 are taken by the uniform plan
	rec := &recorder{
		after: first,
		revise: map[string]Placement{
			last:  {Slot: fresh, Type: "m1.xlarge", Region: cloud.USEast},
			first: {Slot: fresh + 1, Type: "m1.xlarge", Region: cloud.USEast}, // already done: ignored
		},
	}
	s, err := New(DefaultOptions(cat, rand.New(rand.NewSource(9))))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunControlled(context.Background(), w, plan, rec)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Plan.Place[last]; got.Type != "m1.xlarge" || got.Slot != fresh {
		t.Fatalf("executed placement of %s = %+v, want m1.xlarge on slot %d", last, got, fresh)
	}
	if got := res.Plan.Place[first]; got.Type != "m1.small" {
		t.Fatalf("revision of already-finished %s was applied: %+v", first, got)
	}
	// The input plan must not be mutated by the revision.
	if plan.Place[last].Type != "m1.small" {
		t.Fatal("revision mutated the caller's plan")
	}
	sawStart := false
	for _, ev := range rec.events {
		if ev.Kind == EvTaskStart && ev.Task == last {
			sawStart = true
			if ev.Type != "m1.xlarge" || ev.Slot != fresh {
				t.Fatalf("start event for %s on %s slot %d, want m1.xlarge slot %d",
					last, ev.Type, ev.Slot, fresh)
			}
		}
	}
	if !sawStart {
		t.Fatalf("no start event for %s", last)
	}
}

func TestRunCancelledContext(t *testing.T) {
	s, _ := newSim(t, 1)
	w := chain(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(ctx, w, UniformPlan(w, "m1.small", cloud.USEast)); err == nil {
		t.Fatal("run with cancelled context succeeded")
	}
}
