package sim

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"deco/internal/cloud"
	"deco/internal/dag"
	"deco/internal/dist"
	"deco/internal/wfgen"
)

func newSim(t *testing.T, seed int64) (*Sim, *cloud.Catalog) {
	t.Helper()
	cat := cloud.DefaultCatalog()
	s, err := New(DefaultOptions(cat, rand.New(rand.NewSource(seed))))
	if err != nil {
		t.Fatal(err)
	}
	return s, cat
}

func chain(t *testing.T) *dag.Workflow {
	t.Helper()
	w := dag.New("chain")
	_ = w.AddTask(&dag.Task{ID: "a", CPUSeconds: 100,
		Outputs: []dag.File{{Name: "f", SizeMB: 10}}})
	_ = w.AddTask(&dag.Task{ID: "b", CPUSeconds: 200,
		Inputs: []dag.File{{Name: "f", SizeMB: 10}}})
	if err := w.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunChainBasics(t *testing.T) {
	s, _ := newSim(t, 1)
	w := chain(t)
	plan := UniformPlan(w, "m1.small", cloud.USEast)
	res, err := s.Run(context.Background(), w, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Task b starts after a finishes.
	if res.Tasks["b"].Start < res.Tasks["a"].Finish {
		t.Errorf("b started %v before a finished %v", res.Tasks["b"].Start, res.Tasks["a"].Finish)
	}
	// Makespan covers both CPU times plus some I/O.
	if res.Makespan < 300 {
		t.Errorf("makespan %v < 300 (CPU floor)", res.Makespan)
	}
	// Two instances, each under an hour: 2 * 0.044.
	if math.Abs(res.InstanceCost-0.088) > 1e-9 {
		t.Errorf("instance cost %v, want 0.088", res.InstanceCost)
	}
	if res.NetworkCost != 0 {
		t.Errorf("same-region run should have no network cost, got %v", res.NetworkCost)
	}
	if res.TotalCost != res.InstanceCost+res.NetworkCost {
		t.Error("total cost mismatch")
	}
	if len(res.Instances) != 2 {
		t.Errorf("instances %d", len(res.Instances))
	}
}

func TestSharedSlotSerializesAndSavesMoney(t *testing.T) {
	s, _ := newSim(t, 2)
	w := dag.New("par")
	_ = w.AddTask(&dag.Task{ID: "a", CPUSeconds: 50})
	_ = w.AddTask(&dag.Task{ID: "b", CPUSeconds: 50})
	// Merge both tasks onto one m1.small instance.
	plan := &Plan{Place: map[string]Placement{
		"a": {Slot: 0, Type: "m1.small", Region: cloud.USEast},
		"b": {Slot: 0, Type: "m1.small", Region: cloud.USEast},
	}}
	res, err := s.Run(context.Background(), w, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Serialized: one must start after the other finishes.
	ra, rb := res.Tasks["a"], res.Tasks["b"]
	if !(ra.Finish <= rb.Start || rb.Finish <= ra.Start) {
		t.Errorf("shared-slot tasks overlap: %+v %+v", ra, rb)
	}
	// Single instance hour: 0.044 (vs 0.088 unmerged).
	if math.Abs(res.InstanceCost-0.044) > 1e-9 {
		t.Errorf("merged cost %v, want 0.044", res.InstanceCost)
	}
}

func TestFasterTypeShortensMakespan(t *testing.T) {
	w, err := wfgen.Montage(1, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := newSim(t, 4)
	small, err := s1.Run(context.Background(), w, UniformPlan(w, "m1.small", cloud.USEast))
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := newSim(t, 4)
	xl, err := s2.Run(context.Background(), w, UniformPlan(w, "m1.xlarge", cloud.USEast))
	if err != nil {
		t.Fatal(err)
	}
	if xl.Makespan >= small.Makespan {
		t.Errorf("xlarge %v not faster than small %v", xl.Makespan, small.Makespan)
	}
	// But more expensive (price ratio 8x, speedup < 8x on I/O-bound parts).
	if xl.TotalCost <= small.TotalCost {
		t.Errorf("xlarge cost %v should exceed small %v", xl.TotalCost, small.TotalCost)
	}
}

func TestCrossRegionCostsAndTime(t *testing.T) {
	w := chain(t)
	// Parent in US East, child in Singapore: f (10MB) crosses regions.
	plan := &Plan{Place: map[string]Placement{
		"a": {Slot: 0, Type: "m1.small", Region: cloud.USEast},
		"b": {Slot: 1, Type: "m1.small", Region: cloud.APSoutheast},
	}}
	s, _ := newSim(t, 5)
	res, err := s.Run(context.Background(), w, plan)
	if err != nil {
		t.Fatal(err)
	}
	wantNet := 10.0 / 1024 * 0.09 // US East egress price
	if math.Abs(res.NetworkCost-wantNet) > 1e-9 {
		t.Errorf("network cost %v, want %v", res.NetworkCost, wantNet)
	}
	// Mixed-region pricing: a at US (0.044), b at SG (0.044*1.33).
	wantInst := 0.044 + 0.044*1.33
	if math.Abs(res.InstanceCost-wantInst) > 1e-9 {
		t.Errorf("instance cost %v, want %v", res.InstanceCost, wantInst)
	}
}

func TestBillingRoundsUpHours(t *testing.T) {
	// One task slightly over an hour on the CPU.
	w := dag.New("long")
	_ = w.AddTask(&dag.Task{ID: "t", CPUSeconds: 3700})
	s, _ := newSim(t, 6)
	res, err := s.Run(context.Background(), w, UniformPlan(w, "m1.small", cloud.USEast))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.InstanceCost-2*0.044) > 1e-9 {
		t.Errorf("cost %v, want 2 hours * 0.044", res.InstanceCost)
	}
	if res.InstanceHours != 2 {
		t.Errorf("instance hours %v, want 2", res.InstanceHours)
	}
}

func TestProvisionDelayShiftsStart(t *testing.T) {
	cat := cloud.DefaultCatalog()
	opt := DefaultOptions(cat, rand.New(rand.NewSource(7)))
	opt.ProvisionDelaySec = 60
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	w := dag.New("one")
	_ = w.AddTask(&dag.Task{ID: "t", CPUSeconds: 10})
	res, err := s.Run(context.Background(), w, UniformPlan(w, "m1.small", cloud.USEast))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks["t"].Start != 60 {
		t.Errorf("start %v, want 60", res.Tasks["t"].Start)
	}
}

func TestPlanValidation(t *testing.T) {
	s, cat := newSim(t, 8)
	w := chain(t)
	// Missing task.
	bad := &Plan{Place: map[string]Placement{"a": {Slot: 0, Type: "m1.small", Region: cloud.USEast}}}
	if _, err := s.Run(context.Background(), w, bad); err == nil {
		t.Error("missing task accepted")
	}
	// Unknown type.
	bad = UniformPlan(w, "m9.z", cloud.USEast)
	if _, err := s.Run(context.Background(), w, bad); err == nil {
		t.Error("unknown type accepted")
	}
	// Unknown region.
	bad = UniformPlan(w, "m1.small", "mars")
	if _, err := s.Run(context.Background(), w, bad); err == nil {
		t.Error("unknown region accepted")
	}
	// Conflicting slot typing.
	bad = &Plan{Place: map[string]Placement{
		"a": {Slot: 0, Type: "m1.small", Region: cloud.USEast},
		"b": {Slot: 0, Type: "m1.large", Region: cloud.USEast},
	}}
	if err := bad.Validate(w, cat); err == nil {
		t.Error("conflicting slot accepted")
	}
}

func TestPlanFromConfig(t *testing.T) {
	w := chain(t)
	cat := cloud.DefaultCatalog()
	plan, err := PlanFromConfig(w, map[string]int{"a": 0, "b": 3}, cat.TypeNames(), cloud.USEast)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Place["b"].Type != "m1.xlarge" {
		t.Errorf("b type %s", plan.Place["b"].Type)
	}
	if _, err := PlanFromConfig(w, map[string]int{"a": 0}, cat.TypeNames(), cloud.USEast); err == nil {
		t.Error("missing task accepted")
	}
	if _, err := PlanFromConfig(w, map[string]int{"a": 0, "b": 9}, cat.TypeNames(), cloud.USEast); err == nil {
		t.Error("bad index accepted")
	}
}

func TestRandomPlanUsesCatalogTypes(t *testing.T) {
	w, _ := wfgen.Pipeline(20, rand.New(rand.NewSource(9)))
	cat := cloud.DefaultCatalog()
	plan := RandomPlan(w, cat, cloud.USEast, rand.New(rand.NewSource(10)))
	if err := plan.Validate(w, cat); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, pl := range plan.Place {
		seen[pl.Type] = true
	}
	if len(seen) < 2 {
		t.Errorf("random plan used only %v", seen)
	}
}

func TestRunManyVariance(t *testing.T) {
	// Fig 2: repeated executions of the same plan vary in time.
	w, err := wfgen.Montage(1, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := newSim(t, 12)
	rs, err := s.RunMany(context.Background(), w, UniformPlan(w, "m1.medium", cloud.USEast), 30)
	if err != nil {
		t.Fatal(err)
	}
	ms := Makespans(rs)
	if len(ms) != 30 {
		t.Fatalf("results %d", len(ms))
	}
	if dist.StddevOf(ms) == 0 {
		t.Error("no variance across runs — dynamics not simulated")
	}
	cs := Costs(rs)
	if len(cs) != 30 || cs[0] <= 0 {
		t.Error("costs missing")
	}
}

func TestIntegrateExactness(t *testing.T) {
	// Constant rate: moving 100MB at 10MB/s takes exactly 10s.
	got := integrate(100, dist.Constant{V: 10}, rand.New(rand.NewSource(13)), 60)
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("integrate %v, want 10", got)
	}
	if integrate(0, dist.Constant{V: 10}, rand.New(rand.NewSource(13)), 60) != 0 {
		t.Error("zero bytes should take zero time")
	}
	// Sub-second transfer.
	got = integrate(5, dist.Constant{V: 10}, rand.New(rand.NewSource(13)), 60)
	if math.Abs(got-0.5) > 1e-9 {
		t.Errorf("integrate %v, want 0.5", got)
	}
	// Multi-period transfer at a constant rate is exact regardless of period.
	got = integrate(1000, dist.Constant{V: 10}, rand.New(rand.NewSource(13)), 7)
	if math.Abs(got-100) > 1e-9 {
		t.Errorf("integrate %v, want 100", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := New(Options{Cat: cloud.DefaultCatalog()}); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestMontageRunsAtAllDegrees(t *testing.T) {
	for _, d := range []int{1, 2} {
		w, err := wfgen.Montage(d, rand.New(rand.NewSource(14)))
		if err != nil {
			t.Fatal(err)
		}
		s, _ := newSim(t, 15)
		res, err := s.Run(context.Background(), w, UniformPlan(w, "m1.large", cloud.USEast))
		if err != nil {
			t.Fatalf("degree %d: %v", d, err)
		}
		if res.Makespan <= 0 || res.TotalCost <= 0 {
			t.Errorf("degree %d: degenerate result %+v", d, res)
		}
		// Every task recorded with start <= finish.
		for id, tr := range res.Tasks {
			if tr.Start > tr.Finish {
				t.Errorf("task %s start %v > finish %v", id, tr.Start, tr.Finish)
			}
		}
	}
}

func TestUtilization(t *testing.T) {
	// One task of ~600s on one instance billed a full hour: utilization ~1/6.
	w := dag.New("u")
	_ = w.AddTask(&dag.Task{ID: "t", CPUSeconds: 600})
	s, _ := newSim(t, 40)
	res, err := s.Run(context.Background(), w, UniformPlan(w, "m1.small", cloud.USEast))
	if err != nil {
		t.Fatal(err)
	}
	u := res.Utilization()
	if u < 0.1 || u > 0.25 {
		t.Errorf("utilization %v, want ~0.167", u)
	}
	// A merged chain fills its hour better than one-instance-per-task.
	wc := dag.New("chain")
	_ = wc.AddTask(&dag.Task{ID: "a", CPUSeconds: 1500})
	_ = wc.AddTask(&dag.Task{ID: "b", CPUSeconds: 1500})
	_ = wc.AddEdge("a", "b")
	merged := &Plan{Place: map[string]Placement{
		"a": {Slot: 0, Type: "m1.small", Region: cloud.USEast},
		"b": {Slot: 0, Type: "m1.small", Region: cloud.USEast},
	}}
	s2, _ := newSim(t, 41)
	rm, err := s2.Run(context.Background(), wc, merged)
	if err != nil {
		t.Fatal(err)
	}
	s3, _ := newSim(t, 41)
	rs, err := s3.Run(context.Background(), wc, UniformPlan(wc, "m1.small", cloud.USEast))
	if err != nil {
		t.Fatal(err)
	}
	if rm.Utilization() <= rs.Utilization() {
		t.Errorf("merged utilization %v should beat separate %v", rm.Utilization(), rs.Utilization())
	}
	// Empty result.
	empty := &Result{}
	if empty.Utilization() != 0 {
		t.Error("empty result utilization should be 0")
	}
}
