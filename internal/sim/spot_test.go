package sim

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"deco/internal/cloud"
)

// spotCatalog returns the default catalog with the us-east m1.small spot
// market's revocation hazard replaced by lambda (per hour).
func spotCatalog(t *testing.T, lambda float64) *cloud.Catalog {
	t.Helper()
	cat := cloud.DefaultCatalog()
	for i := range cat.Regions {
		if cat.Regions[i].Name != cloud.USEast {
			continue
		}
		m := cat.Regions[i].Spot["m1.small"]
		m.RevocationsPerHour = lambda
		cat.Regions[i].Spot["m1.small"] = m
		return cat
	}
	t.Fatal("us-east-1 missing from default catalog")
	return nil
}

func TestSpotPlanSavesWithoutRevocations(t *testing.T) {
	cat := spotCatalog(t, 0) // no hazard: pure price advantage
	s, err := New(DefaultOptions(cat, rand.New(rand.NewSource(3))))
	if err != nil {
		t.Fatal(err)
	}
	w := chain(t)
	res, err := s.Run(context.Background(), w, UniformPlan(w, cloud.SpotName("m1.small"), cloud.USEast))
	if err != nil {
		t.Fatal(err)
	}
	if res.Revocations != 0 {
		t.Errorf("revocations %d with zero hazard", res.Revocations)
	}
	// Both tasks fit one billing quantum each; on-demand this costs exactly
	// 2 x 0.044. Spot clears around 30% of that.
	od := 2 * 0.044
	if res.InstanceCost >= od {
		t.Errorf("spot instance cost %v not below on-demand %v", res.InstanceCost, od)
	}
	if math.Abs(res.SpotSavingsUSD-(od-res.InstanceCost)) > 1e-9 {
		t.Errorf("savings %v, want %v", res.SpotSavingsUSD, od-res.InstanceCost)
	}
}

// TestSpotRevocationRetriesOpenLoop: under an absurd hazard every spot
// attempt is reclaimed almost immediately; the open-loop retry chain must
// count the revocations, fall back to on-demand, and still finish the
// workflow — with the lost work visible in the makespan and the bill.
func TestSpotRevocationRetriesOpenLoop(t *testing.T) {
	cat := spotCatalog(t, 7200) // mean time to reclaim: 0.5s
	s, err := New(DefaultOptions(cat, rand.New(rand.NewSource(11))))
	if err != nil {
		t.Fatal(err)
	}
	w := chain(t)
	res, err := s.Run(context.Background(), w, UniformPlan(w, cloud.SpotName("m1.small"), cloud.USEast))
	if err != nil {
		t.Fatal(err)
	}
	if res.Revocations < 1 {
		t.Fatal("no revocations under a 0.5s mean reclaim time")
	}
	for _, id := range []string{"a", "b"} {
		if res.Tasks[id] == nil {
			t.Fatalf("task %s never completed", id)
		}
	}
	// The replacement slots the retries acquired are all billed.
	if len(res.Instances) < 3 {
		t.Errorf("%d instances billed, want the original plus replacements", len(res.Instances))
	}
}

// recordingController captures events without revising anything.
type recordingController struct{ events []Event }

func (c *recordingController) OnEvent(ev Event)             { c.events = append(c.events, ev) }
func (c *recordingController) Revise() map[string]Placement { return nil }

// TestSpotRevocationEventCausality: the controller observes
// instance_revoked in non-decreasing time order, and any restart of the
// killed task is revealed only after the revocation.
func TestSpotRevocationEventCausality(t *testing.T) {
	cat := spotCatalog(t, 1800) // mean time to reclaim: 2s
	s, err := New(DefaultOptions(cat, rand.New(rand.NewSource(7))))
	if err != nil {
		t.Fatal(err)
	}
	w := chain(t)
	ctrl := &recordingController{}
	res, err := s.RunControlled(context.Background(), w, UniformPlan(w, cloud.SpotName("m1.small"), cloud.USEast), ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Revocations < 1 {
		t.Fatal("no revocations under a 2s mean reclaim time")
	}
	revoked := 0
	lastTime := math.Inf(-1)
	startsAfterRevoke := map[string]bool{}
	sawRevoke := map[string]bool{}
	for _, ev := range ctrl.events {
		if ev.Time < lastTime-1e-9 {
			t.Fatalf("event %s at %v after an event at %v", ev.Kind, ev.Time, lastTime)
		}
		lastTime = math.Max(lastTime, ev.Time)
		switch ev.Kind {
		case EvInstanceRevoked:
			revoked++
			if ev.Task != "" {
				sawRevoke[ev.Task] = true
			}
		case EvTaskStart:
			if sawRevoke[ev.Task] {
				startsAfterRevoke[ev.Task] = true
			}
		}
	}
	if revoked != res.Revocations {
		t.Errorf("controller saw %d revocations, result says %d", revoked, res.Revocations)
	}
	// At least one killed task restarted, and only after its revocation was
	// delivered.
	if len(sawRevoke) > 0 && len(startsAfterRevoke) == 0 {
		t.Error("killed tasks never restarted after their revocation events")
	}
}

func TestValidateRejectsSpotWithoutMarket(t *testing.T) {
	cat := cloud.DefaultCatalog()
	for i := range cat.Regions {
		cat.Regions[i].Spot = nil
	}
	w := chain(t)
	plan := UniformPlan(w, cloud.SpotName("m1.small"), cloud.USEast)
	if err := plan.Validate(w, cat); err == nil {
		t.Error("spot placement accepted in a region without spot markets")
	}
}
