package opt

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"deco/internal/device"
	"deco/internal/probir"
)

// fakeKernel is a one-figure kernel whose reduced value marks the kernel
// path: Value = state component. The map path's marker is 1000 + component
// (fakeSpace.Evaluate), so tests can tell which path scored a state.
type fakeKernel struct {
	worlds, width int
	val           float64
}

func (k *fakeKernel) Worlds() int { return k.worlds }
func (k *fakeKernel) Width() int  { return k.width }
func (k *fakeKernel) Sample(it int, _ *rand.Rand, out []float64) error {
	out[0] = k.val
	return nil
}
func (k *fakeKernel) Reduce(sums []float64) (*probir.Evaluation, error) {
	return &probir.Evaluation{Value: sums[0] / float64(k.worlds), Feasible: true}, nil
}

// fakeSpace drives the kernel-fallback machinery: a state's first component
// selects its kernel-construction behavior — 0 mod 3 builds a normal kernel,
// 1 mod 3 fails construction, 2 mod 3 drifts from the compiled shape.
type fakeSpace struct{}

var errFakeBuild = errors.New("fake kernel construction failure")

func (fakeSpace) Initial() State            { return State{0} }
func (fakeSpace) Neighbors(s State) []State { return nil }
func (fakeSpace) Evaluate(s State, rng *rand.Rand) (*probir.Evaluation, error) {
	return &probir.Evaluation{Value: 1000 + float64(s[0]), Feasible: true}, nil
}
func (fakeSpace) CRNKernel(s State, base int64) (probir.WorldKernel, error) {
	switch s[0] % 3 {
	case 1:
		return nil, fmt.Errorf("state %d: %w", s[0], errFakeBuild)
	case 2:
		return &fakeKernel{worlds: 7, width: 1, val: float64(s[0])}, nil // drifted shape
	}
	return &fakeKernel{worlds: 4, width: 1, val: float64(s[0])}, nil
}

// TestKernelConstructionErrorSurfaces pins the clean-batch contract: a state
// whose kernel fails to build reports that error even though every other
// state in the batch evaluates fine on the kernel path.
func TestKernelConstructionErrorSurfaces(t *testing.T) {
	p, err := Compile(fakeSpace{}, Options{Device: device.Sequential{}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if k, crn := p.Kerneled(); !k || !crn {
		t.Fatalf("fake space should compile CRN-kerneled, got kernel=%v crn=%v", k, crn)
	}
	cands := []candidate{
		{state: State{0}, key: State{0}.Key()},
		{state: State{3}, key: State{3}.Key()},
		{state: State{1}, key: State{1}.Key()},
	}
	out := p.evaluateCandidates(cands)
	if out[0].err != nil || out[0].eval.Value != 0 {
		t.Fatalf("state 0: want kernel value 0, got %+v (err %v)", out[0].eval, out[0].err)
	}
	if out[1].err != nil || out[1].eval.Value != 3 {
		t.Fatalf("state 3: want kernel value 3, got %+v (err %v)", out[1].eval, out[1].err)
	}
	if !errors.Is(out[2].err, errFakeBuild) {
		t.Fatalf("state 1: want construction error, got eval %+v err %v", out[2].eval, out[2].err)
	}
}

// TestKernelDriftFallbackPreservesErrors is the regression test for the
// drifted-batch bug: when one state's kernel shape drifts from the compiled
// probe the whole batch falls back to the generic map path — but a state
// whose kernel construction FAILED must keep its error rather than silently
// re-running (and succeeding) under different state-keyed randomness.
func TestKernelDriftFallbackPreservesErrors(t *testing.T) {
	p, err := Compile(fakeSpace{}, Options{Device: device.Sequential{}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cands := []candidate{
		{state: State{0}, key: State{0}.Key()}, // normal kernel
		{state: State{1}, key: State{1}.Key()}, // construction error
		{state: State{2}, key: State{2}.Key()}, // drifted shape -> batch fallback
		{state: State{6}, key: State{6}.Key()}, // normal kernel, after the drift
	}
	out := p.evaluateCandidates(cands)
	// Drift sends survivors to the map path (marker 1000+x), consistently.
	for _, i := range []int{0, 2, 3} {
		want := 1000 + float64(cands[i].state[0])
		if out[i].err != nil || out[i].eval == nil || out[i].eval.Value != want {
			t.Fatalf("state %v: want map value %v, got %+v (err %v)",
				cands[i].state, want, out[i].eval, out[i].err)
		}
	}
	if !errors.Is(out[1].err, errFakeBuild) {
		t.Fatalf("errored state lost its construction error in the fallback: eval %+v err %v",
			out[1].eval, out[1].err)
	}
	if out[1].eval != nil {
		t.Fatalf("errored state produced an evaluation via the map path: %+v", out[1].eval)
	}
	// The search surface rejects the batch with the construction error.
	if _, err := p.EvaluateStates([]State{{0}, {1}, {2}}); !errors.Is(err, errFakeBuild) {
		t.Fatalf("EvaluateStates: want construction error, got %v", err)
	}
}

// deltaProblem compiles the chain scheduling space twice: once with delta
// evaluation (given budget) and once with it disabled, sharing one
// evaluator so both see identical CRN realizations.
func deltaProblem(t *testing.T, budget int64) (*Problem, *Problem, *ScheduleSpace) {
	t.Helper()
	w := cpuChain(t, 6, 300)
	ne, _ := buildEval(t, w, 1300, 0.9, 20)
	space := NewScheduleSpace(w, ne)
	on, err := Compile(space, Options{Device: device.Sequential{}, Seed: 5, SnapshotBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Compile(space, Options{Device: device.Sequential{}, Seed: 5, SnapshotBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	return on, off, space
}

// TestEvaluateExpansionDeltaMatchesFull drives the frontier-expansion hot
// path: children of an evaluated parent take the delta route and must score
// bit-identically to the delta-disabled problem.
func TestEvaluateExpansionDeltaMatchesFull(t *testing.T) {
	on, off, _ := deltaProblem(t, 0)
	if !on.delta {
		t.Fatal("problem did not compile with delta evaluation")
	}
	if off.delta {
		t.Fatal("SnapshotBudget -1 did not disable delta")
	}

	parent := on.Starts()[0]
	pe, children, evs, err := on.EvaluateExpansion(parent)
	if err != nil {
		t.Fatal(err)
	}
	peOff, childrenOff, evsOff, err := off.EvaluateExpansion(parent)
	if err != nil {
		t.Fatal(err)
	}
	if pe.Value != peOff.Value || pe.Feasible != peOff.Feasible || pe.Violation != peOff.Violation {
		t.Fatalf("parent eval differs: delta %+v full %+v", pe, peOff)
	}
	if len(children) != len(childrenOff) {
		t.Fatalf("child counts differ: %d vs %d", len(children), len(childrenOff))
	}
	for i := range children {
		if children[i].Key() != childrenOff[i].Key() {
			t.Fatalf("child %d differs: %v vs %v", i, children[i], childrenOff[i])
		}
		if evs[i].Value != evsOff[i].Value || evs[i].Feasible != evsOff[i].Feasible ||
			evs[i].Violation != evsOff[i].Violation {
			t.Fatalf("child %d eval differs: delta %+v full %+v", i, evs[i], evsOff[i])
		}
	}

	st := on.DeltaStats()
	if st.DeltaEvals == 0 {
		t.Fatalf("no child took the delta path: %+v", st)
	}
	if st.Snapshots == 0 || st.SnapshotBytes == 0 {
		t.Fatalf("no snapshots retained: %+v", st)
	}
	if off.DeltaStats() != (DeltaStats{}) {
		t.Fatalf("delta-disabled problem recorded stats: %+v", off.DeltaStats())
	}
}

// TestSnapshotBudgetEvicts forces the snapshot store under a budget that
// holds only a couple of snapshots: older generations must be evicted (and
// recycled), later children fall back to full evaluation, and results stay
// identical throughout.
func TestSnapshotBudgetEvicts(t *testing.T) {
	// A chain of 6 tasks at 20 worlds retains 6*20*8 + 20*12 = 1200 bytes
	// per snapshot; 3000 holds two.
	on, off, _ := deltaProblem(t, 3000)
	parent := on.Starts()[0]
	for round := 0; round < 3; round++ {
		_, _, evs, err := on.EvaluateExpansion(parent)
		if err != nil {
			t.Fatal(err)
		}
		_, _, evsOff, err := off.EvaluateExpansion(parent)
		if err != nil {
			t.Fatal(err)
		}
		for i := range evs {
			if evs[i].Value != evsOff[i].Value || evs[i].Feasible != evsOff[i].Feasible {
				t.Fatalf("round %d child %d: delta %+v full %+v", round, i, evs[i], evsOff[i])
			}
		}
	}
	st := on.DeltaStats()
	if st.Evictions == 0 {
		t.Fatalf("tight budget evicted nothing: %+v", st)
	}
	if st.SnapshotBytes > 3000 {
		t.Fatalf("retained bytes %d exceed budget: %+v", st.SnapshotBytes, st)
	}
	if st.DeltaEvals == 0 {
		t.Fatalf("no delta evaluations under eviction pressure: %+v", st)
	}
}

// TestSearchDeltaInvariance runs the full search with and without delta
// evaluation: identical trajectories, identical results — delta is a
// wall-clock optimization, never a semantics change.
func TestSearchDeltaInvariance(t *testing.T) {
	for _, astar := range []bool{false, true} {
		on, off, _ := deltaProblem(t, 0)
		on.opts.AStar, off.opts.AStar = astar, astar
		ron, err := on.Search()
		if err != nil {
			t.Fatal(err)
		}
		roff, err := off.Search()
		if err != nil {
			t.Fatal(err)
		}
		if ron.Best.Key() != roff.Best.Key() || ron.Evaluated != roff.Evaluated ||
			ron.BestEval.Value != roff.BestEval.Value || ron.Feasible != roff.Feasible {
			t.Fatalf("astar=%v: delta search diverged:\n delta: %+v %v\n full:  %+v %v",
				astar, ron, ron.Best, roff, roff.Best)
		}
		if st := on.DeltaStats(); st.DeltaEvals == 0 {
			t.Fatalf("astar=%v: search never took the delta path: %+v", astar, st)
		}
	}
}

// TestTransformNeighborsMatchesNeighbors pins the TransformSpace contract:
// same children, same order, and Tasks lists exactly the changed indices.
func TestTransformNeighborsMatchesNeighbors(t *testing.T) {
	w := cpuChain(t, 5, 100)
	ne, _ := buildEval(t, w, 0, 0, 10)
	space := NewScheduleSpace(w, ne)
	st := State{0, 1, 2, 0, 3}
	ns := space.Neighbors(st)
	trs := space.TransformNeighbors(st)
	if len(ns) != len(trs) {
		t.Fatalf("Neighbors %d != TransformNeighbors %d", len(ns), len(trs))
	}
	for i := range ns {
		if ns[i].Key() != trs[i].Child.Key() {
			t.Fatalf("child %d: %v != %v", i, ns[i], trs[i].Child)
		}
		changed := map[int32]bool{}
		for j := range st {
			if trs[i].Child[j] != st[j] {
				changed[int32(j)] = true
			}
		}
		if len(changed) != len(trs[i].Tasks) {
			t.Fatalf("child %d: Tasks %v but changed %v", i, trs[i].Tasks, changed)
		}
		for _, ti := range trs[i].Tasks {
			if !changed[ti] {
				t.Fatalf("child %d: task %d in Tasks but unchanged", i, ti)
			}
		}
		if trs[i].Op != OpPromote && trs[i].Op != OpDemote {
			t.Fatalf("child %d: unexpected op %v", i, trs[i].Op)
		}
	}
	if !strings.Contains(fmt.Sprint(trs[0].Op), "mote") {
		t.Fatalf("op %v should be Promote/Demote", trs[0].Op)
	}
}
