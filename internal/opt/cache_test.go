package opt

import (
	"testing"

	"deco/internal/cloud"
	"deco/internal/device"
	"deco/internal/probir"
)

func TestEvalCacheLRU(t *testing.T) {
	c := NewEvalCache(2)
	ev := func(v float64) *probir.Evaluation { return &probir.Evaluation{Value: v} }
	c.Put("a", ev(1))
	c.Put("b", ev(2))
	if _, ok := c.Get("a"); !ok { // a is now most-recently used
		t.Fatal("a missing")
	}
	c.Put("c", ev(3)) // evicts b, the LRU entry
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if got, ok := c.Get("a"); !ok || got.Value != 1 {
		t.Errorf("a: %+v %v", got, ok)
	}
	if got, ok := c.Get("c"); !ok || got.Value != 3 {
		t.Errorf("c: %+v %v", got, ok)
	}
	if c.Len() != 2 {
		t.Errorf("len %d, want 2", c.Len())
	}
	// 4 hits (a, a, c) + 2 misses (initial a... ) — count precisely:
	// Get(a) hit, Get(b) miss, Get(a) hit, Get(c) hit.
	if c.Hits() != 3 || c.Misses() != 1 {
		t.Errorf("hits %d misses %d, want 3/1", c.Hits(), c.Misses())
	}
	// Re-Put of an existing key replaces in place, no growth.
	c.Put("a", ev(9))
	if got, _ := c.Get("a"); got.Value != 9 || c.Len() != 2 {
		t.Errorf("replace: %+v len %d", got, c.Len())
	}
}

func TestEvalCacheDefaultCapacity(t *testing.T) {
	if NewEvalCache(0).cap != DefaultEvalCacheCapacity {
		t.Error("zero capacity not defaulted")
	}
	if NewEvalCache(-1).cap != DefaultEvalCacheCapacity {
		t.Error("negative capacity not defaulted")
	}
}

// A zero-value Options must behave exactly like DefaultOptions on every
// field it leaves unset — in particular Seed, which silently ran as 0 while
// DefaultOptions used 1.
func TestZeroOptionsSeedDefaultsToOne(t *testing.T) {
	var o Options
	fillDefaults(&o)
	if o.Seed != 1 {
		t.Fatalf("zero Options seed %d, want 1", o.Seed)
	}
	w := cpuChain(t, 4, 400)
	ne, _ := buildEval(t, w, 900, 0.95, 30)
	run := func(o Options) *Result {
		res, err := Search(NewScheduleSpace(w, ne), o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	zero := run(Options{Device: device.Sequential{}, MaxStates: 300})
	one := run(Options{Device: device.Sequential{}, MaxStates: 300, Seed: 1})
	if zero.Best.Key() != one.Best.Key() || zero.BestEval.Value != one.BestEval.Value ||
		zero.Evaluated != one.Evaluated {
		t.Errorf("zero-seed search %+v differs from seed-1 search %+v", zero, one)
	}
}

// A search with a warm cache must retrace the cold search exactly — same
// best state, same figures, same number of evaluations — while actually
// hitting the cache.
func TestSearchWithEvalCacheIsTrajectoryIdentical(t *testing.T) {
	w := cpuChain(t, 4, 400)
	ne, tbl := buildEval(t, w, 900, 0.95, 30)
	us, _ := cloud.DefaultCatalog().Region(cloud.USEast)
	prices := make([]float64, len(tbl.Types))
	for j, n := range tbl.Types {
		prices[j] = us.PricePerHour[n]
	}
	sp := NewPackedScheduleSpace(w, ne, tbl, prices, cloud.USEast)
	cache := NewEvalCache(0)
	base := Options{Device: device.Parallel{}, MaxStates: 400, Seed: 7, Cache: cache}

	cold, err := Search(sp, base)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() == 0 || cache.Misses() == 0 {
		t.Fatalf("cold search did not populate the cache: len %d", cache.Len())
	}
	if cache.Hits() != 0 {
		t.Fatalf("cold search hit an empty cache: %d", cache.Hits())
	}

	warm, err := Search(sp, base)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Hits() == 0 {
		t.Fatal("warm search never hit the cache")
	}
	if warm.Best.Key() != cold.Best.Key() {
		t.Errorf("warm best %v != cold %v", warm.Best, cold.Best)
	}
	if warm.Evaluated != cold.Evaluated {
		t.Errorf("warm evaluated %d != cold %d (hits must still count)", warm.Evaluated, cold.Evaluated)
	}
	gw, gc := warm.BestEval, cold.BestEval
	if gw.Value != gc.Value || gw.Feasible != gc.Feasible || gw.Violation != gc.Violation {
		t.Errorf("warm eval {%v %v %v} != cold {%v %v %v}",
			gw.Value, gw.Feasible, gw.Violation, gc.Value, gc.Feasible, gc.Violation)
	}

	// A different seed is a different realization: it must not share entries.
	pre := cache.Hits()
	diff := base
	diff.Seed = 8
	if _, err := Search(sp, diff); err != nil {
		t.Fatal(err)
	}
	if cache.Hits() != pre {
		t.Errorf("seed-8 search hit seed-7 entries (%d new hits)", cache.Hits()-pre)
	}
}

// Spaces that cannot identify their evaluation (a CostFn objective without a
// CostTag) must disable caching rather than risk serving wrong entries.
func TestSearchCacheDisabledForUnidentifiableSpace(t *testing.T) {
	w := cpuChain(t, 4, 400)
	ne, _ := buildEval(t, w, 900, 0.95, 20)
	sp := NewScheduleSpace(w, ne)
	sp.CostFn = func(st State) (float64, error) { return float64(len(st)), nil }
	// CostTag deliberately left empty.
	if fp := sp.Fingerprint(); fp != "" {
		t.Fatalf("unidentifiable space fingerprinted as %q", fp)
	}
	cache := NewEvalCache(0)
	if _, err := Search(sp, Options{Device: device.Sequential{}, MaxStates: 100, Seed: 3, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 || cache.Hits() != 0 || cache.Misses() != 0 {
		t.Errorf("cache touched for unidentifiable space: len %d hits %d misses %d",
			cache.Len(), cache.Hits(), cache.Misses())
	}
}
