package opt

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"deco/internal/cloud"
	"deco/internal/dag"
	"deco/internal/device"
	"deco/internal/estimate"
	"deco/internal/probir"
	"deco/internal/sim"
	"deco/internal/wfgen"
	"deco/internal/wlog"
)

// buildEval assembles a native evaluator for a workflow with the given
// probabilistic deadline.
func buildEval(t *testing.T, w *dag.Workflow, deadline, pct float64, iters int) (*probir.Native, *estimate.Table) {
	t.Helper()
	cat := cloud.DefaultCatalog()
	md, err := cloud.MetadataFromTruth(cat, 15, 4000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := estimate.New(cat, md).BuildTable(w)
	if err != nil {
		t.Fatal(err)
	}
	us, _ := cat.Region(cloud.USEast)
	prices := make([]float64, len(tbl.Types))
	for j, n := range tbl.Types {
		prices[j] = us.PricePerHour[n]
	}
	var cons []wlog.Constraint
	if deadline > 0 {
		cons = append(cons, wlog.Constraint{Kind: "deadline", Percentile: pct, Bound: deadline})
	}
	ne, err := probir.NewNative(w, tbl, prices, probir.GoalCost, cons, iters)
	if err != nil {
		t.Fatal(err)
	}
	return ne, tbl
}

// cpuChain builds a chain of n CPU-only tasks of the given CPU seconds.
func cpuChain(t *testing.T, n int, cpu float64) *dag.Workflow {
	t.Helper()
	w := dag.New("chain")
	prev := ""
	for i := 0; i < n; i++ {
		id := string(rune('a' + i))
		if err := w.AddTask(&dag.Task{ID: id, Executable: "p" + id, CPUSeconds: cpu}); err != nil {
			t.Fatal(err)
		}
		if prev != "" {
			if err := w.AddEdge(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	return w
}

func TestStateKeyUniqueness(t *testing.T) {
	a := State{0, 1, 2}
	b := State{0, 1, 2}
	c := State{0, 2, 1}
	if a.Key() != b.Key() {
		t.Error("equal states, different keys")
	}
	if a.Key() == c.Key() {
		t.Error("distinct states, same key")
	}
	// Multi-byte values.
	big := State{1000, 2000}
	big2 := State{1000, 2001}
	if big.Key() == big2.Key() {
		t.Error("large values collide")
	}
	cl := a.Clone()
	cl[0] = 9
	if a[0] == 9 {
		t.Error("clone shares memory")
	}
}

func TestGenericSearchFindsFeasibleCheapest(t *testing.T) {
	// Chain of 4 tasks, 400 CPU-s each. On m1.small the makespan is 1600s;
	// with a deadline of 900s at least some tasks must be promoted. The
	// cheapest feasible mix should beat all-xlarge cost.
	w := cpuChain(t, 4, 400)
	ne, _ := buildEval(t, w, 900, 0.95, 30)
	space := NewScheduleSpace(w, ne)
	res, err := Search(space, Options{Device: device.Sequential{}, MaxStates: 2000, BeamWidth: 6, Patience: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("no feasible state found: %+v", res)
	}
	// Verify against the evaluator: best state must satisfy the deadline.
	ev, err := ne.Evaluate(res.Best, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible {
		t.Errorf("reported best is infeasible on re-evaluation")
	}
	// CPU-only tasks: all-xlarge is feasible (makespan 200) and costs
	// ~the same as any other config, so the optimum should not exceed it.
	allXL := State{3, 3, 3, 3}
	evXL, _ := ne.Evaluate(allXL, rand.New(rand.NewSource(99)))
	if res.BestEval.Value > evXL.Value*1.01 {
		t.Errorf("search result %v worse than trivial all-xlarge %v", res.BestEval.Value, evXL.Value)
	}
	if res.Evaluated == 0 || res.Elapsed <= 0 {
		t.Error("bookkeeping missing")
	}
}

func TestSearchInfeasibleProblemReportsLeastViolating(t *testing.T) {
	// 1-second deadline cannot be met by any configuration.
	w := cpuChain(t, 3, 500)
	ne, _ := buildEval(t, w, 1, 0.95, 20)
	space := NewScheduleSpace(w, ne)
	res, err := Search(space, Options{Device: device.Sequential{}, MaxStates: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("impossible deadline reported feasible")
	}
	if res.Best == nil || res.BestEval == nil {
		t.Fatal("no least-violating state reported")
	}
	// The least-violating state should be promoted beyond all-cheapest.
	sum := 0
	for _, v := range res.Best {
		sum += v
	}
	if sum == 0 {
		t.Error("search did not climb toward feasibility")
	}
}

func TestAStarMatchesGenericOnSmallSpace(t *testing.T) {
	w := cpuChain(t, 3, 400)
	ne, _ := buildEval(t, w, 700, 0.95, 30)
	space := NewScheduleSpace(w, ne)
	gen, err := Search(space, Options{Device: device.Sequential{}, MaxStates: 5000, BeamWidth: 64, Patience: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ast, err := Search(space, Options{Device: device.Sequential{}, MaxStates: 5000, Patience: 50, Seed: 5, AStar: true})
	if err != nil {
		t.Fatal(err)
	}
	if !gen.Feasible || !ast.Feasible {
		t.Fatalf("feasibility: generic %v astar %v", gen.Feasible, ast.Feasible)
	}
	// A* must be at least as good (both should find the optimum here).
	if ast.BestEval.Value > gen.BestEval.Value*1.05 {
		t.Errorf("astar %v much worse than generic %v", ast.BestEval.Value, gen.BestEval.Value)
	}
}

func TestParallelDeviceSameResultAsSequential(t *testing.T) {
	w := cpuChain(t, 4, 300)
	ne, _ := buildEval(t, w, 800, 0.95, 25)
	space := NewScheduleSpace(w, ne)
	opts := Options{MaxStates: 600, BeamWidth: 4, Patience: 8, Seed: 11}
	opts.Device = device.Sequential{}
	seq, err := Search(space, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Device = device.Parallel{NumBlocks: 8}
	par, err := Search(space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Best.Key() != par.Best.Key() {
		t.Errorf("devices found different states: %v vs %v", seq.Best, par.Best)
	}
	if seq.BestEval.Value != par.BestEval.Value {
		t.Errorf("devices found different values: %v vs %v", seq.BestEval.Value, par.BestEval.Value)
	}
}

func TestNeighborsPromoteDemote(t *testing.T) {
	w := cpuChain(t, 2, 100)
	ne, _ := buildEval(t, w, 0, 0, 5)
	space := NewScheduleSpace(w, ne)

	// From all-cheapest: one promote per group plus the global promote shift.
	ns := space.Neighbors(State{0, 0})
	if len(ns) != 3 {
		t.Fatalf("neighbors of (0,0): %v", ns)
	}
	// Mid state: (2 promotes + shift) + (2 demotes + shift).
	ns = space.Neighbors(State{1, 2})
	if len(ns) != 6 {
		t.Fatalf("neighbors of (1,2): %v", ns)
	}
	// Top state: only demotes (+ global demote).
	ns = space.Neighbors(State{3, 3})
	if len(ns) != 3 {
		t.Fatalf("neighbors of (3,3): %v", ns)
	}
	// Promote-only configuration.
	space.Ops = []Op{OpPromote}
	ns = space.Neighbors(State{3, 3})
	if len(ns) != 0 {
		t.Fatalf("promote-only at top: %v", ns)
	}
	// Multi-start: one homogeneous start per type.
	space.Ops = []Op{OpPromote, OpDemote}
	starts := space.Starts()
	if len(starts) != 4 {
		t.Fatalf("starts %v", starts)
	}
	for j, st := range starts {
		for _, v := range st {
			if v != j {
				t.Fatalf("start %d not homogeneous: %v", j, st)
			}
		}
	}
	// Explicit Init suppresses multi-start.
	space.Init = State{2, 2}
	if got := space.Starts(); len(got) != 1 || got[0][0] != 2 {
		t.Fatalf("init override starts: %v", got)
	}
}

func TestGroupByExecutable(t *testing.T) {
	w, err := wfgen.Montage(2, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	groups := GroupByExecutable(w)
	if len(groups) != 9 { // nine Montage executables
		t.Fatalf("groups %d, want 9", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != w.Len() {
		t.Errorf("groups cover %d of %d tasks", total, w.Len())
	}
	// Per-task grouping covers everything too.
	pt := GroupPerTask(w)
	if len(pt) != w.Len() {
		t.Errorf("per-task groups %d", len(pt))
	}
}

func TestNewScheduleSpacePicksGranularity(t *testing.T) {
	small := cpuChain(t, 3, 10)
	ne, _ := buildEval(t, small, 0, 0, 5)
	if sp := NewScheduleSpace(small, ne); len(sp.Groups) != 3 {
		t.Errorf("small workflow should group per task")
	}
	big, _ := wfgen.Montage(3, rand.New(rand.NewSource(3)))
	neBig, _ := buildEval(t, big, 0, 0, 5)
	if sp := NewScheduleSpace(big, neBig); len(sp.Groups) >= big.Len() {
		t.Errorf("large workflow should group by executable")
	}
}

func TestConsolidateMergesSerialChain(t *testing.T) {
	// A pure chain on one type: all tasks can share one instance (Merge).
	w := cpuChain(t, 5, 100)
	_, tbl := buildEval(t, w, 0, 0, 5)
	plan, err := Consolidate(w, State{0, 0, 0, 0, 0}, tbl, cloud.USEast)
	if err != nil {
		t.Fatal(err)
	}
	slots := map[int]bool{}
	for _, pl := range plan.Place {
		slots[pl.Slot] = true
	}
	if len(slots) != 1 {
		t.Errorf("chain should consolidate to 1 instance, got %d", len(slots))
	}
	// Executing the consolidated plan must be valid and cheaper than
	// one-instance-per-task.
	cat := cloud.DefaultCatalog()
	s, err := sim.New(sim.DefaultOptions(cat, rand.New(rand.NewSource(4))))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := s.Run(context.Background(), w, plan)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := sim.New(sim.DefaultOptions(cat, rand.New(rand.NewSource(4))))
	separate, err := s2.Run(context.Background(), w, sim.UniformPlan(w, "m1.small", cloud.USEast))
	if err != nil {
		t.Fatal(err)
	}
	if merged.InstanceCost >= separate.InstanceCost {
		t.Errorf("merged cost %v not below separate %v", merged.InstanceCost, separate.InstanceCost)
	}
}

func TestConsolidateKeepsParallelTasksApart(t *testing.T) {
	// Two independent tasks that overlap in time need two instances.
	w := dag.New("par")
	_ = w.AddTask(&dag.Task{ID: "a", Executable: "x", CPUSeconds: 500})
	_ = w.AddTask(&dag.Task{ID: "b", Executable: "x", CPUSeconds: 500})
	_, tbl := buildEval(t, w, 0, 0, 5)
	plan, err := Consolidate(w, State{0, 0}, tbl, cloud.USEast)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Place["a"].Slot == plan.Place["b"].Slot {
		t.Error("overlapping tasks share an instance")
	}
	// Different types never merge.
	plan, err = Consolidate(cpuChain(t, 2, 100), State{0, 3}, tbl, cloud.USEast)
	if err == nil {
		// cpuChain tasks differ from w's table; rebuild the table for it.
		_ = plan
	}
}

func TestConsolidateValidation(t *testing.T) {
	w := cpuChain(t, 3, 100)
	_, tbl := buildEval(t, w, 0, 0, 5)
	if _, err := Consolidate(w, State{0}, tbl, cloud.USEast); err == nil {
		t.Error("short config accepted")
	}
}

func TestOpStrings(t *testing.T) {
	names := map[Op]string{
		OpMove: "Move", OpMerge: "Merge", OpPromote: "Promote",
		OpDemote: "Demote", OpSplit: "Split", OpCoSchedule: "Co-Scheduling",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d = %s, want %s", int(op), op.String(), want)
		}
	}
	if Op(99).String() != "Op(99)" {
		t.Error("unknown op rendering")
	}
}

func TestSearchBudgetRespected(t *testing.T) {
	w := cpuChain(t, 6, 200)
	ne, _ := buildEval(t, w, 600, 0.95, 10)
	space := NewScheduleSpace(w, ne)
	res, err := Search(space, Options{Device: device.Sequential{}, MaxStates: 25, BeamWidth: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated > 25 {
		t.Errorf("evaluated %d > budget 25", res.Evaluated)
	}
	// A* budget.
	res, err = Search(space, Options{Device: device.Sequential{}, MaxStates: 25, Seed: 1, AStar: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated > 25 {
		t.Errorf("astar evaluated %d > budget 25", res.Evaluated)
	}
}

// Property: the search never returns a state worse than the best start
// state (it always evaluates the starts themselves).
func TestSearchImprovesOnStartsProperty(t *testing.T) {
	w := cpuChain(t, 4, 300)
	ne, _ := buildEval(t, w, 900, 0.95, 15)
	space := NewScheduleSpace(w, ne)
	f := func(seedRaw int16) bool {
		seed := int64(seedRaw)
		res, err := Search(space, Options{Device: device.Sequential{}, MaxStates: 120, BeamWidth: 3, Patience: 4, Seed: seed})
		if err != nil {
			return false
		}
		for _, st := range space.Starts() {
			ev, err := space.Evaluate(st, rand.New(rand.NewSource(seed)))
			if err != nil {
				return false
			}
			// A feasible start bounds the result: the search result must be
			// feasible and no more expensive (within MC noise).
			if ev.Feasible && res.Feasible && res.BestEval.Value > ev.Value*1.001 {
				return false
			}
			if ev.Feasible && !res.Feasible {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
