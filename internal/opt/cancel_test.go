package opt

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"deco/internal/device"
	"deco/internal/probir"
)

// slowSpace is a search space whose evaluations take a fixed wall time, so
// cancellation latency can be bounded against total solve time.
type slowSpace struct {
	n     int // state length
	types int // values per position
	delay time.Duration
	evals atomic.Int64
}

func (s *slowSpace) Initial() State { return make(State, s.n) }

func (s *slowSpace) Neighbors(st State) []State {
	var out []State
	for i := 0; i < s.n; i++ {
		if st[i]+1 < s.types {
			c := st.Clone()
			c[i]++
			out = append(out, c)
		}
	}
	return out
}

func (s *slowSpace) Evaluate(st State, rng *rand.Rand) (*probir.Evaluation, error) {
	s.evals.Add(1)
	time.Sleep(s.delay)
	v := 0.0
	for _, x := range st {
		v += float64(x)
	}
	// Children strictly improve on their parent (minimization toward the
	// all-max state), so neither search prunes or stalls before cancellation.
	return &probir.Evaluation{Value: 1 + float64(s.n*(s.types-1)) - v, Feasible: true}, nil
}

func TestSearchCancellationIsPrompt(t *testing.T) {
	const perEval = 2 * time.Millisecond
	mk := func() (*slowSpace, Options) {
		sp := &slowSpace{n: 6, types: 6, delay: perEval}
		o := Options{Device: device.Sequential{}, MaxStates: 600, BeamWidth: 4, Patience: 1000, Seed: 1}
		return sp, o
	}

	// The full (uncancelled) solve costs at least MaxStates/3 evaluations
	// sequentially — well over a second of sleep time. Cancel after a small
	// head start and require the search to return within a small fraction of
	// that lower bound.
	fullLowerBound := 200 * perEval // 400ms of mandatory sleep if uncancelled

	for _, astar := range []bool{false, true} {
		sp, o := mk()
		o.AStar = astar
		ctx, cancel := context.WithCancel(context.Background())
		o.Ctx = ctx
		go func() {
			time.Sleep(10 * perEval)
			cancel()
		}()
		start := time.Now()
		_, err := Search(sp, o)
		elapsed := time.Since(start)
		if err == nil {
			t.Fatalf("astar=%v: cancelled search returned no error", astar)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("astar=%v: error does not wrap context.Canceled: %v", astar, err)
		}
		if elapsed >= fullLowerBound/2 {
			t.Errorf("astar=%v: cancellation took %v, want well under the %v full-solve lower bound", astar, elapsed, fullLowerBound)
		}
		if n := sp.evals.Load(); n >= 200 {
			t.Errorf("astar=%v: %d states evaluated after cancellation, want far fewer than the 600 budget", astar, n)
		}
	}
}

func TestSearchPreCancelledContext(t *testing.T) {
	sp := &slowSpace{n: 3, types: 3, delay: 0}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Search(sp, Options{Device: device.Sequential{}, MaxStates: 50, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: got %v, want context.Canceled", err)
	}
}

func TestSearchNilContextStillWorks(t *testing.T) {
	sp := &slowSpace{n: 3, types: 3, delay: 0}
	res, err := Search(sp, Options{Device: device.Sequential{}, MaxStates: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestEval == nil || res.Evaluated == 0 {
		t.Fatal("search with nil context returned no result")
	}
}
