package opt

import (
	"container/list"
	"sync"
	"sync/atomic"

	"deco/internal/probir"
)

// EvalCache is a bounded, concurrency-safe transposition table for state
// evaluations. Entries are keyed by the search space's program fingerprint,
// the search seed, and the state key, so a hit is guaranteed to be the
// bit-identical evaluation the live path would have produced under the CRN
// determinism contract — which is what makes it safe to share one cache
// across the warm-started replans of a run, across successive searches, and
// across decod jobs solving the same problem. Eviction is LRU across every
// binding's entries.
//
// Searches do not address the cache with flat keys: Compile resolves the
// (fingerprint, seed) keyspace and the scope label once into a Binding, and
// the hot loop looks up bare state keys against it.
type EvalCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	views map[string]*cacheView

	hits   atomic.Int64
	misses atomic.Int64

	scopeMu sync.Mutex
	scopes  map[string]*scopeCounter

	// flat serves the prefixless Get/Put convenience API.
	flat *Binding
}

// cacheView is one keyspace (one fingerprint|seed prefix) of the shared
// table. Bindings with the same prefix share a view, so concurrent searches
// over the same program see each other's entries.
type cacheView struct {
	prefix string
	items  map[string]*list.Element
}

// scopeCounter accumulates hit/miss traffic for one scope label.
type scopeCounter struct {
	hits, misses atomic.Int64
}

type cacheEntry struct {
	view *cacheView
	key  string
	ev   *probir.Evaluation
}

// DefaultEvalCacheCapacity bounds a cache built with capacity <= 0. At
// roughly a hundred bytes per evaluation this keeps the table in the
// few-megabytes range.
const DefaultEvalCacheCapacity = 65536

// NewEvalCache returns an empty cache holding at most capacity evaluations
// (DefaultEvalCacheCapacity when capacity <= 0).
func NewEvalCache(capacity int) *EvalCache {
	if capacity <= 0 {
		capacity = DefaultEvalCacheCapacity
	}
	c := &EvalCache{cap: capacity, ll: list.New(), views: make(map[string]*cacheView)}
	c.flat = c.Bind("", "")
	return c
}

// Binding is one search's window onto a shared cache: the keyspace prefix
// and the scope counter are resolved exactly once (by Compile), so per-state
// lookups take the bare state key and pay no prefix concatenation or
// scope-map access.
type Binding struct {
	c     *EvalCache
	view  *cacheView
	scope *scopeCounter
}

// Bind resolves the keyspace for prefix (normally "fingerprint|seed|") and
// the optional scope label, creating either on first use. Bindings with the
// same prefix share entries.
func (c *EvalCache) Bind(prefix, scope string) *Binding {
	c.mu.Lock()
	v, ok := c.views[prefix]
	if !ok {
		v = &cacheView{prefix: prefix, items: make(map[string]*list.Element)}
		c.views[prefix] = v
	}
	c.mu.Unlock()
	b := &Binding{c: c, view: v}
	if scope != "" {
		b.scope = c.scope(scope)
	}
	return b
}

// Get returns the cached evaluation for key, marking it most-recently used.
// The returned Evaluation is shared: callers must not modify it.
func (b *Binding) Get(key string) (*probir.Evaluation, bool) {
	c := b.c
	c.mu.Lock()
	el, ok := b.view.items[key]
	var ev *probir.Evaluation
	if ok {
		c.ll.MoveToFront(el)
		ev = el.Value.(*cacheEntry).ev
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	if b.scope != nil {
		if ok {
			b.scope.hits.Add(1)
		} else {
			b.scope.misses.Add(1)
		}
	}
	return ev, ok
}

// Put stores an evaluation under the binding's keyspace, evicting the
// least-recently-used entry (across all bindings) when the cache is full.
func (b *Binding) Put(key string, ev *probir.Evaluation) {
	c := b.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := b.view.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).ev = ev
		return
	}
	b.view.items[key] = c.ll.PushFront(&cacheEntry{view: b.view, key: key, ev: ev})
	if c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		ent := el.Value.(*cacheEntry)
		delete(ent.view.items, ent.key)
		// A drained keyspace is dropped so long-lived caches serving many
		// distinct programs don't accumulate empty views. A binding still
		// holding the view keeps working; its next Put simply repopulates a
		// detached map whose entries age out through the same LRU list.
		if len(ent.view.items) == 0 && c.views[ent.view.prefix] == ent.view {
			delete(c.views, ent.view.prefix)
		}
	}
}

// Get is the prefixless convenience lookup (tests and ad-hoc callers);
// searches go through a Binding instead.
func (c *EvalCache) Get(key string) (*probir.Evaluation, bool) { return c.flat.Get(key) }

// Put is the prefixless convenience store; searches go through a Binding.
func (c *EvalCache) Put(key string, ev *probir.Evaluation) { c.flat.Put(key, ev) }

func (c *EvalCache) scope(name string) *scopeCounter {
	c.scopeMu.Lock()
	defer c.scopeMu.Unlock()
	if c.scopes == nil {
		c.scopes = make(map[string]*scopeCounter)
	}
	sc, ok := c.scopes[name]
	if !ok {
		sc = &scopeCounter{}
		c.scopes[name] = sc
	}
	return sc
}

// ScopeStats returns the hit/miss counts attributed to a scope label since
// construction (zeros for a scope never seen).
func (c *EvalCache) ScopeStats(scope string) (hits, misses int64) {
	c.scopeMu.Lock()
	sc := c.scopes[scope]
	c.scopeMu.Unlock()
	if sc == nil {
		return 0, 0
	}
	return sc.hits.Load(), sc.misses.Load()
}

// Scopes lists the scope labels that have recorded traffic.
func (c *EvalCache) Scopes() []string {
	c.scopeMu.Lock()
	defer c.scopeMu.Unlock()
	out := make([]string, 0, len(c.scopes))
	for s := range c.scopes {
		out = append(out, s)
	}
	return out
}

// Len is the current number of cached evaluations.
func (c *EvalCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Hits is the number of cache hits since construction.
func (c *EvalCache) Hits() int64 { return c.hits.Load() }

// Misses is the number of cache misses since construction.
func (c *EvalCache) Misses() int64 { return c.misses.Load() }
