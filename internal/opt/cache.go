package opt

import (
	"container/list"
	"sync"
	"sync/atomic"

	"deco/internal/probir"
)

// EvalCache is a bounded, concurrency-safe transposition table for state
// evaluations. Entries are keyed by the search space's program fingerprint,
// the search seed, and the state key, so a hit is guaranteed to be the
// bit-identical evaluation the live path would have produced under the CRN
// determinism contract — which is what makes it safe to share one cache
// across the warm-started replans of a run, across successive searches, and
// across decod jobs solving the same problem. Eviction is LRU.
type EvalCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key string
	ev  *probir.Evaluation
}

// DefaultEvalCacheCapacity bounds a cache built with capacity <= 0. At
// roughly a hundred bytes per evaluation this keeps the table in the
// few-megabytes range.
const DefaultEvalCacheCapacity = 65536

// NewEvalCache returns an empty cache holding at most capacity evaluations
// (DefaultEvalCacheCapacity when capacity <= 0).
func NewEvalCache(capacity int) *EvalCache {
	if capacity <= 0 {
		capacity = DefaultEvalCacheCapacity
	}
	return &EvalCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached evaluation for key, marking it most-recently used.
// The returned Evaluation is shared: callers must not modify it.
func (c *EvalCache) Get(key string) (*probir.Evaluation, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	var ev *probir.Evaluation
	if ok {
		c.ll.MoveToFront(el)
		ev = el.Value.(*cacheEntry).ev
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return ev, true
}

// Put stores an evaluation, evicting the least-recently-used entry when the
// cache is full.
func (c *EvalCache) Put(key string, ev *probir.Evaluation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).ev = ev
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, ev: ev})
	if c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*cacheEntry).key)
	}
}

// Len is the current number of cached evaluations.
func (c *EvalCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Hits is the number of cache hits since construction.
func (c *EvalCache) Hits() int64 { return c.hits.Load() }

// Misses is the number of cache misses since construction.
func (c *EvalCache) Misses() int64 { return c.misses.Load() }
