package opt

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"deco/internal/device"
	"deco/internal/probir"
)

// mapOnlySpace has no kernel decomposition at all: evaluation only via the
// generic map path. Used to pin the Worlds-assertion error.
type mapOnlySpace struct{}

func (mapOnlySpace) Initial() State            { return State{0} }
func (mapOnlySpace) Neighbors(s State) []State { return nil }
func (mapOnlySpace) Evaluate(s State, rng *rand.Rand) (*probir.Evaluation, error) {
	return &probir.Evaluation{Value: 1, Feasible: true}, nil
}

// TestCompileAdaptiveOptionValidation pins the Compile-time validation of the
// adaptive-sampling knobs: bad values fail with errors naming the option, and
// a Worlds assertion is checked against the compiled kernel.
func TestCompileAdaptiveOptionValidation(t *testing.T) {
	w := cpuChain(t, 4, 300)
	ne, _ := buildEval(t, w, 1300, 0.9, 20)
	space := NewScheduleSpace(w, ne)

	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"negative worlds", Options{Device: device.Sequential{}, Worlds: -1}, "Options.Worlds"},
		{"negative min worlds", Options{Device: device.Sequential{}, MinWorlds: -5}, "Options.MinWorlds"},
		{"low confidence", Options{Device: device.Sequential{}, Confidence: 0.3}, "Options.Confidence"},
		{"negative confidence", Options{Device: device.Sequential{}, Confidence: -0.1}, "Options.Confidence"},
		{"unit confidence", Options{Device: device.Sequential{}, Confidence: 1.0}, "Options.Confidence"},
		{"worlds mismatch", Options{Device: device.Sequential{}, Worlds: 21}, "samples 20 worlds"},
	}
	for _, tc := range cases {
		if _, err := Compile(space, tc.opts); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Compile error = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// Valid settings compile; a correct Worlds assertion passes.
	p, err := Compile(space, Options{Device: device.Sequential{}, Worlds: 20, MinWorlds: 8, Confidence: 0.99})
	if err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	if p.Adaptive() {
		t.Fatal("Adaptive off must compile the fixed path")
	}
	// Asserting Worlds against a space with no kernel decomposition fails.
	if _, err := Compile(mapOnlySpace{}, Options{Device: device.Sequential{}, Worlds: 5}); err == nil ||
		!strings.Contains(err.Error(), "no per-world kernel decomposition") {
		t.Errorf("kernel-less Worlds assertion: error = %v", err)
	}
}

// adaptiveFixture compiles the same scheduling space twice — fixed and
// adaptive — sharing one evaluator so both see identical CRN realizations.
// The deadline is tight enough that demoted configurations are sharply
// infeasible, which is what adaptive stopping exploits.
func adaptiveFixture(t *testing.T, d device.Device, cache *EvalCache) (*Problem, *Problem) {
	t.Helper()
	w := cpuChain(t, 6, 400)
	ne, _ := buildEval(t, w, 1400, 0.95, 100)
	space := NewScheduleSpace(w, ne)
	base := Options{Device: d, Seed: 7, MaxStates: 2000, BeamWidth: 6, Patience: 10, Cache: cache}
	fixed, err := Compile(space, base)
	if err != nil {
		t.Fatal(err)
	}
	ad := base
	ad.Adaptive = true
	adaptive, err := Compile(space, ad)
	if err != nil {
		t.Fatal(err)
	}
	if !adaptive.Adaptive() {
		t.Fatal("adaptive problem did not compile onto the adaptive path")
	}
	if fixed.Adaptive() {
		t.Fatal("fixed problem compiled adaptive")
	}
	return fixed, adaptive
}

// TestAdaptiveSearchMatchesFixed is the plan-quality contract: the adaptive
// search must land on a plan with the same objective value and feasibility as
// the fixed search, while actually saving worlds.
func TestAdaptiveSearchMatchesFixed(t *testing.T) {
	for _, astar := range []bool{false, true} {
		fixed, adaptive := adaptiveFixture(t, device.Sequential{}, nil)
		fixed.opts.AStar, adaptive.opts.AStar = astar, astar
		rf, err := fixed.Search()
		if err != nil {
			t.Fatal(err)
		}
		ra, err := adaptive.Search()
		if err != nil {
			t.Fatal(err)
		}
		if !rf.Feasible || !ra.Feasible {
			t.Fatalf("astar=%v: fixture should find feasible plans (fixed %v adaptive %v)", astar, rf.Feasible, ra.Feasible)
		}
		if rf.BestEval.Value != ra.BestEval.Value {
			t.Fatalf("astar=%v: objective diverged: fixed %v (%v) adaptive %v (%v)",
				astar, rf.BestEval.Value, rf.Best, ra.BestEval.Value, ra.Best)
		}
		// The returned best is backed by a complete evaluation: identical
		// constraint probabilities to a fixed evaluation of the same state.
		full, err := fixed.EvaluateStates([]State{ra.Best})
		if err != nil {
			t.Fatal(err)
		}
		if full[0].Value != ra.BestEval.Value || full[0].Feasible != ra.BestEval.Feasible ||
			full[0].ConsProb[0] != ra.BestEval.ConsProb[0] {
			t.Fatalf("astar=%v: returned best not backed by a full evaluation: %+v vs %+v", astar, ra.BestEval, full[0])
		}
		st := adaptive.SampleStats()
		if !st.Adaptive || st.StatesAdaptive == 0 {
			t.Fatalf("astar=%v: adaptive path never ran: %+v", astar, st)
		}
		if st.WorldsSaved() <= 0 {
			t.Fatalf("astar=%v: adaptive saved no worlds: %+v", astar, st)
		}
		if fs := fixed.SampleStats(); fs.StatesAdaptive != 0 || fs.Adaptive {
			t.Fatalf("astar=%v: fixed problem recorded adaptive stats: %+v", astar, fs)
		}
	}
}

// TestAdaptiveDeviceInvariance pins determinism of the adaptive path across
// devices: stopping and racing decisions are functions of the running sums,
// which chunked folding keeps bit-identical everywhere.
func TestAdaptiveDeviceInvariance(t *testing.T) {
	devices := []device.Device{
		device.Sequential{},
		device.Parallel{NumBlocks: 3},
		device.TwoLevel{NumWorkers: 4},
	}
	var refBest float64
	var refStats SampleStats
	for i, d := range devices {
		_, adaptive := adaptiveFixture(t, d, nil)
		ra, err := adaptive.Search()
		if err != nil {
			t.Fatal(err)
		}
		st := adaptive.SampleStats()
		if i == 0 {
			refBest, refStats = ra.BestEval.Value, st
			continue
		}
		if ra.BestEval.Value != refBest {
			t.Fatalf("device %T: best %v != sequential %v", d, ra.BestEval.Value, refBest)
		}
		if st != refStats {
			t.Fatalf("device %T: stats %+v != sequential %+v", d, st, refStats)
		}
	}
}

// TestAdaptivePartialNotCached pins the cache-completeness gate: states the
// adaptive evaluator stopped early must not enter the evaluation cache, while
// fully evaluated states must.
func TestAdaptivePartialNotCached(t *testing.T) {
	cache := NewEvalCache(1 << 20)
	_, adaptive := adaptiveFixture(t, device.Sequential{}, cache)
	// Pin the gate on the unordered schedule: under decisive-world-first
	// ordering every fixture state (including the feasible one) can settle
	// before the world cap, leaving no complete evaluation to exercise the
	// cache side of the gate.
	adaptive.order, adaptive.rank = nil, nil
	adaptive.sstats.Ordered = false

	// A frontier-like batch: the all-cheapest state and its global promotions.
	// The slow configurations are sharply infeasible and stop early.
	var cands []candidate
	for j := 0; j < 4; j++ {
		st := State{j, j, j, j, j, j}
		cands = append(cands, candidate{state: st, key: st.Key()})
	}
	out := adaptive.evaluateCandidates(cands)
	var partial, complete int
	for _, s := range out {
		if s.err != nil {
			t.Fatal(s.err)
		}
		_, hit := adaptive.cache.Get(s.key)
		if s.worlds > 0 && s.worlds < adaptive.worlds {
			partial++
			if hit {
				t.Fatalf("partial evaluation (%d/%d worlds) of %v entered the cache", s.worlds, adaptive.worlds, s.state)
			}
		} else {
			complete++
			if !hit {
				t.Fatalf("complete evaluation of %v missing from the cache", s.state)
			}
		}
	}
	if partial == 0 || complete == 0 {
		t.Fatalf("fixture needs both partial (%d) and complete (%d) evaluations to pin the gate", partial, complete)
	}
}

// TestAdaptiveConcurrentSearches is the race smoke for the chunked evaluator:
// several adaptive searches over one shared evaluator and cache run
// concurrently on the two-level device, and all must agree. Run with -race.
func TestAdaptiveConcurrentSearches(t *testing.T) {
	cache := NewEvalCache(1 << 20)
	w := cpuChain(t, 6, 400)
	ne, _ := buildEval(t, w, 1400, 0.95, 100)
	space := NewScheduleSpace(w, ne)

	const n = 4
	results := make([]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p, err := Compile(space, Options{
				Device: device.TwoLevel{NumWorkers: 4},
				Seed:   7, MaxStates: 2000, BeamWidth: 6, Patience: 10,
				Adaptive: true, Cache: cache,
			})
			if err != nil {
				errs[g] = err
				return
			}
			r, err := p.Search()
			if err != nil {
				errs[g] = err
				return
			}
			results[g] = r.BestEval.Value
		}(g)
	}
	wg.Wait()
	for g := 0; g < n; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if results[g] != results[0] {
			t.Fatalf("concurrent search %d: best %v != %v", g, results[g], results[0])
		}
	}
}

// TestSnapStoreOverwriteAccounting is the regression test for byte accounting
// on key overwrite: replacing a stored snapshot must charge the delta, not
// double-count, and must release exactly the replaced snapshot.
func TestSnapStoreOverwriteAccounting(t *testing.T) {
	w := cpuChain(t, 6, 300)
	ne, _ := buildEval(t, w, 1300, 0.9, 20)
	var released []*probir.Snapshot
	s := newSnapStore(1<<20, func(sn *probir.Snapshot) { released = append(released, sn) })

	a, b := ne.NewSnapshot(), ne.NewSnapshot()
	s.put("k", a)
	_, bytesA, _ := s.stats()
	if bytesA != a.Bytes() || bytesA == 0 {
		t.Fatalf("after first put: %d bytes, want %d", bytesA, a.Bytes())
	}
	s.put("k", b)
	entries, bytesB, _ := s.stats()
	if entries != 1 {
		t.Fatalf("overwrite left %d entries", entries)
	}
	if bytesB != b.Bytes() {
		t.Fatalf("after overwrite: %d bytes, want %d (double-counted?)", bytesB, b.Bytes())
	}
	if len(released) != 1 || released[0] != a {
		t.Fatalf("overwrite released %d snapshots, want exactly the replaced one", len(released))
	}
	if got, ok := s.get("k"); !ok || got != b {
		t.Fatalf("get after overwrite: %v %v", got, ok)
	}
}
