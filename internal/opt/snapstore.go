package opt

import (
	"container/list"
	"sync"

	"deco/internal/probir"
)

// snapStore retains per-state finish-time snapshots across frontier
// generations so children expanded later — possibly many levels later, via
// the exploitation heap — can still evaluate incrementally from their
// parent. Entries are LRU-evicted under a byte budget; evicted snapshots go
// back to the evaluator's pool, so the arenas themselves are reused across
// generations. Missing a snapshot is never an error: the child just
// evaluates fully.
//
// Lifetime contract: put is only called after a batch's sampling has fully
// completed, so an eviction (which recycles the snapshot's arrays through
// the pool) can never pull the finish times out from under a running kernel.
type snapStore struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[string]*list.Element
	ll      *list.List // front = most recently used
	release func(*probir.Snapshot)

	evictions int64
}

// snapEntry is one stored (state key, snapshot) pair.
type snapEntry struct {
	key  string
	snap *probir.Snapshot
}

func newSnapStore(budget int64, release func(*probir.Snapshot)) *snapStore {
	return &snapStore{
		budget:  budget,
		entries: make(map[string]*list.Element),
		ll:      list.New(),
		release: release,
	}
}

// get returns the snapshot stored for a state key, marking it most recently
// used.
func (s *snapStore) get(key string) (*probir.Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*snapEntry).snap, true
}

// put stores a snapshot under a state key, releasing any previous snapshot
// for the same key and LRU-evicting over budget. The entry just inserted is
// never evicted (a snapshot larger than the whole budget is released
// immediately instead of stored).
func (s *snapStore) put(key string, snap *probir.Snapshot) {
	if snap == nil {
		return
	}
	b := snap.Bytes()
	s.mu.Lock()
	if b > s.budget {
		s.mu.Unlock()
		s.release(snap)
		return
	}
	// The replace path (same key re-captured, the steady state of a warm
	// search) must not allocate: the previous snapshot is released directly
	// and the eviction slice is only built when the budget actually forces
	// evictions.
	var prev *probir.Snapshot
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*snapEntry)
		s.used += b - e.snap.Bytes()
		prev = e.snap
		e.snap = snap
		s.ll.MoveToFront(el)
	} else {
		s.entries[key] = s.ll.PushFront(&snapEntry{key: key, snap: snap})
		s.used += b
	}
	var evicted []*probir.Snapshot
	for s.used > s.budget && s.ll.Len() > 1 {
		back := s.ll.Back()
		e := back.Value.(*snapEntry)
		s.ll.Remove(back)
		delete(s.entries, e.key)
		s.used -= e.snap.Bytes()
		s.evictions++
		evicted = append(evicted, e.snap)
	}
	s.mu.Unlock()
	if prev != nil {
		s.release(prev)
	}
	for _, sn := range evicted {
		s.release(sn)
	}
}

// has reports whether a snapshot is already stored for a state key without
// touching LRU order.
func (s *snapStore) has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// stats returns the live entry count, retained bytes, and eviction count.
func (s *snapStore) stats() (entries int, bytes, evictions int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries), s.used, s.evictions
}
