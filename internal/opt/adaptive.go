package opt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"deco/internal/device"
	"deco/internal/probir"
	"deco/internal/sample"
)

// This file implements adaptive-precision Monte-Carlo evaluation: instead of
// running every state's full world budget, the evaluator advances a batch of
// states through world chunks on the device, folds each chunk into running
// figure sums (in ascending world order, so the sums are bit-identical to
// the fixed path's at every prefix), and after each chunk consults the
// sequential stopping rules of package sample:
//
//   - A state whose feasibility verdict is decided — certainly, by the exact
//     worst-case interval, or statistically, by the anytime-valid confidence
//     sequence — stops and is finalized from its prefix. Early verdicts are
//     pessimistic where they must be: a state is only reported Feasible when
//     that is proven (or statistically decided), so a partially evaluated
//     state can never wrongly become the incumbent.
//
//   - Racing (successive elimination) drops states that provably cannot rank
//     among the batch's best BeamWidth: their optimistic final score already
//     exceeds the BeamWidth-th best finalized score. For sampled-value goals
//     the CRN contract additionally pairs per-world value differences
//     against a reference state, eliminating provably-worse states at low
//     variance. Eliminated states finalize pessimistically (never feasible),
//     so racing can only cost them expansion priority, not correctness.
//
// All decisions are functions of the running sums and the fixed chunk
// schedule, so adaptive results are identical across devices. States that
// reach the world cap reduce exactly as the fixed path does; only
// fully-evaluated states enter the evaluation cache or the snapshot store,
// and partial verdicts carry their world count (scored.worlds).

// SampleStats reports how adaptive evaluation spent its world budget, for
// observability and benchmark gating. Counters cover live kernel-path
// evaluations only (cache hits evaluate nothing) and are updated from the
// search goroutine; read them between searches.
type SampleStats struct {
	// Adaptive reports whether the compiled problem routes evaluation
	// through the adaptive path at all (Options.Adaptive requested it AND
	// the space decomposes into an indicator-backed partial kernel).
	Adaptive bool
	// Ordered reports whether adaptive evaluation runs worlds under a
	// decisive-world-first permutation (WorldOrderSpace resolved at Compile
	// and not disabled); WorldsReordered counts the worlds actually sampled
	// under that permutation.
	Ordered         bool
	WorldsReordered int64
	// StatesAdaptive counts states evaluated on the adaptive path.
	StatesAdaptive int64
	// WorldsBudget is the worlds the fixed path would have run for those
	// states; WorldsRun is the worlds actually sampled.
	WorldsBudget int64
	WorldsRun    int64
	// StoppedFeasible / StoppedInfeasible count states whose verdict was
	// decided before the cap; Raced counts states eliminated by racing;
	// FullRuns counts states that ran every world.
	StoppedFeasible   int64
	StoppedInfeasible int64
	Raced             int64
	FullRuns          int64
	// Confirmations counts final-best full re-evaluations (a search result
	// is always backed by a complete evaluation).
	Confirmations int64
}

// WorldsSaved is the number of Monte-Carlo worlds adaptive evaluation avoided
// relative to the fixed budget.
func (s SampleStats) WorldsSaved() int64 { return s.WorldsBudget - s.WorldsRun }

// SampleStats returns the problem's adaptive-evaluation counters. Like
// DeltaStats, it is only meaningful between searches.
func (p *Problem) SampleStats() SampleStats { return p.sstats }

// stateVerdict combines the per-constraint sequential checks of one state:
// infeasible as soon as any indicator is decided infeasible, feasible only
// when every indicator is decided feasible.
func (p *Problem) stateVerdict(sums []float64, seen, check int, delta float64) sample.Verdict {
	allFeasible := true
	for j, fi := range p.indIdx {
		b := sample.Bernoulli{Succ: sums[fi], Seen: seen}
		switch b.Check(p.worlds, p.indTargets[j], delta, check) {
		case sample.DecidedInfeasible:
			return sample.DecidedInfeasible
		case sample.Undecided:
			allFeasible = false
		}
	}
	if allFeasible {
		return sample.DecidedFeasible
	}
	return sample.Undecided
}

// finalizePartial reduces an early-stopped state from its world prefix. The
// pessimistic reduction (unseen worlds fail every indicator) is correct for
// infeasible and undecided stops. A statistically-decided feasible stop whose
// worst-case interval is still open needs the optimistic completion for its
// indicators — otherwise the pessimistic lower bounds would contradict the
// verdict — while deterministic constraints keep their exact checks.
func (p *Problem) finalizePartial(k probir.PartialKernel, sums []float64, seen int, v sample.Verdict) (*probir.Evaluation, error) {
	ev, err := k.ReducePartial(sums, seen)
	if err != nil {
		return nil, err
	}
	if v == sample.DecidedFeasible && !ev.Feasible {
		opt := append([]float64(nil), sums...)
		for _, fi := range p.indIdx {
			opt[fi] += float64(p.worlds - seen)
		}
		return k.ReducePartial(opt, seen)
	}
	return ev, nil
}

// evaluateAdaptive is the chunked sequential-stopping evaluation path. Like
// evaluateKernel it reports ok=false when a state's kernel drifts from the
// compiled shape (including losing the partial-kernel capability), in which
// case the batch falls back to the generic path with recorded construction
// errors preserved.
func (p *Problem) evaluateAdaptive(cands []candidate) ([]scored, bool) {
	if len(cands) == 0 {
		return nil, false
	}
	bd, okDev := p.opts.Device.(device.BlockDevice)
	if !okDev {
		return make([]scored, len(cands)), false
	}
	n := len(cands)
	out := make([]scored, n)
	kernels := make([]probir.PartialKernel, n)
	var snaps []*probir.Snapshot
	if p.delta {
		snaps = p.getSnapBuf(n)
		defer p.putSnapBuf(snaps)
	}
	var bases []int64
	if !p.crn {
		bases = make([]int64, n)
	}
	buildOK := true
	p.labeled(phaseKernelBuild, func() {
		for i, c := range cands {
			out[i] = scored{state: c.state, key: c.key}
			k, snap, err := p.buildKernel(c)
			if err != nil {
				out[i].err = err
				continue
			}
			pk, okPartial := k.(probir.PartialKernel)
			if k == nil || k.Worlds() != p.worlds || k.Width() != p.width || !okPartial {
				if snap != nil {
					p.dspace.ReleaseSnapshot(snap)
				}
				p.releaseSnaps(snaps)
				buildOK = false
				return
			}
			kernels[i] = pk
			if snaps != nil {
				snaps[i] = snap
			}
			if !p.crn {
				bases[i] = stateRng(p.opts.Seed, c.key).Int63()
			}
		}
	})
	if !buildOK {
		return out, false
	}

	sums := make([]float64, n*p.width)
	seen := make([]int, n)
	// pinned marks states whose feasible verdict is already certain but that
	// keep running to completion so their capture snapshot survives; racing
	// must not eliminate them (a pessimistic finalize would overwrite a
	// decided-feasible verdict).
	pinned := make([]bool, n)
	var active []int
	for i := range cands {
		if out[i].err == nil && kernels[i] != nil {
			active = append(active, i)
			p.sstats.StatesAdaptive++
			p.sstats.WorldsBudget += int64(p.worlds)
		}
	}

	// Ordered evaluation: worlds run permuted (position t samples world
	// order[t]), the schedule gains the tail checkpoints where feasible
	// verdicts first become decidable, and the value figures' per-world
	// contributions are buffered so finalized rows can be refolded in
	// ascending world order (indicator sums are exact integer adds, hence
	// order-invariant bitwise; value sums are not).
	ends := sample.Chunks(p.opts.MinWorlds, p.worlds)
	var vals []float64
	worldsRunBefore := p.sstats.WorldsRun
	if p.order != nil {
		ends = sample.TailChunks(p.opts.MinWorlds, p.worlds, p.indTargets)
		need := n * p.worlds * len(p.valIdx)
		if cap(p.valsScratch) < need {
			p.valsScratch = make([]float64, need)
		}
		vals = p.valsScratch[:need]
	}
	delta := 1 - p.opts.Confidence
	keep := p.opts.BeamWidth
	if keep < 1 {
		keep = 1
	}
	// Paired-value racing state: the reference state's key and the
	// accumulated per-world difference trackers, reset when the reference
	// changes.
	var pairRefKey string
	pairs := make(map[int]*sample.Paired)

	lo := 0
	for ci, end := range ends {
		if len(active) == 0 {
			break
		}
		nb := len(active)
		span := end - lo
		round := make([]float64, nb*p.width)
		for b, i := range active {
			copy(round[b*p.width:(b+1)*p.width], sums[i*p.width:(i+1)*p.width])
		}
		var slots []float64
		var errs []error
		p.labeled(phaseChunkEval, func() {
			slots, errs = device.ReduceBlocksRange(bd, nb, lo, end, p.width, round, func(b, t int, slot []float64) error {
				if kernels[active[b]] == nil {
					return nil
				}
				if err := p.opts.Ctx.Err(); err != nil {
					return fmt.Errorf("opt: search cancelled: %w", err)
				}
				// Position t runs world order[t] under decisive-world-first
				// ordering; the CRN contract makes world figures a function of
				// the world index alone, so permuting positions permutes rows.
				wt := t
				if p.order != nil {
					wt = int(p.order[t])
				}
				var rng *rand.Rand
				if !p.crn {
					rng = probir.WorldRNG(bases[active[b]], wt)
				}
				return kernels[active[b]].Sample(wt, rng, slot)
			})
		})
		blockOf := make(map[int]int, nb)
		var still []int
		for b, i := range active {
			blockOf[i] = b
			if errs[b] != nil {
				out[i].err = errs[b]
				out[i].worlds = seen[i]
				continue
			}
			copy(sums[i*p.width:(i+1)*p.width], round[b*p.width:(b+1)*p.width])
			if vals != nil {
				// Buffer this chunk's per-world value figures under their
				// world index, for the canonical refold at finalize.
				nv := len(p.valIdx)
				for t := lo; t < end; t++ {
					w := int(p.order[t])
					src := slots[(b*span+(t-lo))*p.width:]
					dst := vals[(i*p.worlds+w)*nv:]
					for v, fi := range p.valIdx {
						dst[v] = src[fi]
					}
				}
			}
			seen[i] = end
			still = append(still, i)
		}
		active = still
		check := ci + 1

		// Sequential stopping: finalize every decided state. A feasible-decided
		// state still holding a capture snapshot is pinned to completion
		// instead: its verdict can only be confirmed by the remaining worlds (a
		// feasible-certain prefix stays feasible), finishing costs at most the
		// tail cushion, and only a complete evaluation may keep its snapshot —
		// the parent material every delta child of this state needs.
		var undecided []int
		for _, i := range active {
			v := p.stateVerdict(sums[i*p.width:(i+1)*p.width], end, check, delta)
			if end < p.worlds && (v == sample.Undecided ||
				(v == sample.DecidedFeasible && snaps != nil && snaps[i] != nil)) {
				if v == sample.DecidedFeasible {
					pinned[i] = true
				}
				undecided = append(undecided, i)
				continue
			}
			row := sums[i*p.width : (i+1)*p.width]
			p.canonRow(vals, row, i, end)
			if end == p.worlds {
				out[i].eval, out[i].err = kernels[i].Reduce(row)
				p.sstats.FullRuns++
			} else {
				out[i].eval, out[i].err = p.finalizePartial(kernels[i], row, end, v)
				if v == sample.DecidedFeasible {
					p.sstats.StoppedFeasible++
				} else {
					p.sstats.StoppedInfeasible++
				}
			}
			out[i].worlds = end
			p.sstats.WorldsRun += int64(end)
		}
		active = undecided

		// Racing (minimized objectives only): eliminate states that provably
		// cannot rank among the batch's best `keep` finalized scores.
		if len(active) > 0 && end < p.worlds && !p.opts.Maximize {
			p.labeled(phaseRacing, func() {
				active = p.race(cands, out, kernels, sums, vals, seen, pinned, active, blockOf, slots, span, check, delta, keep, &pairRefKey, pairs)
			})
		}
		lo = end
	}
	// Anything still active hit an error path upstream; seen/worlds already
	// recorded. Account for errored states' partial spend.
	for i := range cands {
		if out[i].err != nil && kernels[i] != nil {
			p.sstats.WorldsRun += int64(seen[i])
		}
	}
	if p.order != nil {
		p.sstats.WorldsReordered += p.sstats.WorldsRun - worldsRunBefore
	}

	// Only complete evaluations parent future deltas: a partial snapshot has
	// unwritten worlds and must never enter the store.
	if snaps != nil {
		p.enterPhase(phaseSnapshotPut)
		for i, sn := range snaps {
			if sn == nil {
				continue
			}
			if out[i].err == nil && out[i].eval != nil && seen[i] == p.worlds {
				p.snaps.put(out[i].key, sn)
			} else {
				p.dspace.ReleaseSnapshot(sn)
			}
		}
		p.exitPhase()
	}
	return out, true
}

// canonRow refolds the value-figure entries of state i's running sums in
// ascending world order over the worlds seen so far. Under decisive-world-
// first ordering the sums accumulate in permuted order; since float addition
// is not associative under reordering, a completed row must be refolded so
// Reduce returns bits identical to the fixed path's (those evaluations enter
// the cache and parent snapshots). Partial rows are refolded too, so an
// early-stopped evaluation is a pure function of the seen world SET, not the
// schedule. No-op when worlds ran unpermuted.
func (p *Problem) canonRow(vals, row []float64, i, seenWorlds int) {
	if p.order == nil || len(p.valIdx) == 0 || vals == nil {
		return
	}
	nv := len(p.valIdx)
	base := i * p.worlds
	for v, fi := range p.valIdx {
		acc := 0.0
		if seenWorlds >= p.worlds {
			for w := 0; w < p.worlds; w++ {
				acc += vals[(base+w)*nv+v]
			}
		} else {
			for w := 0; w < p.worlds; w++ {
				if int(p.rank[w]) < seenWorlds {
					acc += vals[(base+w)*nv+v]
				}
			}
		}
		row[fi] = acc
	}
}

// race applies successive elimination to the undecided states of a batch and
// returns the survivors. Two rules run, both deterministic functions of the
// running sums and chunk slots:
//
//  1. Interval elimination: a state whose optimistic final score (its exact
//     value for deterministic-value goals, or the value lower bound assuming
//     zero-valued remaining worlds for sampled-value goals) exceeds the
//     keep-th smallest finalized score can never be chosen for expansion
//     ahead of those states.
//
//  2. CRN-paired value racing (sampled-value goals): per-world differences
//     against the keep-th-ranked active state are paired samples under the
//     CRN contract; a state whose mean difference has a positive
//     empirical-Bernstein lower bound is provably worse than the reference.
//
// Eliminated states finalize pessimistically via finalizePartial (verdict
// undecided ⇒ never feasible), so they cannot wrongly become the incumbent.
func (p *Problem) race(cands []candidate, out []scored, kernels []probir.PartialKernel, sums, vals []float64, seen []int,
	pinned []bool, active []int, blockOf map[int]int, slots []float64, span, check int, delta float64, keep int,
	pairRefKey *string, pairs map[int]*sample.Paired) []int {

	eliminate := func(i int) {
		row := sums[i*p.width : (i+1)*p.width]
		p.canonRow(vals, row, i, seen[i])
		out[i].eval, out[i].err = p.finalizePartial(kernels[i], row, seen[i], sample.Undecided)
		out[i].worlds = seen[i]
		p.sstats.Raced++
		p.sstats.WorldsRun += int64(seen[i])
	}

	// Rule 1: optimistic score vs the keep-th smallest finalized score.
	var finals []float64
	for i := range cands {
		if out[i].eval != nil && out[i].err == nil {
			finals = append(finals, score(out[i].eval, false))
		}
	}
	threshold := math.Inf(1)
	if len(finals) >= keep {
		sort.Float64s(finals)
		threshold = finals[keep-1]
	}
	var survivors []int
	for _, i := range active {
		if pinned[i] {
			survivors = append(survivors, i)
			continue
		}
		var optimistic float64
		if p.valueFig < 0 {
			ev, err := kernels[i].ReducePartial(sums[i*p.width:(i+1)*p.width], seen[i])
			if err != nil {
				out[i].err = err
				out[i].worlds = seen[i]
				p.sstats.WorldsRun += int64(seen[i])
				continue
			}
			optimistic = ev.Value
		} else {
			optimistic = sums[i*p.width+p.valueFig] / float64(p.worlds)
		}
		if p.opts.Maximize {
			optimistic = -optimistic
		}
		if optimistic > threshold {
			eliminate(i)
			continue
		}
		survivors = append(survivors, i)
	}
	active = survivors

	// Rule 2: paired value racing, for sampled-value goals with enough
	// contenders left.
	if p.valueFig < 0 || len(active) <= keep {
		return active
	}
	ranked := append([]int(nil), active...)
	sort.Slice(ranked, func(a, b int) bool {
		va := sums[ranked[a]*p.width+p.valueFig]
		vb := sums[ranked[b]*p.width+p.valueFig]
		if va != vb {
			return va < vb
		}
		return cands[ranked[a]].key < cands[ranked[b]].key
	})
	ref := ranked[keep-1]
	if cands[ref].key != *pairRefKey {
		*pairRefKey = cands[ref].key
		for k := range pairs {
			delete(pairs, k)
		}
	}
	refBlock, okRef := blockOf[ref]
	if !okRef {
		return active
	}
	survivors = active[:0]
	for _, i := range active {
		if i == ref || pinned[i] {
			survivors = append(survivors, i)
			continue
		}
		bi, ok := blockOf[i]
		if !ok {
			survivors = append(survivors, i)
			continue
		}
		tr := pairs[i]
		if tr == nil {
			tr = &sample.Paired{}
			pairs[i] = tr
		}
		for t := 0; t < span; t++ {
			d := slots[(bi*span+t)*p.width+p.valueFig] - slots[(refBlock*span+t)*p.width+p.valueFig]
			tr.Add(d)
		}
		if tr.LowerBound(delta, check) > 0 {
			eliminate(i)
			continue
		}
		survivors = append(survivors, i)
	}
	return survivors
}

// confirmBest re-evaluates a partially evaluated search result on the fixed
// path, so every returned Result is backed by a complete evaluation (exact
// value, probabilities, and violation). Feasible early stops by the exact
// rule are guaranteed to stay feasible; the confirmation refines the
// reported numbers.
func (p *Problem) confirmBest(s *scored) error {
	if s == nil || s.worlds == 0 || s.worlds >= p.worlds {
		return nil
	}
	batch := p.evaluateFixed([]candidate{{state: s.state, key: s.key}})
	if batch[0].err != nil {
		return batch[0].err
	}
	s.eval = batch[0].eval
	s.worlds = 0
	p.sstats.Confirmations++
	if p.cache != nil && s.eval != nil {
		p.cache.Put(s.key, s.eval)
	}
	return nil
}
