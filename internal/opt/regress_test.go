package opt

import (
	"fmt"
	"math/rand"
	"testing"

	"deco/internal/device"
	"deco/internal/probir"
)

// graphSpace is a synthetic single-component search space: states are
// one-element vectors, transitions and evaluations come from explicit maps.
// It is deliberately NOT a KernelSpace, so searches run the generic
// evaluation path.
type graphSpace struct {
	values    map[int]float64
	violation map[int]float64 // >0 marks the state infeasible
	neighbors map[int][]int
	start     int
}

func (g *graphSpace) Initial() State { return State{g.start} }

func (g *graphSpace) Neighbors(s State) []State {
	var out []State
	for _, n := range g.neighbors[s[0]] {
		out = append(out, State{n})
	}
	return out
}

func (g *graphSpace) Evaluate(s State, _ *rand.Rand) (*probir.Evaluation, error) {
	x := s[0]
	v, ok := g.values[x]
	if !ok {
		return nil, fmt.Errorf("unknown state %d", x)
	}
	ev := &probir.Evaluation{Value: v, Feasible: true}
	if viol := g.violation[x]; viol > 0 {
		ev.Feasible = false
		ev.Violation = viol
	}
	return ev, nil
}

// multiGraphSpace adds explicit start states.
type multiGraphSpace struct {
	graphSpace
	starts []int
}

func (g *multiGraphSpace) Starts() []State {
	out := make([]State, len(g.starts))
	for i, s := range g.starts {
		out[i] = State{s}
	}
	return out
}

// A state trimmed from a level by the exploration budget must stay
// evaluable: here the budget boundary bisects level 1 ({1}, {2}), dropping
// {2} — the optimum. The exploitation phase re-generates it from its pooled
// parent {0}; before visited marking was deferred to evaluation time, the
// frontier build had already marked {2} and the search could never reach it
// (it returned {3} at 8.0 instead).
func TestGenericSearchEvaluatesBudgetTrimmedOptimum(t *testing.T) {
	g := &graphSpace{
		values:    map[int]float64{0: 10, 1: 9, 2: 1, 3: 8},
		neighbors: map[int][]int{0: {1, 2}, 1: {3}},
		start:     0,
	}
	res, err := Search(g, Options{
		Device:    device.Sequential{},
		MaxStates: 5, // explore budget 2: level 1 is trimmed to one state
		BeamWidth: 8,
		Patience:  12,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best[0] != 2 || res.BestEval.Value != 1 {
		t.Errorf("best = state %d (value %v), want state 2 (value 1): budget-trimmed optimum lost",
			res.Best[0], res.BestEval.Value)
	}
	if res.Evaluated > 5 {
		t.Errorf("evaluated %d states, budget 5", res.Evaluated)
	}
}

// When the budget does not outlast the start states and none is feasible,
// A* must still return the least-violating state it evaluated — the
// documented contract of Result.Best — not "no states evaluated".
func TestAStarReturnsLeastViolatingWhenBudgetCoversOnlyStarts(t *testing.T) {
	g := &multiGraphSpace{
		graphSpace: graphSpace{
			values:    map[int]float64{0: 1, 1: 1, 2: 1},
			violation: map[int]float64{0: 5, 1: 2, 2: 9},
			neighbors: map[int][]int{},
			start:     0,
		},
		starts: []int{0, 1, 2},
	}
	for _, maxStates := range []int{2, 3} {
		res, err := Search(g, Options{
			Device:    device.Sequential{},
			MaxStates: maxStates,
			AStar:     true,
			Seed:      1,
		})
		if err != nil {
			t.Fatalf("MaxStates=%d: %v", maxStates, err)
		}
		if res.Feasible {
			t.Fatalf("MaxStates=%d: no state is feasible", maxStates)
		}
		// {1} (violation 2) is within the first two starts either way.
		if res.Best[0] != 1 {
			t.Errorf("MaxStates=%d: best = state %d (violation %v), want state 1 (violation 2)",
				maxStates, res.Best[0], res.BestEval.Violation)
		}
	}
}

// Negative components must round-trip through Key: the raw-varint encoding
// let the continuation bit of a negative byte merge with the next component,
// colliding e.g. {255} with {-1, 1}.
func TestStateKeyZigzagNegativeComponents(t *testing.T) {
	if (State{255}).Key() == (State{-1, 1}).Key() {
		t.Error("{255} collides with {-1, 1}")
	}
	boundary := []int{0, 1, -1, 2, -2, 63, -63, 64, -64, 127, -127, 128, -128, 255, -255, 256, -256, 16383, -16384}
	seen := map[string][]int{}
	for _, a := range boundary {
		for _, b := range boundary {
			s := State{a, b}
			k := s.Key()
			if prev, ok := seen[k]; ok && (prev[0] != a || prev[1] != b) {
				t.Fatalf("%v collides with %v", s, prev)
			}
			seen[k] = []int{a, b}
		}
	}
	for _, v := range boundary {
		if k := (State{v}).Key(); seen[k] != nil {
			t.Fatalf("{%d} collides with a pair", v)
		}
		if (State{v}).Key() != (State{v}).Key() {
			t.Fatalf("{%d}: key not stable", v)
		}
	}
}
