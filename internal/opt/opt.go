// Package opt is Deco's parallel solver (§5.3): it formulates resource
// provisioning as a search over states (provisioning plans), with state
// transitions driven by the workflow transformation operations of the
// authors' earlier work (Move, Merge, Promote, Demote, Split,
// Co-Scheduling). Two searches are provided:
//
//   - Generic search (Algorithm 2): breadth-first traversal from the initial
//     state, choosing exploration over exploitation so each level's states
//     evaluate in parallel on the device; the frontier is beam-bounded to
//     balance overhead and solution optimality.
//   - A* search: enabled by the WLog program's enabled(astar) directive with
//     the cal_g_score/est_h_score predicates. States are expanded best-first
//     and pruned against the best found solution (children of a state never
//     score better than the state under the monotone assumption of §5.3).
//
// Every state evaluation is a Monte-Carlo inference over the probabilistic
// IR (package probir); evaluations of distinct states are independent and
// run as device blocks.
package opt

import (
	"container/heap"
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"deco/internal/device"
	"deco/internal/probir"
)

// State is one point of the optimization space: for the scheduling problem
// the instance-type index per task; for ensembles an admission bit per
// workflow; for follow-the-cost the data-center index per workflow.
type State []int

// Clone copies a state.
func (s State) Clone() State { return append(State(nil), s...) }

// Key returns a compact map key for visited-state deduplication. Components
// are zigzag-encoded before the varint so negative values round-trip: a raw
// byte(v) of a negative component would set the continuation bit and merge
// with the next element, making distinct states collide (e.g. {255} and
// {-1, 1} under the old encoding).
func (s State) Key() string {
	// Size pass first, so the encoding fits a stack buffer for typical
	// states and the only allocation is the string itself — Key runs once
	// per state per dedup pass and once per cache lookup, so it is on the
	// solver's hot path.
	n := 0
	for _, v := range s {
		u := uint64(int64(v)<<1) ^ uint64(int64(v)>>63) // zigzag
		for u >= 0x80 {
			n++
			u >>= 7
		}
		n++
	}
	var buf [128]byte
	b := buf[:0]
	if n > len(buf) {
		b = make([]byte, 0, n)
	}
	for _, v := range s {
		u := uint64(int64(v)<<1) ^ uint64(int64(v)>>63)
		for u >= 0x80 {
			b = append(b, byte(u)|0x80)
			u >>= 7
		}
		b = append(b, byte(u))
	}
	return string(b)
}

// Space defines a search problem. Implementations exist for the three use
// cases (scheduling here, ensembles and follow-the-cost in their packages).
type Space interface {
	// Initial is the search's start state (e.g. every task on the cheapest
	// type, as in Figure 5b).
	Initial() State
	// Neighbors generates the child states of s via the transformation
	// operations.
	Neighbors(s State) []State
	// Evaluate scores s with Monte-Carlo inference. It must be
	// deterministic given rng and safe for concurrent calls with distinct
	// rngs.
	Evaluate(s State, rng *rand.Rand) (*probir.Evaluation, error)
}

// Options configures a search.
type Options struct {
	// Device runs state evaluations (Sequential or Parallel).
	Device device.Device
	// Maximize flips the objective (the ensemble problem maximizes score).
	Maximize bool
	// MaxStates bounds the number of state evaluations.
	MaxStates int
	// BeamWidth bounds how many frontier states expand per level of the
	// generic search (the exploration/exploitation balance of §5.3).
	BeamWidth int
	// Patience stops the search after this many levels (generic) or
	// expansions (A*) without improvement.
	Patience int
	// Seed makes runs reproducible. Under the common-random-number contract
	// it is the search-level CRN base: every state in the search shares the
	// same world realizations, keyed by (task, type, iteration); spaces
	// without CRN support derive a per-state rng from Seed and the state
	// key. Either way results are identical across devices. The zero value
	// defaults to 1 (fillDefaults), matching DefaultOptions, so a zero-value
	// Options and DefaultOptions agree.
	Seed int64
	// AStar selects best-first search with pruning instead of the generic
	// breadth-first search.
	AStar bool
	// Ctx cancels the search between evaluation batches; nil means
	// context.Background(). A cancelled search returns the context's error
	// (test with errors.Is against context.Canceled / DeadlineExceeded).
	Ctx context.Context
	// Cache, when set, memoizes state evaluations across searches (a
	// transposition table). It is only consulted when the space identifies
	// its program via FingerprintSpace; evaluations are deterministic given
	// (fingerprint, seed, state), so hits are bit-identical to live
	// evaluation and search trajectories do not depend on cache warmth.
	Cache *EvalCache
	// CacheScope labels this search's cache traffic for per-scope hit/miss
	// accounting (EvalCache.ScopeStats) — e.g. decod tags searches by job
	// kind so ensemble members' cross-member sharing is observable. Empty
	// means unscoped; the scope never affects keys or results.
	CacheScope string
	// SnapshotBudget caps the bytes of per-state finish-time snapshots the
	// compiled problem retains for incremental (delta) evaluation. 0 selects
	// the default (64 MiB); negative disables delta evaluation entirely.
	// Delta evaluation is bit-identical to full evaluation, so the budget
	// trades memory against wall clock only — never results.
	SnapshotBudget int64
	// Adaptive enables adaptive-precision Monte-Carlo evaluation: worlds run
	// in chunks, sequential stopping rules decide each state's feasibility
	// verdict as soon as it is certain (or statistically decided at the
	// configured Confidence), and racing eliminates frontier states that
	// provably cannot rank. Feasibility verdicts and feasible states' scores
	// match the fixed-worlds path; partially evaluated states carry
	// pessimistic violation estimates, so the search trajectory may differ
	// while plan quality is preserved (the final best is always confirmed by
	// a full evaluation). Off (the default) is the deterministic mode: bit
	// identical to all prior behavior. Adaptive engages only when the space
	// compiles onto the kernel path with indicator-backed constraints; it is
	// silently inert otherwise (see Problem.SampleStats).
	Adaptive bool
	// DisableWorldOrder keeps adaptive evaluation on the plain ascending
	// world schedule even when the space offers a decisive-world-first
	// permutation (WorldOrderSpace). Ordering changes which world prefix the
	// sequential stopping rules see — never their soundness — so this switch
	// trades wall clock only; it exists to reproduce the unordered adaptive
	// baseline exactly (benchmarks, bisection).
	DisableWorldOrder bool
	// Worlds, when positive, asserts the per-state Monte-Carlo world count
	// the compiled kernel must have; Compile fails with a clear error on a
	// mismatch (instead of a confusing kernel-shape error mid-search). 0
	// takes the kernel's own count.
	Worlds int
	// MinWorlds is the first chunk size of adaptive evaluation — the minimum
	// number of worlds every state runs before any stop decision. 0 defaults
	// to 16.
	MinWorlds int
	// Confidence is the anytime-valid confidence level of the statistical
	// stopping and racing rules, in [0.5, 1); 0 defaults to 0.999. The exact
	// worst-case stopping rule is always applied first and carries no error;
	// Confidence only governs the supplementary large-world-count rules.
	Confidence float64
}

// DefaultOptions returns a reasonable configuration on the given device.
func DefaultOptions(d device.Device) Options {
	return Options{
		Device:    d,
		MaxStates: 4000,
		BeamWidth: 8,
		Patience:  12,
		Seed:      1,
	}
}

// Result is the outcome of a search.
type Result struct {
	Best      State
	BestEval  *probir.Evaluation
	Evaluated int
	Levels    int
	Elapsed   time.Duration
	// Feasible reports whether any feasible state was found; if false, Best
	// is the least-violating state seen.
	Feasible bool
}

// scored pairs a state with its evaluation. worlds is the number of
// Monte-Carlo worlds the evaluation actually ran: 0 on the fixed paths
// (always complete), the stop point on the adaptive path. A partial count
// below the compiled world cap marks a pessimistic verdict that must not
// enter the evaluation cache and that the search confirms fully before
// returning the state as its result.
type scored struct {
	state  State
	key    string
	eval   *probir.Evaluation
	err    error
	worlds int
}

// candidate is a state queued for evaluation together with its provenance:
// the key of the parent it was expanded from and the tasks the producing
// transformation changed, when known. Provenance is what lets the kernel
// path route a state through delta evaluation; a candidate without it (a
// start state, or a space without transform metadata) evaluates fully.
type candidate struct {
	state     State
	key       string
	parentKey string
	// parent is the generating state itself (when known), so a missing parent
	// snapshot can be regenerated on demand with one full evaluation instead
	// of pushing the whole sibling batch off the delta path.
	parent State
	dirty  []int32
}

// score ranks states: any feasible state beats any infeasible one; feasible
// states rank by objective value, infeasible ones by violation.
func score(ev *probir.Evaluation, maximize bool) float64 {
	if ev.Feasible {
		if maximize {
			return -ev.Value
		}
		return ev.Value
	}
	return 1e15 * (1 + ev.Violation)
}

// stateRng derives a deterministic rng for a state so evaluation results do
// not depend on scheduling order or device.
func stateRng(seed int64, key string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
}

// KernelSpace is an optional Space extension: a space whose Monte-Carlo
// evaluation decomposes into a per-world kernel plus reduction (package
// probir), letting a BlockDevice schedule Monte-Carlo iterations as threads
// within a state's block. Kernel returns (nil, nil) when the state's
// evaluation has no world decomposition; the solver then falls back to
// state-level parallelism.
type KernelSpace interface {
	Space
	Kernel(s State) (probir.WorldKernel, error)
}

// CRNSpace is the preferred Space extension: a space whose kernels run under
// the common-random-number contract (probir.CRNEvaluator). All states of a
// search share one duration matrix keyed by the search seed, so evaluating a
// neighbor state only samples the rows its changed assignments need, and
// state-vs-state comparisons see identical randomness. CRNKernel returns
// (nil, nil) when the state's evaluation has no CRN decomposition.
type CRNSpace interface {
	Space
	CRNKernel(s State, base int64) (probir.WorldKernel, error)
}

// Transform is one transformation edge of the search graph: the child state
// produced from a parent plus the metadata delta evaluation needs — which
// operation ran and exactly which task assignments changed.
type Transform struct {
	// Op is the transformation operation that produced Child.
	Op Op
	// Tasks are the task indices whose assignment differs between the
	// parent and Child. The slice is owned by the Transform and must not
	// alias the parent state.
	Tasks []int32
	// Child is the resulting state.
	Child State
}

// TransformSpace is an optional Space extension: neighbor generation that
// reports which tasks each transformation touched. TransformNeighbors must
// produce exactly the states Neighbors produces, in the same order — it is
// the same expansion, annotated — so a search routed through either is
// identical. The solver uses the annotations to evaluate children
// incrementally from their parent's finish-time snapshot.
type TransformSpace interface {
	Space
	TransformNeighbors(s State) []Transform
}

// DeltaSpace is an optional extension of CRNSpace: a space whose CRN kernels
// can capture per-world finish-time snapshots and evaluate a child
// configuration incrementally from its parent's snapshot (probir's
// DeltaEvaluator lifted to search states). The solver enables delta
// evaluation when a space implements both DeltaSpace and TransformSpace and
// NewSnapshot returns non-nil.
type DeltaSpace interface {
	CRNSpace
	// NewSnapshot returns a pooled snapshot sized for this space's
	// evaluation, or nil when evaluations have no reusable per-world state.
	NewSnapshot() *probir.Snapshot
	// ReleaseSnapshot returns a snapshot to the pool.
	ReleaseSnapshot(s *probir.Snapshot)
	// CRNKernelSnap is CRNKernel, additionally capturing the state's
	// per-world finish times into snap.
	CRNKernelSnap(s State, base int64, snap *probir.Snapshot) (probir.WorldKernel, error)
	// CRNDeltaKernel builds a kernel evaluating s from its parent's
	// snapshot, recomputing only the dirty tasks' cone, and capturing into
	// snap. Returns (nil, nil) when delta does not apply; the caller then
	// evaluates fully.
	CRNDeltaKernel(s State, base int64, dirty []int32, parent, snap *probir.Snapshot) (probir.WorldKernel, error)
}

// WorldOrderSpace is an optional extension of CRNSpace: a fixed
// decisive-world-first permutation of the Monte-Carlo worlds (probir's
// WorldOrderer lifted to spaces). When present, adaptive evaluation runs
// worlds in this order so likely-violating worlds land in the first chunks:
// the exact worst-case stopping interval is a bound over the fixed finite
// world set and stays valid under any fixed permutation, so near-boundary
// infeasible states refute after a handful of severe worlds and feasible
// states confirm at the tail checkpoints instead of always running to the
// cap. The permutation must be a pure function of (program content, base) —
// never of device or state — so adaptive decisions stay device-identical.
type WorldOrderSpace interface {
	CRNSpace
	// WorldOrder returns the permutation for the CRN base: position p holds
	// the p-th world to run. The slice is shared and read-only; nil disables
	// ordering.
	WorldOrder(base int64) []int32
}

// PlannedDeltaSpace is an optional extension of DeltaSpace: delta kernel
// construction with the dirty-cone extraction hoisted into a reusable plan
// (probir's PlanCone / CRNDeltaKernelPlanned lifted to spaces). The solver
// caches one plan per distinct dirty set, so sibling children that change the
// same task group — the whole expansion under GroupByExecutable — share a
// single cone extraction, and the plan's work-estimate model decides
// delta-vs-full once per group instead of once per child.
type PlannedDeltaSpace interface {
	DeltaSpace
	// PlanCone extracts the dirty cone of one changed-task set into an
	// immutable, shareable plan.
	PlanCone(dirty []int32) (*probir.ConePlan, error)
	// CRNDeltaKernelPlanned is CRNDeltaKernel with the plan precomputed; the
	// kernel borrows the plan's cone read-only. Returns (nil, nil) when delta
	// does not apply (including a plan whose work model declined).
	CRNDeltaKernelPlanned(s State, base int64, plan *probir.ConePlan, parent, snap *probir.Snapshot) (probir.WorldKernel, error)
}

// FingerprintSpace is an optional Space extension: a content hash of
// everything an evaluation depends on (program, distributions, objective).
// It gates the evaluation cache — an empty fingerprint means the space
// cannot vouch for its identity and caching is disabled.
type FingerprintSpace interface {
	Space
	Fingerprint() string
}

// dedupCandidates returns the candidates not already visited, deduplicated
// among themselves, WITHOUT marking them visited. Marking happens at
// evaluation time (markVisited), so a state trimmed from a batch by the
// evaluation budget stays reachable — and evaluable — through a later
// expansion of another parent.
func dedupCandidates(cands []candidate, visited map[string]bool) []candidate {
	seen := make(map[string]bool, len(cands))
	var out []candidate
	for _, c := range cands {
		if visited[c.key] || seen[c.key] {
			continue
		}
		seen[c.key] = true
		out = append(out, c)
	}
	return out
}

// markVisited records candidates as visited at the moment they are actually
// submitted for evaluation.
func markVisited(cands []candidate, visited map[string]bool) {
	for _, c := range cands {
		visited[c.key] = true
	}
}

func fillDefaults(opt *Options) {
	if opt.Device == nil {
		opt.Device = device.TwoLevel{}
	}
	if opt.Ctx == nil {
		opt.Ctx = context.Background()
	}
	if opt.MaxStates <= 0 {
		opt.MaxStates = 4000
	}
	if opt.BeamWidth <= 0 {
		opt.BeamWidth = 8
	}
	if opt.Patience <= 0 {
		opt.Patience = 12
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.MinWorlds == 0 {
		opt.MinWorlds = 16
	}
	if opt.Confidence == 0 {
		opt.Confidence = 0.999
	}
}

// MultiStartSpace is an optional extension: a space offering several start
// states. The scheduling space uses it so tight-deadline problems (where
// the all-cheapest start is far from feasibility) also search downhill from
// the all-fastest state — the Demote direction of the transformation set.
type MultiStartSpace interface {
	Space
	Starts() []State
}

// Search compiles the space against the options and runs the solver,
// returning the best state found: Compile then Problem.Search. It dispatches
// to A* when opt.AStar is set, otherwise to the generic search of
// Algorithm 2. For MultiStartSpaces all starts seed the same frontier, so
// the shared budget flows to the most promising region and the exploitation
// phase descends from the single global incumbent.
func Search(sp Space, opt Options) (*Result, error) {
	p, err := Compile(sp, opt)
	if err != nil {
		return nil, err
	}
	return p.Search()
}

// genericSearch is Algorithm 2 with device-parallel level evaluation and a
// beam-bounded frontier, seeded with the compiled start states.
func (p *Problem) genericSearch() (*Result, error) {
	opt := p.opts
	start := time.Now()
	res := &Result{}
	visited := map[string]bool{}
	frontier := dedupCandidates(p.startCandidates(), visited)
	var best *scored
	stale := 0

	// pool keeps every evaluated state for the exploitation phase.
	pool := pq{}
	heap.Init(&pool)

	// Exploration gets 40% of the budget; the rest funds the exploitation
	// (best-first descent) phase, which advances one level per
	// ~branching-factor evaluations and therefore converges much deeper per
	// evaluation.
	exploreBudget := opt.MaxStates * 2 / 5
	if exploreBudget < 1 {
		exploreBudget = 1
	}

	for len(frontier) > 0 && res.Evaluated < exploreBudget {
		if err := opt.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("opt: search cancelled: %w", err)
		}
		// Trim the level to the remaining budget, and only THEN mark the
		// survivors visited: a state dropped here was never evaluated, and
		// marking it up front would make it permanently unreachable even
		// though the exploitation phase can re-generate it from its pooled
		// parent and still has budget for it.
		if res.Evaluated+len(frontier) > exploreBudget {
			frontier = frontier[:exploreBudget-res.Evaluated]
		}
		markVisited(frontier, visited)
		batch := p.evaluateCandidates(frontier)
		res.Evaluated += len(batch)
		res.Levels++

		improved := false
		for i := range batch {
			if batch[i].err != nil {
				return nil, batch[i].err
			}
			pool.PushItem(pqItem{scored: batch[i], priority: score(batch[i].eval, opt.Maximize)})
			if best == nil || score(batch[i].eval, opt.Maximize) < score(best.eval, opt.Maximize) {
				b := batch[i]
				best = &b
				improved = true
			}
		}
		if improved {
			stale = 0
		} else {
			stale++
			if stale >= opt.Patience {
				break
			}
		}

		// Rank this level's states and expand the best BeamWidth of them.
		sort.Slice(batch, func(i, j int) bool {
			si, sj := score(batch[i].eval, opt.Maximize), score(batch[j].eval, opt.Maximize)
			if si != sj {
				return si < sj
			}
			return batch[i].key < batch[j].key // deterministic ties
		})
		expand := batch
		if len(expand) > opt.BeamWidth {
			expand = expand[:opt.BeamWidth]
		}
		var next []candidate
		for _, s := range expand {
			next = append(next, p.childCandidates(s.state, s.key)...)
		}
		frontier = dedupCandidates(next, visited)
	}
	if best == nil {
		return nil, fmt.Errorf("opt: no states evaluated")
	}

	// Exploitation phase (§5.3's exploration/exploitation balance): spend
	// the remaining budget on best-first expansion over the pool of states
	// seen so far, so a stalled greedy line falls back to the next most
	// promising state instead of giving up.
	for pool.Len() > 0 && res.Evaluated < opt.MaxStates {
		if err := opt.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("opt: search cancelled: %w", err)
		}
		item := heap.Pop(&pool).(pqItem)
		children := dedupCandidates(p.childCandidates(item.state, item.key), visited)
		if len(children) == 0 {
			continue
		}
		// As in the exploration phase: trim to the budget first, mark
		// visited only what actually gets evaluated.
		if res.Evaluated+len(children) > opt.MaxStates {
			children = children[:opt.MaxStates-res.Evaluated]
		}
		markVisited(children, visited)
		batch := p.evaluateCandidates(children)
		res.Evaluated += len(batch)
		for i := range batch {
			if batch[i].err != nil {
				return nil, batch[i].err
			}
			sc := score(batch[i].eval, opt.Maximize)
			if sc < score(best.eval, opt.Maximize) {
				b := batch[i]
				best = &b
			}
			pool.PushItem(pqItem{scored: batch[i], priority: sc})
		}
	}

	// Adaptive evaluations may have stopped the best state early; the
	// returned result is always backed by a full evaluation.
	if err := p.confirmBest(best); err != nil {
		return nil, err
	}
	res.Best = best.state
	res.BestEval = best.eval
	res.Feasible = best.eval.Feasible
	res.Elapsed = time.Since(start)
	return res, nil
}

// pqItem is an entry of the A* open list.
type pqItem struct {
	scored
	priority float64
}

type pq []pqItem

func (p pq) Len() int { return len(p) }
func (p pq) Less(i, j int) bool {
	if p[i].priority != p[j].priority {
		return p[i].priority < p[j].priority
	}
	return p[i].key < p[j].key
}
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any          { old := *p; n := len(old); it := old[n-1]; *p = old[:n-1]; return it }
func (p pq) Peek() pqItem       { return p[0] }
func (p *pq) PushItem(i pqItem) { heap.Push(p, i) }

// astarSearch expands states best-first by g+h score (here: the evaluation
// score, matching the paper's example where both scores are the estimated
// monetary cost) and prunes states that cannot beat the best found solution.
func (p *Problem) astarSearch() (*Result, error) {
	opt := p.opts
	start := time.Now()
	res := &Result{}
	visited := map[string]bool{}
	initial := dedupCandidates(p.startCandidates(), visited)
	if len(initial) > opt.MaxStates {
		initial = initial[:opt.MaxStates]
	}
	markVisited(initial, visited)
	if err := opt.Ctx.Err(); err != nil {
		return nil, fmt.Errorf("opt: search cancelled: %w", err)
	}
	initBatch := p.evaluateCandidates(initial)
	res.Evaluated = len(initBatch)
	open := pq{}
	heap.Init(&open)
	var best, leastBad *scored
	// leastBad tracks the least-violating state over everything *evaluated*
	// (not merely popped from the open list): when the budget runs out before
	// any pop — e.g. MaxStates <= len(starts) with no feasible start — the
	// doc contract of Result.Best still holds.
	noteEvaluated := func(s *scored) {
		if leastBad == nil || score(s.eval, opt.Maximize) < score(leastBad.eval, opt.Maximize) {
			c := *s
			leastBad = &c
		}
	}
	for i := range initBatch {
		if initBatch[i].err != nil {
			return nil, initBatch[i].err
		}
		sc := score(initBatch[i].eval, opt.Maximize)
		open.PushItem(pqItem{scored: initBatch[i], priority: sc})
		noteEvaluated(&initBatch[i])
		if initBatch[i].eval.Feasible && (best == nil || sc < score(best.eval, opt.Maximize)) {
			b := initBatch[i]
			best = &b
		}
	}
	stale := 0

	for open.Len() > 0 && res.Evaluated < opt.MaxStates {
		if err := opt.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("opt: search cancelled: %w", err)
		}
		item := heap.Pop(&open).(pqItem)
		// Prune: under the monotone assumption of §5.3 ("child states ...
		// always generate higher cost than their parent") a state strictly
		// worse than the incumbent is a dead end. States tying the incumbent
		// (including the incumbent itself) still expand: with plan-level
		// packing the objective is not perfectly monotone.
		if best != nil && score(item.eval, opt.Maximize) > score(best.eval, opt.Maximize) {
			continue
		}
		children := dedupCandidates(p.childCandidates(item.state, item.key), visited)
		if len(children) == 0 {
			continue
		}
		// Trim to the budget before marking visited, so a child dropped here
		// can still be generated — and evaluated — from another parent.
		if res.Evaluated+len(children) > opt.MaxStates {
			children = children[:opt.MaxStates-res.Evaluated]
		}
		markVisited(children, visited)
		batch := p.evaluateCandidates(children)
		res.Evaluated += len(batch)
		res.Levels++
		improved := false
		for i := range batch {
			if batch[i].err != nil {
				return nil, batch[i].err
			}
			sc := score(batch[i].eval, opt.Maximize)
			noteEvaluated(&batch[i])
			if batch[i].eval.Feasible && (best == nil || sc < score(best.eval, opt.Maximize)) {
				b := batch[i]
				best = &b
				improved = true
			}
			open.PushItem(pqItem{scored: batch[i], priority: sc})
		}
		if improved {
			stale = 0
		} else if best != nil {
			stale++
			if stale >= opt.Patience {
				break
			}
		}
	}
	chosen := best
	if chosen == nil {
		chosen = leastBad
	}
	if chosen == nil {
		return nil, fmt.Errorf("opt: no states evaluated")
	}
	if err := p.confirmBest(chosen); err != nil {
		return nil, err
	}
	res.Best = chosen.state
	res.BestEval = chosen.eval
	res.Feasible = chosen.eval.Feasible
	res.Elapsed = time.Since(start)
	return res, nil
}
